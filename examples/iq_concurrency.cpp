/**
 * @file
 * The paper's Section IV case study, runnable: an instruction issue
 * queue (IQ) and a register ready-bit file (RDYB) composed by three
 * rules — doRename, doIssue, doRegWrite (Figs. 5-8).
 *
 * Three experiments:
 *  1. the paper's recommended CM (setReady < rdy/setNotReady and
 *     wakeup < issue < enter): all three rules fire in one cycle and
 *     a woken instruction issues the same cycle;
 *  2. the alternative legal ordering issue < wakeup < enter: still
 *     correct, one cycle slower per wakeup (Section IV-D);
 *  3. a *degraded* RDYB without internal bypass (rdy/setNotReady <
 *     setReady): doRename and doRegWrite can no longer share a cycle
 *     — less concurrency, but provably still correct, which is the
 *     paper's central point about reasoning with conflict matrices.
 *
 *   ./build/examples/iq_concurrency
 */
#include <cstdio>
#include <deque>
#include <vector>

#include "core/cmd.hh"

using namespace cmd;

namespace {

struct MiniInst {
    uint8_t src1, src2, dst;
};

/** Paper Fig. 7: the RDYB interface (register presence bits). */
class Rdyb : public Module
{
  public:
    Rdyb(Kernel &k, const std::string &name, bool internalBypass)
        : Module(k, name, Conflict::CF),
          rdyM(method("rdy")), setReadyM(method("setReady")),
          setNotReadyM(method("setNotReady")),
          bits_(k, name + ".bits", 128, 1)
    {
        selfCf(rdyM);
        if (internalBypass) {
            // setReady < {rdy, setNotReady}: a wakeup is visible to a
            // rename in the same cycle.
            lt(setReadyM, rdyM);
            lt(setReadyM, setNotReadyM);
        } else {
            // No bypass: rename's reads happen logically first.
            lt(rdyM, setReadyM);
            lt(setNotReadyM, setReadyM);
        }
    }

    bool
    rdy(uint8_t r)
    {
        rdyM();
        return bits_.read(r) != 0;
    }

    void
    setReady(uint8_t r)
    {
        setReadyM();
        bits_.write(r, 1);
    }

    void
    setNotReady(uint8_t r)
    {
        setNotReadyM();
        bits_.write(r, 0);
    }

    Method &rdyM, &setReadyM, &setNotReadyM;

  private:
    RegArray<uint8_t> bits_;
};

/** Paper Fig. 7: the IQ interface. */
class Iq : public Module
{
  public:
    enum class Order { WakeupIssueEnter, IssueWakeupEnter };

    Iq(Kernel &k, const std::string &name, Order order)
        : Module(k, name, Conflict::CF),
          enterM(method("enter")), wakeupM(method("wakeup")),
          issueM(method("issue")),
          arr_(k, name + ".arr", 8), count_(k, name + ".count", 0)
    {
        if (order == Order::WakeupIssueEnter) {
            lt(wakeupM, issueM);
            lt(issueM, enterM);
            lt(wakeupM, enterM);
        } else {
            lt(issueM, wakeupM);
            lt(wakeupM, enterM);
            lt(issueM, enterM);
        }
    }

    bool canEnter() const { return count_.read() < 8; }
    bool
    canIssue() const
    {
        for (uint32_t i = 0; i < 8; i++) {
            const Entry &e = arr_.read(i);
            if (e.valid && e.rdy1 && e.rdy2)
                return true;
        }
        return false;
    }

    void
    enter(MiniInst inst, bool rdy1, bool rdy2)
    {
        enterM();
        require(count_.read() < 8);
        for (uint32_t i = 0; i < 8; i++) {
            if (!arr_.read(i).valid) {
                arr_.write(i, {true, inst, rdy1, rdy2});
                count_.write(count_.read() + 1);
                return;
            }
        }
        require(false);
    }

    void
    wakeup(uint8_t dst)
    {
        wakeupM();
        for (uint32_t i = 0; i < 8; i++) {
            Entry e = arr_.read(i);
            if (!e.valid)
                continue;
            bool touch = false;
            if (e.inst.src1 == dst && !e.rdy1) {
                e.rdy1 = true;
                touch = true;
            }
            if (e.inst.src2 == dst && !e.rdy2) {
                e.rdy2 = true;
                touch = true;
            }
            if (touch)
                arr_.write(i, e);
        }
    }

    MiniInst
    issue()
    {
        issueM();
        for (uint32_t i = 0; i < 8; i++) {
            const Entry &e = arr_.read(i);
            if (e.valid && e.rdy1 && e.rdy2) {
                MiniInst out = e.inst;
                arr_.write(i, Entry{});
                count_.write(count_.read() - 1);
                return out;
            }
        }
        require(false);
        return {};
    }

    Method &enterM, &wakeupM, &issueM;

  private:
    struct Entry {
        bool valid = false;
        MiniInst inst{};
        bool rdy1 = false, rdy2 = false;
    };

    RegArray<Entry> arr_;
    Reg<uint32_t> count_;
};

/**
 * The Fig. 6 design: a renamer feeding the IQ, a 3-cycle execution
 * pipeline, and a register-write stage doing the wakeups. Runs a
 * dependence chain and reports the cycles taken.
 */
uint64_t
runChain(const char *label, bool rdybBypass, Iq::Order order,
         uint32_t chainLen, bool dependent = true)
{
    Kernel k;
    Rdyb rdyb(k, "rdyb", rdybBypass);
    Iq iq(k, "iq", order);
    // A tiny 2-stage "execution pipeline". Conflict-free FIFOs keep
    // the pipeline from imposing its own rule ordering, so both legal
    // IQ orderings remain schedulable (with issue < wakeup, a
    // pipeline FIFO's deq < enq would close a combinational cycle —
    // try it: the elaborator reports it, like the BSV compiler).
    CfFifo<MiniInst> exec1(k, "exec1", 2);
    CfFifo<MiniInst> exec2(k, "exec2", 2);

    // Dependent: inst i reads reg i, writes reg i+1 (a pure chain,
    // latency-bound). Independent: everyone reads reg 0 (throughput-
    // bound, which is where rule concurrency shows).
    std::deque<MiniInst> program;
    for (uint32_t i = 0; i < chainLen; i++) {
        uint8_t src = dependent ? static_cast<uint8_t>(i) : 0;
        program.push_back({src, src, static_cast<uint8_t>(i + 1)});
    }
    Reg<uint32_t> retired(k, "retired", 0);

    // Fig. 8, rule doRegWrite (registered first; fires logically
    // before doIssue and doRename under the recommended CM).
    Rule &regWrite = k.rule("doRegWrite", [&] {
        MiniInst wb = exec2.deq();
        iq.wakeup(wb.dst);
        rdyb.setReady(wb.dst);
        retired.write(retired.read() + 1);
    });
    regWrite.when([&] { return exec2.canDeq(); });
    regWrite.uses({&exec2.deqM, &iq.wakeupM, &rdyb.setReadyM});

    Rule &execMove = k.rule("doExec", [&] { exec2.enq(exec1.deq()); });
    execMove.when([&] { return exec1.canDeq() && exec2.canEnq(); });
    execMove.uses({&exec1.deqM, &exec2.enqM});

    // Fig. 8, rule doIssue.
    Rule &issue = k.rule("doIssue", [&] { exec1.enq(iq.issue()); });
    issue.when([&] { return iq.canIssue() && exec1.canEnq(); });
    issue.uses({&iq.issueM, &exec1.enqM});

    // Fig. 8, rule doRename.
    Rule &rename = k.rule("doRename", [&] {
        require(!program.empty() && iq.canEnter());
        MiniInst d = program.front();
        bool rdy1 = rdyb.rdy(d.src1);
        bool rdy2 = rdyb.rdy(d.src2);
        rdyb.setNotReady(d.dst);
        iq.enter(d, rdy1, rdy2);
        program.pop_front();
    });
    rename.when([&] { return !program.empty(); });
    rename.uses({&rdyb.rdyM, &rdyb.setNotReadyM, &iq.enterM});

    k.elaborate();
    k.runUntil([&] { return retired.read() == chainLen; }, 100000);

    // Show whether the CM let doRegWrite and doRename share cycles.
    std::printf("%-34s %5llu cycles for a %u-chain"
                "  (regWrite fired %llu, rename fired %llu)\n",
                label, (unsigned long long)k.cycleCount(), chainLen,
                (unsigned long long)regWrite.firedCount(),
                (unsigned long long)rename.firedCount());
    return k.cycleCount();
}

} // namespace

int
main()
{
    std::printf("Section IV: atomicity across IQ and RDYB\n");
    std::printf("----------------------------------------\n");
    uint32_t n = 64;
    std::printf("latency experiment (dependence chain):\n");
    uint64_t fast = runChain("  bypass RDYB, wakeup<issue<enter",
                             true, Iq::Order::WakeupIssueEnter, n);
    uint64_t slow = runChain("  bypass RDYB, issue<wakeup<enter",
                             true, Iq::Order::IssueWakeupEnter, n);
    std::printf("\nthroughput experiment (independent instructions):\n");
    uint64_t thrFast = runChain("  bypass RDYB (full concurrency)",
                                true, Iq::Order::WakeupIssueEnter, n,
                                false);
    uint64_t degraded = runChain("  no-bypass RDYB (degraded CM)",
                                 false, Iq::Order::WakeupIssueEnter, n,
                                 false);
    std::printf("\nwakeup<issue<enter saves %.1f%% latency over "
                "issue<wakeup (paper Section IV-D)\n",
                100.0 * double(slow - fast) / double(slow));
    std::printf("the no-bypass RDYB costs %.1f%% throughput — doRename "
                "and doRegWrite can no longer share a cycle, but the "
                "design is still correct (paper Section IV-C)\n",
                100.0 * double(degraded - thrFast) / double(thrFast));
    return 0;
}
