/**
 * @file
 * Quickstart: the paper's Section III walk-through in runnable form.
 *
 * Builds the GCD module of Fig. 2 as a CMD module (guarded interface
 * methods + an internal rule), demonstrates latency-insensitivity,
 * then wraps two of them behind the *same interface* (Fig. 4) and
 * shows the streaming throughput nearly doubling — without the
 * clients changing a single line.
 *
 *   cmake --build build && ./build/examples/quickstart
 */
#include <cstdio>

#include "core/cmd.hh"

using namespace cmd;

namespace {

/** Paper Fig. 2: mkGCD. */
class Gcd : public Module
{
  public:
    Gcd(Kernel &k, const std::string &name)
        : Module(k, name),
          startM(method("start")), getResultM(method("getResult")),
          x_(k, name + ".x", 0u), y_(k, name + ".y", 0u),
          busy_(k, name + ".busy", false)
    {
        // Both methods update `busy`, so they conflict — exactly what
        // the BSV compiler would derive for Fig. 2.
        conflictPair(startM, getResultM);

        kernel().rule(name + ".doGCD", [this] {
            require(x_.read() != 0);
            if (x_.read() >= y_.read()) {
                x_.write(x_.read() - y_.read());
            } else {
                // Reads see rule-start values: this swaps.
                x_.write(y_.read());
                y_.write(x_.read());
            }
        }).when([this] { return x_.read() != 0; });
    }

    void
    start(uint32_t a, uint32_t b)
    {
        startM();
        require(!busy_.read()); // the guard of Fig. 2
        x_.write(a);
        y_.write(b == 0 ? a : b);
        busy_.write(true);
    }

    uint32_t
    getResult()
    {
        getResultM();
        require(busy_.read() && x_.read() == 0);
        busy_.write(false);
        return y_.read();
    }

    Method &startM, &getResultM;

  private:
    Reg<uint32_t> x_, y_;
    Reg<bool> busy_;
};

/** Paper Fig. 4: mkTwoGCD — same interface, twice the units. */
class TwoGcd : public Module
{
  public:
    TwoGcd(Kernel &k, const std::string &name)
        : Module(k, name),
          startM(method("start")), getResultM(method("getResult")),
          g1_(k, name + ".g1"), g2_(k, name + ".g2"),
          inTurn_(k, name + ".inTurn", true),
          outTurn_(k, name + ".outTurn", true)
    {
        // The round-robin guarantees concurrent start/getResult touch
        // different sub-GCDs, so the pair is conflict-free; the
        // runtime CM enforcement still serializes the cycles where
        // both point at the same unit.
        cf(startM, getResultM);
        startM.subcalls({&g1_.startM, &g2_.startM});
        getResultM.subcalls({&g1_.getResultM, &g2_.getResultM});
    }

    void
    start(uint32_t a, uint32_t b)
    {
        startM();
        if (inTurn_.read())
            g1_.start(a, b);
        else
            g2_.start(a, b);
        inTurn_.write(!inTurn_.read());
    }

    uint32_t
    getResult()
    {
        getResultM();
        uint32_t y =
            outTurn_.read() ? g1_.getResult() : g2_.getResult();
        outTurn_.write(!outTurn_.read());
        return y;
    }

    Method &startM, &getResultM;

  private:
    Gcd g1_, g2_;
    Reg<bool> inTurn_, outTurn_;
};

/** Stream @p jobs GCD requests through G; return cycles taken. */
template <typename G>
uint64_t
stream(const char *label, uint32_t jobs)
{
    Kernel k;
    G g(k, "gcd");
    Reg<uint32_t> started(k, "started", 0);
    Reg<uint32_t> done(k, "done", 0);
    Reg<uint64_t> checksum(k, "checksum", 0);

    Rule &feed = k.rule("feed", [&] {
        require(started.read() < jobs);
        g.start(1071 + started.read() * 3, 462);
        started.write(started.read() + 1);
    });
    feed.uses({&g.startM});
    Rule &drain = k.rule("drain", [&] {
        checksum.write(checksum.read() + g.getResult());
        done.write(done.read() + 1);
    });
    drain.uses({&g.getResultM});

    k.elaborate();
    k.runUntil([&] { return done.read() == jobs; }, 1000000);
    std::printf("%-10s %4u jobs in %6llu cycles (checksum %llu)\n",
                label, jobs, (unsigned long long)k.cycleCount(),
                (unsigned long long)checksum.read());
    return k.cycleCount();
}

} // namespace

int
main()
{
    std::printf("CMD quickstart: the paper's GCD example\n");
    std::printf("---------------------------------------\n");

    // 1. Latency-insensitive single requests.
    {
        Kernel k;
        Gcd g(k, "gcd");
        k.elaborate();
        uint32_t result = 0;
        k.runAtomically([&] { g.start(1071, 462); });
        k.runUntil(
            [&] {
                return k.runAtomically([&] { result = g.getResult(); });
            },
            100000);
        std::printf("gcd(1071, 462) = %u\n\n", result);
    }

    // 2. Same interface, double the units, ~double the throughput.
    uint64_t one = stream<Gcd>("one-unit", 128);
    uint64_t two = stream<TwoGcd>("two-unit", 128);
    std::printf("\nspeedup from swapping the implementation: %.2fx\n",
                double(one) / double(two));
    std::printf("(clients did not change: that is composable modular "
                "refinement)\n");
    return 0;
}
