/**
 * @file
 * Run an assembled RISC-V program on the full RiscyOO-T+ system and
 * print a commit trace plus the microarchitectural event counters —
 * the library's bread-and-butter use case.
 *
 *   ./build/examples/run_program [--trace]
 */
#include <cstdio>
#include <cstring>

#include "asmkit/assembler.hh"
#include "isa/inst.hh"
#include "proc/system.hh"

using namespace riscy;
using namespace riscy::asmkit;

int
main(int argc, char **argv)
{
    bool trace = argc > 1 && std::strcmp(argv[1], "--trace") == 0;

    // A little program: iterative fibonacci with memoization in
    // memory, then exit(fib(30) mod 1e9).
    constexpr Addr entry = kDramBase;
    Addr table = kDramBase + 0x10000;
    Assembler a(entry);
    a.li(s0, table);
    a.li(t0, 0);
    a.sd(t0, 0, s0); // fib[0] = 0
    a.li(t1, 1);
    a.sd(t1, 8, s0); // fib[1] = 1
    a.li(s1, 2);
    a.li(s2, 31);
    auto loop = a.newLabel();
    a.bind(loop);
    a.slli(t2, s1, 3);
    a.add(t2, s0, t2);
    a.ld(t3, -8, t2);
    a.ld(t4, -16, t2);
    a.add(t5, t3, t4);
    a.sd(t5, 0, t2);
    a.addi(s1, s1, 1);
    a.bne(s1, s2, loop);
    a.ld(a0, 30 * 8, s0);
    a.li(t6, 1000000000);
    a.remu(a0, a0, t6);
    // exit(a0)
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase);
    a.sd(a0, 0, t6);
    auto spin = a.newLabel();
    a.bind(spin);
    a.j(spin);

    System sys(SystemConfig::riscyooTPlus());
    a.load(sys.mem(), entry);
    sys.elaborate();

    if (trace) {
        sys.setOnCommit(0, [](const CommitRecord &r) {
            std::printf("  %#10llx  %-28s", (unsigned long long)r.pc,
                        isa::disasm(isa::decode(r.raw)).c_str());
            if (r.hasRd)
                std::printf(" x%-2d = %#llx", r.rd,
                            (unsigned long long)r.rdVal);
            std::printf("\n");
        });
    }

    sys.start(entry, 0, {kDramBase + 0x100000});
    if (!sys.run(2000000)) {
        std::fprintf(stderr, "program did not finish\n");
        return 1;
    }

    auto ev = sys.events(0);
    std::printf("exit code       : %llu (fib(30) = 832040)\n",
                (unsigned long long)sys.host().exitCode(0));
    std::printf("cycles          : %llu\n",
                (unsigned long long)ev.cycles);
    std::printf("instructions    : %llu (IPC %.3f)\n",
                (unsigned long long)ev.instret,
                double(ev.instret) / double(ev.cycles));
    std::printf("br mispredicts  : %llu\n",
                (unsigned long long)ev.branchMispredicts);
    std::printf("L1D misses      : %llu\n",
                (unsigned long long)ev.l1dMisses);
    std::printf("DTLB misses     : %llu\n",
                (unsigned long long)ev.dtlbMisses);
    std::printf("\nrerun with --trace for the commit stream\n");
    return sys.host().exitCode(0) == 832040 ? 0 : 1;
}
