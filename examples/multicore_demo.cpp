/**
 * @file
 * Quad-core demo: a parallel tree-sum with AMO-based barriers on the
 * MSI-coherent memory system, run under both of the paper's memory
 * models (TSO and WMM), reporting region-of-interest cycles and the
 * TSO eviction-kill counter from Section VI-B.
 *
 *   ./build/examples/multicore_demo
 */
#include <cstdio>

#include "workloads/workloads.hh"

using namespace riscy;

int
main()
{
    auto ws = workloads::parsecWorkloads();
    const auto &kernel = ws.front(); // blackscholes-style data parallel

    std::printf("%-8s %-8s %12s %14s\n", "model", "threads", "ROI cycles",
                "evict kills");
    for (bool tso : {true, false}) {
        for (uint32_t threads : {1u, 2u, 4u}) {
            SystemConfig cfg = SystemConfig::multicore(tso);
            System sys(cfg);
            workloads::Image img = kernel.build(sys, threads);
            sys.elaborate();
            workloads::runToCompletion(sys, img);
            uint64_t kills = 0;
            for (uint32_t i = 0; i < sys.cores(); i++)
                kills += sys.events(i).evictKills;
            std::printf("%-8s %-8u %12llu %14llu\n",
                        tso ? "TSO" : "WMM", threads,
                        (unsigned long long)workloads::roiCycles(sys),
                        (unsigned long long)kills);
        }
    }
    std::printf("\nExpected shape (paper Fig. 20): near-linear scaling "
                "and no discernible TSO/WMM difference.\n");
    return 0;
}
