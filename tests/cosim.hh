/**
 * @file
 * Shared test harness: assemble a program, run it on a System, and
 * co-simulate every committed instruction against the golden model
 * (the role Spike plays for RiscyOO).
 */
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "asmkit/assembler.hh"
#include "isa/golden.hh"
#include "proc/system.hh"

namespace riscy::test {

using namespace riscy::asmkit;

constexpr Addr kEntry = kDramBase;
constexpr Addr kStackTop = kDramBase + 0x200000;

/** Emit "shift a0, set exit bit, store to host EXIT, spin". */
inline void
emitExit(Assembler &a)
{
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Exit));
    a.sd(a0, 0, t6);
    auto spin = a.newLabel();
    a.bind(spin);
    a.j(spin);
}

/** Commit-by-commit checker against the golden model. */
class CoSim
{
  public:
    void
    attach(System &sys, uint32_t hart, Addr entry, uint64_t satp, Addr sp)
    {
        goldenMem_ = sys.mem(); // snapshot after the program is loaded
        goldenHost_ = std::make_unique<HostDevice>(sys.cores());
        golden_ = std::make_unique<isa::GoldenModel>(goldenMem_,
                                                     *goldenHost_, hart,
                                                     entry);
        golden_->csrs().satp = satp;
        golden_->setReg(2, sp);
        golden_->setReg(10, hart);
        sys.setOnCommit(hart,
                        [this](const CommitRecord &r) { check(r); });
    }

    uint64_t checked() const { return checked_; }
    uint64_t mismatches() const { return mismatches_; }

  private:
    void
    check(const CommitRecord &r)
    {
        if (mismatches_ > 3)
            return; // stop cascading noise after divergence
        auto g = golden_->step();
        checked_++;
        if (r.pc != g.pc) {
            mismatches_++;
            ADD_FAILURE() << "commit #" << checked_ << ": pc "
                          << std::hex << r.pc << " != golden " << g.pc;
            return;
        }
        if (r.trapped != g.trapped) {
            mismatches_++;
            ADD_FAILURE() << "commit #" << checked_ << " pc=" << std::hex
                          << r.pc << ": trapped " << r.trapped
                          << " != golden " << g.trapped;
            return;
        }
        if (r.trapped) {
            if (r.cause != g.cause) {
                mismatches_++;
                ADD_FAILURE() << "trap cause " << r.cause
                              << " != " << g.cause;
            }
            return;
        }
        if (r.hasRd != g.hasRd || (r.hasRd && r.rd != g.rd)) {
            mismatches_++;
            ADD_FAILURE() << "commit #" << checked_ << " pc=" << std::hex
                          << r.pc << " ("
                          << isa::disasm(isa::decode(r.raw))
                          << "): rd mismatch";
            return;
        }
        if (r.hasRd && !r.volatileRd && !g.volatileRd &&
            r.rdVal != g.rdVal) {
            mismatches_++;
            ADD_FAILURE() << "commit #" << checked_ << " pc=" << std::hex
                          << r.pc << " ("
                          << isa::disasm(isa::decode(r.raw))
                          << "): x" << std::dec << int(r.rd) << " = "
                          << std::hex << r.rdVal << " != golden "
                          << g.rdVal;
        }
    }

    PhysMem goldenMem_;
    std::unique_ptr<HostDevice> goldenHost_;
    std::unique_ptr<isa::GoldenModel> golden_;
    uint64_t checked_ = 0;
    uint64_t mismatches_ = 0;
};

/** Assemble, run on the given config with co-sim, return exit code. */
inline uint64_t
runCosim(Assembler &a, SystemConfig cfg, uint64_t maxCycles = 2000000,
         uint64_t *checkedOut = nullptr)
{
    cfg.cores = 1;
    System sys(cfg);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    CoSim cosim;
    cosim.attach(sys, 0, kEntry, 0, kStackTop);
    sys.start(kEntry, 0, {kStackTop});
    bool done = sys.run(maxCycles);
    EXPECT_TRUE(done) << "program did not exit";
    EXPECT_EQ(cosim.mismatches(), 0u);
    EXPECT_GT(cosim.checked(), 0u);
    if (checkedOut)
        *checkedOut = cosim.checked();
    return sys.host().exitCode(0);
}

} // namespace riscy::test
