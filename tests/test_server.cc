/**
 * @file
 * Server-scale front tests: DramCtl row-buffer classification and
 * ordering, line interleaving across L2 bank slices, coherence through
 * the per-core BankRouter, and full-system smoke on the serverConfig
 * presets (MSI protocol end to end across router + banks + DramCtl).
 */
#include <gtest/gtest.h>

#include <random>
#include <unordered_map>

#include "cache/hierarchy.hh"
#include "cosim.hh"
#include "mem/dram_ctl.hh"
#include "server/kv.hh"

using namespace riscy;
using namespace riscy::asmkit;
using namespace riscy::test;
using namespace cmd;

namespace {

// ------------------------------------------------ DramCtl unit tests

/** Drive a bare DramCtl through one client channel. */
struct CtlSys {
    Kernel k;
    PhysMem mem;
    DramCtl ctl;

    explicit CtlSys(DramCtl::Config cfg, uint32_t ports = 1)
        : ctl(k, "dram", mem, cfg, ports)
    {
        k.elaborate();
    }

    Line
    read(Addr line, uint32_t port = 0, uint64_t maxCycles = 10000)
    {
        DramChannel &ch = ctl.channel(port);
        EXPECT_TRUE(
            k.runAtomically([&] { ch.req.enq({false, line, {}}); }));
        EXPECT_TRUE(
            k.runUntil([&] { return ch.resp.canDeq(); }, maxCycles));
        MemResp r;
        EXPECT_TRUE(k.runAtomically([&] { r = ch.resp.deq(); }));
        EXPECT_EQ(r.line, line);
        k.cycle();
        return r.data;
    }

    void
    write(Addr line, const Line &data, uint32_t port = 0)
    {
        DramChannel &ch = ctl.channel(port);
        EXPECT_TRUE(
            k.runAtomically([&] { ch.req.enq({true, line, data}); }));
        k.cycle();
    }

    uint64_t stat(const std::string &n) { return ctl.stats().get(n); }
};

DramCtl::Config
smallDram()
{
    DramCtl::Config c;
    c.banks = 4;
    c.linesPerRow = 16; // row = lineIdx >> (2 + 4)
    c.issueInterval = 1;
    c.chanDelay = 1;
    return c;
}

TEST(DramCtl, RowBufferHitMissConflictClassification)
{
    CtlSys s(smallDram());
    Addr base = kDramBase;
    auto lineAt = [&](uint64_t idx) { return base + idx * kLineBytes; };

    // First touch of bank 0: no row open -> row miss.
    s.read(lineAt(0));
    EXPECT_EQ(s.stat("rowMisses"), 1u);
    // Same bank (idx % 4 == 0), same row (idx >> 6 unchanged) -> hit.
    s.read(lineAt(4));
    EXPECT_EQ(s.stat("rowHits"), 1u);
    // Same bank, different row (idx 64 >> 6 == 1) -> conflict.
    s.read(lineAt(64));
    EXPECT_EQ(s.stat("rowConflicts"), 1u);
    // Different bank, first touch -> second row miss.
    s.read(lineAt(1));
    EXPECT_EQ(s.stat("rowMisses"), 2u);
    EXPECT_EQ(s.stat("reads"), 4u);
    EXPECT_EQ(s.stat("bank0.reqs"), 3u);
    EXPECT_EQ(s.stat("bank1.reqs"), 1u);
}

TEST(DramCtl, RowHitIsFasterThanMissIsFasterThanConflict)
{
    CtlSys s(smallDram());
    Addr base = kDramBase;
    auto timeRead = [&](uint64_t idx) {
        uint64_t c0 = s.k.cycleCount();
        s.read(base + idx * kLineBytes);
        return s.k.cycleCount() - c0;
    };
    uint64_t missLat = timeRead(0);     // bank 0, cold
    uint64_t hitLat = timeRead(4);      // bank 0, same row
    uint64_t conflictLat = timeRead(64); // bank 0, other row
    EXPECT_LT(hitLat, missLat);
    EXPECT_LT(missLat, conflictLat);
    // The classified latencies dominate the fixed channel overhead.
    EXPECT_GE(hitLat, s.ctl.config().rowHitLat);
    EXPECT_GE(conflictLat, s.ctl.config().rowConflictLat);
}

TEST(DramCtl, WriteThenReadSameLineNeverReordered)
{
    // A queued write must not be bypassed by a younger same-line read
    // even when the read would be a row hit — the ordering the L2's
    // victim-writeback + refill traffic relies on. A long issue
    // interval keeps both queued at the first issue opportunity.
    DramCtl::Config cfg = smallDram();
    cfg.issueInterval = 50;
    CtlSys s(cfg);
    Addr line = kDramBase + 8 * kLineBytes;

    Line d;
    d.write(0, 0x1122334455667788ull, 8);
    d.write(8, 0xa5a5a5a5a5a5a5a5ull, 8);
    s.write(line, d);
    Line got = s.read(line);
    EXPECT_EQ(got.read(0, 8), 0x1122334455667788ull);
    EXPECT_EQ(got.read(8, 8), 0xa5a5a5a5a5a5a5a5ull);
    // The write retired into physical memory at issue.
    EXPECT_EQ(s.mem.read(line, 8), 0x1122334455667788ull);
    EXPECT_EQ(s.stat("writes"), 1u);
    EXPECT_EQ(s.stat("reads"), 1u);
}

TEST(DramCtl, PortsDrainIndependentlyAndQuiesce)
{
    DramCtl::Config cfg = smallDram();
    CtlSys s(cfg, 4);
    for (uint32_t p = 0; p < 4; p++)
        s.mem.write(kDramBase + p * kLineBytes, 100 + p, 8);
    for (uint32_t p = 0; p < 4; p++) {
        Line l = s.read(kDramBase + p * kLineBytes, p);
        EXPECT_EQ(l.read(0, 8), 100u + p);
    }
    EXPECT_TRUE(s.ctl.quiescent());
    EXPECT_EQ(s.stat("reads"), 4u);
}

// ------------------------------------- banked hierarchy (cache-level)

/** test_cache-style harness over a banked MemHierarchy. */
struct BankedSys {
    Kernel k;
    PhysMem mem;
    MemHierarchy hier;

    BankedSys(uint32_t cores, uint32_t banks)
        : hier(k, "sys", mem, [&] {
              MemHierarchyConfig cfg;
              cfg.cores = cores;
              cfg.l2Banks = banks;
              cfg.l2 = {64, 4, 8}; // small slices: DRAM traffic early
              cfg.dramCtl.chanDelay = 2;
              cfg.dramCtl.issueInterval = 4;
              cfg.childChanDelay = 2;
              cfg.parentChanDelay = 2;
              return cfg;
          }())
    {
        k.elaborate();
    }

    Line
    load(uint32_t i, Addr addr, uint64_t maxCycles = 100000)
    {
        L1Cache &c = hier.dcache(i);
        EXPECT_TRUE(k.runAtomically([&] { c.reqLd(1, addr); }));
        EXPECT_TRUE(
            k.runUntil([&] { return c.respLdReady(); }, maxCycles));
        Line out;
        EXPECT_TRUE(k.runAtomically([&] { out = c.respLd().line; }));
        k.cycle();
        return out;
    }

    void
    store(uint32_t i, Addr addr, uint64_t value, uint8_t bytes = 8,
          uint64_t maxCycles = 100000)
    {
        L1Cache &c = hier.dcache(i);
        EXPECT_TRUE(k.runAtomically([&] { c.reqSt(2, addr); }));
        EXPECT_TRUE(
            k.runUntil([&] { return c.respStReady(); }, maxCycles));
        EXPECT_TRUE(k.runAtomically([&] {
            c.respSt();
            c.writeData(addr, value, bytes);
        }));
        k.cycle();
    }
};

TEST(BankedL2, LinesInterleaveAcrossSlices)
{
    BankedSys s(1, 4);
    Addr base = kDramBase + 0x8000;
    for (uint32_t i = 0; i < 8; i++)
        s.mem.write(base + i * kLineBytes, 0xbeef00 + i, 8);
    for (uint32_t i = 0; i < 8; i++) {
        Line l = s.load(0, base + i * kLineBytes);
        EXPECT_EQ(l.read(0, 8), 0xbeef00u + i);
    }
    // Eight consecutive lines land two per slice, and the aggregate
    // view sums what the slices saw.
    for (uint32_t b = 0; b < 4; b++)
        EXPECT_EQ(s.hier.l2Bank(b).stats().get("misses"), 2u)
            << "bank " << b;
    EXPECT_EQ(s.hier.l2StatSum("misses"), 8u);
    EXPECT_EQ(s.hier.bankedFront()->dramCtl().stats().get("reads"), 8u);
}

TEST(BankedL2, CrossCoreCoherenceThroughRouters)
{
    // Writer/reader pairs across every bank: core 0 stores, core 1
    // must read the fresh value (M->S downgrade with data through two
    // routers and the owning bank).
    BankedSys s(2, 4);
    Addr base = kDramBase + 0x10000;
    for (uint32_t i = 0; i < 4; i++) {
        Addr a = base + i * kLineBytes;
        s.store(0, a, 0xc0de00 + i);
        Line l = s.load(1, a);
        EXPECT_EQ(l.read(0, 8), 0xc0de00u + i) << "bank " << i;
    }
    EXPECT_TRUE(s.k.runUntil([&] { return s.hier.quiescent(); }, 10000));
}

TEST(BankedL2, RandomizedCoherenceStormMatchesShadow)
{
    // Deterministic mini-storm: two cores, random loads/stores over 16
    // lines spread across the banks, checked against a shadow model.
    BankedSys s(2, 4);
    Addr base = kDramBase + 0x20000;
    std::unordered_map<Addr, uint64_t> shadow;
    std::mt19937 rng(7);
    for (uint32_t op = 0; op < 250; op++) {
        uint32_t core = rng() & 1;
        Addr a = base + (rng() % 16) * kLineBytes;
        if (rng() & 1) {
            uint64_t v = rng();
            s.store(core, a, v);
            shadow[a] = v;
        } else {
            Line l = s.load(core, a);
            auto it = shadow.find(a);
            uint64_t expect = it == shadow.end() ? 0 : it->second;
            EXPECT_EQ(l.read(0, 8), expect)
                << "op " << op << " core " << core;
        }
    }
    EXPECT_TRUE(s.k.runUntil([&] { return s.hier.quiescent(); }, 20000));
    // The storm must actually have exercised the DRAM path.
    EXPECT_GT(s.hier.bankedFront()->dramCtl().stats().get("reads"), 0u);
}

// ------------------------------------------- open-loop KV generator

TEST(Kv, ArrivalScheduleDeterministicAcrossSeeds)
{
    server::KvConfig cfg;
    cfg.harts = 4;
    cfg.requests = 500;
    cfg.seed = 42;
    server::KvHost a(cfg), b(cfg);
    ASSERT_EQ(a.requests().size(), 500u);
    for (size_t i = 0; i < a.requests().size(); i++) {
        EXPECT_EQ(a.requests()[i].arrival, b.requests()[i].arrival);
        EXPECT_EQ(a.requests()[i].key, b.requests()[i].key);
        EXPECT_EQ(a.requests()[i].put, b.requests()[i].put);
        // Round-robin hart assignment, arrivals monotone per hart.
        EXPECT_EQ(a.requests()[i].hart, i % 4);
        if (i >= 4)
            EXPECT_GE(a.requests()[i].arrival,
                      a.requests()[i - 4].arrival);
    }
    cfg.seed = 43;
    server::KvHost c(cfg);
    uint32_t diff = 0;
    for (size_t i = 0; i < a.requests().size(); i++)
        diff += a.requests()[i].arrival != c.requests()[i].arrival ||
                a.requests()[i].key != c.requests()[i].key;
    EXPECT_GT(diff, 100u) << "seed change barely moved the schedule";
}

TEST(Kv, PopHonorsArrivalsAndStops)
{
    server::KvConfig cfg;
    cfg.harts = 1;
    cfg.requests = 3;
    cfg.poisson = false; // uniform: arrivals at start + k * mean
    cfg.reqPerKilocycle = 10.0; // mean gap 100 cycles
    cfg.startCycle = 1000;
    server::KvHost kv(cfg);
    const auto &reqs = kv.requests();
    ASSERT_EQ(reqs.size(), 3u);

    EXPECT_EQ(kv.pop(0, reqs[0].arrival - 1), 0u) << "not arrived yet";
    uint64_t d0 = kv.pop(0, reqs[0].arrival);
    ASSERT_EQ(d0 & 1, 1u);
    EXPECT_EQ((d0 >> 8) & 0xffffffffu, reqs[0].key);
    EXPECT_EQ(((d0 >> 1) & 1) != 0, reqs[0].put);
    EXPECT_EQ(d0 >> 40, 0u);
    kv.done(0, 0, reqs[0].arrival + 50);

    // Pop the rest late: both already arrived, backlog visible.
    uint64_t late = reqs[2].arrival + 10;
    uint64_t d1 = kv.pop(0, late);
    uint64_t d2 = kv.pop(0, late);
    EXPECT_EQ(d1 >> 40, 1u);
    EXPECT_EQ(d2 >> 40, 2u);
    kv.done(0, 1, late + 30);
    kv.done(0, 2, late + 60);
    EXPECT_EQ(kv.pop(0, late + 100), 0x5u) << "drained -> stop";

    server::KvSummary s = kv.summarize();
    EXPECT_EQ(s.offered, 3u);
    EXPECT_EQ(s.completed, 3u);
    // Sorted latencies: req0 = 50, req2 = 70, req1 = 140.
    EXPECT_EQ(s.p50, late + 60 - reqs[2].arrival);
    EXPECT_EQ(s.maxQueueDepth, 2u);
    EXPECT_GT(s.throughputPerKc, 0.0);
}

// -------------------------------------------- full-system smoke tests

std::vector<Addr>
stacks(uint32_t n)
{
    std::vector<Addr> s;
    for (uint32_t i = 0; i < n; i++)
        s.push_back(kEntry + 0x200000 + i * 0x10000);
    return s;
}

void
exitWith(Assembler &a)
{
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Exit));
    a.sd(a0, 0, t6);
    auto spin = a.newLabel();
    a.bind(spin);
    a.j(spin);
}

constexpr Addr kData = kEntry + 0x40000;

TEST(ServerSmoke, AmoCountersAtomicAcrossBanks)
{
    SystemConfig cfg = SystemConfig::serverConfig(4, 4);
    System sys(cfg);
    Assembler a(kEntry);
    a.li(s0, kData);
    a.li(s1, 0);
    a.li(s2, 100);
    a.li(t1, 1);
    auto loop = a.newLabel();
    a.bind(loop);
    a.amoadd_d(t2, t1, s0);
    a.addi(s1, s1, 1);
    a.bne(s1, s2, loop);
    a.li(t3, 400);
    auto wait = a.newLabel();
    a.bind(wait);
    a.ld(a0, 0, s0);
    a.blt(a0, t3, wait);
    exitWith(a);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(4));
    ASSERT_TRUE(sys.run(6000000));
    for (uint32_t i = 0; i < 4; i++)
        EXPECT_EQ(sys.host().exitCode(i), 400u);
}

TEST(ServerSmoke, KvServiceEndToEnd)
{
    // Four cores serve 200 open-loop requests against the preloaded
    // table through the banked L2 + DramCtl; every request completes,
    // every GET verifies, and the summary is internally consistent.
    SystemConfig cfg = SystemConfig::serverConfig(4, 4);
    System sys(cfg);

    server::KvConfig kc;
    kc.harts = 4;
    kc.requests = 200;
    kc.reqPerKilocycle = 20.0;
    kc.keys = 1024;
    kc.tableSlots = 2048;
    kc.putFrac = 0.2;
    kc.seed = 9;
    server::KvHost kv(kc);
    server::preloadKvTable(sys.mem(), kc);
    sys.host().attachKv(&kv);

    Assembler a(kEntry);
    server::emitKvWorker(a, kc);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(4));
    ASSERT_TRUE(sys.run(4000000)) << "KV service wedged";
    ASSERT_FALSE(sys.host().failed())
        << "GET verification failed, key " << sys.host().failCode();
    for (uint32_t i = 0; i < 4; i++)
        EXPECT_EQ(sys.host().exitCode(i), 0u) << "hart " << i;

    server::KvSummary s = kv.summarize();
    EXPECT_EQ(s.offered, 200u);
    EXPECT_EQ(s.completed, 200u);
    EXPECT_GT(s.p50, 0u);
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.maxLat);
    EXPECT_GT(s.throughputPerKc, 0.0);
    EXPECT_GE(s.maxQueueDepth, 1u);
}

TEST(ServerObs, CpiSplitsDramBoundDMisses)
{
    // A line-strided stream over 4x the (shrunken) banked L2: head
    // loads park at commit waiting on DramCtl, and the CPI stack must
    // attribute those cycles to d_miss_dram while staying conserved.
    SystemConfig cfg = SystemConfig::serverConfig(1, 4);
    cfg.mem.l2 = {16, 4, 8}; // 64 KB aggregate
    cfg.obs.cpi = true;
    System sys(cfg);
    Assembler a(kEntry);
    Addr base = kEntry + 0x100000;
    a.li(s0, base);
    a.li(s1, base + 256 * 1024);
    auto loop = a.newLabel();
    auto restart = a.newLabel();
    a.bind(restart);
    a.li(s0, base);
    a.bind(loop);
    a.ld(t1, 0, s0);
    a.addi(s0, s0, 64);
    a.blt(s0, s1, loop);
    a.j(restart);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(1));
    sys.kernel().run(60000);

    const obs::CpiStack *cp = sys.cpi(0);
    ASSERT_NE(cp, nullptr);
    EXPECT_EQ(cp->total(), cp->cycles()) << "CPI stack leaked cycles";
    uint64_t dram = cp->count(obs::StallCause::DMissDram);
    EXPECT_GT(dram, 0u) << "no DRAM-bound D-miss cycles attributed";
    // The next-line prefetcher hides most of the stream's latency, so
    // the bound is loose — but a 4x-over-capacity stream must still
    // park at DRAM for a visible share of cycles.
    EXPECT_GT(dram, cp->cycles() / 100);
    EXPECT_NE(cp->json().find("d_miss_dram"), std::string::npos);
}

TEST(ServerSmoke, FalseSharingPingPongStaysCoherentBanked)
{
    SystemConfig cfg = SystemConfig::serverConfig(2, 4);
    System sys(cfg);
    Assembler a(kEntry);
    a.csrr(t0, isa::kCsrMhartid);
    a.slli(t0, t0, 3);
    a.li(s0, kData);
    a.add(s0, s0, t0);
    a.li(s1, 0);
    a.li(s2, 200);
    auto loop = a.newLabel();
    a.bind(loop);
    a.ld(t1, 0, s0);
    a.addi(t1, t1, 1);
    a.sd(t1, 0, s0);
    a.addi(s1, s1, 1);
    a.bne(s1, s2, loop);
    a.ld(a0, 0, s0);
    exitWith(a);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(2));
    ASSERT_TRUE(sys.run(8000000));
    EXPECT_EQ(sys.host().exitCode(0), 200u);
    EXPECT_EQ(sys.host().exitCode(1), 200u);
}

} // namespace
