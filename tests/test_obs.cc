/**
 * @file
 * Observability subsystem tests: stats histograms and formulas, CPI
 * stack conservation (components sum exactly to total cycles), trace
 * determinism across all three schedulers (byte-identical Konata and
 * Perfetto exports), warmup stats reset, the structured KernelReport,
 * and the flight recorder appended to crash diagnostics.
 */
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cmd.hh"
#include "cosim.hh"
#include "obs/hub.hh"

namespace {

using namespace riscy;
using namespace riscy::test;

/**
 * A small OOO-stressing loop: loads, stores, a multiply, and a
 * data-dependent branch that mispredicts often enough to exercise the
 * squash paths in every trace sink.
 */
Assembler
obsProgram()
{
    Assembler a(kEntry);
    a.li(5, kEntry + 0x10000);
    a.li(6, 0);
    a.li(7, 0);
    auto loop = a.newLabel();
    a.bind(loop);
    a.andi(28, 6, 255);
    a.slli(28, 28, 3);
    a.add(28, 28, 5);
    a.ld(29, 0, 28);
    a.add(29, 29, 6);
    a.mul(29, 29, 6);
    a.sd(29, 0, 28);
    a.add(7, 7, 29);
    a.andi(30, 7, 7); // data-dependent: taken 7 of 8 times
    auto skip = a.newLabel();
    a.bnez(30, skip);
    a.xor_(7, 7, 6);
    a.bind(skip);
    a.addi(6, 6, 1);
    a.j(loop);
    return a;
}

std::unique_ptr<System>
mkObsSys(Assembler &a, cmd::SchedulerKind kind,
         void (*tweak)(SystemConfig &) = nullptr)
{
    SystemConfig cfg = SystemConfig::riscyooB();
    cfg.cores = 1;
    cfg.scheduler = kind;
    cfg.obs.pipeline = true;
    cfg.obs.timeline = true;
    cfg.obs.timelineGuardFails = false;
    cfg.obs.cpi = true;
    // Record-only: tests read the in-memory sinks, nothing hits disk.
    cfg.obs.pipelinePath.clear();
    cfg.obs.timelinePath.clear();
    if (tweak)
        tweak(cfg);
    auto sys = std::make_unique<System>(cfg);
    a.load(sys->mem(), kEntry);
    sys->elaborate();
    sys->start(kEntry, 0, {kStackTop});
    return sys;
}

std::string
konataText(System &sys)
{
    std::ostringstream os;
    std::vector<const obs::PipelineTracer *> cores{
        sys.obsHub()->pipeline(0)};
    EXPECT_TRUE(obs::KonataWriter::write(os, cores));
    return os.str();
}

std::string
perfettoText(System &sys)
{
    std::ostringstream os;
    EXPECT_TRUE(sys.obsHub()->timeline()->write(os));
    return os.str();
}

} // namespace

TEST(ObsStats, HistogramBucketsAndMoments)
{
    cmd::Histogram h(0, 100, 10);
    for (uint64_t v : {0ull, 5ull, 15ull, 15ull, 99ull, 250ull})
        h.sample(v);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum(), 0u + 5 + 15 + 15 + 99 + 250);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 250u);
    EXPECT_DOUBLE_EQ(h.mean(), double(h.sum()) / 6.0);
    ASSERT_EQ(h.buckets().size(), 11u); // 10 + overflow
    EXPECT_EQ(h.buckets()[0], 2u);      // 0, 5
    EXPECT_EQ(h.buckets()[1], 2u);      // 15, 15
    EXPECT_EQ(h.buckets()[9], 1u);      // 99
    EXPECT_EQ(h.buckets()[10], 1u);     // 250 overflows
    EXPECT_NE(h.json().find("\"count\": 6"), std::string::npos);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

TEST(ObsStats, FormulaAndGroupResetAll)
{
    cmd::StatGroup g;
    cmd::Stat &instret = g.counter("instret");
    cmd::Stat &cycles = g.counter("cycles");
    instret.inc(300);
    cycles.inc(600);
    g.formula("ipc", [&] {
        return cycles.value() ? double(instret.value()) / cycles.value() : 0;
    });
    EXPECT_DOUBLE_EQ(g.getFormula("ipc"), 0.5);
    cmd::Histogram &h = g.histogram("occ", 0, 64, 8);
    h.sample(10);
    g.resetAll();
    EXPECT_EQ(g.get("instret"), 0u);
    EXPECT_EQ(g.get("cycles"), 0u);
    EXPECT_EQ(g.getHistogram("occ")->count(), 0u);
    // Formulas recompute from (now reset) inputs.
    EXPECT_DOUBLE_EQ(g.getFormula("ipc"), 0.0);
    EXPECT_NE(g.json().find("\"ipc\""), std::string::npos);
}

/**
 * CPI stack conservation: every cycle is attributed to exactly one
 * cause, so the components sum to the cycle count exactly, and the
 * Base component reproduces the retired-instruction rate.
 */
TEST(ObsCpi, ComponentsSumToTotalCycles)
{
    Assembler a = obsProgram();
    auto sys = mkObsSys(a, cmd::SchedulerKind::EventDriven);
    constexpr uint64_t kCycles = 30000;
    sys->kernel().run(kCycles);

    const obs::CpiStack *cp = sys->cpi(0);
    ASSERT_NE(cp, nullptr);
    EXPECT_EQ(cp->cycles(), sys->kernel().cycleCount());
    uint64_t sum = 0;
    for (uint32_t c = 0; c < obs::kNumStallCauses; c++)
        sum += cp->count(obs::StallCause(c));
    EXPECT_EQ(sum, cp->cycles()) << "CPI stack leaked cycles";
    EXPECT_EQ(cp->total(), cp->cycles());

    // The run must exercise more than the trivial causes.
    EXPECT_GT(cp->count(obs::StallCause::Base), 0u);
    EXPECT_GT(cp->count(obs::StallCause::Base), cp->cycles() / 10);
    EXPECT_GT(sys->instret(0), 0u);

    // json() carries the same totals the BENCH rows embed.
    std::string j = cp->json(sys->instret(0));
    EXPECT_NE(j.find("\"total_cycles\": " + std::to_string(cp->cycles())),
              std::string::npos)
        << j;
    EXPECT_NE(j.find("\"ipc\": "), std::string::npos);
}

/**
 * Same seed + config => byte-identical Konata and Perfetto exports
 * under all four schedulers. This is the observable face of the
 * kernel's cross-scheduler equivalence guarantee: not just the same
 * architectural evolution, but the same fired-rule timeline and the
 * same per-uop pipeline occupancy. The 20k-cycle run crosses the
 * compiled scheduler's default 1024-cycle profiling prefix, so both
 * its regimes (profiling walk and fused fast path) are compared.
 */
TEST(ObsTrace, ByteIdenticalAcrossSchedulers)
{
    constexpr uint64_t kCycles = 20000;
    Assembler a = obsProgram();

    struct Traces {
        std::string konata, perfetto, cpi;
    };
    auto runOne = [&](cmd::SchedulerKind kind) {
        auto sys = mkObsSys(a, kind);
        sys->kernel().run(kCycles);
        const obs::CpiStack *cp = sys->cpi(0);
        return Traces{konataText(*sys), perfettoText(*sys),
                      cp ? cp->json(sys->instret(0)) : std::string()};
    };
    auto ex = runOne(cmd::SchedulerKind::Exhaustive);
    auto ev = runOne(cmd::SchedulerKind::EventDriven);
    auto par = runOne(cmd::SchedulerKind::Parallel);
    auto co = runOne(cmd::SchedulerKind::Compiled);

    // Sanity: the traces are real before we compare them.
    ASSERT_GT(ex.konata.size(), 1000u);
    ASSERT_EQ(ex.konata.rfind("Kanata\t0004\n", 0), 0u);
    ASSERT_GT(ex.perfetto.size(), 1000u);
    ASSERT_GT(ex.cpi.size(), 10u);

    EXPECT_EQ(ex.konata, ev.konata) << "Konata diverged: event-driven";
    EXPECT_EQ(ex.konata, par.konata) << "Konata diverged: parallel";
    EXPECT_EQ(ex.konata, co.konata) << "Konata diverged: compiled";
    EXPECT_EQ(ex.perfetto, ev.perfetto) << "Perfetto diverged: event-driven";
    EXPECT_EQ(ex.perfetto, par.perfetto) << "Perfetto diverged: parallel";
    EXPECT_EQ(ex.perfetto, co.perfetto) << "Perfetto diverged: compiled";
    EXPECT_EQ(ex.cpi, ev.cpi) << "CPI stack diverged: event-driven";
    EXPECT_EQ(ex.cpi, par.cpi) << "CPI stack diverged: parallel";
    EXPECT_EQ(ex.cpi, co.cpi) << "CPI stack diverged: compiled";
}

/** Every traced uop resolves: retired + squashed == created. */
TEST(ObsTrace, UopAccountingCloses)
{
    Assembler a = obsProgram();
    auto sys = mkObsSys(a, cmd::SchedulerKind::EventDriven);
    sys->kernel().run(20000);
    const obs::PipelineTracer *t = sys->obsHub()->pipeline(0);
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->created(), 1000u);
    EXPECT_GT(t->retired(), 0u);
    EXPECT_GT(t->squashed(), 0u) << "branch loop never mispredicted?";
    EXPECT_LE(t->retired() + t->squashed(), t->created());
    // Retired-uop count matches the architectural counter.
    EXPECT_LE(t->retired(), sys->instret(0));
}

/**
 * statsResetAtCycle opens a measurement window: the CPI stack restarts
 * at the reset point and still conserves cycles over the window.
 */
TEST(ObsCpi, WarmupResetWindow)
{
    constexpr uint64_t kReset = 5000;
    constexpr uint64_t kCycles = 15000;
    Assembler a = obsProgram();
    auto sys = mkObsSys(a, cmd::SchedulerKind::EventDriven,
                        [](SystemConfig &cfg) {
                            cfg.statsResetAtCycle = kReset;
                        });
    sys->kernel().run(kCycles);
    const obs::CpiStack *cp = sys->cpi(0);
    ASSERT_NE(cp, nullptr);
    EXPECT_EQ(cp->cycles(), sys->kernel().cycleCount() - kReset);
    EXPECT_EQ(cp->total(), cp->cycles());
}

/** The structured report carries the rule table and scheduler state. */
TEST(ObsReport, KernelReportJson)
{
    Assembler a = obsProgram();
    auto sys = mkObsSys(a, cmd::SchedulerKind::EventDriven);
    sys->kernel().run(2000);
    cmd::KernelReport rep = sys->kernel().report();
    EXPECT_EQ(rep.cycle, sys->kernel().cycleCount());
    ASSERT_FALSE(rep.rules.empty());
    uint64_t fired = 0;
    for (const auto &r : rep.rules)
        fired += r.fired;
    EXPECT_GT(fired, 0u);
    std::string j = rep.json();
    EXPECT_NE(j.find("\"scheduler\":"), std::string::npos);
    EXPECT_NE(j.find("\"rules\":"), std::string::npos);
    std::string t = rep.text();
    EXPECT_NE(t.find("scheduler: kind="), std::string::npos);
}

/**
 * The flight recorder (always on whenever a hub is installed, even
 * with every file sink off) lands in the kernel's crash diagnostics.
 */
TEST(ObsTimeline, FlightRecorderInDiagnostics)
{
    Assembler a = obsProgram();
    auto sys = mkObsSys(a, cmd::SchedulerKind::EventDriven,
                        [](SystemConfig &cfg) {
                            cfg.obs.pipeline = false;
                            cfg.obs.timeline = false;
                            cfg.obs.cpi = true; // hub present, sinks off
                        });
    sys->kernel().run(2000);
    std::string diag = sys->kernel().diagnosticReport();
    EXPECT_NE(diag.find("flight recorder"), std::string::npos);
    // The tail holds real firings, not an empty ring.
    EXPECT_EQ(diag.find("flight recorder (last 0 "), std::string::npos);
}

/** Guard-fail instants are recorded only when asked for. */
TEST(ObsTimeline, GuardFailOptIn)
{
    Assembler a = obsProgram();
    auto on = mkObsSys(a, cmd::SchedulerKind::EventDriven,
                       [](SystemConfig &cfg) {
                           cfg.obs.timelineGuardFails = true;
                       });
    auto off = mkObsSys(a, cmd::SchedulerKind::EventDriven);
    on->kernel().run(3000);
    off->kernel().run(3000);
    std::string jOn = perfettoText(*on);
    std::string jOff = perfettoText(*off);
    EXPECT_NE(jOn.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_EQ(jOff.find("\"ph\": \"i\""), std::string::npos);
}
