/**
 * @file
 * Tests for the CMD FIFO library: CM flavors, same-cycle behavior,
 * throughput properties, and the paper's high-throughput GCD (Fig. 4).
 */
#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "core/cmd.hh"

using namespace cmd;

namespace {

/**
 * Producer/consumer harness: producer enqueues an increasing sequence,
 * consumer dequeues into a log. Used to probe per-kind same-cycle
 * concurrency.
 */
struct ProdCons
{
    Kernel k;
    Fifo<uint32_t> fifo;
    Reg<uint32_t> next;
    std::vector<uint32_t> out;
    Rule *prod;
    Rule *cons;

    explicit ProdCons(FifoKind kind, uint32_t cap)
        : fifo(k, "fifo", cap, kind), next(k, "next", 0)
    {
        // Register the consumer first so that any same-cycle
        // concurrency is due to the CM, not registration luck.
        cons = &k.rule("cons", [this] {
            out.push_back(fifo.deq());
        });
        cons->uses({&fifo.deqM});
        prod = &k.rule("prod", [this] {
            fifo.enq(next.read());
            next.write(next.read() + 1);
        });
        prod->uses({&fifo.enqM});
        k.elaborate();
    }
};

TEST(Fifo, PipelineSustainsOneElementPerCycleWhenFull)
{
    ProdCons pc(FifoKind::Pipeline, 2);
    EXPECT_EQ(pc.k.ruleRelation(*pc.cons, *pc.prod), Conflict::LT);
    pc.k.run(100);
    // After warm-up the FIFO stays full and both rules fire each
    // cycle: ~1 element/cycle of throughput.
    EXPECT_GE(pc.out.size(), 97u);
    for (size_t i = 0; i < pc.out.size(); i++)
        EXPECT_EQ(pc.out[i], i);
}

TEST(Fifo, PipelineHasOneCycleLatency)
{
    ProdCons pc(FifoKind::Pipeline, 2);
    pc.k.cycle();
    // Cycle 1: deq < enq means the consumer attempted before the
    // producer filled the FIFO, so nothing came out yet.
    EXPECT_EQ(pc.out.size(), 0u);
    pc.k.cycle();
    EXPECT_EQ(pc.out.size(), 1u);
}

TEST(Fifo, BypassDeliversSameCycle)
{
    ProdCons pc(FifoKind::Bypass, 2);
    EXPECT_EQ(pc.k.ruleRelation(*pc.prod, *pc.cons), Conflict::LT);
    pc.k.cycle();
    // enq < deq: the element flows through combinationally.
    ASSERT_EQ(pc.out.size(), 1u);
    EXPECT_EQ(pc.out[0], 0u);
}

TEST(Fifo, CfFullThroughputWithCapacityTwo)
{
    ProdCons pc(FifoKind::Cf, 2);
    EXPECT_EQ(pc.k.ruleRelation(*pc.prod, *pc.cons), Conflict::CF);
    pc.k.run(100);
    EXPECT_GE(pc.out.size(), 97u);
    for (size_t i = 0; i < pc.out.size(); i++)
        EXPECT_EQ(pc.out[i], i);
}

TEST(Fifo, CfGuardsSeeCycleStartState)
{
    // With a CF FIFO, a deq in the same cycle as an enq into an empty
    // FIFO must NOT observe the new element (both act on cycle-start
    // state), regardless of schedule order.
    Kernel k;
    CfFifo<int> f(k, "f", 2);
    std::vector<int> got;
    Rule &prod = k.rule("prod", [&] { f.enq(7); });
    prod.uses({&f.enqM});
    Rule &cons = k.rule("cons", [&] { got.push_back(f.deq()); });
    cons.uses({&f.deqM});
    k.elaborate();
    k.cycle();
    EXPECT_TRUE(got.empty()); // empty at cycle start: deq blocked
    k.cycle();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 7);
}

TEST(Fifo, ClearConflictsWithEnqAndDeq)
{
    Kernel k;
    PipelineFifo<int> f(k, "f", 4);
    Rule &re = k.rule("re", [&] { f.enq(1); });
    re.uses({&f.enqM});
    Rule &rc = k.rule("rc", [&] { f.clear(); });
    rc.uses({&f.clearM});
    k.elaborate();
    EXPECT_EQ(k.ruleRelation(re, rc), Conflict::C);
}

TEST(Fifo, ClearEmptiesAndRestartsCleanly)
{
    Kernel k;
    PipelineFifo<int> f(k, "f", 4);
    k.elaborate();
    // Each poke gets its own cycle: enq may only be called once per
    // cycle (CM(enq, enq) = C), exactly as in the hardware.
    for (int i = 0; i < 3; i++) {
        ASSERT_TRUE(k.runAtomically([&] { f.enq(i); }));
        k.cycle();
    }
    ASSERT_TRUE(k.runAtomically([&] { f.clear(); }));
    k.cycle();
    EXPECT_FALSE(f.notEmpty());
    ASSERT_TRUE(k.runAtomically([&] { f.enq(42); }));
    k.cycle();
    int v = -1;
    ASSERT_TRUE(k.runAtomically([&] { v = f.deq(); }));
    EXPECT_EQ(v, 42);
}

TEST(Fifo, EnqOnFullBlocksAndDeqOnEmptyBlocks)
{
    Kernel k;
    PipelineFifo<int> f(k, "f", 2);
    k.elaborate();
    EXPECT_TRUE(k.runAtomically([&] { f.enq(1); }));
    k.cycle();
    EXPECT_TRUE(k.runAtomically([&] { f.enq(2); }));
    k.cycle();
    EXPECT_FALSE(k.runAtomically([&] { f.enq(3); }));
    k.cycle();
    int v = 0;
    EXPECT_TRUE(k.runAtomically([&] { v = f.deq(); }));
    EXPECT_EQ(v, 1);
    k.cycle();
    EXPECT_TRUE(k.runAtomically([&] { v = f.deq(); }));
    EXPECT_EQ(v, 2);
    k.cycle();
    EXPECT_FALSE(k.runAtomically([&] { v = f.deq(); }));
}

TEST(Fifo, FirstPeeksWithoutRemoving)
{
    Kernel k;
    PipelineFifo<int> f(k, "f", 2);
    k.elaborate();
    ASSERT_TRUE(k.runAtomically([&] { f.enq(9); }));
    k.cycle();
    int v = 0;
    ASSERT_TRUE(k.runAtomically([&] { v = f.first(); }));
    EXPECT_EQ(v, 9);
    EXPECT_TRUE(f.notEmpty());
    ASSERT_TRUE(k.runAtomically([&] { v = f.deq(); }));
    EXPECT_EQ(v, 9);
}

/** Randomized FIFO-vs-std::deque model check, one per kind. */
class FifoModelTest : public ::testing::TestWithParam<FifoKind>
{
};

TEST_P(FifoModelTest, MatchesReferenceModel)
{
    Kernel k;
    Fifo<uint64_t> f(k, "f", 5, GetParam());
    k.elaborate();
    std::deque<uint64_t> model;
    std::mt19937_64 rng(12345);
    uint64_t seq = 0;
    for (int step = 0; step < 2000; step++) {
        if (rng() & 1) {
            bool ok = k.runAtomically([&] { f.enq(seq); });
            EXPECT_EQ(ok, model.size() < 5);
            if (ok) {
                model.push_back(seq);
                seq++;
            }
        } else {
            uint64_t got = ~0ull;
            bool ok = k.runAtomically([&] { got = f.deq(); });
            EXPECT_EQ(ok, !model.empty());
            if (ok) {
                EXPECT_EQ(got, model.front());
                model.pop_front();
            }
        }
        EXPECT_EQ(f.size(), model.size());
        // One op per cycle: methods may be called once per cycle.
        k.cycle();
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FifoModelTest,
                         ::testing::Values(FifoKind::Pipeline,
                                           FifoKind::Bypass, FifoKind::Cf),
                         [](const auto &info) {
                             switch (info.param) {
                               case FifoKind::Pipeline:
                                 return "Pipeline";
                               case FifoKind::Bypass:
                                 return "Bypass";
                               default:
                                 return "Cf";
                             }
                         });

// ------------------------------------------------ high-throughput GCD

/** Paper Fig. 2 GCD, minimal re-statement for this test file. */
class Gcd : public Module
{
  public:
    Gcd(Kernel &k, const std::string &name)
        : Module(k, name),
          startM(method("start")), getResultM(method("getResult")),
          x_(k, name + ".x", 0u), y_(k, name + ".y", 0u),
          busy_(k, name + ".busy", false)
    {
        conflictPair(startM, getResultM);
        kernel().rule(name + ".doGCD", [this] {
            require(x_.read() != 0);
            if (x_.read() >= y_.read()) {
                x_.write(x_.read() - y_.read());
            } else {
                x_.write(y_.read());
                y_.write(x_.read());
            }
        }).when([this] { return x_.read() != 0; });
    }

    void
    start(uint32_t a, uint32_t b)
    {
        startM();
        require(!busy_.read());
        x_.write(a);
        y_.write(b == 0 ? a : b);
        busy_.write(true);
    }

    uint32_t
    getResult()
    {
        getResultM();
        require(busy_.read() && x_.read() == 0);
        busy_.write(false);
        return y_.read();
    }

    Method &startM, &getResultM;

  private:
    Reg<uint32_t> x_, y_;
    Reg<bool> busy_;
};

/** Paper Fig. 4: two GCDs behind one interface, round-robin. */
class TwoGcd : public Module
{
  public:
    TwoGcd(Kernel &k, const std::string &name)
        : Module(k, name),
          startM(method("start")), getResultM(method("getResult")),
          g1_(k, name + ".g1"), g2_(k, name + ".g2"),
          inTurn_(k, name + ".inTurn", true),
          outTurn_(k, name + ".outTurn", true)
    {
        cf(startM, getResultM); // distinct sub-GCDs: no conflict
        startM.subcalls({&g1_.startM, &g2_.startM});
        getResultM.subcalls({&g1_.getResultM, &g2_.getResultM});
    }

    void
    start(uint32_t a, uint32_t b)
    {
        startM();
        if (inTurn_.read())
            g1_.start(a, b);
        else
            g2_.start(a, b);
        inTurn_.write(!inTurn_.read());
    }

    uint32_t
    getResult()
    {
        getResultM();
        uint32_t y = outTurn_.read() ? g1_.getResult() : g2_.getResult();
        outTurn_.write(!outTurn_.read());
        return y;
    }

    Method &startM, &getResultM;

  private:
    Gcd g1_, g2_;
    Reg<bool> inTurn_, outTurn_;
};

/**
 * Stream GCD requests through a module and count the cycles needed;
 * the two-unit version should approach twice the throughput, without
 * any change to the interface (paper Section III-B).
 */
template <typename G>
uint64_t
streamGcdCycles(uint32_t jobs)
{
    Kernel k;
    G g(k, "g");
    Reg<uint32_t> started(k, "started", 0);
    Reg<uint32_t> done(k, "done", 0);
    std::vector<uint32_t> results;
    Rule &feed = k.rule("feed", [&] {
        require(started.read() < jobs);
        g.start(1071 + started.read() * 3, 462);
        started.write(started.read() + 1);
    });
    feed.uses({&g.startM});
    Rule &drain = k.rule("drain", [&] {
        results.push_back(g.getResult());
        done.write(done.read() + 1);
    });
    drain.uses({&g.getResultM});
    k.elaborate();
    EXPECT_TRUE(k.runUntil([&] { return done.read() == jobs; }, 1000000));
    EXPECT_EQ(results.size(), jobs);
    for (uint32_t i = 0; i < jobs; i++) {
        uint32_t a = 1071 + i * 3, b = 462;
        while (b) {
            uint32_t t = a % b;
            a = b;
            b = t;
        }
        EXPECT_EQ(results[i], a) << "job " << i;
    }
    return k.cycleCount();
}

TEST(Gcd, TwoUnitVersionNearlyDoublesThroughput)
{
    uint64_t oneUnit = streamGcdCycles<Gcd>(64);
    uint64_t twoUnit = streamGcdCycles<TwoGcd>(64);
    // Round-robin across two units should cut the streaming time
    // substantially (paper: "up to twice the throughput").
    EXPECT_LT(twoUnit * 10, oneUnit * 7)
        << "two-unit GCD should be well under 70% of one-unit cycles";
}

} // namespace
