/**
 * @file
 * End-to-end OOO-core tests: whole programs run on the full system
 * (core + TLBs + coherent caches + DRAM), co-simulated against the
 * golden model commit-by-commit, across the paper's configurations.
 */
#include <gtest/gtest.h>

#include <random>

#include "mem/page_table.hh"
#include "cosim.hh"

using namespace riscy;
using namespace riscy::asmkit;
using namespace riscy::test;
using namespace riscy::isa;

namespace {

TEST(Core, ArithmeticLoop)
{
    Assembler a(kEntry);
    a.li(a0, 0);
    a.li(t0, 1);
    a.li(t1, 101);
    auto loop = a.newLabel();
    a.bind(loop);
    a.add(a0, a0, t0);
    a.addi(t0, t0, 1);
    a.bne(t0, t1, loop);
    emitExit(a);
    EXPECT_EQ(runCosim(a, SystemConfig::riscyooB()), 5050u);
}

TEST(Core, DependentChainAndBypass)
{
    Assembler a(kEntry);
    a.li(a0, 1);
    for (int i = 0; i < 40; i++) {
        a.addi(a0, a0, 3);
        a.slli(t0, a0, 1);
        a.sub(a0, t0, a0); // a0 = 2*a0 - a0 = a0 (+3 net per iter)
    }
    emitExit(a);
    EXPECT_EQ(runCosim(a, SystemConfig::riscyooB()), 121u);
}

TEST(Core, LoadsStoresAndForwarding)
{
    Assembler a(kEntry);
    Addr data = kEntry + 0x10000;
    a.li(s0, data);
    a.li(a0, 0);
    a.li(t0, 0);
    a.li(t1, 64);
    auto loop = a.newLabel();
    a.bind(loop);
    // store then immediately load back (store-to-load forwarding)
    a.slli(t2, t0, 3);
    a.add(t3, s0, t2);
    a.sd(t0, 0, t3);
    a.ld(t4, 0, t3);
    a.add(a0, a0, t4);
    a.addi(t0, t0, 1);
    a.bne(t0, t1, loop);
    emitExit(a);
    EXPECT_EQ(runCosim(a, SystemConfig::riscyooB()), 2016u);
}

TEST(Core, SubwordAccesses)
{
    Assembler a(kEntry);
    Addr data = kEntry + 0x10000;
    a.li(s0, data);
    a.li(t0, 0xf00dface);
    a.sw(t0, 0, s0);
    a.sh(t0, 4, s0);
    a.sb(t0, 6, s0);
    a.lw(t1, 0, s0);   // sext(0xf00dface)
    a.lhu(t2, 4, s0);  // 0xface
    a.lb(t3, 6, s0);   // sext(0xce)
    a.lbu(t4, 6, s0);  // 0xce
    a.add(a0, t1, t2);
    a.add(a0, a0, t3);
    a.add(a0, a0, t4);
    a.li(t5, 0xffff);
    a.and_(a0, a0, t5);
    emitExit(a);
    uint64_t expect = (0xfffffffff00dfaceull + 0xface +
                       0xffffffffffffffceull + 0xce) & 0xffff;
    EXPECT_EQ(runCosim(a, SystemConfig::riscyooB()), expect);
}

TEST(Core, BranchyCodeWithMispredicts)
{
    // Data-dependent branches on an LCG: exercises the tournament
    // predictor, speculation tags, and wrong-path recovery.
    Assembler a(kEntry);
    a.li(a0, 0);
    a.li(t0, 12345);
    a.li(t1, 0);
    a.li(t2, 400);
    a.li(t3, 1103515245);
    a.li(t4, 12345);
    auto loop = a.newLabel();
    auto skip = a.newLabel();
    auto join = a.newLabel();
    a.bind(loop);
    a.mul(t0, t0, t3);
    a.add(t0, t0, t4);
    a.srli(t5, t0, 16);
    a.andi(t5, t5, 1);
    a.beqz(t5, skip);
    a.addi(a0, a0, 7);
    a.j(join);
    a.bind(skip);
    a.addi(a0, a0, 1);
    a.bind(join);
    a.addi(t1, t1, 1);
    a.bne(t1, t2, loop);
    emitExit(a);

    Assembler check(kEntry); // compute expected with the golden model
    uint64_t code = runCosim(a, SystemConfig::riscyooB());
    // Cross-check against a plain host-side computation of the LCG.
    uint64_t x = 12345, acc = 0;
    for (int i = 0; i < 400; i++) {
        x = x * 1103515245 + 12345;
        acc += ((x >> 16) & 1) ? 7 : 1;
    }
    EXPECT_EQ(code, acc & 0x7fffffffffffffffull);
}

TEST(Core, FunctionCallsExerciseRas)
{
    Assembler a(kEntry);
    auto fn = a.newLabel();
    auto fn2 = a.newLabel();
    a.li(a0, 0);
    a.li(s1, 0);
    a.li(s2, 50);
    auto loop = a.newLabel();
    a.bind(loop);
    a.call(fn);
    a.addi(s1, s1, 1);
    a.bne(s1, s2, loop);
    emitExit(a);
    a.bind(fn);
    a.addi(sp, sp, -16);
    a.sd(ra, 0, sp);
    a.call(fn2);
    a.ld(ra, 0, sp);
    a.addi(sp, sp, 16);
    a.addi(a0, a0, 1);
    a.ret();
    a.bind(fn2);
    a.addi(a0, a0, 2);
    a.ret();
    EXPECT_EQ(runCosim(a, SystemConfig::riscyooB()), 150u);
}

TEST(Core, MulDivPipe)
{
    Assembler a(kEntry);
    a.li(a0, 0);
    a.li(t0, 1);
    a.li(t1, 30);
    auto loop = a.newLabel();
    a.bind(loop);
    a.mul(t2, t0, t0);
    a.div(t3, t2, t0); // == t0
    a.rem(t4, t2, t3); // == 0
    a.add(a0, a0, t3);
    a.add(a0, a0, t4);
    a.addi(t0, t0, 1);
    a.bne(t0, t1, loop);
    emitExit(a);
    EXPECT_EQ(runCosim(a, SystemConfig::riscyooB()), 435u); // sum 1..29
}

TEST(Core, LrScAmoSingleHart)
{
    Assembler a(kEntry);
    Addr data = kEntry + 0x10000;
    a.li(s0, data);
    a.li(t0, 5);
    a.sd(t0, 0, s0);
    a.fence();
    a.lr_d(t1, s0);
    a.addi(t1, t1, 1);
    a.sc_d(t2, t1, s0);   // success: t2 = 0, mem = 6
    a.li(t3, 10);
    a.amoadd_d(t4, t3, s0); // t4 = 6, mem = 16
    a.amomax_d(t5, t0, s0); // t5 = 16, mem = max(16,5)=16
    a.ld(a0, 0, s0);
    a.add(a0, a0, t2);
    a.add(a0, a0, t4);
    a.add(a0, a0, t5);     // 16+0+6+16 = 38
    emitExit(a);
    EXPECT_EQ(runCosim(a, SystemConfig::riscyooB()), 38u);
}

TEST(Core, CsrAccess)
{
    Assembler a(kEntry);
    a.csrr(a0, kCsrMhartid); // 0
    a.li(t0, 0xbeef);
    a.csrw(kCsrMscratch, t0);
    a.csrr(t1, kCsrMscratch);
    a.add(a0, a0, t1);
    a.csrr(t2, kCsrCycle); // volatile: not compared, must not trap
    a.csrr(t3, kCsrInstret);
    emitExit(a);
    EXPECT_EQ(runCosim(a, SystemConfig::riscyooB()), 0xbeefu);
}

TEST(Core, TrapAndMret)
{
    Assembler a(kEntry);
    auto cont = a.newLabel();
    a.j(cont);
    // handler at kEntry + 4
    a.csrr(a0, kCsrMcause);
    a.csrr(t1, kCsrMepc);
    a.addi(t1, t1, 4);
    a.csrw(kCsrMepc, t1);
    a.mret();
    a.bind(cont);
    a.li(t2, kEntry + 4);
    a.csrw(kCsrMtvec, t2);
    a.ecall();              // -> a0 = 11
    a.addi(a0, a0, 100);    // 111
    emitExit(a);
    EXPECT_EQ(runCosim(a, SystemConfig::riscyooB()), 111u);
}

TEST(Core, ConsoleOutput)
{
    Assembler a(kEntry);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Putchar));
    for (char ch : std::string("cmd")) {
        a.li(t0, ch);
        a.sd(t0, 0, t6);
    }
    a.li(a0, 7);
    emitExit(a);

    SystemConfig cfg = SystemConfig::riscyooB();
    System sys(cfg);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, {kStackTop});
    ASSERT_TRUE(sys.run(2000000));
    EXPECT_EQ(sys.host().exitCode(0), 7u);
    EXPECT_EQ(sys.host().console(), "cmd");
}

TEST(Core, RunsUnderSv39Paging)
{
    SystemConfig cfg = SystemConfig::riscyooB();
    cfg.cores = 1;
    System sys(cfg);

    FrameAllocator frames(kDramBase + 0x1000000);
    AddressSpace as(sys.mem(), frames);
    Addr textVa = 0x400000, dataVa = 0x10000000;
    Addr textPa = kDramBase, dataPa = kDramBase + 0x800000;
    as.mapRange(textVa, textPa, 0x10000, PTE_R | PTE_X);
    as.mapRange(dataVa, dataPa, 0x10000, PTE_R | PTE_W);
    as.map(kMmioBase, kMmioBase, PTE_R | PTE_W);
    Addr stackVa = 0x20000000;
    as.mapRange(stackVa - 0x4000, kDramBase + 0x900000, 0x4000,
                PTE_R | PTE_W);

    Assembler a(textVa);
    a.li(s0, dataVa);
    a.li(a0, 0);
    a.li(t0, 0);
    a.li(t1, 32);
    auto loop = a.newLabel();
    a.bind(loop);
    a.slli(t2, t0, 3);
    a.add(t3, s0, t2);
    a.sd(t2, 0, t3);
    a.ld(t4, 0, t3);
    a.add(a0, a0, t4);
    a.addi(t0, t0, 1);
    a.bne(t0, t1, loop);
    a.sd(a0, -8, sp); // touch the stack mapping too
    a.ld(a0, -8, sp);
    emitExit(a);
    a.load(sys.mem(), textPa);

    sys.elaborate();
    CoSim cosim;
    // (attach after load so the golden copy sees the program)
    cosim.attach(sys, 0, textVa, as.satp(), stackVa);
    sys.start(textVa, as.satp(), {stackVa});
    ASSERT_TRUE(sys.run(3000000));
    EXPECT_EQ(cosim.mismatches(), 0u);
    EXPECT_EQ(sys.host().exitCode(0), 8ull * (31 * 32 / 2));
}

/** Random programs across all four single-core configurations. */
class RandomProgramTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RandomProgramTest, MatchesGoldenModel)
{
    auto [cfgIdx, seed] = GetParam();
    SystemConfig cfg;
    switch (cfgIdx) {
      case 0:
        cfg = SystemConfig::riscyooB();
        break;
      case 1:
        cfg = SystemConfig::riscyooTPlus();
        break;
      case 2:
        cfg = SystemConfig::riscyooTPlusRPlus();
        break;
      default:
        cfg = SystemConfig::multicore(false); // WMM core
        cfg.cores = 1;
        break;
    }

    std::mt19937 rng(seed * 7919 + 13);
    Assembler a(kEntry);
    Addr data = kEntry + 0x20000;

    a.li(s0, data);
    a.li(s1, 0);      // loop counter
    a.li(s2, 40);     // iterations
    // Scratch pool excludes s0/s1/s2 (x8/x9/x18) and sp/ra.
    const int pool[] = {5, 6, 7, 10, 11, 12, 13, 14, 15, 16, 17};
    constexpr int kPool = 11;
    for (int r : pool)
        a.li(r, static_cast<int64_t>(rng() % 1000));
    auto loop = a.newLabel();
    a.bind(loop);
    for (int i = 0; i < 60; i++) {
        int rd = pool[rng() % kPool];
        int rs1 = pool[rng() % kPool];
        int rs2 = pool[rng() % kPool];
        switch (rng() % 12) {
          case 0:
            a.add(rd, rs1, rs2);
            break;
          case 1:
            a.sub(rd, rs1, rs2);
            break;
          case 2:
            a.xor_(rd, rs1, rs2);
            break;
          case 3:
            a.sltu(rd, rs1, rs2);
            break;
          case 4:
            a.addi(rd, rs1, static_cast<int32_t>(rng() % 1024) - 512);
            break;
          case 5:
            a.slli(rd, rs1, rng() % 32);
            break;
          case 6:
            a.mul(rd, rs1, rs2);
            break;
          case 7:
            a.divu(rd, rs1, rs2);
            break;
          case 8: { // store to random slot
            uint32_t off = (rng() % 128) * 8;
            a.sd(rs2, static_cast<int32_t>(off), s0);
            break;
          }
          case 9: { // load from random slot
            uint32_t off = (rng() % 128) * 8;
            a.ld(rd, static_cast<int32_t>(off), s0);
            break;
          }
          case 10: { // short forward branch
            auto skip = a.newLabel();
            a.beq(rs1, rs2, skip);
            a.addi(rd, rd, 1);
            a.xor_(rs1 == rd ? 6 : rs1, rs1, rd);
            a.bind(skip);
            break;
          }
          default: { // subword store/load pair
            uint32_t off = (rng() % 256) * 4;
            a.sw(rs2, static_cast<int32_t>(off), s0);
            a.lw(rd, static_cast<int32_t>(off), s0);
            break;
          }
        }
    }
    a.addi(s1, s1, 1);
    a.bne(s1, s2, loop);
    // Fold a checksum of the working registers into a0.
    a.mv(s3, 10); // stash a0's current value out of the fold
    a.li(a0, 0);
    a.add(a0, a0, s3);
    for (int r : pool) {
        if (r != 10)
            a.add(a0, a0, r);
    }
    emitExit(a);

    uint64_t checked = 0;
    runCosim(a, cfg, 4000000, &checked);
    EXPECT_GT(checked, 2000u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomProgramTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 3)));

TEST(Core, InOrderBaselineRunsPrograms)
{
    Assembler a(kEntry);
    a.li(a0, 0);
    a.li(t0, 1);
    a.li(t1, 101);
    auto loop = a.newLabel();
    a.bind(loop);
    a.add(a0, a0, t0);
    a.addi(t0, t0, 1);
    a.bne(t0, t1, loop);
    emitExit(a);

    SystemConfig cfg = SystemConfig::rocket(10);
    System sys(cfg);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, {kStackTop});
    ASSERT_TRUE(sys.run(2000000));
    EXPECT_EQ(sys.host().exitCode(0), 5050u);
}

TEST(Core, OooBeatsInOrderOnIlp)
{
    // The headline sanity check behind Fig. 17: the OOO core should
    // finish an ILP-rich loop in fewer cycles than the in-order core.
    auto build = [](Assembler &a) {
        a.li(a0, 0);
        a.li(t0, 0);
        a.li(t1, 200);
        auto loop = a.newLabel();
        a.bind(loop);
        // independent work in each iteration
        a.addi(t2, t0, 1);
        a.addi(t3, t0, 2);
        a.addi(t4, t0, 3);
        a.addi(t5, t0, 4);
        a.add(a0, a0, t2);
        a.add(a0, a0, t3);
        a.add(a0, a0, t4);
        a.add(a0, a0, t5);
        a.addi(t0, t0, 1);
        a.bne(t0, t1, loop);
        emitExit(a);
    };

    uint64_t oooCycles, ioCycles, expect = 0;
    for (int i = 0; i < 200; i++)
        expect += 4 * i + 10;
    {
        Assembler a(kEntry);
        build(a);
        System sys(SystemConfig::riscyooB());
        a.load(sys.mem(), kEntry);
        sys.elaborate();
        sys.start(kEntry, 0, {kStackTop});
        ASSERT_TRUE(sys.run(2000000));
        EXPECT_EQ(sys.host().exitCode(0), expect);
        oooCycles = sys.kernel().cycleCount();
    }
    {
        Assembler a(kEntry);
        build(a);
        System sys(SystemConfig::rocket(120));
        a.load(sys.mem(), kEntry);
        sys.elaborate();
        sys.start(kEntry, 0, {kStackTop});
        ASSERT_TRUE(sys.run(4000000));
        EXPECT_EQ(sys.host().exitCode(0), expect);
        ioCycles = sys.kernel().cycleCount();
    }
    EXPECT_LT(oooCycles, ioCycles);
}

} // namespace
