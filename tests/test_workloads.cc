/**
 * @file
 * Workload smoke tests: every SPEC-profile kernel builds, runs to
 * completion on RiscyOO-T+, and exhibits the event profile it was
 * designed for (TLB-bound kernels actually miss the TLB, dense
 * kernels do not, branchy kernels mispredict). Also the synthesis
 * model's calibration points.
 */
#include <gtest/gtest.h>

#include "synth/area_model.hh"
#include "workloads/workloads.hh"

using namespace riscy;

namespace {

System::EventCounts
runSpec(const std::string &name)
{
    auto all = workloads::specWorkloads();
    for (const auto &w : all) {
        if (w.name != name)
            continue;
        System sys(SystemConfig::riscyooTPlus());
        workloads::Image img = w.build(sys, 1);
        sys.elaborate();
        workloads::runToCompletion(sys, img, 100000000);
        return sys.events(0);
    }
    ADD_FAILURE() << "no workload " << name;
    return {};
}

double
perKilo(const System::EventCounts &ev, uint64_t n)
{
    return 1000.0 * double(n) / double(ev.instret);
}

TEST(Workloads, CatalogIsComplete)
{
    auto spec = workloads::specWorkloads();
    ASSERT_EQ(spec.size(), 11u);
    auto parsec = workloads::parsecWorkloads();
    ASSERT_EQ(parsec.size(), 7u);
}

TEST(Workloads, McfIsTlbBound)
{
    auto ev = runSpec("mcf");
    EXPECT_GT(ev.instret, 10000u);
    EXPECT_GT(perKilo(ev, ev.dtlbMisses), 30.0);
    EXPECT_GT(perKilo(ev, ev.l2tlbMisses), 10.0);
}

TEST(Workloads, HmmerIsDense)
{
    auto ev = runSpec("hmmer");
    EXPECT_GT(ev.instret, 100000u);
    EXPECT_LT(perKilo(ev, ev.dtlbMisses), 1.0);
    EXPECT_LT(perKilo(ev, ev.l1dMisses), 5.0);
    EXPECT_LT(perKilo(ev, ev.branchMispredicts), 5.0);
}

TEST(Workloads, SjengMispredicts)
{
    auto ev = runSpec("sjeng");
    EXPECT_GT(perKilo(ev, ev.branchMispredicts), 10.0);
}

TEST(Workloads, LibquantumMissesCaches)
{
    auto ev = runSpec("libquantum");
    EXPECT_GT(perKilo(ev, ev.l1dMisses), 15.0);
    EXPECT_LT(perKilo(ev, ev.dtlbMisses), 40.0);
}

TEST(Workloads, ParsecBlackscholesScales)
{
    auto parsec = workloads::parsecWorkloads();
    const auto &w = parsec.front();
    uint64_t roi1, roi4;
    {
        System sys(SystemConfig::multicore(true));
        auto img = w.build(sys, 1);
        sys.elaborate();
        workloads::runToCompletion(sys, img, 100000000);
        roi1 = workloads::roiCycles(sys);
    }
    {
        System sys(SystemConfig::multicore(true));
        auto img = w.build(sys, 4);
        sys.elaborate();
        workloads::runToCompletion(sys, img, 100000000);
        roi4 = workloads::roiCycles(sys);
    }
    // Strong scaling: 4 threads at least 2x faster than 1.
    EXPECT_LT(roi4 * 2, roi1);
}

TEST(SynthModel, MatchesPaperCalibration)
{
    auto t = synth::estimate(SystemConfig::riscyooTPlus().core);
    auto tr = synth::estimate(SystemConfig::riscyooTPlusRPlus().core);
    EXPECT_NEAR(t.nand2Mgates, 1.78, 0.05);
    EXPECT_NEAR(t.maxGhz, 1.1, 0.12);
    EXPECT_NEAR(tr.maxGhz, 1.0, 0.12);
    double overhead = (tr.nand2Mgates - t.nand2Mgates) / t.nand2Mgates;
    EXPECT_GT(overhead, 0.02);
    EXPECT_LT(overhead, 0.12); // paper: 6.2%
    // Bigger machines cost more logic and clock slower.
    auto w7 = synth::estimate(SystemConfig::wide7().core);
    EXPECT_GT(w7.nand2Mgates, tr.nand2Mgates);
    EXPECT_LT(w7.maxGhz, tr.maxGhz);
}

} // namespace
