/**
 * @file
 * Multicore tests: parallel kernels on the quad-core system under
 * both memory models, classic litmus tests (SB, MP) distinguishing
 * TSO from WMM behavior, LR/SC-based locks, and AMO contention —
 * exercising the MSI protocol, the TSO cacheEvict kills, and the WMM
 * store buffer end to end.
 */
#include <gtest/gtest.h>

#include "cosim.hh"

using namespace riscy;
using namespace riscy::asmkit;
using namespace riscy::test;
using namespace riscy::isa;

namespace {

constexpr Addr kData = kEntry + 0x40000;

/** FNV-1a over a snapshot buffer. */
uint64_t
digest(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

/** Emit "exit with code in a0" (per-hart). */
void
exitWith(Assembler &a)
{
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Exit));
    a.sd(a0, 0, t6);
    auto spin = a.newLabel();
    a.bind(spin);
    a.j(spin);
}

/** Branch by mhartid: hart 0 falls through; others go to @p other. */
void
splitByHart(Assembler &a, Assembler::Label other)
{
    a.csrr(t0, kCsrMhartid);
    a.bnez(t0, other);
}

std::vector<Addr>
stacks(uint32_t n)
{
    std::vector<Addr> s;
    for (uint32_t i = 0; i < n; i++)
        s.push_back(kEntry + 0x200000 + i * 0x10000);
    return s;
}

TEST(Multicore, AmoCountersAreAtomicAcrossHarts)
{
    for (bool tso : {true, false}) {
        SystemConfig cfg = SystemConfig::multicore(tso);
        System sys(cfg);
        Assembler a(kEntry);
        // Every hart adds 1 to a shared counter 200 times, then exits
        // with the final value it observed.
        a.li(s0, kData);
        a.li(s1, 0);
        a.li(s2, 200);
        a.li(t1, 1);
        auto loop = a.newLabel();
        a.bind(loop);
        a.amoadd_d(t2, t1, s0);
        a.addi(s1, s1, 1);
        a.bne(s1, s2, loop);
        // Wait until every hart's increments are visible, then exit
        // with the final count. (DRAM may hold a stale copy -- the
        // authoritative value lives in the coherent caches.)
        a.li(t3, 800);
        auto wait = a.newLabel();
        a.bind(wait);
        a.ld(a0, 0, s0);
        a.blt(a0, t3, wait);
        exitWith(a);
        a.load(sys.mem(), kEntry);
        sys.elaborate();
        sys.start(kEntry, 0, stacks(4));
        ASSERT_TRUE(sys.run(4000000)) << (tso ? "TSO" : "WMM");
        for (uint32_t i = 0; i < 4; i++)
            EXPECT_EQ(sys.host().exitCode(i), 800u)
                << (tso ? "TSO" : "WMM");
    }
}

TEST(Multicore, SpinlockProtectsCriticalSection)
{
    for (bool tso : {true, false}) {
        SystemConfig cfg = SystemConfig::multicore(tso);
        System sys(cfg);
        Assembler a(kEntry);
        Addr lock = kData, shared = kData + 64;
        a.li(s0, lock);
        a.li(s2, shared);
        a.li(s1, 0);
        a.li(s3, 40); // per-hart acquisitions (AMO contention is slow)
        auto loop = a.newLabel();
        auto acquire = a.newLabel();
        auto retry = a.newLabel();
        a.bind(loop);
        // acquire: amoswap 1 until old value was 0
        a.bind(acquire);
        a.li(t1, 1);
        a.bind(retry);
        a.amoswap_d(t2, t1, s0);
        a.bnez(t2, retry);
        // TSO guarantees the acquire ordering without a fence (the
        // LSQ holds loads behind incomplete older atomics); WMM needs
        // an explicit fence. Running the TSO flavor fence-free is a
        // regression test for that LSQ ordering rule.
        if (!tso)
            a.fence();
        // critical section: non-atomic read-modify-write
        a.ld(t3, 0, s2);
        a.addi(t3, t3, 1);
        a.sd(t3, 0, s2);
        // release
        a.fence();
        a.sd(zero, 0, s0);
        a.addi(s1, s1, 1);
        a.bne(s1, s3, loop);
        a.li(t4, 160);
        auto wait = a.newLabel();
        a.bind(wait);
        a.ld(a0, 0, s2);
        a.blt(a0, t4, wait);
        exitWith(a);
        a.load(sys.mem(), kEntry);
        sys.elaborate();
        sys.start(kEntry, 0, stacks(4));
        ASSERT_TRUE(sys.run(30000000)) << (tso ? "TSO" : "WMM");
        for (uint32_t i = 0; i < 4; i++)
            EXPECT_EQ(sys.host().exitCode(i), 160u)
                << (tso ? "TSO" : "WMM");
    }
}

TEST(Multicore, MessagePassingRespectedUnderTso)
{
    // MP litmus: hart0 writes data then flag; hart1 spins on the flag
    // then reads data. Under TSO (and our fence-free code) hart1 must
    // always observe the data write.
    SystemConfig cfg = SystemConfig::multicore(true);
    cfg.cores = 2;
    cfg.mem.cores = 2;
    System sys(cfg);
    Assembler a(kEntry);
    Addr dataA = kData, flag = kData + 256;
    auto hart1 = a.newLabel();
    splitByHart(a, hart1);
    // hart 0: 100 rounds of data++ then flag=round
    a.li(s0, dataA);
    a.li(s1, flag);
    a.li(s2, 0);
    a.li(s3, 100);
    auto l0 = a.newLabel();
    a.bind(l0);
    a.addi(s2, s2, 1);
    a.sd(s2, 0, s0); // data = round
    a.sd(s2, 0, s1); // flag = round (TSO: ordered after data)
    a.bne(s2, s3, l0);
    a.li(a0, 0);
    exitWith(a);
    // hart 1: for each round, spin until flag >= round, check data
    a.bind(hart1);
    a.li(s0, dataA);
    a.li(s1, flag);
    a.li(s2, 0);
    a.li(s3, 100);
    a.li(a0, 0); // error count
    auto l1 = a.newLabel();
    auto spin1 = a.newLabel();
    a.bind(l1);
    a.addi(s2, s2, 1);
    a.bind(spin1);
    a.ld(t1, 0, s1);
    a.blt(t1, s2, spin1); // wait flag >= round
    a.ld(t2, 0, s0);      // data must be >= round under TSO
    auto ok = a.newLabel();
    a.bge(t2, s2, ok);
    a.addi(a0, a0, 1); // violation!
    a.bind(ok);
    a.bne(s2, s3, l1);
    exitWith(a);

    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(2));
    ASSERT_TRUE(sys.run(6000000));
    EXPECT_EQ(sys.host().exitCode(1), 0u) << "TSO MP violation";
}

TEST(Multicore, MessagePassingWithFenceUnderWmm)
{
    // Under WMM the data->flag order needs a fence; with it, the
    // consumer must never see the flag without the data.
    SystemConfig cfg = SystemConfig::multicore(false);
    cfg.cores = 2;
    cfg.mem.cores = 2;
    System sys(cfg);
    Assembler a(kEntry);
    Addr dataA = kData, flag = kData + 256;
    auto hart1 = a.newLabel();
    splitByHart(a, hart1);
    a.li(s0, dataA);
    a.li(s1, flag);
    a.li(s2, 0);
    a.li(s3, 50);
    auto l0 = a.newLabel();
    a.bind(l0);
    a.addi(s2, s2, 1);
    a.sd(s2, 0, s0);
    a.fence(); // order data before flag under WMM
    a.sd(s2, 0, s1);
    a.bne(s2, s3, l0);
    a.li(a0, 0);
    exitWith(a);
    a.bind(hart1);
    a.li(s0, dataA);
    a.li(s1, flag);
    a.li(s2, 0);
    a.li(s3, 50);
    a.li(a0, 0);
    auto l1 = a.newLabel();
    auto spin1 = a.newLabel();
    a.bind(l1);
    a.addi(s2, s2, 1);
    a.bind(spin1);
    a.ld(t1, 0, s1);
    a.blt(t1, s2, spin1);
    a.fence(); // load-load order on the consumer side
    a.ld(t2, 0, s0);
    auto ok = a.newLabel();
    a.bge(t2, s2, ok);
    a.addi(a0, a0, 1);
    a.bind(ok);
    a.bne(s2, s3, l1);
    exitWith(a);

    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(2));
    ASSERT_TRUE(sys.run(6000000));
    EXPECT_EQ(sys.host().exitCode(1), 0u) << "WMM fenced MP violation";
}

TEST(Multicore, StoreBufferLitmusShowsWmmReordering)
{
    // SB litmus: hartX: x=1; r=y / hartY: y=1; r=x. The outcome
    // r0==0 && r1==0 is forbidden under SC but allowed under both TSO
    // and WMM (store buffering). We check the system runs it and
    // report the observed outcomes; at minimum the kernel must not
    // produce r values other than {0,1}.
    for (bool tso : {true, false}) {
        SystemConfig cfg = SystemConfig::multicore(tso);
        cfg.cores = 2;
        cfg.mem.cores = 2;
        System sys(cfg);
        Assembler a(kEntry);
        Addr x = kData, y = kData + 256, out = kData + 512;
        auto hart1 = a.newLabel();
        splitByHart(a, hart1);
        a.li(s0, x);
        a.li(s1, y);
        a.li(t1, 1);
        a.sd(t1, 0, s0); // x = 1
        a.ld(a0, 0, s1); // r0 = y
        exitWith(a);
        a.bind(hart1);
        a.li(s0, x);
        a.li(s1, y);
        a.li(t1, 1);
        a.sd(t1, 0, s1); // y = 1
        a.ld(a0, 0, s0); // r1 = x
        exitWith(a);
        (void)out;
        a.load(sys.mem(), kEntry);
        sys.elaborate();
        sys.start(kEntry, 0, stacks(2));
        ASSERT_TRUE(sys.run(3000000));
        uint64_t r0 = sys.host().exitCode(0);
        uint64_t r1 = sys.host().exitCode(1);
        EXPECT_LE(r0, 1u);
        EXPECT_LE(r1, 1u);
    }
}

TEST(Multicore, FalseSharingPingPongStaysCoherent)
{
    // Two harts increment adjacent fields of one cache line; the MSI
    // protocol must serialize ownership without losing updates (each
    // hart's own field is private, so plain loads/stores suffice).
    for (bool tso : {true, false}) {
        SystemConfig cfg = SystemConfig::multicore(tso);
        cfg.cores = 2;
        cfg.mem.cores = 2;
        System sys(cfg);
        Assembler a(kEntry);
        a.csrr(t0, kCsrMhartid);
        a.slli(t0, t0, 3);
        a.li(s0, kData);
        a.add(s0, s0, t0); // &field[hart]
        a.li(s1, 0);
        a.li(s2, 300);
        auto loop = a.newLabel();
        a.bind(loop);
        a.ld(t1, 0, s0);
        a.addi(t1, t1, 1);
        a.sd(t1, 0, s0);
        a.addi(s1, s1, 1);
        a.bne(s1, s2, loop);
        a.ld(a0, 0, s0);
        exitWith(a);
        a.load(sys.mem(), kEntry);
        sys.elaborate();
        sys.start(kEntry, 0, stacks(2));
        ASSERT_TRUE(sys.run(6000000));
        EXPECT_EQ(sys.host().exitCode(0), 300u);
        EXPECT_EQ(sys.host().exitCode(1), 300u);
    }
}

TEST(Multicore, TsoEvictKillsAreCountedWhenSharingIsHot)
{
    // Heavy sharing on TSO should exercise the cacheEvict kill path
    // at least occasionally (paper: <= 0.25 kills per kinst).
    SystemConfig cfg = SystemConfig::multicore(true);
    System sys(cfg);
    Assembler a(kEntry);
    a.li(s0, kData);
    a.li(s1, 0);
    a.li(s2, 400);
    a.csrr(t0, kCsrMhartid);
    auto loop = a.newLabel();
    a.bind(loop);
    // Everyone loads both shared words and stores to one of them.
    a.ld(t1, 0, s0);
    a.ld(t2, 8, s0);
    a.add(t3, t1, t2);
    a.sd(t3, 0, s0);
    a.addi(s1, s1, 1);
    a.bne(s1, s2, loop);
    a.li(a0, 0);
    exitWith(a);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(4));
    ASSERT_TRUE(sys.run(8000000));
    uint64_t kills = 0;
    for (uint32_t i = 0; i < 4; i++)
        kills += sys.events(i).evictKills;
    // Not a strict bound — just prove the machinery is alive.
    EXPECT_GE(kills + sys.events(0).ldKills, 0u);
    SUCCEED();
}

/**
 * Server-scale digest cosim: the 16-core banked system (4 L2 slices
 * behind BankRouters + the DramCtl contention model) rewound and
 * replayed under every SchedulerKind, plus capped-lookahead parallel
 * legs — every leg bit-identical to the exhaustive reference.
 *
 * One System instance is rewound (cross-instance raw digests are
 * invalid — struct padding) and the workload is load-only: PhysMem
 * sits outside the kernel snapshot, so a replay requires memory stay
 * untouched.
 */
TEST(Multicore, SixteenCoreBankedDigestCosim)
{
    constexpr uint32_t kCores = 16;
    SystemConfig cfg = SystemConfig::serverConfig(kCores, 4);
    cfg.scheduler = cmd::SchedulerKind::Exhaustive;
    System sys(cfg);
    Assembler a(kEntry);
    // Load-only accumulator over a 4 KB window with a short branch
    // pattern: private L1 pressure plus shared lines migrating through
    // all four bank slices.
    a.li(5, kEntry + 0x10000);
    a.li(6, 0);
    a.li(7, 0);
    auto loop = a.newLabel();
    a.bind(loop);
    a.andi(28, 6, 511);
    a.slli(28, 28, 3);
    a.add(28, 28, 5);
    a.ld(29, 0, 28);
    a.add(7, 7, 29);
    a.andi(30, 6, 7);
    auto skip = a.newLabel();
    a.bnez(30, skip);
    a.xor_(7, 7, 6);
    a.bind(skip);
    a.addi(6, 6, 1);
    a.j(loop);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(kCores));
    auto snap0 = sys.kernel().snapshot();

    constexpr uint64_t kChunk = 1500;
    constexpr uint64_t kTotal = 6000;
    std::vector<uint64_t> ref;
    for (uint64_t c = 0; c < kTotal; c += kChunk) {
        sys.kernel().run(kChunk);
        ref.push_back(digest(sys.kernel().snapshot()));
    }
    for (uint32_t i = 0; i < kCores; i++)
        EXPECT_GT(sys.instret(i), 50u) << "hart " << i << " barely ran";

    auto replay = [&](cmd::SchedulerKind kind, uint32_t threads,
                      uint32_t lookahead, const char *label) {
        sys.kernel().restore(snap0);
        if (threads)
            sys.kernel().setParallelThreads(threads);
        sys.kernel().setScheduler(kind);
        if (lookahead)
            sys.kernel().setLookahead(lookahead);
        for (uint64_t c = 0; c < kTotal; c += kChunk) {
            sys.kernel().run(kChunk);
            ASSERT_EQ(ref[c / kChunk], digest(sys.kernel().snapshot()))
                << label << " diverged by cycle " << c + kChunk;
        }
    };
    replay(cmd::SchedulerKind::EventDriven, 0, 0, "event");
    replay(cmd::SchedulerKind::Compiled, 0, 0, "compiled");
    replay(cmd::SchedulerKind::Parallel, 4, 0, "parallel");
    ASSERT_TRUE(sys.kernel().parallelActive());
    // 16 hart domains + 4 bank-slice domains + the DRAM controller.
    EXPECT_EQ(sys.kernel().domainCount(), kCores + 4 + 1);
    // The server preset keeps every cross-domain channel at >= 4
    // cycles, so multi-cycle lookahead windows are genuinely open.
    EXPECT_GE(sys.kernel().fifoMinLookahead(), 4u);
    replay(cmd::SchedulerKind::Parallel, 4, 1, "parallel-la1");
    replay(cmd::SchedulerKind::Parallel, 4, 4, "parallel-la4");
    EXPECT_EQ(sys.kernel().effectiveLookahead(), 4u);
}

} // namespace
