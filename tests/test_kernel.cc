/**
 * @file
 * Unit tests for the CMD kernel: guarded methods, rule atomicity,
 * conflict-matrix enforcement, scheduling, snapshots, and the paper's
 * GCD example (Section III).
 */
#include <gtest/gtest.h>

#include "core/cmd.hh"

using namespace cmd;

namespace {

/** Expect @p body to raise a KernelFault whose message mentions @p what. */
template <typename Fn>
void
expectFault(Fn &&body, FaultKind kind, const char *what)
{
    try {
        body();
        FAIL() << "expected KernelFault mentioning '" << what << "'";
    } catch (const KernelFault &f) {
        EXPECT_EQ(f.kind(), kind) << f.describe();
        EXPECT_NE(f.message().find(what), std::string::npos)
            << f.describe();
    }
}

/** The paper's mkGCD module (Fig. 2), expressed in the framework. */
class Gcd : public Module
{
  public:
    Gcd(Kernel &k, const std::string &name)
        : Module(k, name),
          startM(method("start")), getResultM(method("getResult")),
          x_(k, name + ".x", 0u), y_(k, name + ".y", 0u),
          busy_(k, name + ".busy", false)
    {
        // start and getResult both update busy: they conflict, as the
        // paper notes the BSV compiler would derive.
        conflictPair(startM, getResultM);
        doGcd_ = &kernel().rule(name + ".doGCD", [this] { doGcd(); });
        doGcd_->when([this] { return x_.read() != 0; });
    }

    void
    start(uint32_t a, uint32_t b)
    {
        startM();
        require(!busy_.read());
        x_.write(a);
        y_.write(b == 0 ? a : b);
        busy_.write(true);
    }

    uint32_t
    getResult()
    {
        getResultM();
        require(busy_.read() && x_.read() == 0);
        busy_.write(false);
        return y_.read();
    }

    bool resultReady() const { return busy_.read() && x_.read() == 0; }
    bool idle() const { return !busy_.read(); }

    Method &startM, &getResultM;

  private:
    void
    doGcd()
    {
        require(x_.read() != 0);
        if (x_.read() >= y_.read()) {
            x_.write(x_.read() - y_.read());
        } else {
            // The classic register swap: reads see rule-start values.
            x_.write(y_.read());
            y_.write(x_.read());
        }
    }

    Reg<uint32_t> x_, y_;
    Reg<bool> busy_;
    Rule *doGcd_;
};

uint32_t
refGcd(uint32_t a, uint32_t b)
{
    while (b != 0) {
        uint32_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

TEST(Gcd, ComputesGcdLatencyInsensitively)
{
    Kernel k;
    Gcd gcd(k, "gcd");
    k.elaborate();

    uint32_t result = 0;
    for (auto [a, b] : std::vector<std::pair<uint32_t, uint32_t>>{
             {105, 45}, {7, 13}, {1, 1}, {10000, 8}, {17, 0}}) {
        k.cycle(); // new cycle: start may not share a cycle with getResult
        ASSERT_TRUE(k.runAtomically([&] { gcd.start(a, b); }));
        ASSERT_TRUE(k.runUntil([&] { return gcd.resultReady(); }, 100000));
        ASSERT_TRUE(k.runAtomically([&] { result = gcd.getResult(); }));
        EXPECT_EQ(result, refGcd(a, b == 0 ? a : b)) << a << "," << b;
        EXPECT_TRUE(gcd.idle());
    }
}

TEST(Gcd, StartBlockedWhileBusy)
{
    Kernel k;
    Gcd gcd(k, "gcd");
    k.elaborate();

    ASSERT_TRUE(k.runAtomically([&] { gcd.start(48, 36); }));
    // Guard of start is false while busy: the action must not commit.
    EXPECT_FALSE(k.runAtomically([&] { gcd.start(5, 10); }));
    ASSERT_TRUE(k.runUntil([&] { return gcd.resultReady(); }, 1000));
    uint32_t r = 0;
    ASSERT_TRUE(k.runAtomically([&] { r = gcd.getResult(); }));
    EXPECT_EQ(r, 12u); // still the first request's answer
}

TEST(Gcd, StartAndGetResultConflictInOneCycle)
{
    Kernel k;
    Gcd gcd(k, "gcd");

    Reg<uint32_t> got(k, "got", 0);
    Reg<uint32_t> fedCount(k, "fed", 0);
    // Consumer first, producer second; they call conflicting methods
    // so only one of them may fire per cycle.
    Rule &consume = k.rule("consume", [&] {
        got.write(gcd.getResult());
    });
    consume.uses({&gcd.getResultM});
    Rule &feed = k.rule("feed", [&] {
        gcd.start(36, 48);
        fedCount.write(fedCount.read() + 1);
    });
    feed.uses({&gcd.startM});
    k.elaborate();

    EXPECT_EQ(k.ruleRelation(consume, feed), Conflict::C);

    k.runUntil([&] { return got.read() != 0; }, 1000);
    EXPECT_EQ(got.read(), 12u);
    // In the cycle where consume fired, feed must have been CM-blocked
    // at least once across the run (they were never in one cycle).
    EXPECT_GE(feed.cmAbortCount() + feed.guardAbortCount(), 1u);
}

// ---------------------------------------------------------------- atomicity

TEST(Atomicity, AbortedRuleLeavesNoTrace)
{
    Kernel k;
    Reg<int> a(k, "a", 1);
    Reg<int> b(k, "b", 2);
    Rule &r = k.rule("failLate", [&] {
        a.write(100);
        b.write(200);
        require(false); // guard fails after both writes
    });
    (void)r;
    k.elaborate();
    k.cycle();
    EXPECT_EQ(a.read(), 1);
    EXPECT_EQ(b.read(), 2);
    EXPECT_EQ(r.guardAbortCount(), 1u);
    EXPECT_EQ(r.firedCount(), 0u);
}

TEST(Atomicity, SwapSemantics)
{
    Kernel k;
    Reg<int> x(k, "x", 7);
    Reg<int> y(k, "y", 9);
    k.rule("swap", [&] {
        x.write(y.read());
        y.write(x.read());
    });
    k.elaborate();
    k.cycle();
    EXPECT_EQ(x.read(), 9);
    EXPECT_EQ(y.read(), 7);
}

TEST(Atomicity, DoubleWriteIsDesignError)
{
    Kernel k;
    Reg<int> x(k, "x", 0);
    k.rule("dw", [&] {
        x.write(1);
        x.write(2);
    });
    k.elaborate();
    expectFault([&] { k.cycle(); }, FaultKind::DesignError, "double write");
}

TEST(Atomicity, LaterRuleSeesEarlierCommit)
{
    Kernel k;
    Reg<int> x(k, "x", 0);
    Reg<int> seen(k, "seen", -1);
    k.rule("writer", [&] { x.write(42); });
    k.rule("reader", [&] { seen.write(x.read()); });
    k.elaborate();
    k.cycle();
    // Registration order is the schedule order here (no CM edges), so
    // reader observes writer's committed value within the same cycle.
    EXPECT_EQ(seen.read(), 42);
}

TEST(Atomicity, StableReadSeesCycleStart)
{
    Kernel k;
    Reg<int> x(k, "x", 5);
    Reg<int> stable(k, "stable", -1);
    Reg<int> cur(k, "cur", -1);
    k.rule("writer", [&] { x.write(42); });
    k.rule("reader", [&] {
        stable.write(x.readStable());
        cur.write(x.read());
    });
    k.elaborate();
    k.cycle();
    EXPECT_EQ(stable.read(), 5);
    EXPECT_EQ(cur.read(), 42);
    k.cycle();
    EXPECT_EQ(stable.read(), 42);
}

// --------------------------------------------------------- CM and schedule

/** Two-method counter used to exercise CM declarations. */
class Counter : public Module
{
  public:
    Counter(Kernel &k, const std::string &name, Conflict rel)
        : Module(k, name), incM(method("inc")), decM(method("dec")),
          v_(k, name + ".v", 0)
    {
        setCm(incM, decM, rel);
    }

    void
    inc()
    {
        incM();
        v_.write(v_.read() + 1);
    }

    void
    dec()
    {
        decM();
        v_.write(v_.read() - 1);
    }

    int value() const { return v_.read(); }

    Method &incM, &decM;

  private:
    Reg<int> v_;
};

TEST(Cm, ConflictingMethodsNeverShareACycle)
{
    Kernel k;
    Counter c(k, "c", Conflict::C);
    Rule &r1 = k.rule("r1", [&] { c.inc(); });
    r1.uses({&c.incM});
    Rule &r2 = k.rule("r2", [&] { c.dec(); });
    r2.uses({&c.decM});
    k.elaborate();
    EXPECT_EQ(k.ruleRelation(r1, r2), Conflict::C);
    k.cycle();
    // Only the first scheduled rule fires; the second is CM-blocked.
    EXPECT_EQ(c.value(), 1);
    EXPECT_EQ(r1.firedCount(), 1u);
    EXPECT_EQ(r2.cmAbortCount(), 1u);
}

TEST(Cm, OrderedMethodsShareACycleInCmOrder)
{
    Kernel k;
    Counter c(k, "c", Conflict::LT); // inc < dec
    // Register them in the *wrong* order: dec first. The scheduler
    // must still run inc before dec (topological order of "<").
    Reg<int> seenByDec(k, "seen", -1);
    Rule &rd = k.rule("rDec", [&] {
        c.dec();
        seenByDec.write(c.value());
    });
    rd.uses({&c.decM});
    Rule &ri = k.rule("rInc", [&] { c.inc(); });
    ri.uses({&c.incM});
    k.elaborate();
    EXPECT_EQ(k.ruleRelation(ri, rd), Conflict::LT);
    ASSERT_EQ(k.scheduleOrder().size(), 2u);
    EXPECT_EQ(k.scheduleOrder()[0], &ri);
    EXPECT_EQ(k.scheduleOrder()[1], &rd);
    k.cycle();
    EXPECT_EQ(c.value(), 0);      // both fired
    EXPECT_EQ(seenByDec.read(), 1); // dec observed inc's effect
    EXPECT_EQ(ri.firedCount(), 1u);
    EXPECT_EQ(rd.firedCount(), 1u);
}

TEST(Cm, ConflictFreeMethodsBothFire)
{
    Kernel k;
    Counter c(k, "c", Conflict::CF);
    Rule &r1 = k.rule("r1", [&] { c.inc(); });
    r1.uses({&c.incM});
    Rule &r2 = k.rule("r2", [&] { c.dec(); });
    r2.uses({&c.decM});
    k.elaborate();
    EXPECT_EQ(k.ruleRelation(r1, r2), Conflict::CF);
    k.cycle();
    EXPECT_EQ(c.value(), 0);
    EXPECT_EQ(r1.firedCount(), 1u);
    EXPECT_EQ(r2.firedCount(), 1u);
}

TEST(Cm, SameMethodTwicePerCycleIsConflictByDefault)
{
    Kernel k;
    Counter c(k, "c", Conflict::CF);
    Rule &r1 = k.rule("r1", [&] { c.inc(); });
    r1.uses({&c.incM});
    Rule &r2 = k.rule("r2", [&] { c.inc(); });
    r2.uses({&c.incM});
    k.elaborate();
    EXPECT_EQ(k.ruleRelation(r1, r2), Conflict::C);
    k.cycle();
    EXPECT_EQ(c.value(), 1);
}

TEST(Cm, CombinationalCycleDetected)
{
    // A two-rule "<" cycle collapses to C (mixed orderings conflict),
    // so a genuine combinational cycle needs three rules:
    // r1 < r2 (via c1), r2 < r3 (via c2), r3 < r1 (via c3).
    Kernel k;
    Counter c1(k, "c1", Conflict::LT); // inc < dec
    Counter c2(k, "c2", Conflict::LT);
    Counter c3(k, "c3", Conflict::LT);
    Rule &r1 = k.rule("r1", [&] {
        c1.inc();
        c3.dec();
    });
    r1.uses({&c1.incM, &c3.decM});
    Rule &r2 = k.rule("r2", [&] {
        c1.dec();
        c2.inc();
    });
    r2.uses({&c1.decM, &c2.incM});
    Rule &r3 = k.rule("r3", [&] {
        c2.dec();
        c3.inc();
    });
    r3.uses({&c2.decM, &c3.incM});
    EXPECT_THROW(k.elaborate(), ElaborationError);
}

TEST(Cm, MixedOrderingWithinOnePairIsConflict)
{
    Kernel k;
    Counter c1(k, "c1", Conflict::LT);
    Counter c2(k, "c2", Conflict::GT);
    Rule &r1 = k.rule("r1", [&] {
        c1.inc();
        c2.inc();
    });
    r1.uses({&c1.incM, &c2.incM});
    Rule &r2 = k.rule("r2", [&] {
        c1.dec();
        c2.dec();
    });
    r2.uses({&c1.decM, &c2.decM});
    k.elaborate();
    // c1 demands r1<r2, c2 demands r2<r1: the pair conflicts.
    EXPECT_EQ(k.ruleRelation(r1, r2), Conflict::C);
}

TEST(Cm, UndeclaredMethodCallIsDesignError)
{
    Kernel k;
    Counter c(k, "c", Conflict::CF);
    k.rule("sneaky", [&] { c.inc(); }); // no uses() declaration
    k.elaborate();
    expectFault([&] { k.cycle(); }, FaultKind::DesignError,
                "did not declare");
}

TEST(Cm, IntraRuleConflictIsDesignError)
{
    Kernel k;
    Counter c(k, "c", Conflict::C);
    Rule &r = k.rule("both", [&] {
        c.inc();
        c.dec();
    });
    r.uses({&c.incM, &c.decM});
    k.elaborate();
    expectFault([&] { k.cycle(); }, FaultKind::DesignError,
                "conflicting methods");
}

TEST(Cm, SubcallsPropagateIntoRuleRelation)
{
    Kernel k;
    Counter inner(k, "inner", Conflict::C);

    // A wrapper module whose method internally calls inner.inc.
    class Wrapper : public Module
    {
      public:
        Wrapper(Kernel &k, Counter &inner)
            : Module(k, "wrap"), inner_(inner), pokeM(method("poke"))
        {
            pokeM.subcalls({&inner.incM});
        }

        void
        poke()
        {
            pokeM();
            inner_.inc();
        }

        Counter &inner_;
        Method &pokeM;
    };
    Wrapper w(k, inner);

    Rule &r1 = k.rule("viaWrapper", [&] { w.poke(); });
    r1.uses({&w.pokeM});
    Rule &r2 = k.rule("direct", [&] { inner.dec(); });
    r2.uses({&inner.decM});
    k.elaborate();
    // The hidden inner.inc C inner.dec conflict must surface.
    EXPECT_EQ(k.ruleRelation(r1, r2), Conflict::C);
    k.cycle();
    EXPECT_EQ(inner.value(), 1); // only r1 fired
}

// ------------------------------------------------------------- Ehr

TEST(Ehr, IntraRuleForwardingByPort)
{
    Kernel k;
    Ehr<int> e(k, "e", 3, 10);
    Reg<int> seen0(k, "s0", -1), seen1(k, "s1", -1), seen2(k, "s2", -1);
    k.rule("r", [&] {
        seen0.write(e.read(0)); // before any port write: committed value
        e.write(0, 20);
        seen1.write(e.read(1)); // sees port-0 write
        e.write(1, 30);
        seen2.write(e.read(2)); // sees port-1 write
    });
    k.elaborate();
    k.cycle();
    EXPECT_EQ(seen0.read(), 10);
    EXPECT_EQ(seen1.read(), 20);
    EXPECT_EQ(seen2.read(), 30);
    EXPECT_EQ(e.read(0), 30); // highest port wins at commit
}

TEST(Ehr, AbortDiscardsAllPorts)
{
    Kernel k;
    Ehr<int> e(k, "e", 2, 1);
    k.rule("r", [&] {
        e.write(0, 99);
        require(false);
    });
    k.elaborate();
    k.cycle();
    EXPECT_EQ(e.read(0), 1);
}

// ------------------------------------------------------------ snapshots

TEST(Snapshot, RoundTripsAllState)
{
    Kernel k;
    Reg<uint64_t> a(k, "a", 5);
    RegArray<uint32_t> arr(k, "arr", 8, 3);
    Ehr<int> e(k, "e", 2, -4);
    k.rule("mutate", [&] {
        a.write(a.read() + 1);
        arr.write(2, arr.read(2) + 10);
        e.write(0, e.read(0) - 1);
    });
    k.elaborate();
    k.run(3);
    auto snap = k.snapshot();
    uint64_t cyc = k.cycleCount();
    k.run(5);
    EXPECT_NE(a.read(), 8u);
    k.restore(snap);
    EXPECT_EQ(k.cycleCount(), cyc);
    EXPECT_EQ(a.read(), 8u);
    EXPECT_EQ(arr.read(2), 33u);
    EXPECT_EQ(e.read(0), -7);
}

// -------------------------------------------------------------- RegArray

TEST(RegArray, StableReadTracksOverwrites)
{
    Kernel k;
    RegArray<int> arr(k, "arr", 4, 0);
    Reg<int> stable(k, "st", -1);
    k.rule("w", [&] { arr.write(1, 55); });
    k.rule("r", [&] { stable.write(arr.readStable(1)); });
    k.elaborate();
    k.cycle();
    EXPECT_EQ(arr.read(1), 55);
    EXPECT_EQ(stable.read(), 0);
    k.cycle();
    EXPECT_EQ(stable.read(), 55);
}

TEST(RegArray, OutOfRangeFaults)
{
    Kernel k;
    RegArray<int> arr(k, "arr", 4, 0);
    k.rule("r", [&] { arr.write(9, 1); });
    k.elaborate();
    expectFault([&] { k.cycle(); }, FaultKind::DesignError, "out of range");
}

// -------------------------------------------------- one-rule-at-a-time

/**
 * Property: a cycle's fired-rule sequence, replayed one rule per
 * "cycle" from the pre-cycle state, reaches the same post-cycle state.
 * This is the paper's core semantic claim about CMD schedules.
 */
TEST(Semantics, FiredSequenceEqualsSequentialReplay)
{
    Kernel k;
    Counter a(k, "a", Conflict::LT);
    Counter b(k, "b", Conflict::CF);
    Reg<int> x(k, "x", 0);

    Rule &r1 = k.rule("r1", [&] {
        a.inc();
        x.write(x.read() + a.value());
    });
    r1.uses({&a.incM});
    Rule &r2 = k.rule("r2", [&] {
        require(x.read() % 3 != 2);
        a.dec();
        b.inc();
    });
    r2.uses({&a.decM, &b.incM});
    Rule &r3 = k.rule("r3", [&] {
        require(b.value() < 5);
        b.dec();
    });
    r3.uses({&b.decM});
    k.elaborate();

    for (int trial = 0; trial < 50; trial++) {
        auto pre = k.snapshot();
        k.cycle();
        auto post = k.snapshot();

        // Collect which rules fired, in schedule order.
        std::vector<Rule *> fired;
        for (Rule *r : k.scheduleOrder()) {
            if (r->lastOutcome() == Rule::Outcome::Fired)
                fired.push_back(r);
        }

        // Replay one-by-one from the pre-state.
        k.restore(pre);
        for (Rule *r : fired) {
            bool ok = false;
            if (r == &r1) {
                ok = k.runAtomically([&] {
                    a.inc();
                    x.write(x.read() + a.value());
                });
            } else if (r == &r2) {
                ok = k.runAtomically([&] {
                    require(x.read() % 3 != 2);
                    a.dec();
                    b.inc();
                });
            } else {
                ok = k.runAtomically([&] {
                    require(b.value() < 5);
                    b.dec();
                });
            }
            EXPECT_TRUE(ok) << "replayed rule must fire";
        }
        // Compare everything except the cycle counter.
        auto replayed = k.snapshot();
        ASSERT_EQ(replayed.size(), post.size());
        EXPECT_TRUE(std::equal(replayed.begin() + 8, replayed.end(),
                               post.begin() + 8))
            << "trial " << trial;
        k.restore(post);
    }
}

TEST(Kernel, ProgressReportMentionsRules)
{
    Kernel k;
    Reg<int> x(k, "x", 0);
    k.rule("tick", [&] { x.write(x.read() + 1); });
    k.rule("never", [&] { require(false); });
    k.elaborate();
    k.cycle();
    std::string rep = k.progressReport();
    EXPECT_NE(rep.find("tick"), std::string::npos);
    EXPECT_NE(rep.find("never"), std::string::npos);
    EXPECT_NE(rep.find("guard-false"), std::string::npos);
}

} // namespace
