/**
 * @file
 * Kernel-hardening tests (core/harden.hh): snapshot round-trips for
 * every state type, deterministic fault injection, the forward-
 * progress watchdog under all three schedulers, the stuck-worker
 * barrier timeout, checkpoint/restore to disk with corruption
 * detection, the HardenedRunner degradation ladder, and System-level
 * crash recovery with commit-stream digest equality.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/cmd.hh"
#include "cosim.hh"

using namespace cmd;

namespace {

/** FNV-1a over a snapshot buffer. */
uint64_t
digest(const std::vector<uint8_t> &bytes)
{
    return CheckpointManager::fnv1a(bytes.data(), bytes.size());
}

/** Temp file path unique to this test process. */
std::string
tmpPath(const char *tag)
{
    return strfmt("/tmp/test_harden_%d_%s.ckpt", int(::getpid()), tag);
}

struct TmpFile
{
    explicit TmpFile(const char *tag) : path(tmpPath(tag))
    {
        std::remove(path.c_str());
    }
    ~TmpFile() { std::remove(path.c_str()); }
    std::string path;
};

/**
 * A design exercising every snapshot-able state type: Reg, RegArray,
 * Ehr, a PipelineFifo, and a TimedFifo (whose state is split across
 * its two endpoint modules). Deterministic and never quiescent.
 */
struct AllState
{
    Kernel k;
    Reg<uint64_t> tick;
    RegArray<uint64_t> arr;
    Ehr<uint64_t> ehr;
    PipelineFifo<uint64_t> pf;
    TimedFifo<uint64_t> tf;
    Reg<uint64_t> sink;

    explicit AllState(SchedulerKind kind = SchedulerKind::Exhaustive)
        : tick(k, "tick", 0), arr(k, "arr", 4, 0), ehr(k, "ehr", 2, 0),
          pf(k, "pf", 4), tf(k, "tf", 4, 3), sink(k, "sink", 0)
    {
        k.rule("beat", [this] {
            uint64_t t = tick.read();
            tick.write(t + 1);
            arr.write(t % 4, arr.read(t % 4) + t);
            ehr.write(0, ehr.read(0) ^ (t * 0x9e3779b97f4a7c15ull));
        });
        k.rule("feedPf", [this] { pf.enq(tick.read()); })
            .when([this] { return pf.canEnq(); })
            .uses({&pf.enqM});
        k.rule("pfToTf", [this] { tf.enq(pf.deq() * 3 + 1); })
            .when([this] { return pf.canDeq() && tf.canEnq(); })
            .uses({&pf.deqM, &tf.enqM});
        k.rule("drain", [this] { sink.write(sink.read() + tf.deq()); })
            .when([this] { return tf.canDeq(); })
            .uses({&tf.deqM});
        k.setScheduler(kind);
        k.elaborate();
    }
};

} // namespace

// ----------------------------------------------------- snapshot round-trips

TEST(Snapshot, RoundTripEveryStateType)
{
    AllState d;
    d.k.run(37);

    // Direct value checks around a restore for each element kind.
    auto snap = d.k.snapshot();
    uint64_t tick0 = d.tick.read();
    uint64_t arr0 = d.arr.read(1);
    uint64_t ehr0 = d.ehr.read(0);
    uint64_t sink0 = d.sink.read();
    uint32_t tfOcc0 = d.tf.size();
    bool pfDeq0 = d.pf.canDeq();

    d.k.run(23);
    ASSERT_NE(d.tick.read(), tick0);

    d.k.restore(snap);
    EXPECT_EQ(d.tick.read(), tick0);
    EXPECT_EQ(d.arr.read(1), arr0);
    EXPECT_EQ(d.ehr.read(0), ehr0);
    EXPECT_EQ(d.sink.read(), sink0);
    EXPECT_EQ(d.tf.size(), tfOcc0);
    EXPECT_EQ(d.pf.canDeq(), pfDeq0);
    EXPECT_EQ(digest(d.k.snapshot()), digest(snap));
}

/**
 * Restore-then-run equality: the cycles after a restore must replay
 * bit-exactly — including TimedFifo age stamps, whose semantics depend
 * on the (restored) cycle counter.
 */
TEST(Snapshot, RestoreThenRunReplaysBitExactly)
{
    for (SchedulerKind kind :
         {SchedulerKind::Exhaustive, SchedulerKind::EventDriven,
          SchedulerKind::Compiled}) {
        AllState d(kind);
        // Short profiling prefix: the snapshot is taken after the
        // compiled scheduler re-specialized, so the replay exercises
        // the fast-path dispatch table across a restore.
        if (kind == SchedulerKind::Compiled)
            d.k.setCompiledProfile(20);
        d.k.run(50);
        auto snap = d.k.snapshot();

        std::vector<uint64_t> ref;
        for (int i = 0; i < 40; i++) {
            d.k.cycle();
            ref.push_back(digest(d.k.snapshot()));
        }

        d.k.restore(snap);
        for (int i = 0; i < 40; i++) {
            d.k.cycle();
            ASSERT_EQ(digest(d.k.snapshot()), ref[i])
                << "diverged " << i + 1 << " cycles after restore";
        }
    }
}

// ---------------------------------------------------------- fault injection

TEST(Injector, CampaignPlansAreDeterministic)
{
    AllState d;
    FaultInjector inj(d.k);
    auto a = inj.planCampaign(0xfeedface, 64, 10000);
    auto b = inj.planCampaign(0xfeedface, 64, 10000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i].describe(), b[i].describe()) << "plan " << i;

    // Plans arrive sorted by injection cycle and cover several types.
    bool sorted = true, sawFlip = false, sawChan = false;
    for (size_t i = 0; i < a.size(); i++) {
        if (i && a[i].cycle < a[i - 1].cycle)
            sorted = false;
        sawFlip |= a[i].type == FaultType::BitFlip;
        sawChan |= a[i].type == FaultType::MsgDrop ||
                   a[i].type == FaultType::MsgDelay;
    }
    EXPECT_TRUE(sorted);
    EXPECT_TRUE(sawFlip);
    EXPECT_TRUE(sawChan);

    auto c = inj.planCampaign(0xfeedface + 1, 64, 10000);
    bool anyDiff = c.size() != a.size();
    for (size_t i = 0; !anyDiff && i < a.size(); i++)
        anyDiff = c[i].describe() != a[i].describe();
    EXPECT_TRUE(anyDiff) << "different seeds drew identical campaigns";
}

TEST(Injector, SameSeedSameOutcome)
{
    // Two fresh instances of the same design, the same campaign applied
    // to both: the final architectural state must match bit-for-bit
    // (within one instance's own snapshot space; run A's digest
    // schedule is replayed on A itself after a restore, B likewise, and
    // the per-cycle fired counts are compared across the two).
    auto runCampaign = [](AllState &d) {
        FaultInjector inj(d.k);
        auto plans = inj.planCampaign(77, 16, 400);
        std::vector<uint64_t> fired;
        size_t next = 0;
        for (uint64_t c = 1; c <= 500; c++) {
            while (next < plans.size() && plans[next].cycle == c)
                inj.apply(plans[next++]);
            fired.push_back(d.k.cycle());
        }
        return fired;
    };
    AllState a, b;
    auto refFired = runCampaign(a);
    EXPECT_EQ(refFired, runCampaign(b));
    EXPECT_EQ(digest(a.k.snapshot()), digest(b.k.snapshot()));

    // The same campaign under the compiled scheduler (profiling prefix
    // plus re-specialized fast path both inside the 500-cycle window)
    // lands on the same per-cycle fired counts and the same final
    // state: fault injection composes with compiled dispatch.
    AllState c(SchedulerKind::Compiled);
    c.k.setCompiledProfile(50);
    EXPECT_EQ(runCampaign(c), refFired);
    EXPECT_EQ(digest(c.k.snapshot()), digest(a.k.snapshot()));
}

TEST(Injector, BitFlipWakesSleepingRules)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    Reg<uint64_t> flag(k, "flag", 0);
    Reg<uint64_t> out(k, "out", 0);
    Rule &consumer =
        k.rule("consumer", [&] { out.write(out.read() + 1); }).when([&] {
            return flag.read() != 0;
        });
    k.elaborate();
    k.run(3);
    ASSERT_TRUE(consumer.asleep());

    // Hand-built plan: flip bit 0 of "flag". The poke must wake the
    // sleeping consumer exactly as a committed write would.
    FaultPlan p;
    p.type = FaultType::BitFlip;
    p.bit = 0;
    p.target = ~0u;
    for (uint32_t i = 0; i < k.stateCount(); i++) {
        if (k.stateAt(i)->name() == "flag")
            p.target = i;
    }
    ASSERT_NE(p.target, ~0u);
    FaultInjector inj(k);
    EXPECT_TRUE(inj.apply(p));
    EXPECT_FALSE(consumer.asleep());
    k.run(2);
    EXPECT_GT(out.read(), 0u);
}

TEST(Injector, ChannelDropAndDelayLand)
{
    AllState d;
    d.k.run(20);
    ASSERT_GT(d.tf.size(), 0u);
    uint32_t occ = d.tf.size();
    uint64_t sinkBefore = d.sink.read();

    FaultInjector inj(d.k);
    FaultPlan drop;
    drop.type = FaultType::MsgDrop;
    drop.target = 0; // the design's only TimedFifo
    ASSERT_EQ(d.k.channelPorts().size(), 1u);
    EXPECT_TRUE(inj.apply(drop));
    EXPECT_EQ(d.tf.size(), occ - 1);

    FaultPlan delay;
    delay.type = FaultType::MsgDelay;
    delay.target = 0;
    delay.param = 1000;
    EXPECT_TRUE(inj.apply(delay));
    // The head message is now 1000 cycles out: the drain rule must not
    // consume anything for the next stretch.
    d.k.run(50);
    EXPECT_EQ(d.sink.read(), sinkBefore);
}

namespace {

/**
 * Producer/consumer over one TimedFifo that folds every drained
 * payload into an order-sensitive digest register, so two runs can be
 * compared value-by-value at equal drain counts. The digest lives in
 * a Reg (not a host-side vector) so speculative rule aborts cannot
 * corrupt it.
 */
struct DrainDigest
{
    Kernel k;
    Reg<uint64_t> next;
    TimedFifo<uint64_t> tf;
    Reg<uint64_t> sig, cnt;

    DrainDigest()
        : next(k, "next", 1), tf(k, "tf", 4, 2), sig(k, "sig", 0),
          cnt(k, "cnt", 0)
    {
        k.rule("feed", [this] {
             tf.enq(next.read() * 0x9e3779b97f4a7c15ull);
             next.write(next.read() + 1);
         })
            .when([this] { return tf.canEnq(); })
            .uses({&tf.enqM});
        k.rule("drain", [this] {
             sig.write(sig.read() * 1099511628211ull ^ tf.deq());
             cnt.write(cnt.read() + 1);
         })
            .when([this] { return tf.canDeq(); })
            .uses({&tf.deqM});
        k.elaborate();
    }
};

} // namespace

TEST(Injector, TimingCampaignPlansAreDelayOnlyAndDecorrelated)
{
    AllState d;
    FaultInjector inj(d.k);

    auto plans = inj.planTimingCampaign(99, 40, 500, 16);
    ASSERT_EQ(plans.size(), 40u);
    uint64_t prev = 0;
    for (const auto &p : plans) {
        EXPECT_EQ(p.type, FaultType::MsgDelay);
        EXPECT_GE(p.cycle, 1u);
        EXPECT_LE(p.cycle, 500u);
        EXPECT_GE(p.cycle, prev); // sorted
        EXPECT_LT(p.target, d.k.channelPorts().size());
        EXPECT_GE(p.param, 1u);
        EXPECT_LE(p.param, 16u);
        prev = p.cycle;
    }

    // Deterministic in the seed...
    auto again = inj.planTimingCampaign(99, 40, 500, 16);
    for (size_t i = 0; i < plans.size(); i++) {
        EXPECT_EQ(plans[i].cycle, again[i].cycle);
        EXPECT_EQ(plans[i].param, again[i].param);
    }
    // ...but its own stream: the same seed handed to planCampaign()
    // must not replay the same injection cycles.
    auto mixed = inj.planCampaign(99, 40, 500);
    bool differ = false;
    for (size_t i = 0; i < plans.size(); i++)
        differ |= plans[i].cycle != mixed[i].cycle;
    EXPECT_TRUE(differ);
}

TEST(Injector, TimingCampaignPreservesPayloadsByteIdentically)
{
    // Timing-only faults reshape WHEN messages move, never WHAT they
    // carry: after draining the same number of messages, a jittered
    // run's order-sensitive payload digest must equal the golden
    // run's. This is the property the litmus shaker leans on — it may
    // only explore schedules of the intended design.
    DrainDigest jit;
    FaultInjector inj(jit.k);
    auto plans = inj.planTimingCampaign(7, 24, 400, 12);
    size_t pi = 0;
    uint64_t landed = 0;
    for (int c = 0; c < 400; c++) {
        while (pi < plans.size() && plans[pi].cycle <= jit.k.cycleCount())
            landed += inj.apply(plans[pi++]) ? 1 : 0;
        jit.k.cycle();
    }
    ASSERT_GT(landed, 0u);
    uint64_t nd = jit.cnt.read();
    ASSERT_GT(nd, 0u);
    // Delays held messages back relative to an unperturbed run...
    DrainDigest gold;
    while (gold.cnt.read() < nd)
        gold.k.cycle();
    EXPECT_LT(gold.k.cycleCount(), 400u);
    // ...but every payload that did drain is byte-identical, in order.
    EXPECT_EQ(gold.sig.read(), jit.sig.read());
}

// ----------------------------------------------------------------- watchdog

namespace {

/**
 * A two-domain producer/consumer design that can be wedged: the
 * producer (domain "left") stops feeding the TimedFifo when fed_
 * reaches a cap, after which the consumer (domain "right") starves.
 * The left-side beat rule keeps firing forever, so only a heartbeat
 * watchdog notices — and the starved domain is "right".
 */
struct Wedgeable
{
    Kernel k;
    std::unique_ptr<DomainHint> leftHint, rightHint;
    std::unique_ptr<Reg<uint64_t>> beat, fed, consumed;
    std::unique_ptr<TimedFifo<uint64_t>> chan;

    explicit Wedgeable(SchedulerKind kind, uint64_t feedCap,
                       uint32_t chanDelay = 1, uint32_t threads = 1)
    {
        {
            DomainHint left(k, "left");
            beat = std::make_unique<Reg<uint64_t>>(k, "beat", 0);
            fed = std::make_unique<Reg<uint64_t>>(k, "fed", 0);
        }
        {
            DomainHint right(k, "right");
            consumed = std::make_unique<Reg<uint64_t>>(k, "consumed", 0);
        }
        chan = std::make_unique<TimedFifo<uint64_t>>(k, "chan", 4,
                                                     chanDelay);
        {
            DomainHint left(k, "left");
            k.rule("beat", [this] { beat->write(beat->read() + 1); });
            k.rule("produce", [this] {
                 chan->enq(fed->read());
                 fed->write(fed->read() + 1);
             })
                .when([this, feedCap] {
                    return fed->read() < feedCap && chan->canEnq();
                })
                .uses({&chan->enqM});
        }
        {
            DomainHint right(k, "right");
            k.rule("consume", [this] {
                 consumed->write(consumed->read() + chan->deq());
             })
                .when([this] { return chan->canDeq(); })
                .uses({&chan->deqM});
        }
        k.setScheduler(kind);
        k.setParallelThreads(threads);
        k.elaborate();
    }
};

} // namespace

TEST(Watchdog, NamesStarvedDomainUnderEverySchedulerKind)
{
    for (SchedulerKind kind :
         {SchedulerKind::Exhaustive, SchedulerKind::EventDriven,
          SchedulerKind::Parallel, SchedulerKind::Compiled}) {
        Wedgeable d(kind, 50);
        ASSERT_EQ(d.k.domainCount(), 2u);
        Watchdog wd(d.k, 200);
        wd.setHeartbeat([&] { return d.consumed->read(); });

        bool tripped = false;
        try {
            for (int c = 0; c < 5000; c++) {
                d.k.cycle();
                wd.observe();
            }
        } catch (const KernelFault &f) {
            tripped = true;
            EXPECT_EQ(f.kind(), FaultKind::Watchdog);
            // The starved domain is named in the message; the trace
            // carries the structured diagnostics dump.
            EXPECT_NE(f.message().find("right"), std::string::npos)
                << f.describe();
            EXPECT_NE(f.context().trace.find("occupancy"),
                      std::string::npos)
                << "diagnostics dump missing from the fault trace";
            EXPECT_NE(f.context().trace.find("beat"), std::string::npos)
                << "fired-ring tail missing from the fault trace";
        }
        EXPECT_TRUE(tripped)
            << "watchdog never fired under scheduler " << int(kind);
        // The wedge is architectural, not a watchdog artifact: all 50
        // fed elements were consumed before the starvation.
        EXPECT_EQ(d.consumed->read(), 50ull * 49 / 2);
    }
}

TEST(Watchdog, NoHeartbeatModeTripsOnGlobalQuiescence)
{
    // Gate every rule off after a while: with no heartbeat configured
    // the watchdog trips only when *nothing* fires for the window.
    Kernel k;
    Reg<uint64_t> t(k, "t", 0);
    k.rule("run", [&] { t.write(t.read() + 1); }).when([&] {
        return t.read() < 100;
    });
    k.elaborate();
    Watchdog wd(k, 150);
    EXPECT_THROW(
        {
            for (int c = 0; c < 5000; c++) {
                k.cycle();
                wd.observe();
            }
        },
        KernelFault);
}

TEST(Watchdog, QuietWhileProgressing)
{
    AllState d;
    Watchdog wd(d.k, 50);
    wd.setHeartbeat([&] { return d.tick.read(); });
    for (int c = 0; c < 2000; c++) {
        d.k.cycle();
        wd.observe();
    }
    SUCCEED();
}

// ------------------------------------------------- stuck-worker detection

TEST(Watchdog, BarrierTimeoutNamesStuckDomain)
{
    Kernel k;
    std::atomic<bool> release{false};
    std::atomic<bool> bodyDone{false};
    std::unique_ptr<Reg<uint64_t>> a, b;
    {
        DomainHint ha(k, "stuck");
        a = std::make_unique<Reg<uint64_t>>(k, "a", 0);
    }
    {
        DomainHint hb(k, "fine");
        b = std::make_unique<Reg<uint64_t>>(k, "b", 0);
    }
    // Keep the domains disjoint with a channel between them.
    TimedFifo<uint64_t> chan(k, "chan", 2, 1);
    {
        DomainHint ha(k, "stuck");
        k.rule("spin", [&] {
            a->write(a->read() + 1);
            auto t0 = std::chrono::steady_clock::now();
            while (!release.load()) {
                // Safety valve so a broken test cannot hang forever.
                if (std::chrono::steady_clock::now() - t0 >
                    std::chrono::seconds(10))
                    break;
                detail::cpuRelax();
            }
            bodyDone.store(true);
        });
    }
    {
        DomainHint hb(k, "fine");
        k.rule("tick", [&] { b->write(b->read() + 1); });
    }
    k.setScheduler(SchedulerKind::Parallel);
    k.setParallelThreads(2);
    // Drive from the main thread only: it stays responsive at the
    // barrier and can detect the wedged worker.
    k.setParallelMainParticipates(false);
    k.setBarrierTimeoutNs(50'000'000); // 50 ms
    k.elaborate();
    ASSERT_EQ(k.domainCount(), 2u);

    bool tripped = false;
    try {
        k.cycle();
    } catch (const KernelFault &f) {
        tripped = true;
        EXPECT_EQ(f.kind(), FaultKind::Watchdog);
        EXPECT_NE(f.message().find("stuck"), std::string::npos)
            << f.describe();
    }
    EXPECT_TRUE(tripped) << "barrier timeout never fired";

    // Unwedge, then wait until every worker has finished its slice of
    // the aborted cycle (bodyDone alone races with the worker's
    // end-of-cycle commit bookkeeping, which must not overlap the
    // sequential run below).
    release.store(true);
    auto b0 = std::chrono::steady_clock::now();
    while (!bodyDone.load() &&
           std::chrono::steady_clock::now() - b0 < std::chrono::seconds(30))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(bodyDone.load());
    auto q0 = std::chrono::steady_clock::now();
    while (!k.parallelQuiesced() &&
           std::chrono::steady_clock::now() - q0 < std::chrono::seconds(30))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(k.parallelQuiesced());

    // Graceful degradation: the sequential schedulers still work.
    k.setScheduler(SchedulerKind::EventDriven);
    uint64_t before = b->read();
    k.run(3);
    EXPECT_EQ(b->read(), before + 3);
}

// -------------------------------------------------------------- checkpoints

TEST(Checkpoint, DiskRoundTripReplaysBitExactly)
{
    TmpFile f("roundtrip");
    AllState d;
    CheckpointManager ck(d.k, f.path);
    EXPECT_FALSE(ck.hasCheckpoint());
    EXPECT_FALSE(ck.load());

    d.k.run(64);
    ck.save();
    EXPECT_TRUE(ck.hasCheckpoint());
    EXPECT_EQ(ck.savedCount(), 1u);

    std::vector<uint64_t> ref;
    for (int i = 0; i < 30; i++) {
        d.k.cycle();
        ref.push_back(digest(d.k.snapshot()));
    }

    ASSERT_TRUE(ck.load());
    for (int i = 0; i < 30; i++) {
        d.k.cycle();
        ASSERT_EQ(digest(d.k.snapshot()), ref[i])
            << "diverged " << i + 1 << " cycles after disk restore";
    }
}

TEST(Checkpoint, PayloadHooksCarryUserBytes)
{
    TmpFile f("payload");
    AllState d;
    CheckpointManager ck(d.k, f.path);
    std::vector<uint8_t> stash{1, 2, 3, 42};
    std::vector<uint8_t> got;
    ck.setPayloadHooks([&] { return stash; },
                       [&](const std::vector<uint8_t> &b) { got = b; });
    d.k.run(10);
    ck.save();
    stash.clear();
    ASSERT_TRUE(ck.load());
    EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3, 42}));
}

TEST(Checkpoint, CorruptionIsDetected)
{
    TmpFile f("corrupt");
    AllState d;
    CheckpointManager ck(d.k, f.path);
    d.k.run(16);
    ck.save();

    // Flip one byte in the middle of the file.
    std::fstream io(f.path,
                    std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(io.good());
    io.seekg(0, std::ios::end);
    auto size = io.tellg();
    ASSERT_GT(size, 32);
    io.seekp(int(size) / 2);
    char byte = 0;
    io.seekg(int(size) / 2);
    io.read(&byte, 1);
    byte ^= 0x10;
    io.seekp(int(size) / 2);
    io.write(&byte, 1);
    io.close();

    try {
        ck.load();
        FAIL() << "corrupt checkpoint loaded";
    } catch (const KernelFault &f2) {
        EXPECT_EQ(f2.kind(), FaultKind::Checkpoint);
    }

    // Truncation is detected too.
    std::vector<char> head(size_t(size) / 3);
    {
        std::ifstream in(f.path, std::ios::binary);
        in.read(head.data(), std::streamsize(head.size()));
    }
    {
        std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
        out.write(head.data(), std::streamsize(head.size()));
    }
    EXPECT_THROW(ck.load(), KernelFault);
}

// ---------------------------------------------------------- HardenedRunner

TEST(HardenedRunner, AbsorbsFaultAndDegradesScheduler)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    Reg<uint64_t> t(k, "t", 0);
    bool armed = true;
    k.rule("run", [&] {
        if (armed && t.read() == 100) {
            armed = false;
            kfault(FaultKind::DesignError, "testmod", "injected failure");
        }
        t.write(t.read() + 1);
    });
    k.elaborate();

    HardenedConfig hc;
    hc.watchdogStallCycles = 0; // this test exercises the fault path
    HardenedRunner hr(k, hc);
    EXPECT_TRUE(hr.run([&] { return t.read() >= 300; }, 10000));
    EXPECT_EQ(hr.faultRetries(), 1u);
    ASSERT_EQ(hr.faultLog().size(), 1u);
    EXPECT_NE(hr.faultLog()[0].find("injected failure"), std::string::npos);
    EXPECT_EQ(k.scheduler(), SchedulerKind::Exhaustive)
        << "EventDriven should have degraded one step";
    EXPECT_EQ(t.read(), 300u);
}

TEST(HardenedRunner, DegradesCompiledToEventDriven)
{
    // The compiled fast path trades dynamic bookkeeping for speed, so
    // after a fault the runner must land on the fully checked
    // event-driven scheduler, then Exhaustive on a second fault.
    Kernel k;
    k.setScheduler(SchedulerKind::Compiled);
    k.setCompiledProfile(0); // fully static: fault fires on the fast path
    Reg<uint64_t> t(k, "t", 0);
    bool armed = true;
    k.rule("run", [&] {
        if (armed && t.read() == 100) {
            armed = false;
            kfault(FaultKind::DesignError, "testmod", "injected failure");
        }
        t.write(t.read() + 1);
    });
    k.elaborate();

    HardenedConfig hc;
    hc.watchdogStallCycles = 0;
    HardenedRunner hr(k, hc);
    EXPECT_TRUE(hr.run([&] { return t.read() >= 300; }, 10000));
    EXPECT_EQ(hr.faultRetries(), 1u);
    EXPECT_EQ(k.scheduler(), SchedulerKind::EventDriven)
        << "Compiled should have degraded to the checked dynamic mode";
    EXPECT_EQ(t.read(), 300u);
}

TEST(HardenedRunner, RestoresCheckpointOnWatchdogTrip)
{
    TmpFile f("wdrestore");
    // Permanently wedged after the producer cap: every retry restores
    // the checkpoint and re-starves, so the runner must give up after
    // maxFaultRetries and rethrow with the full fault log.
    Wedgeable d(SchedulerKind::EventDriven, 10);
    HardenedConfig hc;
    hc.watchdogStallCycles = 100;
    hc.watchdogPollEvery = 16;
    hc.checkpointEvery = 64;
    hc.checkpointPath = f.path;
    hc.maxFaultRetries = 2;
    HardenedRunner hr(d.k, hc);
    hr.watchdog().setHeartbeat([&] { return d.consumed->read(); });

    EXPECT_THROW(hr.run([] { return false; }, 100000), KernelFault);
    EXPECT_EQ(hr.faultRetries(), 2u);
    EXPECT_EQ(hr.faultLog().size(), 3u); // 2 absorbed + the rethrown one
    EXPECT_GT(hr.checkpoints()->savedCount(), 0u);
}

TEST(HardenedRunner, CompletesAfterRestoreWhenFaultIsTransient)
{
    TmpFile f("transient");
    Kernel k;
    Reg<uint64_t> t(k, "t", 0);
    bool armed = true;
    k.rule("run", [&] {
        if (armed && t.read() == 500) {
            armed = false;
            kfault(FaultKind::DesignError, "testmod", "transient blip");
        }
        t.write(t.read() + 1);
    });
    k.elaborate();

    HardenedConfig hc;
    hc.watchdogStallCycles = 0;
    hc.checkpointEvery = 128;
    hc.checkpointPath = f.path;
    HardenedRunner hr(k, hc);
    // The restore rewinds t below 500; the disarmed closure lets the
    // replay pass. The absolute cycle budget must still be honored.
    EXPECT_TRUE(hr.run([&] { return t.read() >= 1000; }, 100000));
    EXPECT_EQ(t.read(), 1000u);
    EXPECT_EQ(hr.faultRetries(), 1u);
}

// ------------------------------------- hardening under lookahead > 1
//
// The multi-cycle lookahead PDES lets each domain run several cycles
// between barriers, so every hardening mechanism has to stay sound at
// window granularity: checkpoints may only be taken at sync epochs
// (the only points where all domains are coherent), faults thrown
// mid-window surface at the next barrier, and the watchdog still
// trips while stepping in windows.

TEST(Checkpoint, WindowedDiskRoundTripReplaysBitExactly)
{
    TmpFile f("windowtrip");
    // Healthy (never-wedging) two-domain design, channel latency 4 so
    // the parallel scheduler really runs 4-cycle windows.
    Wedgeable d(SchedulerKind::Parallel, ~0ull, 4, 2);
    ASSERT_TRUE(d.k.parallelActive());
    ASSERT_EQ(d.k.effectiveLookahead(), 4u);
    CheckpointManager ck(d.k, f.path);

    d.k.run(64); // windowed stepping: 16 sync epochs
    ck.save();
    std::vector<uint64_t> ref;
    for (int i = 0; i < 10; i++) {
        d.k.run(8); // 2 windows per observation
        ref.push_back(digest(d.k.snapshot()));
    }

    ASSERT_TRUE(ck.load()); // rewind to cycle 64
    EXPECT_EQ(d.k.cycleCount(), 64u);
    for (int i = 0; i < 10; i++) {
        d.k.run(8);
        ASSERT_EQ(digest(d.k.snapshot()), ref[i])
            << "windowed replay diverged " << (i + 1) * 8
            << " cycles after restore";
    }
}

TEST(HardenedRunner, WindowedWatchdogTripRestoresSyncEpochCheckpoint)
{
    TmpFile f("wdwindow");
    // Permanently wedged under 4-cycle windows: every retry restores
    // the sync-epoch checkpoint and re-starves.
    Wedgeable d(SchedulerKind::Parallel, 10, 4, 2);
    ASSERT_TRUE(d.k.parallelActive());
    ASSERT_EQ(d.k.effectiveLookahead(), 4u);
    HardenedConfig hc;
    hc.watchdogStallCycles = 100;
    hc.watchdogPollEvery = 16;
    hc.checkpointEvery = 64;
    hc.checkpointPath = f.path;
    hc.maxFaultRetries = 2;
    HardenedRunner hr(d.k, hc);
    hr.watchdog().setHeartbeat([&] { return d.consumed->read(); });

    EXPECT_THROW(hr.run([] { return false; }, 100000), KernelFault);
    EXPECT_EQ(hr.faultRetries(), 2u);
    EXPECT_EQ(hr.faultLog().size(), 3u);
    // The runner clamps its stride at checkpoint boundaries, so saves
    // really happened (a checkpoint misaligned with the window would
    // simply never be reached and this count would be zero).
    EXPECT_GT(hr.checkpoints()->savedCount(), 0u);
}

TEST(HardenedRunner, WindowedTransientFaultCompletesAfterRestore)
{
    TmpFile f("wtransient");
    // Two domains over a latency-4 channel; the producer faults once
    // mid-window at t == 500. The fault is rethrown at the next sync
    // barrier, the runner restores the last sync-epoch checkpoint
    // (rewinding the skewed window), degrades Parallel to the
    // sequential event-driven scheduler, and still reaches the target.
    Kernel k;
    std::unique_ptr<Reg<uint64_t>> t, consumed;
    std::unique_ptr<TimedFifo<uint64_t>> chan;
    bool armed = true;
    {
        DomainHint left(k, "left");
        t = std::make_unique<Reg<uint64_t>>(k, "t", 0);
    }
    {
        DomainHint right(k, "right");
        consumed = std::make_unique<Reg<uint64_t>>(k, "consumed", 0);
    }
    chan = std::make_unique<TimedFifo<uint64_t>>(k, "chan", 4, 4);
    {
        DomainHint left(k, "left");
        k.rule("produce", [&] {
             if (armed && t->read() == 500) {
                 armed = false;
                 kfault(FaultKind::DesignError, "testmod",
                        "mid-window blip");
             }
             if (chan->canEnq())
                 chan->enq(t->read());
             t->write(t->read() + 1);
         }).uses({&chan->enqM});
    }
    {
        DomainHint right(k, "right");
        k.rule("consume", [&] {
             consumed->write(consumed->read() + chan->deq());
         })
            .when([&] { return chan->canDeq(); })
            .uses({&chan->deqM});
    }
    k.setScheduler(SchedulerKind::Parallel);
    k.setParallelThreads(2);
    k.elaborate();
    ASSERT_TRUE(k.parallelActive());
    ASSERT_EQ(k.effectiveLookahead(), 4u);

    HardenedConfig hc;
    hc.watchdogStallCycles = 0;
    hc.checkpointEvery = 128;
    hc.checkpointPath = f.path;
    HardenedRunner hr(k, hc);
    EXPECT_TRUE(hr.run([&] { return t->read() >= 1000; }, 100000));
    // done() is polled at window boundaries, so the target may be
    // overshot by at most stride-1 cycles.
    EXPECT_GE(t->read(), 1000u);
    EXPECT_LE(t->read(), 1003u);
    EXPECT_EQ(hr.faultRetries(), 1u);
    EXPECT_EQ(k.scheduler(), SchedulerKind::EventDriven)
        << "Parallel should degrade to the checked sequential walk";
    EXPECT_GT(consumed->read(), 0u);
}

// ------------------------------------------------- System crash recovery

namespace {

/** Order-sensitive FNV-1a digest of a commit stream. */
struct CommitDigest
{
    uint64_t h = 1469598103934665603ull;

    void
    add(const riscy::CommitRecord &r)
    {
        auto mix = [this](uint64_t v) {
            for (int i = 0; i < 8; i++) {
                h ^= uint8_t(v >> (8 * i));
                h *= 1099511628211ull;
            }
        };
        mix(r.pc);
        mix(r.raw);
        if (r.hasRd && !r.volatileRd)
            mix(r.rdVal);
    }

    std::vector<uint8_t>
    bytes() const
    {
        std::vector<uint8_t> out(8);
        for (int i = 0; i < 8; i++)
            out[i] = uint8_t(h >> (8 * i));
        return out;
    }
    void
    restore(const std::vector<uint8_t> &b)
    {
        ASSERT_EQ(b.size(), 8u);
        h = 0;
        for (int i = 0; i < 8; i++)
            h |= uint64_t(b[i]) << (8 * i);
    }
};

riscy::test::Assembler
storeLoadLoop()
{
    using namespace riscy::test;
    Assembler a(kEntry);
    // mem[i & 255] = checksum += mem[i & 255] + i, forever.
    a.li(5, kEntry + 0x10000);
    a.li(6, 0);
    a.li(7, 0);
    auto loop = a.newLabel();
    a.bind(loop);
    a.andi(28, 6, 255);
    a.slli(28, 28, 3);
    a.add(28, 28, 5);
    a.ld(29, 0, 28);
    a.add(29, 29, 6);
    a.add(7, 7, 29);
    a.sd(7, 0, 28);
    a.addi(6, 6, 1);
    a.j(loop);
    return a;
}

} // namespace

/**
 * The crash-recovery acceptance test: a run killed mid-flight resumes
 * from its checkpoint in a *new process-equivalent* System and ends
 * with a commit-stream digest identical to an uninterrupted run.
 */
TEST(SystemRecovery, ResumeFromCheckpointMatchesUninterruptedRun)
{
    using namespace riscy;
    TmpFile f("sysresume");
    auto a = storeLoadLoop();
    constexpr uint64_t kTotal = 24000;
    constexpr uint64_t kKillAt = 9000;

    auto mkCfg = [&](bool withCkpt) {
        SystemConfig cfg = SystemConfig::riscyooB();
        cfg.cores = 1;
        cfg.scheduler = cmd::SchedulerKind::EventDriven;
        if (withCkpt) {
            cfg.checkpointEvery = 2000;
            cfg.checkpointPath = f.path;
        }
        return cfg;
    };

    // Golden: uninterrupted.
    CommitDigest golden;
    {
        System sys(mkCfg(false));
        a.load(sys.mem(), test::kEntry);
        sys.elaborate();
        sys.setOnCommit(0, [&](const CommitRecord &r) { golden.add(r); });
        sys.start(test::kEntry, 0, {test::kStackTop});
        sys.run(kTotal);
        EXPECT_EQ(sys.stopReason(), StopReason::MaxCycles);
    }

    // Victim: checkpoints every 2000 cycles, killed mid-flight (the
    // System is simply destroyed; the checkpoint file survives).
    {
        System sys(mkCfg(true));
        CommitDigest dig;
        sys.setCheckpointUserHooks(
            [&] { return dig.bytes(); },
            [&](const std::vector<uint8_t> &b) { dig.restore(b); });
        a.load(sys.mem(), test::kEntry);
        sys.elaborate();
        sys.setOnCommit(0, [&](const CommitRecord &r) { dig.add(r); });
        sys.start(test::kEntry, 0, {test::kStackTop});
        sys.run(kKillAt);
    }

    // Survivor: same config, restored from disk instead of start().
    {
        System sys(mkCfg(true));
        CommitDigest dig;
        sys.setCheckpointUserHooks(
            [&] { return dig.bytes(); },
            [&](const std::vector<uint8_t> &b) { dig.restore(b); });
        a.load(sys.mem(), test::kEntry); // stale; overwritten by restore
        sys.elaborate();
        sys.setOnCommit(0, [&](const CommitRecord &r) { dig.add(r); });
        ASSERT_TRUE(sys.restoreCheckpoint());
        uint64_t resumedAt = sys.kernel().cycleCount();
        EXPECT_GT(resumedAt, 0u);
        EXPECT_LE(resumedAt, kKillAt);
        sys.run(kTotal - resumedAt);
        EXPECT_EQ(sys.kernel().cycleCount(), kTotal);
        EXPECT_EQ(dig.h, golden.h)
            << "commit stream diverged after crash recovery";
    }
}

TEST(SystemRun, WallClockBudgetTrips)
{
    using namespace riscy;
    auto a = storeLoadLoop();
    SystemConfig cfg = SystemConfig::riscyooB();
    cfg.cores = 1;
    cfg.maxWallSeconds = 1;
    System sys(cfg);
    a.load(sys.mem(), test::kEntry);
    sys.elaborate();
    sys.start(test::kEntry, 0, {test::kStackTop});
    EXPECT_FALSE(sys.run(~0ull >> 1));
    EXPECT_EQ(sys.stopReason(), StopReason::WallClock);
    EXPECT_STREQ(toString(sys.stopReason()), "wall-clock");
}
