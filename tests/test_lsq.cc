/**
 * @file
 * LSQ unit tests exercising the paper's interface directly:
 * store-to-load forwarding, partial-overlap stalls with recorded
 * sources and wakeups, memory-dependence kills on update(), TSO
 * cacheEvict kills (and their line precision — the ordering mechanism
 * the litmus MP gate rests on), wrong-path response bits, wrongSpec
 * suffix kills, the commit-time flush that preserves committed
 * stores, and the WMM store buffer's coalescing and parallel-drain
 * ordering (the writer-side reorder TSO's serialized SQ drain
 * forbids).
 */
#include <gtest/gtest.h>

#include "lsq/lsq.hh"

using namespace riscy;
using namespace cmd;
using isa::Op;

namespace {

struct LsqBed {
    Kernel k;
    Lsq lsq;
    StoreBuffer sb;

    explicit LsqBed(bool tso = true)
        : lsq(k, "lsq", 8, 6, tso), sb(k, "sb", 4)
    {
        k.elaborate();
    }

    template <typename F>
    void
    atomically(F &&f)
    {
        ASSERT_TRUE(k.runAtomically(std::forward<F>(f)));
        k.cycle();
    }
};

TEST(Lsq, StoreToLoadForwardingFullCover)
{
    LsqBed b;
    uint8_t st = 0, ld = 0;
    b.atomically([&] { st = b.lsq.enqSt(Op::SD, 8, 1, 0, false, 0); });
    b.atomically([&] { ld = b.lsq.enqLd(Op::LW, 4, 2, 10, true, 0); });
    b.atomically([&] {
        b.lsq.updateSt(st, 0x1000, 0x1000, false, 0, false,
                       0xdeadbeefcafef00d);
    });
    b.atomically(
        [&] { b.lsq.updateLd(ld, 0x1004, 0x1004, false, 0, false); });
    ASSERT_EQ(b.lsq.getIssueLd(), ld);
    uint64_t fwd = 0;
    Lsq::IssueResult res{};
    b.atomically([&] {
        res = b.lsq.issueLd(ld, StoreBuffer::SearchResult{}, false, fwd);
    });
    EXPECT_EQ(res, Lsq::IssueResult::Forward);
    // LW of the upper word, sign-extended.
    EXPECT_EQ(fwd, 0xffffffffdeadbeefull);
    // The forward completes through respLd like a cache response.
    bool wrong = true;
    b.atomically([&] { wrong = b.lsq.respLd(ld, fwd); });
    EXPECT_FALSE(wrong);
}

TEST(Lsq, PartialOverlapStallsAndDeqStWakes)
{
    LsqBed b;
    uint8_t st = 0, ld = 0;
    b.atomically([&] { st = b.lsq.enqSt(Op::SW, 4, 1, 0, false, 0); });
    b.atomically([&] { ld = b.lsq.enqLd(Op::LD, 8, 2, 10, true, 0); });
    b.atomically([&] {
        b.lsq.updateSt(st, 0x1000, 0x1000, false, 0, false, 0x1234);
    });
    b.atomically(
        [&] { b.lsq.updateLd(ld, 0x1000, 0x1000, false, 0, false); });
    uint64_t fwd = 0;
    Lsq::IssueResult res{};
    b.atomically([&] {
        res = b.lsq.issueLd(ld, StoreBuffer::SearchResult{}, false, fwd);
    });
    EXPECT_EQ(res, Lsq::IssueResult::Stall);
    EXPECT_EQ(b.lsq.getIssueLd(), -1); // stalled: not issuable
    // Commit + drain the store: the stall source resolves.
    b.atomically([&] { b.lsq.setAtCommitSt(st); });
    EXPECT_TRUE(b.lsq.canIssueSt());
    b.atomically([&] { b.lsq.deqSt(); });
    EXPECT_EQ(b.lsq.getIssueLd(), ld);
}

TEST(Lsq, UpdateStKillsYoungerDoneLoad)
{
    LsqBed b;
    uint8_t st = 0, ld = 0;
    b.atomically([&] { st = b.lsq.enqSt(Op::SD, 8, 1, 0, false, 0); });
    b.atomically([&] { ld = b.lsq.enqLd(Op::LD, 8, 2, 10, true, 0); });
    // The load translates and completes *before* the store's address
    // is known (speculative issue past an unknown store address).
    b.atomically(
        [&] { b.lsq.updateLd(ld, 0x2000, 0x2000, false, 0, false); });
    uint64_t fwd = 0;
    b.atomically([&] {
        b.lsq.issueLd(ld, StoreBuffer::SearchResult{}, false, fwd);
    });
    b.atomically([&] { b.lsq.respLd(ld, 77); });
    // Now the older store resolves to the same address: kill.
    b.atomically([&] {
        b.lsq.updateSt(st, 0x2000, 0x2000, false, 0, false, 88);
    });
    EXPECT_TRUE(b.lsq.lqEntry(ld).killed);
    EXPECT_GE(b.lsq.stats().get("ldKills"), 1u);
}

TEST(Lsq, CacheEvictKillsCompletedLoadUnderTso)
{
    LsqBed b(true);
    uint8_t ld = 0;
    b.atomically([&] { ld = b.lsq.enqLd(Op::LD, 8, 2, 10, true, 0); });
    b.atomically(
        [&] { b.lsq.updateLd(ld, 0x3000, 0x3000, false, 0, false); });
    uint64_t fwd = 0;
    b.atomically([&] {
        b.lsq.issueLd(ld, StoreBuffer::SearchResult{}, false, fwd);
    });
    b.atomically([&] { b.lsq.respLd(ld, 5); });
    b.atomically([&] { b.lsq.cacheEvict(lineAddr(0x3000)); });
    EXPECT_TRUE(b.lsq.lqEntry(ld).killed);
    // A killed head load is deqable; its status reports the kill.
    EXPECT_TRUE(b.lsq.canDeqLd());
    Lsq::LqEntry e;
    b.atomically([&] { e = b.lsq.deqLd(); });
    EXPECT_TRUE(e.killed);
}

TEST(Lsq, CacheEvictKillsAreLinePrecise)
{
    // The evict kill is TSO's only load-load ordering mechanism (the
    // litmus MP gate rests on it), so its precision matters both ways:
    // it must catch every not-yet-retired load of the evicted line and
    // nothing else. Idle loads are spared — they have not read a value
    // yet, so whatever they eventually read is fresh by construction.
    LsqBed b(true);
    uint8_t ldHit = 0, ldOther = 0, ldIdle = 0;
    b.atomically([&] { ldHit = b.lsq.enqLd(Op::LD, 8, 2, 10, true, 0); });
    b.atomically(
        [&] { ldOther = b.lsq.enqLd(Op::LD, 8, 3, 11, true, 0); });
    b.atomically([&] { ldIdle = b.lsq.enqLd(Op::LD, 8, 4, 12, true, 0); });
    b.atomically(
        [&] { b.lsq.updateLd(ldHit, 0x8000, 0x8000, false, 0, false); });
    b.atomically([&] {
        b.lsq.updateLd(ldOther, 0x9000, 0x9000, false, 0, false);
    });
    // Same line as ldHit, but never issued: stays Idle.
    b.atomically(
        [&] { b.lsq.updateLd(ldIdle, 0x8008, 0x8008, false, 0, false); });
    uint64_t fwd = 0;
    for (uint8_t ld : {ldHit, ldOther})
        b.atomically([&] {
            b.lsq.issueLd(ld, StoreBuffer::SearchResult{}, false, fwd);
        });
    b.atomically([&] { b.lsq.respLd(ldHit, 1); });
    b.atomically([&] { b.lsq.respLd(ldOther, 2); });

    uint64_t kills0 = b.lsq.stats().get("evictKills");
    b.atomically([&] { b.lsq.cacheEvict(lineAddr(0x8000)); });
    EXPECT_TRUE(b.lsq.lqEntry(ldHit).killed);
    EXPECT_FALSE(b.lsq.lqEntry(ldOther).killed); // different line
    EXPECT_FALSE(b.lsq.lqEntry(ldIdle).killed);  // not yet executed
    EXPECT_EQ(b.lsq.stats().get("evictKills"), kills0 + 1);
}

TEST(Lsq, TsoHoldsLoadBehindOlderAtomic)
{
    LsqBed b(true);
    uint8_t amo = 0, ld = 0;
    b.atomically(
        [&] { amo = b.lsq.enqSt(Op::AMOSWAP_D, 8, 1, 5, true, 0); });
    b.atomically([&] { ld = b.lsq.enqLd(Op::LD, 8, 2, 10, true, 0); });
    b.atomically([&] {
        b.lsq.updateSt(amo, 0x4000, 0x4000, false, 0, false, 1);
    });
    b.atomically(
        [&] { b.lsq.updateLd(ld, 0x5000, 0x5000, false, 0, false); });
    uint64_t fwd = 0;
    b.atomically([&] {
        b.lsq.issueLd(ld, StoreBuffer::SearchResult{}, false, fwd);
    });
    b.atomically([&] { b.lsq.respLd(ld, 9); });
    // Done, different address — but an older atomic is still pending:
    // TSO must keep the load killable in the LQ.
    EXPECT_FALSE(b.lsq.canDeqLd());
    b.atomically([&] { b.lsq.deqSt(); }); // atomic performs & leaves
    EXPECT_TRUE(b.lsq.canDeqLd());
}

TEST(Lsq, WmmAllowsLoadPastOlderAtomic)
{
    LsqBed b(false);
    uint8_t amo = 0, ld = 0;
    b.atomically(
        [&] { amo = b.lsq.enqSt(Op::AMOSWAP_D, 8, 1, 5, true, 0); });
    b.atomically([&] { ld = b.lsq.enqLd(Op::LD, 8, 2, 10, true, 0); });
    b.atomically([&] {
        b.lsq.updateSt(amo, 0x4000, 0x4000, false, 0, false, 1);
    });
    b.atomically(
        [&] { b.lsq.updateLd(ld, 0x5000, 0x5000, false, 0, false); });
    uint64_t fwd = 0;
    b.atomically([&] {
        b.lsq.issueLd(ld, StoreBuffer::SearchResult{}, false, fwd);
    });
    b.atomically([&] { b.lsq.respLd(ld, 9); });
    EXPECT_TRUE(b.lsq.canDeqLd()); // WMM: free to retire
}

TEST(Lsq, WrongPathResponseBitBlocksReusedSlot)
{
    LsqBed b;
    uint8_t ld = 0;
    b.atomically([&] { ld = b.lsq.enqLd(Op::LD, 8, 2, 10, true, 0x1); });
    b.atomically(
        [&] { b.lsq.updateLd(ld, 0x6000, 0x6000, false, 0, false); });
    uint64_t fwd = 0;
    b.atomically([&] {
        b.lsq.issueLd(ld, StoreBuffer::SearchResult{}, false, fwd);
    });
    // Branch resolves wrong: the issued load dies, slot kept waiting.
    b.atomically([&] { b.lsq.wrongSpec(0x1); });
    EXPECT_TRUE(b.lsq.lqEmpty());
    // Reallocate the slot for a new load: it must not issue yet.
    uint8_t ld2 = 0;
    b.atomically([&] { ld2 = b.lsq.enqLd(Op::LD, 8, 3, 11, true, 0); });
    EXPECT_EQ(ld2, ld); // same slot
    b.atomically(
        [&] { b.lsq.updateLd(ld2, 0x7000, 0x7000, false, 0, false); });
    EXPECT_EQ(b.lsq.getIssueLd(), -1); // wait-wrong-path bit set
    // The stale response arrives: dropped, and the bit clears.
    bool wrong = false;
    b.atomically([&] { wrong = b.lsq.respLd(ld, 123); });
    EXPECT_TRUE(wrong);
    EXPECT_EQ(b.lsq.getIssueLd(), ld2);
}

TEST(Lsq, FlushKeepsCommittedStores)
{
    LsqBed b;
    uint8_t st1 = 0, st2 = 0;
    b.atomically([&] { st1 = b.lsq.enqSt(Op::SD, 8, 1, 0, false, 0); });
    b.atomically([&] { st2 = b.lsq.enqSt(Op::SD, 8, 2, 0, false, 0); });
    b.atomically([&] {
        b.lsq.updateSt(st1, 0x1000, 0x1000, false, 0, false, 1);
    });
    b.atomically([&] {
        b.lsq.updateSt(st2, 0x2000, 0x2000, false, 0, false, 2);
    });
    b.atomically([&] { b.lsq.setAtCommitSt(st1); });
    // Exception flush: st1 (committed) must survive, st2 must die.
    b.atomically([&] { b.lsq.flushAll(); });
    EXPECT_EQ(b.lsq.sqCount(), 1u);
    EXPECT_TRUE(b.lsq.firstSt().committed);
    EXPECT_EQ(b.lsq.firstSt().pa, 0x1000u);
}

TEST(Lsq, IssueForwardsFromYoungestOlderStore)
{
    LsqBed b;
    uint8_t stOld = 0, stNew = 0, ld = 0;
    b.atomically([&] { stOld = b.lsq.enqSt(Op::SD, 8, 1, 0, false, 0); });
    b.atomically([&] { stNew = b.lsq.enqSt(Op::SD, 8, 2, 0, false, 0); });
    b.atomically([&] { ld = b.lsq.enqLd(Op::LD, 8, 3, 10, true, 0); });
    b.atomically([&] {
        b.lsq.updateSt(stOld, 0x1000, 0x1000, false, 0, false, 111);
    });
    b.atomically([&] {
        b.lsq.updateSt(stNew, 0x1000, 0x1000, false, 0, false, 222);
    });
    b.atomically(
        [&] { b.lsq.updateLd(ld, 0x1000, 0x1000, false, 0, false); });
    uint64_t fwd = 0;
    Lsq::IssueResult res{};
    b.atomically([&] {
        res = b.lsq.issueLd(ld, StoreBuffer::SearchResult{}, false, fwd);
    });
    EXPECT_EQ(res, Lsq::IssueResult::Forward);
    EXPECT_EQ(fwd, 222u); // youngest older store wins
}

TEST(StoreBufferTest, CoalesceSearchAndDrain)
{
    Kernel k;
    StoreBuffer sb(k, "sb", 2);
    k.elaborate();
    auto at = [&](auto &&f) {
        ASSERT_TRUE(k.runAtomically(f));
        k.cycle();
    };
    at([&] { sb.enq(0x1000, 0xaaaa, 2); });
    at([&] { sb.enq(0x1004, 0xbbbb, 2); }); // same line: coalesce
    EXPECT_EQ(sb.stats().get("coalesced"), 1u);
    StoreBuffer::SearchResult r;
    at([&] { r = sb.search(0x1000, 2); });
    EXPECT_TRUE(r.full);
    EXPECT_EQ(r.data, 0xaaaau);
    at([&] { r = sb.search(0x1000, 8); });
    EXPECT_TRUE(r.partial); // bytes 2..3 missing
    Addr line = 0;
    uint8_t idx = 0;
    at([&] { idx = sb.issue(line); });
    EXPECT_EQ(line, lineAddr(0x1000));
    StoreBuffer::DeqResult d;
    at([&] { d = sb.deq(idx); });
    EXPECT_EQ(d.data.read(0, 2), 0xaaaau);
    EXPECT_EQ(d.data.read(4, 2), 0xbbbbu);
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBufferTest, ParallelDrainReordersAcrossLines)
{
    // WMM drains the store buffer with MULTIPLE entries in flight:
    // issue() marks the lowest-index unissued entry and does not wait
    // for the previous drain to finish. Two different-line stores can
    // therefore become globally visible in either order — the
    // writer-side reorder behind the litmus MP (1,0) outcome (TSO
    // instead serializes drains from the SQ head, one at a time).
    Kernel k;
    StoreBuffer sb(k, "sb", 2);
    k.elaborate();
    auto at = [&](auto &&f) {
        ASSERT_TRUE(k.runAtomically(f));
        k.cycle();
    };
    at([&] { sb.enq(0x1000, 1, 8); });  // program order: x first...
    at([&] { sb.enq(0x1100, 1, 8); });  // ...then y
    Addr l0 = 0, l1 = 0;
    uint8_t i0 = 0, i1 = 0;
    at([&] { i0 = sb.issue(l0); });
    EXPECT_TRUE(sb.canIssue()); // second drain starts while first flies
    at([&] { i1 = sb.issue(l1); });
    EXPECT_FALSE(sb.canIssue());
    EXPECT_EQ(l0, lineAddr(0x1000)); // issue picks program order...
    EXPECT_EQ(l1, lineAddr(0x1100));

    // ...but the cache may complete them inverted: y's write finishes
    // while x still sits (searchable) in the buffer — y is visible to
    // other harts before x.
    StoreBuffer::DeqResult d;
    at([&] { d = sb.deq(i1); });
    EXPECT_EQ(d.line, lineAddr(0x1100));
    StoreBuffer::SearchResult r;
    at([&] { r = sb.search(0x1000, 8); });
    EXPECT_TRUE(r.full);
    at([&] { d = sb.deq(i0); });
    EXPECT_EQ(d.line, lineAddr(0x1000));
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBufferTest, LateStoreCoalescesIntoInFlightEntry)
{
    // A store committing after its line's drain was issued (but before
    // the cache pulled the data with deq) still merges into the entry:
    // deq() reads the entry at completion time, so the late bytes ride
    // the same drain instead of being lost or reordered past it.
    Kernel k;
    StoreBuffer sb(k, "sb", 2);
    k.elaborate();
    auto at = [&](auto &&f) {
        ASSERT_TRUE(k.runAtomically(f));
        k.cycle();
    };
    at([&] { sb.enq(0x2000, 0x11, 1); });
    Addr line = 0;
    uint8_t idx = 0;
    at([&] { idx = sb.issue(line); });
    at([&] { sb.enq(0x2001, 0x22, 1); }); // late, same line, in flight
    EXPECT_EQ(sb.stats().get("coalesced"), 1u);
    EXPECT_FALSE(sb.canIssue()); // no second drain for the same line
    StoreBuffer::DeqResult d;
    at([&] { d = sb.deq(idx); });
    EXPECT_EQ(d.data.read(0, 1), 0x11u);
    EXPECT_EQ(d.data.read(1, 1), 0x22u);
    EXPECT_TRUE(sb.empty());
}

} // namespace
