/**
 * @file
 * Parallel (domain-partitioned) scheduler tests: partitioning unit
 * behavior — TimedFifo boundaries cut, shared modules merge — plus
 * lockstep bit-equivalence against the exhaustive scheduler on
 * randomized multi-domain rule soups and on the full quad-core system.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "core/cmd.hh"
#include "cosim.hh"

using namespace cmd;

namespace {

/** FNV-1a over a snapshot buffer. */
uint64_t
digest(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

/**
 * A TimedFifo between two hint groups is a domain boundary: the two
 * sides partition into distinct domains and tokens still flow across.
 */
TEST(Parallel, TimedFifoCutsDomains)
{
    Kernel k;
    // The fifo is deliberately built outside any hint scope: its
    // endpoint modules detach from the construction scope regardless,
    // and each joins the domain of the rules that call it.
    TimedFifo<uint64_t> q(k, "q", 4, 1);
    std::unique_ptr<Reg<uint64_t>> a, b;
    Rule *produce = nullptr, *consume = nullptr;
    {
        DomainHint hl(k, "left");
        a = std::make_unique<Reg<uint64_t>>(k, "a", 1);
        produce = &k.rule("produce", [&] {
                       q.enq(a->read());
                       a->write(a->read() + 1);
                   }).when([&] { return q.canEnq(); }).uses({&q.enqM});
    }
    {
        DomainHint hr(k, "right");
        b = std::make_unique<Reg<uint64_t>>(k, "b", 0);
        consume = &k.rule("consume", [&] {
                       b->write(b->read() + q.deq());
                   }).when([&] { return q.canDeq(); }).uses({&q.deqM});
    }
    k.setScheduler(SchedulerKind::Parallel);
    k.elaborate();

    EXPECT_EQ(k.domainCount(), 2u);
    EXPECT_TRUE(k.parallelActive());
    EXPECT_NE(k.domainOf(*produce), k.domainOf(*consume));

    k.run(50);
    EXPECT_GT(produce->firedCount(), 10u);
    EXPECT_GT(consume->firedCount(), 10u);
    EXPECT_GT(b->read(), 0u); // tokens really crossed the boundary
}

/**
 * The graceful-merge fallback: two hint groups whose rules share one
 * ordinary module (a PipelineFifo — same-cycle coupled state) collapse
 * into a single domain, and Parallel degrades to the sequential walk
 * (parallelActive() false) rather than racing or refusing to run.
 */
namespace {

struct MergedPair {
    Kernel k;
    std::unique_ptr<Reg<uint64_t>> a, b;
    std::unique_ptr<PipelineFifo<uint64_t>> q;
    Rule *produce = nullptr, *consume = nullptr;

    MergedPair(SchedulerKind kind, uint32_t threads)
    {
        {
            DomainHint hl(k, "left");
            a = std::make_unique<Reg<uint64_t>>(k, "a", 1);
            q = std::make_unique<PipelineFifo<uint64_t>>(k, "q", 4);
            produce = &k.rule("produce", [this] {
                           q->enq(a->read());
                           a->write(a->read() + 1);
                       }).when([this] { return q->canEnq(); })
                           .uses({&q->enqM});
        }
        {
            DomainHint hr(k, "right");
            b = std::make_unique<Reg<uint64_t>>(k, "b", 0);
            consume = &k.rule("consume", [this] {
                           b->write(b->read() + q->deq());
                       }).when([this] { return q->canDeq(); })
                           .uses({&q->deqM});
        }
        k.setParallelThreads(threads);
        k.setScheduler(kind);
        k.elaborate();
    }
};

} // namespace

TEST(Parallel, SharedModuleMergesDomains)
{
    MergedPair par(SchedulerKind::Parallel, 4);
    EXPECT_EQ(par.k.domainCount(), 1u);
    EXPECT_FALSE(par.k.parallelActive());
    EXPECT_EQ(par.k.domainOf(*par.produce), par.k.domainOf(*par.consume));

    // Degraded-mode execution still matches the exhaustive scheduler
    // bit for bit (uint64-only state, so cross-instance digests are
    // comparable).
    MergedPair ex(SchedulerKind::Exhaustive, 0);
    for (int c = 0; c < 200; c++) {
        par.k.cycle();
        ex.k.cycle();
        ASSERT_EQ(digest(ex.k.snapshot()), digest(par.k.snapshot()))
            << "diverged at cycle " << c + 1;
    }
    EXPECT_GT(par.b->read(), 0u);
}

namespace {

/**
 * A deterministic random multi-domain rule soup: kDomains hint groups,
 * each with private registers and randomized internal rules, connected
 * in a ring by cross-domain TimedFifos. All state is uint64/uint32
 * scalars, so snapshot digests are comparable across instances (unlike
 * struct payloads, whose padding is instance-dependent). Building
 * twice with one seed yields structurally identical designs; kernels
 * differing only in scheduler/threads must stay bit-identical cycle by
 * cycle.
 */
struct DomainSoup {
    static constexpr uint32_t kDomains = 4;
    static constexpr int kRegsPerDomain = 6;
    static constexpr int kRulesPerDomain = 8;

    Kernel k;
    std::vector<std::unique_ptr<Reg<uint64_t>>> regs; // kDomains x kRegs
    std::vector<std::unique_ptr<Reg<uint64_t>>> ticks; // one per domain
    std::vector<std::unique_ptr<TimedFifo<uint64_t>>> ring;

    Reg<uint64_t> *reg(uint32_t d, int i)
    {
        return regs[d * kRegsPerDomain + i].get();
    }

    DomainSoup(uint32_t seed, SchedulerKind kind, uint32_t threads,
               uint32_t minDelay = 1)
    {
        std::mt19937 rng(seed);
        // Ring fifos first (outside any hint scope; the endpoints
        // detach and join the caller domains). Randomized capacity and
        // delay exercise different lookahead windows; a cross-domain
        // channel needs latency >= 1, and the windowed tests raise
        // minDelay to guarantee multi-cycle lookahead.
        for (uint32_t d = 0; d < kDomains; d++) {
            ring.push_back(std::make_unique<TimedFifo<uint64_t>>(
                k, strfmt("ring%u", d), 2 + rng() % 3,
                minDelay + rng() % 3));
        }
        for (uint32_t d = 0; d < kDomains; d++) {
            DomainHint hint(k, strfmt("dom%u", d));
            for (int i = 0; i < kRegsPerDomain; i++) {
                regs.push_back(std::make_unique<Reg<uint64_t>>(
                    k, strfmt("d%ur%d", d, i), uint64_t(d) * 31 + i + 1));
            }
            for (int i = 0; i < kRulesPerDomain; i++) {
                auto *ra = reg(d, rng() % kRegsPerDomain);
                auto *rb = reg(d, rng() % kRegsPerDomain);
                auto *rc = reg(d, rng() % kRegsPerDomain);
                uint64_t mod = 2 + rng() % 7;
                uint64_t rem = rng() % mod;
                uint64_t add = 1 + rng() % 9;
                switch (rng() % 3) {
                  case 0:
                    k.rule(strfmt("d%uw%d", d, i),
                           [=] { rc->write(rc->read() + ra->read() + add); })
                        .when([=] { return ra->read() % mod == rem; });
                    break;
                  case 1:
                    k.rule(strfmt("d%ut%d", d, i), [=] {
                        require((ra->read() + rb->read()) % mod == rem);
                        rc->write(rb->read() ^ (rc->read() << 1));
                    });
                    break;
                  default:
                    k.rule(strfmt("d%uq%d", d, i), [=] {
                        if (!requireFast(ra->read() % mod == rem))
                            return;
                        rc->write(rc->read() + add);
                    });
                }
            }
            // Ring hookup: domain d feeds ring[d], drains ring[d-1].
            // The send gate runs off a dedicated tick register only
            // the heartbeat writes, so traffic is guaranteed no matter
            // what the random rules do to the shared registers.
            ticks.push_back(std::make_unique<Reg<uint64_t>>(
                k, strfmt("d%utick", d), 0));
            auto *tick = ticks.back().get();
            auto *out = ring[d].get();
            auto *in = ring[(d + kDomains - 1) % kDomains].get();
            auto *src = reg(d, 0);
            auto *sink = reg(d, kRegsPerDomain - 1);
            k.rule(strfmt("d%usend", d),
                   [=] { out->enq(src->read() + tick->read()); })
                .when([=] {
                    return tick->read() % 3 == 0 && out->canEnq();
                })
                .uses({&out->enqM});
            k.rule(strfmt("d%urecv", d), [=] {
                 sink->write(sink->read() + in->deq());
             }).when([=] { return in->canDeq(); }).uses({&in->deqM});
            // Per-domain heartbeat: no domain ever goes quiescent.
            k.rule(strfmt("d%ubeat", d),
                   [=] { tick->write(tick->read() + 1); });
        }
        k.setParallelThreads(threads);
        k.setScheduler(kind);
        k.elaborate();
    }
};

} // namespace

/**
 * The soup acceptance test: parallel execution at 1, 2 and 4 threads
 * is bit-identical, cycle by cycle, to the exhaustive reference, over
 * several seeds — and not vacuously (the partition really is
 * multi-domain and tokens really cross it).
 */
TEST(Parallel, LockstepRandomSoups)
{
    constexpr int kCycles = 1500;
    for (uint32_t seed : {1u, 7u, 42u, 1234u}) {
        DomainSoup ex(seed, SchedulerKind::Exhaustive, 0);
        std::vector<uint64_t> exDigests;
        for (int c = 0; c < kCycles; c++) {
            ex.k.cycle();
            exDigests.push_back(digest(ex.k.snapshot()));
        }
        // Every domain's ring sink must have accumulated something, or
        // the cross-domain path was never exercised.
        for (uint32_t d = 0; d < DomainSoup::kDomains; d++) {
            EXPECT_GT(ex.reg(d, DomainSoup::kRegsPerDomain - 1)->read(),
                      uint64_t(d) * 31 + DomainSoup::kRegsPerDomain)
                << "seed " << seed << " domain " << d;
        }

        for (uint32_t threads : {1u, 2u, 4u}) {
            DomainSoup par(seed, SchedulerKind::Parallel, threads);
            ASSERT_EQ(par.k.domainCount(), DomainSoup::kDomains)
                << "seed " << seed;
            ASSERT_TRUE(par.k.parallelActive());
            for (int c = 0; c < kCycles; c++) {
                par.k.cycle();
                ASSERT_EQ(exDigests[c], digest(par.k.snapshot()))
                    << "seed " << seed << " threads " << threads
                    << " diverged at cycle " << c + 1;
            }
        }
    }
}

/**
 * Multi-cycle lookahead PDES acceptance: parallel execution under
 * sync windows wider than one cycle — lookahead caps {1, 2, 8} x
 * threads {1, 2, 4} — stays bit-identical to the exhaustive
 * reference at every window-aligned observation point, and the
 * barrier count really drops by the window width.
 *
 * The soups are built with minDelay 2 so every cross-domain channel
 * has latency >= 2 and the fifo-min lookahead is genuinely > 1
 * (otherwise the sweep would be vacuous: effective = min(cap,
 * fifo-min)).
 */
TEST(Parallel, WindowedLookaheadCosim)
{
    constexpr uint64_t kChunk = 250;
    constexpr uint64_t kTotal = 1500;
    for (uint32_t seed : {3u, 11u, 77u}) {
        DomainSoup ex(seed, SchedulerKind::Exhaustive, 0, 2);
        std::vector<uint64_t> exDigests;
        for (uint64_t c = 0; c < kTotal; c += kChunk) {
            ex.k.run(kChunk);
            exDigests.push_back(digest(ex.k.snapshot()));
        }

        for (uint32_t threads : {1u, 2u, 4u}) {
            for (uint32_t la : {1u, 2u, 8u}) {
                DomainSoup par(seed, SchedulerKind::Parallel, threads, 2);
                par.k.setLookahead(la);
                ASSERT_TRUE(par.k.parallelActive());
                ASSERT_GE(par.k.fifoMinLookahead(), 2u);
                uint32_t eff = par.k.effectiveLookahead();
                ASSERT_EQ(eff, std::min(la, par.k.fifoMinLookahead()));
                for (uint64_t c = 0; c < kTotal; c += kChunk) {
                    par.k.run(kChunk);
                    ASSERT_EQ(exDigests[c / kChunk],
                              digest(par.k.snapshot()))
                        << "seed " << seed << " threads " << threads
                        << " lookahead " << la << " diverged by cycle "
                        << c + kChunk;
                }
                // Each run(kChunk) call syncs ceil(kChunk / eff)
                // times; the whole point of the window is that this
                // is ~eff-times fewer than one-per-cycle.
                uint64_t expect =
                    (kTotal / kChunk) * ((kChunk + eff - 1) / eff);
                EXPECT_EQ(par.k.syncEpochs(), expect)
                    << "seed " << seed << " threads " << threads
                    << " lookahead " << la;
            }
        }
    }
}

/**
 * A latency-0 TimedFifo crossing a domain cut provides no PDES
 * lookahead; elaboration must reject it with a catchable DesignError
 * naming the channel and the domain pair — not deadlock or race at
 * run time.
 */
TEST(Parallel, LatencyZeroCrossChannelFaults)
{
    Kernel k;
    TimedFifo<uint64_t> q(k, "combo", 4, 0);
    EXPECT_EQ(q.latency(), 0u);
    std::unique_ptr<Reg<uint64_t>> a, b;
    {
        DomainHint hl(k, "left");
        a = std::make_unique<Reg<uint64_t>>(k, "a", 1);
        k.rule("produce", [&] { q.enq(a->read()); })
            .when([&] { return q.canEnq(); })
            .uses({&q.enqM});
    }
    {
        DomainHint hr(k, "right");
        b = std::make_unique<Reg<uint64_t>>(k, "b", 0);
        k.rule("consume", [&] { b->write(b->read() + q.deq()); })
            .when([&] { return q.canDeq(); })
            .uses({&q.deqM});
    }
    k.setScheduler(SchedulerKind::Parallel);
    try {
        k.elaborate();
        FAIL() << "latency-0 cross-domain channel must not elaborate";
    } catch (const KernelFault &f) {
        EXPECT_EQ(f.kind(), FaultKind::DesignError);
        EXPECT_NE(f.message().find("combo"), std::string::npos)
            << f.message();
        EXPECT_NE(f.message().find("latency 0"), std::string::npos)
            << f.message();
        EXPECT_NE(f.message().find("left"), std::string::npos)
            << f.message();
        EXPECT_NE(f.message().find("right"), std::string::npos)
            << f.message();
    }
}

/**
 * Scheduler switching on a live multi-domain design: run a stretch
 * exhaustive, switch to parallel mid-flight, then back — digests must
 * track a pure-exhaustive twin the whole way.
 */
TEST(Parallel, SwitchingSchedulersMidRun)
{
    DomainSoup ex(7u, SchedulerKind::Exhaustive, 0);
    DomainSoup sw(7u, SchedulerKind::Exhaustive, 2);
    auto step = [&](int n) {
        for (int c = 0; c < n; c++) {
            ex.k.cycle();
            sw.k.cycle();
            ASSERT_EQ(digest(ex.k.snapshot()), digest(sw.k.snapshot()));
        }
    };
    step(300);
    sw.k.setScheduler(SchedulerKind::Parallel);
    ASSERT_TRUE(sw.k.parallelActive());
    step(300);
    sw.k.setScheduler(SchedulerKind::EventDriven);
    step(300);
    sw.k.setScheduler(SchedulerKind::Parallel);
    step(300);
}

/**
 * The full-system acceptance test: the quad-core TSO system partitions
 * into cores + memory = 5 domains, and a parallel 4-thread replay of a
 * fixed cycle window is bit-identical to the exhaustive run.
 *
 * One System instance is rewound and replayed (cross-instance digest
 * comparison is invalid — struct padding; see test_scheduler.cc). The
 * workload is load-only so PhysMem, which sits outside the kernel
 * snapshot, is identical across the two runs.
 */
TEST(Parallel, QuadCoreSystemReplay)
{
    using namespace riscy;
    using namespace riscy::test;

    Assembler a(kEntry);
    // Endless load loop with a data-dependent accumulator and a short
    // branch pattern (same shape as the scheduler lockstep test):
    // every hart runs it, hammering private L1s/TLBs and the shared
    // L2 through the cross-domain channels.
    a.li(5, kEntry + 0x10000);
    a.li(6, 0);
    a.li(7, 0);
    auto loop = a.newLabel();
    a.bind(loop);
    a.andi(28, 6, 511);
    a.slli(28, 28, 3);
    a.add(28, 28, 5);
    a.ld(29, 0, 28);
    a.add(7, 7, 29);
    a.andi(30, 6, 7);
    auto skip = a.newLabel();
    a.bnez(30, skip);
    a.xor_(7, 7, 6);
    a.bind(skip);
    a.addi(6, 6, 1);
    a.j(loop);

    SystemConfig cfg = SystemConfig::multicore(true);
    cfg.scheduler = cmd::SchedulerKind::Exhaustive;
    System sys(cfg);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0,
              {kStackTop, kStackTop + 0x10000, kStackTop + 0x20000,
               kStackTop + 0x30000});
    auto snap0 = sys.kernel().snapshot();

    constexpr uint64_t kChunk = 3000;
    constexpr uint64_t kTotal = 24000;
    std::vector<uint64_t> exDigests;
    for (uint64_t c = 0; c < kTotal; c += kChunk) {
        sys.kernel().run(kChunk);
        exDigests.push_back(digest(sys.kernel().snapshot()));
    }
    std::vector<uint64_t> exInstret;
    for (uint32_t i = 0; i < cfg.cores; i++) {
        exInstret.push_back(sys.instret(i));
        EXPECT_GT(sys.instret(i), 100u) << "hart " << i << " barely ran";
    }

    sys.kernel().restore(snap0);
    sys.kernel().setParallelThreads(4);
    sys.kernel().setScheduler(cmd::SchedulerKind::Parallel);
    ASSERT_EQ(sys.kernel().domainCount(), cfg.cores + 1);
    ASSERT_TRUE(sys.kernel().parallelActive());
    for (uint64_t c = 0; c < kTotal; c += kChunk) {
        sys.kernel().run(kChunk);
        ASSERT_EQ(exDigests[c / kChunk], digest(sys.kernel().snapshot()))
            << "parallel diverged by cycle " << c + kChunk;
    }
    // instret is architectural state inside the snapshot, so the
    // restore rewound it; the replay must land on exactly the
    // exhaustive run's retirement count.
    for (uint32_t i = 0; i < cfg.cores; i++)
        EXPECT_EQ(sys.instret(i), exInstret[i]) << "hart " << i;
}

/**
 * Cross-scheduler commit-stream equivalence on the quad-core with
 * *shared-memory stores* (all four harts hammer one array through the
 * coherent L2). Two System instances; commits are architectural, so
 * they compare validly across instances where raw snapshots do not.
 */
TEST(Parallel, QuadCoreCommitStream)
{
    using namespace riscy;
    using namespace riscy::test;

    Assembler a(kEntry);
    // mem[i & 63] = checksum += mem[i & 63] + i, forever — every hart,
    // same 64-dword window, so lines migrate between all four L1s.
    a.li(5, kEntry + 0x10000);
    a.li(6, 0);
    a.li(7, 0);
    auto loop = a.newLabel();
    a.bind(loop);
    a.andi(28, 6, 63);
    a.slli(28, 28, 3);
    a.add(28, 28, 5);
    a.ld(29, 0, 28);
    a.add(29, 29, 6);
    a.add(7, 7, 29);
    a.sd(7, 0, 28);
    a.addi(6, 6, 1);
    a.j(loop);

    struct Log {
        std::vector<std::tuple<Addr, uint32_t, uint64_t>> entries;
    };
    auto mkSys = [&](cmd::SchedulerKind kind, uint32_t threads,
                     std::vector<Log> &logs) {
        SystemConfig cfg = SystemConfig::multicore(true);
        cfg.scheduler = kind;
        cfg.threads = threads;
        auto sys = std::make_unique<System>(cfg);
        a.load(sys->mem(), kEntry);
        sys->elaborate();
        logs.resize(cfg.cores);
        for (uint32_t i = 0; i < cfg.cores; i++) {
            sys->setOnCommit(i, [&logs, i](const CommitRecord &r) {
                logs[i].entries.emplace_back(
                    r.pc, r.raw,
                    r.hasRd && !r.volatileRd ? r.rdVal : 0);
            });
        }
        sys->start(kEntry, 0,
                   {kStackTop, kStackTop + 0x10000, kStackTop + 0x20000,
                    kStackTop + 0x30000});
        return sys;
    };

    std::vector<Log> exLogs, parLogs;
    auto ex = mkSys(cmd::SchedulerKind::Exhaustive, 0, exLogs);
    auto par = mkSys(cmd::SchedulerKind::Parallel, 4, parLogs);
    ASSERT_EQ(par->kernel().domainCount(), 5u);
    ASSERT_TRUE(par->kernel().parallelActive());

    constexpr uint64_t kCycles = 12000;
    ex->kernel().run(kCycles);
    par->kernel().run(kCycles);

    for (uint32_t i = 0; i < 4; i++) {
        ASSERT_EQ(exLogs[i].entries.size(), parLogs[i].entries.size())
            << "hart " << i;
        ASSERT_GT(exLogs[i].entries.size(), 500u)
            << "hart " << i << " barely ran";
        for (size_t n = 0; n < exLogs[i].entries.size(); n++) {
            ASSERT_EQ(exLogs[i].entries[n], parLogs[i].entries[n])
                << "hart " << i << " commit #" << n;
        }
        EXPECT_EQ(ex->instret(i), par->instret(i)) << "hart " << i;
    }
}
