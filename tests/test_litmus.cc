/**
 * @file
 * Litmus harness tests (src/litmus): reference-model enumerator
 * spot checks against textbook TSO/WMM verdicts, lowering round
 * trips, checked corpus sweeps on the real multicore under both
 * models, the deliberately-broken-ordering negative test (TSO
 * evict-kill disabled must be caught and produce a complete repro
 * bundle), and fuzzer generator/shrinker units.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "litmus/corpus.hh"
#include "litmus/fuzz.hh"
#include "litmus/runner.hh"

using namespace riscy;
using namespace riscy::litmus;

namespace {

using I = LitmusInst;
constexpr uint8_t x = 0, y = 1;

bool
allows(const LitmusProgram &p, MemModel m,
       const std::vector<uint32_t> &slots)
{
    return enumerateOutcomes(p, m).count(packOutcome(slots)) != 0;
}

// ---------------------------------------------------------- enumerator

TEST(LitmusModel, SbWeakOutcomeAllowedUnderBothModels)
{
    const LitmusProgram &sb = corpusEntry("SB").prog;
    // Store buffering: (0,0) is the hallmark TSO relaxation.
    EXPECT_TRUE(allows(sb, MemModel::Tso, {0, 0}));
    EXPECT_TRUE(allows(sb, MemModel::Wmm, {0, 0}));
    // All four outcomes are reachable under both models.
    EXPECT_EQ(enumerateOutcomes(sb, MemModel::Tso).size(), 4u);
    EXPECT_EQ(enumerateOutcomes(sb, MemModel::Wmm).size(), 4u);
}

TEST(LitmusModel, SbFenceForbidsTheWeakOutcomeEverywhere)
{
    const LitmusProgram &p = corpusEntry("SB+fence").prog;
    EXPECT_FALSE(allows(p, MemModel::Tso, {0, 0}));
    EXPECT_FALSE(allows(p, MemModel::Wmm, {0, 0}));
    EXPECT_TRUE(allows(p, MemModel::Tso, {1, 0}));
    EXPECT_TRUE(allows(p, MemModel::Wmm, {1, 1}));
}

TEST(LitmusModel, SbAmoSeparatesTheModels)
{
    // An AMO drains the buffer and writes memory, so under TSO it is
    // a full barrier and (0,0) dies; under WMM the later load can
    // still return a stale value from the invalidation buffer.
    const LitmusProgram &p = corpusEntry("SB+amo").prog;
    EXPECT_FALSE(allows(p, MemModel::Tso, {0, 0}));
    EXPECT_TRUE(allows(p, MemModel::Wmm, {0, 0}));
}

TEST(LitmusModel, MpReorderForbiddenTsoAllowedWmm)
{
    const LitmusProgram &mp = corpusEntry("MP").prog;
    // flag observed, data missed: the model-separating outcome.
    EXPECT_FALSE(allows(mp, MemModel::Tso, {1, 0}));
    EXPECT_TRUE(allows(mp, MemModel::Wmm, {1, 0}));
    // Sanity: the strong outcome is allowed everywhere.
    EXPECT_TRUE(allows(mp, MemModel::Tso, {1, 1}));
    EXPECT_TRUE(allows(mp, MemModel::Wmm, {1, 1}));
}

TEST(LitmusModel, MpFenceForbidsReorderUnderWmmToo)
{
    const LitmusProgram &p = corpusEntry("MP+fence").prog;
    EXPECT_FALSE(allows(p, MemModel::Tso, {1, 0}));
    EXPECT_FALSE(allows(p, MemModel::Wmm, {1, 0}));
}

TEST(LitmusModel, LoadBufferingForbiddenUnderBothModels)
{
    // Neither model lets a store overtake a program-order-earlier
    // load (stores leave the hart only post-commit).
    const LitmusProgram &lb = corpusEntry("LB").prog;
    EXPECT_FALSE(allows(lb, MemModel::Tso, {1, 1}));
    EXPECT_FALSE(allows(lb, MemModel::Wmm, {1, 1}));
}

TEST(LitmusModel, CoRRCoherenceHoldsUnderBothModels)
{
    // Same-address loads never travel backwards in coherence order.
    const LitmusProgram &p = corpusEntry("CoRR").prog;
    EXPECT_FALSE(allows(p, MemModel::Tso, {1, 0}));
    EXPECT_FALSE(allows(p, MemModel::Wmm, {1, 0}));
    EXPECT_TRUE(allows(p, MemModel::Wmm, {0, 1}));
}

TEST(LitmusModel, SAllowsWmmOnlyCoherenceInversion)
{
    // P1 reads y=1 yet its St x=1 ends up coherence-BEFORE P0's
    // St x=2 (final x=2): needs P0 to drain y before x — WMM only.
    const LitmusProgram &p = corpusEntry("S").prog;
    EXPECT_FALSE(allows(p, MemModel::Tso, {1, 2}));
    EXPECT_TRUE(allows(p, MemModel::Wmm, {1, 2}));
    // The benign order (P0's x=2 drains first) is allowed everywhere.
    EXPECT_TRUE(allows(p, MemModel::Tso, {1, 1}));
}

TEST(LitmusModel, TwoPlusTwoWSeparatesTheModels)
{
    // Both "first" stores losing requires per-address drain
    // reordering on both sides.
    const LitmusProgram &p = corpusEntry("2+2W").prog;
    EXPECT_FALSE(allows(p, MemModel::Tso, {1, 1}));
    EXPECT_TRUE(allows(p, MemModel::Wmm, {1, 1}));
}

TEST(LitmusModel, WrcCausalityForbiddenTsoAllowedWmm)
{
    const LitmusProgram &p = corpusEntry("WRC").prog;
    EXPECT_FALSE(allows(p, MemModel::Tso, {1, 1, 0}));
    EXPECT_TRUE(allows(p, MemModel::Wmm, {1, 1, 0}));
}

TEST(LitmusModel, IriwDisagreementForbiddenTsoAllowedWmm)
{
    const LitmusProgram &p = corpusEntry("IRIW").prog;
    // P2 sees x first, P3 sees y first.
    EXPECT_FALSE(allows(p, MemModel::Tso, {1, 0, 1, 0}));
    EXPECT_TRUE(allows(p, MemModel::Wmm, {1, 0, 1, 0}));
}

TEST(LitmusModel, IriwWithFencesForbiddenUnderBothModels)
{
    // WMM is multi-copy atomic; with reconciling fences between the
    // reader loads the disagreement dies there too.
    const LitmusProgram &p = corpusEntry("IRIW+fence").prog;
    EXPECT_FALSE(allows(p, MemModel::Tso, {1, 0, 1, 0}));
    EXPECT_FALSE(allows(p, MemModel::Wmm, {1, 0, 1, 0}));
}

TEST(LitmusModel, TsoOutcomesAreSubsetOfWmmOnCorpus)
{
    // Every corpus shape: TSO is strictly stronger, so its allowed
    // set must embed into WMM's.
    for (const auto &e : corpus()) {
        auto tso = enumerateOutcomes(e.prog, MemModel::Tso);
        auto wmm = enumerateOutcomes(e.prog, MemModel::Wmm);
        for (Outcome o : tso)
            EXPECT_TRUE(wmm.count(o))
                << e.prog.name << ": TSO outcome "
                << formatOutcome(e.prog, o) << " missing under WMM";
    }
}

TEST(LitmusModel, ValidRejectsOverBudgetPrograms)
{
    LitmusProgram p;
    p.name = "bad";
    p.harts = {{I::ld(x), I::ld(x), I::ld(x), I::ld(x), I::ld(x)}};
    std::string why;
    EXPECT_FALSE(p.valid(&why)); // 5 loads in one hart
    p.harts = {{I::st(x, 0)}};
    EXPECT_FALSE(p.valid(&why)); // store of 0
    p.harts = {{I::st(x, 1)}};
    EXPECT_FALSE(p.valid(&why)); // no observed slots
    p.finalObs = {x};
    EXPECT_TRUE(p.valid(&why)) << why;
}

// ----------------------------------------------------------- lowering

TEST(LitmusRunner, LoweringIsDeterministicAndSkewSensitive)
{
    const LitmusProgram &sb = corpusEntry("SB").prog;
    auto c1 = lower(sb, {3, 7});
    auto c2 = lower(sb, {3, 7});
    auto c3 = lower(sb, {4, 7});
    EXPECT_EQ(c1, c2);
    EXPECT_NE(c1, c3);
    EXPECT_GT(c1.size(), 16u);
}

TEST(LitmusRunner, SingleRunProducesAllowedOutcome)
{
    // One cheap end-to-end run per model on the event scheduler.
    for (MemModel m : {MemModel::Tso, MemModel::Wmm}) {
        RunConfig cfg;
        cfg.model = m;
        cfg.seed = 42;
        const LitmusProgram &mp = corpusEntry("MP").prog;
        RunResult r = runOnce(mp, cfg);
        ASSERT_FALSE(r.hang) << toString(m);
        EXPECT_TRUE(enumerateOutcomes(mp, m).count(r.outcome))
            << toString(m) << " produced forbidden "
            << formatOutcome(mp, r.outcome);
    }
}

TEST(LitmusRunner, RunsAreSeedDeterministic)
{
    RunConfig cfg;
    cfg.model = MemModel::Wmm;
    cfg.seed = 7;
    const LitmusProgram &sb = corpusEntry("SB").prog;
    RunResult a = runOnce(sb, cfg);
    RunResult b = runOnce(sb, cfg);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.hang, b.hang);
}

TEST(LitmusRunner, FinalMemoryObservationWorks)
{
    // 2+2W observes only final memory; each run must land in the
    // allowed set and see nonzero finals (all stores retire).
    RunConfig cfg;
    cfg.model = MemModel::Tso;
    cfg.seed = 3;
    const LitmusProgram &p = corpusEntry("2+2W").prog;
    RunResult r = runOnce(p, cfg);
    ASSERT_FALSE(r.hang);
    EXPECT_TRUE(enumerateOutcomes(p, MemModel::Tso).count(r.outcome))
        << formatOutcome(p, r.outcome);
    EXPECT_NE(slotValue(r.outcome, 0), 0u);
    EXPECT_NE(slotValue(r.outcome, 1), 0u);
}

// --------------------------------------------- checked sweeps (small)

TEST(LitmusRunner, SmallSweepIsCleanUnderBothModels)
{
    // The heavyweight seed matrix lives in bench/ablation_litmus; this
    // is the in-tree regression: a handful of jittered seeds per model
    // on two representative shapes, zero forbidden outcomes.
    for (MemModel m : {MemModel::Tso, MemModel::Wmm}) {
        for (const char *name : {"MP", "SB+fence"}) {
            RunConfig cfg;
            cfg.model = m;
            SweepResult s =
                sweep(corpusEntry(name).prog, cfg, 1000, 5);
            EXPECT_TRUE(s.clean())
                << name << " under " << toString(m) << ": "
                << s.forbidden.size() << " forbidden, " << s.hangs
                << " hangs";
        }
    }
}

TEST(LitmusRunner, ShakerReachesSbWeakOutcomeUnderBothModels)
{
    // Coverage obligation, small in-tree edition: the shaker must
    // actually visit the store-buffering window — SB (0,0) shows up in
    // roughly a third of seeds under either model, so 20 seeds are
    // plenty (and deterministic). The full per-entry obligation matrix
    // (incl. MP (1,0) and SB+amo (0,0) under WMM) runs in
    // bench/ablation_litmus.
    const CorpusEntry &sb = corpusEntry("SB");
    for (MemModel m : {MemModel::Tso, MemModel::Wmm}) {
        RunConfig cfg;
        cfg.model = m;
        SweepResult sw = sweep(sb.prog, cfg, 1, 20);
        EXPECT_TRUE(sw.clean()) << toString(m);
        EXPECT_TRUE(sw.observed(packOutcome({0, 0})))
            << "shaker never buffered the stores under " << toString(m);
    }
}

TEST(LitmusRunner, NegativeControlBrokenTsoIsCaughtWithBundle)
{
    // Disable the TSO evict-kill (CoreConfig::tsoEvictKill=false): the
    // implementation silently loses load-load ordering, and the
    // harness must catch the resulting forbidden MP outcome (flag=1,
    // data=0 — the younger data load executed early against a warm
    // line and survived the invalidation it should have died to) and
    // emit a complete repro bundle. This is the end-to-end proof the
    // checker can actually fail. At default shaker settings ~5% of
    // seeds expose it (first in [1,60]: seed 34), so a 60-seed sweep
    // deterministically catches it; the twin positive control is
    // SmallSweepIsCleanUnderBothModels plus the bench seed matrix,
    // where the same sweep with the kill enabled stays clean.
    RunConfig cfg;
    cfg.model = MemModel::Tso;
    cfg.mutateCfg = [](SystemConfig &s) { s.core.tsoEvictKill = false; };

    const LitmusProgram &mp = corpusEntry("MP").prog;
    SweepResult sw = sweep(mp, cfg, 1, 60);
    ASSERT_FALSE(sw.forbidden.empty())
        << "broken TSO (evict-kill off) produced no forbidden MP "
           "outcome — the negative control lost its teeth";
    EXPECT_EQ(sw.forbidden[0], packOutcome({1, 0}))
        << formatOutcome(mp, sw.forbidden[0]);

    // Re-run the first offending seed deterministically and write the
    // bundle; the re-run must still land outside the allowed set.
    cfg.seed = sw.firstForbiddenSeed;
    std::string dir = "litmus_repro/negative-control";
    RunResult r = writeReproBundle(dir, mp, cfg, &sw);
    ASSERT_FALSE(r.hang);
    EXPECT_FALSE(enumerateOutcomes(mp, MemModel::Tso).count(r.outcome))
        << "bundle re-run no longer reproduces";
    for (const char *f : {"/repro.txt", "/trace.kanata",
                          "/trace_timeline.json", "/flight.txt"})
        EXPECT_TRUE(std::filesystem::exists(dir + f)) << f;
    std::ifstream rf(dir + "/repro.txt");
    std::string txt((std::istreambuf_iterator<char>(rf)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(txt.find("FORBIDDEN"), std::string::npos);
    EXPECT_NE(txt.find("disassembly"), std::string::npos);
    EXPECT_NE(txt.find("prewarm"), std::string::npos);
}

TEST(LitmusRunner, MpStressCleanWhereTheModelPromisesIt)
{
    // TSO unfenced and WMM fenced must never observe stale data.
    for (bool tso : {true, false}) {
        RunConfig cfg;
        cfg.model = tso ? MemModel::Tso : MemModel::Wmm;
        cfg.seed = 11;
        EXPECT_EQ(runMpStress(cfg, 40, /*fenced=*/!tso), 0u)
            << (tso ? "TSO unfenced" : "WMM fenced");
    }
}

// -------------------------------------------------------------- fuzz

TEST(LitmusFuzz, GeneratorProducesValidDiversePrograms)
{
    std::mt19937_64 rng(123);
    uint32_t withAmo = 0, withFence = 0, withFinals = 0;
    for (int i = 0; i < 200; i++) {
        LitmusProgram p = generateProgram(rng);
        std::string why;
        ASSERT_TRUE(p.valid(&why)) << why;
        // The model enumerator must handle everything the generator
        // can emit.
        EXPECT_GE(enumerateOutcomes(p, MemModel::Wmm).size(), 1u);
        for (const auto &h : p.harts)
            for (const auto &in : h) {
                withAmo += in.op == LOp::AmoSwap || in.op == LOp::AmoAdd;
                withFence += in.op == LOp::Fence;
            }
        withFinals += !p.finalObs.empty();
    }
    EXPECT_GT(withAmo, 0u);
    EXPECT_GT(withFence, 0u);
    EXPECT_GT(withFinals, 0u);
}

TEST(LitmusFuzz, ShrinkerReachesMinimalFailingProgram)
{
    // A pure predicate: "hart 0 still stores to x and hart 1 still
    // loads x" — the shrinker must strip everything else.
    LitmusProgram p;
    p.name = "shrink-me";
    p.harts = {{I::st(y, 2), I::st(x, 1), I::fence(), I::ld(y)},
               {I::ld(y), I::ld(x), I::st(y, 1)},
               {I::amoAdd(y, 1), I::ld(y)}};
    p.finalObs = {x, y};
    auto pred = [](const LitmusProgram &q) {
        bool st = false, ld = false;
        for (const auto &h : q.harts)
            for (const auto &i : h) {
                st |= i.op == LOp::St && i.loc == x;
                ld |= i.op == LOp::Ld && i.loc == x;
            }
        return st && ld;
    };
    ASSERT_TRUE(pred(p));
    LitmusProgram s = shrinkProgram(p, pred);
    ASSERT_TRUE(pred(s));
    ASSERT_TRUE(s.valid());
    // Minimal: two harts, one instruction each, no finals.
    EXPECT_EQ(s.numHarts(), 2u);
    for (const auto &h : s.harts)
        EXPECT_EQ(h.size(), 1u);
    EXPECT_TRUE(s.finalObs.empty());
}

TEST(LitmusFuzz, SmokeCampaignIsCleanOnTheRealMachine)
{
    // Tiny budget here; the CI-scale campaign lives in the bench.
    FuzzConfig fc;
    fc.seed = 2026;
    fc.programs = 3;
    fc.runsPerProgram = 2;
    fc.run.model = MemModel::Wmm;
    fc.bundleDir = "litmus_repro/fuzz-test";
    FuzzResult r = fuzz(fc);
    EXPECT_EQ(r.programs, 3u);
    EXPECT_TRUE(r.clean())
        << r.failures.size() << " failures, " << r.hangs << " hangs"
        << (r.failures.empty()
                ? ""
                : " first: " + r.failures[0].shrunk.describe());
}

} // namespace
