/**
 * @file
 * Tests for TimedFifo (latency-modeling FIFO) and GroupFifo
 * (superscalar enq/deq ports).
 */
#include <gtest/gtest.h>

#include "core/timed_fifo.hh"
#include "ooo/group_fifo.hh"

using namespace cmd;

namespace {

TEST(TimedFifo, ElementsAgeBeforeVisible)
{
    Kernel k;
    TimedFifo<int> f(k, "f", 4, 3);
    k.elaborate();
    ASSERT_TRUE(k.runAtomically([&] { f.enq(42); }));
    EXPECT_FALSE(f.canDeq()); // age 0
    k.cycle();
    EXPECT_FALSE(f.canDeq()); // age 1
    k.cycle();
    EXPECT_FALSE(f.canDeq()); // age 2
    k.cycle();
    EXPECT_TRUE(f.canDeq()); // age 3
    int v = 0;
    ASSERT_TRUE(k.runAtomically([&] { v = f.deq(); }));
    EXPECT_EQ(v, 42);
}

TEST(TimedFifo, PreservesOrderUnderPipelining)
{
    Kernel k;
    TimedFifo<int> f(k, "f", 8, 5);
    Reg<int> next(k, "next", 0);
    std::vector<int> out;
    k.rule("feed", [&] {
        f.enq(next.read());
        next.write(next.read() + 1);
    }).uses({&f.enqM});
    k.rule("drain", [&] { out.push_back(f.deq()); })
        .when([&] { return f.canDeq(); })
        .uses({&f.deqM});
    k.elaborate();
    k.run(40);
    // After the 5-cycle fill delay, one element per cycle.
    ASSERT_GE(out.size(), 30u);
    for (size_t i = 0; i < out.size(); i++)
        EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(TimedFifo, LatencyAccessorReportsDelay)
{
    Kernel k;
    TimedFifo<int> a(k, "a", 4, 3);
    TimedFifo<int> b(k, "b", 4, 1);
    TimedFifo<int> c(k, "c", 4, 0);
    // latency() is the ChannelPort view the kernel uses to size the
    // PDES lookahead window at elaboration.
    EXPECT_EQ(a.latency(), 3u);
    EXPECT_EQ(b.latency(), 1u);
    EXPECT_EQ(c.latency(), 0u);
    ChannelPort &p = a;
    EXPECT_EQ(p.latency(), 3u);
}

TEST(TimedFifo, CapacityBackpressure)
{
    Kernel k;
    TimedFifo<int> f(k, "f", 2, 100);
    k.elaborate();
    ASSERT_TRUE(k.runAtomically([&] { f.enq(1); }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { f.enq(2); }));
    k.cycle();
    EXPECT_FALSE(f.canEnq());
    EXPECT_FALSE(k.runAtomically([&] { f.enq(3); }));
}

TEST(GroupFifo, GroupEnqAndPartialDeq)
{
    Kernel k;
    riscy::GroupFifo<int> f(k, "f", 8);
    k.elaborate();
    int g1[3] = {10, 11, 12};
    ASSERT_TRUE(k.runAtomically([&] { f.enqGroup(g1, 3); }));
    k.cycle();
    EXPECT_EQ(f.size(), 3u);
    EXPECT_EQ(f.peek(0), 10);
    EXPECT_EQ(f.peek(2), 12);
    ASSERT_TRUE(k.runAtomically([&] { f.deqN(2); }));
    k.cycle();
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.peek(0), 12);
}

TEST(GroupFifo, SameCycleDeqThenEnq)
{
    // deq < enq: a full queue can still accept a group in the cycle
    // that drains one (pipeline behavior).
    Kernel k;
    riscy::GroupFifo<int> f(k, "f", 4);
    Reg<int> seen(k, "seen", 0);
    k.rule("drain", [&] {
        seen.write(f.peek(0));
        f.deqN(1);
    }).when([&] { return f.size() > 0; })
        .uses({&f.deqM});
    Reg<int> n(k, "n", 0);
    k.rule("feed", [&] {
        int g[2] = {n.read(), n.read() + 1};
        f.enqGroup(g, 2);
        n.write(n.read() + 2);
    }).uses({&f.enqM});
    k.elaborate();
    k.run(20);
    EXPECT_GT(seen.read(), 10);
}

TEST(GroupFifo, RejectsOversizeGroup)
{
    Kernel k;
    riscy::GroupFifo<int> f(k, "f", 4);
    k.elaborate();
    int g[3] = {1, 2, 3};
    ASSERT_TRUE(k.runAtomically([&] { f.enqGroup(g, 3); }));
    k.cycle();
    EXPECT_FALSE(f.canEnq(2));
    EXPECT_FALSE(k.runAtomically([&] { f.enqGroup(g, 2); }));
    EXPECT_TRUE(f.canEnq(1));
}

} // namespace
