/**
 * @file
 * Execution-mode tests (proc/sampling.hh, System::runFastForward /
 * runSampled): the fast functional mode must be architecturally
 * indistinguishable from detailed execution — fast-forwarding N
 * instructions and then handing off to the detailed core must commit
 * the exact same instruction stream a detailed-from-reset run commits
 * after its first N instructions, under every scheduler — and the
 * SMARTS estimator must behave (CI tightens, accounting conserves,
 * estimates land near the detailed reference).
 */
#include <gtest/gtest.h>

#include "proc/system.hh"
#include "workloads/workloads.hh"

using namespace riscy;

namespace {

const workloads::Workload &
spec(const std::string &name)
{
    static std::vector<workloads::Workload> all =
        workloads::specWorkloads();
    for (const auto &w : all)
        if (w.name == name)
            return w;
    throw std::runtime_error("no workload " + name);
}

/** FNV-1a over the timing-independent fields of a commit record. */
struct CommitDigest {
    uint64_t h = 1469598103934665603ull;

    void
    byte(uint8_t b)
    {
        h ^= b;
        h *= 1099511628211ull;
    }

    void
    word(uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    add(const CommitRecord &r)
    {
        word(r.pc);
        word(r.raw);
        byte(r.hasRd);
        byte(r.rd);
        // rdVal of a volatile destination (cycle CSR) is timing-
        // dependent by design; everything else must match bit-exactly.
        if (r.hasRd && !r.volatileRd)
            word(r.rdVal);
        byte(r.trapped);
        if (r.trapped)
            word(r.cause);
    }
};

struct DigestRun {
    uint64_t digest = 0;
    uint64_t commits = 0;
    uint64_t instret = 0;
    uint64_t exitCode = 0;
};

/** Detailed from reset, digesting commits after the first @p skip. */
DigestRun
detailedReference(const workloads::Workload &w, cmd::SchedulerKind sched,
                  bool inOrder, uint64_t skip)
{
    SystemConfig cfg = SystemConfig::riscyooB();
    cfg.scheduler = sched;
    cfg.inOrder = inOrder;
    System sys(cfg);
    workloads::Image img = w.build(sys, 1);
    sys.elaborate();
    CommitDigest d;
    DigestRun r;
    sys.setOnCommit(0, [&](const CommitRecord &c) {
        if (++r.commits > skip)
            d.add(c);
    });
    sys.start(img.entry, img.satp, img.stacks);
    EXPECT_TRUE(sys.run(400000000));
    r.digest = d.h;
    r.instret = sys.instret(0);
    r.exitCode = sys.host().exitCode(0);
    return r;
}

/** Fast-forward ~@p skip insts, hand off, finish detailed, digest the
 *  detailed leg's commits. Returns the exact fast-forwarded count in
 *  DigestRun::commits' complement via instret bookkeeping. */
DigestRun
ffThenDetailed(const workloads::Workload &w, cmd::SchedulerKind sched,
               bool inOrder, uint64_t skip, uint64_t &ffInsts)
{
    SystemConfig cfg = SystemConfig::riscyooB();
    cfg.scheduler = sched;
    cfg.inOrder = inOrder;
    cfg.execMode = ExecMode::FastForward;
    System sys(cfg);
    workloads::Image img = w.build(sys, 1);
    sys.elaborate();
    sys.start(img.entry, img.satp, img.stacks);
    EXPECT_FALSE(sys.runFastForward(skip)); // budget, not exit
    ffInsts = sys.funcHart(0).instret();
    CommitDigest d;
    DigestRun r;
    sys.setOnCommit(0, [&](const CommitRecord &c) {
        r.commits++;
        d.add(c);
    });
    sys.handoffToDetailed();
    EXPECT_TRUE(sys.run(400000000));
    r.digest = d.h;
    r.instret = sys.instret(0);
    r.exitCode = sys.host().exitCode(0);
    return r;
}

void
expectDigestEquality(cmd::SchedulerKind sched, bool inOrder)
{
    const workloads::Workload &w = spec("mcf");
    uint64_t ffInsts = 0;
    DigestRun ff = ffThenDetailed(w, sched, inOrder, 5000, ffInsts);
    EXPECT_GE(ffInsts, 5000u);
    DigestRun ref = detailedReference(w, sched, inOrder, ffInsts);
    EXPECT_EQ(ff.instret, ref.instret);
    EXPECT_EQ(ff.exitCode, ref.exitCode);
    EXPECT_EQ(ff.commits + ffInsts, ref.commits);
    EXPECT_EQ(ff.digest, ref.digest)
        << "fast-forward handoff diverged from detailed-from-reset";
}

} // namespace

// Fast-forwarding N instructions and then running detailed must
// commit the identical instruction stream (pc, raw, rd, values,
// traps) a detailed-from-reset run commits after instruction N —
// under every scheduler, since the handoff snapshot/restore path
// (pristine kernel + restoreArch) is scheduler-independent state.
TEST(FastForward, HandoffDigestEqualityEventDriven)
{
    expectDigestEquality(cmd::SchedulerKind::EventDriven, false);
}

TEST(FastForward, HandoffDigestEqualityExhaustive)
{
    expectDigestEquality(cmd::SchedulerKind::Exhaustive, false);
}

TEST(FastForward, HandoffDigestEqualityParallel)
{
    expectDigestEquality(cmd::SchedulerKind::Parallel, false);
}

TEST(FastForward, HandoffDigestEqualityInOrderCore)
{
    expectDigestEquality(cmd::SchedulerKind::EventDriven, true);
}

// The decoded-instruction cache must absorb nearly every fetch on a
// loopy workload (the multi-MIPS claim rests on it).
TEST(FastForward, DecodeCacheHitRate)
{
    SystemConfig cfg = SystemConfig::riscyooB();
    cfg.execMode = ExecMode::FastForward;
    System sys(cfg);
    workloads::Image img = spec("mcf").build(sys, 1);
    sys.elaborate();
    sys.start(img.entry, img.satp, img.stacks);
    EXPECT_TRUE(sys.runFastForward());
    const auto &fs = sys.funcHart(0).fastStats();
    EXPECT_GT(fs.decodeAccesses, 10000u);
    EXPECT_GT(fs.hitRate(), 0.90);
}

// run(N) is the no-Commit-materialization fast path of step(); both
// must land on the identical architectural state.
TEST(FastForward, GoldenRunMatchesStep)
{
    auto mk = [](SystemConfig &cfg) {
        cfg.execMode = ExecMode::FastForward;
    };
    SystemConfig cfgA = SystemConfig::riscyooB();
    mk(cfgA);
    System sysA(cfgA);
    workloads::Image imgA = spec("gcc").build(sysA, 1);
    sysA.elaborate();
    sysA.start(imgA.entry, imgA.satp, imgA.stacks);

    SystemConfig cfgB = SystemConfig::riscyooB();
    mk(cfgB);
    System sysB(cfgB);
    workloads::Image imgB = spec("gcc").build(sysB, 1);
    sysB.elaborate();
    sysB.start(imgB.entry, imgB.satp, imgB.stacks);

    isa::GoldenModel &a = sysA.funcHart(0);
    isa::GoldenModel &b = sysB.funcHart(0);
    constexpr uint64_t kN = 20000;
    ASSERT_EQ(a.run(kN), kN);
    for (uint64_t i = 0; i < kN; i++)
        b.step();
    isa::ArchState sa = a.archState(), sb = b.archState();
    EXPECT_EQ(sa.pc, sb.pc);
    EXPECT_EQ(sa.instret, sb.instret);
    for (unsigned i = 0; i < 32; i++)
        EXPECT_EQ(sa.regs[i], sb.regs[i]) << "x" << i;
}

// The SMARTS CI is 1.96 s / sqrt(n): with a stationary observation
// stream, more intervals must tighten it.
TEST(FastForward, EstimatorCiTightens)
{
    IntervalEstimator est;
    auto obs = [](uint64_t i) { return (i % 2) ? 2.5 : 1.5; };
    for (uint64_t i = 0; i < 8; i++)
        est.add(obs(i));
    double ci8 = est.ci95Half();
    EXPECT_GT(ci8, 0.0);
    for (uint64_t i = 8; i < 80; i++)
        est.add(obs(i));
    EXPECT_EQ(est.n(), 80u);
    EXPECT_LT(est.ci95Half(), ci8 / 2.0);
    EXPECT_NEAR(est.mean(), 2.0, 1e-9);
}

// Sampled mode on a real workload: the estimate must land close to
// the full detailed IPC (the ablation gates at 2% on tuned knobs;
// this guards the machinery with headroom against knob drift) and
// the instruction accounting must conserve.
TEST(FastForward, SampledIpcCloseToDetailed)
{
    const workloads::Workload &w = spec("bzip2");

    SystemConfig dcfg = SystemConfig::riscyooB();
    System dsys(dcfg);
    workloads::Image dimg = w.build(dsys, 1);
    dsys.elaborate();
    uint64_t cycles = workloads::runToCompletion(dsys, dimg, 400000000);
    double detIpc = double(dsys.instret(0)) / double(cycles);

    SystemConfig scfg = SystemConfig::riscyooB();
    scfg.execMode = ExecMode::Sampled;
    scfg.sampling.skip = 3000;
    scfg.sampling.warmup = 1000;
    scfg.sampling.measure = 3000;
    System ssys(scfg);
    workloads::Image simg = w.build(ssys, 1);
    ssys.elaborate();
    ssys.start(simg.entry, simg.satp, simg.stacks);
    EXPECT_TRUE(ssys.runSampled());
    const SampleStats &st = ssys.sampleStats();

    EXPECT_EQ(ssys.host().exitCode(0), dsys.host().exitCode(0));
    EXPECT_EQ(st.totalInsts, dsys.instret(0));
    EXPECT_EQ(st.totalInsts,
              st.ffInsts + st.warmupInsts + st.measuredInsts);
    EXPECT_EQ(st.intervals, st.intervalCpi.size());
    ASSERT_GT(st.intervals, 5u);
    ASSERT_GT(st.meanIpc, 0.0);
    EXPECT_NEAR(st.meanIpc, detIpc, 0.05 * detIpc);
}

// Multi-hart fast-forward: round-robin instruction batches must let
// spin barriers progress, and the functional run must be
// deterministic (same exit codes and instruction counts every time).
TEST(FastForward, MulticoreSmokeAndDeterminism)
{
    auto parsec = workloads::parsecWorkloads();
    auto run = [&](DigestRun &r) {
        SystemConfig cfg = SystemConfig::riscyooB();
        cfg.cores = 2;
        cfg.mem.cores = 2;
        cfg.execMode = ExecMode::FastForward;
        System sys(cfg);
        workloads::Image img = parsec[0].build(sys, 2);
        sys.elaborate();
        sys.start(img.entry, img.satp, img.stacks);
        EXPECT_TRUE(sys.runFastForward());
        r.instret =
            sys.funcHart(0).instret() + sys.funcHart(1).instret();
        r.exitCode =
            (sys.host().exitCode(0) << 8) | sys.host().exitCode(1);
    };
    DigestRun a, b;
    run(a);
    run(b);
    EXPECT_GT(a.instret, 1000u);
    EXPECT_EQ(a.instret, b.instret);
    EXPECT_EQ(a.exitCode, b.exitCode);
}
