/**
 * @file
 * Unit tests for the OOO engine modules: ROB (group ports, status
 * writes, wrongSpec suffix kill), issue queue (both CM orderings,
 * wakeup, age order), speculation manager (tag dependency squash),
 * rename table and free list checkpoints, bypass network, SpecFifo.
 */
#include <gtest/gtest.h>

#include "ooo/engine.hh"
#include "ooo/iq.hh"
#include "ooo/rob.hh"
#include "ooo/spec_fifo.hh"

using namespace riscy;
using namespace cmd;

namespace {

TEST(Rob, EnqMarkCommitRoundTrip)
{
    Kernel k;
    Rob rob(k, "rob", 8);
    k.elaborate();

    RobEntry es[2];
    es[0].pc = 0x100;
    es[1].pc = 0x104;
    ASSERT_TRUE(k.runAtomically([&] { rob.enqGroup(es, 2); }));
    EXPECT_EQ(rob.count(), 2u);
    EXPECT_EQ(rob.front().pc, 0x100u);
    EXPECT_FALSE(rob.front().done);
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { rob.markDone(0); }));
    EXPECT_TRUE(rob.front().done);
    EXPECT_FALSE(rob.second().done);
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { rob.deqGroup(1); }));
    EXPECT_EQ(rob.front().pc, 0x104u);
}

TEST(Rob, WrongSpecKillsSuffixAndRestoresTail)
{
    Kernel k;
    Rob rob(k, "rob", 8);
    k.elaborate();
    RobEntry es[2];
    es[0].pc = 0x0;
    es[0].specMask = 0;
    es[1].pc = 0x4;
    es[1].specMask = 0; // the branch itself
    ASSERT_TRUE(k.runAtomically([&] { rob.enqGroup(es, 2); }));
    k.cycle();
    RobEntry young[2];
    young[0].pc = 0x8;
    young[0].specMask = 0x1;
    young[1].pc = 0xc;
    young[1].specMask = 0x1;
    ASSERT_TRUE(k.runAtomically([&] { rob.enqGroup(young, 2); }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { rob.wrongSpec(0x1); }));
    EXPECT_EQ(rob.count(), 2u);
    // The next allocation reuses the rolled-back slots.
    EXPECT_EQ(rob.enqIndex(0), 2u);
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { rob.correctSpec(0x1); }));
}

TEST(Rob, FullBackpressure)
{
    Kernel k;
    Rob rob(k, "rob", 4);
    k.elaborate();
    RobEntry es[2];
    ASSERT_TRUE(k.runAtomically([&] { rob.enqGroup(es, 2); }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { rob.enqGroup(es, 2); }));
    EXPECT_FALSE(rob.canEnq(1));
    k.cycle();
    EXPECT_FALSE(k.runAtomically([&] { rob.enqGroup(es, 1); }));
}

TEST(IssueQueue, WakeupThenIssueInAgeOrder)
{
    Kernel k;
    IssueQueue iq(k, "iq", 4);
    k.elaborate();

    Uop a, b;
    a.pc = 0x10;
    a.ps1 = 5;
    a.inst = isa::decode(0x00b50533); // add a0, a0, a1 (reads rs1/rs2)
    a.ps2 = 6;
    b = a;
    b.pc = 0x14;
    ASSERT_TRUE(k.runAtomically([&] { iq.enter(a, false, true); }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { iq.enter(b, false, true); }));
    EXPECT_FALSE(iq.canIssue());
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { iq.wakeup(5); }));
    EXPECT_TRUE(iq.canIssue());
    k.cycle();
    Uop out;
    ASSERT_TRUE(k.runAtomically([&] { out = iq.issue(); }));
    EXPECT_EQ(out.pc, 0x10u); // oldest first
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { out = iq.issue(); }));
    EXPECT_EQ(out.pc, 0x14u);
}

TEST(IssueQueue, CmOrderingsMatchPaper)
{
    for (auto order : {IssueQueue::Ordering::WakeupIssueEnter,
                       IssueQueue::Ordering::IssueWakeupEnter}) {
        Kernel k;
        IssueQueue iq(k, "iq", 4, order);
        Reg<int> issued(k, "issued", 0);
        Uop seedUop;
        seedUop.ps1 = 7;
        seedUop.inst = isa::decode(0x00b50533);
        seedUop.ps2 = 0;

        Rule &wake = k.rule("wake", [&] { iq.wakeup(7); });
        wake.uses({&iq.wakeupM});
        Rule &iss = k.rule("issue", [&] {
            iq.issue();
            issued.write(issued.read() + 1);
        });
        iss.uses({&iq.issueM});
        k.elaborate();

        ASSERT_TRUE(k.runAtomically(
            [&] { iq.enter(seedUop, false, true); }));
        k.cycle();
        if (order == IssueQueue::Ordering::WakeupIssueEnter) {
            // Woken and issued in the same cycle.
            EXPECT_EQ(issued.read(), 1);
        } else {
            // issue < wakeup: the wakeup lands after issue tried.
            EXPECT_EQ(issued.read(), 0);
            k.cycle();
            EXPECT_EQ(issued.read(), 1);
        }
    }
}

TEST(IssueQueue, WrongSpecKillsByMask)
{
    Kernel k;
    IssueQueue iq(k, "iq", 4);
    k.elaborate();
    Uop u;
    u.inst = isa::decode(0x00b50533);
    u.specMask = 0x2;
    ASSERT_TRUE(k.runAtomically([&] { iq.enter(u, true, true); }));
    EXPECT_TRUE(iq.canIssue());
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { iq.wrongSpec(0x2); }));
    EXPECT_FALSE(iq.canIssue());
    EXPECT_EQ(iq.size(), 0u);
}

TEST(SpecManager, SquashFreesYoungerTags)
{
    Kernel k;
    SpecManager sm(k, "sm", 4);
    k.elaborate();
    uint8_t t0 = 0, t1 = 0, t2 = 0;
    ASSERT_TRUE(k.runAtomically([&] { t0 = sm.alloc(); }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { t1 = sm.alloc(); }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { t2 = sm.alloc(); }));
    k.cycle();
    EXPECT_EQ(sm.activeMask(), 0x7u);
    // Squash the middle tag: it and the younger t2 die; t0 survives.
    SpecMask dead = 0;
    ASSERT_TRUE(k.runAtomically([&] { dead = sm.squash(t1); }));
    EXPECT_EQ(dead, (1u << t1) | (1u << t2));
    EXPECT_EQ(sm.activeMask(), 1u << t0);
    (void)t0;
}

TEST(SpecManager, CommitReleasesDependency)
{
    Kernel k;
    SpecManager sm(k, "sm", 4);
    k.elaborate();
    uint8_t t0 = 0, t1 = 0;
    ASSERT_TRUE(k.runAtomically([&] { t0 = sm.alloc(); }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { t1 = sm.alloc(); }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { sm.commit(t0); }));
    k.cycle();
    // t1 no longer depends on t0; squashing a recycled t0 later must
    // not kill t1.
    uint8_t t0b = 0;
    ASSERT_TRUE(k.runAtomically([&] { t0b = sm.alloc(); }));
    EXPECT_EQ(t0b, t0); // recycled
    k.cycle();
    SpecMask dead = 0;
    ASSERT_TRUE(k.runAtomically([&] { dead = sm.squash(t0b); }));
    EXPECT_EQ(dead, 1u << t0b);
    EXPECT_EQ(sm.activeMask(), 1u << t1);
}

TEST(RenameAndFreeList, CheckpointRollback)
{
    Kernel k;
    RenameTable rt(k, "rt", 4);
    FreeList fl(k, "fl", 64, 4);
    k.elaborate();
    ASSERT_TRUE(k.runAtomically([&] {
        rt.initIdentity();
        fl.initRange(32, 32);
    }));
    k.cycle();
    // Rename x5 -> 32, checkpoint for tag 1, rename x6 -> 33. The
    // checkpoint is taken from the rename rule's working map (staged
    // writes are not visible within the rule), exactly as the core's
    // rename rule does.
    PhysReg p[2];
    ASSERT_TRUE(k.runAtomically([&] {
        fl.allocGroup(p, 1);
        rt.setSpec(5, p[0]);
        PhysReg map[32];
        for (uint32_t i = 0; i < 32; i++)
            map[i] = static_cast<PhysReg>(i);
        map[5] = p[0];
        rt.snapshotFrom(1, map);
        fl.snapshotAt(1, 1);
    }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] {
        fl.allocGroup(p + 1, 1);
        rt.setSpec(6, p[1]);
    }));
    EXPECT_EQ(rt.spec(5), 32);
    EXPECT_EQ(rt.spec(6), 33);
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] {
        rt.rollback(1);
        fl.rollback(1);
    }));
    EXPECT_EQ(rt.spec(5), 32); // snapshot was after x5's rename
    EXPECT_EQ(rt.spec(6), 6);  // x6's rename undone
    // 33 is free again.
    PhysReg q = 0;
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { q = fl.alloc(); }));
    EXPECT_EQ(q, 33);
}

TEST(FreeList, FreesAppendAndSurviveRollback)
{
    Kernel k;
    FreeList fl(k, "fl", 16, 2);
    k.elaborate();
    ASSERT_TRUE(k.runAtomically([&] { fl.initRange(8, 8); }));
    k.cycle();
    PhysReg a[2];
    ASSERT_TRUE(k.runAtomically([&] {
        fl.snapshot(0);
        fl.allocGroup(a, 2);
    }));
    k.cycle();
    // A commit frees two stale registers while the branch is open.
    PhysReg stale[2] = {1, 2};
    ASSERT_TRUE(k.runAtomically([&] { fl.freeGroup(stale, 2); }));
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { fl.rollback(0); }));
    k.cycle();
    // After rollback: the 2 allocations returned AND the 2 frees kept.
    EXPECT_TRUE(fl.canAlloc(8));
    PhysReg r = 0;
    ASSERT_TRUE(k.runAtomically([&] { r = fl.alloc(); }));
    EXPECT_EQ(r, a[0]); // original order restored
}

TEST(Bypass, SetVisibleToGetSameCycleOnly)
{
    Kernel k;
    Bypass by(k, "by", 2);
    Reg<uint64_t> got(k, "got", 0);
    Reg<int> hits(k, "hits", 0);
    k.rule("producer", [&] { by.set(0, 7, 0xabc); })
        .uses({&by.setM});
    k.rule("consumer", [&] {
        uint64_t v = 0;
        if (by.get(7, v)) {
            got.write(v);
            hits.write(hits.read() + 1);
        }
    }).uses({&by.getM});
    k.elaborate();
    k.cycle();
    EXPECT_EQ(got.read(), 0xabcu);
    EXPECT_EQ(hits.read(), 1);
}

TEST(SpecFifo, KillAndCompactPreserveOrder)
{
    Kernel k;
    SpecFifo<Uop> f(k, "f", 4);
    k.elaborate();
    auto push = [&](uint64_t pc, SpecMask m) {
        Uop u;
        u.pc = pc;
        u.specMask = m;
        ASSERT_TRUE(k.runAtomically([&] { f.enq(u); }));
        k.cycle();
    };
    push(0x10, 0);
    push(0x14, 1);
    push(0x18, 1);
    push(0x1c, 0);
    ASSERT_TRUE(k.runAtomically([&] { f.wrongSpec(1); }));
    k.cycle();
    Uop out;
    ASSERT_TRUE(k.runAtomically([&] { out = f.deq(); }));
    EXPECT_EQ(out.pc, 0x10u);
    k.cycle();
    ASSERT_TRUE(k.runAtomically([&] { out = f.deq(); }));
    EXPECT_EQ(out.pc, 0x1cu); // killed middle entries skipped
    EXPECT_FALSE(f.canDeq());
    // Compaction eventually reclaims the dead slots for enq.
    k.run(4);
    EXPECT_TRUE(f.canEnq());
}

TEST(Scoreboard, SetReadyOrdersBeforeRenameReads)
{
    Kernel k;
    Scoreboard sb(k, "sb", 16);
    Reg<int> sawReady(k, "saw", -1);
    Rule &writer = k.rule("writer", [&] { sb.setReady(3); });
    writer.uses({&sb.setReadyM});
    Rule &reader = k.rule("reader", [&] {
        sawReady.write(sb.rdy(3) ? 1 : 0);
        sb.setNotReady(3);
    });
    reader.uses({&sb.rdyM, &sb.setNotReadyM});
    k.elaborate();
    // setReady < rdy: the writer is scheduled first even though the
    // registration order would put it first anyway; verify relation.
    EXPECT_EQ(k.ruleRelation(writer, reader), Conflict::LT);
    ASSERT_TRUE(k.runAtomically([&] { sb.setNotReady(3); }));
    k.cycle();
    EXPECT_EQ(sawReady.read(), 1); // saw the same-cycle wakeup
    // And the final state is not-ready (reader ran after writer).
    bool rdy = true;
    ASSERT_TRUE(k.runAtomically([&] { rdy = sb.rdy(3); }));
    EXPECT_FALSE(rdy);
}

} // namespace
