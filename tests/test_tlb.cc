/**
 * @file
 * TLB subsystem tests: translation through the full L1 TLB -> L2 TLB
 * -> walker -> L2-cache path, fault reporting, blocking (RiscyOO-B)
 * versus hit-under-miss (RiscyOO-T+) behavior, and the split
 * translation (walk) cache.
 */
#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "mem/page_table.hh"
#include "tlb/tlb.hh"

using namespace riscy;
using namespace riscy::isa;
using namespace cmd;

namespace {

struct TlbSys {
    Kernel k;
    PhysMem mem;
    FrameAllocator frames{kDramBase + 0x100000};
    AddressSpace as{mem, frames};
    MemHierarchy hier;
    TlbChannel chanD, chanI;
    L1Tlb dtlb;
    L2Tlb l2tlb;

    TlbSys(L1Tlb::Config l1cfg, L2Tlb::Config l2cfg)
        : hier(k, "mem", mem, MemHierarchyConfig{}),
          chanD(k, "chanD"), chanI(k, "chanI"),
          dtlb(k, "dtlb", l1cfg, chanD),
          l2tlb(k, "l2tlb", l2cfg, {&chanD, &chanI}, hier.walkPort(0))
    {
        k.elaborate();
        uint64_t satp = as.satp();
        ASSERT_TRUE_OK(satp);
    }

    void
    ASSERT_TRUE_OK(uint64_t satp)
    {
        ASSERT_TRUE(k.runAtomically([&] {
            dtlb.setSatp(satp);
            l2tlb.setSatp(satp);
        }));
    }

    /** Blocking translate through the D TLB. */
    L1Tlb::Resp
    translate(Addr va, AccessType t = AccessType::Load, uint8_t id = 1,
              uint64_t maxCycles = 100000)
    {
        EXPECT_TRUE(k.runAtomically([&] { dtlb.req(id, va, t); }));
        EXPECT_TRUE(
            k.runUntil([&] { return dtlb.respReady(); }, maxCycles));
        L1Tlb::Resp r{};
        EXPECT_TRUE(k.runAtomically([&] { r = dtlb.resp(); }));
        k.cycle();
        return r;
    }
};

L1Tlb::Config
blockingL1()
{
    return {32, 1, false};
}

L1Tlb::Config
nonBlockingL1()
{
    return {32, 4, true};
}

L2Tlb::Config
blockingL2()
{
    return {2048, 4, 1, false, 24};
}

L2Tlb::Config
improvedL2()
{
    return {2048, 4, 2, true, 24};
}

constexpr Addr kVa = 0x10000000;
constexpr Addr kPa = kDramBase + 0x400000;

TEST(Tlb, WalkFillsAndTranslates)
{
    TlbSys s(blockingL1(), blockingL2());
    s.as.mapRange(kVa, kPa, 0x10000, PTE_R | PTE_W);

    uint64_t missBefore = s.dtlb.stats().get("misses");
    auto r = s.translate(kVa + 0x234);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.pa, kPa + 0x234);
    EXPECT_EQ(s.dtlb.stats().get("misses"), missBefore + 1);
    EXPECT_EQ(s.l2tlb.stats().get("walks"), 1u);

    // Same page again: L1 hit, no new walk.
    r = s.translate(kVa + 0x18);
    EXPECT_EQ(r.pa, kPa + 0x18);
    EXPECT_EQ(s.l2tlb.stats().get("walks"), 1u);
    EXPECT_GE(s.dtlb.stats().get("hits"), 1u);

    // Different page: walk again (L2 TLB miss).
    r = s.translate(kVa + 0x3000);
    EXPECT_EQ(r.pa, kPa + 0x3000);
    EXPECT_EQ(s.l2tlb.stats().get("walks"), 2u);
}

TEST(Tlb, L2TlbHitAvoidsWalk)
{
    TlbSys s(blockingL1(), blockingL2());
    s.as.mapRange(kVa, kPa, 64 * 4096, PTE_R | PTE_W);
    // Prime 40 pages: L1 TLB (32 entries) will have evicted the
    // earliest ones, but the L2 TLB holds them all.
    for (int p = 0; p < 40; p++)
        s.translate(kVa + p * 4096);
    uint64_t walks = s.l2tlb.stats().get("walks");
    EXPECT_EQ(walks, 40u);
    auto r = s.translate(kVa); // L1 victim by now
    EXPECT_EQ(r.pa, kPa);
    EXPECT_EQ(s.l2tlb.stats().get("walks"), walks); // no new walk
    EXPECT_GE(s.l2tlb.stats().get("hits"), 1u);
}

TEST(Tlb, UnmappedPageFaults)
{
    TlbSys s(blockingL1(), blockingL2());
    s.as.mapRange(kVa, kPa, 0x1000, PTE_R);
    auto r = s.translate(0x7fff0000);
    EXPECT_TRUE(r.fault);
    // Faults must not be cached: a later mapping is picked up only
    // after a flush, but the fault itself should re-walk.
    r = s.translate(0x7fff0000);
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(s.l2tlb.stats().get("walks"), 2u);
}

TEST(Tlb, PermissionFaultOnStoreToReadOnly)
{
    TlbSys s(blockingL1(), blockingL2());
    s.as.mapRange(kVa, kPa, 0x1000, PTE_R);
    auto r = s.translate(kVa, AccessType::Load);
    EXPECT_FALSE(r.fault);
    r = s.translate(kVa, AccessType::Store);
    EXPECT_TRUE(r.fault);
    r = s.translate(kVa, AccessType::Fetch);
    EXPECT_TRUE(r.fault);
}

TEST(Tlb, BareModeIdentityAndNoWalks)
{
    TlbSys s(blockingL1(), blockingL2());
    s.k.cycle(); // setSatp may only be called once per cycle
    ASSERT_TRUE(s.k.runAtomically([&] {
        s.dtlb.setSatp(0);
        s.l2tlb.setSatp(0);
    }));
    auto r = s.translate(kDramBase + 0x123);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.pa, kDramBase + 0x123);
    EXPECT_EQ(s.l2tlb.stats().get("walks"), 0u);
}

TEST(Tlb, BlockingTlbStallsHitsBehindMiss)
{
    TlbSys s(blockingL1(), blockingL2());
    s.as.mapRange(kVa, kPa, 0x4000, PTE_R | PTE_W);
    s.translate(kVa); // prime page 0

    // Miss on page 1 followed by a would-be hit on page 0.
    ASSERT_TRUE(s.k.runAtomically(
        [&] { s.dtlb.req(1, kVa + 0x1000, AccessType::Load); }));
    s.k.cycle();
    ASSERT_TRUE(s.k.runAtomically(
        [&] { s.dtlb.req(2, kVa, AccessType::Load); }));
    ASSERT_TRUE(s.k.runUntil([&] { return s.dtlb.respReady(); }, 100000));
    L1Tlb::Resp first{};
    ASSERT_TRUE(s.k.runAtomically([&] { first = s.dtlb.resp(); }));
    // Blocking TLB: the miss (id 1) must complete before the hit.
    EXPECT_EQ(first.id, 1);
}

TEST(Tlb, HitUnderMissReordersAroundMiss)
{
    TlbSys s(nonBlockingL1(), improvedL2());
    s.as.mapRange(kVa, kPa, 0x4000, PTE_R | PTE_W);
    s.translate(kVa); // prime page 0

    ASSERT_TRUE(s.k.runAtomically(
        [&] { s.dtlb.req(1, kVa + 0x1000, AccessType::Load); }));
    s.k.cycle();
    ASSERT_TRUE(s.k.runAtomically(
        [&] { s.dtlb.req(2, kVa, AccessType::Load); }));
    ASSERT_TRUE(s.k.runUntil([&] { return s.dtlb.respReady(); }, 100000));
    L1Tlb::Resp first{};
    ASSERT_TRUE(s.k.runAtomically([&] { first = s.dtlb.resp(); }));
    // Hit-under-miss: the hit (id 2) overtakes the walking miss.
    EXPECT_EQ(first.id, 2);
    s.k.cycle(); // resp may only be called once per cycle
    ASSERT_TRUE(s.k.runUntil([&] { return s.dtlb.respReady(); }, 100000));
    L1Tlb::Resp second{};
    ASSERT_TRUE(s.k.runAtomically([&] { second = s.dtlb.resp(); }));
    EXPECT_EQ(second.id, 1);
    EXPECT_EQ(second.pa, kPa + 0x1000);
}

TEST(Tlb, WalkCacheShortensWalks)
{
    // Touch many pages under one level-0 table: with the walk cache,
    // later walks read only the leaf level (1 memory access instead
    // of 3), which shows up as fewer uncached L2 requests per walk.
    TlbSys sNo(blockingL1(), blockingL2());
    TlbSys sWc(blockingL1(), improvedL2());
    for (TlbSys *s : {&sNo, &sWc})
        s->as.mapRange(kVa, kPa, 128 * 4096, PTE_R | PTE_W);

    auto runSweep = [&](TlbSys &s) {
        for (int p = 0; p < 64; p++)
            s.translate(kVa + p * 4096);
        return s.hier.l2().stats().get("uncachedReqs");
    };
    uint64_t reqsNo = runSweep(sNo);
    uint64_t reqsWc = runSweep(sWc);
    EXPECT_EQ(sWc.l2tlb.stats().get("walks"), 64u);
    EXPECT_GE(sWc.l2tlb.stats().get("walkCacheHits"), 60u);
    // Without the cache every walk costs 3 accesses; with it, ~1.
    EXPECT_GT(reqsNo, reqsWc * 2);
}

TEST(Tlb, WalkCacheSpeedsUpTranslation)
{
    TlbSys sNo(blockingL1(), blockingL2());
    TlbSys sWc(blockingL1(), improvedL2());
    for (TlbSys *s : {&sNo, &sWc})
        s->as.mapRange(kVa, kPa, 128 * 4096, PTE_R | PTE_W);
    auto cycles = [&](TlbSys &s) {
        uint64_t c0 = s.k.cycleCount();
        for (int p = 0; p < 64; p++)
            s.translate(kVa + p * 4096);
        return s.k.cycleCount() - c0;
    };
    uint64_t no = cycles(sNo);
    uint64_t wc = cycles(sWc);
    EXPECT_LT(wc, no); // strictly faster with the walk cache
}

TEST(Tlb, SuperpageTranslation)
{
    TlbSys s(blockingL1(), blockingL2());
    // Hand-install a 2 MiB superpage leaf at level 1.
    Addr slotVa = 0x40000000;
    // Build level-2 -> level-1 chain manually through AddressSpace's
    // root: easiest is a fresh table hierarchy.
    Addr l1table = s.frames.alloc(4096);
    s.mem.write(s.as.root() + vpn(slotVa, 2) * 8,
                makePte(l1table, PTE_V), 8);
    s.mem.write(l1table + vpn(slotVa, 1) * 8,
                makePte(kPa & ~((1ull << 21) - 1),
                        PTE_V | PTE_R | PTE_W | PTE_A | PTE_D),
                8);
    auto r = s.translate(slotVa + 0x123456);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.pa, (kPa & ~((1ull << 21) - 1)) + 0x123456);
    // A second VA inside the same 2M region: L1 TLB superpage hit.
    uint64_t walks = s.l2tlb.stats().get("walks");
    r = s.translate(slotVa + 0x1ff000);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(s.l2tlb.stats().get("walks"), walks);
}

} // namespace
