/**
 * @file
 * Memory-system tests: L1 hit/miss behavior, MSI coherence across
 * cores (invalidations, M->S downgrades with data, write serialization),
 * LR/SC and AMO semantics at the cache, eviction hooks, the uncached
 * walker port, and a randomized multi-core coherence storm.
 */
#include <gtest/gtest.h>

#include <random>

#include "cache/hierarchy.hh"

using namespace riscy;
using namespace cmd;

namespace {

struct Sys {
    Kernel k;
    PhysMem mem;
    MemHierarchy hier;

    explicit Sys(uint32_t cores, MemHierarchyConfig cfg = {})
        : hier(k,
               "sys",
               mem,
               [&] {
                   cfg.cores = cores;
                   return cfg;
               }())
    {
        k.elaborate();
    }

    /** Blocking load of a line through core i's D$. */
    Line
    load(uint32_t i, Addr addr, uint64_t maxCycles = 100000)
    {
        L1Cache &c = hier.dcache(i);
        EXPECT_TRUE(k.runAtomically([&] { c.reqLd(1, addr); }));
        EXPECT_TRUE(
            k.runUntil([&] { return c.respLdReady(); }, maxCycles));
        Line out;
        EXPECT_TRUE(k.runAtomically([&] { out = c.respLd().line; }));
        k.cycle();
        return out;
    }

    /** Blocking store through core i's D$. */
    void
    store(uint32_t i, Addr addr, uint64_t value, uint8_t bytes = 8,
          uint64_t maxCycles = 100000)
    {
        L1Cache &c = hier.dcache(i);
        EXPECT_TRUE(k.runAtomically([&] { c.reqSt(2, addr); }));
        EXPECT_TRUE(
            k.runUntil([&] { return c.respStReady(); }, maxCycles));
        EXPECT_TRUE(k.runAtomically([&] {
            c.respSt();
            c.writeData(addr, value, bytes);
        }));
        k.cycle();
    }

    /** Blocking atomic through core i's D$. */
    uint64_t
    atomic(uint32_t i, Addr addr, isa::Op op, uint64_t operand,
           uint8_t bytes = 8, uint64_t maxCycles = 100000)
    {
        L1Cache &c = hier.dcache(i);
        EXPECT_TRUE(k.runAtomically(
            [&] { c.reqAtomic(3, addr, op, operand, bytes); }));
        EXPECT_TRUE(
            k.runUntil([&] { return c.respAtomicReady(); }, maxCycles));
        uint64_t v = 0;
        EXPECT_TRUE(k.runAtomically([&] { v = c.respAtomic().value; }));
        k.cycle();
        return v;
    }
};

constexpr Addr A = kDramBase + 0x4000;

TEST(Cache, MissFillThenHit)
{
    Sys s(1);
    s.mem.write(A, 0x1122334455667788ull, 8);
    uint64_t missBefore = s.hier.dcache(0).stats().get("ldMisses");
    Line l = s.load(0, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 0x1122334455667788ull);
    EXPECT_EQ(s.hier.dcache(0).stats().get("ldMisses"), missBefore + 1);
    // Second access: hit, no new miss.
    l = s.load(0, A + 8);
    EXPECT_EQ(s.hier.dcache(0).stats().get("ldMisses"), missBefore + 1);
    EXPECT_EQ(s.hier.dcache(0).stats().get("ldHits"), 1u);
}

TEST(Cache, LoadLatencyIsRealistic)
{
    Sys s(1);
    uint64_t c0 = s.k.cycleCount();
    s.load(0, A);
    uint64_t missLat = s.k.cycleCount() - c0;
    // L1 miss -> L2 miss -> DRAM: should be > DRAM latency (120).
    EXPECT_GT(missLat, 120u);
    EXPECT_LT(missLat, 200u);
    c0 = s.k.cycleCount();
    s.load(0, A);
    uint64_t hitLat = s.k.cycleCount() - c0;
    EXPECT_LE(hitLat, 4u);
    // L2 hit from the other (I-side...) use a second line to measure
    // L2-hit-after-L1-evict later; here just sanity-check ordering.
    EXPECT_LT(hitLat, missLat);
}

TEST(Cache, StoreVisibleAfterL2WritebackPath)
{
    Sys s(1);
    s.store(0, A, 0xabcdefull);
    Line l = s.load(0, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 0xabcdefull);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::M);
}

TEST(Cache, EvictionWritesBackDirtyData)
{
    MemHierarchyConfig cfg;
    cfg.l1d = {4, 2, 8, true}; // tiny: 4KB, 2-way, 32 sets
    Sys s(1, cfg);
    s.store(0, A, 77);
    // Touch enough lines in the same set to force the dirty victim out.
    uint32_t setSpan = 4 * 1024 / 64 / 2 * 64;
    s.load(0, A + setSpan);
    s.load(0, A + 2 * setSpan);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::I);
    EXPECT_GE(s.hier.dcache(0).stats().get("evictions"), 1u);
    // The dirty data now lives in L2; loading it again must return 77.
    Line l = s.load(0, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 77u);
}

TEST(Cache, CoherentReadAfterRemoteWrite)
{
    Sys s(2);
    s.store(0, A, 42);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::M);
    Line l = s.load(1, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 42u);
    // Writer was downgraded to S (paper MSI), reader has S.
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::S);
    EXPECT_EQ(s.hier.dcache(1).probeState(A), Msi::S);
}

TEST(Cache, WriteInvalidatesSharers)
{
    Sys s(2);
    s.load(0, A);
    s.load(1, A);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::S);
    s.store(1, A, 99);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::I);
    EXPECT_EQ(s.hier.dcache(1).probeState(A), Msi::M);
    EXPECT_GE(s.hier.dcache(0).stats().get("invalidations"), 1u);
    Line l = s.load(0, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 99u);
}

TEST(Cache, SingleWriterInvariantUnderPingPong)
{
    Sys s(2);
    for (int i = 0; i < 6; i++) {
        s.store(i % 2, A, i);
        bool m0 = s.hier.dcache(0).probeState(A) == Msi::M;
        bool m1 = s.hier.dcache(1).probeState(A) == Msi::M;
        EXPECT_FALSE(m0 && m1) << "two modified copies!";
        if (m0) {
            EXPECT_EQ(s.hier.dcache(1).probeState(A), Msi::I);
        }
        if (m1) {
            EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::I);
        }
    }
    Line l = s.load(0, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 5u);
}

TEST(Cache, EvictHookFiresOnInvalidation)
{
    // Build by hand so the hook is installed before elaboration.
    Kernel k;
    PhysMem mem;
    MemHierarchyConfig cfg;
    cfg.cores = 2;
    MemHierarchy hier(k, "sys", mem, cfg);
    std::vector<Addr> evicted;
    hier.dcache(0).setEvictHook([&](Addr l) { evicted.push_back(l); }, {});
    k.elaborate();

    auto store = [&](uint32_t i, Addr addr, uint64_t v) {
        L1Cache &c = hier.dcache(i);
        ASSERT_TRUE(k.runAtomically([&] { c.reqSt(2, addr); }));
        ASSERT_TRUE(k.runUntil([&] { return c.respStReady(); }, 100000));
        ASSERT_TRUE(k.runAtomically([&] {
            c.respSt();
            c.writeData(addr, v, 8);
        }));
        k.cycle();
    };
    store(0, A, 1);
    EXPECT_TRUE(evicted.empty());
    store(1, A, 2); // invalidates core0's copy -> hook fires
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], lineAddr(A));
}

TEST(Cache, AmoFetchAddSequential)
{
    Sys s(1);
    s.mem.write(A, 100, 8);
    uint64_t old = s.atomic(0, A, isa::Op::AMOADD_D, 5);
    EXPECT_EQ(old, 100u);
    old = s.atomic(0, A, isa::Op::AMOADD_D, 5);
    EXPECT_EQ(old, 105u);
    Line l = s.load(0, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 110u);
}

TEST(Cache, LrScSucceedsLocally)
{
    Sys s(1);
    s.mem.write(A, 7, 8);
    uint64_t v = s.atomic(0, A, isa::Op::LR_D, 0);
    EXPECT_EQ(v, 7u);
    uint64_t sc = s.atomic(0, A, isa::Op::SC_D, 123);
    EXPECT_EQ(sc, 0u); // success
    Line l = s.load(0, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 123u);
}

TEST(Cache, ScFailsAfterRemoteWrite)
{
    Sys s(2);
    s.mem.write(A, 7, 8);
    s.atomic(0, A, isa::Op::LR_D, 0);
    s.store(1, A, 55); // invalidates core0's line + reservation
    uint64_t sc = s.atomic(0, A, isa::Op::SC_D, 123);
    EXPECT_EQ(sc, 1u); // failure
    Line l = s.load(0, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 55u);
}

TEST(Cache, AmoWFormSignExtends)
{
    Sys s(1);
    s.mem.write(A, 0x7fffffffull, 4);
    uint64_t old = s.atomic(0, A, isa::Op::AMOADD_W, 1, 4);
    EXPECT_EQ(old, 0x7fffffffull);
    Line l = s.load(0, A);
    EXPECT_EQ(l.read(lineOffset(A), 4), 0x80000000ull);
}

TEST(Cache, UncachedWalkerPortReadsThroughCoherence)
{
    Sys s(1);
    // Dirty the line in the D$, then read it through the walk port:
    // the L2 must recall the dirty data (downgrade M->S).
    s.store(0, A, 0x5150);
    UncachedPort &p = s.hier.walkPort(0);
    EXPECT_TRUE(s.k.runAtomically([&] { p.req.enq(A); }));
    EXPECT_TRUE(s.k.runUntil([&] { return p.resp.canDeq(); }, 100000));
    Line l;
    EXPECT_TRUE(s.k.runAtomically([&] { l = p.resp.deq().data; }));
    EXPECT_EQ(l.read(lineOffset(A), 8), 0x5150u);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::S);
}

TEST(Cache, ConcurrentAmoStormIsAtomic)
{
    // All cores hammer fetch-and-add on two shared counters; every
    // returned "old" value must be unique per counter and the final
    // memory values must equal the total increment count.
    constexpr uint32_t kCores = 4;
    constexpr int kOpsPerCore = 20;
    Sys s(kCores);
    Addr ctr0 = A, ctr1 = A + 4096;
    s.mem.write(ctr0, 0, 8);
    s.mem.write(ctr1, 0, 8);

    struct Agent {
        int issued = 0;
        int done = 0;
        bool inflight = false;
        std::vector<uint64_t> seen0, seen1;
    };
    std::array<Agent, kCores> agents;
    std::mt19937 rng(99);

    uint64_t guard = 0;
    auto allDone = [&] {
        for (auto &a : agents) {
            if (a.done < 2 * kOpsPerCore)
                return false;
        }
        return true;
    };
    while (!allDone() && guard++ < 2000000) {
        for (uint32_t c = 0; c < kCores; c++) {
            Agent &a = agents[c];
            L1Cache &d = s.hier.dcache(c);
            if (!a.inflight && a.issued < 2 * kOpsPerCore) {
                Addr target = (rng() & 1) ? ctr0 : ctr1;
                if (s.k.runAtomically([&] {
                        d.reqAtomic(7, target, isa::Op::AMOADD_D, 1, 8);
                    })) {
                    a.inflight = true;
                    a.issued++;
                }
            }
            if (a.inflight && d.respAtomicReady()) {
                uint64_t v = 0;
                Addr dummy = 0;
                (void)dummy;
                ASSERT_TRUE(
                    s.k.runAtomically([&] { v = d.respAtomic().value; }));
                // We don't know which counter this came from; stash by
                // magnitude later (values are unique per counter).
                a.seen0.push_back(v);
                a.done++;
                a.inflight = false;
            }
        }
        s.k.cycle();
    }
    ASSERT_TRUE(allDone()) << "coherence storm deadlocked";

    uint64_t v0, v1;
    v0 = s.load(0, ctr0).read(lineOffset(ctr0), 8);
    v1 = s.load(0, ctr1).read(lineOffset(ctr1), 8);
    EXPECT_EQ(v0 + v1, 2ull * kOpsPerCore * kCores);
}

TEST(Cache, RandomLoadStoreAgainstFlatModel)
{
    // Single-core random ld/st sequence versus a flat memory model,
    // with small caches so evictions and refills churn constantly.
    MemHierarchyConfig cfg;
    cfg.l1d = {4, 2, 8, true};
    cfg.l2 = {64, 4, 16};
    Sys s(1, cfg);
    std::mt19937_64 rng(4242);
    std::map<Addr, uint64_t> model;
    for (int i = 0; i < 300; i++) {
        Addr addr = kDramBase + (rng() % 64) * 264; // straddle sets
        addr &= ~7ull;
        if (rng() & 1) {
            uint64_t v = rng();
            s.store(0, addr, v);
            model[addr] = v;
        } else {
            Line l = s.load(0, addr);
            uint64_t expect = model.count(addr) ? model[addr] : 0;
            ASSERT_EQ(l.read(lineOffset(addr), 8), expect)
                << "iteration " << i;
        }
    }
}

} // namespace
