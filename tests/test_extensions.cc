/**
 * @file
 * Tests for the paper's two suggested extensions, implemented here:
 * the MESI protocol ("it should not be difficult to extend the MSI
 * protocol to a MESI protocol") and SQ store prefetching ("SQ can
 * issue as many store-prefetch requests as it wants. Currently we
 * have not implemented this feature.").
 */
#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cosim.hh"

using namespace riscy;
using namespace riscy::asmkit;
using namespace riscy::test;
using namespace cmd;

namespace {

constexpr Addr A = kDramBase + 0x4000;

struct Sys2 {
    Kernel k;
    PhysMem mem;
    MemHierarchy hier;

    explicit Sys2(bool mesi)
        : hier(k, "sys", mem, [&] {
              MemHierarchyConfig c;
              c.cores = 2;
              c.l2.mesi = mesi;
              return c;
          }())
    {
        k.elaborate();
    }

    Line
    load(uint32_t i, Addr addr)
    {
        L1Cache &c = hier.dcache(i);
        EXPECT_TRUE(k.runAtomically([&] { c.reqLd(1, addr); }));
        EXPECT_TRUE(k.runUntil([&] { return c.respLdReady(); }, 100000));
        Line out;
        EXPECT_TRUE(k.runAtomically([&] { out = c.respLd().line; }));
        k.cycle();
        return out;
    }

    void
    store(uint32_t i, Addr addr, uint64_t value)
    {
        L1Cache &c = hier.dcache(i);
        EXPECT_TRUE(k.runAtomically([&] { c.reqSt(2, addr); }));
        EXPECT_TRUE(k.runUntil([&] { return c.respStReady(); }, 100000));
        EXPECT_TRUE(k.runAtomically([&] {
            c.respSt();
            c.writeData(addr, value, 8);
        }));
        k.cycle();
    }
};

TEST(Mesi, SoleReaderGetsExclusive)
{
    Sys2 s(true);
    s.mem.write(A, 7, 8);
    s.load(0, A);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::E);
    EXPECT_GE(s.hier.l2().stats().get("eGrants"), 1u);
    // A second reader demotes both to S (with a recall of the E copy).
    s.load(1, A);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::S);
    EXPECT_EQ(s.hier.dcache(1).probeState(A), Msi::S);
}

TEST(Mesi, SilentUpgradeAvoidsL2Transaction)
{
    Sys2 s(true);
    s.mem.write(A, 7, 8);
    s.load(0, A);
    ASSERT_EQ(s.hier.dcache(0).probeState(A), Msi::E);
    uint64_t l2Hits = s.hier.l2().stats().get("hits");
    uint64_t l2Miss = s.hier.l2().stats().get("misses");
    // Store to the E line: no L2 traffic at all.
    s.store(0, A, 42);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::M);
    EXPECT_EQ(s.hier.l2().stats().get("hits"), l2Hits);
    EXPECT_EQ(s.hier.l2().stats().get("misses"), l2Miss);
    EXPECT_EQ(s.hier.dcache(0).stats().get("stMisses"), 0u);
}

TEST(Mesi, MsiBaselineStillUpgrades)
{
    Sys2 s(false);
    s.mem.write(A, 7, 8);
    s.load(0, A);
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::S);
    uint64_t upgrades = s.hier.dcache(0).stats().get("stMisses");
    s.store(0, A, 42);
    // MSI: the store needed an upgrade transaction.
    EXPECT_EQ(s.hier.dcache(0).stats().get("stMisses"), upgrades + 1);
}

TEST(Mesi, DirtyExclusiveRecallDeliversData)
{
    Sys2 s(true);
    s.mem.write(A, 7, 8);
    s.load(0, A);
    s.store(0, A, 99); // silent E -> M
    Line l = s.load(1, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 99u); // recall carried the data
}

TEST(Mesi, CleanExclusiveRecallNeedsNoData)
{
    Sys2 s(true);
    s.mem.write(A, 55, 8);
    s.load(0, A); // E, clean
    Line l = s.load(1, A);
    EXPECT_EQ(l.read(lineOffset(A), 8), 55u); // L2's copy was valid
    EXPECT_EQ(s.hier.dcache(0).probeState(A), Msi::S);
}

TEST(Mesi, WholeProgramCosimStillPasses)
{
    // The OOO core on a MESI system must stay architecturally correct.
    Assembler a(kEntry);
    Addr data = kEntry + 0x10000;
    a.li(s0, data);
    a.li(a0, 0);
    a.li(t0, 0);
    a.li(t1, 48);
    auto loop = a.newLabel();
    a.bind(loop);
    a.slli(t2, t0, 3);
    a.add(t3, s0, t2);
    a.sd(t0, 0, t3);
    a.ld(t4, 0, t3);
    a.add(a0, a0, t4);
    a.addi(t0, t0, 1);
    a.bne(t0, t1, loop);
    emitExit(a);
    SystemConfig cfg = SystemConfig::riscyooTPlus();
    cfg.mem.l2.mesi = true;
    EXPECT_EQ(runCosim(a, cfg), 1128u);
}

TEST(StorePrefetch, AcquiresPermissionAheadOfCommit)
{
    // A store-heavy streaming loop: with SQ store prefetch the line's
    // M permission is being fetched while older instructions commit,
    // so the run is faster and the commit-time store path sees hits.
    auto build = [](Assembler &a) {
        Addr data = kEntry + 0x40000;
        a.li(s0, data);
        a.li(t0, 0);
        a.li(t1, 96);
        auto loop = a.newLabel();
        a.bind(loop);
        a.slli(t2, t0, 6); // one line per store
        a.add(t3, s0, t2);
        a.sd(t0, 0, t3);
        a.addi(t0, t0, 1);
        a.bne(t0, t1, loop);
        a.li(a0, 0);
        emitExit(a);
    };
    uint64_t withPf, withoutPf;
    {
        Assembler a(kEntry);
        build(a);
        SystemConfig cfg = SystemConfig::riscyooTPlus();
        cfg.core.storePrefetch = true;
        withPf = 0;
        System sys(cfg);
        a.load(sys.mem(), kEntry);
        sys.elaborate();
        sys.start(kEntry, 0, {kStackTop});
        ASSERT_TRUE(sys.run(2000000));
        withPf = sys.kernel().cycleCount();
    }
    {
        Assembler a(kEntry);
        build(a);
        System sys(SystemConfig::riscyooTPlus());
        a.load(sys.mem(), kEntry);
        sys.elaborate();
        sys.start(kEntry, 0, {kStackTop});
        ASSERT_TRUE(sys.run(2000000));
        withoutPf = sys.kernel().cycleCount();
    }
    EXPECT_LT(withPf, withoutPf);
}

TEST(StorePrefetch, CosimCorrectUnderPrefetch)
{
    Assembler a(kEntry);
    Addr data = kEntry + 0x40000;
    a.li(s0, data);
    a.li(a0, 0);
    a.li(t0, 0);
    a.li(t1, 32);
    auto loop = a.newLabel();
    a.bind(loop);
    a.slli(t2, t0, 6);
    a.add(t3, s0, t2);
    a.sd(t0, 0, t3);
    a.ld(t4, 0, t3);
    a.add(a0, a0, t4);
    a.addi(t0, t0, 1);
    a.bne(t0, t1, loop);
    emitExit(a);
    SystemConfig cfg = SystemConfig::riscyooTPlus();
    cfg.core.storePrefetch = true;
    EXPECT_EQ(runCosim(a, cfg), 496u);
}

} // namespace
