/**
 * @file
 * Golden-model tests: whole assembled programs executed to completion,
 * covering arithmetic, control flow, memory, atomics, CSRs, traps,
 * Sv39 translation, and the MMIO host device.
 */
#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "isa/csr.hh"
#include "isa/golden.hh"
#include "mem/page_table.hh"

using namespace riscy;
using namespace riscy::isa;
using namespace riscy::asmkit;

namespace {

constexpr Addr kEntry = kDramBase;

/** Run a program on the golden model until MMIO exit. */
struct GoldenRun {
    PhysMem mem;
    HostDevice host{1};
    uint64_t steps = 0;

    uint64_t
    run(Assembler &a, uint64_t maxSteps = 1000000, uint64_t satp = 0,
        Addr pa = kEntry, Addr entry = kEntry)
    {
        a.load(mem, pa);
        GoldenModel g(mem, host, 0, entry);
        g.csrs().satp = satp;
        while (!g.halted() && steps < maxSteps) {
            g.step();
            steps++;
        }
        EXPECT_TRUE(g.halted()) << "program did not exit";
        return host.exitCode(0);
    }
};

/** Emit "write a0 to host EXIT and halt". */
void
emitExit(Assembler &a)
{
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Exit));
    a.sd(a0, 0, t6);
    // Architectural halt: spin (the host device has flagged exit).
    auto spin = a.newLabel();
    a.bind(spin);
    a.j(spin);
}

TEST(Golden, ArithmeticLoop)
{
    // sum of 1..100 = 5050
    Assembler a(kEntry);
    a.li(a0, 0);
    a.li(t0, 1);
    a.li(t1, 101);
    auto loop = a.newLabel();
    a.bind(loop);
    a.add(a0, a0, t0);
    a.addi(t0, t0, 1);
    a.bne(t0, t1, loop);
    emitExit(a);

    GoldenRun r;
    EXPECT_EQ(r.run(a), 5050u);
}

TEST(Golden, LargeConstantsViaLi)
{
    Assembler a(kEntry);
    a.li(t0, static_cast<int64_t>(0x123456789abcdef0ull));
    a.li(t1, -1);
    a.li(t2, static_cast<int64_t>(0x8000000000000001ull));
    a.xor_(a0, t0, t1);
    a.xor_(a0, a0, t2);
    // a0 = ~0x123456789abcdef0 ^ 0x8000000000000001
    a.li(t3, static_cast<int64_t>(
                  (~0x123456789abcdef0ull) ^ 0x8000000000000001ull));
    a.sub(a0, a0, t3); // 0 if correct
    emitExit(a);
    GoldenRun r;
    EXPECT_EQ(r.run(a), 0u);
}

TEST(Golden, MemoryAndCalls)
{
    Assembler a(kEntry);
    Addr data = kEntry + 0x10000;
    a.li(s0, data);
    a.li(t0, 0xdeadbeef);
    a.sw(t0, 0, s0);
    a.sh(t0, 8, s0);
    a.sb(t0, 12, s0);
    a.lwu(a0, 0, s0);
    a.lhu(t1, 8, s0);
    a.lb(t2, 12, s0);
    a.add(a0, a0, t1);   // 0xdeadbeef + 0xbeef
    a.add(a0, a0, t2);   // + sext(0xef) = -17
    // call a function that doubles a0
    auto fn = a.newLabel();
    a.call(fn);
    emitExit(a);
    a.bind(fn);
    a.add(a0, a0, a0);
    a.ret();
    GoldenRun r;
    uint64_t expect = ((0xdeadbeefull + 0xbeef - 17) * 2) & 0xffffffffffff;
    EXPECT_EQ(r.run(a) & 0xffffffffffff, expect);
}

TEST(Golden, LrScAndAmo)
{
    Assembler a(kEntry);
    Addr data = kEntry + 0x10000;
    a.li(s0, data);
    a.li(t0, 5);
    a.sd(t0, 0, s0);
    // lr/sc success path
    a.lr_d(t1, s0);      // t1 = 5
    a.addi(t1, t1, 1);
    a.sc_d(t2, t1, s0);  // t2 = 0 (success), mem = 6
    // amoadd
    a.li(t3, 10);
    a.amoadd_d(t4, t3, s0); // t4 = 6, mem = 16
    a.ld(a0, 0, s0);        // 16
    a.add(a0, a0, t2);      // +0
    a.add(a0, a0, t4);      // +6 -> 22
    emitExit(a);
    GoldenRun r;
    EXPECT_EQ(r.run(a), 22u);
}

TEST(Golden, ScFailsWithoutReservation)
{
    Assembler a(kEntry);
    Addr data = kEntry + 0x10000;
    a.li(s0, data);
    a.li(t1, 7);
    a.sc_d(a0, t1, s0); // no reservation: must fail (a0 = 1)
    emitExit(a);
    GoldenRun r;
    EXPECT_EQ(r.run(a), 1u);
    EXPECT_EQ(r.mem.read(data, 8), 0u); // store suppressed
}

TEST(Golden, CsrAccessAndHartId)
{
    Assembler a(kEntry);
    a.csrr(a0, kCsrMhartid);      // 0
    a.li(t0, 0x1234);
    a.csrw(kCsrMscratch, t0);
    a.csrr(t1, kCsrMscratch);
    a.add(a0, a0, t1);
    emitExit(a);
    GoldenRun r;
    EXPECT_EQ(r.run(a), 0x1234u);
}

TEST(Golden, TrapToHandlerAndMret)
{
    Assembler a(kEntry);
    auto handler = a.newLabel();
    auto cont = a.newLabel();
    // The handler sits at a fixed address (word 1) right after the
    // initial jump, so mtvec can be materialized with li.
    a.j(cont);
    a.bind(handler);
    // handler: a0 = mcause, skip faulting instruction
    a.csrr(a0, kCsrMcause);
    a.csrr(t1, kCsrMepc);
    a.addi(t1, t1, 4);
    a.csrw(kCsrMepc, t1);
    a.mret();
    a.bind(cont);
    a.li(t2, kEntry + 4 * 1); // address of handler (word index 1)
    a.csrw(kCsrMtvec, t2);
    a.ecall();          // traps: handler sets a0 = 11 and returns past
    a.addi(a0, a0, 100);
    emitExit(a);
    GoldenRun r;
    EXPECT_EQ(r.run(a), 111u); // EcallM (11) + 100
}

TEST(Golden, IllegalInstructionTrap)
{
    Assembler a(kEntry);
    auto cont = a.newLabel();
    a.j(cont);
    // handler at word 1
    a.csrr(a0, kCsrMcause);
    a.csrr(t1, kCsrMepc);
    a.addi(t1, t1, 4);
    a.csrw(kCsrMepc, t1);
    a.mret();
    a.bind(cont);
    a.li(t2, kEntry + 4);
    a.csrw(kCsrMtvec, t2);
    a.word(0xffffffff); // illegal
    emitExit(a);
    GoldenRun r;
    EXPECT_EQ(r.run(a), 2u); // IllegalInst
}

TEST(Golden, ConsoleOutput)
{
    Assembler a(kEntry);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Putchar));
    for (char ch : std::string("hi!")) {
        a.li(t0, ch);
        a.sd(t0, 0, t6);
    }
    a.li(a0, 0);
    emitExit(a);
    GoldenRun r;
    r.run(a);
    EXPECT_EQ(r.host.console(), "hi!");
}

TEST(Golden, Sv39TranslationAndPageFault)
{
    PhysMem mem;
    HostDevice host(1);
    FrameAllocator frames(kDramBase + 0x100000);
    AddressSpace as(mem, frames);

    // Map text at VA 0x1000000 -> PA kDramBase, data VA 0x2000000.
    Addr textVa = 0x1000000, dataVa = 0x2000000;
    Addr dataPa = kDramBase + 0x40000;
    as.mapRange(textVa, kDramBase, 0x4000, PTE_R | PTE_X);
    as.mapRange(dataVa, dataPa, 0x2000, PTE_R | PTE_W);
    // Identity-map the MMIO device page.
    as.map(kMmioBase, kMmioBase, PTE_R | PTE_W);

    Assembler a(textVa);
    auto cont = a.newLabel();
    a.j(cont);
    // fault handler at textVa+4: a0 = mcause; skip instruction
    a.csrr(a0, kCsrMcause);
    a.csrr(t1, kCsrMepc);
    a.addi(t1, t1, 4);
    a.csrw(kCsrMepc, t1);
    a.mret();
    a.bind(cont);
    a.li(t2, textVa + 4);
    a.csrw(kCsrMtvec, t2);
    // Store/load through the mapping.
    a.li(s0, dataVa);
    a.li(t0, 77);
    a.sd(t0, 0, s0);
    a.ld(s1, 0, s0);
    // Touch an unmapped page: expect a load page fault (13).
    a.li(s2, 0x3000000);
    a.ld(t3, 0, s2);
    // Touch a read-only page with a store: store page fault (15).
    a.li(s3, 0x1000000);
    a.sd(t0, 0, s3);
    a.add(a0, a0, s1); // 15 + 77 = 92... plus first fault overwritten
    // exit with a0; the handler ran twice, last cause is 15.
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Exit));
    a.sd(a0, 0, t6);
    auto spin = a.newLabel();
    a.bind(spin);
    a.j(spin);

    a.load(mem, kDramBase);
    GoldenModel g(mem, host, 0, textVa);
    g.csrs().satp = as.satp();
    uint64_t steps = 0;
    while (!g.halted() && steps++ < 100000)
        g.step();
    ASSERT_TRUE(g.halted());
    EXPECT_EQ(host.exitCode(0), 92u);
    EXPECT_EQ(mem.read(dataPa, 8), 77u);
}

TEST(Golden, TranslateSuperpage)
{
    PhysMem mem;
    HostDevice host(1);
    // Hand-build a 1 GiB superpage: root PTE at level 2 is a leaf.
    Addr root = kDramBase + 0x1000;
    Addr va = 0x4000'0000ull * 3; // VPN2 = 3
    mem.write(root + vpn(va, 2) * 8,
              makePte(0x8000'0000, PTE_V | PTE_R | PTE_W | PTE_A | PTE_D),
              8);
    GoldenModel g(mem, host, 0, kDramBase);
    g.csrs().satp = kSatpModeSv39 | (root >> 12);
    auto x = g.translate(va + 0x123456, AccessType::Load);
    EXPECT_FALSE(x.fault);
    EXPECT_EQ(x.pa, 0x8000'0000ull + 0x123456);
    // Misaligned superpage PPN must fault.
    mem.write(root + vpn(va, 2) * 8,
              makePte(0x8000'1000, PTE_V | PTE_R | PTE_A | PTE_D), 8);
    x = g.translate(va, AccessType::Load);
    EXPECT_TRUE(x.fault);
}

TEST(Golden, MulDivProgram)
{
    Assembler a(kEntry);
    a.li(t0, 123456789);
    a.li(t1, 987);
    a.div(t2, t0, t1);   // 125082
    a.rem(t3, t0, t1);   // 855... check: 125082*987 = 123455934; rem 855
    a.mul(a0, t2, t1);
    a.add(a0, a0, t3);
    a.sub(a0, a0, t0);   // 0 if div/rem/mul consistent
    emitExit(a);
    GoldenRun r;
    EXPECT_EQ(r.run(a), 0u);
}

} // namespace
