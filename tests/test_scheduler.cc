/**
 * @file
 * Event-driven scheduler tests: sleep/wake unit behavior, the
 * conservative stay-awake fallbacks, snapshot()/restore() of sleep
 * bookkeeping, and lockstep equivalence against the exhaustive
 * scheduler — on randomized rule soups and on the full OOO core.
 */
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/cmd.hh"
#include "cosim.hh"

using namespace cmd;

namespace {

/** FNV-1a over a snapshot buffer. */
uint64_t
digest(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

TEST(Scheduler, SleepsOnFalseGuardAndWakesOnRuleCommit)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    Reg<int> flag(k, "flag", 0);
    Reg<int> out(k, "out", 0);
    Rule &consumer =
        k.rule("consumer", [&] { out.write(out.read() + 1); }).when([&] {
            return flag.read() != 0;
        });
    Rule &producer =
        k.rule("producer", [&] { flag.write(1); }).setEnabled(false);
    k.elaborate();

    // One real attempt (guard false), then asleep: no re-attempts.
    k.run(4);
    EXPECT_EQ(consumer.guardAbortCount(), 1u);
    EXPECT_TRUE(consumer.asleep());
    EXPECT_EQ(consumer.lastOutcome(), Rule::Outcome::Sleeping);
    EXPECT_EQ(k.sleepCount(), 1u);
    EXPECT_GT(k.sleepSkipCount(), 0u);
    EXPECT_EQ(out.read(), 0);

    // A rule committing the sensitivity register wakes the consumer.
    producer.setEnabled(true);
    k.run(2);
    EXPECT_FALSE(consumer.asleep());
    EXPECT_GE(k.wakeCount(), 1u);
    EXPECT_GT(consumer.firedCount(), 0u);
    EXPECT_GT(out.read(), 0);
}

TEST(Scheduler, WakesOnRunAtomically)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    Reg<int> flag(k, "flag", 0);
    Reg<int> out(k, "out", 0);
    Rule &consumer =
        k.rule("consumer", [&] { out.write(1); }).when([&] {
            return flag.read() != 0;
        });
    k.elaborate();

    k.run(3);
    ASSERT_TRUE(consumer.asleep());

    // The testbench poke commits flag, which must wake the consumer.
    EXPECT_TRUE(k.runAtomically([&] { flag.write(1); }));
    EXPECT_FALSE(consumer.asleep());
    k.run(1);
    EXPECT_EQ(out.read(), 1);
    EXPECT_EQ(consumer.lastOutcome(), Rule::Outcome::Fired);
}

TEST(Scheduler, TimeDependentGuardStaysAwake)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    Reg<int> out(k, "out", 0);
    Rule &timer =
        k.rule("timer", [&] { out.write(1); }).when([&] {
            return k.cycleCount() >= 5;
        });
    k.elaborate();

    // Nothing ever commits before cycle 5, so a sleeping timer would
    // never wake; the cycleCount() read must keep it always-awake.
    k.run(4);
    EXPECT_FALSE(timer.asleep());
    EXPECT_EQ(timer.lastOutcome(), Rule::Outcome::GuardFalse);
    EXPECT_EQ(timer.guardAbortCount(), 4u);
    k.run(2);
    EXPECT_GT(timer.firedCount(), 0u);
    EXPECT_EQ(out.read(), 1);
}

TEST(Scheduler, ReadSetOverflowStaysAwake)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    std::vector<std::unique_ptr<Reg<int>>> regs;
    for (int i = 0; i < 70; i++)
        regs.push_back(
            std::make_unique<Reg<int>>(k, strfmt("r%d", i), 0));
    Reg<int> two(k, "two", 0);

    // Guard reads 70 distinct state elements: past the sensitivity
    // cap, so the read set is not captured exactly.
    Rule &wide = k.rule("wide", [] {}).when([&] {
        int sum = 0;
        for (auto &r : regs)
            sum += r->read();
        return sum != 0;
    });
    // Control: a two-element read set sleeps normally.
    Rule &narrow = k.rule("narrow", [] {}).when(
        [&] { return regs[0]->read() + two.read() != 0; });
    k.elaborate();

    k.run(3);
    EXPECT_FALSE(wide.asleep());
    EXPECT_EQ(wide.guardAbortCount(), 3u);
    EXPECT_TRUE(narrow.asleep());
    EXPECT_EQ(narrow.guardAbortCount(), 1u);
}

TEST(Scheduler, CmBlockedRuleStaysAwake)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    PipelineFifo<int> q(k, "q", 16);
    Reg<int> src(k, "src", 0);
    Rule &first =
        k.rule("first", [&] { q.enq(src.read()); }).when([&] {
            return q.canEnq();
        }).uses({&q.enqM});
    // Same-cycle second enq is CM-illegal (enq conflicts with itself):
    // the rule is blocked out of the cycle, not put to sleep — it must
    // retry every cycle because CM pressure can clear without any
    // commit to its own read set.
    Rule &second =
        k.rule("second", [&] { q.enq(src.read()); }).uses({&q.enqM});
    k.elaborate();

    k.run(5);
    EXPECT_EQ(first.firedCount(), 5u);
    EXPECT_EQ(second.cmAbortCount(), 5u);
    EXPECT_EQ(second.lastOutcome(), Rule::Outcome::CmBlocked);
    EXPECT_FALSE(second.asleep());
}

TEST(Scheduler, GuardedBodyImplicitFailStaysAwake)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    Reg<int> gate(k, "gate", 1);
    Reg<int> out(k, "out", 0);
    // The when() guard passes but the body then fails via require():
    // body reads are untracked once a guard has passed, so the read
    // set is incomplete and the rule must stay awake.
    Rule &r = k.rule("halfway", [&] {
                   require(false);
                   out.write(1);
               }).when([&] { return gate.read() != 0; });
    k.elaborate();

    k.run(3);
    EXPECT_FALSE(r.asleep());
    EXPECT_EQ(r.guardAbortCount(), 3u);
    EXPECT_GE(k.guardThrowCount(), 3u);
}

TEST(Scheduler, RequireFastSkipsTheThrow)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    Reg<uint64_t> tick(k, "tick", 0);
    Reg<uint64_t> out(k, "out", 0);
    k.rule("tick", [&] { tick.write(tick.read() + 1); });
    k.rule("feed", [&] {
        if (!requireFast(tick.read() % 4 == 0))
            return;
        out.write(out.read() + 1);
    });
    k.elaborate();

    k.run(8);
    EXPECT_EQ(out.read(), 2u); // fired at tick==0 and tick==4
    EXPECT_EQ(k.guardThrowCount(), 0u);
    EXPECT_GT(k.fastGuardFailCount(), 0u);

    // Outside any rule or atomic action it degrades to require().
    EXPECT_THROW(requireFast(false), GuardFail);
}

TEST(Scheduler, SnapshotRestoreResetsSleepBookkeeping)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    Reg<int> flag(k, "flag", 0);
    Reg<int> out(k, "out", 0);
    Rule &consumer =
        k.rule("consumer", [&] { out.write(out.read() + 1); }).when([&] {
            return flag.read() != 0;
        });
    k.elaborate();

    k.run(3);
    ASSERT_TRUE(consumer.asleep());
    auto snap = k.snapshot();

    // Wake and fire past the snapshot point...
    k.runAtomically([&] { flag.write(1); });
    k.run(2);
    ASSERT_GT(out.read(), 0);

    // ...then rewind. All sleep state is discarded with the restore:
    // the consumer re-attempts (flag is 0 again), sleeps afresh, and
    // a post-restore wake still lands.
    k.restore(snap);
    EXPECT_FALSE(consumer.asleep());
    EXPECT_EQ(flag.read(), 0);
    EXPECT_EQ(out.read(), 0);
    uint64_t abortsBefore = consumer.guardAbortCount();
    k.run(3);
    EXPECT_EQ(consumer.guardAbortCount(), abortsBefore + 1);
    EXPECT_TRUE(consumer.asleep());
    EXPECT_EQ(out.read(), 0);
    k.runAtomically([&] { flag.write(1); });
    k.run(1);
    EXPECT_EQ(out.read(), 1);
}

TEST(Scheduler, SwitchingSchedulersWakesEverything)
{
    Kernel k;
    k.setScheduler(SchedulerKind::EventDriven);
    Reg<int> flag(k, "flag", 0);
    Rule &consumer = k.rule("consumer", [] {}).when([&] {
        return flag.read() != 0;
    });
    k.elaborate();
    k.run(3);
    ASSERT_TRUE(consumer.asleep());

    // Exhaustive mode must attempt everything again.
    k.setScheduler(SchedulerKind::Exhaustive);
    EXPECT_FALSE(consumer.asleep());
    uint64_t aborts = consumer.guardAbortCount();
    k.run(2);
    EXPECT_EQ(consumer.guardAbortCount(), aborts + 2);
}

namespace {

/**
 * A deterministic random rule soup: registers plus a FIFO chain, with
 * guards and bodies drawn from a seeded generator. Building twice with
 * the same seed yields structurally identical designs, so two kernels
 * differing only in scheduler must stay bit-identical cycle by cycle.
 */
struct Soup {
    Kernel k;
    std::vector<std::unique_ptr<Reg<uint64_t>>> regs;
    std::vector<std::unique_ptr<PipelineFifo<uint64_t>>> fifos;

    Soup(uint32_t seed, SchedulerKind kind)
    {
        std::mt19937 rng(seed);
        for (int i = 0; i < 16; i++)
            regs.push_back(std::make_unique<Reg<uint64_t>>(
                k, strfmt("r%d", i), uint64_t(i) * 7 + 1));
        for (int i = 0; i < 3; i++)
            fifos.push_back(std::make_unique<PipelineFifo<uint64_t>>(
                k, strfmt("f%d", i), 2));

        for (int i = 0; i < 32; i++) {
            auto *ra = regs[rng() % regs.size()].get();
            auto *rb = regs[rng() % regs.size()].get();
            auto *rc = regs[rng() % regs.size()].get();
            uint64_t mod = 2 + rng() % 7;
            uint64_t rem = rng() % mod;
            uint64_t add = 1 + rng() % 9;
            switch (rng() % 3) {
              case 0: // explicit when() guard
                k.rule(strfmt("w%d", i),
                       [=] { rc->write(rc->read() + ra->read() + add); })
                    .when([=] { return ra->read() % mod == rem; });
                break;
              case 1: // implicit guard via require() (throwing path)
                k.rule(strfmt("t%d", i), [=] {
                    require((ra->read() + rb->read()) % mod == rem);
                    rc->write(rb->read() ^ (rc->read() << 1));
                });
                break;
              default: // implicit guard via requireFast()
                k.rule(strfmt("q%d", i), [=] {
                    if (!requireFast(ra->read() % mod == rem))
                        return;
                    rc->write(rc->read() + add);
                });
            }
        }
        // FIFO chain: producer gated on a register, movers, drain.
        auto *r0 = regs[0].get();
        auto *rl = regs.back().get();
        auto *f0 = fifos[0].get();
        k.rule("produce", [=] { f0->enq(r0->read()); })
            .when([=] { return r0->read() % 3 == 0 && f0->canEnq(); })
            .uses({&f0->enqM});
        for (size_t i = 0; i + 1 < fifos.size(); i++) {
            auto *a = fifos[i].get();
            auto *b = fifos[i + 1].get();
            k.rule(strfmt("move%zu", i), [=] { b->enq(a->deq()); })
                .when([=] { return a->canDeq() && b->canEnq(); })
                .uses({&a->deqM, &b->enqM});
        }
        auto *last = fifos.back().get();
        k.rule("drain", [=] { rl->write(rl->read() + last->deq()); })
            .when([=] { return last->canDeq(); })
            .uses({&last->deqM});
        // Heartbeat guarantees the soup never goes fully quiescent.
        k.rule("beat", [=] { r0->write(r0->read() + 1); });
        k.setScheduler(kind);
        k.elaborate();
    }
};

} // namespace

TEST(Scheduler, LockstepRandomSoups)
{
    for (uint32_t seed : {1u, 7u, 42u, 1234u}) {
        Soup ex(seed, SchedulerKind::Exhaustive);
        Soup ev(seed, SchedulerKind::EventDriven);
        for (int c = 0; c < 2000; c++) {
            ex.k.cycle();
            ev.k.cycle();
            ASSERT_EQ(digest(ex.k.snapshot()), digest(ev.k.snapshot()))
                << "seed " << seed << " diverged at cycle " << c + 1;
        }
        // The equivalence must not be vacuous: the event-driven run
        // actually slept rules and actually fired work.
        EXPECT_GT(ev.k.sleepSkipCount(), 0u) << "seed " << seed;
        EXPECT_LT(ev.k.ruleAttemptCount(), ex.k.ruleAttemptCount())
            << "seed " << seed;
    }
}

/**
 * Four-way lockstep over the seeded soups with the compiled scheduler
 * in the mix. The short profiling prefix puts both compiled regimes —
 * the event-driven profiling walk and the re-specialized fast-path
 * dispatch — inside the comparison window, and the Parallel kernel
 * (single-domain here, so the sequential event walk) rides along so
 * every SchedulerKind is digest-compared against every other.
 */
TEST(Scheduler, CompiledLockstepRandomSoups)
{
    for (uint32_t seed : {1u, 7u, 42u, 1234u}) {
        Soup ex(seed, SchedulerKind::Exhaustive);
        Soup co(seed, SchedulerKind::Compiled);
        Soup pa(seed, SchedulerKind::Parallel);
        co.k.setCompiledProfile(200);
        for (int c = 0; c < 2000; c++) {
            ex.k.cycle();
            co.k.cycle();
            pa.k.cycle();
            uint64_t dx = digest(ex.k.snapshot());
            ASSERT_EQ(dx, digest(co.k.snapshot()))
                << "seed " << seed << ": compiled diverged at cycle "
                << c + 1;
            ASSERT_EQ(dx, digest(pa.k.snapshot()))
                << "seed " << seed << ": parallel diverged at cycle "
                << c + 1;
        }
        // Re-specialization really happened and really promoted work.
        EXPECT_GT(co.k.compiledFastRuleCount(), 0u) << "seed " << seed;
        EXPECT_STREQ(co.k.report().scheduler, "compiled");
    }
}

/**
 * The fully static compile (profileCycles == 0): every rule goes fast
 * immediately, nothing ever sleeps, and the state evolution still
 * matches the exhaustive reference bit for bit.
 */
TEST(Scheduler, CompiledStaticScheduleMatchesExhaustive)
{
    Soup ex(42u, SchedulerKind::Exhaustive);
    Soup co(42u, SchedulerKind::Compiled);
    co.k.setCompiledProfile(0);
    EXPECT_EQ(co.k.compiledFastRuleCount(), uint32_t(co.k.rules().size()));
    for (int c = 0; c < 1000; c++) {
        ex.k.cycle();
        co.k.cycle();
        ASSERT_EQ(digest(ex.k.snapshot()), digest(co.k.snapshot()))
            << "diverged at cycle " << c + 1;
    }
    // All-fast: the sleep machinery never engaged, and the attempt
    // counts match the exhaustive scan exactly.
    EXPECT_EQ(co.k.sleepCount(), 0u);
    EXPECT_EQ(co.k.ruleAttemptCount(), ex.k.ruleAttemptCount());
    EXPECT_EQ(co.k.report().compiledFastRules, uint32_t(co.k.rules().size()));
}

TEST(Compiled, RespecializationPromotesHotColdSplit)
{
    Kernel k;
    k.setScheduler(SchedulerKind::Compiled);
    k.setCompiledProfile(100);
    Reg<uint64_t> tick(k, "tick", 0);
    Reg<int> flag(k, "flag", 0);
    Rule &hot = k.rule("hot", [&] { tick.write(tick.read() + 1); });
    Rule &cold = k.rule("cold", [] {}).when([&] {
        return flag.read() != 0;
    });
    k.elaborate();

    k.run(300);
    // The always-firing rule was promoted; the never-ready rule slept
    // through the profiling prefix and stayed on the residue path.
    EXPECT_EQ(k.compiledFastRuleCount(), 1u);
    EXPECT_EQ(hot.firedCount(), 300u);
    EXPECT_TRUE(cold.asleep());
    // One attempt at the start, one after the respecialization
    // wake-all; asleep in between and after.
    EXPECT_EQ(cold.guardAbortCount(), 2u);

    // Residue rules still wake on testbench commits to their
    // sensitivity set — the mixed table keeps the waiter machinery.
    EXPECT_TRUE(k.runAtomically([&] { flag.write(1); }));
    EXPECT_FALSE(cold.asleep());
    k.run(1);
    EXPECT_EQ(cold.lastOutcome(), Rule::Outcome::Fired);
}

TEST(Compiled, CmEnforcementStillBlocksNonInertFastRules)
{
    // Same design as Scheduler.CmBlockedRuleStaysAwake, fully static
    // compiled: both rules reach the fast path, but enq C enq makes
    // them non-inert, so the second enq must still be CM-blocked every
    // cycle exactly as under the checked schedulers.
    Kernel k;
    k.setScheduler(SchedulerKind::Compiled);
    k.setCompiledProfile(0);
    PipelineFifo<int> q(k, "q", 16);
    Reg<int> src(k, "src", 0);
    Rule &first =
        k.rule("first", [&] { q.enq(src.read()); }).when([&] {
            return q.canEnq();
        }).uses({&q.enqM});
    Rule &second =
        k.rule("second", [&] { q.enq(src.read()); }).uses({&q.enqM});
    k.elaborate();

    k.run(5);
    EXPECT_EQ(first.firedCount(), 5u);
    EXPECT_EQ(second.cmAbortCount(), 5u);
    EXPECT_EQ(second.lastOutcome(), Rule::Outcome::CmBlocked);
}

TEST(Compiled, SwitchingSchedulersMidRunStaysBitIdentical)
{
    // Bounce one soup across every scheduler kind mid-run and digest
    // against an uninterrupted exhaustive reference each cycle.
    Soup ex(7u, SchedulerKind::Exhaustive);
    Soup sw(7u, SchedulerKind::Compiled);
    sw.k.setCompiledProfile(50);
    const SchedulerKind kinds[] = {
        SchedulerKind::Compiled, SchedulerKind::EventDriven,
        SchedulerKind::Compiled, SchedulerKind::Exhaustive,
        SchedulerKind::Compiled};
    int cycleNum = 0;
    for (SchedulerKind kind : kinds) {
        sw.k.setScheduler(kind);
        for (int c = 0; c < 200; c++) {
            ex.k.cycle();
            sw.k.cycle();
            cycleNum++;
            ASSERT_EQ(digest(ex.k.snapshot()), digest(sw.k.snapshot()))
                << "diverged at cycle " << cycleNum;
        }
    }
}

namespace {

struct CommitLog {
    struct Entry {
        riscy::Addr pc;
        uint32_t raw;
        bool hasRd;
        uint8_t rd;
        uint64_t rdVal;
        bool volatileRd;
    };
    std::vector<Entry> entries;

    void
    attach(riscy::System &sys)
    {
        sys.setOnCommit(0, [this](const riscy::CommitRecord &r) {
            entries.push_back(
                {r.pc, r.raw, r.hasRd, r.rd, r.rdVal, r.volatileRd});
        });
    }
};

} // namespace

/**
 * The acceptance-criterion test: the full OOO core (RiscyOO-B config)
 * under the exhaustive, event-driven and compiled schedulers for
 * >= 100k cycles, proven bit-identical by whole-kernel snapshot
 * digests.
 *
 * One System is run twice from the same start-of-time snapshot
 * (snapshots embed the cycle counter, so the replay re-executes the
 * same absolute cycle numbers). Comparing two *separate* System
 * instances by digest would be invalid: Reg<T> payloads are structs
 * whose padding bytes are instance-dependent. The workload is
 * load-only so PhysMem — which is outside the kernel snapshot — is
 * bit-identical across the two runs too.
 */
TEST(Scheduler, LockstepOooCore100kCycles)
{
    using namespace riscy;
    using namespace riscy::test;

    Assembler a(kEntry);
    // Endless load loop over a 512-dword window with a data-dependent
    // accumulator and a short branch pattern: exercises fetch, branch
    // prediction, rename, IQ, the LSQ load path, caches and TLBs.
    a.li(5, kEntry + 0x10000); // t0 = array base
    a.li(6, 0);                // t1 = i
    a.li(7, 0);                // t2 = checksum
    auto loop = a.newLabel();
    a.bind(loop);
    a.andi(28, 6, 511); // t3 = i & 511
    a.slli(28, 28, 3);
    a.add(28, 28, 5);
    a.ld(29, 0, 28); // t4 = mem[t3]
    a.add(7, 7, 29);
    a.andi(30, 6, 7); // t5: taken 7 of 8 iterations
    auto skip = a.newLabel();
    a.bnez(30, skip);
    a.xor_(7, 7, 6);
    a.bind(skip);
    a.addi(6, 6, 1);
    a.j(loop);

    SystemConfig cfg = SystemConfig::riscyooB();
    cfg.cores = 1;
    cfg.scheduler = cmd::SchedulerKind::Exhaustive;
    System sys(cfg);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, {kStackTop});
    auto snap0 = sys.kernel().snapshot();

    constexpr uint64_t kChunk = 5000;
    constexpr uint64_t kTotal = 110000;
    std::vector<uint64_t> exDigests;
    for (uint64_t c = 0; c < kTotal; c += kChunk) {
        sys.kernel().run(kChunk);
        exDigests.push_back(digest(sys.kernel().snapshot()));
    }
    uint64_t exAttempts = sys.kernel().ruleAttemptCount();

    // Rewind to the start of time and replay under the event-driven
    // scheduler: every periodic digest must match the exhaustive run.
    sys.kernel().restore(snap0);
    sys.kernel().setScheduler(cmd::SchedulerKind::EventDriven);
    for (uint64_t c = 0; c < kTotal; c += kChunk) {
        sys.kernel().run(kChunk);
        ASSERT_EQ(exDigests[c / kChunk], digest(sys.kernel().snapshot()))
            << "schedulers diverged by cycle " << c + kChunk;
    }
    // The equivalence must not be vacuous: the OOO core really slept.
    uint64_t evAttempts = sys.kernel().ruleAttemptCount() - exAttempts;
    EXPECT_GT(sys.kernel().sleepSkipCount(), 0u);
    EXPECT_LT(evAttempts, exAttempts);

    // Rewind once more and replay under the compiled scheduler: the
    // run spans the default 1024-cycle profiling prefix and then the
    // re-specialized fast-path dispatch for the remaining ~109k
    // cycles, all of which must stay on the same digest trajectory.
    sys.kernel().restore(snap0);
    sys.kernel().setScheduler(cmd::SchedulerKind::Compiled);
    for (uint64_t c = 0; c < kTotal; c += kChunk) {
        sys.kernel().run(kChunk);
        ASSERT_EQ(exDigests[c / kChunk], digest(sys.kernel().snapshot()))
            << "compiled scheduler diverged by cycle " << c + kChunk;
    }
    // Non-vacuity: the profile really promoted rules to the fast path.
    EXPECT_GT(sys.kernel().compiledFastRuleCount(), 0u);
    EXPECT_STREQ(sys.kernel().report().scheduler, "compiled");
}

/**
 * Cross-scheduler commit-stream equivalence on a store+load loop (two
 * System instances; commits are architectural, so they compare validly
 * across instances where raw snapshots do not).
 */
TEST(Scheduler, LockstepOooCommitStream)
{
    using namespace riscy;
    using namespace riscy::test;

    Assembler a(kEntry);
    // mem[i & 511] = checksum += mem[i & 511] + i, forever.
    a.li(5, kEntry + 0x10000);
    a.li(6, 0);
    a.li(7, 0);
    auto loop = a.newLabel();
    a.bind(loop);
    a.andi(28, 6, 511);
    a.slli(28, 28, 3);
    a.add(28, 28, 5);
    a.ld(29, 0, 28);
    a.add(29, 29, 6);
    a.add(7, 7, 29);
    a.sd(7, 0, 28);
    a.addi(6, 6, 1);
    a.j(loop);

    auto mkSys = [&](cmd::SchedulerKind kind) {
        SystemConfig cfg = SystemConfig::riscyooB();
        cfg.cores = 1;
        cfg.scheduler = kind;
        auto sys = std::make_unique<System>(cfg);
        a.load(sys->mem(), kEntry);
        sys->elaborate();
        sys->start(kEntry, 0, {kStackTop});
        return sys;
    };
    auto ex = mkSys(cmd::SchedulerKind::Exhaustive);
    auto ev = mkSys(cmd::SchedulerKind::EventDriven);
    CommitLog exLog, evLog;
    exLog.attach(*ex);
    evLog.attach(*ev);

    constexpr uint64_t kCycles = 40000;
    ex->kernel().run(kCycles);
    ev->kernel().run(kCycles);

    // Same commits, in the same order, with the same values.
    ASSERT_EQ(exLog.entries.size(), evLog.entries.size());
    ASSERT_GT(exLog.entries.size(), 1000u) << "loop barely ran";
    for (size_t i = 0; i < exLog.entries.size(); i++) {
        const auto &x = exLog.entries[i];
        const auto &v = evLog.entries[i];
        ASSERT_EQ(x.pc, v.pc) << "commit #" << i;
        ASSERT_EQ(x.raw, v.raw) << "commit #" << i;
        ASSERT_EQ(x.hasRd, v.hasRd) << "commit #" << i;
        if (x.hasRd && !x.volatileRd && !v.volatileRd) {
            ASSERT_EQ(x.rdVal, v.rdVal) << "commit #" << i;
        }
    }
    EXPECT_EQ(ex->instret(0), ev->instret(0));
}
