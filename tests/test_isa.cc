/**
 * @file
 * ISA-layer tests: decoder correctness (including assembler round
 * trips), ALU semantics, branch/AMO helpers, and field classification.
 */
#include <gtest/gtest.h>

#include <random>

#include "asmkit/assembler.hh"
#include "isa/exec.hh"
#include "isa/inst.hh"

using namespace riscy;
using namespace riscy::isa;
using namespace riscy::asmkit;

namespace {

Inst
dec(uint32_t raw)
{
    return decode(raw);
}

TEST(Decode, BasicIType)
{
    // addi x5, x6, -7
    Inst d = dec(0xff930293);
    EXPECT_EQ(d.op, Op::ADDI);
    EXPECT_EQ(d.rd, 5);
    EXPECT_EQ(d.rs1, 6);
    EXPECT_EQ(d.imm, -7);
}

TEST(Decode, LuiAndImmU)
{
    // lui x3, 0xfffff  (negative upper immediate)
    Inst d = dec((0xfffffu << 12) | (3 << 7) | 0x37);
    EXPECT_EQ(d.op, Op::LUI);
    EXPECT_EQ(d.imm, -4096);
}

TEST(Decode, IllegalClearsFields)
{
    Inst d = dec(0xffffffff);
    EXPECT_EQ(d.op, Op::ILLEGAL);
    EXPECT_EQ(d.rd, 0);
    d = dec(0); // all-zero word is not a valid instruction
    EXPECT_EQ(d.op, Op::ILLEGAL);
}

TEST(Decode, SystemInstructions)
{
    EXPECT_EQ(dec(0x00000073).op, Op::ECALL);
    EXPECT_EQ(dec(0x00100073).op, Op::EBREAK);
    EXPECT_EQ(dec(0x30200073).op, Op::MRET);
    EXPECT_EQ(dec(0x10500073).op, Op::WFI);
}

TEST(Decode, CsrFieldExtraction)
{
    // csrrs x7, mhartid(0xf14), x0
    Inst d = dec((0xf14u << 20) | (0 << 15) | (2 << 12) | (7 << 7) | 0x73);
    EXPECT_EQ(d.op, Op::CSRRS);
    EXPECT_EQ(d.csr, 0xf14);
    EXPECT_EQ(d.rd, 7);
}

/**
 * Assembler/decoder round trip: assemble every supported mnemonic
 * with randomized operands and check the decoded form.
 */
TEST(Decode, AssemblerRoundTrip)
{
    std::mt19937 rng(7);
    for (int trial = 0; trial < 200; trial++) {
        int rd = rng() % 32, rs1 = rng() % 32, rs2 = rng() % 32;
        int32_t imm12 = static_cast<int32_t>(rng() % 4096) - 2048;
        unsigned sh = rng() % 64;

        Assembler a(0x1000);
        a.add(rd, rs1, rs2);
        a.sub(rd, rs1, rs2);
        a.xor_(rd, rs1, rs2);
        a.sltu(rd, rs1, rs2);
        a.addi(rd, rs1, imm12);
        a.andi(rd, rs1, imm12);
        a.slli(rd, rs1, sh);
        a.srai(rd, rs1, sh);
        a.addw(rd, rs1, rs2);
        a.sraiw(rd, rs1, sh % 32);
        a.ld(rd, imm12, rs1);
        a.lw(rd, imm12, rs1);
        a.lbu(rd, imm12, rs1);
        a.sd(rs2, imm12, rs1);
        a.sh(rs2, imm12, rs1);
        a.mul(rd, rs1, rs2);
        a.divu(rd, rs1, rs2);
        a.remw(rd, rs1, rs2);
        a.lr_d(rd, rs1);
        a.sc_d(rd, rs2, rs1);
        a.amoadd_w(rd, rs2, rs1);
        a.amoswap_d(rd, rs2, rs1);
        a.jalr(rd, rs1, imm12);

        const Op expectOps[] = {
            Op::ADD, Op::SUB, Op::XOR, Op::SLTU, Op::ADDI, Op::ANDI,
            Op::SLLI, Op::SRAI, Op::ADDW, Op::SRAIW, Op::LD, Op::LW,
            Op::LBU, Op::SD, Op::SH, Op::MUL, Op::DIVU, Op::REMW,
            Op::LR_D, Op::SC_D, Op::AMOADD_W, Op::AMOSWAP_D, Op::JALR,
        };
        ASSERT_EQ(a.code().size(), std::size(expectOps));
        for (size_t i = 0; i < a.code().size(); i++) {
            Inst d = dec(a.code()[i]);
            ASSERT_EQ(d.op, expectOps[i])
                << "word " << i << " trial " << trial;
            if (d.op != Op::LR_D && d.op != Op::SD && d.op != Op::SH) {
                EXPECT_EQ(d.rd, rd);
            }
            switch (d.op) {
              case Op::ADDI: case Op::ANDI: case Op::LD: case Op::LW:
              case Op::LBU: case Op::JALR:
                EXPECT_EQ(d.imm, imm12);
                EXPECT_EQ(d.rs1, rs1);
                break;
              case Op::SD: case Op::SH:
                EXPECT_EQ(d.imm, imm12);
                EXPECT_EQ(d.rs1, rs1);
                EXPECT_EQ(d.rs2, rs2);
                break;
              case Op::SLLI: case Op::SRAI:
                EXPECT_EQ(d.imm, static_cast<int64_t>(sh));
                break;
              case Op::SRAIW:
                EXPECT_EQ(d.imm, static_cast<int64_t>(sh % 32));
                break;
              default:
                break;
            }
        }
    }
}

TEST(Decode, BranchOffsetsRoundTrip)
{
    Assembler a(0x1000);
    auto back = a.newLabel();
    a.bind(back);
    a.nop();
    a.nop();
    auto fwd = a.newLabel();
    a.beq(1, 2, fwd);
    a.bne(3, 4, back);
    a.jal(1, fwd);
    a.nop();
    a.bind(fwd);
    a.nop();
    PhysMem mem;
    a.load(mem, 0x1000);

    Inst beq = dec(static_cast<uint32_t>(mem.read(0x1008, 4)));
    EXPECT_EQ(beq.op, Op::BEQ);
    EXPECT_EQ(beq.imm, 0x1018 - 0x1008);
    Inst bne = dec(static_cast<uint32_t>(mem.read(0x100c, 4)));
    EXPECT_EQ(bne.op, Op::BNE);
    EXPECT_EQ(bne.imm, 0x1000 - 0x100c);
    Inst jal = dec(static_cast<uint32_t>(mem.read(0x1010, 4)));
    EXPECT_EQ(jal.op, Op::JAL);
    EXPECT_EQ(jal.imm, 0x1018 - 0x1010);
}

// --------------------------------------------------------------- exec

TEST(Exec, Basic64BitAlu)
{
    auto run = [](Op op, uint64_t a, uint64_t b, int64_t imm = 0) {
        Inst d;
        d.op = op;
        d.imm = imm;
        return aluCompute(d, a, b, 0x1000);
    };
    EXPECT_EQ(run(Op::ADD, 3, 4), 7u);
    EXPECT_EQ(run(Op::SUB, 3, 4), static_cast<uint64_t>(-1));
    EXPECT_EQ(run(Op::SLT, static_cast<uint64_t>(-5), 3), 1u);
    EXPECT_EQ(run(Op::SLTU, static_cast<uint64_t>(-5), 3), 0u);
    EXPECT_EQ(run(Op::SRA, 0x8000000000000000ull, 63),
              0xffffffffffffffffull);
    EXPECT_EQ(run(Op::SRL, 0x8000000000000000ull, 63), 1u);
    EXPECT_EQ(run(Op::ADDI, 10, 0, -3), 7u);
    EXPECT_EQ(run(Op::AUIPC, 0, 0, 0x2000), 0x3000u);
}

TEST(Exec, WordOpsSignExtend)
{
    auto run = [](Op op, uint64_t a, uint64_t b) {
        Inst d;
        d.op = op;
        return aluCompute(d, a, b, 0);
    };
    EXPECT_EQ(run(Op::ADDW, 0x7fffffff, 1), 0xffffffff80000000ull);
    EXPECT_EQ(run(Op::SUBW, 0, 1), 0xffffffffffffffffull);
    EXPECT_EQ(run(Op::SLLW, 1, 31), 0xffffffff80000000ull);
    EXPECT_EQ(run(Op::MULW, 0x10000, 0x10000), 0u);
}

TEST(Exec, DivisionEdgeCases)
{
    auto run = [](Op op, uint64_t a, uint64_t b) {
        Inst d;
        d.op = op;
        return aluCompute(d, a, b, 0);
    };
    EXPECT_EQ(run(Op::DIV, 7, 0), ~0ull);
    EXPECT_EQ(run(Op::REM, 7, 0), 7u);
    EXPECT_EQ(run(Op::DIV, 0x8000000000000000ull, ~0ull),
              0x8000000000000000ull);
    EXPECT_EQ(run(Op::REM, 0x8000000000000000ull, ~0ull), 0u);
    EXPECT_EQ(run(Op::DIVU, 7, 0), ~0ull);
    EXPECT_EQ(run(Op::DIVW, 0x80000000ull, ~0ull), 0xffffffff80000000ull);
}

TEST(Exec, MulHighVariants)
{
    auto run = [](Op op, uint64_t a, uint64_t b) {
        Inst d;
        d.op = op;
        return aluCompute(d, a, b, 0);
    };
    EXPECT_EQ(run(Op::MULHU, ~0ull, ~0ull), ~0ull - 1);
    EXPECT_EQ(run(Op::MULH, ~0ull, ~0ull), 0u); // (-1)*(-1)=1, high=0
    EXPECT_EQ(run(Op::MULHSU, ~0ull, 2), ~0ull); // -1 * 2 = -2, high=-1
}

TEST(Exec, Branches)
{
    auto taken = [](Op op, uint64_t a, uint64_t b) {
        Inst d;
        d.op = op;
        return branchTaken(d, a, b);
    };
    EXPECT_TRUE(taken(Op::BEQ, 5, 5));
    EXPECT_FALSE(taken(Op::BNE, 5, 5));
    EXPECT_TRUE(taken(Op::BLT, static_cast<uint64_t>(-1), 0));
    EXPECT_FALSE(taken(Op::BLTU, static_cast<uint64_t>(-1), 0));
    EXPECT_TRUE(taken(Op::BGEU, static_cast<uint64_t>(-1), 0));
}

TEST(Exec, AmoCombine)
{
    EXPECT_EQ(amoCompute(Op::AMOADD_D, 10, 5), 15u);
    EXPECT_EQ(amoCompute(Op::AMOSWAP_D, 10, 5), 5u);
    EXPECT_EQ(amoCompute(Op::AMOMAX_D, static_cast<uint64_t>(-3), 2), 2u);
    EXPECT_EQ(amoCompute(Op::AMOMAXU_D, static_cast<uint64_t>(-3), 2),
              static_cast<uint64_t>(-3));
    // W-form AMOs operate on sign-extended 32-bit values.
    EXPECT_EQ(amoCompute(Op::AMOADD_W, 0x7fffffff, 1),
              0xffffffff80000000ull);
}

TEST(Exec, LoadExtend)
{
    EXPECT_EQ(loadExtend(Op::LB, 0x80), 0xffffffffffffff80ull);
    EXPECT_EQ(loadExtend(Op::LBU, 0x80), 0x80ull);
    EXPECT_EQ(loadExtend(Op::LH, 0x8000), 0xffffffffffff8000ull);
    EXPECT_EQ(loadExtend(Op::LW, 0x80000000ull), 0xffffffff80000000ull);
    EXPECT_EQ(loadExtend(Op::LWU, 0x80000000ull), 0x80000000ull);
    EXPECT_EQ(loadExtend(Op::LD, ~0ull), ~0ull);
}

// ------------------------------------------------------ classification

TEST(Classify, MemAndQueueKinds)
{
    EXPECT_TRUE(dec(0x0005b503).isLoad()); // ld a0, 0(a1)
    Assembler a(0);
    a.lr_d(10, 11);
    a.sc_d(10, 12, 11);
    a.amoadd_d(10, 12, 11);
    a.sd(12, 0, 11);
    Inst lr = dec(a.code()[0]);
    Inst sc = dec(a.code()[1]);
    Inst amo = dec(a.code()[2]);
    Inst sd = dec(a.code()[3]);
    EXPECT_TRUE(lr.isLq());
    EXPECT_FALSE(lr.isSq());
    EXPECT_TRUE(sc.isSq());
    EXPECT_TRUE(amo.isSq());
    EXPECT_TRUE(amo.isAtomic());
    EXPECT_TRUE(sd.isSq());
    EXPECT_FALSE(sd.isAtomic());
    EXPECT_EQ(lr.memBytes(), 8u);
    EXPECT_EQ(amo.memBytes(), 8u);
}

TEST(Classify, RegisterUsage)
{
    Inst d = dec(0x00000013); // addi x0,x0,0 (nop)
    EXPECT_FALSE(d.writesRd());
    EXPECT_FALSE(d.readsRs1());
    Assembler a(0);
    a.beq(1, 2, a.newLabel()); // unbound label fine: we never load
    Inst beq = dec(a.code()[0]);
    EXPECT_FALSE(beq.writesRd());
    EXPECT_TRUE(beq.readsRs1());
    EXPECT_TRUE(beq.readsRs2());
    a.jal(1, a.newLabel());
    Inst jal = dec(a.code()[1]);
    EXPECT_TRUE(jal.writesRd());
    EXPECT_FALSE(jal.readsRs1());
}

TEST(Disasm, ProducesMnemonics)
{
    EXPECT_NE(disasm(dec(0xff930293)).find("addi"), std::string::npos);
    EXPECT_NE(disasm(dec(0x00000073)).find("ecall"), std::string::npos);
}

} // namespace
