/**
 * @file
 * The minimal CSR file shared by the golden model and the cores.
 *
 * Simplifications relative to a full privileged implementation
 * (documented in DESIGN.md): a single privilege level, with address
 * translation controlled purely by satp; no interrupts; traps always
 * vector through mtvec.
 */
#pragma once

#include <cstdint>

namespace riscy::isa {

constexpr uint16_t kCsrSatp = 0x180;
constexpr uint16_t kCsrMstatus = 0x300;
constexpr uint16_t kCsrMtvec = 0x305;
constexpr uint16_t kCsrMscratch = 0x340;
constexpr uint16_t kCsrMepc = 0x341;
constexpr uint16_t kCsrMcause = 0x342;
constexpr uint16_t kCsrMtval = 0x343;
constexpr uint16_t kCsrCycle = 0xc00;
constexpr uint16_t kCsrTime = 0xc01;
constexpr uint16_t kCsrInstret = 0xc02;
constexpr uint16_t kCsrMhartid = 0xf14;

/** Architectural CSR state (trivially copyable: lives in Reg<>). */
struct CsrState {
    uint64_t mstatus = 0;
    uint64_t mtvec = 0;
    uint64_t mscratch = 0;
    uint64_t mepc = 0;
    uint64_t mcause = 0;
    uint64_t mtval = 0;
    uint64_t satp = 0;

    /**
     * Read a CSR. @return false for an unimplemented address (the
     * caller raises an illegal-instruction trap).
     * @param cycle/instret/hartId supply the read-only counters.
     */
    bool
    read(uint16_t addr, uint64_t cycle, uint64_t instret, uint32_t hartId,
         uint64_t &out) const
    {
        switch (addr) {
          case kCsrSatp:
            out = satp;
            return true;
          case kCsrMstatus:
            out = mstatus;
            return true;
          case kCsrMtvec:
            out = mtvec;
            return true;
          case kCsrMscratch:
            out = mscratch;
            return true;
          case kCsrMepc:
            out = mepc;
            return true;
          case kCsrMcause:
            out = mcause;
            return true;
          case kCsrMtval:
            out = mtval;
            return true;
          case kCsrCycle:
          case kCsrTime:
            out = cycle;
            return true;
          case kCsrInstret:
            out = instret;
            return true;
          case kCsrMhartid:
            out = hartId;
            return true;
          default:
            return false;
        }
    }

    /** Write a CSR. @return false for read-only/unknown addresses. */
    bool
    write(uint16_t addr, uint64_t v)
    {
        switch (addr) {
          case kCsrSatp:
            satp = v;
            return true;
          case kCsrMstatus:
            mstatus = v;
            return true;
          case kCsrMtvec:
            mtvec = v;
            return true;
          case kCsrMscratch:
            mscratch = v;
            return true;
          case kCsrMepc:
            mepc = v;
            return true;
          case kCsrMcause:
            mcause = v;
            return true;
          case kCsrMtval:
            mtval = v;
            return true;
          default:
            return false;
        }
    }

    /** True if reads of this CSR differ between timing models. */
    static bool
    isVolatile(uint16_t addr)
    {
        return addr == kCsrCycle || addr == kCsrTime ||
               addr == kCsrInstret;
    }
};

} // namespace riscy::isa
