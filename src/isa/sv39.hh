/**
 * @file
 * Sv39 virtual-memory constants shared by the golden model, the TLBs,
 * and the hardware page-table walker.
 */
#pragma once

#include <cstdint>

namespace riscy::isa {

/** PTE flag bits. */
enum PteBits : uint64_t {
    PTE_V = 1 << 0,
    PTE_R = 1 << 1,
    PTE_W = 1 << 2,
    PTE_X = 1 << 3,
    PTE_U = 1 << 4,
    PTE_G = 1 << 5,
    PTE_A = 1 << 6,
    PTE_D = 1 << 7,
};

constexpr unsigned kPageShift = 12;
constexpr uint64_t kPageSize = 1ull << kPageShift;
constexpr unsigned kSv39Levels = 3;
constexpr uint64_t kSatpModeSv39 = 8ull << 60;

/** VPN field of @p va for page-table level @p level (0 = leaf). */
inline uint64_t
vpn(uint64_t va, unsigned level)
{
    return (va >> (kPageShift + 9 * level)) & 0x1ff;
}

/** Virtual page number (all 27 bits). */
inline uint64_t
fullVpn(uint64_t va)
{
    return (va >> kPageShift) & ((1ull << 27) - 1);
}

/** Physical page number stored in a PTE. */
inline uint64_t
ptePpn(uint64_t pte)
{
    return (pte >> 10) & ((1ull << 44) - 1);
}

inline uint64_t
makePte(uint64_t pa, uint64_t flags)
{
    return ((pa >> kPageShift) << 10) | flags;
}

inline bool
pteLeaf(uint64_t pte)
{
    return (pte & (PTE_R | PTE_X)) != 0;
}

/** Root page-table physical address from a satp value. */
inline uint64_t
satpRoot(uint64_t satp)
{
    return (satp & ((1ull << 44) - 1)) << kPageShift;
}

inline bool
satpSv39(uint64_t satp)
{
    return (satp >> 60) == 8;
}

/** Memory access type, for permission checks and fault causes. */
enum class AccessType : uint8_t {
    Fetch,
    Load,
    Store,
};

/** Trap cause codes (mcause) used in this project. */
enum class Cause : uint64_t {
    IllegalInst = 2,
    Breakpoint = 3,
    LoadMisaligned = 4,
    StoreMisaligned = 6,
    EcallM = 11,
    FetchPageFault = 12,
    LoadPageFault = 13,
    StorePageFault = 15,
};

inline Cause
pageFaultCause(AccessType t)
{
    switch (t) {
      case AccessType::Fetch:
        return Cause::FetchPageFault;
      case AccessType::Load:
        return Cause::LoadPageFault;
      default:
        return Cause::StorePageFault;
    }
}

} // namespace riscy::isa
