#include "isa/golden.hh"

#include "core/log.hh"
#include "isa/exec.hh"

namespace riscy::isa {

GoldenModel::GoldenModel(PhysMem &mem, HostDevice &host, uint32_t hartId,
                         Addr resetPc)
    : mem_(mem), host_(host), hartId_(hartId), pc_(resetPc)
{
}

void
GoldenModel::setReg(unsigned i, uint64_t v)
{
    if (i != 0)
        regs_[i] = v;
}

GoldenModel::Xlate
GoldenModel::translate(Addr va, AccessType type) const
{
    if (!satpSv39(csr_.satp))
        return {false, va};
    Addr tableBase = satpRoot(csr_.satp);
    for (int level = kSv39Levels - 1; level >= 0; level--) {
        Addr pteAddr = tableBase + vpn(va, level) * 8;
        uint64_t pte = mem_.read(pteAddr, 8);
        if (!(pte & PTE_V))
            return {true, 0};
        if (pteLeaf(pte)) {
            // Permission check.
            if (type == AccessType::Fetch && !(pte & PTE_X))
                return {true, 0};
            if (type == AccessType::Load && !(pte & PTE_R))
                return {true, 0};
            if (type == AccessType::Store && !(pte & PTE_W))
                return {true, 0};
            // Superpage alignment check.
            uint64_t ppn = ptePpn(pte);
            uint64_t levelMask = (1ull << (9 * level)) - 1;
            if (ppn & levelMask)
                return {true, 0};
            uint64_t pageOff = va & ((1ull << (kPageShift + 9 * level)) - 1);
            return {false, (ppn << kPageShift) | pageOff};
        }
        tableBase = ptePpn(pte) << kPageShift;
    }
    return {true, 0};
}

GoldenModel::Commit
GoldenModel::trap(Commit c, Cause cause, uint64_t tval)
{
    c.trapped = true;
    c.cause = static_cast<uint64_t>(cause);
    c.hasRd = false;
    csr_.mepc = c.pc;
    csr_.mcause = c.cause;
    csr_.mtval = tval;
    if (csr_.mtvec == 0) {
        cmd::panic("golden hart %u: trap cause %llu at pc %#llx with no "
                   "handler (mtvec=0)", hartId_,
                   (unsigned long long)c.cause, (unsigned long long)c.pc);
    }
    c.nextPc = csr_.mtvec & ~3ull;
    pc_ = c.nextPc;
    instret_++;
    return c;
}

uint64_t
GoldenModel::memLoad(Addr pa, const Inst &inst)
{
    uint64_t raw;
    if (isMmioAddr(pa))
        raw = host_.load(hartId_, pa);
    else
        raw = mem_.read(pa, inst.memBytes());
    return loadExtend(inst.op, raw);
}

void
GoldenModel::memStore(Addr pa, uint64_t v, unsigned bytes)
{
    if (isMmioAddr(pa))
        host_.store(hartId_, pa, v, instret_);
    else
        mem_.write(pa, v, bytes);
}

GoldenModel::Commit
GoldenModel::step()
{
    Commit c;
    c.pc = pc_;

    // Fetch.
    Xlate fx = translate(pc_, AccessType::Fetch);
    if (fx.fault)
        return trap(c, Cause::FetchPageFault, pc_);
    c.raw = static_cast<uint32_t>(mem_.read(fx.pa, 4));
    c.inst = decode(c.raw);
    const Inst &d = c.inst;
    if (d.op == Op::ILLEGAL)
        return trap(c, Cause::IllegalInst, c.raw);

    uint64_t a = regs_[d.rs1];
    uint64_t b = regs_[d.rs2];
    uint64_t nextPc = pc_ + 4;
    uint64_t rdVal = 0;
    bool hasRd = d.writesRd();

    if (d.isBranch()) {
        if (branchTaken(d, a, b))
            nextPc = controlTarget(d, pc_, a);
    } else if (d.isJal() || d.isJalr()) {
        rdVal = pc_ + 4;
        nextPc = controlTarget(d, pc_, a);
    } else if (d.isLoad() || d.isLr()) {
        Addr va = d.isLr() ? a : a + static_cast<uint64_t>(d.imm);
        if (va & (d.memBytes() - 1))
            return trap(c, Cause::LoadMisaligned, va);
        Xlate x = translate(va, AccessType::Load);
        if (x.fault)
            return trap(c, Cause::LoadPageFault, va);
        rdVal = memLoad(x.pa, d);
        if (d.isLr()) {
            hasReservation_ = true;
            reservation_ = x.pa & ~7ull;
        }
    } else if (d.isStore() || d.isSc()) {
        Addr va = d.isSc() ? a : a + static_cast<uint64_t>(d.imm);
        if (va & (d.memBytes() - 1))
            return trap(c, Cause::StoreMisaligned, va);
        Xlate x = translate(va, AccessType::Store);
        if (x.fault)
            return trap(c, Cause::StorePageFault, va);
        if (d.isSc()) {
            bool ok = hasReservation_ && reservation_ == (x.pa & ~7ull);
            hasReservation_ = false;
            if (ok)
                memStore(x.pa, b, d.memBytes());
            rdVal = ok ? 0 : 1;
        } else {
            memStore(x.pa, b, d.memBytes());
        }
    } else if (d.isAmoRmw()) {
        Addr va = a;
        if (va & (d.memBytes() - 1))
            return trap(c, Cause::StoreMisaligned, va);
        Xlate x = translate(va, AccessType::Store);
        if (x.fault)
            return trap(c, Cause::StorePageFault, va);
        uint64_t old = memLoad(x.pa, d);
        memStore(x.pa, amoCompute(d.op, old, b), d.memBytes());
        rdVal = old;
    } else if (d.isCsr()) {
        uint64_t operand = (d.op >= Op::CSRRWI) ? d.rs1 : a;
        uint64_t old = 0;
        if (!csr_.read(d.csr, instret_, instret_, hartId_, old))
            return trap(c, Cause::IllegalInst, c.raw);
        bool doWrite = (d.op == Op::CSRRW || d.op == Op::CSRRWI) ||
                       ((d.op == Op::CSRRS || d.op == Op::CSRRSI ||
                         d.op == Op::CSRRC || d.op == Op::CSRRCI) &&
                        d.rs1 != 0);
        uint64_t newVal = old;
        if (d.op == Op::CSRRW || d.op == Op::CSRRWI)
            newVal = operand;
        else if (d.op == Op::CSRRS || d.op == Op::CSRRSI)
            newVal = old | operand;
        else
            newVal = old & ~operand;
        if (doWrite && !csr_.write(d.csr, newVal))
            return trap(c, Cause::IllegalInst, c.raw);
        rdVal = old;
        c.volatileRd = CsrState::isVolatile(d.csr);
    } else if (d.op == Op::ECALL) {
        return trap(c, Cause::EcallM, 0);
    } else if (d.op == Op::EBREAK) {
        return trap(c, Cause::Breakpoint, 0);
    } else if (d.op == Op::MRET) {
        nextPc = csr_.mepc;
    } else if (d.op == Op::FENCE || d.op == Op::FENCE_I ||
               d.op == Op::WFI) {
        // Architecturally a no-op for a single in-order stream.
    } else {
        rdVal = aluCompute(d, a, b, pc_);
    }

    if (hasRd) {
        setReg(d.rd, rdVal);
        c.hasRd = true;
        c.rd = d.rd;
        c.rdVal = rdVal;
    }
    c.nextPc = nextPc;
    pc_ = nextPc;
    instret_++;
    return c;
}

} // namespace riscy::isa
