#include "isa/golden.hh"

#include <cstring>

#include "core/log.hh"
#include "isa/exec.hh"

namespace riscy::isa {

GoldenModel::GoldenModel(PhysMem &mem, HostDevice &host, uint32_t hartId,
                         Addr resetPc)
    : mem_(mem), host_(host), hartId_(hartId), pc_(resetPc),
      decCache_(kDecEntries)
{
}

void
GoldenModel::setReg(unsigned i, uint64_t v)
{
    if (i != 0)
        regs_[i] = v;
}

ArchState
GoldenModel::archState() const
{
    ArchState as;
    as.regs = regs_;
    as.pc = pc_;
    as.instret = instret_;
    as.csr = csr_;
    return as;
}

void
GoldenModel::setArchState(const ArchState &as)
{
    regs_ = as.regs;
    regs_[0] = 0;
    pc_ = as.pc;
    instret_ = as.instret;
    csr_ = as.csr;
    hasReservation_ = false;
    invalidateFastCaches();
}

void
GoldenModel::invalidateFastCaches()
{
    for (auto &e : decCache_)
        e.tag = ~0ull;
    fetchPg_ = PageCache{};
    loadPg_ = PageCache{};
    storePg_ = PageCache{};
}

GoldenModel::Xlate
GoldenModel::translate(Addr va, AccessType type) const
{
    if (!satpSv39(csr_.satp))
        return {false, va};
    Addr tableBase = satpRoot(csr_.satp);
    for (int level = kSv39Levels - 1; level >= 0; level--) {
        Addr pteAddr = tableBase + vpn(va, level) * 8;
        if (journal_) {
            // Page-table lines are cache traffic too: the detailed
            // walkers read them through the L2 uncached ports.
            Addr ln = pteAddr & ~static_cast<Addr>(63);
            if (ln != lastLd_) {
                journal_->push_back(ln);
                lastLd_ = ln;
            }
        }
        uint64_t pte = mem_.read(pteAddr, 8);
        if (!(pte & PTE_V))
            return {true, 0};
        if (pteLeaf(pte)) {
            // Permission check.
            if (type == AccessType::Fetch && !(pte & PTE_X))
                return {true, 0};
            if (type == AccessType::Load && !(pte & PTE_R))
                return {true, 0};
            if (type == AccessType::Store && !(pte & PTE_W))
                return {true, 0};
            // Superpage alignment check.
            uint64_t ppn = ptePpn(pte);
            uint64_t levelMask = (1ull << (9 * level)) - 1;
            if (ppn & levelMask)
                return {true, 0};
            uint64_t pageOff = va & ((1ull << (kPageShift + 9 * level)) - 1);
            Xlate x;
            x.fault = false;
            x.pa = (ppn << kPageShift) | pageOff;
            x.ppn = ppn;
            x.level = static_cast<uint8_t>(level);
            x.flags = pte & (PTE_R | PTE_W | PTE_X);
            return x;
        }
        tableBase = ptePpn(pte) << kPageShift;
    }
    return {true, 0};
}

bool
GoldenModel::xlatePage(PageCache &pgc, Addr va, AccessType type, Addr &pa)
{
    const uint64_t vaPage = va >> kPageShift;
    if (pgc.vaPage == vaPage) {
        pa = pgc.paPage | (va & (kPageSize - 1));
        return true;
    }
    Xlate x = translate(va, type);
    if (x.fault)
        return false;
    if (xlateJournal_ && satpSv39(csr_.satp)) {
        XlateRec r;
        r.va = va;
        r.ppn = x.ppn;
        r.level = x.level;
        r.flags = x.flags;
        r.type = static_cast<uint8_t>(type);
        xlateJournal_->push_back(r);
    }
    pgc.vaPage = vaPage;
    pgc.paPage = x.pa & ~(kPageSize - 1);
    // MMIO accesses never go through a raw page pointer; the null ptr
    // steers the data path to the HostDevice / PhysMem fallback.
    pgc.ptr = isMmioAddr(x.pa) ? nullptr : mem_.pagePtr(pgc.paPage);
    pa = x.pa;
    return true;
}

GoldenModel::Commit
GoldenModel::trap(Commit c, Cause cause, uint64_t tval)
{
    c.trapped = true;
    c.cause = static_cast<uint64_t>(cause);
    c.hasRd = false;
    csr_.mepc = c.pc;
    csr_.mcause = c.cause;
    csr_.mtval = tval;
    if (csr_.mtvec == 0) {
        cmd::panic("golden hart %u: trap cause %llu at pc %#llx with no "
                   "handler (mtvec=0)", hartId_,
                   (unsigned long long)c.cause, (unsigned long long)c.pc);
    }
    c.nextPc = csr_.mtvec & ~3ull;
    pc_ = c.nextPc;
    instret_++;
    return c;
}

uint64_t
GoldenModel::memLoad(Addr pa, const Inst &inst)
{
    if (journal_ && !isMmioAddr(pa)) {
        Addr ln = pa & ~static_cast<Addr>(63);
        if (ln != lastLd_) {
            journal_->push_back(ln);
            lastLd_ = ln;
        }
        Addr lnEnd = (pa + inst.memBytes() - 1) & ~static_cast<Addr>(63);
        if (lnEnd != ln) // misaligned straddle
            journal_->push_back(lnEnd);
    }
    uint64_t raw;
    if (isMmioAddr(pa))
        raw = host_.load(hartId_, pa, instret_);
    else if (loadPg_.ptr && (pa & ~(kPageSize - 1)) == loadPg_.paPage) {
        raw = 0;
        std::memcpy(&raw, loadPg_.ptr + (pa & (kPageSize - 1)),
                    inst.memBytes());
    } else
        raw = mem_.read(pa, inst.memBytes());
    return loadExtend(inst.op, raw);
}

void
GoldenModel::memStore(Addr pa, uint64_t v, unsigned bytes)
{
    if (isMmioAddr(pa)) {
        host_.store(hartId_, pa, v, instret_);
        return;
    }
    if (journal_) {
        Addr ln = pa & ~static_cast<Addr>(63); // 64 B cache lines
        if (ln != lastSt_) {
            journal_->push_back(ln | kTouchStore);
            lastSt_ = ln;
        }
        Addr lnEnd = (pa + bytes - 1) & ~static_cast<Addr>(63);
        if (lnEnd != ln) // misaligned straddle
            journal_->push_back(lnEnd | kTouchStore);
    }
    if (storePg_.ptr && (pa & ~(kPageSize - 1)) == storePg_.paPage)
        std::memcpy(storePg_.ptr + (pa & (kPageSize - 1)), &v, bytes);
    else
        mem_.write(pa, v, bytes);
}

GoldenModel::Commit
GoldenModel::step()
{
    return stepImpl<true>();
}

uint64_t
GoldenModel::run(uint64_t maxInsts)
{
    uint64_t n = 0;
    while (n < maxInsts && !halted()) {
        stepImpl<false>();
        n++;
    }
    return n;
}

template <bool kRecord>
GoldenModel::Commit
GoldenModel::stepImpl()
{
    Commit c;
    c.pc = pc_; // trap() records it as mepc even on the fast path

    // Fetch through the page-translation and decode caches.
    Addr fpa;
    if (!xlatePage(fetchPg_, pc_, AccessType::Fetch, fpa))
        return trap(c, Cause::FetchPageFault, pc_);
    if (journal_) {
        // Journal the fetch line even on decode-cache hits: the hit
        // elides the memory read, not the icache-warming effect.
        Addr ln = fpa & ~static_cast<Addr>(63);
        if (ln != lastIf_) {
            journal_->push_back(ln | kTouchFetch);
            lastIf_ = ln;
        }
    }
    DecEntry &de = decCache_[(fpa >> 2) & (kDecEntries - 1)];
    fastStats_.decodeAccesses++;
    if (de.tag != fpa) {
        uint32_t raw;
        if (fetchPg_.ptr && !(fpa & 3))
            std::memcpy(&raw, fetchPg_.ptr + (fpa & (kPageSize - 1)), 4);
        else
            raw = static_cast<uint32_t>(mem_.read(fpa, 4));
        de.inst = decode(raw);
        de.inst.raw = raw;
        de.tag = fpa;
    } else {
        fastStats_.decodeHits++;
    }
    const Inst &d = de.inst;
    if constexpr (kRecord) {
        c.raw = d.raw;
        c.inst = d;
    }
    if (d.op == Op::ILLEGAL) {
        c.raw = d.raw;
        return trap(c, Cause::IllegalInst, d.raw);
    }

    uint64_t a = regs_[d.rs1];
    uint64_t b = regs_[d.rs2];
    uint64_t nextPc = pc_ + 4;
    uint64_t rdVal = 0;
    bool hasRd = d.writesRd();

    if (d.isBranch()) {
        bool taken = branchTaken(d, a, b);
        if (taken)
            nextPc = controlTarget(d, pc_, a);
        if (branchJournal_) {
            BranchRec r;
            r.pc = pc_;
            r.target = nextPc;
            r.kind = BranchRec::Branch;
            r.taken = taken;
            branchJournal_->push_back(r);
        }
    } else if (d.isJal() || d.isJalr()) {
        rdVal = pc_ + 4;
        nextPc = controlTarget(d, pc_, a);
        if (branchJournal_) {
            BranchRec r;
            r.pc = pc_;
            r.target = nextPc;
            r.kind = d.isJal() ? BranchRec::Jal : BranchRec::Jalr;
            r.taken = true;
            r.rs1 = d.rs1;
            r.rd = d.rd;
            branchJournal_->push_back(r);
        }
    } else if (d.isLoad() || d.isLr()) {
        Addr va = d.isLr() ? a : a + static_cast<uint64_t>(d.imm);
        if (va & (d.memBytes() - 1))
            return trap(c, Cause::LoadMisaligned, va);
        Addr pa;
        if (!xlatePage(loadPg_, va, AccessType::Load, pa))
            return trap(c, Cause::LoadPageFault, va);
        rdVal = memLoad(pa, d);
        if (d.isLr()) {
            hasReservation_ = true;
            reservation_ = pa & ~7ull;
        }
    } else if (d.isStore() || d.isSc()) {
        Addr va = d.isSc() ? a : a + static_cast<uint64_t>(d.imm);
        if (va & (d.memBytes() - 1))
            return trap(c, Cause::StoreMisaligned, va);
        Addr pa;
        if (!xlatePage(storePg_, va, AccessType::Store, pa))
            return trap(c, Cause::StorePageFault, va);
        if (d.isSc()) {
            bool ok = hasReservation_ && reservation_ == (pa & ~7ull);
            hasReservation_ = false;
            if (ok)
                memStore(pa, b, d.memBytes());
            rdVal = ok ? 0 : 1;
        } else {
            memStore(pa, b, d.memBytes());
        }
    } else if (d.isAmoRmw()) {
        Addr va = a;
        if (va & (d.memBytes() - 1))
            return trap(c, Cause::StoreMisaligned, va);
        Addr pa;
        if (!xlatePage(storePg_, va, AccessType::Store, pa))
            return trap(c, Cause::StorePageFault, va);
        uint64_t old = memLoad(pa, d);
        memStore(pa, amoCompute(d.op, old, b), d.memBytes());
        rdVal = old;
    } else if (d.isCsr()) {
        uint64_t operand = (d.op >= Op::CSRRWI) ? d.rs1 : a;
        uint64_t old = 0;
        if (!csr_.read(d.csr, instret_, instret_, hartId_, old))
            return trap(c, Cause::IllegalInst, d.raw);
        bool doWrite = (d.op == Op::CSRRW || d.op == Op::CSRRWI) ||
                       ((d.op == Op::CSRRS || d.op == Op::CSRRSI ||
                         d.op == Op::CSRRC || d.op == Op::CSRRCI) &&
                        d.rs1 != 0);
        uint64_t newVal = old;
        if (d.op == Op::CSRRW || d.op == Op::CSRRWI)
            newVal = operand;
        else if (d.op == Op::CSRRS || d.op == Op::CSRRSI)
            newVal = old | operand;
        else
            newVal = old & ~operand;
        if (doWrite) {
            if (!csr_.write(d.csr, newVal))
                return trap(c, Cause::IllegalInst, d.raw);
            // A satp write retargets translation: drop the page
            // caches, matching the detailed cores' TLB flush.
            if (d.csr == kCsrSatp) {
                fetchPg_ = PageCache{};
                loadPg_ = PageCache{};
                storePg_ = PageCache{};
            }
        }
        rdVal = old;
        if constexpr (kRecord)
            c.volatileRd = CsrState::isVolatile(d.csr);
    } else if (d.op == Op::ECALL) {
        return trap(c, Cause::EcallM, 0);
    } else if (d.op == Op::EBREAK) {
        return trap(c, Cause::Breakpoint, 0);
    } else if (d.op == Op::MRET) {
        nextPc = csr_.mepc;
    } else if (d.op == Op::FENCE || d.op == Op::WFI) {
        // Architecturally a no-op for a single in-order stream.
    } else if (d.op == Op::FENCE_I) {
        // Synchronize the instruction stream with prior stores: the
        // only event that may invalidate cached decodes.
        for (auto &e : decCache_)
            e.tag = ~0ull;
    } else {
        rdVal = aluCompute(d, a, b, pc_);
    }

    if (hasRd) {
        regs_[d.rd] = rdVal;
        if constexpr (kRecord) {
            c.hasRd = true;
            c.rd = d.rd;
            c.rdVal = rdVal;
        }
    }
    if constexpr (kRecord)
        c.nextPc = nextPc;
    pc_ = nextPc;
    instret_++;
    return c;
}

template GoldenModel::Commit GoldenModel::stepImpl<true>();
template GoldenModel::Commit GoldenModel::stepImpl<false>();

} // namespace riscy::isa
