/**
 * @file
 * RV64IMA (+Zicsr) instruction definitions and the decoder.
 *
 * One Op value per architectural operation; Inst carries the decoded
 * fields every pipeline stage needs. The same decode() feeds the OOO
 * core, the in-order baseline, and the golden model.
 */
#pragma once

#include <cstdint>
#include <string>

namespace riscy::isa {

enum class Op : uint8_t {
    // RV64I
    LUI, AUIPC, JAL, JALR,
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    LB, LH, LW, LD, LBU, LHU, LWU,
    SB, SH, SW, SD,
    ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
    ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
    ADDIW, SLLIW, SRLIW, SRAIW, ADDW, SUBW, SLLW, SRLW, SRAW,
    FENCE, FENCE_I,
    ECALL, EBREAK, MRET, WFI,
    CSRRW, CSRRS, CSRRC, CSRRWI, CSRRSI, CSRRCI,
    // RV64M
    MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
    MULW, DIVW, DIVUW, REMW, REMUW,
    // RV64A
    LR_W, SC_W, LR_D, SC_D,
    AMOSWAP_W, AMOADD_W, AMOXOR_W, AMOAND_W, AMOOR_W,
    AMOMIN_W, AMOMAX_W, AMOMINU_W, AMOMAXU_W,
    AMOSWAP_D, AMOADD_D, AMOXOR_D, AMOAND_D, AMOOR_D,
    AMOMIN_D, AMOMAX_D, AMOMINU_D, AMOMAXU_D,
    ILLEGAL,
};

/** A decoded instruction. */
struct Inst {
    Op op = Op::ILLEGAL;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;
    uint16_t csr = 0;   ///< CSR address for Zicsr ops
    uint32_t raw = 0;   ///< original encoding

    bool isBranch() const { return op >= Op::BEQ && op <= Op::BGEU; }
    bool isJal() const { return op == Op::JAL; }
    bool isJalr() const { return op == Op::JALR; }
    bool isControlFlow() const { return isBranch() || isJal() || isJalr(); }
    bool isLoad() const { return op >= Op::LB && op <= Op::LWU; }
    bool isStore() const { return op >= Op::SB && op <= Op::SD; }
    bool isLr() const { return op == Op::LR_W || op == Op::LR_D; }
    bool isSc() const { return op == Op::SC_W || op == Op::SC_D; }
    bool isAmoRmw() const
    {
        return op >= Op::AMOSWAP_W && op <= Op::AMOMAXU_D;
    }
    /** Any A-extension access (LR/SC/AMO). */
    bool isAtomic() const { return isLr() || isSc() || isAmoRmw(); }
    /** Any instruction that occupies an LSQ slot. */
    bool isMem() const { return isLoad() || isStore() || isAtomic(); }
    /** Occupies a load-queue slot (loads and LR). */
    bool isLq() const { return isLoad() || isLr(); }
    /** Occupies a store-queue slot (stores, SC, AMO read-modify-write). */
    bool isSq() const { return isStore() || isSc() || isAmoRmw(); }
    bool isFence() const { return op == Op::FENCE || op == Op::FENCE_I; }
    bool isCsr() const { return op >= Op::CSRRW && op <= Op::CSRRCI; }
    bool isSystem() const
    {
        return op == Op::ECALL || op == Op::EBREAK || op == Op::MRET ||
               op == Op::WFI || isCsr() || isFence();
    }
    bool isMulDiv() const { return op >= Op::MUL && op <= Op::REMUW; }
    bool isDiv() const
    {
        return op == Op::DIV || op == Op::DIVU || op == Op::REM ||
               op == Op::REMU || op == Op::DIVW || op == Op::DIVUW ||
               op == Op::REMW || op == Op::REMUW;
    }

    /** Memory access size in bytes (loads/stores/atomics). */
    unsigned
    memBytes() const
    {
        switch (op) {
          case Op::LB: case Op::LBU: case Op::SB:
            return 1;
          case Op::LH: case Op::LHU: case Op::SH:
            return 2;
          case Op::LW: case Op::LWU: case Op::SW:
          case Op::LR_W: case Op::SC_W:
            return 4;
          default:
            if (isAmoRmw())
                return (op >= Op::AMOSWAP_D) ? 8 : 4;
            return 8;
        }
    }

    bool
    writesRd() const
    {
        if (rd == 0)
            return false;
        return !(isBranch() || isStore() || isFence() || op == Op::ECALL ||
                 op == Op::EBREAK || op == Op::MRET || op == Op::WFI ||
                 op == Op::ILLEGAL);
    }

    bool
    readsRs1() const
    {
        switch (op) {
          case Op::LUI: case Op::AUIPC: case Op::JAL: case Op::FENCE:
          case Op::FENCE_I: case Op::ECALL: case Op::EBREAK: case Op::MRET:
          case Op::WFI: case Op::CSRRWI: case Op::CSRRSI: case Op::CSRRCI:
          case Op::ILLEGAL:
            return false;
          default:
            return rs1 != 0;
        }
    }

    bool
    readsRs2() const
    {
        if (isBranch() || isStore() || isSc() || isAmoRmw())
            return rs2 != 0;
        switch (op) {
          case Op::ADD: case Op::SUB: case Op::SLL: case Op::SLT:
          case Op::SLTU: case Op::XOR: case Op::SRL: case Op::SRA:
          case Op::OR: case Op::AND: case Op::ADDW: case Op::SUBW:
          case Op::SLLW: case Op::SRLW: case Op::SRAW:
            return rs2 != 0;
          default:
            return isMulDiv() && rs2 != 0;
        }
    }

    bool operator==(const Inst &o) const
    {
        return op == o.op && rd == o.rd && rs1 == o.rs1 && rs2 == o.rs2 &&
               imm == o.imm && csr == o.csr;
    }
};

/** Decode a 32-bit RV64IMA+Zicsr encoding. */
Inst decode(uint32_t raw);

/** One-line disassembly for traces and test messages. */
std::string disasm(const Inst &inst);

/** Printable mnemonic of an Op. */
const char *opName(Op op);

} // namespace riscy::isa
