/**
 * @file
 * GoldenModel: an architectural RV64IMA interpreter, playing the role
 * Spike plays for RiscyOO — the oracle that every core model is
 * co-simulated against (commit-by-commit) in the test suite.
 */
#pragma once

#include <array>
#include <cstdint>

#include "isa/csr.hh"
#include "isa/inst.hh"
#include "isa/sv39.hh"
#include "mem/memory.hh"

namespace riscy::isa {

class GoldenModel
{
  public:
    GoldenModel(PhysMem &mem, HostDevice &host, uint32_t hartId,
                Addr resetPc);

    /** Result of retiring one instruction. */
    struct Commit {
        uint64_t pc = 0;
        uint32_t raw = 0;
        Inst inst;
        bool hasRd = false;
        uint8_t rd = 0;
        uint64_t rdVal = 0;
        /** rdVal depends on the timing model (cycle CSR, etc.). */
        bool volatileRd = false;
        bool trapped = false;
        uint64_t cause = 0;
        uint64_t nextPc = 0;
    };

    /** Execute and retire exactly one instruction. */
    Commit step();

    bool halted() const { return host_.exited(hartId_); }

    uint64_t pc() const { return pc_; }
    void setPc(uint64_t pc) { pc_ = pc; }
    uint64_t reg(unsigned i) const { return regs_[i]; }
    void setReg(unsigned i, uint64_t v);
    uint64_t instret() const { return instret_; }
    const CsrState &csrs() const { return csr_; }
    CsrState &csrs() { return csr_; }

    /** Sv39 translation result. */
    struct Xlate {
        bool fault = false;
        Addr pa = 0;
    };
    /** Translate @p va for @p type under the current satp. */
    Xlate translate(Addr va, AccessType type) const;

  private:
    Commit trap(Commit c, Cause cause, uint64_t tval);
    uint64_t memLoad(Addr pa, const Inst &inst);
    void memStore(Addr pa, uint64_t v, unsigned bytes);

    PhysMem &mem_;
    HostDevice &host_;
    uint32_t hartId_;
    uint64_t pc_;
    std::array<uint64_t, 32> regs_{};
    CsrState csr_;
    uint64_t instret_ = 0;
    bool hasReservation_ = false;
    Addr reservation_ = 0;
};

} // namespace riscy::isa
