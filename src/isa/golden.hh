/**
 * @file
 * GoldenModel: an architectural RV64IMA interpreter, playing the role
 * Spike plays for RiscyOO — the oracle that every core model is
 * co-simulated against (commit-by-commit) in the test suite, and the
 * engine behind the fast-forward execution mode (ExecMode in
 * proc/config.hh).
 *
 * The hot loop is accelerated by three caches, all architecturally
 * transparent:
 *
 *  - a direct-mapped decoded-instruction cache keyed by fetch PA
 *    (flushed by FENCE.I, per the ISA's self-modifying-code contract);
 *  - one-entry page-granular translation caches for fetch, load and
 *    store streams (flushed on any satp write, the same convention the
 *    detailed cores' TLBs follow — there is no SFENCE.VMA in this
 *    subset);
 *  - cached PhysMem page pointers alongside those translations, so a
 *    hit costs one tag compare and one memcpy instead of a hash-map
 *    walk per access.
 *
 * step() retires one instruction and returns a full Commit record (the
 * cosim interface); run() retires up to N instructions through the
 * same semantics without materializing records — the multi-MIPS
 * fast-forward loop.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/csr.hh"
#include "isa/inst.hh"
#include "isa/sv39.hh"
#include "mem/memory.hh"

namespace riscy::isa {

/**
 * The complete architectural state of one hart, as transferred on a
 * fast-forward <-> detailed handoff (proc/sampling.hh). Memory and the
 * host device travel separately (they are shared, not per-hart).
 */
struct ArchState {
    std::array<uint64_t, 32> regs{};
    uint64_t pc = 0;
    uint64_t instret = 0;
    CsrState csr;
};

class GoldenModel
{
  public:
    GoldenModel(PhysMem &mem, HostDevice &host, uint32_t hartId,
                Addr resetPc);

    /** Result of retiring one instruction. */
    struct Commit {
        uint64_t pc = 0;
        uint32_t raw = 0;
        Inst inst;
        bool hasRd = false;
        uint8_t rd = 0;
        uint64_t rdVal = 0;
        /** rdVal depends on the timing model (cycle CSR, etc.). */
        bool volatileRd = false;
        bool trapped = false;
        uint64_t cause = 0;
        uint64_t nextPc = 0;
    };

    /** Execute and retire exactly one instruction. */
    Commit step();

    /**
     * Execute and retire up to @p maxInsts instructions in a tight
     * loop (no Commit materialization), stopping early when the hart
     * exits via the host device. @return instructions retired.
     */
    uint64_t run(uint64_t maxInsts);

    bool halted() const { return host_.exited(hartId_); }

    uint64_t pc() const { return pc_; }
    void setPc(uint64_t pc) { pc_ = pc; }
    uint64_t reg(unsigned i) const { return regs_[i]; }
    void setReg(unsigned i, uint64_t v);
    uint64_t instret() const { return instret_; }
    void setInstret(uint64_t n) { instret_ = n; }
    const CsrState &csrs() const { return csr_; }
    CsrState &csrs() { return csr_; }

    /** Copy out / replace the full per-hart architectural state. */
    ArchState archState() const;
    void setArchState(const ArchState &as);

    /**
     * Drop every cached decode entry, translation and page pointer.
     * Must be called when the underlying PhysMem is replaced behind
     * the model's back (deserialize, copy-assignment from a shadow) —
     * cached page pointers would dangle otherwise.
     */
    void invalidateFastCaches();

    /** Touch-journal flag bits, OR-ed into the 64-byte-aligned line
     *  address (whose low six bits are free). No flag = data load. */
    static constexpr uint64_t kTouchStore = 1;
    static constexpr uint64_t kTouchFetch = 2;

    /** One recorded leaf translation (for functional TLB warming). */
    struct XlateRec {
        Addr va = 0;
        uint64_t ppn = 0;
        uint8_t level = 0; ///< leaf level (0 = 4K, 1 = 2M, 2 = 1G)
        uint8_t flags = 0; ///< PTE R/W/X bits
        uint8_t type = 0;  ///< AccessType
    };

    /** One resolved control transfer (for predictor warming). */
    struct BranchRec {
        enum Kind : uint8_t { Branch = 0, Jal = 1, Jalr = 2 };
        uint64_t pc = 0;
        uint64_t target = 0; ///< actual next PC
        uint8_t kind = 0;
        bool taken = false;  ///< always true for Jal/Jalr
        uint8_t rs1 = 0, rd = 0; ///< RAS call/return discrimination
    };

    /**
     * Record every cache line the model touches — instruction fetch,
     * data load (including page-table-walk reads), store / SC / AMO;
     * MMIO excluded — into @p journal in program order as
     * (line | kTouch* flags). A sampled warm handoff replays the
     * journal into the detailed cache models (SMARTS-style functional
     * warming) and re-syncs the stored-to lines' cached data
     * (System::runSampled). Consecutive repeats of the same line
     * within one access kind collapse to one entry; callers still
     * dedupe across the whole journal where order doesn't matter.
     * nullptr disables.
     */
    void
    setTouchJournal(std::vector<uint64_t> *journal)
    {
        journal_ = journal;
        lastSt_ = lastLd_ = lastIf_ = ~0ull;
    }

    /**
     * Record every leaf translation installed into the page caches
     * (fetch/load/store page changes) — the TLB-warming companion of
     * the touch journal. Replay with OooCore/InOrderCore::warmTlbs.
     * nullptr disables.
     */
    void setXlateJournal(std::vector<XlateRec> *j) { xlateJournal_ = j; }

    /**
     * Record every executed control transfer (branch direction and
     * target, JAL/JALR with their RAS-relevant registers) in program
     * order — the predictor-warming companion of the touch journal.
     * Replay with OooCore/InOrderCore::warmPredictors. nullptr
     * disables.
     */
    void setBranchJournal(std::vector<BranchRec> *j) { branchJournal_ = j; }

    /** Decoded-instruction-cache effectiveness counters. */
    struct FastStats {
        uint64_t decodeAccesses = 0;
        uint64_t decodeHits = 0;
        double
        hitRate() const
        {
            return decodeAccesses
                       ? double(decodeHits) / double(decodeAccesses)
                       : 0.0;
        }
    };
    const FastStats &fastStats() const { return fastStats_; }

    /** Sv39 translation result. */
    struct Xlate {
        bool fault = false;
        Addr pa = 0;
        // Leaf PTE details (valid when !fault), for TLB warming.
        uint64_t ppn = 0;
        uint8_t level = 0;
        uint8_t flags = 0;
    };
    /** Translate @p va for @p type under the current satp. */
    Xlate translate(Addr va, AccessType type) const;

  private:
    /** One way of the direct-mapped decode cache, tagged by fetch PA. */
    struct DecEntry {
        uint64_t tag = ~0ull;
        Inst inst;
    };
    /** One-entry page-granular translation + page-pointer cache. */
    struct PageCache {
        uint64_t vaPage = ~0ull;
        uint64_t paPage = 0;
        uint8_t *ptr = nullptr;
    };

    static constexpr size_t kDecEntries = 8192; ///< power of two

    template <bool kRecord> Commit stepImpl();
    Commit trap(Commit c, Cause cause, uint64_t tval);
    uint64_t memLoad(Addr pa, const Inst &inst);
    void memStore(Addr pa, uint64_t v, unsigned bytes);
    /** Translate one page through @p pgc, filling it on a hit-capable
     *  miss. @return false on a page fault (pgc untouched). */
    bool xlatePage(PageCache &pgc, Addr va, AccessType type, Addr &pa);

    PhysMem &mem_;
    HostDevice &host_;
    uint32_t hartId_;
    uint64_t pc_;
    std::array<uint64_t, 32> regs_{};
    CsrState csr_;
    uint64_t instret_ = 0;
    bool hasReservation_ = false;
    Addr reservation_ = 0;

    std::vector<DecEntry> decCache_;
    PageCache fetchPg_, loadPg_, storePg_;
    FastStats fastStats_;
    // Warm-handoff journals (mutable: translate() is const but its
    // page-table reads are real line touches the handoff must replay).
    mutable std::vector<uint64_t> *journal_ = nullptr;
    mutable Addr lastSt_ = ~0ull, lastLd_ = ~0ull, lastIf_ = ~0ull;
    std::vector<XlateRec> *xlateJournal_ = nullptr;
    std::vector<BranchRec> *branchJournal_ = nullptr;
};

} // namespace riscy::isa
