#include "isa/inst.hh"

#include <cstdio>

namespace riscy::isa {

namespace {

inline uint32_t
bits(uint32_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((1u << (hi - lo + 1)) - 1);
}

inline int64_t
signExtend(uint64_t v, unsigned width)
{
    uint64_t m = 1ull << (width - 1);
    return static_cast<int64_t>((v ^ m) - m);
}

int64_t
immI(uint32_t raw)
{
    return signExtend(bits(raw, 31, 20), 12);
}

int64_t
immS(uint32_t raw)
{
    return signExtend((bits(raw, 31, 25) << 5) | bits(raw, 11, 7), 12);
}

int64_t
immB(uint32_t raw)
{
    uint64_t v = (bits(raw, 31, 31) << 12) | (bits(raw, 7, 7) << 11) |
                 (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1);
    return signExtend(v, 13);
}

int64_t
immU(uint32_t raw)
{
    return signExtend(bits(raw, 31, 12) << 12, 32);
}

int64_t
immJ(uint32_t raw)
{
    uint64_t v = (bits(raw, 31, 31) << 20) | (bits(raw, 19, 12) << 12) |
                 (bits(raw, 20, 20) << 11) | (bits(raw, 30, 21) << 1);
    return signExtend(v, 21);
}

} // namespace

Inst
decode(uint32_t raw)
{
    Inst d;
    d.raw = raw;
    d.rd = bits(raw, 11, 7);
    d.rs1 = bits(raw, 19, 15);
    d.rs2 = bits(raw, 24, 20);
    uint32_t opcode = bits(raw, 6, 0);
    uint32_t f3 = bits(raw, 14, 12);
    uint32_t f7 = bits(raw, 31, 25);

    switch (opcode) {
      case 0x37:
        d.op = Op::LUI;
        d.imm = immU(raw);
        break;
      case 0x17:
        d.op = Op::AUIPC;
        d.imm = immU(raw);
        break;
      case 0x6f:
        d.op = Op::JAL;
        d.imm = immJ(raw);
        break;
      case 0x67:
        d.op = f3 == 0 ? Op::JALR : Op::ILLEGAL;
        d.imm = immI(raw);
        break;
      case 0x63: {
        static const Op ops[8] = {Op::BEQ, Op::BNE, Op::ILLEGAL,
                                  Op::ILLEGAL, Op::BLT, Op::BGE, Op::BLTU,
                                  Op::BGEU};
        d.op = ops[f3];
        d.imm = immB(raw);
        break;
      }
      case 0x03: {
        static const Op ops[8] = {Op::LB, Op::LH, Op::LW, Op::LD, Op::LBU,
                                  Op::LHU, Op::LWU, Op::ILLEGAL};
        d.op = ops[f3];
        d.imm = immI(raw);
        break;
      }
      case 0x23: {
        static const Op ops[8] = {Op::SB, Op::SH, Op::SW, Op::SD,
                                  Op::ILLEGAL, Op::ILLEGAL, Op::ILLEGAL,
                                  Op::ILLEGAL};
        d.op = ops[f3];
        d.imm = immS(raw);
        break;
      }
      case 0x13: // OP-IMM
        d.imm = immI(raw);
        switch (f3) {
          case 0:
            d.op = Op::ADDI;
            break;
          case 1:
            d.op = bits(raw, 31, 26) == 0 ? Op::SLLI : Op::ILLEGAL;
            d.imm = bits(raw, 25, 20);
            break;
          case 2:
            d.op = Op::SLTI;
            break;
          case 3:
            d.op = Op::SLTIU;
            break;
          case 4:
            d.op = Op::XORI;
            break;
          case 5:
            if (bits(raw, 31, 26) == 0)
                d.op = Op::SRLI;
            else if (bits(raw, 31, 26) == 0x10)
                d.op = Op::SRAI;
            else
                d.op = Op::ILLEGAL;
            d.imm = bits(raw, 25, 20);
            break;
          case 6:
            d.op = Op::ORI;
            break;
          case 7:
            d.op = Op::ANDI;
            break;
        }
        break;
      case 0x1b: // OP-IMM-32
        d.imm = immI(raw);
        switch (f3) {
          case 0:
            d.op = Op::ADDIW;
            break;
          case 1:
            d.op = f7 == 0 ? Op::SLLIW : Op::ILLEGAL;
            d.imm = bits(raw, 24, 20);
            break;
          case 5:
            if (f7 == 0)
                d.op = Op::SRLIW;
            else if (f7 == 0x20)
                d.op = Op::SRAIW;
            else
                d.op = Op::ILLEGAL;
            d.imm = bits(raw, 24, 20);
            break;
          default:
            d.op = Op::ILLEGAL;
            break;
        }
        break;
      case 0x33: // OP
        if (f7 == 0x01) {
            static const Op ops[8] = {Op::MUL, Op::MULH, Op::MULHSU,
                                      Op::MULHU, Op::DIV, Op::DIVU,
                                      Op::REM, Op::REMU};
            d.op = ops[f3];
        } else if (f7 == 0) {
            static const Op ops[8] = {Op::ADD, Op::SLL, Op::SLT, Op::SLTU,
                                      Op::XOR, Op::SRL, Op::OR, Op::AND};
            d.op = ops[f3];
        } else if (f7 == 0x20) {
            d.op = f3 == 0 ? Op::SUB : (f3 == 5 ? Op::SRA : Op::ILLEGAL);
        } else {
            d.op = Op::ILLEGAL;
        }
        break;
      case 0x3b: // OP-32
        if (f7 == 0x01) {
            static const Op ops[8] = {Op::MULW, Op::ILLEGAL, Op::ILLEGAL,
                                      Op::ILLEGAL, Op::DIVW, Op::DIVUW,
                                      Op::REMW, Op::REMUW};
            d.op = ops[f3];
        } else if (f7 == 0) {
            static const Op ops[8] = {Op::ADDW, Op::SLLW, Op::ILLEGAL,
                                      Op::ILLEGAL, Op::ILLEGAL, Op::SRLW,
                                      Op::ILLEGAL, Op::ILLEGAL};
            d.op = ops[f3];
        } else if (f7 == 0x20) {
            d.op = f3 == 0 ? Op::SUBW : (f3 == 5 ? Op::SRAW : Op::ILLEGAL);
        } else {
            d.op = Op::ILLEGAL;
        }
        break;
      case 0x0f:
        d.op = f3 == 0 ? Op::FENCE : (f3 == 1 ? Op::FENCE_I : Op::ILLEGAL);
        break;
      case 0x73: // SYSTEM
        if (f3 == 0) {
            if (raw == 0x00000073)
                d.op = Op::ECALL;
            else if (raw == 0x00100073)
                d.op = Op::EBREAK;
            else if (raw == 0x30200073)
                d.op = Op::MRET;
            else if (raw == 0x10500073)
                d.op = Op::WFI;
            else
                d.op = Op::ILLEGAL;
        } else {
            static const Op ops[8] = {Op::ILLEGAL, Op::CSRRW, Op::CSRRS,
                                      Op::CSRRC, Op::ILLEGAL, Op::CSRRWI,
                                      Op::CSRRSI, Op::CSRRCI};
            d.op = ops[f3];
            d.csr = static_cast<uint16_t>(bits(raw, 31, 20));
            if (f3 >= 5)
                d.imm = d.rs1; // zimm
        }
        break;
      case 0x2f: { // AMO
        uint32_t f5 = bits(raw, 31, 27);
        bool isD = f3 == 3;
        if (f3 != 2 && f3 != 3) {
            d.op = Op::ILLEGAL;
            break;
        }
        switch (f5) {
          case 0x02:
            d.op = d.rs2 == 0 ? (isD ? Op::LR_D : Op::LR_W) : Op::ILLEGAL;
            break;
          case 0x03:
            d.op = isD ? Op::SC_D : Op::SC_W;
            break;
          case 0x01:
            d.op = isD ? Op::AMOSWAP_D : Op::AMOSWAP_W;
            break;
          case 0x00:
            d.op = isD ? Op::AMOADD_D : Op::AMOADD_W;
            break;
          case 0x04:
            d.op = isD ? Op::AMOXOR_D : Op::AMOXOR_W;
            break;
          case 0x0c:
            d.op = isD ? Op::AMOAND_D : Op::AMOAND_W;
            break;
          case 0x08:
            d.op = isD ? Op::AMOOR_D : Op::AMOOR_W;
            break;
          case 0x10:
            d.op = isD ? Op::AMOMIN_D : Op::AMOMIN_W;
            break;
          case 0x14:
            d.op = isD ? Op::AMOMAX_D : Op::AMOMAX_W;
            break;
          case 0x18:
            d.op = isD ? Op::AMOMINU_D : Op::AMOMINU_W;
            break;
          case 0x1c:
            d.op = isD ? Op::AMOMAXU_D : Op::AMOMAXU_W;
            break;
          default:
            d.op = Op::ILLEGAL;
            break;
        }
        break;
      }
      default:
        d.op = Op::ILLEGAL;
        break;
    }
    if (d.op == Op::ILLEGAL) {
        d.rd = d.rs1 = d.rs2 = 0;
        d.imm = 0;
    }
    // The rd field bits of S-/B-type encodings are immediate bits;
    // clear them so downstream consumers never see a phantom dest.
    if (d.isStore() || d.isBranch())
        d.rd = 0;
    return d;
}

const char *
opName(Op op)
{
    static const char *names[] = {
        "lui", "auipc", "jal", "jalr",
        "beq", "bne", "blt", "bge", "bltu", "bgeu",
        "lb", "lh", "lw", "ld", "lbu", "lhu", "lwu",
        "sb", "sh", "sw", "sd",
        "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli",
        "srai",
        "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or",
        "and",
        "addiw", "slliw", "srliw", "sraiw", "addw", "subw", "sllw", "srlw",
        "sraw",
        "fence", "fence.i",
        "ecall", "ebreak", "mret", "wfi",
        "csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci",
        "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
        "mulw", "divw", "divuw", "remw", "remuw",
        "lr.w", "sc.w", "lr.d", "sc.d",
        "amoswap.w", "amoadd.w", "amoxor.w", "amoand.w", "amoor.w",
        "amomin.w", "amomax.w", "amominu.w", "amomaxu.w",
        "amoswap.d", "amoadd.d", "amoxor.d", "amoand.d", "amoor.d",
        "amomin.d", "amomax.d", "amominu.d", "amomaxu.d",
        "illegal",
    };
    return names[static_cast<unsigned>(op)];
}

std::string
disasm(const Inst &inst)
{
    char buf[96];
    if (inst.isCsr()) {
        std::snprintf(buf, sizeof(buf), "%s x%u, %#x, x%u", opName(inst.op),
                      inst.rd, inst.csr, inst.rs1);
    } else if (inst.isBranch() || inst.isStore()) {
        std::snprintf(buf, sizeof(buf), "%s x%u, x%u, %lld",
                      opName(inst.op), inst.rs1, inst.rs2,
                      (long long)inst.imm);
    } else {
        std::snprintf(buf, sizeof(buf), "%s x%u, x%u, x%u, %lld",
                      opName(inst.op), inst.rd, inst.rs1, inst.rs2,
                      (long long)inst.imm);
    }
    return buf;
}

} // namespace riscy::isa
