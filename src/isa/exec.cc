#include "isa/exec.hh"

#include "core/log.hh"

namespace riscy::isa {

namespace {

inline uint64_t
sext32(uint64_t v)
{
    return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(v)));
}

inline int64_t s64(uint64_t v) { return static_cast<int64_t>(v); }

uint64_t
mulh(int64_t a, int64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<__int128>(a) * static_cast<__int128>(b)) >> 64);
}

uint64_t
mulhsu(int64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<__int128>(a) * static_cast<unsigned __int128>(b)) >>
        64);
}

uint64_t
mulhu(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) *
         static_cast<unsigned __int128>(b)) >> 64);
}

} // namespace

uint64_t
aluCompute(const Inst &inst, uint64_t a, uint64_t b, uint64_t pc)
{
    int64_t imm = inst.imm;
    switch (inst.op) {
      case Op::LUI:
        return static_cast<uint64_t>(imm);
      case Op::AUIPC:
        return pc + static_cast<uint64_t>(imm);
      case Op::JAL:
      case Op::JALR:
        return pc + 4; // link value
      case Op::ADDI:
        return a + imm;
      case Op::SLTI:
        return s64(a) < imm ? 1 : 0;
      case Op::SLTIU:
        return a < static_cast<uint64_t>(imm) ? 1 : 0;
      case Op::XORI:
        return a ^ imm;
      case Op::ORI:
        return a | imm;
      case Op::ANDI:
        return a & imm;
      case Op::SLLI:
        return a << (imm & 63);
      case Op::SRLI:
        return a >> (imm & 63);
      case Op::SRAI:
        return static_cast<uint64_t>(s64(a) >> (imm & 63));
      case Op::ADD:
        return a + b;
      case Op::SUB:
        return a - b;
      case Op::SLL:
        return a << (b & 63);
      case Op::SLT:
        return s64(a) < s64(b) ? 1 : 0;
      case Op::SLTU:
        return a < b ? 1 : 0;
      case Op::XOR:
        return a ^ b;
      case Op::SRL:
        return a >> (b & 63);
      case Op::SRA:
        return static_cast<uint64_t>(s64(a) >> (b & 63));
      case Op::OR:
        return a | b;
      case Op::AND:
        return a & b;
      case Op::ADDIW:
        return sext32(a + imm);
      case Op::SLLIW:
        return sext32(a << (imm & 31));
      case Op::SRLIW:
        return sext32(static_cast<uint32_t>(a) >> (imm & 31));
      case Op::SRAIW:
        return sext32(
            static_cast<uint64_t>(static_cast<int32_t>(a) >> (imm & 31)));
      case Op::ADDW:
        return sext32(a + b);
      case Op::SUBW:
        return sext32(a - b);
      case Op::SLLW:
        return sext32(a << (b & 31));
      case Op::SRLW:
        return sext32(static_cast<uint32_t>(a) >> (b & 31));
      case Op::SRAW:
        return sext32(
            static_cast<uint64_t>(static_cast<int32_t>(a) >> (b & 31)));
      case Op::MUL:
        return a * b;
      case Op::MULH:
        return mulh(s64(a), s64(b));
      case Op::MULHSU:
        return mulhsu(s64(a), b);
      case Op::MULHU:
        return mulhu(a, b);
      case Op::DIV:
        if (b == 0)
            return ~0ull;
        if (s64(a) == INT64_MIN && s64(b) == -1)
            return a;
        return static_cast<uint64_t>(s64(a) / s64(b));
      case Op::DIVU:
        return b == 0 ? ~0ull : a / b;
      case Op::REM:
        if (b == 0)
            return a;
        if (s64(a) == INT64_MIN && s64(b) == -1)
            return 0;
        return static_cast<uint64_t>(s64(a) % s64(b));
      case Op::REMU:
        return b == 0 ? a : a % b;
      case Op::MULW:
        return sext32(a * b);
      case Op::DIVW: {
        int32_t x = static_cast<int32_t>(a), y = static_cast<int32_t>(b);
        if (y == 0)
            return ~0ull;
        if (x == INT32_MIN && y == -1)
            return sext32(static_cast<uint32_t>(x));
        return sext32(static_cast<uint32_t>(x / y));
      }
      case Op::DIVUW: {
        uint32_t x = static_cast<uint32_t>(a), y = static_cast<uint32_t>(b);
        return y == 0 ? ~0ull : sext32(x / y);
      }
      case Op::REMW: {
        int32_t x = static_cast<int32_t>(a), y = static_cast<int32_t>(b);
        if (y == 0)
            return sext32(static_cast<uint32_t>(x));
        if (x == INT32_MIN && y == -1)
            return 0;
        return sext32(static_cast<uint32_t>(x % y));
      }
      case Op::REMUW: {
        uint32_t x = static_cast<uint32_t>(a), y = static_cast<uint32_t>(b);
        return y == 0 ? sext32(x) : sext32(x % y);
      }
      default:
        cmd::panic("aluCompute: non-ALU op %s", opName(inst.op));
    }
}

bool
branchTaken(const Inst &inst, uint64_t a, uint64_t b)
{
    switch (inst.op) {
      case Op::BEQ:
        return a == b;
      case Op::BNE:
        return a != b;
      case Op::BLT:
        return s64(a) < s64(b);
      case Op::BGE:
        return s64(a) >= s64(b);
      case Op::BLTU:
        return a < b;
      case Op::BGEU:
        return a >= b;
      default:
        cmd::panic("branchTaken: non-branch op %s", opName(inst.op));
    }
}

uint64_t
controlTarget(const Inst &inst, uint64_t pc, uint64_t rs1)
{
    if (inst.isJalr())
        return (rs1 + static_cast<uint64_t>(inst.imm)) & ~1ull;
    return pc + static_cast<uint64_t>(inst.imm);
}

uint64_t
amoCompute(Op op, uint64_t memVal, uint64_t operand)
{
    bool isW = op < Op::AMOSWAP_D;
    if (isW) {
        memVal = sext32(memVal);
        operand = sext32(operand);
    }
    uint64_t result;
    switch (op) {
      case Op::AMOSWAP_W: case Op::AMOSWAP_D:
        result = operand;
        break;
      case Op::AMOADD_W: case Op::AMOADD_D:
        result = memVal + operand;
        break;
      case Op::AMOXOR_W: case Op::AMOXOR_D:
        result = memVal ^ operand;
        break;
      case Op::AMOAND_W: case Op::AMOAND_D:
        result = memVal & operand;
        break;
      case Op::AMOOR_W: case Op::AMOOR_D:
        result = memVal | operand;
        break;
      case Op::AMOMIN_W: case Op::AMOMIN_D:
        result = s64(memVal) < s64(operand) ? memVal : operand;
        break;
      case Op::AMOMAX_W: case Op::AMOMAX_D:
        result = s64(memVal) > s64(operand) ? memVal : operand;
        break;
      case Op::AMOMINU_W: case Op::AMOMINU_D:
        result = memVal < operand ? memVal : operand;
        break;
      case Op::AMOMAXU_W: case Op::AMOMAXU_D:
        result = memVal > operand ? memVal : operand;
        break;
      default:
        cmd::panic("amoCompute: non-AMO op %s", opName(op));
    }
    // W-form AMOs store 32 bits; keep the canonical sign-extended form.
    return isW ? sext32(result) : result;
}

uint64_t
loadExtend(Op op, uint64_t raw)
{
    switch (op) {
      case Op::LB:
        return static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int8_t>(raw)));
      case Op::LH:
        return static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int16_t>(raw)));
      case Op::LW:
      case Op::LR_W:
        return sext32(raw);
      case Op::LD:
      case Op::LR_D:
        return raw;
      case Op::LBU:
        return raw & 0xff;
      case Op::LHU:
        return raw & 0xffff;
      case Op::LWU:
        return raw & 0xffffffffull;
      default:
        if (op >= Op::AMOSWAP_W && op < Op::AMOSWAP_D)
            return sext32(raw); // W-form AMO load value
        return raw;
    }
}

} // namespace riscy::isa
