/**
 * @file
 * Functional execution helpers shared by every core model and the
 * golden interpreter: ALU ops, branch resolution, AMO combine, and
 * load-value extension.
 */
#pragma once

#include "isa/inst.hh"

namespace riscy::isa {

/**
 * Compute the result of a non-memory, non-control instruction.
 * @param inst decoded instruction
 * @param a rs1 value (ignored where unused)
 * @param b rs2 value (ignored where unused)
 * @param pc the instruction's PC (for AUIPC/JAL/JALR link values)
 */
uint64_t aluCompute(const Inst &inst, uint64_t a, uint64_t b, uint64_t pc);

/** Branch condition for Bxx given rs1/rs2 values. */
bool branchTaken(const Inst &inst, uint64_t a, uint64_t b);

/**
 * Control-flow target: branch/JAL -> pc+imm, JALR -> (rs1+imm)&~1.
 * Only meaningful for control-flow instructions.
 */
uint64_t controlTarget(const Inst &inst, uint64_t pc, uint64_t rs1);

/** AMO read-modify-write combine: new memory value. */
uint64_t amoCompute(Op op, uint64_t memVal, uint64_t operand);

/** Sign-/zero-extend a raw little-endian load value per the opcode. */
uint64_t loadExtend(Op op, uint64_t raw);

} // namespace riscy::isa
