/**
 * @file
 * Address-sliced banked shared L2 + contended DRAM assembly — the
 * server-scale memory front. N independent L2Cache directory slices
 * (one PDES domain each, "l2b<b>") serve line-interleaved address
 * slices: bank = line-index & (banks-1), and each slice indexes its
 * set array with the bank bits stripped (L2Cache::Config::setShift).
 *
 * Each core keeps its single-channel L1 interface: a per-core
 * BankRouter (living in that core's "hart<i>" domain) dispatches the
 * L1s' request/response traffic to per-bank channels by line address
 * and merges the banks' grant/downgrade streams back. Per-line
 * ordering is preserved because a line maps to exactly one bank and
 * every hop is a FIFO; the protocol's responses-before-requests
 * cross-channel invariant is preserved per hop (the router only
 * forwards a side's request when that side's response queue is empty,
 * and each bank re-checks resp.pending() on its own channel).
 *
 * Behind the banks sits the DramCtl contention model; each bank owns
 * a DramPortClient, so bank<->DRAM channels are partition cuts too.
 */
#pragma once

#include "cache/l2.hh"
#include "mem/dram_ctl.hh"

namespace riscy {

struct BankedL2Config {
    uint32_t cores = 16;
    uint32_t banks = 4;     ///< power of two
    L2Cache::Config l2;     ///< per-bank geometry (sizeKb per slice)
    DramCtl::Config dram;
    uint32_t childChanDelay = 4;  ///< router -> bank hop
    uint32_t parentChanDelay = 6; ///< bank -> router hop
    uint32_t walkPortDelay = 4;   ///< router -> bank walk hop
};

/**
 * Per-core address router between the L1s' channels and the per-bank
 * channels. Construct inside the core's DomainHint group.
 */
class BankRouter : public cmd::Module
{
  public:
    BankRouter(cmd::Kernel &k, const std::string &name, uint32_t banks,
               CacheChannel &sideD, CacheChannel &sideI,
               UncachedPort &walk,
               std::vector<CacheChannel *> bankD,
               std::vector<CacheChannel *> bankI,
               std::vector<UncachedPort *> bankWalk);

  private:
    uint32_t
    bankOf(Addr line) const
    {
        return static_cast<uint32_t>((line >> kLineShift) & (banks_ - 1));
    }
    CacheChannel &side(uint32_t s) { return s ? *sideI_ : *sideD_; }
    CacheChannel &toBank(uint32_t s, uint32_t b)
    {
        return s ? *bankI_[b] : *bankD_[b];
    }

    void ruleReq();
    void ruleResp();
    void ruleFromParent();
    void ruleWalkReq();
    void ruleWalkResp();

    uint32_t banks_;
    CacheChannel *sideD_, *sideI_;
    UncachedPort *walk_;
    std::vector<CacheChannel *> bankD_, bankI_;
    std::vector<UncachedPort *> bankWalk_;

    cmd::Reg<uint32_t> rrSide_;   ///< req/resp side round-robin
    cmd::Reg<uint32_t> rrMerge_;  ///< fromParent (bank,side) round-robin
    cmd::Reg<uint32_t> rrWalk_;   ///< walk-resp bank round-robin
};

/**
 * The banked front: per-(core,side,bank) channels, per-(core,bank)
 * walk ports, one BankRouter per core, one L2Cache slice per bank, and
 * the shared DramCtl. @p coreChans are the L1-side channels in the
 * hierarchy's fixed order (core 0 D, core 0 I, core 1 D, ...);
 * @p walkPorts are the per-core walker-side ports.
 */
class BankedL2Front
{
  public:
    BankedL2Front(cmd::Kernel &k, const std::string &name, PhysMem &mem,
                  const BankedL2Config &cfg,
                  const std::vector<CacheChannel *> &coreChans,
                  const std::vector<UncachedPort *> &walkPorts);

    uint32_t banks() const { return cfg_.banks; }
    uint32_t
    bankOf(Addr line) const
    {
        return static_cast<uint32_t>((line >> kLineShift) &
                                     (cfg_.banks - 1));
    }
    L2Cache &bank(uint32_t b) { return *bank_[b]; }
    const L2Cache &bank(uint32_t b) const { return *bank_[b]; }
    DramCtl &dramCtl() { return *ctl_; }
    const DramCtl &dramCtl() const { return *ctl_; }

    /** Sum of counter @p stat across every bank slice. */
    uint64_t
    statSum(const std::string &stat) const
    {
        uint64_t n = 0;
        for (auto &b : bank_)
            n += b->stats().get(stat);
        return n;
    }

    /** CPI-split probe: is @p line's miss currently DRAM-bound? */
    bool
    dramPending(Addr line) const
    {
        return bank_[bankOf(line)]->dramPending(line);
    }

    bool quiescent() const;

    // ---- warm-handoff plumbing (MemHierarchy routes by line)
    bool
    debugPatchLine(Addr line, const Line &src)
    {
        return bank_[bankOf(line)]->debugPatchLine(line, src);
    }
    bool
    warmEnsure(int child, Addr line, const Line &src,
               const std::function<void(uint32_t, Addr)> &recall)
    {
        return bank_[bankOf(line)]->warmEnsure(child, line, src, recall);
    }
    void
    warmChildEvicted(int child, Addr line)
    {
        bank_[bankOf(line)]->warmChildEvicted(child, line);
    }

  private:
    BankedL2Config cfg_;
    std::unique_ptr<DramCtl> ctl_;
    std::vector<std::unique_ptr<DramPortClient>> port_;
    /// [core][bank] channels, [core][bank] walk ports
    std::vector<std::unique_ptr<CacheChannel>> chan_;
    std::vector<std::unique_ptr<UncachedPort>> bwalk_;
    std::vector<std::unique_ptr<BankRouter>> router_;
    std::vector<std::unique_ptr<L2Cache>> bank_;
};

} // namespace riscy
