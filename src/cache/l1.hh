/**
 * @file
 * Non-blocking L1 cache (used for both I and D sides).
 *
 * Interface follows the paper's L1 D description (Section V-B):
 * req/respLd/respSt/writeData, extended with a commit-time atomic port
 * for LR/SC/AMO (the paper performs atomics at commit). The cache is
 * an MSI child of the shared L2; see msg.hh for the protocol shape.
 *
 * Microarchitecture: one request processed per cycle; misses allocate
 * an MSHR (max `mshrs` in flight, one per line) with a short waiter
 * list so that secondary *load* misses to an in-flight line piggyback
 * on the outstanding fill (secondary stores stall the request queue —
 * a documented simplification relative to RiscyOO's full merging).
 * Store responses lock the line until writeData is applied, matching
 * the paper's "cache remains locked until writeData is called".
 *
 * The D-side raises an eviction hook on every transition to I; the
 * TSO LSQ uses it to kill speculative loads (paper's cacheEvict), and
 * it also clears the LR reservation.
 */
#pragma once

#include <functional>

#include "core/cmd.hh"
#include "core/timed_fifo.hh"
#include "cache/msg.hh"
#include "isa/inst.hh"

namespace riscy {

/** One hop of the child/parent channel bundle (created by the system). */
struct CacheChannel {
    CacheChannel(cmd::Kernel &k, const std::string &name,
                 uint32_t toParentDelay, uint32_t fromParentDelay)
        : req(k, name + ".req", 8, toParentDelay),
          resp(k, name + ".resp", 8, toParentDelay),
          fromParent(k, name + ".fromParent", 8, fromParentDelay)
    {
    }

    cmd::TimedFifo<UpgradeReq> req;
    cmd::TimedFifo<DowngradeResp> resp;
    cmd::TimedFifo<FromParent> fromParent;
};

class L1Cache : public cmd::Module
{
  public:
    struct Config {
        uint32_t sizeKb = 32;
        uint32_t ways = 8;
        uint32_t mshrs = 8;
        bool allowStores = true;
        /** Next-line prefetch on load misses (the wide stand-ins). */
        bool prefetchNextLine = false;
    };

    /** A request from the core side. */
    struct Req {
        enum class Kind : uint8_t { Ld, St, Atomic };
        Kind kind = Kind::Ld;
        uint8_t id = 0;
        Addr addr = 0;
        // Atomic-only payload:
        isa::Op amoOp = isa::Op::ILLEGAL;
        uint64_t operand = 0;
        uint8_t bytes = 8;
    };

    struct LdResp {
        uint8_t id;
        Line line;
    };

    struct AtomicResp {
        uint8_t id;
        uint64_t value; ///< loaded value (or SC success code 0/1)
    };

    L1Cache(cmd::Kernel &k, const std::string &name, const Config &cfg,
            CacheChannel &chan);

    // ---- core-side interface methods
    /** Request a load of the line containing @p addr. */
    void reqLd(uint8_t id, Addr addr);
    /** Request store permission for the line containing @p addr. */
    void reqSt(uint8_t id, Addr addr);
    /** Request a commit-time atomic (LR/SC/AMO) on @p addr. */
    void reqAtomic(uint8_t id, Addr addr, isa::Op op, uint64_t operand,
                   uint8_t bytes);
    /** Next load response (guarded). */
    LdResp respLd();
    /** Next store-permission response; locks the line (guarded). */
    uint8_t respSt();
    /** Apply store data to the locked line and unlock it. */
    void writeData(Addr addr, uint64_t value, uint8_t bytes);
    /** Apply a store-buffer entry (scattered bytes) and unlock. */
    void writeLineData(Addr line, const Line &data, uint64_t byteMask);
    /** Next atomic response (guarded). */
    AtomicResp respAtomic();
    /**
     * Hint: acquire @p want permission on the line of @p addr without
     * returning data (store prefetch from the SQ — the paper's
     * unimplemented "store-prefetch requests" — or software hints).
     * Dropped when the prefetch queue is full.
     */
    void prefetchHint(Addr addr, Msi want);

    // ---- probes
    bool canReq() const { return reqQ_.canEnq(); }
    bool respLdReady() const { return respLdQ_.canDeq(); }
    bool respStReady() const { return respStQ_.canDeq(); }
    bool respAtomicReady() const { return respAtomicQ_.canDeq(); }
    /** Test/debug probe: current MSI state of the line holding addr. */
    Msi
    probeState(Addr addr) const
    {
        int w = findWay(lineAddr(addr));
        if (w < 0)
            return Msi::I;
        return static_cast<Msi>(
            state_.read(slot(setOf(lineAddr(addr)), w)));
    }

    // ---- warm-handoff interface (System::runSampled; between cycles)
    /**
     * Overwrite the cached copy of @p line with @p src, leaving every
     * piece of protocol state (MSI state, locks, LRU, MSHRs) exactly
     * as it is — a data-only resync after functional fast-forwarding
     * has advanced memory behind the cache's back. Only legal between
     * kernel cycles under runAtomically, with the cache quiescent().
     * @return true when the line was resident and patched.
     */
    bool debugPatchLine(Addr line, const Line &src);
    /** No transaction in flight: every MSHR idle, no queued request
     *  or response, no line locked awaiting store data. */
    bool quiescent() const;

    // ---- functional warming (sampled-mode handoff; between cycles on
    //      a drained, quiescent machine — see MemHierarchy::warmTouch)
    /** If @p line is resident, refresh its data from @p src (state and
     *  LRU untouched). @return true on a hit. */
    bool warmHit(Addr line, const Line &src);
    /**
     * Install @p line in S state into the LRU victim way. A displaced
     * valid victim's line address is returned via @p victim — the
     * caller must clear this child's sharer bit in the L2 directory
     * (the between-cycles analogue of the voluntary writeback in
     * allocateMiss; no evict hook fires because the drained LSQ has
     * nothing to kill). @return false when no way is usable
     * (impossible when quiescent; defensive).
     */
    bool warmInstall(Addr line, const Line &src, bool &evicted,
                     Addr &victim);
    /** Parent-side recall while warming: drop @p line if resident
     *  (the L2 evicted it; inclusive hierarchy). */
    void warmInvalidate(Addr line);

    /**
     * Install the eviction hook (TSO cacheEvict). @p methods are the
     * interface methods the hook calls, declared as subcalls of the
     * internal rules so the schedule stays sound.
     */
    void setEvictHook(std::function<void(Addr)> hook,
                      const std::vector<const cmd::Method *> &methods);

    cmd::Method &reqLdM, &reqStM, &reqAtomicM, &respLdM, &respStM,
        &writeDataM, &respAtomicM, &prefetchHintM;

  private:
    static constexpr uint8_t kMaxWait = 6;

    struct Waiter {
        uint8_t kind = 0;
        uint8_t id = 0;
        uint8_t amoOpRaw = 0;
        uint8_t bytes = 0;
        uint64_t operand = 0;
        uint16_t off = 0;
    };

    struct Mshr {
        bool valid = false;
        uint8_t phase = 0; ///< 0 = WaitGrant, 1 = Drain
        Addr line = 0;
        uint8_t want = 0;
        uint16_t way = 0;
        uint8_t nWait = 0;
        uint8_t served = 0;
        Waiter waiters[kMaxWait];
    };

    // geometry helpers
    uint32_t setOf(Addr line) const
    {
        return static_cast<uint32_t>((line >> kLineShift) & (sets_ - 1));
    }
    Addr tagOf(Addr line) const { return line >> kLineShift; }
    uint32_t slot(uint32_t set, uint32_t way) const
    {
        return set * ways_ + way;
    }
    /** Way holding @p line, or -1. */
    int findWay(Addr line) const;
    int findMshr(Addr line) const;
    int freeMshr() const;
    int pickVictim(uint32_t set) const;
    void doEvictNotice(Addr line);
    uint64_t performAtomic(const Waiter &w, uint32_t sl, Addr line);
    void serveWaiter(const Waiter &w, uint32_t sl, Addr line);

    // rules
    void ruleProcessReq();
    void rulePrefetch();
    void ruleFromParent();
    void ruleDrain();
    /** Start a line transaction; shared by demand misses and
     *  prefetches. @return false if no MSHR/victim was available. */
    bool allocateMiss(Addr ln, uint8_t want, const Waiter *w);

    Config cfg_;
    uint32_t sets_, ways_;
    CacheChannel &chan_;

    cmd::RegArray<Addr> tags_;
    cmd::RegArray<uint8_t> state_;
    cmd::RegArray<uint8_t> lockedSt_;
    cmd::RegArray<uint8_t> wayBusy_;
    cmd::RegArray<Line> data_;
    cmd::RegArray<uint8_t> lruPtr_;
    cmd::RegArray<Mshr> mshr_;
    cmd::Reg<Addr> resvLine_;
    cmd::Reg<bool> resvValid_;

    struct PrefReq {
        Addr line = 0;
        uint8_t want = 0;
    };

    cmd::CfFifo<Req> reqQ_;
    cmd::CfFifo<PrefReq> prefQ_;
    cmd::CfFifo<LdResp> respLdQ_;
    cmd::CfFifo<uint8_t> respStQ_;
    cmd::CfFifo<AtomicResp> respAtomicQ_;

    std::function<void(Addr)> evictHook_;
    cmd::Rule *rules_[4] = {};

    cmd::Stat &ldHits_, &ldMisses_, &stHits_, &stMisses_, &evictions_,
        &invalidations_, &atomicOps_;
};

} // namespace riscy
