#include "cache/l2_banks.hh"

namespace riscy {

using namespace cmd;

// ------------------------------------------------------- BankRouter

BankRouter::BankRouter(Kernel &k, const std::string &name, uint32_t banks,
                       CacheChannel &sideD, CacheChannel &sideI,
                       UncachedPort &walk,
                       std::vector<CacheChannel *> bankD,
                       std::vector<CacheChannel *> bankI,
                       std::vector<UncachedPort *> bankWalk)
    : Module(k, name, Conflict::CF), banks_(banks), sideD_(&sideD),
      sideI_(&sideI), walk_(&walk), bankD_(std::move(bankD)),
      bankI_(std::move(bankI)), bankWalk_(std::move(bankWalk)),
      rrSide_(k, name + ".rrSide", 0),
      rrMerge_(k, name + ".rrMerge", 0),
      rrWalk_(k, name + ".rrWalk", 0)
{
    std::vector<const Method *> reqUses, respUses, fpUses, wrespUses;
    for (CacheChannel *c : {sideD_, sideI_}) {
        reqUses.push_back(&c->req.firstM);
        reqUses.push_back(&c->req.deqM);
        respUses.push_back(&c->resp.firstM);
        respUses.push_back(&c->resp.deqM);
        fpUses.push_back(&c->fromParent.enqM);
    }
    for (uint32_t b = 0; b < banks_; b++) {
        for (CacheChannel *c : {bankD_[b], bankI_[b]}) {
            reqUses.push_back(&c->req.enqM);
            respUses.push_back(&c->resp.enqM);
            fpUses.push_back(&c->fromParent.firstM);
            fpUses.push_back(&c->fromParent.deqM);
        }
        wrespUses.push_back(&bankWalk_[b]->resp.firstM);
        wrespUses.push_back(&bankWalk_[b]->resp.deqM);
    }
    wrespUses.push_back(&walk_->resp.enqM);

    k.rule(name + ".req", [this] { ruleReq(); })
        .when([this] {
            return sideD_->req.canDeq() || sideI_->req.canDeq();
        })
        .uses(reqUses);
    k.rule(name + ".resp", [this] { ruleResp(); })
        .when([this] {
            return sideD_->resp.canDeq() || sideI_->resp.canDeq();
        })
        .uses(respUses);
    k.rule(name + ".fromParent", [this] { ruleFromParent(); })
        .when([this] {
            for (uint32_t b = 0; b < banks_; b++) {
                if (bankD_[b]->fromParent.canDeq() ||
                    bankI_[b]->fromParent.canDeq())
                    return true;
            }
            return false;
        })
        .uses(fpUses);

    std::vector<const Method *> wreqUses;
    wreqUses.push_back(&walk_->req.firstM);
    wreqUses.push_back(&walk_->req.deqM);
    for (uint32_t b = 0; b < banks_; b++)
        wreqUses.push_back(&bankWalk_[b]->req.enqM);
    k.rule(name + ".walkReq", [this] { ruleWalkReq(); })
        .when([this] { return walk_->req.canDeq(); })
        .uses(wreqUses);
    k.rule(name + ".walkResp", [this] { ruleWalkResp(); })
        .when([this] {
            for (uint32_t b = 0; b < banks_; b++) {
                if (bankWalk_[b]->resp.canDeq())
                    return true;
            }
            return false;
        })
        .uses(wrespUses);
}

void
BankRouter::ruleReq()
{
    // A side's earlier downgrade responses must reach the bank before
    // its next request becomes visible there (the cross-channel
    // ordering of msg.hh, enforced per hop). The side's resp queue is
    // same-domain, so size() — which counts even not-yet-aged
    // elements — closes the in-flight window.
    uint32_t start = rrSide_.read();
    for (uint32_t i = 0; i < 2; i++) {
        uint32_t s = (start + i) & 1;
        CacheChannel &in = side(s);
        if (!in.req.canDeq() || in.resp.size() != 0)
            continue;
        UpgradeReq r = in.req.first();
        CacheChannel &out = toBank(s, bankOf(r.line));
        if (!out.req.canEnq())
            continue;
        in.req.deq();
        out.req.enq(r);
        rrSide_.write((s + 1) & 1);
        return;
    }
    // heads exist but are gated/blocked: cheap no-op commit
}

void
BankRouter::ruleResp()
{
    uint32_t start = rrSide_.read();
    for (uint32_t i = 0; i < 2; i++) {
        uint32_t s = (start + i) & 1;
        CacheChannel &in = side(s);
        if (!in.resp.canDeq())
            continue;
        DowngradeResp m = in.resp.first();
        CacheChannel &out = toBank(s, bankOf(m.line));
        if (!out.resp.canEnq())
            continue;
        in.resp.deq();
        out.resp.enq(m);
        return;
    }
}

void
BankRouter::ruleFromParent()
{
    // Merge the banks' ordered grant/downgrade streams toward the L1s.
    // Forwarding each stream FIFO keeps per-(bank,side) order, which
    // contains per-line order — all a line's traffic is on one bank.
    uint32_t n = 2 * banks_;
    uint32_t start = rrMerge_.read();
    for (uint32_t i = 0; i < n; i++) {
        uint32_t m = (start + i) % n;
        uint32_t s = m & 1;
        uint32_t b = m >> 1;
        CacheChannel &in = toBank(s, b);
        if (!in.fromParent.canDeq() || !side(s).fromParent.canEnq())
            continue;
        side(s).fromParent.enq(in.fromParent.deq());
        rrMerge_.write((m + 1) % n);
        return;
    }
}

void
BankRouter::ruleWalkReq()
{
    Addr a = walk_->req.first();
    UncachedPort &out = *bankWalk_[bankOf(lineAddr(a))];
    if (!out.req.canEnq())
        return;
    walk_->req.deq();
    out.req.enq(a);
}

void
BankRouter::ruleWalkResp()
{
    // Unordered merge: the walker matches responses by line address.
    uint32_t start = rrWalk_.read();
    for (uint32_t i = 0; i < banks_; i++) {
        uint32_t b = (start + i) % banks_;
        if (!bankWalk_[b]->resp.canDeq())
            continue;
        if (!walk_->resp.canEnq())
            return;
        walk_->resp.enq(bankWalk_[b]->resp.deq());
        rrWalk_.write((b + 1) % banks_);
        return;
    }
}

// ---------------------------------------------------- BankedL2Front

static uint32_t
log2u(uint32_t v)
{
    uint32_t s = 0;
    while ((1u << s) < v)
        s++;
    return s;
}

BankedL2Front::BankedL2Front(Kernel &k, const std::string &name,
                             PhysMem &mem, const BankedL2Config &cfg,
                             const std::vector<CacheChannel *> &coreChans,
                             const std::vector<UncachedPort *> &walkPorts)
    : cfg_(cfg)
{
    if ((cfg.banks & (cfg.banks - 1)) != 0 || cfg.banks == 0)
        cmd::fatal("%s: bank count %u not a power of two", name.c_str(),
                   cfg.banks);

    {
        DomainHint dh(k, "dram");
        ctl_ = std::make_unique<DramCtl>(k, name + ".dramctl", mem,
                                         cfg.dram, cfg.banks);
    }

    // Per-(core,bank) channel fabric. Layout: core-major, then bank,
    // D before I — so bank b's child index for (core i, side s) is
    // 2*i + s, the same convention as the unbanked hierarchy.
    auto chanAt = [&](uint32_t core, uint32_t b, uint32_t s) {
        return chan_[(core * cfg_.banks + b) * 2 + s].get();
    };
    for (uint32_t i = 0; i < cfg.cores; i++) {
        for (uint32_t b = 0; b < cfg.banks; b++) {
            chan_.push_back(std::make_unique<CacheChannel>(
                k, name + strfmt(".c%ub%uD", i, b), cfg.childChanDelay,
                cfg.parentChanDelay));
            chan_.push_back(std::make_unique<CacheChannel>(
                k, name + strfmt(".c%ub%uI", i, b), cfg.childChanDelay,
                cfg.parentChanDelay));
            bwalk_.push_back(std::make_unique<UncachedPort>(
                k, name + strfmt(".walk%ub%u", i, b), cfg.walkPortDelay));
        }
    }

    L2Cache::Config slice = cfg.l2;
    slice.setShift = log2u(cfg.banks);
    for (uint32_t b = 0; b < cfg.banks; b++) {
        DomainHint bh(k, strfmt("l2b%u", b));
        port_.push_back(std::make_unique<DramPortClient>(
            k, name + strfmt(".dport%u", b), ctl_->channel(b)));
        std::vector<CacheChannel *> children;
        std::vector<UncachedPort *> uncached;
        for (uint32_t i = 0; i < cfg.cores; i++) {
            children.push_back(chanAt(i, b, 0));
            children.push_back(chanAt(i, b, 1));
            uncached.push_back(bwalk_[i * cfg_.banks + b].get());
        }
        bank_.push_back(std::make_unique<L2Cache>(
            k, name + strfmt(".l2b%u", b), slice, children, uncached,
            *port_.back()));
    }

    for (uint32_t i = 0; i < cfg.cores; i++) {
        DomainHint hh(k, strfmt("hart%u", i));
        std::vector<CacheChannel *> bd, bi;
        std::vector<UncachedPort *> bw;
        for (uint32_t b = 0; b < cfg.banks; b++) {
            bd.push_back(chanAt(i, b, 0));
            bi.push_back(chanAt(i, b, 1));
            bw.push_back(bwalk_[i * cfg_.banks + b].get());
        }
        router_.push_back(std::make_unique<BankRouter>(
            k, name + strfmt(".rt%u", i), cfg.banks, *coreChans[2 * i],
            *coreChans[2 * i + 1], *walkPorts[i], bd, bi, bw));
    }
}

bool
BankedL2Front::quiescent() const
{
    for (auto &b : bank_)
        if (!b->quiescent())
            return false;
    if (!ctl_->quiescent())
        return false;
    for (auto &c : chan_)
        if (c->req.size() || c->resp.size() || c->fromParent.size())
            return false;
    for (auto &w : bwalk_)
        if (w->req.size() || w->resp.size())
            return false;
    return true;
}

} // namespace riscy
