/**
 * @file
 * Message and line types for the MSI-coherent cache hierarchy.
 *
 * The protocol follows the hierarchical MSI design the paper's memory
 * system uses (formally verified by Vijayaraghavan et al. [41]):
 *
 *  - child-to-parent traffic travels on two virtual channels per
 *    child: a *request* channel (upgrade requests) and a *response*
 *    channel (downgrade acks and voluntary writebacks). Responses can
 *    always be consumed, so requests blocked behind an open
 *    transaction can never deadlock the acks the transaction needs.
 *  - parent-to-child traffic shares one ordered channel (grants and
 *    downgrade requests), which keeps grant/downgrade races resolved
 *    by FIFO order.
 *  - the parent serializes transactions per line: at most one open
 *    transaction per line address.
 */
#pragma once

#include <cstdint>

#include "mem/memory.hh"

namespace riscy {

/** A 64-byte cache line. */
struct Line {
    uint64_t w[8] = {};

    uint64_t
    read(unsigned byteOff, unsigned bytes) const
    {
        uint64_t v = 0;
        const uint8_t *p = reinterpret_cast<const uint8_t *>(w) + byteOff;
        for (unsigned i = 0; i < bytes; i++)
            v |= static_cast<uint64_t>(p[i]) << (8 * i);
        return v;
    }

    void
    write(unsigned byteOff, uint64_t v, unsigned bytes)
    {
        uint8_t *p = reinterpret_cast<uint8_t *>(w) + byteOff;
        for (unsigned i = 0; i < bytes; i++)
            p[i] = static_cast<uint8_t>(v >> (8 * i));
    }
};

constexpr unsigned kLineShift = 6;
constexpr Addr kLineBytes = 1u << kLineShift;

inline Addr
lineAddr(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

inline unsigned
lineOffset(Addr a)
{
    return static_cast<unsigned>(a & (kLineBytes - 1));
}

/**
 * Coherence permission lattice: I < S < E < M. The base protocol is
 * MSI (the paper's, formally verified in [41]); E is the paper's
 * suggested MESI extension ("it should not be difficult to extend the
 * MSI protocol to a MESI protocol"), enabled by L2Cache::Config::mesi:
 * a read miss with no other sharers is granted E, and the owner may
 * upgrade E -> M silently on a store (no new L2 transaction). The
 * parent treats a child in E as a possible owner of dirty data, so
 * every recall of an >=E child fetches its copy.
 */
enum class Msi : uint8_t {
    I = 0,
    S = 1,
    E = 2,
    M = 3,
};

inline const char *
toString(Msi s)
{
    switch (s) {
      case Msi::I:
        return "I";
      case Msi::S:
        return "S";
      case Msi::E:
        return "E";
      default:
        return "M";
    }
}

/** Child-to-parent request: "raise my permission on line to want". */
struct UpgradeReq {
    Addr line = 0;
    Msi want = Msi::S;
};

/** Child-to-parent response: downgrade ack or voluntary writeback. */
struct DowngradeResp {
    Addr line = 0;
    Msi newState = Msi::I; ///< child's state after the downgrade
    bool hasData = false;  ///< dirty data travels with the message
    bool voluntary = false; ///< eviction writeback (not an ack)
    Line data;
};

/** Parent-to-child message kinds. */
enum class FromParentKind : uint8_t {
    Grant,        ///< permission (and possibly data) granted
    DowngradeReq, ///< reduce your permission on this line
};

struct FromParent {
    FromParentKind kind = FromParentKind::Grant;
    Addr line = 0;
    Msi state = Msi::I; ///< granted state / downgrade target
    bool hasData = false;
    Line data;
};

} // namespace riscy
