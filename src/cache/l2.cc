#include "cache/l2.hh"

namespace riscy {

using namespace cmd;

L2Cache::L2Cache(Kernel &k, const std::string &name, const Config &cfg,
                 std::vector<CacheChannel *> children,
                 std::vector<UncachedPort *> uncached, MemPort &dram)
    : Module(k, name, Conflict::CF), cfg_(cfg),
      sets_(cfg.sizeKb * 1024 / kLineBytes / cfg.ways), ways_(cfg.ways),
      children_(std::move(children)), uncached_(std::move(uncached)),
      dram_(dram),
      tags_(k, name + ".tags", sets_ * ways_, 0),
      valid_(k, name + ".valid", sets_ * ways_, 0),
      dirty_(k, name + ".dirty", sets_ * ways_, 0),
      wayBusy_(k, name + ".wayBusy", sets_ * ways_, 0),
      dir_(k, name + ".dir", sets_ * ways_),
      data_(k, name + ".data", sets_ * ways_),
      lruPtr_(k, name + ".lru", sets_, 0),
      txn_(k, name + ".txn", cfg.txns),
      rrChild_(k, name + ".rr", 0),
      hits_(stats().counter("hits")), misses_(stats().counter("misses")),
      writebacks_(stats().counter("writebacks")),
      downgrades_(stats().counter("downgrades")),
      eGrants_(stats().counter("eGrants")),
      uncachedReqs_(stats().counter("uncachedReqs"))
{
    if (children_.size() > kMaxChildren)
        cmd::fatal("%s: too many children (%zu)", name.c_str(),
                   children_.size());
    if ((sets_ & (sets_ - 1)) != 0)
        cmd::fatal("%s: set count %u not a power of two", name.c_str(),
                   sets_);

    std::vector<const Method *> drainUses, startUses, stepUses;
    for (CacheChannel *c : children_) {
        drainUses.push_back(&c->resp.firstM);
        drainUses.push_back(&c->resp.deqM);
        startUses.push_back(&c->req.firstM);
        startUses.push_back(&c->req.deqM);
        startUses.push_back(&c->fromParent.enqM);
        stepUses.push_back(&c->fromParent.enqM);
    }
    for (UncachedPort *p : uncached_) {
        startUses.push_back(&p->req.firstM);
        startUses.push_back(&p->req.deqM);
        startUses.push_back(&p->resp.enqM);
        stepUses.push_back(&p->resp.enqM);
    }
    stepUses.push_back(&dram_.reqMethod());

    k.rule(name + ".drainResp", [this] { ruleDrainResp(); })
        .when([this] {
            for (CacheChannel *c : children_) {
                if (c->resp.canDeq())
                    return true;
            }
            return false;
        })
        .uses(drainUses);
    k.rule(name + ".dramResp", [this] { ruleDramResp(); })
        .when([this] { return dram_.respReady(); })
        .uses({&dram_.respMethod()});
    k.rule(name + ".startTxn", [this] { ruleStartTxn(); })
        .when([this] {
            for (CacheChannel *c : children_) {
                if (c->req.canDeq())
                    return true;
            }
            for (UncachedPort *p : uncached_) {
                if (p->req.canDeq())
                    return true;
            }
            return false;
        })
        .uses(startUses);
    k.rule(name + ".txnStep", [this] { ruleTxnStep(); })
        .when([this] {
            for (uint32_t i = 0; i < txn_.size(); i++) {
                if (txn_.read(i).valid)
                    return true;
            }
            return false;
        })
        .uses(stepUses);
}

int
L2Cache::findWay(Addr line) const
{
    uint32_t set = setOf(line);
    for (uint32_t w = 0; w < ways_; w++) {
        uint32_t sl = slot(set, w);
        if (valid_.read(sl) && tags_.read(sl) == line)
            return static_cast<int>(w);
    }
    return -1;
}

// ------------------------------------------------------ warm handoff

bool
L2Cache::debugPatchLine(Addr line, const Line &src)
{
    int w = findWay(line);
    if (w < 0)
        return false;
    data_.write(slot(setOf(line), w), src);
    return true;
}

bool
L2Cache::quiescent() const
{
    for (uint32_t i = 0; i < txn_.size(); i++)
        if (txn_.read(i).valid)
            return false;
    return true;
}

bool
L2Cache::warmEnsure(int child, Addr line, const Line &src,
                    const std::function<void(uint32_t, Addr)> &recall)
{
    int w = findWay(line);
    if (w >= 0) {
        uint32_t sl = slot(setOf(line), w);
        if (wayBusy_.read(sl))
            return false; // defensive: cannot happen when quiescent
        DirEntry d = dir_.read(sl);
        for (uint32_t c = 0; c < children_.size(); c++) {
            if (static_cast<int>(c) != child &&
                d.get(c) >= static_cast<uint8_t>(Msi::E))
                return false;
        }
        data_.write(sl, src);
        dirty_.write(sl, 0); // src is the memory image
        if (d.get(child) == static_cast<uint8_t>(Msi::I)) {
            d.set(child, static_cast<uint8_t>(Msi::S));
            dir_.write(sl, d);
        }
        return true;
    }

    uint32_t set = setOf(line);
    int v = pickVictim(set);
    if (v < 0)
        return false;
    uint32_t sl = slot(set, v);
    if (valid_.read(sl)) {
        Addr vline = tags_.read(sl);
        const DirEntry &d = dir_.read(sl);
        for (uint32_t c = 0; c < children_.size(); c++) {
            if (d.get(c) != static_cast<uint8_t>(Msi::I))
                recall(c, vline);
        }
    }
    tags_.write(sl, line);
    valid_.write(sl, 1);
    dirty_.write(sl, 0);
    DirEntry nd{};
    nd.set(child, static_cast<uint8_t>(Msi::S));
    dir_.write(sl, nd);
    data_.write(sl, src);
    lruPtr_.write(set, (v + 1) % ways_);
    return true;
}

void
L2Cache::warmChildEvicted(int child, Addr line)
{
    int w = findWay(line);
    if (w < 0)
        return; // inclusivity says resident; defensive
    uint32_t sl = slot(setOf(line), w);
    DirEntry d = dir_.read(sl);
    d.set(child, static_cast<uint8_t>(Msi::I));
    dir_.write(sl, d);
}

bool
L2Cache::dramPending(Addr line) const
{
    for (uint32_t i = 0; i < txn_.size(); i++) {
        const Txn &t = txn_.read(i);
        if (t.valid && t.line == line &&
            (t.phase == EvictWb || t.phase == NeedFill ||
             t.phase == WaitDram))
            return true;
    }
    return false;
}

bool
L2Cache::lineBlocked(Addr line) const
{
    for (uint32_t i = 0; i < txn_.size(); i++) {
        const Txn &t = txn_.read(i);
        if (!t.valid)
            continue;
        if (t.line == line)
            return true;
        // Until the victim writeback has been queued to DRAM, traffic
        // for the victim line must not start a new transaction.
        if (t.victimValid && t.victimLine == line && t.phase <= EvictWb)
            return true;
    }
    return false;
}

int
L2Cache::freeTxn() const
{
    for (uint32_t i = 0; i < txn_.size(); i++) {
        if (!txn_.read(i).valid)
            return static_cast<int>(i);
    }
    return -1;
}

int
L2Cache::pickVictim(uint32_t set) const
{
    for (uint32_t w = 0; w < ways_; w++) {
        uint32_t sl = slot(set, w);
        if (!valid_.read(sl) && !wayBusy_.read(sl))
            return static_cast<int>(w);
    }
    uint32_t start = lruPtr_.read(set);
    for (uint32_t i = 0; i < ways_; i++) {
        uint32_t w = (start + i) % ways_;
        if (!wayBusy_.read(slot(set, w)))
            return static_cast<int>(w);
    }
    return -1;
}

Msi
L2Cache::upgradeGrant(const DirEntry &d, int child, Msi want) const
{
    if (!cfg_.mesi || want != Msi::S)
        return want;
    for (uint32_t c = 0; c < children_.size(); c++) {
        if (static_cast<int>(c) != child &&
            d.get(c) != static_cast<uint8_t>(Msi::I))
            return want; // another sharer exists: plain S
    }
    eGrants_.inc();
    return Msi::E;
}

uint32_t
L2Cache::computeTargets(uint32_t sl, int child, Msi want, Msi &downTo) const
{
    const DirEntry &d = dir_.read(sl);
    uint32_t mask = 0;
    downTo = want >= Msi::E ? Msi::I : Msi::S;
    for (uint32_t c = 0; c < children_.size(); c++) {
        if (static_cast<int>(c) == child)
            continue;
        Msi st = static_cast<Msi>(d.get(c));
        // A child at E may have silently upgraded to M, so reads must
        // recall any >=E holder (data travels with the ack).
        if (want >= Msi::E ? st != Msi::I : st >= Msi::E)
            mask |= 1u << c;
    }
    return mask;
}

void
L2Cache::ruleDrainResp()
{
    // Round-robin pick of a drainable child response.
    int child = -1;
    uint32_t start = rrChild_.read();
    for (uint32_t i = 0; i < children_.size(); i++) {
        uint32_t c = (start + i) % children_.size();
        if (children_[c]->resp.canDeq()) {
            child = static_cast<int>(c);
            break;
        }
    }
    require(child >= 0);
    DowngradeResp m = children_[child]->resp.deq();

    int way = findWay(m.line);
    if (way < 0)
        panic("%s: child %d response for non-resident line %#llx",
              name().c_str(), child, (unsigned long long)m.line);
    uint32_t sl = slot(setOf(m.line), way);
    if (m.hasData) {
        data_.write(sl, m.data);
        dirty_.write(sl, 1);
    }
    DirEntry d = dir_.read(sl);
    d.set(child, static_cast<uint8_t>(m.newState));
    dir_.write(sl, d);

    if (!m.voluntary) {
        // Credit the transaction that requested this downgrade.
        for (uint32_t i = 0; i < txn_.size(); i++) {
            Txn t = txn_.read(i);
            if (!t.valid || t.pendingAcks == 0)
                continue;
            bool match = (t.line == m.line && t.phase == WaitAcks) ||
                         (t.victimValid && t.victimLine == m.line &&
                          t.phase == EvictWait);
            if (match) {
                t.pendingAcks--;
                txn_.write(i, t);
                break;
            }
        }
    }
}

void
L2Cache::ruleStartTxn()
{
    // Arbitrate: children's request channels, then uncached ports.
    int child = -2;
    Addr line = 0;
    Msi want = Msi::S;
    uint32_t port = 0;
    uint32_t start = rrChild_.read();
    for (uint32_t i = 0; i < children_.size() && child == -2; i++) {
        uint32_t c = (start + i) % children_.size();
        CacheChannel *ch = children_[c];
        // A child's earlier responses must be visible before its next
        // request (restores cross-channel ordering; see msg.hh). The
        // consumer-side pending() probe keeps this a domain-local +
        // start-of-cycle read under the parallel scheduler.
        if (!ch->req.canDeq() || ch->resp.pending() != 0)
            continue;
        UpgradeReq r = ch->req.first();
        if (lineBlocked(r.line))
            continue;
        child = static_cast<int>(c);
        line = r.line;
        want = r.want;
    }
    for (uint32_t p = 0; p < uncached_.size() && child == -2; p++) {
        if (!uncached_[p]->req.canDeq())
            continue;
        Addr a = uncached_[p]->req.first();
        if (lineBlocked(lineAddr(a)))
            continue;
        child = -1;
        port = p;
        line = lineAddr(a);
        want = Msi::S;
    }
    if (child == -2)
        return; // heads exist but are blocked: cheap no-op commit
    rrChild_.write((start + 1) % children_.size());

    auto consumeReq = [&] {
        if (child >= 0)
            children_[child]->req.deq();
        else
            uncached_[port]->req.deq();
    };

    int way = findWay(line);
    if (way >= 0 && !wayBusy_.read(slot(setOf(line), way))) {
        uint32_t sl = slot(setOf(line), way);
        Msi downTo;
        uint32_t targets = computeTargets(sl, child, want, downTo);
        if (targets == 0) {
            // Fast-path grant, no transaction entry needed.
            if (child < 0) {
                uncached_[port]->resp.enq({line, data_.read(sl)});
                uncachedReqs_.inc();
            } else {
                DirEntry d = dir_.read(sl);
                Msi grant = upgradeGrant(d, child, want);
                FromParent g;
                g.kind = FromParentKind::Grant;
                g.line = line;
                g.state = grant;
                g.hasData = d.get(child) == static_cast<uint8_t>(Msi::I);
                if (g.hasData)
                    g.data = data_.read(sl);
                children_[child]->fromParent.enq(g);
                d.set(child, static_cast<uint8_t>(grant));
                dir_.write(sl, d);
            }
            consumeReq();
            hits_.inc();
            return;
        }
        // Need downgrades first.
        int ti = freeTxn();
        if (ti < 0)
            return;
        uint8_t n = 0;
        for (uint32_t c = 0; c < children_.size(); c++) {
            if (targets & (1u << c)) {
                FromParent dreq;
                dreq.kind = FromParentKind::DowngradeReq;
                dreq.line = line;
                dreq.state = downTo;
                children_[c]->fromParent.enq(dreq);
                n++;
                downgrades_.inc();
            }
        }
        Txn t;
        t.valid = true;
        t.line = line;
        t.child = static_cast<int8_t>(child);
        t.port = static_cast<uint8_t>(port);
        t.want = static_cast<uint8_t>(want);
        t.phase = WaitAcks;
        t.pendingAcks = n;
        t.way = static_cast<uint16_t>(way);
        txn_.write(ti, t);
        wayBusy_.write(sl, 1);
        consumeReq();
        hits_.inc();
        return;
    }

    // Miss: allocate a way, possibly evicting (with child recall).
    int ti = freeTxn();
    if (ti < 0)
        return;
    uint32_t set = setOf(line);
    int victim = pickVictim(set);
    if (victim < 0)
        return;
    uint32_t sl = slot(set, victim);

    Txn t;
    t.valid = true;
    t.line = line;
    t.child = static_cast<int8_t>(child);
    t.port = static_cast<uint8_t>(port);
    t.want = static_cast<uint8_t>(want);
    t.way = static_cast<uint16_t>(victim);
    t.phase = EvictWait;
    t.pendingAcks = 0;
    t.victimValid = valid_.read(sl) != 0;
    t.victimLine = tags_.read(sl);
    if (t.victimValid) {
        const DirEntry &d = dir_.read(sl);
        for (uint32_t c = 0; c < children_.size(); c++) {
            if (d.get(c) != static_cast<uint8_t>(Msi::I)) {
                FromParent dreq;
                dreq.kind = FromParentKind::DowngradeReq;
                dreq.line = t.victimLine;
                dreq.state = Msi::I;
                children_[c]->fromParent.enq(dreq);
                t.pendingAcks++;
                downgrades_.inc();
            }
        }
    }
    txn_.write(ti, t);
    wayBusy_.write(sl, 1);
    lruPtr_.write(set, (victim + 1) % ways_);
    consumeReq();
    misses_.inc();
}

void
L2Cache::ruleTxnStep()
{
    // Advance the first advanceable transaction one phase.
    int ti = -1;
    Txn t;
    for (uint32_t i = 0; i < txn_.size(); i++) {
        t = txn_.read(i);
        if (!t.valid)
            continue;
        if ((t.phase == EvictWait || t.phase == WaitAcks) &&
            t.pendingAcks != 0)
            continue;
        if (t.phase == WaitDram)
            continue;
        if ((t.phase == EvictWb || t.phase == NeedFill) && !dram_.canReq())
            continue;
        ti = static_cast<int>(i);
        break;
    }
    if (ti < 0)
        return; // transactions exist but none can advance this cycle

    // The victim occupied the same set as the new line, so every phase
    // addresses the same slot.
    uint32_t sl = slot(setOf(t.line), t.way);
    switch (t.phase) {
      case EvictWait:
        if (t.victimValid && dirty_.read(sl)) {
            t.phase = EvictWb;
        } else {
            t.phase = NeedFill;
        }
        break;
      case EvictWb:
        dram_.req(true, t.victimLine, data_.read(sl));
        writebacks_.inc();
        t.phase = NeedFill;
        break;
      case NeedFill: {
        dram_.req(false, t.line, Line{});
        tags_.write(sl, t.line);
        valid_.write(sl, 1);
        dirty_.write(sl, 0);
        dir_.write(sl, DirEntry{});
        t.phase = WaitDram;
        break;
      }
      case WaitAcks:
        t.phase = Grant;
        [[fallthrough]];
      case Grant: {
        if (t.child < 0) {
            uncached_[t.port]->resp.enq({t.line, data_.read(sl)});
            uncachedReqs_.inc();
        } else {
            DirEntry d = dir_.read(sl);
            Msi grant = upgradeGrant(d, t.child, static_cast<Msi>(t.want));
            FromParent g;
            g.kind = FromParentKind::Grant;
            g.line = t.line;
            g.state = grant;
            g.hasData = d.get(static_cast<uint32_t>(t.child)) ==
                        static_cast<uint8_t>(Msi::I);
            if (g.hasData)
                g.data = data_.read(sl);
            children_[t.child]->fromParent.enq(g);
            d.set(static_cast<uint32_t>(t.child),
                  static_cast<uint8_t>(grant));
            dir_.write(sl, d);
        }
        wayBusy_.write(sl, 0);
        t.valid = false;
        break;
      }
      default:
        panic("%s: bad txn phase %u", name().c_str(), t.phase);
    }
    txn_.write(ti, t);
}

void
L2Cache::ruleDramResp()
{
    MemResp r = dram_.resp();
    for (uint32_t i = 0; i < txn_.size(); i++) {
        Txn t = txn_.read(i);
        if (t.valid && t.phase == WaitDram && t.line == r.line) {
            uint32_t sl = slot(setOf(t.line), t.way);
            data_.write(sl, r.data);
            t.phase = Grant;
            txn_.write(i, t);
            return;
        }
    }
    panic("%s: DRAM response for line %#llx matches no transaction",
          name().c_str(), (unsigned long long)r.line);
}

} // namespace riscy
