/**
 * @file
 * Shared, inclusive L2 cache running the MSI directory protocol.
 *
 * The L2 is the coherence parent of every L1 (D and I side of every
 * core) and additionally serves uncached line reads for the page-table
 * walkers (the paper's "page walk cross bar" traffic). Transactions
 * are serialized per line: at most one open transaction per line
 * address, which together with the virtual-channel split in msg.hh
 * makes the protocol race-free (see the proof sketch there).
 *
 * The cross bars of Fig. 11 appear here as the round-robin arbitration
 * the rules perform over the per-child channels; the channels
 * themselves are TimedFifos, so cross-bar/pipeline latency is a
 * configuration parameter.
 */
#pragma once

#include "cache/l1.hh"
#include "mem/dram.hh"

namespace riscy {

/** Uncached read response: the line address and its data. */
struct UncachedResp {
    Addr line = 0;
    Line data;
};

/** Walker-side uncached read port (created by the system assembly). */
struct UncachedPort {
    UncachedPort(cmd::Kernel &k, const std::string &name, uint32_t delay)
        : req(k, name + ".req", 2, delay), resp(k, name + ".resp", 2, delay)
    {
    }

    cmd::TimedFifo<Addr> req;
    cmd::TimedFifo<UncachedResp> resp;
};

class L2Cache : public cmd::Module
{
  public:
    /** 64 cores x (D + I side). The directory packs 2 bits per child,
     *  so raising this costs 1 byte of DirEntry per 4 children. */
    static constexpr uint32_t kMaxChildren = 128;

    struct Config {
        uint32_t sizeKb = 1024;
        uint32_t ways = 16;
        uint32_t txns = 16;
        /** Grant E on sharer-free read misses (MESI extension). */
        bool mesi = false;
        /** Line-index bits to skip below the set index — the bank
         *  bits when this cache is one slice of a banked L2, so the
         *  slice uses its full set array. */
        uint32_t setShift = 0;
    };

    L2Cache(cmd::Kernel &k, const std::string &name, const Config &cfg,
            std::vector<CacheChannel *> children,
            std::vector<UncachedPort *> uncached, MemPort &mem);

    // ---- warm-handoff interface (see L1Cache::debugPatchLine)
    /** Data-only resync of @p line when resident; protocol state,
     *  directory and LRU untouched. Between cycles only. */
    bool debugPatchLine(Addr line, const Line &src);
    /** No open transaction. */
    bool quiescent() const;

    // ---- functional warming (sampled-mode handoff; between cycles on
    //      a drained, quiescent machine — see MemHierarchy::warmTouch)
    /**
     * Ensure @p line is resident with fresh @p src data (which came
     * from memory, so the line becomes clean) and record child
     * @p child as at least an S sharer. A miss installs into the LRU
     * victim way, recalling the victim from every child through
     * @p recall(childIdx, victimLine); the victim's writeback is
     * elided because at handoff time every cached line's data equals
     * memory. @return false when warming must be skipped: a
     * *different* child holds the line at E/M (warming never
     * downgrades a live exclusive copy) or no way is usable.
     */
    bool warmEnsure(int child, Addr line, const Line &src,
                    const std::function<void(uint32_t, Addr)> &recall);
    /** Child @p child silently dropped @p line during warming; clear
     *  its sharer bit (the analogue of a voluntary DowngradeResp). */
    void warmChildEvicted(int child, Addr line);

    /** True while an open transaction on @p line is waiting on DRAM
     *  (fill or victim writeback still to be queued or answered).
     *  Between-cycle observability probe: the CPI stack uses it to
     *  split D-miss stall cycles into L2-bound vs DRAM-bound. */
    bool dramPending(Addr line) const;

  private:
    /** Per-line directory: 2-bit Msi state per child, packed. */
    struct DirEntry {
        uint8_t bits[kMaxChildren / 4] = {};

        uint8_t
        get(uint32_t c) const
        {
            return (bits[c >> 2] >> ((c & 3) * 2)) & 3;
        }
        void
        set(uint32_t c, uint8_t v)
        {
            uint32_t sh = (c & 3) * 2;
            bits[c >> 2] = static_cast<uint8_t>(
                (bits[c >> 2] & ~(3u << sh)) | ((v & 3u) << sh));
        }
    };

    enum Phase : uint8_t {
        EvictWait = 0,
        EvictWb = 1,
        NeedFill = 2,
        WaitDram = 3,
        WaitAcks = 4,
        Grant = 5,
    };

    struct Txn {
        bool valid = false;
        Addr line = 0;
        int8_t child = -1; ///< requesting child, -1 for uncached port
        uint8_t port = 0;  ///< uncached port index when child == -1
        uint8_t want = 0;
        uint8_t phase = 0;
        uint8_t pendingAcks = 0;
        uint16_t way = 0;
        bool victimValid = false;
        Addr victimLine = 0;
    };

    uint32_t setOf(Addr line) const
    {
        return static_cast<uint32_t>(
            (line >> (kLineShift + cfg_.setShift)) & (sets_ - 1));
    }
    uint32_t slot(uint32_t set, uint32_t way) const
    {
        return set * ways_ + way;
    }
    int findWay(Addr line) const;
    /** MESI: promote a sharer-free S grant to E. */
    Msi upgradeGrant(const DirEntry &d, int child, Msi want) const;
    /** True if any transaction blocks starting one on @p line. */
    bool lineBlocked(Addr line) const;
    int freeTxn() const;
    int pickVictim(uint32_t set) const;

    void ruleDrainResp();
    void ruleStartTxn();
    void ruleTxnStep();
    void ruleDramResp();

    /** Downgrade targets for a hit on @p line requested by @p child. */
    uint32_t computeTargets(uint32_t sl, int child, Msi want,
                            Msi &downTo) const;

    Config cfg_;
    uint32_t sets_, ways_;
    std::vector<CacheChannel *> children_;
    std::vector<UncachedPort *> uncached_;
    MemPort &dram_;

    cmd::RegArray<Addr> tags_;
    cmd::RegArray<uint8_t> valid_;
    cmd::RegArray<uint8_t> dirty_;
    cmd::RegArray<uint8_t> wayBusy_;
    cmd::RegArray<DirEntry> dir_;
    cmd::RegArray<Line> data_;
    cmd::RegArray<uint8_t> lruPtr_;
    cmd::RegArray<Txn> txn_;
    cmd::Reg<uint32_t> rrChild_;

    cmd::Stat &hits_, &misses_, &writebacks_, &downgrades_,
        &uncachedReqs_, &eGrants_;
};

} // namespace riscy
