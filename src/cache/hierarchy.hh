/**
 * @file
 * MemHierarchy: assembles the coherent memory system of Fig. 11 —
 * per-core L1 I/D caches, the cache cross bar (per-child timed
 * channels + L2 arbitration), the shared inclusive L2, the page-walk
 * ports, and the DRAM model.
 */
#pragma once

#include <memory>
#include <vector>

#include "cache/l2.hh"
#include "cache/l2_banks.hh"

namespace riscy {

struct MemHierarchyConfig {
    uint32_t cores = 1;
    L1Cache::Config l1d{32, 8, 8, true};
    L1Cache::Config l1i{32, 8, 4, false};
    L2Cache::Config l2{1024, 16, 16};
    Dram::Config dram{120, 24, 10};
    uint32_t childChanDelay = 1;  ///< cross-bar hop toward L2
    uint32_t parentChanDelay = 6; ///< L2 pipeline + hop toward the L1s
    uint32_t walkPortDelay = 1;
    /** >1 switches to the banked server-scale front: `l2Banks`
     *  line-interleaved L2 slices (each `l2.sizeKb` big, its own PDES
     *  domain) behind the DramCtl contention model configured by
     *  `dramCtl`. The default (1) keeps the monolithic L2 + fixed-
     *  latency Dram topology bit-for-bit. */
    uint32_t l2Banks = 1;
    DramCtl::Config dramCtl{};
};

class MemHierarchy
{
  public:
    MemHierarchy(cmd::Kernel &k, const std::string &name, PhysMem &mem,
                 const MemHierarchyConfig &cfg)
        : cfg_(cfg)
    {
        // Partitioning hints: the shared L2 + DRAM form the "mem"
        // domain; each core's L1s join that core's "hart<i>" group
        // (the System constructor opens the same group around the core
        // proper). The cross-bar channels and walk ports are TimedFifo
        // boundaries — the partitioner cuts at their endpoints, so
        // they need no hint.
        const bool bankedFront = cfg.l2Banks > 1;
        if (!bankedFront) {
            cmd::DomainHint mh(k, "mem");
            dram_ = std::make_unique<Dram>(k, name + ".dram", mem, cfg.dram);
        }
        // Banked front: the L1<->router hop is intra-domain, so its
        // channels take delay 1 — the configured cross-bar delays move
        // to the router<->bank channels, which are the partition cuts.
        uint32_t toL2 = bankedFront ? 1 : cfg.childChanDelay;
        uint32_t fromL2 = bankedFront ? 1 : cfg.parentChanDelay;
        uint32_t walkDelay = bankedFront ? 1 : cfg.walkPortDelay;
        std::vector<CacheChannel *> chans;
        std::vector<UncachedPort *> ports;
        for (uint32_t i = 0; i < cfg.cores; i++) {
            auto mkChan = [&](const std::string &n) {
                chan_.push_back(std::make_unique<CacheChannel>(
                    k, n, toL2, fromL2));
                return chan_.back().get();
            };
            CacheChannel *dc = mkChan(name + cmd::strfmt(".chanD%u", i));
            CacheChannel *ic = mkChan(name + cmd::strfmt(".chanI%u", i));
            {
                cmd::DomainHint hh(k, cmd::strfmt("hart%u", i));
                dcache_.push_back(std::make_unique<L1Cache>(
                    k, name + cmd::strfmt(".l1d%u", i), cfg.l1d, *dc));
                icache_.push_back(std::make_unique<L1Cache>(
                    k, name + cmd::strfmt(".l1i%u", i), cfg.l1i, *ic));
            }
            chans.push_back(dc);
            chans.push_back(ic);
            walk_.push_back(std::make_unique<UncachedPort>(
                k, name + cmd::strfmt(".walk%u", i), walkDelay));
            ports.push_back(walk_.back().get());
        }
        if (bankedFront) {
            BankedL2Config bc;
            bc.cores = cfg.cores;
            bc.banks = cfg.l2Banks;
            bc.l2 = cfg.l2;
            bc.dram = cfg.dramCtl;
            bc.childChanDelay = cfg.childChanDelay;
            bc.parentChanDelay = cfg.parentChanDelay;
            bc.walkPortDelay = cfg.walkPortDelay;
            banked_ = std::make_unique<BankedL2Front>(k, name, mem, bc,
                                                      chans, ports);
        } else {
            cmd::DomainHint mh(k, "mem");
            l2_ = std::make_unique<L2Cache>(k, name + ".l2", cfg.l2, chans,
                                            ports, *dram_);
        }
    }

    // ---- warm-handoff interface (System::runSampled; between cycles)
    /**
     * Overwrite every cached copy of @p line (L2 and all L1s) with
     * @p src — the data-only resync after fast-forwarding has advanced
     * physical memory underneath the hierarchy. Caches stay warm:
     * no allocation, eviction, or protocol-state change. Call under
     * runAtomically while quiescent().
     */
    void
    debugPatchLine(Addr line, const Line &src)
    {
        if (banked_)
            banked_->debugPatchLine(line, src);
        else
            l2_->debugPatchLine(line, src);
        for (auto &c : dcache_)
            c->debugPatchLine(line, src);
        for (auto &c : icache_)
            c->debugPatchLine(line, src);
    }

    /**
     * Functional warming, phase 1 of 2: install/refresh @p line (data
     * from @p src, the memory image) in the shared L2, displacing an
     * LRU victim protocol-consistently (directory updated, inclusivity
     * preserved by recalling the victim from every child, writebacks
     * elided since every cached line's data equals memory at handoff
     * time). Between cycles, under runAtomically, on a drained
     * quiescent() machine only. @return false when warming was skipped
     * (another core's L1 holds the line at E/M, or the slot is busy).
     *
     * Phase 2 (warmTouchL1) must run in a SEPARATE atomic action:
     * within one action reads see start-of-action state, so the L1
     * victim pick would not observe a recall this phase performed on
     * the same set — and re-picking the recalled way would double-
     * write its state register within one rule.
     */
    bool
    warmTouchL2(uint32_t core, bool ifetch, Addr line, const Line &src)
    {
        // Child index mapping fixed by the constructor: per core the
        // D-side channel is registered first, then the I-side.
        int child = static_cast<int>(2 * core + (ifetch ? 1 : 0));
        auto recall = [this](uint32_t c, Addr ln) {
            auto &side = (c & 1) ? icache_ : dcache_;
            side[c / 2]->warmInvalidate(ln);
        };
        if (banked_)
            return banked_->warmEnsure(child, line, src, recall);
        return l2_->warmEnsure(child, line, src, recall);
    }

    /**
     * Functional warming, phase 2: install/refresh @p line in core
     * @p core's L1 I- or D-side in S state, keeping the L2 directory
     * exact when an L1 victim is displaced. Call in its own atomic
     * action, only after warmTouchL2 for the same touch committed.
     */
    bool
    warmTouchL1(uint32_t core, bool ifetch, Addr line, const Line &src)
    {
        L1Cache &l1 = ifetch ? *icache_[core] : *dcache_[core];
        int child = static_cast<int>(2 * core + (ifetch ? 1 : 0));
        if (l1.warmHit(line, src))
            return true;
        bool evicted = false;
        Addr victim = 0;
        if (!l1.warmInstall(line, src, evicted, victim))
            return false;
        if (evicted) {
            if (banked_)
                banked_->warmChildEvicted(child, victim);
            else
                l2_->warmChildEvicted(child, victim);
        }
        return true;
    }

    /** True when no request, fill, writeback, downgrade, or page walk
     *  is in flight anywhere in the hierarchy (between cycles). */
    bool
    quiescent() const
    {
        for (auto &c : dcache_)
            if (!c->quiescent())
                return false;
        for (auto &c : icache_)
            if (!c->quiescent())
                return false;
        if (banked_) {
            if (!banked_->quiescent())
                return false;
        } else if (!l2_->quiescent() || !dram_->quiescent()) {
            return false;
        }
        for (auto &ch : chan_)
            if (ch->req.size() || ch->resp.size() || ch->fromParent.size())
                return false;
        for (auto &w : walk_)
            if (w->req.size() || w->resp.size())
                return false;
        return true;
    }

    L1Cache &dcache(uint32_t i) { return *dcache_[i]; }
    L1Cache &icache(uint32_t i) { return *icache_[i]; }
    UncachedPort &walkPort(uint32_t i) { return *walk_[i]; }
    /** Monolithic-front accessors (unbanked configs only). */
    L2Cache &l2() { return *l2_; }
    Dram &dram() { return *dram_; }
    // ---- topology-independent views
    bool banked() const { return banked_ != nullptr; }
    uint32_t l2Banks() const { return banked_ ? banked_->banks() : 1; }
    L2Cache &
    l2Bank(uint32_t b)
    {
        return banked_ ? banked_->bank(b) : *l2_;
    }
    BankedL2Front *bankedFront() { return banked_.get(); }
    /** Sum of L2 counter @p stat across every slice (or the one L2). */
    uint64_t
    l2StatSum(const std::string &stat) const
    {
        if (banked_)
            return banked_->statSum(stat);
        return l2_->stats().get(stat);
    }
    /** CPI-split probe: is the D-miss holding @p line DRAM-bound? */
    bool
    dramPending(Addr line) const
    {
        if (banked_)
            return banked_->dramPending(line);
        return l2_->dramPending(line);
    }
    const MemHierarchyConfig &config() const { return cfg_; }

  private:
    MemHierarchyConfig cfg_;
    std::vector<std::unique_ptr<CacheChannel>> chan_;
    std::vector<std::unique_ptr<L1Cache>> dcache_, icache_;
    std::vector<std::unique_ptr<UncachedPort>> walk_;
    std::unique_ptr<L2Cache> l2_;
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<BankedL2Front> banked_;
};

} // namespace riscy
