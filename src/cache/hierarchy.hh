/**
 * @file
 * MemHierarchy: assembles the coherent memory system of Fig. 11 —
 * per-core L1 I/D caches, the cache cross bar (per-child timed
 * channels + L2 arbitration), the shared inclusive L2, the page-walk
 * ports, and the DRAM model.
 */
#pragma once

#include <memory>
#include <vector>

#include "cache/l2.hh"

namespace riscy {

struct MemHierarchyConfig {
    uint32_t cores = 1;
    L1Cache::Config l1d{32, 8, 8, true};
    L1Cache::Config l1i{32, 8, 4, false};
    L2Cache::Config l2{1024, 16, 16};
    Dram::Config dram{120, 24, 10};
    uint32_t childChanDelay = 1;  ///< cross-bar hop toward L2
    uint32_t parentChanDelay = 6; ///< L2 pipeline + hop toward the L1s
    uint32_t walkPortDelay = 1;
};

class MemHierarchy
{
  public:
    MemHierarchy(cmd::Kernel &k, const std::string &name, PhysMem &mem,
                 const MemHierarchyConfig &cfg)
        : cfg_(cfg)
    {
        // Partitioning hints: the shared L2 + DRAM form the "mem"
        // domain; each core's L1s join that core's "hart<i>" group
        // (the System constructor opens the same group around the core
        // proper). The cross-bar channels and walk ports are TimedFifo
        // boundaries — the partitioner cuts at their endpoints, so
        // they need no hint.
        {
            cmd::DomainHint mh(k, "mem");
            dram_ = std::make_unique<Dram>(k, name + ".dram", mem, cfg.dram);
        }
        std::vector<CacheChannel *> chans;
        std::vector<UncachedPort *> ports;
        for (uint32_t i = 0; i < cfg.cores; i++) {
            auto mkChan = [&](const std::string &n) {
                chan_.push_back(std::make_unique<CacheChannel>(
                    k, n, cfg.childChanDelay, cfg.parentChanDelay));
                return chan_.back().get();
            };
            CacheChannel *dc = mkChan(name + cmd::strfmt(".chanD%u", i));
            CacheChannel *ic = mkChan(name + cmd::strfmt(".chanI%u", i));
            {
                cmd::DomainHint hh(k, cmd::strfmt("hart%u", i));
                dcache_.push_back(std::make_unique<L1Cache>(
                    k, name + cmd::strfmt(".l1d%u", i), cfg.l1d, *dc));
                icache_.push_back(std::make_unique<L1Cache>(
                    k, name + cmd::strfmt(".l1i%u", i), cfg.l1i, *ic));
            }
            chans.push_back(dc);
            chans.push_back(ic);
            walk_.push_back(std::make_unique<UncachedPort>(
                k, name + cmd::strfmt(".walk%u", i), cfg.walkPortDelay));
            ports.push_back(walk_.back().get());
        }
        {
            cmd::DomainHint mh(k, "mem");
            l2_ = std::make_unique<L2Cache>(k, name + ".l2", cfg.l2, chans,
                                            ports, *dram_);
        }
    }

    L1Cache &dcache(uint32_t i) { return *dcache_[i]; }
    L1Cache &icache(uint32_t i) { return *icache_[i]; }
    UncachedPort &walkPort(uint32_t i) { return *walk_[i]; }
    L2Cache &l2() { return *l2_; }
    Dram &dram() { return *dram_; }
    const MemHierarchyConfig &config() const { return cfg_; }

  private:
    MemHierarchyConfig cfg_;
    std::vector<std::unique_ptr<CacheChannel>> chan_;
    std::vector<std::unique_ptr<L1Cache>> dcache_, icache_;
    std::vector<std::unique_ptr<UncachedPort>> walk_;
    std::unique_ptr<L2Cache> l2_;
    std::unique_ptr<Dram> dram_;
};

} // namespace riscy
