#include "cache/l1.hh"

#include "isa/exec.hh"

namespace riscy {

using namespace cmd;

L1Cache::L1Cache(Kernel &k, const std::string &name, const Config &cfg,
                 CacheChannel &chan)
    : Module(k, name, Conflict::CF),
      reqLdM(method("reqLd")), reqStM(method("reqSt")),
      reqAtomicM(method("reqAtomic")), respLdM(method("respLd")),
      respStM(method("respSt")), writeDataM(method("writeData")),
      respAtomicM(method("respAtomic")),
      prefetchHintM(method("prefetchHint")),
      cfg_(cfg), sets_(cfg.sizeKb * 1024 / kLineBytes / cfg.ways),
      ways_(cfg.ways), chan_(chan),
      tags_(k, name + ".tags", sets_ * ways_, 0),
      state_(k, name + ".state", sets_ * ways_,
             static_cast<uint8_t>(Msi::I)),
      lockedSt_(k, name + ".lockedSt", sets_ * ways_, 0),
      wayBusy_(k, name + ".wayBusy", sets_ * ways_, 0),
      data_(k, name + ".data", sets_ * ways_),
      lruPtr_(k, name + ".lru", sets_, 0),
      mshr_(k, name + ".mshr", cfg.mshrs),
      resvLine_(k, name + ".resvLine", 0),
      resvValid_(k, name + ".resvValid", false),
      reqQ_(k, name + ".reqQ", 4),
      prefQ_(k, name + ".prefQ", 4),
      respLdQ_(k, name + ".respLdQ", 4),
      respStQ_(k, name + ".respStQ", 4),
      respAtomicQ_(k, name + ".respAtomicQ", 2),
      ldHits_(stats().counter("ldHits")),
      ldMisses_(stats().counter("ldMisses")),
      stHits_(stats().counter("stHits")),
      stMisses_(stats().counter("stMisses")),
      evictions_(stats().counter("evictions")),
      invalidations_(stats().counter("invalidations")),
      atomicOps_(stats().counter("atomicOps"))
{
    if ((sets_ & (sets_ - 1)) != 0)
        cmd::fatal("%s: set count %u not a power of two", name.c_str(),
                   sets_);

    reqLdM.subcalls({&reqQ_.enqM});
    reqStM.subcalls({&reqQ_.enqM});
    reqAtomicM.subcalls({&reqQ_.enqM});
    respLdM.subcalls({&respLdQ_.deqM});
    respStM.subcalls({&respStQ_.deqM});
    respAtomicM.subcalls({&respAtomicQ_.deqM});

    Rule &rp = k.rule(name + ".processReq", [this] { ruleProcessReq(); });
    rp.when([this] { return reqQ_.canDeq(); });
    rp.uses({&reqQ_.firstM, &reqQ_.deqM, &respLdQ_.enqM, &respStQ_.enqM,
             &respAtomicQ_.enqM, &chan_.req.enqM, &chan_.resp.enqM,
             &prefQ_.enqM});

    Rule &rf = k.rule(name + ".fromParent", [this] { ruleFromParent(); });
    rf.when([this] { return chan_.fromParent.canDeq(); });
    rf.uses({&chan_.fromParent.firstM, &chan_.fromParent.deqM,
             &chan_.resp.enqM});

    Rule &rd = k.rule(name + ".drain", [this] { ruleDrain(); });
    rd.when([this] {
        for (uint32_t i = 0; i < mshr_.size(); i++) {
            if (mshr_.read(i).valid && mshr_.read(i).phase == 1)
                return true;
        }
        return false;
    });
    rd.uses({&respLdQ_.enqM, &respStQ_.enqM, &respAtomicQ_.enqM});

    // The prefetch engine serves both the next-line prefetcher and
    // external hints (SQ store prefetch); idle when the queue is
    // empty, so it is always registered.
    Rule &rpf = k.rule(name + ".prefetch", [this] { rulePrefetch(); });
    rpf.when([this] { return prefQ_.canDeq(); });
    rpf.uses({&prefQ_.firstM, &prefQ_.deqM, &chan_.req.enqM,
              &chan_.resp.enqM});
    prefetchHintM.subcalls({&prefQ_.enqM});

    rules_[0] = &rp;
    rules_[1] = &rf;
    rules_[2] = &rd;
    rules_[3] = &rpf;
}

void
L1Cache::setEvictHook(std::function<void(Addr)> hook,
                      const std::vector<const Method *> &methods)
{
    evictHook_ = std::move(hook);
    // Every rule that can evict or invalidate a line calls the hook.
    rules_[0]->uses(methods);
    rules_[1]->uses(methods);
    rules_[3]->uses(methods);
}

// ------------------------------------------------------ warm handoff

bool
L1Cache::debugPatchLine(Addr line, const Line &src)
{
    int w = findWay(line);
    if (w < 0)
        return false;
    uint32_t sl = slot(setOf(line), w);
    if (static_cast<Msi>(state_.read(sl)) == Msi::I)
        return false; // busy-way placeholder: no data to resync
    data_.write(sl, src);
    return true;
}

bool
L1Cache::quiescent() const
{
    for (uint32_t i = 0; i < cfg_.mshrs; i++)
        if (mshr_.read(i).valid)
            return false;
    for (uint32_t sl = 0; sl < sets_ * ways_; sl++)
        if (lockedSt_.read(sl))
            return false;
    return reqQ_.size() == 0 && prefQ_.size() == 0 &&
           respLdQ_.size() == 0 && respStQ_.size() == 0 &&
           respAtomicQ_.size() == 0;
}

bool
L1Cache::warmHit(Addr line, const Line &src)
{
    int w = findWay(line);
    if (w < 0)
        return false;
    data_.write(slot(setOf(line), w), src);
    return true;
}

bool
L1Cache::warmInstall(Addr line, const Line &src, bool &evicted,
                     Addr &victim)
{
    uint32_t set = setOf(line);
    int w = pickVictim(set);
    if (w < 0)
        return false;
    uint32_t sl = slot(set, w);
    evicted = state_.read(sl) != static_cast<uint8_t>(Msi::I);
    if (evicted) {
        victim = tags_.read(sl);
        if (resvValid_.read() && resvLine_.read() == victim)
            resvValid_.write(false);
    }
    tags_.write(sl, line);
    state_.write(sl, static_cast<uint8_t>(Msi::S));
    data_.write(sl, src);
    lockedSt_.write(sl, 0);
    lruPtr_.write(set, (w + 1) % ways_);
    return true;
}

void
L1Cache::warmInvalidate(Addr line)
{
    int w = findWay(line);
    if (w < 0)
        return;
    state_.write(slot(setOf(line), w), static_cast<uint8_t>(Msi::I));
    if (resvValid_.read() && resvLine_.read() == line)
        resvValid_.write(false);
}

// --------------------------------------------------------- interface

void
L1Cache::reqLd(uint8_t id, Addr addr)
{
    reqLdM();
    Req r;
    r.kind = Req::Kind::Ld;
    r.id = id;
    r.addr = addr;
    reqQ_.enq(r);
}

void
L1Cache::reqSt(uint8_t id, Addr addr)
{
    reqStM();
    if (!cfg_.allowStores)
        panic("%s: store to a read-only cache", name().c_str());
    Req r;
    r.kind = Req::Kind::St;
    r.id = id;
    r.addr = addr;
    reqQ_.enq(r);
}

void
L1Cache::reqAtomic(uint8_t id, Addr addr, isa::Op op, uint64_t operand,
                   uint8_t bytes)
{
    reqAtomicM();
    Req r;
    r.kind = Req::Kind::Atomic;
    r.id = id;
    r.addr = addr;
    r.amoOp = op;
    r.operand = operand;
    r.bytes = bytes;
    reqQ_.enq(r);
}

L1Cache::LdResp
L1Cache::respLd()
{
    respLdM();
    return respLdQ_.deq();
}

uint8_t
L1Cache::respSt()
{
    respStM();
    return respStQ_.deq();
}

L1Cache::AtomicResp
L1Cache::respAtomic()
{
    respAtomicM();
    return respAtomicQ_.deq();
}

void
L1Cache::writeData(Addr addr, uint64_t value, uint8_t bytes)
{
    writeDataM();
    Addr ln = lineAddr(addr);
    int way = findWay(ln);
    if (way < 0)
        panic("%s: writeData to absent line %#llx", name().c_str(),
              (unsigned long long)ln);
    uint32_t sl = slot(setOf(ln), way);
    if (!lockedSt_.read(sl))
        panic("%s: writeData to unlocked line %#llx", name().c_str(),
              (unsigned long long)ln);
    Line line = data_.read(sl);
    line.write(lineOffset(addr), value, bytes);
    data_.write(sl, line);
    lockedSt_.write(sl, 0);
}

void
L1Cache::writeLineData(Addr lineA, const Line &data, uint64_t byteMask)
{
    writeDataM();
    int way = findWay(lineA);
    if (way < 0)
        panic("%s: writeLineData to absent line %#llx", name().c_str(),
              (unsigned long long)lineA);
    uint32_t sl = slot(setOf(lineA), way);
    if (!lockedSt_.read(sl))
        panic("%s: writeLineData to unlocked line %#llx", name().c_str(),
              (unsigned long long)lineA);
    Line cur = data_.read(sl);
    for (unsigned b = 0; b < kLineBytes; b++) {
        if (byteMask & (1ull << b))
            cur.write(b, data.read(b, 1), 1);
    }
    data_.write(sl, cur);
    lockedSt_.write(sl, 0);
}

// ----------------------------------------------------------- helpers

int
L1Cache::findWay(Addr line) const
{
    uint32_t set = setOf(line);
    for (uint32_t w = 0; w < ways_; w++) {
        uint32_t sl = slot(set, w);
        if (tags_.read(sl) == line &&
            (state_.read(sl) != static_cast<uint8_t>(Msi::I) ||
             wayBusy_.read(sl)))
            return static_cast<int>(w);
    }
    return -1;
}

int
L1Cache::findMshr(Addr line) const
{
    for (uint32_t i = 0; i < mshr_.size(); i++) {
        if (mshr_.read(i).valid && mshr_.read(i).line == line)
            return static_cast<int>(i);
    }
    return -1;
}

int
L1Cache::freeMshr() const
{
    for (uint32_t i = 0; i < mshr_.size(); i++) {
        if (!mshr_.read(i).valid)
            return static_cast<int>(i);
    }
    return -1;
}

int
L1Cache::pickVictim(uint32_t set) const
{
    for (uint32_t w = 0; w < ways_; w++) {
        uint32_t sl = slot(set, w);
        if (state_.read(sl) == static_cast<uint8_t>(Msi::I) &&
            !wayBusy_.read(sl))
            return static_cast<int>(w);
    }
    uint32_t start = lruPtr_.read(set);
    for (uint32_t i = 0; i < ways_; i++) {
        uint32_t w = (start + i) % ways_;
        uint32_t sl = slot(set, w);
        if (!wayBusy_.read(sl) && !lockedSt_.read(sl))
            return static_cast<int>(w);
    }
    return -1;
}

void
L1Cache::doEvictNotice(Addr line)
{
    if (resvValid_.read() && resvLine_.read() == line)
        resvValid_.write(false);
    if (evictHook_)
        evictHook_(line);
}

uint64_t
L1Cache::performAtomic(const Waiter &w, uint32_t sl, Addr line)
{
    atomicOps_.inc();
    isa::Op op = static_cast<isa::Op>(w.amoOpRaw);
    isa::Inst probe;
    probe.op = op;
    Line ln = data_.read(sl);
    uint64_t old = ln.read(w.off, w.bytes);
    if (probe.isLr()) {
        // Reservation may already be set; re-point it here.
        resvValid_.write(true);
        resvLine_.write(line);
        return isa::loadExtend(op, old);
    }
    if (probe.isSc()) {
        bool ok = resvValid_.read() && resvLine_.read() == line;
        if (resvValid_.read())
            resvValid_.write(false);
        if (ok) {
            ln.write(w.off, w.operand, w.bytes);
            data_.write(sl, ln);
        }
        return ok ? 0 : 1;
    }
    // AMO read-modify-write.
    ln.write(w.off, isa::amoCompute(op, old, w.operand), w.bytes);
    data_.write(sl, ln);
    if (state_.read(sl) == static_cast<uint8_t>(Msi::E))
        state_.write(sl, static_cast<uint8_t>(Msi::M));
    return isa::loadExtend(op, old);
}

void
L1Cache::serveWaiter(const Waiter &w, uint32_t sl, Addr line)
{
    switch (static_cast<Req::Kind>(w.kind)) {
      case Req::Kind::Ld:
        respLdQ_.enq({w.id, data_.read(sl)});
        break;
      case Req::Kind::St:
        if (state_.read(sl) == static_cast<uint8_t>(Msi::E))
            state_.write(sl, static_cast<uint8_t>(Msi::M));
        lockedSt_.write(sl, 1);
        respStQ_.enq(w.id);
        break;
      case Req::Kind::Atomic:
        respAtomicQ_.enq({w.id, performAtomic(w, sl, line)});
        break;
    }
}

// -------------------------------------------------------------- rules

void
L1Cache::ruleProcessReq()
{
    Req r = reqQ_.first();
    Addr ln = lineAddr(r.addr);
    uint32_t set = setOf(ln);
    int way = findWay(ln);
    // Stores and atomics need write permission: M, or E (MESI), which
    // upgrades silently. Misses always request M for them.
    uint8_t need = static_cast<uint8_t>(
        r.kind == Req::Kind::Ld ? Msi::S : Msi::E);

    if (way >= 0) {
        uint32_t sl = slot(set, way);
        if (state_.read(sl) >= need && !wayBusy_.read(sl)) {
            // Hit. (serveWaiter performs the silent E->M upgrade for
            // stores and atomics.)
            Waiter w;
            w.kind = static_cast<uint8_t>(r.kind);
            w.id = r.id;
            w.amoOpRaw = static_cast<uint8_t>(r.amoOp);
            w.bytes = r.bytes;
            w.operand = r.operand;
            w.off = static_cast<uint16_t>(lineOffset(r.addr));
            serveWaiter(w, sl, ln);
            reqQ_.deq();
            (r.kind == Req::Kind::Ld ? ldHits_ : stHits_).inc();
            return;
        }
    }

    // Miss (or insufficient permission, or line busy).
    int mi = findMshr(ln);
    if (mi >= 0) {
        Mshr m = mshr_.read(mi);
        // Secondary load misses piggyback on the outstanding fill;
        // anything else stalls the queue head until the fill lands
        // (no-op commit: this can persist for many cycles).
        if (!(r.kind == Req::Kind::Ld && m.phase == 0 &&
              m.nWait < kMaxWait))
            return;
        Waiter &w = m.waiters[m.nWait++];
        w.kind = static_cast<uint8_t>(r.kind);
        w.id = r.id;
        w.off = static_cast<uint16_t>(lineOffset(r.addr));
        mshr_.write(mi, m);
        reqQ_.deq();
        ldMisses_.inc();
        return;
    }

    Waiter w;
    w.kind = static_cast<uint8_t>(r.kind);
    w.id = r.id;
    w.amoOpRaw = static_cast<uint8_t>(r.amoOp);
    w.bytes = r.bytes;
    w.operand = r.operand;
    w.off = static_cast<uint16_t>(lineOffset(r.addr));
    uint8_t want = r.kind == Req::Kind::Ld
                       ? static_cast<uint8_t>(Msi::S)
                       : static_cast<uint8_t>(Msi::M);
    if (!allocateMiss(ln, want, &w))
        return; // no MSHR / no victim: stall the request queue
    if (cfg_.prefetchNextLine && r.kind == Req::Kind::Ld &&
        prefQ_.canEnq())
        prefQ_.enq({ln + kLineBytes, static_cast<uint8_t>(Msi::S)});
    reqQ_.deq();
    (r.kind == Req::Kind::Ld ? ldMisses_ : stMisses_).inc();
}

bool
L1Cache::allocateMiss(Addr ln, uint8_t want, const Waiter *w)
{
    int free = freeMshr();
    if (free < 0)
        return false;
    uint32_t set = setOf(ln);
    int targetWay = findWay(ln); // upgrade in place on a tag match
    if (targetWay < 0) {
        targetWay = pickVictim(set);
        if (targetWay < 0)
            return false;
        uint32_t sl = slot(set, targetWay);
        uint8_t st = state_.read(sl);
        if (st != static_cast<uint8_t>(Msi::I)) {
            // Voluntary writeback of the victim.
            DowngradeResp wb;
            wb.line = tags_.read(sl);
            wb.newState = Msi::I;
            wb.voluntary = true;
            wb.hasData = st == static_cast<uint8_t>(Msi::M);
            if (wb.hasData)
                wb.data = data_.read(sl);
            chan_.resp.enq(wb);
            doEvictNotice(tags_.read(sl));
            state_.write(sl, static_cast<uint8_t>(Msi::I));
            evictions_.inc();
        }
        tags_.write(sl, ln);
        lruPtr_.write(set, (targetWay + 1) % ways_);
    }
    uint32_t sl = slot(set, targetWay);
    wayBusy_.write(sl, 1);

    Mshr m;
    m.valid = true;
    m.phase = 0;
    m.line = ln;
    m.want = want;
    m.way = static_cast<uint16_t>(targetWay);
    m.served = 0;
    if (w) {
        m.nWait = 1;
        m.waiters[0] = *w;
    } else {
        m.nWait = 0; // prefetch: fill only
    }
    mshr_.write(free, m);
    chan_.req.enq({ln, static_cast<Msi>(want)});
    return true;
}

void
L1Cache::rulePrefetch()
{
    PrefReq p = prefQ_.first();
    // Drop if permission already sufficient or a transaction is in
    // flight; otherwise start a waiter-less fill. Prefetches never
    // steal the last MSHR.
    int way = findWay(p.line);
    bool drop = findMshr(p.line) >= 0 ||
                (way >= 0 &&
                 state_.read(slot(setOf(p.line), way)) >= p.want);
    if (!drop) {
        int freeCount = 0;
        for (uint32_t i = 0; i < mshr_.size(); i++) {
            if (!mshr_.read(i).valid)
                freeCount++;
        }
        if (freeCount >= 2)
            allocateMiss(p.line, p.want, nullptr);
    }
    prefQ_.deq();
}

void
L1Cache::prefetchHint(Addr addr, Msi want)
{
    prefetchHintM();
    if (prefQ_.canEnq())
        prefQ_.enq({lineAddr(addr), static_cast<uint8_t>(want)});
}

void
L1Cache::ruleFromParent()
{
    FromParent m = chan_.fromParent.first();

    if (m.kind == FromParentKind::DowngradeReq) {
        int way = findWay(m.line);
        DowngradeResp ack;
        ack.line = m.line;
        ack.voluntary = false;
        if (way >= 0) {
            uint32_t sl = slot(setOf(m.line), way);
            uint8_t st = state_.read(sl);
            if (st > static_cast<uint8_t>(m.state)) {
                require(!lockedSt_.read(sl));
                int mi = findMshr(m.line);
                // Never downgrade under an in-progress drain.
                require(!(mi >= 0 && mshr_.read(mi).phase == 1));
                ack.newState = m.state;
                ack.hasData = st == static_cast<uint8_t>(Msi::M);
                if (ack.hasData)
                    ack.data = data_.read(sl);
                state_.write(sl, static_cast<uint8_t>(m.state));
                if (m.state == Msi::I) {
                    doEvictNotice(m.line);
                    invalidations_.inc();
                }
            } else {
                ack.newState = static_cast<Msi>(st);
            }
        } else {
            ack.newState = Msi::I; // already gone (raced with eviction)
        }
        chan_.resp.enq(ack);
        chan_.fromParent.deq();
        return;
    }

    // Grant.
    int mi = findMshr(m.line);
    if (mi < 0 || mshr_.read(mi).phase != 0)
        panic("%s: grant for line %#llx with no waiting MSHR",
              name().c_str(), (unsigned long long)m.line);
    Mshr ms = mshr_.read(mi);
    uint32_t sl = slot(setOf(m.line), ms.way);
    if (m.hasData)
        data_.write(sl, m.data);
    state_.write(sl, static_cast<uint8_t>(m.state));
    ms.phase = 1;
    mshr_.write(mi, ms);
    chan_.fromParent.deq();
}

void
L1Cache::ruleDrain()
{
    int mi = -1;
    for (uint32_t i = 0; i < mshr_.size(); i++) {
        if (mshr_.read(i).valid && mshr_.read(i).phase == 1) {
            mi = static_cast<int>(i);
            break;
        }
    }
    require(mi >= 0);
    Mshr m = mshr_.read(mi);
    uint32_t sl = slot(setOf(m.line), m.way);
    if (m.nWait > 0) {
        serveWaiter(m.waiters[m.served], sl, m.line);
        m.served++;
    }
    if (m.served == m.nWait) {
        m.valid = false;
        wayBusy_.write(sl, 0);
        lruPtr_.write(setOf(m.line), (m.way + 1) % ways_);
    }
    mshr_.write(mi, m);
}

} // namespace riscy
