#include "proc/system.hh"

#include <algorithm>
#include <chrono>
#include <iostream>

namespace riscy {

using namespace cmd;

const char *
toString(StopReason r)
{
    switch (r) {
      case StopReason::None:
        return "none";
      case StopReason::AllExited:
        return "all-exited";
      case StopReason::HostFail:
        return "host-fail";
      case StopReason::MaxCycles:
        return "max-cycles";
      case StopReason::WallClock:
        return "wall-clock";
      case StopReason::MaxInsts:
        return "max-insts";
    }
    return "?";
}

System::System(const SystemConfig &cfg) : cfg_(cfg)
{
    k_.setScheduler(cfg_.scheduler);
    k_.setParallelThreads(cfg_.threads);
    k_.setLookahead(cfg_.lookahead);
    k_.setBarrierTimeoutNs(cfg_.barrierTimeoutNs);
    k_.setCompiledProfile(cfg_.compiledProfileCycles, cfg_.compiledHotRate);
    cfg_.mem.cores = cfg_.cores;
    host_ = std::make_unique<HostDevice>(cfg_.cores);
    hier_ = std::make_unique<MemHierarchy>(k_, "mem", mem_, cfg_.mem);
    for (uint32_t i = 0; i < cfg_.cores; i++) {
        std::string cn = strfmt("hart%u", i);
        // Same-named hint group as the hierarchy's per-core L1 scope:
        // core + TLBs + L1s form one "hart<i>" partition domain,
        // talking to the shared "mem" domain only through the
        // TimedFifo cross-bar channels.
        DomainHint hh(k_, cn);
        if (cfg_.inOrder) {
            ioCores_.push_back(std::make_unique<InOrderCore>(
                k_, cn, i, cfg_.core, hier_->icache(i), hier_->dcache(i),
                hier_->walkPort(i), *host_));
        } else {
            oooCores_.push_back(std::make_unique<OooCore>(
                k_, cn, i, cfg_.core, hier_->icache(i), hier_->dcache(i),
                hier_->walkPort(i), *host_));
        }
    }
}

void
System::elaborate()
{
    k_.elaborate();
    setupObs();
}

void
System::setupObs()
{
    if (!cfg_.obs.enabled() && !cfg_.statsResetAtCycle)
        return;
    obsHub_ = std::make_unique<obs::ObsHub>(k_, cfg_.obs, cfg_.cores);
    warmupInstret_.assign(cfg_.cores, 0);
    if (!cfg_.inOrder) {
        for (uint32_t i = 0; i < cfg_.cores; i++) {
            oooCores_[i]->setTracer(obsHub_->pipeline(i));
            oooCores_[i]->setCpiStack(obsHub_->cpi(i));
            // D-miss split: cycles whose blocked line sits at the DRAM
            // controller report as d_miss_dram instead of d_miss. The
            // probe runs in the between-cycles sampling hook, where
            // cross-domain reads of the L2 transaction tables are safe.
            oooCores_[i]->setDramBoundProbe([this](Addr pa) {
                return hier_->dramPending(lineAddr(pa));
            });
        }
    }
    // Between kernel cycles (driving thread, all domains quiesced):
    // per-core sampling, then the warmup-window stats reset.
    obsHub_->setCyclePostHook([this](uint64_t cycle) {
        for (auto &c : oooCores_)
            c->obsCycle();
        if (cfg_.statsResetAtCycle && cycle == cfg_.statsResetAtCycle) {
            k_.resetAllStats();
            for (uint32_t i = 0; i < cfg_.cores; i++) {
                if (auto *cp = obsHub_->cpi(i))
                    cp->reset();
                warmupInstret_[i] = instret(i);
            }
        }
    });
}

bool
System::writeTraces()
{
    if (!obsHub_)
        return true;
    if (!cfg_.inOrder) {
        for (uint32_t i = 0; i < cfg_.cores; i++) {
            if (const obs::CpiStack *cp = obsHub_->cpi(i)) {
                const uint32_t hart = i;
                cp->exportStats(oooCores_[i]->stats(), [this, hart] {
                    // Sampled mode: the stack only saw the measured
                    // windows, so divide by the measured instructions.
                    if (cfg_.execMode == ExecMode::Sampled)
                        return sampleStats_.measuredInsts;
                    return instret(hart) - warmupInstret_[hart];
                });
            }
        }
    }
    return obsHub_->finish();
}

void
System::start(Addr entry, uint64_t satp, const std::vector<Addr> &sp)
{
    for (uint32_t i = 0; i < cfg_.cores; i++) {
        Addr s = i < sp.size() ? sp[i] : 0;
        if (cfg_.inOrder)
            ioCores_[i]->reset(entry, satp, s);
        else
            oooCores_[i]->reset(entry, satp, s);
    }
    funcHarts_.clear();
    pristineSnap_.clear();
    if (cfg_.execMode != ExecMode::Detailed) {
        // Functional harts, seeded exactly like the core resets above
        // (x2 = stack top, x10 = hart id) and sharing mem_/host_.
        for (uint32_t i = 0; i < cfg_.cores; i++) {
            auto g = std::make_unique<isa::GoldenModel>(mem_, *host_, i,
                                                        entry);
            g->csrs().satp = satp;
            g->setReg(2, i < sp.size() ? sp[i] : 0);
            g->setReg(10, i);
            funcHarts_.push_back(std::move(g));
        }
        // The handoff baseline: a freshly reset kernel with empty
        // pipelines and caches, same image CheckpointManager persists.
        pristineSnap_ = k_.snapshot();
    }
}

uint64_t
System::instret(uint32_t i) const
{
    return cfg_.inOrder ? ioCores_[i]->instret() : oooCores_[i]->instret();
}

void
System::setOnCommit(uint32_t i,
                    std::function<void(const CommitRecord &)> fn)
{
    if (cfg_.inOrder)
        ioCores_[i]->onCommit = std::move(fn);
    else
        oooCores_[i]->onCommit = std::move(fn);
}

namespace {

void
putBlob(std::vector<uint8_t> &out, const std::vector<uint8_t> &blob)
{
    for (int i = 0; i < 8; i++)
        out.push_back(uint8_t(uint64_t(blob.size()) >> (8 * i)));
    out.insert(out.end(), blob.begin(), blob.end());
}

std::vector<uint8_t>
getBlob(const uint8_t *&p, const uint8_t *end)
{
    if (end - p < 8)
        panic("system: truncated checkpoint payload");
    uint64_t len = 0;
    for (int i = 0; i < 8; i++)
        len |= uint64_t(p[i]) << (8 * i);
    p += 8;
    if (uint64_t(end - p) < len)
        panic("system: truncated checkpoint payload");
    std::vector<uint8_t> blob(p, p + len);
    p += len;
    return blob;
}

} // namespace

std::vector<uint8_t>
System::checkpointPayload() const
{
    std::vector<uint8_t> out;
    putBlob(out, mem_.serialize());
    putBlob(out, host_->serialize());
    putBlob(out, userSave_ ? userSave_() : std::vector<uint8_t>{});
    return out;
}

void
System::loadCheckpointPayload(const std::vector<uint8_t> &bytes)
{
    const uint8_t *p = bytes.data();
    const uint8_t *end = p + bytes.size();
    mem_.deserialize(getBlob(p, end));
    host_->deserialize(getBlob(p, end));
    std::vector<uint8_t> user = getBlob(p, end);
    if (userLoad_)
        userLoad_(user);
}

void
System::setCheckpointUserHooks(
    std::function<std::vector<uint8_t>()> save,
    std::function<void(const std::vector<uint8_t> &)> load)
{
    userSave_ = std::move(save);
    userLoad_ = std::move(load);
}

HardenedRunner &
System::runner()
{
    if (!runner_) {
        HardenedConfig hc;
        hc.watchdogStallCycles = cfg_.watchdogStallCycles;
        hc.checkpointEvery = cfg_.checkpointEvery;
        hc.checkpointPath = cfg_.checkpointPath;
        hc.maxFaultRetries = cfg_.maxFaultRetries;
        hc.degradeScheduler = cfg_.degradeScheduler;
        runner_ = std::make_unique<HardenedRunner>(k_, hc);
        // Heartbeat = architectural progress: committed instructions
        // plus exit flags (an exiting hart commits nothing more but
        // still made progress). Catches livelock, not just deadlock.
        runner_->watchdog().setHeartbeat([this] {
            uint64_t total = 0;
            for (uint32_t i = 0; i < cfg_.cores; i++)
                total += instret(i) + (host_->exited(i) ? 1 : 0);
            return total;
        });
        if (auto *ck = runner_->checkpoints()) {
            ck->setPayloadHooks(
                [this] { return checkpointPayload(); },
                [this](const std::vector<uint8_t> &b) {
                    loadCheckpointPayload(b);
                });
        }
    }
    return *runner_;
}

bool
System::restoreCheckpoint()
{
    HardenedRunner &hr = runner();
    CheckpointManager *ck = hr.checkpoints();
    if (!ck)
        kfault(FaultKind::ApiMisuse, "system",
               "restoreCheckpoint() without a checkpointPath");
    if (!ck->load())
        return false;
    hr.watchdog().reset();
    return true;
}

bool
System::run(uint64_t maxCycles)
{
    HardenedRunner &hr = runner();
    auto t0 = std::chrono::steady_clock::now();
    auto nsSince = [&t0] {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };
    const uint64_t wallBudgetNs = cfg_.maxWallSeconds * 1'000'000'000ull;
    uint64_t wallPoll = 0;
    stopReason_ = StopReason::MaxCycles;
    auto done = [&] {
        if (host_->failed()) {
            stopReason_ = StopReason::HostFail;
            return true;
        }
        if (host_->allExited()) {
            stopReason_ = StopReason::AllExited;
            return true;
        }
        // The clock read is ~a cache miss; poll it coarsely.
        if (wallBudgetNs && ++wallPoll >= 256) {
            wallPoll = 0;
            if (nsSince() >= wallBudgetNs) {
                stopReason_ = StopReason::WallClock;
                return true;
            }
        }
        return false;
    };
    try {
        hr.run(done, maxCycles);
    } catch (const KernelFault &) {
        runWallNs_ += nsSince();
        std::cerr << k_.progressReport();
        for (auto &core : oooCores_)
            std::cerr << core->debugString();
        throw;
    }
    runWallNs_ += nsSince();
    return stopReason_ == StopReason::AllExited;
}

/*
 * ---- Execution modes (SystemConfig::execMode, proc/sampling.hh) ----
 */

bool
System::runFastForward(uint64_t maxInsts)
{
    if (funcHarts_.empty())
        kfault(FaultKind::ApiMisuse, "system",
               "runFastForward() needs execMode != Detailed (and a "
               "prior start())");
    auto t0 = std::chrono::steady_clock::now();
    // Round-robin batches keep multi-hart spin barriers live: a hart
    // parked on a barrier burns its batch, but its peers advance.
    constexpr uint64_t kBatch = 8192;
    uint64_t total = 0;
    stopReason_ = StopReason::MaxInsts;
    for (;;) {
        uint64_t ran = 0;
        for (auto &g : funcHarts_) {
            uint64_t budget = kBatch;
            if (maxInsts && maxInsts - total - ran < budget)
                budget = maxInsts - total - ran;
            ran += g->run(budget);
            if (host_->failed())
                break;
        }
        total += ran;
        if (host_->failed()) {
            stopReason_ = StopReason::HostFail;
            break;
        }
        if (host_->allExited()) {
            stopReason_ = StopReason::AllExited;
            break;
        }
        if (maxInsts && total >= maxInsts)
            break; // MaxInsts
        if (ran == 0 && !maxInsts) {
            // Every live hart is spinning without retiring (can only
            // happen with a zero budget); avoid a silent infinite loop.
            kfault(FaultKind::ApiMisuse, "system",
                   "runFastForward(0) made no progress");
        }
    }
    sampleStats_.ffInsts += total;
    sampleStats_.totalInsts += total;
    runWallNs_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return stopReason_ == StopReason::AllExited;
}

void
System::handoffToDetailed()
{
    if (funcHarts_.empty() || pristineSnap_.empty())
        kfault(FaultKind::ApiMisuse, "system",
               "handoffToDetailed() needs execMode != Detailed (and a "
               "prior start())");
    k_.restore(pristineSnap_);
    for (uint32_t i = 0; i < cfg_.cores; i++) {
        isa::ArchState as = funcHarts_[i]->archState();
        if (cfg_.inOrder)
            ioCores_[i]->restoreArch(as);
        else
            oooCores_[i]->restoreArch(as);
    }
    if (runner_)
        runner_->watchdog().reset();
}

/*
 * One detailed (warmup + measure) window, plus the drain back to a
 * quiescent machine. The caller has already fast-forwarded and handed
 * off; we follow commits with the shadow, stop once `measure`
 * instructions retired past the warmup boundary, then park fetch and
 * cycle until the core and the memory hierarchy are empty — so the
 * next handoff can resync cache data without racing in-flight refills.
 * Returns true when the window ended for a terminal reason (exit,
 * failure, cycle overrun) — stopReason_ says which.
 */
bool
System::sampledInterval(ShadowTracker &shadow, uint64_t &warmCycles,
                        uint64_t &warmInsts, uint64_t &measCycles,
                        uint64_t &measInsts, uint64_t &drainInsts)
{
    const SamplingConfig &sc = cfg_.sampling;
    OooCore *ooo = cfg_.inOrder ? nullptr : oooCores_[0].get();
    InOrderCore *io = cfg_.inOrder ? ioCores_[0].get() : nullptr;

    // Chain the shadow in front of any existing commit hook.
    auto &hook = ooo ? ooo->onCommit : io->onCommit;
    auto prev = hook;
    hook = [&shadow, prev](const CommitRecord &r) {
        shadow.step(r.pc, r.trapped);
        if (prev)
            prev(r);
    };
    if (ooo)
        ooo->setCpiMuted(true); // warmup cycles stay out of the stats

    const uint64_t i0 = instret(0);
    const uint64_t c0 = k_.cycleCount();
    uint64_t iWarm = i0, cWarm = c0;
    bool measuring = sc.warmup == 0;
    if (measuring && ooo)
        ooo->setCpiMuted(false);
    // Generous per-window cycle budget: even at CPI 50 a window
    // fits; hitting it means the interval wedged, not a slow phase.
    const uint64_t cap = (sc.warmup + sc.measure) * 50 + 100000;

    HardenedRunner &hr = runner();
    auto t0 = std::chrono::steady_clock::now();
    stopReason_ = StopReason::MaxCycles;
    auto done = [&] {
        if (host_->failed()) {
            stopReason_ = StopReason::HostFail;
            return true;
        }
        if (host_->allExited()) {
            stopReason_ = StopReason::AllExited;
            return true;
        }
        if (!measuring && instret(0) - i0 >= sc.warmup) {
            measuring = true;
            iWarm = instret(0);
            cWarm = k_.cycleCount();
            if (ooo)
                ooo->setCpiMuted(false);
        }
        if (measuring && instret(0) - iWarm >= sc.measure) {
            stopReason_ = StopReason::MaxInsts;
            return true;
        }
        return false;
    };
    try {
        hr.run(done, cap);
    } catch (const KernelFault &) {
        hook = prev;
        std::cerr << k_.progressReport();
        throw;
    }
    if (ooo)
        ooo->setCpiMuted(true);

    if (!measuring) {
        iWarm = instret(0);
        cWarm = k_.cycleCount();
    }
    warmInsts = iWarm - i0;
    warmCycles = cWarm - c0;
    measInsts = instret(0) - iWarm;
    measCycles = k_.cycleCount() - cWarm;
    const bool terminal = stopReason_ != StopReason::MaxInsts;

    // Warm handoff back to fast-forward: park fetch, squash (OOO) or
    // retire (in-order) the in-flight work, and cycle until the core
    // and the whole hierarchy are quiescent, so the next handoff can
    // resync cache data without racing an in-flight refill. Drain
    // commits are real program instructions — the shadow (still
    // hooked) keeps following them; cycles stay CPI-muted.
    if (!terminal) {
        const uint64_t iDrain0 = instret(0);
        try {
            if (ooo)
                ooo->beginDrain();
            else
                io->beginDrain();
            auto quiet = [&] {
                return (ooo ? ooo->drained() : io->drained()) &&
                       hier_->quiescent();
            };
            // Generous bound: a full drain is ROB+SB+MSHR depth worth
            // of DRAM round trips, a few thousand cycles at most.
            uint64_t left = 100000;
            while (!quiet()) {
                if (left-- == 0)
                    kfault(FaultKind::DesignError, "system",
                           "sampled handoff drain did not quiesce");
                k_.run(1);
            }
        } catch (const KernelFault &) {
            hook = prev;
            std::cerr << k_.progressReport();
            throw;
        }
        drainInsts = instret(0) - iDrain0;
    }

    runWallNs_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    hook = prev;
    return terminal;
}

bool
System::runSampled(uint64_t maxInsts)
{
    if (cfg_.execMode != ExecMode::Sampled)
        kfault(FaultKind::ApiMisuse, "system",
               "runSampled() needs execMode == Sampled");
    if (cfg_.cores != 1)
        kfault(FaultKind::ApiMisuse, "system",
               "sampled mode is single-core (cores=%u)", cfg_.cores);
    if (funcHarts_.empty())
        kfault(FaultKind::ApiMisuse, "system",
               "runSampled() before start()");
    const SamplingConfig &sc = cfg_.sampling;
    if (sc.measure == 0)
        kfault(FaultKind::ApiMisuse, "system",
               "sampling.measure must be > 0");

    sampleStats_ = SampleStats{};
    IntervalEstimator est;
    isa::GoldenModel &g = *funcHarts_[0];
    // Journal every line fast-forwarding touches (fetch, load, store,
    // page-table walk), so each handoff can functionally warm the
    // caches with the skip's working set and resync dirtied lines.
    std::vector<uint64_t> journal;
    g.setTouchJournal(&journal);
    // Companion journals for the non-cache microarchitectural state:
    // leaf translations (TLB warming) and control transfers (BTB /
    // direction-predictor / RAS warming).
    std::vector<isa::GoldenModel::XlateRec> xlates;
    std::vector<isa::GoldenModel::BranchRec> branches;
    g.setXlateJournal(&xlates);
    g.setBranchJournal(&branches);
    stopReason_ = StopReason::MaxInsts;
    bool terminal = false;
    while (!terminal) {
        if (sc.maxIntervals && sampleStats_.intervals >= sc.maxIntervals)
            break; // MaxInsts: interval budget spent
        if (maxInsts && sampleStats_.totalInsts >= maxInsts)
            break;

        // 1. Warm handoff into the detailed core. Intervals are
        // measure-first: the detailed (warmup, measure) window runs
        // before each fast-forward skip, so the very start of the
        // program — often an unrepresentative setup phase — lands
        // inside a measured window instead of being systematically
        // skipped (skip-first ordering biases the estimate on short
        // programs whose fastest code is the beginning). The previous
        // interval left the machine drained and quiescent with every
        // cache, TLB and predictor warm (SMARTS' functional warming
        // for free); fast-forwarding advanced memory underneath the
        // caches, so resync the journaled lines' cached copies —
        // data only, no protocol-state change — then re-seed the
        // architectural state. The first iteration runs this on the
        // pristine post-start() machine, where it degenerates to
        // restoreArch (nothing is cached yet).
        isa::ArchState as = g.archState();
        ShadowTracker shadow(mem_, cfg_.cores, 0, as);
        // Functional warming: replay the skip's touches in program
        // order (LRU-faithful), one atomic action per touch — within
        // one action reads see start-of-action state, so sequential
        // victim selection needs a commit between touches. Stored-to
        // lines additionally get a data-only resync afterwards,
        // catching cached copies a skipped warmTouch (e.g. an E/M
        // holder on another child) left stale.
        std::vector<Addr> stores;
        bool ok = true;
        for (uint64_t e : journal) {
            Addr ln = e & ~static_cast<uint64_t>(63);
            bool ifetch = (e & isa::GoldenModel::kTouchFetch) != 0;
            // Two atomic actions per touch: the L2 install's victim
            // recall must commit before the L1 victim pick reads the
            // set's state (see MemHierarchy::warmTouchL2).
            bool inL2 = false;
            ok &= k_.runAtomically([&] {
                inL2 = hier_->warmTouchL2(0, ifetch, ln, readLine(mem_, ln));
            });
            if (inL2)
                ok &= k_.runAtomically([&] {
                    hier_->warmTouchL1(0, ifetch, ln, readLine(mem_, ln));
                });
            if (e & isa::GoldenModel::kTouchStore)
                stores.push_back(ln);
        }
        std::sort(stores.begin(), stores.end());
        stores.erase(std::unique(stores.begin(), stores.end()),
                     stores.end());
        ok &= k_.runAtomically([&] {
            for (Addr ln : stores)
                hier_->debugPatchLine(ln, readLine(mem_, ln));
        });
        if (!ok)
            kfault(FaultKind::DesignError, "system",
                   "sampled handoff cache warming failed");
        journal.clear();
        g.setTouchJournal(&journal); // reset the dedup filters
        if (cfg_.inOrder) {
            ioCores_[0]->warmTlbs(xlates);
            ioCores_[0]->warmPredictors(branches);
            ioCores_[0]->resumeArch(as);
        } else {
            oooCores_[0]->warmTlbs(xlates);
            oooCores_[0]->warmPredictors(branches);
            oooCores_[0]->resumeArch(as);
        }
        xlates.clear();
        branches.clear();
        runner().watchdog().reset();

        // 2. Detailed warmup + measure window, then drain back to a
        // quiescent machine.
        uint64_t wc = 0, wi = 0, mc = 0, mi = 0, di = 0;
        terminal = sampledInterval(shadow, wc, wi, mc, mi, di);
        sampleStats_.warmupInsts += wi + di; // di: drained, unmeasured
        sampleStats_.measuredInsts += mi;
        sampleStats_.measuredCycles += mc;
        sampleStats_.totalInsts += wi + mi + di;
        if (mc > 0 && mi >= sc.minMeasure) {
            // Accumulate CPI, not IPC: intervals hold a fixed
            // instruction count, so the arithmetic mean of per-interval
            // CPIs is the instruction-weighted estimate (the SMARTS
            // estimator); a mean of IPCs would be biased high on
            // phase-heterogeneous programs (Jensen's inequality).
            est.add(double(mc) / double(mi));
            sampleStats_.intervalCpi.push_back(double(mc) / double(mi));
            sampleStats_.intervals++;
        }

        // 3. Hand back: the shadow holds the architecturally complete
        // committed state. Replacing mem_ with it is consistent with
        // the warm caches — every dirty line holds committed store
        // data, which the shadow applied too, so cached copies and
        // memory agree line for line.
        mem_ = shadow.mem();
        g.setArchState(shadow.archState()); // invalidates fast caches
                                            // (mem_ pages moved)
        if (terminal)
            break;

        // 4. Fast-forward `skip` instructions functionally.
        auto t0 = std::chrono::steady_clock::now();
        uint64_t skipped = g.run(sc.skip);
        runWallNs_ += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        sampleStats_.ffInsts += skipped;
        sampleStats_.totalInsts += skipped;
        if (host_->failed()) {
            stopReason_ = StopReason::HostFail;
            break;
        }
        if (g.halted()) {
            stopReason_ = StopReason::AllExited;
            break;
        }
    }

    const double cpi = est.mean();
    if (cpi > 0) {
        sampleStats_.meanIpc = 1.0 / cpi;
        // Delta method: d(1/x) = dx / x^2.
        sampleStats_.ipcCi95 = est.ci95Half() / (cpi * cpi);
        sampleStats_.estTotalCycles =
            uint64_t(double(sampleStats_.totalInsts) * cpi);
    }
    return stopReason_ == StopReason::AllExited;
}

System::EventCounts
System::events(uint32_t i) const
{
    EventCounts ev;
    ev.instret = instret(i);
    ev.cycles = k_.cycleCount();
    ev.wallNs = runWallNs_;
    ev.syncEpochs = k_.syncEpochs();
    // Per-core modules are named hart<i>.<module>; walk the stats by
    // poking the known modules directly.
    if (!cfg_.inOrder) {
        OooCore &c = *oooCores_[i];
        ev.branchMispredicts = c.stats().get("mispredicts");
        ev.ldKills = c.stats().get("ldKillFlushes");
        ev.evictKills = c.lsqStats().get("evictKills");
        ev.dtlbMisses = c.dtlbStats().get("misses");
        ev.l2tlbMisses = c.l2tlbStats().get("misses");
    } else {
        InOrderCore &c = *ioCores_[i];
        ev.branchMispredicts = c.stats().get("mispredicts");
        ev.dtlbMisses = c.dtlbStats().get("misses");
        ev.l2tlbMisses = c.l2tlbStats().get("misses");
    }
    ev.l1dMisses = hier_->dcache(i).stats().get("ldMisses") +
                   hier_->dcache(i).stats().get("stMisses");
    ev.l2Misses = hier_->l2StatSum("misses");
    return ev;
}

} // namespace riscy
