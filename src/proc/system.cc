#include "proc/system.hh"

#include <chrono>
#include <iostream>

namespace riscy {

using namespace cmd;

const char *
toString(StopReason r)
{
    switch (r) {
      case StopReason::None:
        return "none";
      case StopReason::AllExited:
        return "all-exited";
      case StopReason::HostFail:
        return "host-fail";
      case StopReason::MaxCycles:
        return "max-cycles";
      case StopReason::WallClock:
        return "wall-clock";
    }
    return "?";
}

System::System(const SystemConfig &cfg) : cfg_(cfg)
{
    k_.setScheduler(cfg_.scheduler);
    k_.setParallelThreads(cfg_.threads);
    k_.setBarrierTimeoutNs(cfg_.barrierTimeoutNs);
    cfg_.mem.cores = cfg_.cores;
    host_ = std::make_unique<HostDevice>(cfg_.cores);
    hier_ = std::make_unique<MemHierarchy>(k_, "mem", mem_, cfg_.mem);
    for (uint32_t i = 0; i < cfg_.cores; i++) {
        std::string cn = strfmt("hart%u", i);
        // Same-named hint group as the hierarchy's per-core L1 scope:
        // core + TLBs + L1s form one "hart<i>" partition domain,
        // talking to the shared "mem" domain only through the
        // TimedFifo cross-bar channels.
        DomainHint hh(k_, cn);
        if (cfg_.inOrder) {
            ioCores_.push_back(std::make_unique<InOrderCore>(
                k_, cn, i, cfg_.core, hier_->icache(i), hier_->dcache(i),
                hier_->walkPort(i), *host_));
        } else {
            oooCores_.push_back(std::make_unique<OooCore>(
                k_, cn, i, cfg_.core, hier_->icache(i), hier_->dcache(i),
                hier_->walkPort(i), *host_));
        }
    }
}

void
System::elaborate()
{
    k_.elaborate();
    setupObs();
}

void
System::setupObs()
{
    if (!cfg_.obs.enabled() && !cfg_.statsResetAtCycle)
        return;
    obsHub_ = std::make_unique<obs::ObsHub>(k_, cfg_.obs, cfg_.cores);
    warmupInstret_.assign(cfg_.cores, 0);
    if (!cfg_.inOrder) {
        for (uint32_t i = 0; i < cfg_.cores; i++) {
            oooCores_[i]->setTracer(obsHub_->pipeline(i));
            oooCores_[i]->setCpiStack(obsHub_->cpi(i));
        }
    }
    // Between kernel cycles (driving thread, all domains quiesced):
    // per-core sampling, then the warmup-window stats reset.
    obsHub_->setCyclePostHook([this](uint64_t cycle) {
        for (auto &c : oooCores_)
            c->obsCycle();
        if (cfg_.statsResetAtCycle && cycle == cfg_.statsResetAtCycle) {
            k_.resetAllStats();
            for (uint32_t i = 0; i < cfg_.cores; i++) {
                if (auto *cp = obsHub_->cpi(i))
                    cp->reset();
                warmupInstret_[i] = instret(i);
            }
        }
    });
}

bool
System::writeTraces()
{
    if (!obsHub_)
        return true;
    if (!cfg_.inOrder) {
        for (uint32_t i = 0; i < cfg_.cores; i++) {
            if (const obs::CpiStack *cp = obsHub_->cpi(i)) {
                const uint32_t hart = i;
                cp->exportStats(oooCores_[i]->stats(), [this, hart] {
                    return instret(hart) - warmupInstret_[hart];
                });
            }
        }
    }
    return obsHub_->finish();
}

void
System::start(Addr entry, uint64_t satp, const std::vector<Addr> &sp)
{
    for (uint32_t i = 0; i < cfg_.cores; i++) {
        Addr s = i < sp.size() ? sp[i] : 0;
        if (cfg_.inOrder)
            ioCores_[i]->reset(entry, satp, s);
        else
            oooCores_[i]->reset(entry, satp, s);
    }
}

uint64_t
System::instret(uint32_t i) const
{
    return cfg_.inOrder ? ioCores_[i]->instret() : oooCores_[i]->instret();
}

void
System::setOnCommit(uint32_t i,
                    std::function<void(const CommitRecord &)> fn)
{
    if (cfg_.inOrder)
        ioCores_[i]->onCommit = std::move(fn);
    else
        oooCores_[i]->onCommit = std::move(fn);
}

namespace {

void
putBlob(std::vector<uint8_t> &out, const std::vector<uint8_t> &blob)
{
    for (int i = 0; i < 8; i++)
        out.push_back(uint8_t(uint64_t(blob.size()) >> (8 * i)));
    out.insert(out.end(), blob.begin(), blob.end());
}

std::vector<uint8_t>
getBlob(const uint8_t *&p, const uint8_t *end)
{
    if (end - p < 8)
        panic("system: truncated checkpoint payload");
    uint64_t len = 0;
    for (int i = 0; i < 8; i++)
        len |= uint64_t(p[i]) << (8 * i);
    p += 8;
    if (uint64_t(end - p) < len)
        panic("system: truncated checkpoint payload");
    std::vector<uint8_t> blob(p, p + len);
    p += len;
    return blob;
}

} // namespace

std::vector<uint8_t>
System::checkpointPayload() const
{
    std::vector<uint8_t> out;
    putBlob(out, mem_.serialize());
    putBlob(out, host_->serialize());
    putBlob(out, userSave_ ? userSave_() : std::vector<uint8_t>{});
    return out;
}

void
System::loadCheckpointPayload(const std::vector<uint8_t> &bytes)
{
    const uint8_t *p = bytes.data();
    const uint8_t *end = p + bytes.size();
    mem_.deserialize(getBlob(p, end));
    host_->deserialize(getBlob(p, end));
    std::vector<uint8_t> user = getBlob(p, end);
    if (userLoad_)
        userLoad_(user);
}

void
System::setCheckpointUserHooks(
    std::function<std::vector<uint8_t>()> save,
    std::function<void(const std::vector<uint8_t> &)> load)
{
    userSave_ = std::move(save);
    userLoad_ = std::move(load);
}

HardenedRunner &
System::runner()
{
    if (!runner_) {
        HardenedConfig hc;
        hc.watchdogStallCycles = cfg_.watchdogStallCycles;
        hc.checkpointEvery = cfg_.checkpointEvery;
        hc.checkpointPath = cfg_.checkpointPath;
        hc.maxFaultRetries = cfg_.maxFaultRetries;
        hc.degradeScheduler = cfg_.degradeScheduler;
        runner_ = std::make_unique<HardenedRunner>(k_, hc);
        // Heartbeat = architectural progress: committed instructions
        // plus exit flags (an exiting hart commits nothing more but
        // still made progress). Catches livelock, not just deadlock.
        runner_->watchdog().setHeartbeat([this] {
            uint64_t total = 0;
            for (uint32_t i = 0; i < cfg_.cores; i++)
                total += instret(i) + (host_->exited(i) ? 1 : 0);
            return total;
        });
        if (auto *ck = runner_->checkpoints()) {
            ck->setPayloadHooks(
                [this] { return checkpointPayload(); },
                [this](const std::vector<uint8_t> &b) {
                    loadCheckpointPayload(b);
                });
        }
    }
    return *runner_;
}

bool
System::restoreCheckpoint()
{
    HardenedRunner &hr = runner();
    CheckpointManager *ck = hr.checkpoints();
    if (!ck)
        kfault(FaultKind::ApiMisuse, "system",
               "restoreCheckpoint() without a checkpointPath");
    if (!ck->load())
        return false;
    hr.watchdog().reset();
    return true;
}

bool
System::run(uint64_t maxCycles)
{
    HardenedRunner &hr = runner();
    auto t0 = std::chrono::steady_clock::now();
    auto nsSince = [&t0] {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };
    const uint64_t wallBudgetNs = cfg_.maxWallSeconds * 1'000'000'000ull;
    uint64_t wallPoll = 0;
    stopReason_ = StopReason::MaxCycles;
    auto done = [&] {
        if (host_->failed()) {
            stopReason_ = StopReason::HostFail;
            return true;
        }
        if (host_->allExited()) {
            stopReason_ = StopReason::AllExited;
            return true;
        }
        // The clock read is ~a cache miss; poll it coarsely.
        if (wallBudgetNs && ++wallPoll >= 256) {
            wallPoll = 0;
            if (nsSince() >= wallBudgetNs) {
                stopReason_ = StopReason::WallClock;
                return true;
            }
        }
        return false;
    };
    try {
        hr.run(done, maxCycles);
    } catch (const KernelFault &) {
        runWallNs_ += nsSince();
        std::cerr << k_.progressReport();
        for (auto &core : oooCores_)
            std::cerr << core->debugString();
        throw;
    }
    runWallNs_ += nsSince();
    return stopReason_ == StopReason::AllExited;
}

System::EventCounts
System::events(uint32_t i) const
{
    EventCounts ev;
    ev.instret = instret(i);
    ev.cycles = k_.cycleCount();
    ev.wallNs = runWallNs_;
    // Per-core modules are named hart<i>.<module>; walk the stats by
    // poking the known modules directly.
    if (!cfg_.inOrder) {
        OooCore &c = *oooCores_[i];
        ev.branchMispredicts = c.stats().get("mispredicts");
        ev.ldKills = c.stats().get("ldKillFlushes");
        ev.evictKills = c.lsqStats().get("evictKills");
        ev.dtlbMisses = c.dtlbStats().get("misses");
        ev.l2tlbMisses = c.l2tlbStats().get("misses");
    } else {
        InOrderCore &c = *ioCores_[i];
        ev.branchMispredicts = c.stats().get("mispredicts");
        ev.dtlbMisses = c.dtlbStats().get("misses");
        ev.l2tlbMisses = c.l2tlbStats().get("misses");
    }
    ev.l1dMisses = hier_->dcache(i).stats().get("ldMisses") +
                   hier_->dcache(i).stats().get("stMisses");
    ev.l2Misses = hier_->l2().stats().get("misses");
    return ev;
}

} // namespace riscy
