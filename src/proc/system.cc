#include "proc/system.hh"

#include <chrono>
#include <iostream>

namespace riscy {

using namespace cmd;

System::System(const SystemConfig &cfg) : cfg_(cfg)
{
    k_.setScheduler(cfg_.scheduler);
    k_.setParallelThreads(cfg_.threads);
    cfg_.mem.cores = cfg_.cores;
    host_ = std::make_unique<HostDevice>(cfg_.cores);
    hier_ = std::make_unique<MemHierarchy>(k_, "mem", mem_, cfg_.mem);
    for (uint32_t i = 0; i < cfg_.cores; i++) {
        std::string cn = strfmt("hart%u", i);
        // Same-named hint group as the hierarchy's per-core L1 scope:
        // core + TLBs + L1s form one "hart<i>" partition domain,
        // talking to the shared "mem" domain only through the
        // TimedFifo cross-bar channels.
        DomainHint hh(k_, cn);
        if (cfg_.inOrder) {
            ioCores_.push_back(std::make_unique<InOrderCore>(
                k_, cn, i, cfg_.core, hier_->icache(i), hier_->dcache(i),
                hier_->walkPort(i), *host_));
        } else {
            oooCores_.push_back(std::make_unique<OooCore>(
                k_, cn, i, cfg_.core, hier_->icache(i), hier_->dcache(i),
                hier_->walkPort(i), *host_));
        }
    }
}

void
System::start(Addr entry, uint64_t satp, const std::vector<Addr> &sp)
{
    for (uint32_t i = 0; i < cfg_.cores; i++) {
        Addr s = i < sp.size() ? sp[i] : 0;
        if (cfg_.inOrder)
            ioCores_[i]->reset(entry, satp, s);
        else
            oooCores_[i]->reset(entry, satp, s);
    }
}

uint64_t
System::instret(uint32_t i) const
{
    return cfg_.inOrder ? ioCores_[i]->instret() : oooCores_[i]->instret();
}

void
System::setOnCommit(uint32_t i,
                    std::function<void(const CommitRecord &)> fn)
{
    if (cfg_.inOrder)
        ioCores_[i]->onCommit = std::move(fn);
    else
        oooCores_[i]->onCommit = std::move(fn);
}

bool
System::run(uint64_t maxCycles)
{
    constexpr uint64_t kWatchdog = 100000;
    uint64_t lastProgressCycle = k_.cycleCount();
    uint64_t lastInstret = 0;
    auto t0 = std::chrono::steady_clock::now();
    auto accountWall = [&] {
        runWallNs_ += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };
    for (uint64_t c = 0; c < maxCycles; c++) {
        if (host_->allExited() || host_->failed()) {
            accountWall();
            return host_->allExited() && !host_->failed();
        }
        k_.cycle();

        uint64_t total = 0;
        for (uint32_t i = 0; i < cfg_.cores; i++)
            total += instret(i) + (host_->exited(i) ? 1 : 0);
        if (total != lastInstret) {
            lastInstret = total;
            lastProgressCycle = k_.cycleCount();
        } else if (k_.cycleCount() - lastProgressCycle > kWatchdog) {
            accountWall();
            std::cerr << k_.progressReport();
            for (auto &core : oooCores_)
                std::cerr << core->debugString();
            panic("system: no commit progress for %llu cycles",
                  (unsigned long long)kWatchdog);
        }
    }
    accountWall();
    return host_->allExited() && !host_->failed();
}

System::EventCounts
System::events(uint32_t i) const
{
    EventCounts ev;
    ev.instret = instret(i);
    ev.cycles = k_.cycleCount();
    ev.wallNs = runWallNs_;
    // Per-core modules are named hart<i>.<module>; walk the stats by
    // poking the known modules directly.
    if (!cfg_.inOrder) {
        OooCore &c = *oooCores_[i];
        ev.branchMispredicts = c.stats().get("mispredicts");
        ev.ldKills = c.stats().get("ldKillFlushes");
        ev.evictKills = c.lsqStats().get("evictKills");
        ev.dtlbMisses = c.dtlbStats().get("misses");
        ev.l2tlbMisses = c.l2tlbStats().get("misses");
    } else {
        InOrderCore &c = *ioCores_[i];
        ev.branchMispredicts = c.stats().get("mispredicts");
        ev.dtlbMisses = c.dtlbStats().get("misses");
        ev.l2tlbMisses = c.l2tlbStats().get("misses");
    }
    ev.l1dMisses = hier_->dcache(i).stats().get("ldMisses") +
                   hier_->dcache(i).stats().get("stMisses");
    ev.l2Misses = hier_->l2().stats().get("misses");
    return ev;
}

} // namespace riscy
