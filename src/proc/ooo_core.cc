#include "proc/ooo_core.hh"

#include <algorithm>
#include <cstdlib>

#include "isa/exec.hh"

namespace riscy {

using namespace cmd;
using namespace isa;

namespace {

/** Trace flag, read once (getenv in a per-cycle path is measurable). */
const bool kTrace = std::getenv("RISCY_TRACE") != nullptr;

/** TLB-request / inflight-table id: LQ entries get bit 6. */
uint8_t
memId(bool isLq, uint8_t idx)
{
    return static_cast<uint8_t>(idx | (isLq ? 0x40 : 0));
}

} // namespace

/*
 * Pipeline-trace hook sites. Placement rule: hooks go at the END of a
 * rule body, after the last statement that could abort (an implicit
 * guard failing mid-body rolls the kernel state back but would NOT
 * roll back tracer records, and abort patterns are scheduler-specific
 * — a phantom event would break the byte-identical-across-schedulers
 * guarantee the determinism tests enforce). Disabled cost is one
 * null-pointer test; CMD_NO_OBS removes even that.
 */
#ifndef CMD_NO_OBS
#define OBS_STAGE(seq, st)                                                 \
    do {                                                                   \
        if (tracer_)                                                       \
            tracer_->stage((seq), obs::Stage::st, k_.cycleCount());        \
    } while (0)
#define OBS_RETIRE(robIdx)                                                 \
    do {                                                                   \
        if (tracer_)                                                       \
            tracer_->retire(robSeq_[robIdx], k_.cycleCount());             \
    } while (0)
#else
#define OBS_STAGE(seq, st)                                                 \
    do {                                                                   \
        (void)(seq);                                                       \
    } while (0)
#define OBS_RETIRE(robIdx)                                                 \
    do {                                                                   \
        (void)(robIdx);                                                    \
    } while (0)
#endif

OooCore::OooCore(Kernel &k, const std::string &name, uint32_t hartId,
                 const CoreConfig &cfg, L1Cache &icache, L1Cache &dcache,
                 UncachedPort &walkPort, HostDevice &host)
    : k_(k), name_(name), hartId_(hartId), cfg_(cfg), icache_(icache),
      dcache_(dcache), host_(host),
      fetchGhr_(k, name + ".fetchGhr", 0),
      fetchSeq_(k, name + ".fetchSeq", 0),
      fetchResp_(k, name + ".fetchResp", 8),
      aluRR_(k, name + ".aluRR", 0),
      mdBusy_(k, name + ".mdBusy"),
      inflight_(k, name + ".inflight", 128),
      pendingAtomic_(k, name + ".pendingAtomic"),
      csr_(k, name + ".csr"),
      instret_(k, name + ".instret", 0),
      flushReq_(k, name + ".flushReq"),
      serialPending_(k, name + ".serialPending", false),
      fetchStall_(k, name + ".fetchStall", false)
{
    meta_ = std::make_unique<Meta>(k, name + ".core");
    branches_ = &meta_->stats().counter("branches");
    mispredicts_ = &meta_->stats().counter("mispredicts");
    ldKillFlushes_ = &meta_->stats().counter("ldKillFlushes");
    flushes_ = &meta_->stats().counter("flushes");
    fetchRedirects_ = &meta_->stats().counter("fetchRedirects");
    committedLoads_ = &meta_->stats().counter("committedLoads");
    committedStores_ = &meta_->stats().counter("committedStores");
    committedAmos_ = &meta_->stats().counter("committedAmos");
    // Occupancy sampled by obsCycle() (only when observability is on);
    // fetch-to-commit latency sampled at every commit.
    robOccupancy_ = &meta_->stats().histogram("robOccupancy", 0,
                                              cfg.robSize + 1, 16);
    fetchToCommit_ = &meta_->stats().histogram("fetchToCommit", 0, 512, 32);

    epoch_ = std::make_unique<EpochManager>(k, name + ".epoch");
    btb_ = std::make_unique<Btb>(k, name + ".btb", cfg.btbEntries);
    bp_ = std::make_unique<TournamentBp>(k, name + ".bp");
    ras_ = std::make_unique<Ras>(k, name + ".ras", cfg.rasEntries);
    f2q_ = std::make_unique<CfFifo<FetchReq>>(k, name + ".f2q", 2);
    f3q_ = std::make_unique<CfFifo<FetchXlated>>(k, name + ".f3q", 4);
    instQ_ = std::make_unique<GroupFifo<Uop>>(k, name + ".instQ", 12);

    itlbChan_ = std::make_unique<TlbChannel>(k, name + ".itlbChan");
    dtlbChan_ = std::make_unique<TlbChannel>(k, name + ".dtlbChan");
    itlb_ = std::make_unique<L1Tlb>(k, name + ".itlb", cfg.itlb,
                                    *itlbChan_);
    dtlb_ = std::make_unique<L1Tlb>(k, name + ".dtlb", cfg.dtlb,
                                    *dtlbChan_);
    l2tlb_ = std::make_unique<L2Tlb>(
        k, name + ".l2tlb", cfg.l2tlb,
        std::vector<TlbChannel *>{dtlbChan_.get(), itlbChan_.get()},
        walkPort);

    uint32_t numPhys = cfg.numPhys();
    specMgr_ = std::make_unique<SpecManager>(k, name + ".specMgr",
                                             cfg.numSpecTags);
    rt_ = std::make_unique<RenameTable>(k, name + ".rt", cfg.numSpecTags);
    fl_ = std::make_unique<FreeList>(k, name + ".fl", numPhys,
                                     cfg.numSpecTags);
    sb_ = std::make_unique<Scoreboard>(k, name + ".sb", numPhys);
    prf_ = std::make_unique<Prf>(k, name + ".prf", numPhys);
    // Bypass ports: exec + regwrite per ALU pipe.
    bypass_ = std::make_unique<Bypass>(k, name + ".bypass",
                                       cfg.aluPipes * 2);
    rob_ = std::make_unique<Rob>(k, name + ".rob", cfg.robSize);

    for (uint32_t p = 0; p < cfg.aluPipes; p++) {
        std::string pn = name + strfmt(".alu%u", p);
        aluIq_.push_back(std::make_unique<IssueQueue>(k, pn + ".iq",
                                                      cfg.iqSize,
                                                      cfg.iqOrder));
        aluRrq_.push_back(
            std::make_unique<SpecFifo<Uop>>(k, pn + ".rrq", 1));
        aluExq_.push_back(
            std::make_unique<SpecFifo<Uop>>(k, pn + ".exq", 1));
        aluWbq_.push_back(
            std::make_unique<SpecFifo<Uop>>(k, pn + ".wbq", 1));
    }
    mdIq_ = std::make_unique<IssueQueue>(k, name + ".md.iq", cfg.iqSize,
                                         cfg.iqOrder);
    mdRrq_ = std::make_unique<SpecFifo<Uop>>(k, name + ".md.rrq", 1);
    memIq_ = std::make_unique<IssueQueue>(k, name + ".mem.iq", cfg.iqSize,
                                          cfg.iqOrder);
    memRrq_ = std::make_unique<SpecFifo<Uop>>(k, name + ".mem.rrq", 1);
    memAmq_ = std::make_unique<SpecFifo<Uop>>(k, name + ".mem.amq", 2);

    lsq_ = std::make_unique<Lsq>(k, name + ".lsq", cfg.lqSize,
                                 cfg.sqSize, cfg.tso);
    storeBuf_ = std::make_unique<StoreBuffer>(k, name + ".sb", cfg.sbSize);
    forwardQ_ = std::make_unique<CfFifo<Forwarded>>(k, name + ".fwdQ", 4);

    // tsoEvictKill=false deliberately breaks TSO load-load ordering;
    // only the litmus harness's negative test may do that.
    if (cfg.tso && cfg.tsoEvictKill) {
        dcache_.setEvictHook([this](Addr l) { lsq_->cacheEvict(l); },
                             {&lsq_->cacheEvictM});
    }

    // ------------------------------------------------- rule registration
    // The flush rule is registered first so it wins the schedule
    // tie-breaks and can fire before anything else commits state.
    k.rule(name + ".doFlush", [this] { doFlush(); })
        .when([this] { return flushReq_.read().valid; })
        .uses({&rob_->clearM, &lsq_->flushM, &rt_->resetM, &fl_->rebuildM,
               &specMgr_->clearM, &sb_->setAllReadyM, &prf_->setAllReadyM,
               &epoch_->redirectM, &itlb_->setSatpM, &dtlb_->setSatpM,
               &itlb_->flushM, &dtlb_->flushM, &l2tlb_->setSatpM,
               &mdIq_->clearM, &memIq_->clearM, &mdRrq_->clearM,
               &memRrq_->clearM, &memAmq_->clearM})
        .uses([this] {
            std::vector<const Method *> ms;
            for (uint32_t p = 0; p < cfg_.aluPipes; p++) {
                ms.push_back(&aluIq_[p]->clearM);
                ms.push_back(&aluRrq_[p]->clearM);
                ms.push_back(&aluExq_[p]->clearM);
                ms.push_back(&aluWbq_[p]->clearM);
            }
            return ms;
        }());

    k.rule(name + ".doCommit", [this] { doCommit(); })
        .when([this] {
            if (flushReq_.read().valid || !rob_->frontValid())
                return false;
            const RobEntry &e = rob_->front();
            return e.done || (e.isMmio && e.inst.isMem()) ||
                   (e.inst.isAtomic() && !e.atCommitSent &&
                    !pendingAtomic_.read().valid);
        })
        .uses({&rob_->deqM, &rob_->setAtCommitSentM, &rt_->setCommittedM,
               &fl_->freeM, &lsq_->setAtCommitStM, &lsq_->deqStM,
               &lsq_->dropLdM, &prf_->writeM, &sb_->setReadyM})
        .uses(wakeupMethods());

    k.rule(name + ".doFetch1", [this] { doFetch1(); })
        .when([this] {
            return !flushReq_.read().valid && !fetchStall_.read() &&
                   !epoch_->redirectedThisCycle() && f2q_->canEnq() &&
                   itlb_->canReq();
        })
        .uses({&btb_->predictM, &itlb_->reqM, &f2q_->enqM,
               &epoch_->setFetchPcM});

    k.rule(name + ".doFetch2", [this] { doFetch2(); })
        .when([this] { return itlb_->respReady() && f3q_->canEnq(); })
        .uses({&itlb_->respM, &f2q_->deqM, &f2q_->firstM,
               &icache_.reqLdM, &f3q_->enqM});

    k.rule(name + ".doIcacheResp", [this] { doIcacheResp(); })
        .when([this] { return icache_.respLdReady(); })
        .uses({&icache_.respLdM});

    k.rule(name + ".doFetch3", [this] { doFetch3(); })
        .when([this] { return f3q_->canDeq(); })
        .uses({&f3q_->firstM, &f3q_->deqM, &instQ_->enqM, &bp_->predictM,
               &btb_->predictM, &btb_->updateM, &ras_->pushM, &ras_->popM,
               &epoch_->resteerM});

    {
        std::vector<const Method *> ms = {
            &instQ_->deqM, &rob_->enqM, &fl_->allocM, &rt_->setSpecM,
            &rt_->snapshotM, &fl_->snapshotM, &sb_->rdyM,
            &sb_->setNotReadyM, &prf_->setNotReadyM, &specMgr_->allocM,
            &lsq_->enqLdM, &lsq_->enqStM, &mdIq_->enterM,
            &memIq_->enterM};
        for (uint32_t p = 0; p < cfg_.aluPipes; p++)
            ms.push_back(&aluIq_[p]->enterM);
        k.rule(name + ".doRename", [this] { doRename(); })
            .when([this] {
                return !flushReq_.read().valid &&
                       !serialPending_.read() && instQ_->size() > 0;
            })
            .uses(ms);
    }

    for (uint32_t p = 0; p < cfg_.aluPipes; p++) {
        k.rule(name + strfmt(".doIssue%u", p), [this, p] { doIssue(p); })
            .when([this, p] {
                return aluIq_[p]->canIssue() && aluRrq_[p]->canEnq();
            })
            .uses({&aluIq_[p]->issueM, &aluRrq_[p]->enqM});
        k.rule(name + strfmt(".doRegRead%u", p),
               [this, p] { doRegRead(p); })
            .when([this, p] {
                return aluRrq_[p]->canDeq() && aluExq_[p]->canEnq();
            })
            .uses({&aluRrq_[p]->firstM, &aluRrq_[p]->deqM, &prf_->readM,
                   &bypass_->getM, &aluExq_[p]->enqM});
        {
            std::vector<const Method *> ms = {
                &aluExq_[p]->firstM, &aluExq_[p]->deqM,
                &aluWbq_[p]->enqM, &bypass_->setM, &bp_->updateM,
                &btb_->updateM, &sb_->setReadyM, &specMgr_->commitM,
                &specMgr_->squashM, &rt_->rollbackM, &fl_->rollbackM,
                &epoch_->redirectM};
            auto wk = wakeupMethods();
            ms.insert(ms.end(), wk.begin(), wk.end());
            auto sm = specMethods();
            ms.insert(ms.end(), sm.begin(), sm.end());
            k.rule(name + strfmt(".doExec%u", p), [this, p] { doExec(p); })
                .when([this, p] { return aluExq_[p]->canDeq(); })
                .uses(ms);
        }
        k.rule(name + strfmt(".doRegWrite%u", p),
               [this, p] { doRegWrite(p); })
            .when([this, p] { return aluWbq_[p]->canDeq(); })
            .uses({&aluWbq_[p]->firstM, &aluWbq_[p]->deqM, &prf_->writeM,
                   &bypass_->setM, &rob_->markDoneM});
    }

    k.rule(name + ".doIssueMd", [this] { doIssueMd(); })
        .when([this] { return mdIq_->canIssue() && mdRrq_->canEnq(); })
        .uses({&mdIq_->issueM, &mdRrq_->enqM});
    k.rule(name + ".doRegReadMd", [this] { doRegReadMd(); })
        .when([this] {
            return mdRrq_->canDeq() && !mdBusy_.read().valid;
        })
        .uses({&mdRrq_->firstM, &mdRrq_->deqM, &prf_->readM,
               &bypass_->getM});
    k.rule(name + ".doMdWb", [this] { doMdWb(); })
        .when([this] {
            return mdBusy_.read().valid &&
                   k_.cycleCount() >= mdBusy_.read().doneCycle;
        })
        .uses([this] {
            std::vector<const Method *> ms = {&prf_->writeM,
                                              &sb_->setReadyM,
                                              &rob_->markDoneM};
            auto wk = wakeupMethods();
            ms.insert(ms.end(), wk.begin(), wk.end());
            return ms;
        }());

    k.rule(name + ".doIssueMem", [this] { doIssueMem(); })
        .when([this] { return memIq_->canIssue() && memRrq_->canEnq(); })
        .uses({&memIq_->issueM, &memRrq_->enqM});
    k.rule(name + ".doRegReadMem", [this] { doRegReadMem(); })
        .when([this] { return memRrq_->canDeq() && memAmq_->canEnq(); })
        .uses({&memRrq_->firstM, &memRrq_->deqM, &prf_->readM,
               &bypass_->getM, &memAmq_->enqM});
    k.rule(name + ".doAddrCalc", [this] { doAddrCalc(); })
        .when([this] { return memAmq_->canDeq(); })
        .uses({&memAmq_->firstM, &memAmq_->deqM, &dtlb_->reqM,
               &lsq_->updateLdM, &lsq_->updateStM,
               &rob_->setAfterTranslationM});
    k.rule(name + ".doUpdateLsq", [this] { doUpdateLsq(); })
        .when([this] { return dtlb_->respReady(); })
        .uses({&dtlb_->respM, &lsq_->updateLdM, &lsq_->updateStM,
               &rob_->setAfterTranslationM});

    k.rule(name + ".doIssueLd", [this] { doIssueLd(); })
        .when([this] { return lsq_->getIssueLd() >= 0; })
        .uses({&lsq_->issueLdM, &storeBuf_->searchM, &forwardQ_->enqM,
               &dcache_.reqLdM});
    k.rule(name + ".doRespLdCache", [this] { doRespLdCache(); })
        .when([this] { return dcache_.respLdReady(); })
        .uses([this] {
            std::vector<const Method *> ms = {&dcache_.respLdM,
                                              &lsq_->respLdM,
                                              &prf_->writeM,
                                              &sb_->setReadyM};
            auto wk = wakeupMethods();
            ms.insert(ms.end(), wk.begin(), wk.end());
            return ms;
        }());
    k.rule(name + ".doRespLdFwd", [this] { doRespLdFwd(); })
        .when([this] { return forwardQ_->canDeq(); })
        .uses([this] {
            std::vector<const Method *> ms = {&forwardQ_->deqM,
                                              &forwardQ_->firstM,
                                              &lsq_->respLdM,
                                              &prf_->writeM,
                                              &sb_->setReadyM};
            auto wk = wakeupMethods();
            ms.insert(ms.end(), wk.begin(), wk.end());
            return ms;
        }());
    k.rule(name + ".doDeqLd", [this] { doDeqLd(); })
        .when([this] { return lsq_->canDeqLd(); })
        .uses({&lsq_->deqLdM, &rob_->setAtLSQDeqM});

    if (cfg.tso) {
        k.rule(name + ".doIssueStTso", [this] { doIssueStTso(); })
            .when([this] {
                return lsq_->canIssueSt() && dcache_.canReq();
            })
            .uses({&dcache_.reqStM, &lsq_->markStIssuedM});
        k.rule(name + ".doRespStTso", [this] { doRespStTso(); })
            .when([this] { return dcache_.respStReady(); })
            .uses({&dcache_.respStM, &dcache_.writeDataM, &lsq_->deqStM});
    } else {
        k.rule(name + ".doDeqStToSb", [this] { doDeqStToSb(); })
            .when([this] { return lsq_->canDeqStToSb(*storeBuf_); })
            .uses({&lsq_->deqStM, &storeBuf_->enqM});
        k.rule(name + ".doSbIssue", [this] { doSbIssue(); })
            .when([this] {
                return storeBuf_->canIssue() && dcache_.canReq();
            })
            .uses({&storeBuf_->issueM, &dcache_.reqStM});
        k.rule(name + ".doRespStWmm", [this] { doRespStWmm(); })
            .when([this] { return dcache_.respStReady(); })
            .uses({&dcache_.respStM, &dcache_.writeDataM,
                   &storeBuf_->deqM, &lsq_->wakeupBySBDeqM});
    }

    if (cfg.storePrefetch) {
        k.rule(name + ".doStPrefetch", [this] { doStPrefetch(); })
            .when([this] { return lsq_->getStPrefetch() >= 0; })
            .uses({&dcache_.prefetchHintM, &lsq_->markStPrefetchedM});
    }

    k.rule(name + ".doIssueAtomic", [this] { doIssueAtomic(); })
        .when([this] {
            return pendingAtomic_.read().valid && dcache_.canReq();
        })
        .uses({&dcache_.reqAtomicM});
    k.rule(name + ".doRespAtomic", [this] { doRespAtomic(); })
        .when([this] { return dcache_.respAtomicReady(); })
        .uses([this] {
            std::vector<const Method *> ms = {
                &dcache_.respAtomicM, &prf_->writeM, &sb_->setReadyM,
                &rob_->markDoneM, &lsq_->dropLdM, &lsq_->deqStM};
            auto wk = wakeupMethods();
            ms.insert(ms.end(), wk.begin(), wk.end());
            return ms;
        }());
}

std::vector<const Method *>
OooCore::wakeupMethods() const
{
    std::vector<const Method *> ms;
    for (const auto &iq : aluIq_)
        ms.push_back(&iq->wakeupM);
    ms.push_back(&mdIq_->wakeupM);
    ms.push_back(&memIq_->wakeupM);
    return ms;
}

std::vector<const Method *>
OooCore::specMethods() const
{
    std::vector<const Method *> ms;
    auto add = [&](const Method &w, const Method &c) {
        ms.push_back(&w);
        ms.push_back(&c);
    };
    add(rob_->wrongSpecM, rob_->correctSpecM);
    add(lsq_->wrongSpecM, lsq_->correctSpecM);
    for (const auto &iq : aluIq_)
        add(iq->wrongSpecM, iq->correctSpecM);
    add(mdIq_->wrongSpecM, mdIq_->correctSpecM);
    add(memIq_->wrongSpecM, memIq_->correctSpecM);
    for (const auto &q : aluRrq_)
        add(q->wrongSpecM, q->correctSpecM);
    for (const auto &q : aluExq_)
        add(q->wrongSpecM, q->correctSpecM);
    for (const auto &q : aluWbq_)
        add(q->wrongSpecM, q->correctSpecM);
    add(mdRrq_->wrongSpecM, mdRrq_->correctSpecM);
    add(memRrq_->wrongSpecM, memRrq_->correctSpecM);
    add(memAmq_->wrongSpecM, memAmq_->correctSpecM);
    return ms;
}

std::string
OooCore::debugString() const
{
    std::string out;
    out += strfmt("rob: count=%u", rob_->count());
    if (rob_->frontValid()) {
        const RobEntry &e = rob_->front();
        out += strfmt(" front{pc=%#llx op=%s done=%d exc=%d killed=%d "
                      "mmio=%d lsqIdx=%u atSent=%d}",
                      (unsigned long long)e.pc, opName(e.inst.op),
                      e.done, e.exception, e.ldKilled, e.isMmio,
                      e.lsqIdx, e.atCommitSent);
    }
    out += strfmt("\ninstQ=%u", instQ_->size());
    for (uint32_t p = 0; p < cfg_.aluPipes; p++) {
        out += strfmt(" aluIq%u=%u(rdy=%d)", p, aluIq_[p]->size(),
                      aluIq_[p]->canIssue());
    }
    out += strfmt(" mdIq=%u memIq=%u(rdy=%d)", mdIq_->size(),
                  memIq_->size(), memIq_->canIssue());
    out += strfmt("\nlq={cnt=%u head=%u} sq={cnt=%u head=%u} "
                  "canDeqLd=%d getIssueLd=%d sbEmpty=%d",
                  lsq_->lqCount(), lsq_->lqHeadIdx(), lsq_->sqCount(),
                  lsq_->sqHeadIdx(), lsq_->canDeqLd(),
                  lsq_->getIssueLd(), storeBuf_->empty());
    if (rob_->frontValid()) {
        const RobEntry &e = rob_->front();
        if (e.inst.isLq()) {
            const Lsq::LqEntry &le = lsq_->lqEntry(e.lsqIdx);
            out += strfmt("\nheadLq{v=%d st=%u addrV=%d mmio=%d "
                          "fault=%d killed=%d stall=%u}",
                          le.valid, (unsigned)le.state, le.addrValid,
                          le.mmio, le.fault, le.killed,
                          (unsigned)le.stallSrc);
        }
        if (e.inst.isSq()) {
            const Lsq::SqEntry &se = lsq_->sqEntry(e.lsqIdx);
            out += strfmt("\nheadSq{v=%d addrV=%d dataV=%d mmio=%d "
                          "fault=%d comm=%d}",
                          se.valid, se.addrValid, se.dataValid, se.mmio,
                          se.fault, se.committed);
        }
    }
    out += strfmt("\nserialPending=%d pendingAtomic=%d flushReq=%d "
                  "mdBusy=%d specActive=%#x flCanAlloc=%d epoch=%u",
                  serialPending_.read(), pendingAtomic_.read().valid,
                  flushReq_.read().valid, mdBusy_.read().valid,
                  specMgr_->activeMask(), fl_->canAlloc(1),
                  epoch_->current());
    out += strfmt("\nf2q=%u f3q=%u fwdQ=%u\n", f2q_->size(),
                  f3q_->size(), forwardQ_->size());
    return out;
}

void
OooCore::reset(Addr pc, uint64_t satp, Addr sp)
{
    bool ok = k_.runAtomically([&] {
        rt_->initIdentity();
        fl_->initRange(32, cfg_.numPhys() - 32);
        CsrState cs;
        cs.satp = satp;
        csr_.write(cs);
        epoch_->setFetchPc(pc);
        itlb_->setSatp(satp);
        dtlb_->setSatp(satp);
        l2tlb_->setSatp(satp);
        prf_->write(2, sp);       // x2/sp maps to phys 2 at reset
        prf_->write(10, hartId_); // x10/a0 carries the hart id
    });
    if (!ok)
        panic("%s: reset failed", name_.c_str());
}

/*
 * Fast-forward -> detailed handoff: like reset(), but materializing a
 * complete architectural state. The kernel was just restored to its
 * pristine post-start snapshot (empty pipelines, identity rename), so
 * arch register i lives in physical register i.
 */
void
OooCore::restoreArch(const isa::ArchState &as)
{
    bool ok = k_.runAtomically([&] {
        rt_->initIdentity();
        fl_->initRange(32, cfg_.numPhys() - 32);
        csr_.write(as.csr);
        epoch_->setFetchPc(as.pc);
        itlb_->setSatp(as.csr.satp);
        dtlb_->setSatp(as.csr.satp);
        l2tlb_->setSatp(as.csr.satp);
        for (unsigned i = 1; i < 32; i++)
            prf_->write(i, as.regs[i]);
        instret_.write(as.instret);
    });
    if (!ok)
        panic("%s: restoreArch failed", name_.c_str());
}

/*
 * Sampled-mode warm handoff, detailed -> fast-forward: park fetch and
 * raise a commit-point flush. doFlush squashes all in-flight work back
 * to the committed state — the exact machinery a trap uses — while
 * leaving caches, TLBs and predictors warm; with fetch stalled the
 * remaining queued fetch groups filter out as epoch-stale within a few
 * cycles and the store buffer drains its committed stores.
 */
void
OooCore::beginDrain()
{
    bool ok = k_.runAtomically([&] {
        fetchStall_.write(true);
        // Preserve a pending satpChanged: a satp write may have
        // committed in the window's final cycle.
        FlushReq f = flushReq_.read();
        f.valid = true;
        f.redirectPc = 0; // parked; resumeArch() supplies the real pc
        flushReq_.write(f);
    });
    if (!ok)
        panic("%s: beginDrain failed", name_.c_str());
}

bool
OooCore::drained() const
{
    if (flushReq_.read().valid || !rob_->empty() || !lsq_->lqEmpty() ||
        !lsq_->sqEmpty() || !storeBuf_->empty())
        return false;
    if (instQ_->size() || f2q_->size() || f3q_->size() ||
        forwardQ_->size())
        return false;
    for (uint32_t i = 0; i < fetchResp_.size(); i++)
        if (fetchResp_.read(i).valid)
            return false;
    if (mdBusy_.read().valid || pendingAtomic_.read().valid)
        return false;
    for (uint32_t i = 0; i < inflight_.size(); i++)
        if (inflight_.read(i).valid)
            return false;
    return itlb_->quiescent() && dtlb_->quiescent() &&
           l2tlb_->quiescent() && itlbChan_->req.size() == 0 &&
           itlbChan_->resp.size() == 0 && dtlbChan_->req.size() == 0 &&
           dtlbChan_->resp.size() == 0;
}

/*
 * Fast-forward -> detailed on a drained core: like restoreArch(), but
 * the kernel state is the *warm* post-drain state, not a pristine
 * snapshot. The drain flush already reset rename to the committed map;
 * re-seeding the identity map and free list from scratch is valid on
 * any empty pipeline. The TLBs keep their contents when satp is
 * unchanged (L2Tlb::setSatp would flush 2048 warm entries).
 */
void
OooCore::resumeArch(const isa::ArchState &as)
{
    bool ok = k_.runAtomically([&] {
        rt_->initIdentity();
        fl_->initRange(32, cfg_.numPhys() - 32);
        const bool satpChanged = csr_.read().satp != as.csr.satp;
        csr_.write(as.csr);
        if (satpChanged) {
            itlb_->flush();
            dtlb_->flush();
            itlb_->setSatp(as.csr.satp);
            dtlb_->setSatp(as.csr.satp);
            l2tlb_->setSatp(as.csr.satp);
        }
        for (unsigned i = 1; i < 32; i++)
            prf_->write(i, as.regs[i]);
        instret_.write(as.instret);
        // Bump the epochs so any straggler response is stale-dropped,
        // then release fetch at the resume pc.
        epoch_->redirect(as.pc);
        fetchStall_.write(false);
    });
    if (!ok)
        panic("%s: resumeArch failed", name_.c_str());
}

/*
 * Functional TLB warming: each record is one leaf translation the
 * fast-forward leg performed. Install it exactly where a completed
 * walk would have landed — the requesting L1 TLB plus the L2 TLB —
 * one runAtomically per record so repeated pages never double-write a
 * TLB slot within a rule.
 */
void
OooCore::warmTlbs(const std::vector<isa::GoldenModel::XlateRec> &recs)
{
    bool ok = true;
    for (const auto &r : recs) {
        ok &= k_.runAtomically([&] {
            TlbEntry te;
            te.valid = true;
            te.vpn = isa::fullVpn(r.va);
            te.ppn = r.ppn;
            te.level = r.level;
            te.flags = r.flags;
            bool fetch =
                r.type == static_cast<uint8_t>(isa::AccessType::Fetch);
            (fetch ? itlb_ : dtlb_)->warmInsert(te, r.va);
            l2tlb_->warmInsert(te, r.va);
        });
    }
    if (!ok)
        panic("%s: warmTlbs failed", name_.c_str());
}

/*
 * Functional predictor warming: replay the fast-forward leg's control
 * transfers through the same update discipline execute uses, rolling
 * a local copy of the global history the way fetch3 would have
 * (shift in each branch direction), so the trained pattern tables and
 * the live GHR agree at resume.
 */
void
OooCore::warmPredictors(
    const std::vector<isa::GoldenModel::BranchRec> &recs)
{
    bool ok = true;
    uint16_t ghr = fetchGhr_.read();
    for (const auto &r : recs) {
        ok &= k_.runAtomically([&] {
            switch (r.kind) {
            case isa::GoldenModel::BranchRec::Branch:
                bp_->update(r.pc, ghr, r.taken);
                if (r.taken)
                    btb_->update(r.pc, r.target, true);
                break;
            case isa::GoldenModel::BranchRec::Jal:
                if (r.rd == 1)
                    ras_->push(r.pc + 4);
                btb_->update(r.pc, r.target, true);
                break;
            case isa::GoldenModel::BranchRec::Jalr:
                if (r.rs1 == 1 && r.rd == 0)
                    ras_->pop();
                if (r.rd == 1)
                    ras_->push(r.pc + 4);
                btb_->update(r.pc, r.target, true);
                break;
            }
        });
        if (r.kind == isa::GoldenModel::BranchRec::Branch)
            ghr = static_cast<uint16_t>((ghr << 1) | (r.taken ? 1 : 0));
    }
    ok &= k_.runAtomically([&] { fetchGhr_.write(ghr); });
    if (!ok)
        panic("%s: warmPredictors failed", name_.c_str());
}

// ------------------------------------------------------------- front end

void
OooCore::doFetch1()
{
    require(!flushReq_.read().valid && !fetchStall_.read() &&
            !epoch_->redirectedThisCycle());
    uint64_t pc = epoch_->fetchPc();
    uint32_t maxN =
        std::min<uint32_t>(cfg_.width,
                           static_cast<uint32_t>(
                               (kLineBytes - lineOffset(pc)) / 4));
    // BTB steer: stop the group at the first predicted-taken slot.
    uint32_t n = maxN;
    uint64_t next = 0;
    for (uint32_t i = 0; i < maxN; i++) {
        uint64_t t = btb_->predict(pc + 4 * i);
        if (t != 0) {
            n = i + 1;
            next = t;
            break;
        }
    }
    if (next == 0)
        next = pc + 4 * n;

    FetchReq fr;
    fr.pc = pc;
    fr.nextAssumed = next;
    fr.n = static_cast<uint8_t>(n);
    fr.epoch = epoch_->current();
    fr.seq = fetchSeq_.read();
    fr.fetchCycle = k_.cycleCount();
    if (kTrace) {
        fprintf(stderr, "[%llu] fetch1 pc=%llx n=%u next=%llx ep=%u "
                "seq=%u\n",
                (unsigned long long)k_.cycleCount(),
                (unsigned long long)pc, n, (unsigned long long)next,
                fr.epoch, fr.seq);
    }
    fetchSeq_.write((fetchSeq_.read() + 1) & 7);
    itlb_->req(0, pc, AccessType::Fetch);
    f2q_->enq(fr);
    epoch_->setFetchPc(next);
}

void
OooCore::doFetch2()
{
    L1Tlb::Resp r = itlb_->resp();
    FetchReq fr = f2q_->deq();
    FetchXlated x;
    x.req = fr;
    x.pa = r.pa;
    x.fault = r.fault;
    if (!r.fault)
        icache_.reqLd(fr.seq, r.pa);
    f3q_->enq(x);
}

void
OooCore::doIcacheResp()
{
    L1Cache::LdResp r = icache_.respLd();
    fetchResp_.write(r.id, {true, r.line});
}

void
OooCore::doFetch3()
{
    FetchXlated x = f3q_->first();
    const FetchReq &fr = x.req;

    if (epoch_->isStale(fr.epoch)) {
        // Wrong path: consume (and the response, if one is due).
        if (!x.fault) {
            require(fetchResp_.read(fr.seq).valid);
            fetchResp_.write(fr.seq, RespSlot{});
        }
        if (kTrace) {
            fprintf(stderr, "[%llu] fetch3 stale pc=%llx seq=%u\n",
                    (unsigned long long)k_.cycleCount(),
                    (unsigned long long)fr.pc, fr.seq);
        }
        f3q_->deq();
        return;
    }

    if (x.fault) {
        Uop u;
        u.pc = fr.pc;
        u.epoch = epoch_->renameEpoch();
        u.predNext = fr.pc + 4;
        u.preException = true;
        u.preCause = static_cast<uint8_t>(Cause::FetchPageFault);
        u.fetchCycle = fr.fetchCycle;
        u.decodeCycle = k_.cycleCount();
        instQ_->enqGroup(&u, 1);
        f3q_->deq();
        return;
    }

    require(fetchResp_.read(fr.seq).valid);
    Line line = fetchResp_.read(fr.seq).line;

    Uop group[kMaxWidth];
    uint32_t n = 0;
    uint16_t ghr = fetchGhr_.read();
    bool redirect = false;
    uint64_t redirectTo = 0;

    for (uint32_t i = 0; i < fr.n; i++) {
        uint64_t pc = fr.pc + 4 * i;
        uint32_t raw =
            static_cast<uint32_t>(line.read(lineOffset(pc), 4));
        Uop u;
        u.pc = pc;
        u.epoch = fr.epoch;
        u.ghist = ghr;
        u.fetchCycle = fr.fetchCycle;
        u.decodeCycle = k_.cycleCount();
        u.inst = decode(raw);
        u.inst.raw = raw;
        const Inst &ins = u.inst;

        uint64_t predNext = pc + 4;
        if (ins.isBranch()) {
            bool dir = bp_->predict(pc, ghr);
            ghr = static_cast<uint16_t>((ghr << 1) | (dir ? 1 : 0));
            if (dir)
                predNext = pc + static_cast<uint64_t>(ins.imm);
        } else if (ins.isJal()) {
            predNext = pc + static_cast<uint64_t>(ins.imm);
            if (ins.rd == 1)
                ras_->push(pc + 4);
        } else if (ins.isJalr()) {
            bool isRet = ins.rs1 == 1 && ins.rd == 0;
            uint64_t t = isRet ? ras_->pop() : btb_->predict(pc);
            if (ins.rd == 1)
                ras_->push(pc + 4);
            predNext = t ? t : pc + 4;
        }
        u.predNext = predNext;

        // Keep the BTB warm for taken control flow found here.
        if (predNext != pc + 4 && !ins.isJalr())
            btb_->update(pc, predNext, true);

        uint64_t assumed = (i == fr.n - 1u) ? fr.nextAssumed : pc + 4;
        group[n++] = u;
        if (predNext != assumed) {
            // Front-end re-steer: everything already *fetched* after
            // this instruction is wrong-path (the decoded older uops
            // in the instruction queue are not).
            redirect = true;
            redirectTo = predNext;
            break;
        }
    }

    fetchGhr_.write(ghr);
    for (uint32_t i = 0; i < n; i++)
        group[i].epoch = epoch_->renameEpoch();
    if (redirect) {
        epoch_->resteer(redirectTo);
        fetchRedirects_->inc();
    }
    if (kTrace) {
        fprintf(stderr, "[%llu] fetch3 pc=%llx n=%u redir=%d to=%llx "
                "seq=%u\n",
                (unsigned long long)k_.cycleCount(),
                (unsigned long long)fr.pc, n, redirect,
                (unsigned long long)redirectTo, fr.seq);
    }
    instQ_->enqGroup(group, n);
    fetchResp_.write(fr.seq, RespSlot{});
    f3q_->deq();
}

// ---------------------------------------------------------------- rename

void
OooCore::doRename()
{
    uint32_t qn = instQ_->size();
    uint32_t consumed = 0;
    uint32_t m = 0;
#ifndef CMD_NO_OBS
    // Trace seq ids are pre-assigned from the tracer's next-id so the
    // Uop copies entering the issue queues below carry them; the
    // actual create() calls happen at the end of the body (see the
    // hook-placement comment at the top of this file) and hand back
    // exactly these ids.
    const uint64_t seqBase = tracer_ ? tracer_->created() : 0;
    uint32_t traceN = 0;
#endif

    RobEntry entries[kMaxWidth];
    struct Placed {
        Uop u;
        int iq;     // 0..aluPipes-1 ALU, -1 md, -2 mem
        bool rdy1, rdy2;
    } placed[kMaxWidth];

    // Local working copies of the rename state.
    PhysReg locMap[32];
    for (uint32_t i = 0; i < 32; i++)
        locMap[i] = rt_->spec(static_cast<uint8_t>(i));
    bool newly[256] = {};
    bool touched[32] = {};
    uint32_t allocCount = 0;
    SpecMask curMask = specMgr_->activeMask();
    bool branchUsed = false, lqUsed = false, sqUsed = false,
         mdUsed = false, memUsed = false;
    uint32_t aluUsed = 0;
    int snapshotTag = -1;
    uint32_t snapshotAllocs = 0;
    PhysReg snapshotMap[32];

    while (m < cfg_.width && consumed < qn) {
        const Uop &raw = instQ_->peek(consumed);
        if (epoch_->isStaleRename(raw.epoch)) {
            consumed++;
            continue;
        }
        Uop u = raw;
        const Inst &ins = u.inst;
        bool serial = ins.isSystem() || ins.op == Op::ILLEGAL ||
                      u.preException;

        if (serial) {
            if (m > 0)
                break;
            if (!(rob_->empty() && lsq_->lqEmpty() && lsq_->sqEmpty() &&
                  storeBuf_->empty() && !mdBusy_.read().valid))
                break;
            RobEntry e;
            e.pc = u.pc;
            e.inst = ins;
            e.specMask = 0;
            if (u.preException) {
                e.done = true;
                e.exception = true;
                e.cause = u.preCause;
                e.tval = u.pc;
            } else if (ins.op == Op::ILLEGAL) {
                e.done = true;
                e.exception = true;
                e.cause = static_cast<uint8_t>(Cause::IllegalInst);
                e.tval = ins.raw;
            } else if (ins.op == Op::ECALL) {
                e.done = true;
                e.exception = true;
                e.cause = static_cast<uint8_t>(Cause::EcallM);
            } else if (ins.op == Op::EBREAK) {
                e.done = true;
                e.exception = true;
                e.cause = static_cast<uint8_t>(Cause::Breakpoint);
            } else {
                // CSR / MRET / FENCE / FENCE.I / WFI: acted on at
                // commit; structurally complete now.
                e.done = true;
                if (ins.writesRd()) {
                    if (!fl_->canAlloc(1))
                        break;
                    e.hasPd = true;
                    e.pd = fl_->peekFree(allocCount);
                    e.stalePd = locMap[ins.rd];
                    locMap[ins.rd] = e.pd;
                    newly[e.pd] = true;
                    touched[ins.rd] = true;
                    allocCount++;
                }
            }
            e.fetchCycle = u.fetchCycle;
            u.rob = rob_->enqIndex(0);
#ifndef CMD_NO_OBS
            if (tracer_)
                u.seq = seqBase + ++traceN;
#endif
            entries[0] = e;
            placed[0] = {u, 0, false, false};
            serialPending_.write(true);
            m = 1;
            consumed++;
            break;
        }

        // ---- structural checks
        if (!rob_->canEnq(m + 1))
            break;
        bool needsPd = ins.writesRd();
        if (needsPd && !fl_->canAlloc(allocCount + 1))
            break;
        int iq;
        if (ins.isMem()) {
            if (memUsed || !memIq_->canEnter())
                break;
            if (ins.isLq() && (lqUsed || !lsq_->canEnqLd()))
                break;
            if (ins.isSq() && (sqUsed || !lsq_->canEnqSt()))
                break;
            iq = -2;
        } else if (ins.isMulDiv()) {
            if (mdUsed || !mdIq_->canEnter())
                break;
            iq = -1;
        } else {
            if (aluUsed >= cfg_.aluPipes)
                break;
            iq = static_cast<int>((aluRR_.read() + aluUsed) %
                                  cfg_.aluPipes);
            if (!aluIq_[iq]->canEnter())
                break;
        }
        bool needsTag = ins.isBranch() || ins.isJalr();
        if (needsTag && (branchUsed || !specMgr_->canAlloc()))
            break;

        // ---- perform the slot's renaming
        u.ps1 = locMap[ins.rs1];
        u.ps2 = locMap[ins.rs2];
        bool rdy1 = !ins.readsRs1() ||
                    (!newly[u.ps1] && sb_->rdy(u.ps1));
        bool rdy2 = !ins.readsRs2() ||
                    (!newly[u.ps2] && sb_->rdy(u.ps2));
        u.hasPd = needsPd;
        PhysReg stale = 0;
        if (needsPd) {
            u.pd = fl_->peekFree(allocCount);
            stale = locMap[ins.rd];
            u.stalePd = stale;
            locMap[ins.rd] = u.pd;
            newly[u.pd] = true;
            touched[ins.rd] = true;
            allocCount++;
        }
        u.specMask = curMask;
        if (needsTag) {
            uint8_t tag = specMgr_->alloc();
            u.specTag = tag;
            u.hasSpecTag = true;
            branchUsed = true;
            curMask |= static_cast<SpecMask>(1u << tag);
            snapshotTag = tag;
            snapshotAllocs = allocCount;
            std::copy(locMap, locMap + 32, snapshotMap);
        }
        u.rob = rob_->enqIndex(m);
        if (ins.isMem()) {
            memUsed = true;
            if (ins.isLq()) {
                lqUsed = true;
                u.lsqIdx = lsq_->enqLd(ins.op, ins.memBytes(), u.rob,
                                       u.pd, u.hasPd, u.specMask);
            } else {
                sqUsed = true;
                u.lsqIdx = lsq_->enqSt(ins.op, ins.memBytes(), u.rob,
                                       u.pd, u.hasPd, u.specMask);
            }
        } else if (iq == -1) {
            mdUsed = true;
        } else {
            aluUsed++;
        }

        RobEntry e;
        e.pc = u.pc;
        e.inst = ins;
        e.pd = u.pd;
        e.stalePd = stale;
        e.hasPd = u.hasPd;
        e.lsqIdx = u.lsqIdx;
        e.specMask = u.specMask;
        e.specTag = u.specTag;
        e.hasSpecTag = u.hasSpecTag;
        e.fetchCycle = u.fetchCycle;
#ifndef CMD_NO_OBS
        if (tracer_)
            u.seq = seqBase + ++traceN;
#endif
        entries[m] = e;
        placed[m] = {u, iq, rdy1, rdy2};
        if (kTrace) {
            fprintf(stderr, "[%llu] rename pc=%llx %s mask=%x tag=%d "
                    "rob=%u\n",
                    (unsigned long long)k_.cycleCount(),
                    (unsigned long long)u.pc, opName(ins.op), u.specMask,
                    u.hasSpecTag ? u.specTag : -1, u.rob);
        }
        m++;
        consumed++;
    }

    if (consumed == 0) {
        // Structurally stalled (ROB/IQ/LSQ full, no tag, ...): commit
        // as a no-op rather than aborting — the C++ exception unwind
        // is far too expensive for a condition that can persist for
        // hundreds of cycles during memory stalls.
        return;
    }

    if (m > 0 && !entries[0].done) {
        // Normal group: write back the rename-engine state.
        PhysReg pds[kMaxWidth];
        if (allocCount)
            fl_->allocGroup(pds, allocCount);
        for (uint32_t a = 0; a < 32; a++) {
            if (touched[a])
                rt_->setSpec(static_cast<uint8_t>(a), locMap[a]);
        }
        for (uint32_t i = 0; i < m; i++) {
            if (entries[i].hasPd) {
                sb_->setNotReady(entries[i].pd);
                prf_->setNotReady(entries[i].pd);
            }
        }
        if (snapshotTag >= 0) {
            rt_->snapshotFrom(static_cast<uint8_t>(snapshotTag),
                              snapshotMap);
            fl_->snapshotAt(static_cast<uint8_t>(snapshotTag),
                            snapshotAllocs);
        }
        rob_->enqGroup(entries, m);
        for (uint32_t i = 0; i < m; i++) {
            const Placed &p = placed[i];
            if (p.iq == -2)
                memIq_->enter(p.u, p.rdy1, p.rdy2);
            else if (p.iq == -1)
                mdIq_->enter(p.u, p.rdy1, p.rdy2);
            else
                aluIq_[p.iq]->enter(p.u, p.rdy1, p.rdy2);
        }
        aluRR_.write((aluRR_.read() + 1) % cfg_.aluPipes);
    } else if (m > 0) {
        // Serialized instruction (entries[0].done set above).
        PhysReg pds[kMaxWidth];
        if (allocCount)
            fl_->allocGroup(pds, allocCount);
        for (uint32_t a = 0; a < 32; a++) {
            if (touched[a])
                rt_->setSpec(static_cast<uint8_t>(a), locMap[a]);
        }
        if (entries[0].hasPd) {
            sb_->setNotReady(entries[0].pd);
            prf_->setNotReady(entries[0].pd);
        }
        rob_->enqGroup(entries, 1);
    }
    instQ_->deqN(consumed);

#ifndef CMD_NO_OBS
    if (tracer_ && m > 0) {
        const uint64_t now = k_.cycleCount();
        for (uint32_t i = 0; i < m; i++) {
            const Uop &u = placed[i].u;
            // Returns the pre-assigned u.seq, or 0 once the trace cap
            // is hit (then every later call on this id is a no-op).
            uint64_t s = tracer_->create(u.pc, opName(u.inst.op),
                                         u.fetchCycle, u.decodeCycle);
            tracer_->stage(s, obs::Stage::Rename, now);
            tracer_->setSpecMask(s, u.specMask);
            robSeq_[u.rob] = s;
            if (u.inst.isLq())
                tracer_->mapLq(u.lsqIdx, s);
            else if (u.inst.isSq())
                tracer_->mapSq(u.lsqIdx, s);
        }
    }
#endif
}

// --------------------------------------------------------- ALU pipelines

bool
OooCore::readOperands(Uop &u)
{
    const Inst &ins = u.inst;
    u.a = 0;
    u.b = 0;
    if (ins.readsRs1()) {
        if (!bypass_->get(u.ps1, u.a)) {
            if (!prf_->present(u.ps1))
                return false;
            u.a = prf_->read(u.ps1);
        }
    }
    if (ins.readsRs2()) {
        if (!bypass_->get(u.ps2, u.b)) {
            if (!prf_->present(u.ps2))
                return false;
            u.b = prf_->read(u.ps2);
        }
    }
    return true;
}

void
OooCore::doIssue(uint32_t p)
{
    Uop u = aluIq_[p]->issue();
    aluRrq_[p]->enq(u);
    OBS_STAGE(u.seq, Issue);
}

void
OooCore::doRegRead(uint32_t p)
{
    Uop u = aluRrq_[p]->first();
    require(readOperands(u));
    aluExq_[p]->enq(u);
    aluRrq_[p]->deq();
    OBS_STAGE(u.seq, RegRead);
}

void
OooCore::applyWrongSpec(SpecMask dead)
{
    rob_->wrongSpec(dead);
    lsq_->wrongSpec(dead);
    for (auto &iq : aluIq_)
        iq->wrongSpec(dead);
    mdIq_->wrongSpec(dead);
    memIq_->wrongSpec(dead);
    for (auto &q : aluRrq_)
        q->wrongSpec(dead);
    for (auto &q : aluExq_)
        q->wrongSpec(dead);
    for (auto &q : aluWbq_)
        q->wrongSpec(dead);
    mdRrq_->wrongSpec(dead);
    memRrq_->wrongSpec(dead);
    memAmq_->wrongSpec(dead);
    killRaw(dead);
}

void
OooCore::applyCorrectSpec(SpecMask bit)
{
    rob_->correctSpec(bit);
    lsq_->correctSpec(bit);
    for (auto &iq : aluIq_)
        iq->correctSpec(bit);
    mdIq_->correctSpec(bit);
    memIq_->correctSpec(bit);
    for (auto &q : aluRrq_)
        q->correctSpec(bit);
    for (auto &q : aluExq_)
        q->correctSpec(bit);
    for (auto &q : aluWbq_)
        q->correctSpec(bit);
    mdRrq_->correctSpec(bit);
    memRrq_->correctSpec(bit);
    memAmq_->correctSpec(bit);
    // Raw holders: clear the bit from their masks.
    MdBusy b = mdBusy_.read();
    if (b.valid && (b.uop.specMask & bit)) {
        b.uop.specMask &= ~bit;
        mdBusy_.write(b);
    }
    for (uint32_t i = 0; i < inflight_.size(); i++) {
        InflightMem im = inflight_.read(i);
        if (im.valid && (im.uop.specMask & bit)) {
            im.uop.specMask &= ~bit;
            inflight_.write(i, im);
        }
    }
}

void
OooCore::killRaw(SpecMask dead)
{
    MdBusy b = mdBusy_.read();
    if (b.valid && (b.uop.specMask & dead))
        mdBusy_.write(MdBusy{});
    for (uint32_t i = 0; i < inflight_.size(); i++) {
        const InflightMem &im = inflight_.read(i);
        if (im.valid && (im.uop.specMask & dead))
            inflight_.write(i, InflightMem{});
    }
}

void
OooCore::doExec(uint32_t p)
{
    Uop u = aluExq_[p]->first();
    const Inst &ins = u.inst;
    uint64_t res = 0;
    uint64_t actualNext = u.pc + 4;
    bool taken = false;
#ifndef CMD_NO_OBS
    SpecMask deadForObs = 0; // squashed mask, recorded at body end
#endif

    if (ins.isBranch()) {
        taken = branchTaken(ins, u.a, u.b);
        if (taken)
            actualNext = u.pc + static_cast<uint64_t>(ins.imm);
        branches_->inc();
    } else if (ins.isJal() || ins.isJalr()) {
        actualNext = controlTarget(ins, u.pc, u.a);
        res = u.pc + 4;
        taken = true;
    } else {
        res = aluCompute(ins, u.a, u.b, u.pc);
    }

    if (ins.isControlFlow()) {
        bool mispredict = actualNext != u.predNext;
        if (ins.isBranch())
            bp_->update(u.pc, u.ghist, taken);
        if (taken || mispredict)
            btb_->update(u.pc, actualNext, taken);
        if (u.hasSpecTag) {
            SpecMask bit = static_cast<SpecMask>(1u << u.specTag);
            if (mispredict) {
                SpecMask dead = specMgr_->squash(u.specTag);
                if (kTrace) {
                    fprintf(stderr,
                            "[%llu] mispredict pc=%llx pred=%llx "
                            "actual=%llx tag=%u dead=%x\n",
                            (unsigned long long)k_.cycleCount(),
                            (unsigned long long)u.pc,
                            (unsigned long long)u.predNext,
                            (unsigned long long)actualNext, u.specTag,
                            dead);
                }
                applyWrongSpec(dead);
                rt_->rollback(u.specTag);
                fl_->rollback(u.specTag);
                epoch_->redirect(actualNext);
                fetchGhr_.write(static_cast<uint16_t>(
                    (u.ghist << 1) | (taken ? 1 : 0)));
                mispredicts_->inc();
#ifndef CMD_NO_OBS
                deadForObs = dead;
#endif
            } else {
                specMgr_->commit(u.specTag);
                applyCorrectSpec(bit);
                // The branch's own mask bit is already absent (it does
                // not depend on itself).
            }
        } else if (mispredict) {
            panic("%s: untagged control flow mispredicted at %#llx",
                  name_.c_str(), (unsigned long long)u.pc);
        }
    }

    if (u.hasPd) {
        bypass_->set(p * 2, u.pd, res);
        sb_->setReady(u.pd);
        for (auto &iq : aluIq_)
            iq->wakeup(u.pd);
        mdIq_->wakeup(u.pd);
        memIq_->wakeup(u.pd);
    }
    u.a = res;
    aluWbq_[p]->enq(u);
    aluExq_[p]->deq();
    OBS_STAGE(u.seq, Execute);
#ifndef CMD_NO_OBS
    if (deadForObs) {
        mispredRecover_ = true;
        if (tracer_)
            tracer_->squashMask(deadForObs, k_.cycleCount());
    }
#endif
}

void
OooCore::doRegWrite(uint32_t p)
{
    Uop u = aluWbq_[p]->first();
    if (u.hasPd) {
        prf_->write(u.pd, u.a);
        bypass_->set(p * 2 + 1, u.pd, u.a);
    }
    rob_->markDone(u.rob);
    aluWbq_[p]->deq();
    OBS_STAGE(u.seq, Writeback);
}

// ------------------------------------------------------------ MULDIV pipe

void
OooCore::doIssueMd()
{
    Uop u = mdIq_->issue();
    mdRrq_->enq(u);
    OBS_STAGE(u.seq, Issue);
}

void
OooCore::doRegReadMd()
{
    require(!mdBusy_.read().valid);
    Uop u = mdRrq_->first();
    require(readOperands(u));
    MdBusy b;
    b.valid = true;
    b.uop = u;
    b.result = aluCompute(u.inst, u.a, u.b, u.pc);
    b.doneCycle = k_.cycleCount() +
                  (u.inst.isDiv() ? cfg_.divLatency : cfg_.mulLatency);
    mdBusy_.write(b);
    mdRrq_->deq();
    // RegRead + the multi-cycle Execute start in the same body; Execute
    // renders as the busy window once doMdWb posts Writeback.
    OBS_STAGE(u.seq, RegRead);
    OBS_STAGE(u.seq, Execute);
}

void
OooCore::doMdWb()
{
    MdBusy b = mdBusy_.read();
    require(b.valid && k_.cycleCount() >= b.doneCycle);
    if (b.uop.hasPd) {
        prf_->write(b.uop.pd, b.result);
        sb_->setReady(b.uop.pd);
        for (auto &iq : aluIq_)
            iq->wakeup(b.uop.pd);
        mdIq_->wakeup(b.uop.pd);
        memIq_->wakeup(b.uop.pd);
    }
    rob_->markDone(b.uop.rob);
    mdBusy_.write(MdBusy{});
    OBS_STAGE(b.uop.seq, Writeback);
}

// -------------------------------------------------------------- MEM pipe

void
OooCore::doIssueMem()
{
    Uop u = memIq_->issue();
    memRrq_->enq(u);
    OBS_STAGE(u.seq, Issue);
}

void
OooCore::doRegReadMem()
{
    Uop u = memRrq_->first();
    require(readOperands(u));
    memAmq_->enq(u);
    memRrq_->deq();
    OBS_STAGE(u.seq, RegRead);
}

void
OooCore::doAddrCalc()
{
    Uop u = memAmq_->first();
    const Inst &ins = u.inst;
    bool isLq = ins.isLq();
    uint64_t va = ins.isAtomic()
                      ? u.a
                      : u.a + static_cast<uint64_t>(ins.imm);

    if (va & (ins.memBytes() - 1)) {
        uint8_t cause = static_cast<uint8_t>(
            isLq ? Cause::LoadMisaligned : Cause::StoreMisaligned);
        if (isLq)
            lsq_->updateLd(u.lsqIdx, va, 0, true, cause, false);
        else
            lsq_->updateSt(u.lsqIdx, va, 0, true, cause, false, u.b);
        rob_->setAfterTranslation(u.rob, false, true, cause, va, false);
        memAmq_->deq();
        OBS_STAGE(u.seq, Mem);
        return;
    }

    uint8_t id = memId(isLq, u.lsqIdx);
    if (inflight_.read(id).valid)
        panic("%s: inflight-mem slot %u busy", name_.c_str(), id);
    AccessType t = (ins.isStore() || ins.isSc() || ins.isAmoRmw())
                       ? AccessType::Store
                       : AccessType::Load;
    dtlb_->req(id, va, t);
    inflight_.write(id, {true, u, va});
    memAmq_->deq();
    OBS_STAGE(u.seq, Mem);
}

void
OooCore::doUpdateLsq()
{
    L1Tlb::Resp r = dtlb_->resp();
    const InflightMem &imRef = inflight_.read(r.id);
    if (!imRef.valid)
        return; // wrong path: response dropped
    InflightMem im = imRef;
    inflight_.write(r.id, InflightMem{});
    const Inst &ins = im.uop.inst;
    bool isLq = ins.isLq();
    bool mmio = !r.fault && isMmioAddr(r.pa);
    uint8_t cause = static_cast<uint8_t>(
        isLq ? Cause::LoadPageFault : Cause::StorePageFault);

    if (isLq)
        lsq_->updateLd(im.uop.lsqIdx, im.va, r.pa, r.fault, cause, mmio);
    else
        lsq_->updateSt(im.uop.lsqIdx, im.va, r.pa, r.fault, cause, mmio,
                       im.uop.b);
    bool plainStoreDone =
        ins.isStore() && !mmio && !r.fault; // SC/AMO wait for commit
    rob_->setAfterTranslation(im.uop.rob, mmio, r.fault, cause, im.va,
                              plainStoreDone);
}

// ------------------------------------------------------- load-store unit

void
OooCore::completeLoad(uint8_t lqIdx, uint64_t value)
{
    const Lsq::LqEntry &e = lsq_->lqEntry(lqIdx);
    bool hasPd = e.valid && e.hasPd;
    PhysReg pd = e.pd;
    bool wrongPath = lsq_->respLd(lqIdx, value);
    if (wrongPath || !hasPd)
        return;
    prf_->write(pd, value);
    sb_->setReady(pd);
    for (auto &iq : aluIq_)
        iq->wakeup(pd);
    mdIq_->wakeup(pd);
    memIq_->wakeup(pd);
#ifndef CMD_NO_OBS
    if (tracer_)
        tracer_->stage(tracer_->lqSeq(lqIdx), obs::Stage::Writeback,
                       k_.cycleCount());
#endif
}

void
OooCore::doIssueLd()
{
    int idx = lsq_->getIssueLd();
    require(idx >= 0);
    const Lsq::LqEntry &e = lsq_->lqEntry(idx);
    Addr pa = e.pa;
    SpecMask mask = e.specMask;
    uint8_t bytes = e.bytes;
    StoreBuffer::SearchResult sbRes;
    if (!cfg_.tso)
        sbRes = storeBuf_->search(pa, bytes);
    uint64_t fwd = 0;
    Lsq::IssueResult res =
        lsq_->issueLd(static_cast<uint8_t>(idx), sbRes, !cfg_.tso, fwd);
    switch (res) {
      case Lsq::IssueResult::Forward:
        forwardQ_->enq({static_cast<uint8_t>(idx), fwd, mask});
        break;
      case Lsq::IssueResult::ToCache:
        dcache_.reqLd(static_cast<uint8_t>(idx), pa);
        break;
      case Lsq::IssueResult::Stall:
        break;
    }
}

void
OooCore::doRespLdCache()
{
    L1Cache::LdResp r = dcache_.respLd();
    const Lsq::LqEntry &e = lsq_->lqEntry(r.id);
    uint64_t value = 0;
    if (e.valid && e.state == Lsq::LdState::Issued) {
        value = loadExtend(e.op,
                           r.line.read(lineOffset(e.pa), e.bytes));
    }
    completeLoad(r.id, value);
}

void
OooCore::doRespLdFwd()
{
    Forwarded f = forwardQ_->deq();
    completeLoad(f.lqIdx, f.value);
}

void
OooCore::doDeqLd()
{
    Lsq::LqEntry e = lsq_->deqLd();
    rob_->setAtLSQDeq(e.rob, e.killed, e.fault, e.cause, e.va);
}

void
OooCore::doIssueStTso()
{
    require(lsq_->canIssueSt() );
    uint8_t idx = lsq_->sqHeadIdx();
    const Lsq::SqEntry &e = lsq_->sqEntry(idx);
    dcache_.reqSt(idx, e.pa);
    lsq_->markStIssued(idx);
}

void
OooCore::doRespStTso()
{
    uint8_t idx = dcache_.respSt();
    const Lsq::SqEntry &e = lsq_->sqEntry(idx);
    dcache_.writeData(e.pa, e.data, e.bytes);
    lsq_->deqSt();
}

void
OooCore::doDeqStToSb()
{
    require(lsq_->canDeqStToSb(*storeBuf_));
    Lsq::SqEntry e = lsq_->deqSt();
    storeBuf_->enq(e.pa, e.data, e.bytes);
}

void
OooCore::doSbIssue()
{
    Addr line = 0;
    uint8_t idx = storeBuf_->issue(line);
    dcache_.reqSt(idx, line);
}

void
OooCore::doRespStWmm()
{
    uint8_t idx = dcache_.respSt();
    StoreBuffer::DeqResult d = storeBuf_->deq(idx);
    dcache_.writeLineData(d.line, d.data, d.byteMask);
    lsq_->wakeupBySBDeq(idx);
}

void
OooCore::doStPrefetch()
{
    int idx = lsq_->getStPrefetch();
    require(idx >= 0);
    const Lsq::SqEntry &e = lsq_->sqEntry(idx);
    dcache_.prefetchHint(e.pa, Msi::M);
    lsq_->markStPrefetched(static_cast<uint8_t>(idx));
}

void
OooCore::doIssueAtomic()
{
    PendingAtomic p = pendingAtomic_.read();
    require(p.valid);
    if (p.isLq) {
        const Lsq::LqEntry &e = lsq_->lqEntry(p.idx);
        dcache_.reqAtomic(memId(true, p.idx), e.pa, e.op, 0, e.bytes);
    } else {
        const Lsq::SqEntry &e = lsq_->sqEntry(p.idx);
        dcache_.reqAtomic(memId(false, p.idx), e.pa, e.op, e.data,
                          e.bytes);
    }
    pendingAtomic_.write(PendingAtomic{});
}

void
OooCore::doRespAtomic()
{
    L1Cache::AtomicResp r = dcache_.respAtomic();
    bool isLq = r.id & 0x40;
    committedAmos_->inc();
    if (isLq) {
        Lsq::LqEntry e = lsq_->dropLd();
        if (e.hasPd) {
            prf_->write(e.pd, r.value);
            sb_->setReady(e.pd);
            for (auto &iq : aluIq_)
                iq->wakeup(e.pd);
            mdIq_->wakeup(e.pd);
            memIq_->wakeup(e.pd);
        }
        rob_->markDone(e.rob);
    } else {
        Lsq::SqEntry e = lsq_->deqSt();
        if (e.hasPd) {
            prf_->write(e.pd, r.value);
            sb_->setReady(e.pd);
            for (auto &iq : aluIq_)
                iq->wakeup(e.pd);
            mdIq_->wakeup(e.pd);
            memIq_->wakeup(e.pd);
        }
        rob_->markDone(e.rob);
    }
}

// ---------------------------------------------------------------- commit

void
OooCore::emitCommit(const RobEntry &e, bool trapped, uint64_t cause,
                    bool haveVal, uint64_t val)
{
    if (!onCommit)
        return;
    CommitRecord r;
    r.pc = e.pc;
    r.raw = e.inst.raw;
    r.trapped = trapped;
    r.cause = cause;
    if (!trapped && e.hasPd) {
        r.hasRd = true;
        r.rd = e.inst.rd;
        // Values produced *by the commit rule itself* (CSR reads,
        // MMIO loads) are staged, not yet visible through peek; the
        // caller passes them explicitly.
        r.rdVal = haveVal ? val : prf_->peek(e.pd);
        r.volatileRd = e.inst.isCsr() && CsrState::isVolatile(e.inst.csr);
    }
    onCommit(r);
}

void
OooCore::doCommit()
{
    require(!flushReq_.read().valid);
    require(rob_->frontValid());
    // Head index before any deqGroup moves it (retire hooks below).
    const RobIdx head0 = rob_->frontIdx();
    RobEntry e0 = rob_->front();
    const Inst &i0 = e0.inst;

    if (!e0.done) {
        // Launch a commit-time atomic once the address is known.
        if (i0.isAtomic() && !e0.atCommitSent &&
            !pendingAtomic_.read().valid) {
            if (i0.isLq()) {
                const Lsq::LqEntry &le = lsq_->lqEntry(e0.lsqIdx);
                if (le.valid && le.mmio)
                    panic("%s: atomic to MMIO space", name_.c_str());
                require(le.valid && le.addrValid);
                // All *older* stores must have drained (younger ones
                // may legitimately sit in the SQ behind this LR).
                require(lsq_->sqEmpty() ||
                        lsq_->firstSt().memSeq > le.memSeq);
                require(storeBuf_->empty());
                pendingAtomic_.write({true, true, e0.lsqIdx});
            } else {
                const Lsq::SqEntry &se = lsq_->sqEntry(e0.lsqIdx);
                if (se.valid && se.mmio)
                    panic("%s: atomic to MMIO space", name_.c_str());
                require(se.valid && se.addrValid && se.dataValid);
                require(lsq_->sqHeadIdx() == e0.lsqIdx &&
                        storeBuf_->empty());
                pendingAtomic_.write({true, false, e0.lsqIdx});
            }
            rob_->setAtCommitSent(rob_->frontIdx());
            return;
        }
    if (e0.isMmio && i0.isMem()) {
        if (i0.isLq()) {
            require(lsq_->lqHeadIdx() == e0.lsqIdx);
            const Lsq::LqEntry &le = lsq_->lqEntry(e0.lsqIdx);
            require(lsq_->sqEmpty() ||
                    lsq_->firstSt().memSeq > le.memSeq);
            require(storeBuf_->empty());
            uint64_t raw = host_.load(hartId_, le.pa, k_.cycleCount());
            uint64_t val = loadExtend(i0.op, raw);
            lsq_->dropLd();
            if (e0.hasPd) {
                prf_->write(e0.pd, val);
                sb_->setReady(e0.pd);
                for (auto &iq : aluIq_)
                    iq->wakeup(e0.pd);
                mdIq_->wakeup(e0.pd);
                memIq_->wakeup(e0.pd);
                rt_->setCommitted(i0.rd, e0.pd);
                PhysReg stale = e0.stalePd;
                fl_->freeGroup(&stale, 1);
            }
            rob_->deqGroup(1);
            committedLoads_->inc();
            instret_.write(instret_.read() + 1);
            emitCommit(e0, false, 0, true, val);
            fetchToCommit_->sample(k_.cycleCount() - e0.fetchCycle);
            OBS_RETIRE(head0);
        } else {
            require(lsq_->sqHeadIdx() == e0.lsqIdx);
            const Lsq::SqEntry &se = lsq_->sqEntry(e0.lsqIdx);
            require(se.dataValid && storeBuf_->empty());
            Addr pa = se.pa;
            uint64_t data = se.data;
            lsq_->deqSt();
            rob_->deqGroup(1);
            committedStores_->inc();
            instret_.write(instret_.read() + 1);
            // MMIO store is the last (non-abortable) effect.
            host_.store(hartId_, pa, data, k_.cycleCount());
            emitCommit(e0, false, 0);
            fetchToCommit_->sample(k_.cycleCount() - e0.fetchCycle);
            OBS_RETIRE(head0);
        }
        return;
    }

        require(false); // still waiting for completion
    }

    // ---- single-instruction special cases at the head
    if (e0.ldKilled) {
        // Memory-order violation: squash and re-execute from this pc.
        flushReq_.write({true, e0.pc, false});
        ldKillFlushes_->inc();
        flushes_->inc();
        return;
    }
    if (e0.exception) {
        CsrState cs = csr_.read();
        cs.mepc = e0.pc;
        cs.mcause = e0.cause;
        cs.mtval = e0.tval;
        if (cs.mtvec == 0)
            panic("%s: trap cause %u at pc %#llx with no handler",
                  name_.c_str(), e0.cause, (unsigned long long)e0.pc);
        csr_.write(cs);
        serialPending_.write(false);
        flushReq_.write({true, cs.mtvec & ~3ull, false});
        flushes_->inc();
        rob_->deqGroup(1);
        instret_.write(instret_.read() + 1);
        emitCommit(e0, true, e0.cause);
        fetchToCommit_->sample(k_.cycleCount() - e0.fetchCycle);
        OBS_RETIRE(head0);
        return;
    }
    if (i0.op == Op::MRET) {
        flushReq_.write({true, csr_.read().mepc, false});
        flushes_->inc();
        serialPending_.write(false);
        rob_->deqGroup(1);
        instret_.write(instret_.read() + 1);
        emitCommit(e0, false, 0);
        fetchToCommit_->sample(k_.cycleCount() - e0.fetchCycle);
        OBS_RETIRE(head0);
        return;
    }
    if (i0.isCsr()) {
        CsrState cs = csr_.read();
        uint64_t old = 0;
        uint64_t operand =
            (i0.op >= Op::CSRRWI) ? i0.rs1 : prf_->peek(
                /* rs1 still maps through committed state: the CSR was
                   rename-serialized, so spec == committed here */
                rt_->spec(i0.rs1));
        bool readOk = cs.read(i0.csr, k_.cycleCount(), instret_.read(),
                              hartId_, old);
        if (kTrace) {
            fprintf(stderr, "[%llu] csr commit pc=%llx %s csr=%x rs1=%u "
                    "ps=%u operand=%llx old=%llx\n",
                    (unsigned long long)k_.cycleCount(),
                    (unsigned long long)e0.pc, opName(i0.op), i0.csr,
                    i0.rs1, rt_->spec(i0.rs1),
                    (unsigned long long)operand,
                    (unsigned long long)old);
        }
        bool doWrite = (i0.op == Op::CSRRW || i0.op == Op::CSRRWI) ||
                       ((i0.op == Op::CSRRS || i0.op == Op::CSRRSI ||
                         i0.op == Op::CSRRC || i0.op == Op::CSRRCI) &&
                        i0.rs1 != 0);
        uint64_t newVal = old;
        if (i0.op == Op::CSRRW || i0.op == Op::CSRRWI)
            newVal = operand;
        else if (i0.op == Op::CSRRS || i0.op == Op::CSRRSI)
            newVal = old | operand;
        else
            newVal = old & ~operand;
        bool writeOk = true;
        bool satpChanged = false;
        if (doWrite) {
            writeOk = cs.write(i0.csr, newVal);
            satpChanged = i0.csr == kCsrSatp;
        }
        if (!readOk || !writeOk) {
            // Unimplemented CSR: illegal-instruction trap.
            cs = csr_.read();
            cs.mepc = e0.pc;
            cs.mcause = static_cast<uint64_t>(Cause::IllegalInst);
            cs.mtval = i0.raw;
            csr_.write(cs);
            serialPending_.write(false);
            flushReq_.write({true, cs.mtvec & ~3ull, false});
            flushes_->inc();
            rob_->deqGroup(1);
            instret_.write(instret_.read() + 1);
            emitCommit(e0, true, cs.mcause);
            fetchToCommit_->sample(k_.cycleCount() - e0.fetchCycle);
            OBS_RETIRE(head0);
            return;
        }
        csr_.write(cs);
        serialPending_.write(false);
        if (e0.hasPd) {
            prf_->write(e0.pd, old);
            sb_->setReady(e0.pd);
            for (auto &iq : aluIq_)
                iq->wakeup(e0.pd);
            mdIq_->wakeup(e0.pd);
            memIq_->wakeup(e0.pd);
            rt_->setCommitted(i0.rd, e0.pd);
            PhysReg stale = e0.stalePd;
            fl_->freeGroup(&stale, 1);
        }
        rob_->deqGroup(1);
        if (satpChanged) {
            flushReq_.write({true, e0.pc + 4, true});
            flushes_->inc();
        }
        instret_.write(instret_.read() + 1);
        emitCommit(e0, false, 0, true, old);
        fetchToCommit_->sample(k_.cycleCount() - e0.fetchCycle);
        OBS_RETIRE(head0);
        return;
    }
    // ---- normal path: retire up to `width` plain instructions
    RobEntry group[kMaxWidth];
    uint32_t n = 0;
    for (uint32_t s = 0; s < cfg_.width && s < rob_->count(); s++) {
        RobEntry e = s == 0 ? e0
                            : rob_->entry(static_cast<RobIdx>(
                                  (rob_->frontIdx() + s) %
                                  rob_->size()));
        if (!e.valid || !e.done)
            break;
        if (s > 0 &&
            (e.exception || e.ldKilled || e.isMmio ||
             e.inst.isCsr() || e.inst.op == Op::MRET ||
             e.inst.isAtomic()))
            break;
        group[n++] = e;
    }
    require(n > 0);

    PhysReg stale[kMaxWidth];
    uint32_t nStale = 0;
    PhysReg finalMap[32];
    bool mapTouched[32] = {};
    for (uint32_t s = 0; s < n; s++) {
        const RobEntry &e = group[s];
        if (e.inst.isSystem())
            serialPending_.write(false);
        if (e.inst.isSq() && !e.inst.isAtomic()) {
            // Plain store: may access memory from now on. (Atomics
            // already performed their access via the commit-time
            // atomic port and left the SQ.)
            lsq_->setAtCommitSt(e.lsqIdx);
            committedStores_->inc();
        }
        if (e.inst.isLq())
            committedLoads_->inc();
        if (e.hasPd) {
            stale[nStale++] = e.stalePd;
            finalMap[e.inst.rd] = e.pd;
            mapTouched[e.inst.rd] = true;
        }
    }
    for (uint32_t a = 0; a < 32; a++) {
        if (mapTouched[a])
            rt_->setCommitted(static_cast<uint8_t>(a), finalMap[a]);
    }
    if (nStale)
        fl_->freeGroup(stale, nStale);
    rob_->deqGroup(n);
    instret_.write(instret_.read() + n);
    for (uint32_t s = 0; s < n; s++)
        emitCommit(group[s], false, 0);
    const uint64_t now = k_.cycleCount();
    for (uint32_t s = 0; s < n; s++) {
        fetchToCommit_->sample(now - group[s].fetchCycle);
        OBS_RETIRE(static_cast<RobIdx>((head0 + s) % rob_->size()));
    }
}

void
OooCore::doFlush()
{
    FlushReq f = flushReq_.read();
    require(f.valid);
    if (f.satpChanged) {
        uint64_t satp = csr_.read().satp;
        itlb_->flush();
        dtlb_->flush();
        itlb_->setSatp(satp);
        dtlb_->setSatp(satp);
        l2tlb_->setSatp(satp);
    }
    rob_->clearAll();
    lsq_->flushAll();
    for (auto &iq : aluIq_)
        iq->clearAll();
    mdIq_->clearAll();
    memIq_->clearAll();
    for (auto &q : aluRrq_)
        q->clear();
    for (auto &q : aluExq_)
        q->clear();
    for (auto &q : aluWbq_)
        q->clear();
    mdRrq_->clear();
    memRrq_->clear();
    memAmq_->clear();
    mdBusy_.write(MdBusy{});
    for (uint32_t i = 0; i < inflight_.size(); i++) {
        if (inflight_.read(i).valid)
            inflight_.write(i, InflightMem{});
    }
    specMgr_->clear();
    rt_->reset();
    fl_->rebuild(*rt_);
    sb_->setAllReady();
    prf_->setAllReady();
    epoch_->redirect(f.redirectPc);
    serialPending_.write(false);
    flushReq_.write(FlushReq{});
#ifndef CMD_NO_OBS
    flushRecover_ = true;
    if (tracer_)
        tracer_->squashAll(k_.cycleCount());
#endif
}

// --------------------------------------------------------- observability

void
OooCore::obsCycle()
{
#ifndef CMD_NO_OBS
    if (cpiMuted_)
        return; // sampled-mode warmup window: keep measured stats pure
    robOccupancy_->sample(rob_->count());
    if (cpiStack_)
        cpiStack_->attribute(classifyCycle());
#endif
}

/*
 * Commit-point cycle attribution (top-down): blame the oldest
 * instruction. Exactly one cause per cycle, so the CPI components sum
 * to the sampled cycles by construction (conservation test).
 */
obs::StallCause
OooCore::classifyCycle()
{
    const uint64_t instret = instret_.read();
    const uint64_t committed = instret - cpiLastInstret_;
    cpiLastInstret_ = instret;
    if (committed > 0) {
        mispredRecover_ = flushRecover_ = false;
        return obs::StallCause::Base;
    }
    if (flushReq_.read().valid)
        return obs::StallCause::Serialization;
    if (rob_->empty()) {
        // Empty backend: either recovering from a redirect or starved
        // by the front end.
        if (mispredRecover_)
            return obs::StallCause::BranchMispredict;
        if (flushRecover_)
            return obs::StallCause::Serialization;
        return obs::StallCause::Frontend;
    }
    // The backend holds work again: recovery windows are over.
    mispredRecover_ = flushRecover_ = false;

    const RobEntry &e = rob_->front();
    if (e.done) {
        // Done but not committed this cycle: commit-point serialized
        // work (atomics waiting for drain, MMIO ordering, CSRs).
        return obs::StallCause::Serialization;
    }
    const Inst &ins = e.inst;
    if (ins.isMem()) {
        if (ins.isAtomic() || e.isMmio)
            return obs::StallCause::DMiss;
        if (ins.isLq()) {
            const Lsq::LqEntry &le = lsq_->lqEntry(e.lsqIdx);
            if (le.valid && le.addrValid) {
                // Address known: blocked on the D-cache if issued,
                // else it's still contending in the LSQ (base).
                if (le.state == Lsq::LdState::Issued) {
                    if (dramBound_ && dramBound_(le.pa))
                        return obs::StallCause::DMissDram;
                    return obs::StallCause::DMiss;
                }
            } else if (inflight_.read(memId(true, e.lsqIdx)).valid) {
                return obs::StallCause::TlbMiss;
            }
        } else if (inflight_.read(memId(false, e.lsqIdx)).valid) {
            return obs::StallCause::TlbMiss;
        }
    }
    // Head is mid-execution: charge rename backpressure if a structure
    // is full, otherwise the cycle is plain latency/dependency (base).
    if (!rob_->canEnq(1))
        return obs::StallCause::RobFull;
    bool iqFull = !mdIq_->canEnter() || !memIq_->canEnter();
    for (auto &iq : aluIq_)
        iqFull = iqFull || !iq->canEnter();
    if (iqFull)
        return obs::StallCause::IqFull;
    if (!lsq_->canEnqLd() || !lsq_->canEnqSt())
        return obs::StallCause::LsqFull;
    return obs::StallCause::Base;
}

} // namespace riscy
