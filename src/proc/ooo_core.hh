/**
 * @file
 * The RiscyOO-style out-of-order core (paper Fig. 9): front-end with
 * BTB + tournament predictor + RAS, rename with speculation tags and
 * checkpoints, per-pipeline issue queues, ALU/MEM/MULDIV pipelines,
 * the load-store unit (LSQ + store buffer + non-blocking L1 D), and
 * a 2-way commit stage that defers exceptions, load-order kills,
 * MMIO, atomics and CSRs to the commit point, exactly as the paper
 * describes.
 *
 * The core is an assembly of CMD modules composed by roughly two
 * dozen top-level rules; see ooo_core.cc for the rule bodies and the
 * conflict-matrix reasoning.
 */
#pragma once

#include <functional>
#include <memory>

#include <array>

#include "cache/hierarchy.hh"
#include "frontend/predictors.hh"
#include "isa/csr.hh"
#include "isa/golden.hh"
#include "lsq/lsq.hh"
#include "obs/cpi.hh"
#include "obs/pipeline.hh"
#include "ooo/engine.hh"
#include "ooo/group_fifo.hh"
#include "ooo/iq.hh"
#include "ooo/rob.hh"
#include "ooo/spec_fifo.hh"
#include "proc/config.hh"
#include "tlb/tlb.hh"

namespace riscy {

/** One architecturally retired instruction (or trap), for co-sim. */
struct CommitRecord {
    uint64_t pc = 0;
    uint32_t raw = 0;
    bool hasRd = false;
    uint8_t rd = 0;
    uint64_t rdVal = 0;
    bool volatileRd = false; ///< timing-dependent (cycle CSR)
    bool trapped = false;
    uint64_t cause = 0;
};

class OooCore
{
  public:
    OooCore(cmd::Kernel &k, const std::string &name, uint32_t hartId,
            const CoreConfig &cfg, L1Cache &icache, L1Cache &dcache,
            UncachedPort &walkPort, HostDevice &host);

    /** Initialize architectural state (call after Kernel::elaborate). */
    void reset(Addr pc, uint64_t satp, Addr sp);

    /**
     * Materialize a full architectural state (all 32 registers, PC,
     * CSRs, instret) into the core — the fast-forward -> detailed
     * handoff (proc/sampling.hh). Call between cycles with the kernel
     * freshly restored to its pristine post-start snapshot, so
     * pipelines and rename structures are empty.
     */
    void restoreArch(const isa::ArchState &as);

    // ---- sampled-mode warm handoff (System::runSampled)
    /**
     * Detailed -> fast-forward: stall fetch and raise a commit-point
     * flush, squashing every in-flight instruction back to the
     * committed state with the same machinery a trap uses — caches,
     * TLBs and predictors stay warm. Call between cycles, then run the
     * kernel until drained().
     */
    void beginDrain();
    /** Fully drained after beginDrain(): pipeline empty, no memory or
     *  translation request in flight (between cycles only). */
    bool drained() const;
    /**
     * Fast-forward -> detailed on a drained, warm core: re-seed the
     * architectural state (identity rename, registers, CSRs, pc) and
     * resume fetch. TLB contents are preserved when satp is unchanged.
     */
    void resumeArch(const isa::ArchState &as);
    /**
     * Functional TLB warming (sampled handoff, drained core, between
     * cycles): replay the fast-forward leg's leaf translations into
     * the L1 I/D TLBs and the shared L2 TLB, as if each walk had
     * completed during the skipped region.
     */
    void warmTlbs(const std::vector<isa::GoldenModel::XlateRec> &recs);
    /**
     * Functional predictor warming: replay the fast-forward leg's
     * control transfers through the same BTB / tournament-predictor /
     * RAS update discipline the execute stage uses, rolling the global
     * history forward exactly as fetch would have.
     */
    void
    warmPredictors(const std::vector<isa::GoldenModel::BranchRec> &recs);

    uint64_t instret() const { return instret_.read(); }
    bool halted() const { return host_.exited(hartId_); }
    cmd::StatGroup &stats() { return meta_->stats(); }
    cmd::StatGroup &dtlbStats() { return dtlb_->stats(); }
    cmd::StatGroup &l2tlbStats() { return l2tlb_->stats(); }
    cmd::StatGroup &lsqStats() { return lsq_->stats(); }
    const CoreConfig &config() const { return cfg_; }

    /** Invoked (in program order) for every retired instruction. */
    std::function<void(const CommitRecord &)> onCommit;

    /** Human-readable stall diagnosis (watchdog reports). */
    std::string debugString() const;

    // ---- observability wiring (System::elaborate / obs::ObsHub)
    /** Per-uop pipeline tracer for this hart (null = untraced). */
    void setTracer(obs::PipelineTracer *t) { tracer_ = t; }
    /** CPI-stack accumulator for this hart (null = off). */
    void setCpiStack(obs::CpiStack *c) { cpiStack_ = c; }
    /** D-miss refinement probe: given the blocked load's physical
     *  address, is the line DRAM-bound right now? (null = no split,
     *  every cache-blocked cycle stays in plain DMiss). */
    void
    setDramBoundProbe(std::function<bool(Addr)> p)
    {
        dramBound_ = std::move(p);
    }
    /**
     * Suppress per-cycle CPI/occupancy sampling (sampled-mode warmup
     * windows): with muting toggled around each measured interval the
     * CPI stack conserves exactly the measured cycles.
     */
    void
    setCpiMuted(bool m)
    {
        cpiMuted_ = m;
        cpiLastInstret_ = instret_.read(); // commit-delta baseline
    }
    /**
     * Per-cycle observability sampling: ROB-occupancy histogram and
     * (when a CPI stack is attached) commit-point cycle attribution.
     * Called by the ObsHub post-cycle hook between kernel cycles,
     * never under a rule context.
     */
    void obsCycle();

  private:
    static constexpr uint32_t kMaxWidth = 4;

    struct FetchReq {
        uint64_t pc = 0;
        uint64_t nextAssumed = 0;
        uint8_t n = 0;
        uint8_t epoch = 0;
        uint8_t seq = 0;
        uint64_t fetchCycle = 0; ///< cycle doFetch1 issued this request
    };

    struct FetchXlated {
        FetchReq req;
        Addr pa = 0;
        bool fault = false;
    };

    struct RespSlot {
        bool valid = false;
        Line line;
    };

    struct MdBusy {
        bool valid = false;
        Uop uop;
        uint64_t result = 0;
        uint64_t doneCycle = 0;
    };

    struct InflightMem {
        bool valid = false;
        Uop uop;
        uint64_t va = 0;
    };

    struct Forwarded {
        uint8_t lqIdx = 0;
        uint64_t value = 0;
        SpecMask specMask = 0; ///< for SpecFifo (kill by mask)
    };

    struct PendingAtomic {
        bool valid = false;
        bool isLq = false;
        uint8_t idx = 0;
    };

    struct FlushReq {
        bool valid = false;
        uint64_t redirectPc = 0;
        bool satpChanged = false;
    };

    /** A tiny module that only exists to hold the core's stats. */
    class Meta : public cmd::Module
    {
      public:
        Meta(cmd::Kernel &k, const std::string &n) : Module(k, n) {}
    };

    // ---- rule bodies
    void doFetch1();
    void doFetch2();
    void doIcacheResp();
    void doFetch3();
    void doRename();
    void doIssue(uint32_t pipe);
    void doRegRead(uint32_t pipe);
    void doExec(uint32_t pipe);
    void doRegWrite(uint32_t pipe);
    void doIssueMd();
    void doRegReadMd();
    void doMdWb();
    void doIssueMem();
    void doRegReadMem();
    void doAddrCalc();
    void doUpdateLsq();
    void doIssueLd();
    void doRespLdCache();
    void doRespLdFwd();
    void doDeqLd();
    void doIssueStTso();
    void doRespStTso();
    void doDeqStToSb();
    void doSbIssue();
    void doRespStWmm();
    void doStPrefetch();
    void doIssueAtomic();
    void doRespAtomic();
    void doCommit();
    void doFlush();

    // ---- helpers
    bool readOperands(Uop &u);
    void completeLoad(uint8_t lqIdx, uint64_t value);
    void applyWrongSpec(SpecMask dead);
    void applyCorrectSpec(SpecMask bit);
    void killRaw(SpecMask dead);
    void emitCommit(const RobEntry &e, bool trapped, uint64_t cause,
                    bool haveVal = false, uint64_t val = 0);
    std::vector<const cmd::Method *> specMethods() const;
    std::vector<const cmd::Method *> wakeupMethods() const;
    /** Top-down commit-point attribution of one non-committing cycle;
     *  exhaustive and exclusive (see obs/cpi.hh). */
    obs::StallCause classifyCycle();

    cmd::Kernel &k_;
    std::string name_;
    uint32_t hartId_;
    CoreConfig cfg_;
    L1Cache &icache_, &dcache_;
    HostDevice &host_;

    std::unique_ptr<Meta> meta_;

    // Front end
    std::unique_ptr<EpochManager> epoch_;
    std::unique_ptr<Btb> btb_;
    std::unique_ptr<TournamentBp> bp_;
    std::unique_ptr<Ras> ras_;
    cmd::Reg<uint16_t> fetchGhr_;
    cmd::Reg<uint8_t> fetchSeq_;
    std::unique_ptr<cmd::CfFifo<FetchReq>> f2q_;
    std::unique_ptr<cmd::CfFifo<FetchXlated>> f3q_;
    cmd::RegArray<RespSlot> fetchResp_;
    std::unique_ptr<GroupFifo<Uop>> instQ_;

    // TLBs
    std::unique_ptr<TlbChannel> itlbChan_, dtlbChan_;
    std::unique_ptr<L1Tlb> itlb_, dtlb_;
    std::unique_ptr<L2Tlb> l2tlb_;

    // Rename engine
    std::unique_ptr<SpecManager> specMgr_;
    std::unique_ptr<RenameTable> rt_;
    std::unique_ptr<FreeList> fl_;
    std::unique_ptr<Scoreboard> sb_;
    std::unique_ptr<Prf> prf_;
    std::unique_ptr<Bypass> bypass_;
    std::unique_ptr<Rob> rob_;
    cmd::Reg<uint32_t> aluRR_;

    // Execution pipelines
    std::vector<std::unique_ptr<IssueQueue>> aluIq_;
    std::vector<std::unique_ptr<SpecFifo<Uop>>> aluRrq_, aluExq_, aluWbq_;
    std::unique_ptr<IssueQueue> mdIq_;
    std::unique_ptr<SpecFifo<Uop>> mdRrq_;
    cmd::Reg<MdBusy> mdBusy_;
    std::unique_ptr<IssueQueue> memIq_;
    std::unique_ptr<SpecFifo<Uop>> memRrq_, memAmq_;
    cmd::RegArray<InflightMem> inflight_; ///< indexed by TLB req id

    // Load-store unit
    std::unique_ptr<Lsq> lsq_;
    std::unique_ptr<StoreBuffer> storeBuf_;
    std::unique_ptr<cmd::CfFifo<Forwarded>> forwardQ_;
    cmd::Reg<PendingAtomic> pendingAtomic_;

    // Commit / architectural state
    cmd::Reg<isa::CsrState> csr_;
    cmd::Reg<uint64_t> instret_;
    cmd::Reg<FlushReq> flushReq_;
    /// a rename-serialized instruction is in flight: rename stalls
    cmd::Reg<bool> serialPending_;
    /// sampled-mode drain: doFetch1 parks until resumeArch()
    cmd::Reg<bool> fetchStall_;

    // stats
    cmd::Stat *branches_, *mispredicts_, *ldKillFlushes_, *flushes_,
        *fetchRedirects_, *committedLoads_, *committedStores_,
        *committedAmos_;
    cmd::Histogram *robOccupancy_ = nullptr;
    cmd::Histogram *fetchToCommit_ = nullptr;

    // ---- observability (not architectural state: none of this is in
    // the kernel snapshot, and none of it feeds back into timing)
    obs::PipelineTracer *tracer_ = nullptr;
    obs::CpiStack *cpiStack_ = nullptr;
    std::function<bool(Addr)> dramBound_;
    /// instret at the last CPI sample (commit-per-cycle delta)
    uint64_t cpiLastInstret_ = 0;
    /// refilling after a mispredict redirect / a commit-point flush
    bool mispredRecover_ = false, flushRecover_ = false;
    /// warmup window of a sampled interval: skip CPI/occupancy samples
    bool cpiMuted_ = false;
    /// ROB index -> pipeline-trace seq (side map; RobIdx is 8 bits)
    std::array<uint64_t, 256> robSeq_{};
};

} // namespace riscy
