/**
 * @file
 * A Rocket-class in-order scalar core, used as the Fig. 17 comparison
 * baseline. Built from the same CMD modules (TLBs, caches, BTB) as the
 * OOO core: a pipelined front end steered by a BTB, an execute stage
 * that retires one ALU/branch instruction per cycle, and a one-
 * outstanding-access memory unit with stall-on-use busy bits (loads
 * overlap independent ALU work, as in Rocket).
 *
 * Simplifications relative to Rocket (documented in DESIGN.md): no
 * compressed instructions, BTB-only branch prediction, and a single
 * outstanding data-memory access.
 */
#pragma once

#include <functional>
#include <memory>

#include "cache/hierarchy.hh"
#include "frontend/predictors.hh"
#include "isa/csr.hh"
#include "ooo/group_fifo.hh"
#include "ooo/uop.hh"
#include "proc/config.hh"
#include "proc/ooo_core.hh" // CommitRecord
#include "tlb/tlb.hh"

namespace riscy {

class InOrderCore
{
  public:
    InOrderCore(cmd::Kernel &k, const std::string &name, uint32_t hartId,
                const CoreConfig &cfg, L1Cache &icache, L1Cache &dcache,
                UncachedPort &walkPort, HostDevice &host);

    void reset(Addr pc, uint64_t satp, Addr sp);
    /** Fast-forward -> detailed handoff: materialize a full arch
     *  state (see OooCore::restoreArch; same pristine-kernel rule). */
    void restoreArch(const isa::ArchState &as);
    // ---- sampled-mode warm handoff (see OooCore for the contract).
    // The in-order pipeline has no flush machinery: beginDrain() just
    // parks fetch, and everything already fetched retires (the commit
    // hook keeps observing it) or filters out as epoch-stale.
    void beginDrain();
    bool drained() const;
    void resumeArch(const isa::ArchState &as);
    /** Functional TLB warming (see OooCore::warmTlbs). */
    void warmTlbs(const std::vector<isa::GoldenModel::XlateRec> &recs);
    /** Functional predictor warming; BTB-only on this core. */
    void
    warmPredictors(const std::vector<isa::GoldenModel::BranchRec> &recs);
    uint64_t instret() const { return instret_.read(); }
    bool halted() const { return host_.exited(hartId_); }
    cmd::StatGroup &stats() { return meta_->stats(); }
    cmd::StatGroup &dtlbStats() { return dtlb_->stats(); }
    cmd::StatGroup &l2tlbStats() { return l2tlb_->stats(); }

    std::function<void(const CommitRecord &)> onCommit;

  private:
    struct FetchReq {
        uint64_t pc = 0;
        uint64_t nextAssumed = 0;
        uint8_t epoch = 0;
        uint8_t seq = 0;
    };

    struct FetchXlated {
        FetchReq req;
        Addr pa = 0;
        bool fault = false;
    };

    struct RespSlot {
        bool valid = false;
        Line line;
    };

    /** The one-outstanding memory access state machine. */
    struct MemOp {
        bool valid = false;
        uint8_t phase = 0; ///< 0 WaitTlb, 1 WaitCacheLd, 2 WaitCacheSt,
                           ///< 3 WaitAtomic
        isa::Inst inst;
        uint64_t pc = 0;
        uint64_t va = 0;
        Addr pa = 0;
        uint64_t data = 0; ///< store data / AMO operand
    };

    class Meta : public cmd::Module
    {
      public:
        Meta(cmd::Kernel &k, const std::string &n) : Module(k, n) {}
    };

    void doFetch1();
    void doFetch2();
    void doIcacheResp();
    void doFetch3();
    void doExec();
    void doMemTlbResp();
    void doMemCacheResp();
    void trap(uint64_t pc, isa::Cause cause, uint64_t tval);
    void writeback(uint8_t rd, uint64_t val);
    void emit(uint64_t pc, uint32_t raw, const isa::Inst &ins, bool hasRd,
              uint64_t rdVal, bool volatileRd, bool trapped,
              uint64_t cause);

    cmd::Kernel &k_;
    std::string name_;
    uint32_t hartId_;
    CoreConfig cfg_;
    L1Cache &icache_, &dcache_;
    HostDevice &host_;
    std::unique_ptr<Meta> meta_;

    std::unique_ptr<EpochManager> epoch_;
    std::unique_ptr<Btb> btb_;
    cmd::Reg<uint8_t> fetchSeq_;
    std::unique_ptr<cmd::CfFifo<FetchReq>> f2q_;
    std::unique_ptr<cmd::CfFifo<FetchXlated>> f3q_;
    cmd::RegArray<RespSlot> fetchResp_;
    std::unique_ptr<GroupFifo<Uop>> instQ_;

    std::unique_ptr<TlbChannel> itlbChan_, dtlbChan_;
    std::unique_ptr<L1Tlb> itlb_, dtlb_;
    std::unique_ptr<L2Tlb> l2tlb_;

    cmd::RegArray<uint64_t> regs_;
    cmd::RegArray<uint8_t> busy_; ///< stall-on-use for loads/atomics
    cmd::Reg<MemOp> memOp_;
    cmd::Reg<isa::CsrState> csr_;
    cmd::Reg<uint64_t> instret_;
    /// sampled-mode drain: doFetch1 parks until resumeArch()
    cmd::Reg<bool> fetchStall_;

    cmd::Stat *branches_, *mispredicts_, *loads_, *stores_;
};

} // namespace riscy
