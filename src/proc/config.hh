/**
 * @file
 * Core and system configurations, including the paper's named
 * variants (Fig. 12 / Fig. 14) and the comparison stand-ins used by
 * the benchmark harness (Fig. 13): Rocket-class in-order baselines
 * and the wider-superscalar configurations standing in for the
 * commercial ARM cores and BOOM.
 */
#pragma once

#include "cache/hierarchy.hh"
#include "core/kernel.hh"
#include "obs/obs_config.hh"
#include "ooo/iq.hh"
#include "proc/sampling.hh"
#include "tlb/tlb.hh"

namespace riscy {

struct CoreConfig {
    uint32_t width = 2;        ///< fetch/rename/commit width
    uint32_t aluPipes = 2;
    uint32_t robSize = 64;
    uint32_t iqSize = 16;      ///< per pipeline
    uint32_t lqSize = 24;
    uint32_t sqSize = 14;
    uint32_t sbSize = 4;
    uint32_t numSpecTags = 8;
    uint32_t btbEntries = 256;
    uint32_t rasEntries = 8;
    uint32_t mulLatency = 3;
    uint32_t divLatency = 16;
    bool tso = true;           ///< TSO when true, WMM otherwise
    /**
     * TSO only: kill speculatively-executed loads whose line leaves
     * the L1 (the load-load ordering mechanism). Turning this off
     * deliberately breaks TSO — it exists so the litmus harness can
     * prove in a negative test that it catches the resulting
     * forbidden outcomes. Never disable outside that test.
     */
    bool tsoEvictKill = true;
    IssueQueue::Ordering iqOrder = IssueQueue::Ordering::WakeupIssueEnter;
    L1Tlb::Config itlb{32, 1, false};
    L1Tlb::Config dtlb{32, 1, false};
    L2Tlb::Config l2tlb{2048, 4, 1, false, 24};
    /** Next-line prefetch on the L1 D miss stream (wide stand-ins);
     *  the cache-side switch is MemHierarchyConfig.l1d.prefetchNextLine. */
    bool prefetcher = false;
    /** SQ store-prefetch hints (the paper's unimplemented feature):
     *  acquire write permission for queued stores ahead of commit. */
    bool storePrefetch = false;

    /** Physical registers: one per ROB entry plus the 32 committed. */
    uint32_t numPhys() const { return robSize + 32; }
};

struct SystemConfig {
    std::string name = "custom";
    uint32_t cores = 1;
    bool inOrder = false; ///< Rocket-class baseline core
    /**
     * Rule-scheduling strategy of the kernel (see cmd::SchedulerKind).
     * EventDriven skips rules proven not-ready by sensitivity
     * tracking and is architecturally bit-identical to Exhaustive;
     * the lockstep cosim tests (test_scheduler) verify this.
     */
    cmd::SchedulerKind scheduler = cmd::SchedulerKind::EventDriven;
    /**
     * Execution threads for SchedulerKind::Parallel (including the
     * driving thread); 0 picks min(hardware concurrency, domain
     * count). Ignored by the sequential schedulers.
     */
    uint32_t threads = 0;
    /**
     * Cap on the parallel scheduler's multi-cycle sync window
     * (lookahead), in cycles. 0 = auto: use the minimum latency over
     * all cross-domain channels ("fifo-min"), computed at
     * elaboration. The effective window is always min(cap, fifo-min).
     * Ignored by the sequential schedulers.
     */
    uint32_t lookahead = 0;
    /**
     * SchedulerKind::Compiled: cycles of event-driven profiling
     * before the dispatch table is re-specialized once, promoting
     * rules attempted on at least compiledHotRate of the profiled
     * cycles onto the fused fast path. 0 compiles every rule fast
     * immediately (the fully static schedule). Ignored by the other
     * schedulers.
     */
    uint64_t compiledProfileCycles = 1024;
    /** Attempt-rate threshold (attempts/cycle in [0,1]) for the
     *  compiled fast-path promotion. */
    double compiledHotRate = 0.5;

    // ---- execution mode (see proc/sampling.hh and System::run*)
    /**
     * How the program executes: Detailed (every cycle through the CMD
     * kernel; System::run), FastForward (pure functional
     * interpretation at multi-MIPS; System::runFastForward), or
     * Sampled (SMARTS-style skip/warmup/measure sampling with warm
     * checkpoint handoffs; System::runSampled). FastForward supports
     * any core count; Sampled requires a single core.
     */
    ExecMode execMode = ExecMode::Detailed;
    /** Interval tuple for ExecMode::Sampled. */
    SamplingConfig sampling;

    // ---- hardening knobs (see core/harden.hh and System::run)
    /** Wall-clock budget for System::run; 0 = unlimited. */
    uint64_t maxWallSeconds = 0;
    /**
     * Forward-progress window: a run with zero commits for this many
     * cycles trips the watchdog (KernelFault with diagnostics instead
     * of a silent hang). 0 disables.
     */
    uint64_t watchdogStallCycles = 200000;
    /** Cycles between periodic checkpoints; 0 disables. */
    uint64_t checkpointEvery = 0;
    /** Checkpoint file (required when checkpointEvery > 0). */
    std::string checkpointPath;
    /** KernelFaults absorbed (restore + degrade) before giving up. */
    uint32_t maxFaultRetries = 3;
    /** Degrade Parallel/Compiled -> EventDriven -> Exhaustive on a fault. */
    bool degradeScheduler = true;
    /**
     * Bound on one parallel cycle barrier (stuck-worker detection),
     * in nanoseconds; 0 disables.
     */
    uint64_t barrierTimeoutNs = 0;

    // ---- observability (see obs/obs_config.hh and System::elaborate)
    /** Trace/attribution sinks: Konata pipeline traces, Perfetto rule
     *  timelines, top-down CPI stacks. All off by default. */
    obs::ObsConfig obs;
    /**
     * Warmup window: reset every stats group (counters, histograms)
     * and the CPI stacks once the kernel reaches this cycle, so
     * post-warmup stats exclude cold caches/predictors. 0 disables.
     */
    uint64_t statsResetAtCycle = 0;

    CoreConfig core;
    MemHierarchyConfig mem;

    /** Fig. 12: the RiscyOO-B baseline configuration. */
    static SystemConfig
    riscyooB()
    {
        SystemConfig s;
        s.name = "RiscyOO-B";
        s.mem.l1d = {32, 8, 8, true};
        s.mem.l1i = {32, 8, 4, false};
        s.mem.l2 = {1024, 16, 16};
        s.mem.dram = {120, 24, 10};
        return s;
    }

    /** Fig. 14: RiscyOO-C- (16KB L1 I/D, 256KB L2). */
    static SystemConfig
    riscyooCMinus()
    {
        SystemConfig s = riscyooB();
        s.name = "RiscyOO-C-";
        s.mem.l1d.sizeKb = 16;
        s.mem.l1i.sizeKb = 16;
        s.mem.l2.sizeKb = 256;
        return s;
    }

    /** Fig. 14: RiscyOO-T+ (non-blocking TLBs + walk cache). */
    static SystemConfig
    riscyooTPlus()
    {
        SystemConfig s = riscyooB();
        s.name = "RiscyOO-T+";
        s.core.dtlb = {32, 4, true};
        s.core.l2tlb = {2048, 4, 2, true, 24};
        return s;
    }

    /** Fig. 14: RiscyOO-T+R+ (80-entry ROB, more spec tags). */
    static SystemConfig
    riscyooTPlusRPlus()
    {
        SystemConfig s = riscyooTPlus();
        s.name = "RiscyOO-T+R+";
        s.core.robSize = 80;
        s.core.numSpecTags = 12;
        return s;
    }

    /** Fig. 13: Rocket-class in-order core, configurable memory. */
    static SystemConfig
    rocket(uint32_t memLatency)
    {
        SystemConfig s;
        s.name = memLatency <= 10 ? "Rocket-10" : "Rocket-120";
        s.inOrder = true;
        s.mem.l1d = {16, 4, 4, true};
        s.mem.l1i = {16, 4, 4, false};
        // "no L2": a minimal pass-through L2 with memory latency
        // folded into DRAM (the AWS Rocket has no L2, Fig. 13 note).
        s.mem.l2 = {64, 4, 8};
        s.mem.parentChanDelay = 1;
        s.mem.dram = {memLatency, 8, 2};
        return s;
    }

    /** Fig. 18 stand-in: a 3-wide OOO core (A57-class shape). */
    static SystemConfig
    wide3()
    {
        SystemConfig s = riscyooTPlus();
        s.name = "Wide-3 (A57-class)";
        s.core.width = 3;
        s.core.aluPipes = 3;
        s.core.robSize = 128;
        s.core.iqSize = 24;
        s.core.lqSize = 32;
        s.core.sqSize = 24;
        s.core.numSpecTags = 12;
        s.core.prefetcher = true;
        s.mem.l1d.prefetchNextLine = true;
        s.mem.l1i.sizeKb = 48;
        s.mem.l1i.ways = 6; // keep the set count a power of two
        s.mem.l2.sizeKb = 2048;
        return s;
    }

    /** Fig. 18 stand-in: an aggressive 7-wide core (Denver-class). */
    static SystemConfig
    wide7()
    {
        SystemConfig s = riscyooTPlus();
        s.name = "Wide-7 (Denver-class)";
        s.core.width = 4; // rename bandwidth saturates at 4 here
        s.core.aluPipes = 4;
        s.core.robSize = 192;
        s.core.iqSize = 32;
        s.core.lqSize = 48;
        s.core.sqSize = 32;
        s.core.numSpecTags = 14;
        s.core.prefetcher = true;
        s.mem.l1d.prefetchNextLine = true;
        s.mem.l1i.sizeKb = 128;
        s.mem.l1d.sizeKb = 64;
        s.mem.l2.sizeKb = 2048;
        return s;
    }

    /** Fig. 19 comparison: BOOM-matched sizes. */
    static SystemConfig
    boomLike()
    {
        SystemConfig s;
        s.name = "BOOM-like";
        s.core.robSize = 80;
        s.core.numSpecTags = 8;
        s.mem.l1d = {32, 8, 8, true};
        s.mem.l1i = {32, 8, 4, false};
        s.mem.l2 = {1024, 16, 16};
        s.mem.parentChanDelay = 18; // BOOM's 23-cycle L2
        s.mem.dram = {80, 24, 10};  // BOOM's 80-cycle memory
        return s;
    }

    /** Quad-core config used for the PARSEC runs (Section VI-B). */
    static SystemConfig
    multicore(bool tso)
    {
        SystemConfig s = riscyooTPlus();
        s.name = tso ? "quad-TSO" : "quad-WMM";
        s.cores = 4;
        s.mem.cores = 4;
        s.core.robSize = 48;
        s.core.lqSize = 16;
        s.core.sqSize = 10;
        s.core.tso = tso;
        // Latency-bearing domain cuts: give every cross-domain channel
        // (core<->L2 request/response and the page-walk ports; the
        // L2->L1 parent channel already sits at 6) at least 4 cycles,
        // so the parallel scheduler's lookahead window is 4 — one
        // barrier per 4 simulated cycles instead of one per cycle.
        s.mem.childChanDelay = 4;
        s.mem.walkPortDelay = 4;
        return s;
    }

    /**
     * Server-scale config: @p nCores cores (8/16/32/64) behind
     * @p nBanks line-interleaved L2 directory slices and the DramCtl
     * contention model — the topology the KV-serving bench drives.
     * The quad presets are untouched by this family; banking only
     * activates through mem.l2Banks > 1.
     */
    static SystemConfig
    serverConfig(uint32_t nCores, uint32_t nBanks = 4)
    {
        SystemConfig s = riscyooTPlus();
        s.name = "server-" + std::to_string(nCores) + "c" +
                 std::to_string(nBanks) + "b";
        s.cores = nCores;
        s.mem.cores = nCores;
        // Same per-core sizing as the quad preset: the interesting
        // scaling is in the shared memory system, not the cores.
        s.core.robSize = 48;
        s.core.lqSize = 16;
        s.core.sqSize = 10;
        s.core.tso = true;
        s.mem.l2Banks = nBanks;
        // Per-slice geometry: 512 KB x banks of shared L2, 16 ways.
        s.mem.l2 = {512, 16, 16};
        s.mem.dramCtl = DramCtl::Config{};
        // Keep every cross-domain cut (router<->bank channels at
        // childChanDelay/parentChanDelay, bank<->DRAM channels at
        // dramCtl.chanDelay) at >= 4 cycles so the parallel
        // scheduler's fifo-min lookahead window stays 4.
        s.mem.childChanDelay = 4;
        s.mem.walkPortDelay = 4;
        s.mem.dramCtl.chanDelay = 4;
        return s;
    }
};

} // namespace riscy
