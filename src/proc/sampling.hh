/**
 * @file
 * Sampled simulation with functional fast-forward: the machinery
 * behind SystemConfig::execMode (the MIPS-class execution mode).
 *
 * Three execution modes:
 *
 *  - Detailed: every cycle through the CMD kernel (the default; what
 *    every PR before this one ran).
 *  - FastForward: the whole program through the fast functional
 *    RV64IMA interpreter (isa::GoldenModel::run) — multi-MIPS, no
 *    timing, same PhysMem/HostDevice as the detailed core.
 *  - Sampled: SMARTS-style periodic sampling. Repeating (skip,
 *    warmup, measure) interval tuples: fast-forward `skip`
 *    instructions functionally, warm-handoff into the detailed core,
 *    run `warmup` detailed instructions discarded from the stats
 *    (cold caches/predictors heal here, the per-interval analogue of
 *    SystemConfig::statsResetAtCycle), measure `measure` detailed
 *    instructions, hand back, repeat. Per-interval IPCs feed the
 *    IntervalEstimator (mean + 95% confidence interval).
 *
 * The warm handoff reuses PR 3's checkpoint machinery: the detailed
 * side is re-materialized by restoring the pristine post-start
 * Kernel::snapshot() (empty pipelines, empty caches — exactly what
 * CheckpointManager persists to disk) and then writing the functional
 * ArchState into the core under runAtomically (OooCore/InOrderCore::
 * restoreArch). The detailed->functional direction is tracked by a
 * ShadowTracker: a private GoldenModel stepping once per commit on a
 * copy of memory (the cosim discipline of tests/cosim.hh), so the
 * architectural state at interval end is known without draining the
 * pipeline, store buffer, or dirty cache lines.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/fault.hh"
#include "isa/golden.hh"

namespace riscy {

/** How System::run-family calls execute the program. */
enum class ExecMode : uint8_t {
    Detailed,    ///< every cycle through the CMD kernel
    FastForward, ///< pure functional interpretation (no timing)
    Sampled,     ///< SMARTS-style skip/warmup/measure sampling
};

const char *toString(ExecMode m);

/** Knobs of ExecMode::Sampled (instruction counts, per interval). */
struct SamplingConfig {
    uint64_t skip = 50000;  ///< functionally fast-forwarded
    uint64_t warmup = 3000; ///< detailed, discarded from stats
    uint64_t measure = 3000; ///< detailed, measured
    /** Stop sampling after this many measured intervals (0 = run to
     *  program completion). */
    uint64_t maxIntervals = 0;
    /** A final partial interval below this many measured instructions
     *  is dropped from the estimate (program exited mid-measure). */
    uint64_t minMeasure = 500;
};

/**
 * Mean + 95% confidence interval over per-interval observations
 * (IPC). Plain running-moment accumulator; the CI half-width is
 * 1.96 * s / sqrt(n) with the sample standard deviation s, so it
 * tightens as measured intervals accumulate (the SMARTS estimator).
 */
class IntervalEstimator
{
  public:
    void
    add(double v)
    {
        n_++;
        sum_ += v;
        sumSq_ += v * v;
    }

    uint64_t n() const { return n_; }
    double mean() const { return n_ ? sum_ / double(n_) : 0.0; }

    double
    stddev() const
    {
        if (n_ < 2)
            return 0.0;
        double m = mean();
        double var = (sumSq_ - double(n_) * m * m) / double(n_ - 1);
        return var > 0 ? std::sqrt(var) : 0.0;
    }

    /** 95% CI half-width (0 until two observations exist). */
    double
    ci95Half() const
    {
        return n_ >= 2 ? 1.96 * stddev() / std::sqrt(double(n_)) : 0.0;
    }

  private:
    uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
};

/** Aggregated outcome of a runSampled() / runFastForward() call. */
struct SampleStats {
    uint64_t intervals = 0;      ///< measured intervals kept
    uint64_t ffInsts = 0;        ///< functionally fast-forwarded
    uint64_t warmupInsts = 0;    ///< detailed, discarded
    uint64_t measuredInsts = 0;  ///< detailed, measured
    uint64_t measuredCycles = 0; ///< cycles inside measured windows
    uint64_t totalInsts = 0;     ///< all of the above
    double meanIpc = 0.0;        ///< mean of per-interval IPCs
    double ipcCi95 = 0.0;        ///< 95% CI half-width of meanIpc
    /** Whole-program cycle estimate: totalInsts / meanIpc. */
    uint64_t estTotalCycles = 0;
    /** Per-interval CPI observations (the estimator's inputs), in
     *  program order — the raw material for convergence diagnostics. */
    std::vector<double> intervalCpi;
};

/**
 * Tracks architectural state through a detailed interval: a private
 * GoldenModel stepping once per committed instruction against a
 * *copy* of memory and a throwaway host device, so the detailed
 * machine's in-flight stores / dirty cache lines never have to be
 * drained for a handoff. Divergence between the shadow and the
 * detailed commit stream (a timing-dependent program — e.g. branching
 * on rdcycle — or a core bug) raises a KernelFault instead of
 * silently corrupting the next fast-forward phase.
 */
class ShadowTracker
{
  public:
    ShadowTracker(const PhysMem &mem, uint32_t harts, uint32_t hartId,
                  const isa::ArchState &as)
        : mem_(mem), host_(harts), model_(mem_, host_, hartId, as.pc)
    {
        model_.setArchState(as);
    }

    /** Advance by one commit; verify it matches the detailed core. */
    void
    step(uint64_t pc, bool trapped)
    {
        if (model_.halted())
            return; // exit store committed; trailing commits are spin
        auto g = model_.step();
        if (g.pc != pc || g.trapped != trapped) {
            cmd::kfault(cmd::FaultKind::DesignError, "sampling",
                        "shadow tracker diverged from detailed commit "
                        "stream: shadow pc=%#llx trapped=%d, detailed "
                        "pc=%#llx trapped=%d",
                        (unsigned long long)g.pc, int(g.trapped),
                        (unsigned long long)pc, int(trapped));
        }
    }

    isa::ArchState archState() const { return model_.archState(); }
    const PhysMem &mem() const { return mem_; }

  private:
    PhysMem mem_; ///< private copy; the shadow's loads must see an
                  ///< architecturally up-to-date image
    HostDevice host_;
    isa::GoldenModel model_;
};

} // namespace riscy
