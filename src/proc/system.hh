/**
 * @file
 * System assembly: cores (OOO or in-order) + the coherent memory
 * hierarchy + host device, per Fig. 11. Also provides the run loop
 * with a commit-progress watchdog used by tests and benchmarks.
 */
#pragma once

#include "proc/inorder_core.hh"
#include "proc/ooo_core.hh"

namespace riscy {

class System
{
  public:
    explicit System(const SystemConfig &cfg);

    cmd::Kernel &kernel() { return k_; }
    PhysMem &mem() { return mem_; }
    HostDevice &host() { return *host_; }
    MemHierarchy &hier() { return *hier_; }
    const SystemConfig &config() const { return cfg_; }
    uint32_t cores() const { return cfg_.cores; }

    /** Finalize the design (Kernel::elaborate). */
    void elaborate() { k_.elaborate(); }

    /** Reset every hart (after elaborate). One stack top per hart. */
    void start(Addr entry, uint64_t satp, const std::vector<Addr> &sp);

    /**
     * Run until every hart exits via the host device (or the host
     * flags a failure). @return true if all harts exited cleanly.
     * Panics with a progress report if no instruction commits for
     * a long stretch (deadlock watchdog).
     */
    bool run(uint64_t maxCycles);

    uint64_t instret(uint32_t i) const;
    void setOnCommit(uint32_t i, std::function<void(const CommitRecord &)>);
    OooCore &ooo(uint32_t i) { return *oooCores_[i]; }
    InOrderCore &inOrder(uint32_t i) { return *ioCores_[i]; }
    bool isInOrder() const { return cfg_.inOrder; }

    /** Headline per-hart event counts for the benchmark harness. */
    struct EventCounts {
        uint64_t instret = 0;
        uint64_t cycles = 0;
        uint64_t wallNs = 0; ///< host time spent in System::run (KIPS)
        uint64_t dtlbMisses = 0;
        uint64_t l2tlbMisses = 0;
        uint64_t branchMispredicts = 0;
        uint64_t l1dMisses = 0;
        uint64_t l2Misses = 0;
        uint64_t ldKills = 0;
        uint64_t evictKills = 0;
    };
    EventCounts events(uint32_t i) const;

    /** Host nanoseconds accumulated across all run() calls. */
    uint64_t runWallNs() const { return runWallNs_; }

  private:
    SystemConfig cfg_;
    cmd::Kernel k_;
    PhysMem mem_;
    uint64_t runWallNs_ = 0;
    std::unique_ptr<HostDevice> host_;
    std::unique_ptr<MemHierarchy> hier_;
    std::vector<std::unique_ptr<OooCore>> oooCores_;
    std::vector<std::unique_ptr<InOrderCore>> ioCores_;
};

} // namespace riscy
