/**
 * @file
 * System assembly: cores (OOO or in-order) + the coherent memory
 * hierarchy + host device, per Fig. 11. Also provides the hardened
 * run loop (core/harden.hh): commit-progress watchdog, wall-clock
 * budget, periodic checkpoints, and graceful scheduler degradation.
 */
#pragma once

#include "core/harden.hh"
#include "obs/hub.hh"
#include "proc/inorder_core.hh"
#include "proc/ooo_core.hh"

namespace riscy {

/** Why the last System::run() family call returned. */
enum class StopReason : uint8_t {
    None,      ///< run() not called yet
    AllExited, ///< every hart exited cleanly via the host device
    HostFail,  ///< the host device's Fail channel fired
    MaxCycles, ///< cycle budget exhausted
    WallClock, ///< SystemConfig::maxWallSeconds budget exhausted
    MaxInsts,  ///< instruction/interval budget exhausted (fast-forward
               ///< and sampled modes)
};

const char *toString(StopReason r);

class System
{
  public:
    explicit System(const SystemConfig &cfg);

    cmd::Kernel &kernel() { return k_; }
    PhysMem &mem() { return mem_; }
    HostDevice &host() { return *host_; }
    MemHierarchy &hier() { return *hier_; }
    const SystemConfig &config() const { return cfg_; }
    uint32_t cores() const { return cfg_.cores; }

    /** Finalize the design (Kernel::elaborate) and, when any
     *  SystemConfig::obs sink or the warmup stats reset is enabled,
     *  install the observability hub. */
    void elaborate();

    /** Reset every hart (after elaborate). One stack top per hart. */
    void start(Addr entry, uint64_t satp, const std::vector<Addr> &sp);

    /**
     * Run until every hart exits via the host device, the host flags
     * a failure, the cycle budget runs out, or (when configured) the
     * wall-clock budget runs out — stopReason() says which. Driven by
     * a cmd::HardenedRunner: if no instruction commits for
     * SystemConfig::watchdogStallCycles, the watchdog raises a
     * KernelFault(Watchdog) with full diagnostics; with checkpoints
     * or scheduler degradation enabled the fault is absorbed and the
     * run resumes, up to maxFaultRetries. @return true if all harts
     * exited cleanly.
     */
    bool run(uint64_t maxCycles);

    /** Why the last run() returned. */
    StopReason stopReason() const { return stopReason_; }

    // ---- execution modes (SystemConfig::execMode, proc/sampling.hh)
    /**
     * Run purely functionally through the per-hart GoldenModel
     * interpreters (ExecMode::FastForward or Sampled; harts are
     * created by start()). Multi-hart programs interleave in
     * round-robin instruction batches, so spin barriers still make
     * progress. Stops on clean exit, host failure, or after
     * @p maxInsts total instructions (0 = no budget). No kernel
     * cycles elapse. @return true if all harts exited cleanly.
     */
    bool runFastForward(uint64_t maxInsts = 0);

    /**
     * Warm handoff, functional -> detailed: restore the kernel to its
     * pristine post-start snapshot (empty pipelines and caches) and
     * materialize every functional hart's architectural state into
     * its detailed core. Memory and the host device are already
     * shared. Detailed execution may then continue with run().
     */
    void handoffToDetailed();

    /**
     * SMARTS-style sampled simulation (ExecMode::Sampled, single
     * core): repeat (skip, warmup, measure) intervals per
     * SystemConfig::sampling until the program exits or budgets run
     * out; sampleStats() holds the estimate. During the detailed
     * windows a ShadowTracker follows the commit stream so the
     * handoff back to fast-forward needs no pipeline/cache draining.
     * @p maxInsts bounds total instructions (0 = none).
     * @return true if the program exited cleanly.
     */
    bool runSampled(uint64_t maxInsts = 0);

    /** Aggregate fast-forward/sampling outcome of the last run. */
    const SampleStats &sampleStats() const { return sampleStats_; }

    /** Functional hart @p i (valid after start() in FF/Sampled mode). */
    isa::GoldenModel &funcHart(uint32_t i) { return *funcHarts_[i]; }

    /**
     * Extra bytes carried inside each checkpoint alongside the kernel
     * snapshot and memory/host images (e.g. a commit-stream digest).
     * Set before the first run().
     */
    void setCheckpointUserHooks(
        std::function<std::vector<uint8_t>()> save,
        std::function<void(const std::vector<uint8_t> &)> load);

    /**
     * Resume from the checkpoint at SystemConfig::checkpointPath
     * (crash recovery: build the same System, elaborate, then restore
     * instead of start()). @return false when no checkpoint exists.
     */
    bool restoreCheckpoint();

    /** Faults absorbed by the degradation ladder during run(). */
    const std::vector<std::string> &faultLog() { return runner().faultLog(); }
    uint32_t faultRetries() { return runner().faultRetries(); }

    uint64_t instret(uint32_t i) const;
    void setOnCommit(uint32_t i, std::function<void(const CommitRecord &)>);
    OooCore &ooo(uint32_t i) { return *oooCores_[i]; }
    InOrderCore &inOrder(uint32_t i) { return *ioCores_[i]; }
    bool isInOrder() const { return cfg_.inOrder; }

    /** Headline per-hart event counts for the benchmark harness. */
    struct EventCounts {
        uint64_t instret = 0;
        uint64_t cycles = 0;
        uint64_t wallNs = 0; ///< host time spent in System::run (KIPS)
        uint64_t dtlbMisses = 0;
        uint64_t l2tlbMisses = 0;
        uint64_t branchMispredicts = 0;
        uint64_t l1dMisses = 0;
        uint64_t l2Misses = 0;
        uint64_t ldKills = 0;
        uint64_t evictKills = 0;
        /// parallel scheduler: barrier synchronizations performed
        /// (== cycles at stride 1; divided by the lookahead otherwise)
        uint64_t syncEpochs = 0;
    };
    EventCounts events(uint32_t i) const;

    /** Host nanoseconds accumulated across all run() calls. */
    uint64_t runWallNs() const { return runWallNs_; }

    // ---- observability (src/obs, SystemConfig::obs)
    /** The installed hub, or null when every obs sink is off. */
    obs::ObsHub *obsHub() { return obsHub_.get(); }
    /** Per-hart CPI stack, or null when obs.cpi is off. */
    const obs::CpiStack *
    cpi(uint32_t i) const
    {
        return obsHub_ ? obsHub_->cpi(i) : nullptr;
    }
    /**
     * Export the CPI stacks into the per-core stats groups (counters +
     * ipc formula, post-warmup instret) and write the configured trace
     * files. Idempotent; also runs at destruction via the hub.
     * @return false if a configured sink failed to write.
     */
    bool writeTraces();

  private:
    cmd::HardenedRunner &runner();
    void setupObs();
    /** One detailed (warmup + measure + drain) window of runSampled(). */
    bool sampledInterval(ShadowTracker &shadow, uint64_t &warmCycles,
                         uint64_t &warmInsts, uint64_t &measCycles,
                         uint64_t &measInsts, uint64_t &drainInsts);
    std::vector<uint8_t> checkpointPayload() const;
    void loadCheckpointPayload(const std::vector<uint8_t> &bytes);

    SystemConfig cfg_;
    cmd::Kernel k_;
    PhysMem mem_;
    uint64_t runWallNs_ = 0;
    StopReason stopReason_ = StopReason::None;
    std::unique_ptr<HostDevice> host_;
    std::unique_ptr<MemHierarchy> hier_;
    std::unique_ptr<cmd::HardenedRunner> runner_;
    std::function<std::vector<uint8_t>()> userSave_;
    std::function<void(const std::vector<uint8_t> &)> userLoad_;
    std::vector<std::unique_ptr<OooCore>> oooCores_;
    std::vector<std::unique_ptr<InOrderCore>> ioCores_;
    /// one GoldenModel per hart when execMode != Detailed
    std::vector<std::unique_ptr<isa::GoldenModel>> funcHarts_;
    /// kernel snapshot right after start(): the handoff baseline
    std::vector<uint8_t> pristineSnap_;
    SampleStats sampleStats_;
    /// per-hart instret at the warmup reset (post-warmup IPC baseline)
    std::vector<uint64_t> warmupInstret_;
    /// declared last: its destructor detaches from k_ and flushes traces
    std::unique_ptr<obs::ObsHub> obsHub_;
};

} // namespace riscy
