#include "proc/inorder_core.hh"

#include <algorithm>

#include "isa/exec.hh"

namespace riscy {

using namespace cmd;
using namespace isa;

InOrderCore::InOrderCore(Kernel &k, const std::string &name,
                         uint32_t hartId, const CoreConfig &cfg,
                         L1Cache &icache, L1Cache &dcache,
                         UncachedPort &walkPort, HostDevice &host)
    : k_(k), name_(name), hartId_(hartId), cfg_(cfg), icache_(icache),
      dcache_(dcache), host_(host),
      fetchSeq_(k, name + ".fetchSeq", 0),
      fetchResp_(k, name + ".fetchResp", 8),
      regs_(k, name + ".regs", 32, 0),
      busy_(k, name + ".busy", 32, 0),
      memOp_(k, name + ".memOp"),
      csr_(k, name + ".csr"),
      instret_(k, name + ".instret", 0),
      fetchStall_(k, name + ".fetchStall", false)
{
    meta_ = std::make_unique<Meta>(k, name + ".core");
    branches_ = &meta_->stats().counter("branches");
    mispredicts_ = &meta_->stats().counter("mispredicts");
    loads_ = &meta_->stats().counter("loads");
    stores_ = &meta_->stats().counter("stores");

    epoch_ = std::make_unique<EpochManager>(k, name + ".epoch");
    btb_ = std::make_unique<Btb>(k, name + ".btb", cfg.btbEntries);
    f2q_ = std::make_unique<CfFifo<FetchReq>>(k, name + ".f2q", 2);
    f3q_ = std::make_unique<CfFifo<FetchXlated>>(k, name + ".f3q", 4);
    instQ_ = std::make_unique<GroupFifo<Uop>>(k, name + ".instQ", 8);

    itlbChan_ = std::make_unique<TlbChannel>(k, name + ".itlbChan");
    dtlbChan_ = std::make_unique<TlbChannel>(k, name + ".dtlbChan");
    itlb_ = std::make_unique<L1Tlb>(k, name + ".itlb", cfg.itlb,
                                    *itlbChan_);
    dtlb_ = std::make_unique<L1Tlb>(k, name + ".dtlb", cfg.dtlb,
                                    *dtlbChan_);
    l2tlb_ = std::make_unique<L2Tlb>(
        k, name + ".l2tlb", cfg.l2tlb,
        std::vector<TlbChannel *>{dtlbChan_.get(), itlbChan_.get()},
        walkPort);

    k.rule(name + ".doFetch1", [this] { doFetch1(); })
        .when([this] {
            return !fetchStall_.read() &&
                   !epoch_->redirectedThisCycle() && f2q_->canEnq() &&
                   itlb_->canReq();
        })
        .uses({&btb_->predictM, &itlb_->reqM, &f2q_->enqM,
               &epoch_->setFetchPcM});
    k.rule(name + ".doFetch2", [this] { doFetch2(); })
        .when([this] { return itlb_->respReady() && f3q_->canEnq(); })
        .uses({&itlb_->respM, &f2q_->deqM, &f2q_->firstM, &icache_.reqLdM,
               &f3q_->enqM});
    k.rule(name + ".doIcacheResp", [this] { doIcacheResp(); })
        .when([this] { return icache_.respLdReady(); })
        .uses({&icache_.respLdM});
    k.rule(name + ".doFetch3", [this] { doFetch3(); })
        .when([this] { return f3q_->canDeq(); })
        .uses({&f3q_->firstM, &f3q_->deqM, &instQ_->enqM});
    k.rule(name + ".doExec", [this] { doExec(); })
        .when([this] { return instQ_->size() > 0; })
        .uses({&instQ_->deqM, &btb_->updateM, &epoch_->redirectM,
               &dtlb_->reqM, &itlb_->setSatpM, &dtlb_->setSatpM,
               &itlb_->flushM, &dtlb_->flushM, &l2tlb_->setSatpM});
    k.rule(name + ".doMemTlbResp", [this] { doMemTlbResp(); })
        .when([this] { return dtlb_->respReady(); })
        .uses({&dtlb_->respM, &dcache_.reqLdM, &dcache_.reqStM,
               &dcache_.reqAtomicM, &epoch_->redirectM});
    k.rule(name + ".doMemCacheResp", [this] { doMemCacheResp(); })
        .when([this] {
            return dcache_.respLdReady() || dcache_.respStReady() ||
                   dcache_.respAtomicReady();
        })
        .uses({&dcache_.respLdM, &dcache_.respStM, &dcache_.respAtomicM,
               &dcache_.writeDataM});
}

void
InOrderCore::reset(Addr pc, uint64_t satp, Addr sp)
{
    bool ok = k_.runAtomically([&] {
        CsrState cs;
        cs.satp = satp;
        csr_.write(cs);
        epoch_->setFetchPc(pc);
        itlb_->setSatp(satp);
        dtlb_->setSatp(satp);
        l2tlb_->setSatp(satp);
        regs_.write(2, sp);
        regs_.write(10, hartId_);
    });
    if (!ok)
        panic("%s: reset failed", name_.c_str());
}

void
InOrderCore::restoreArch(const isa::ArchState &as)
{
    bool ok = k_.runAtomically([&] {
        csr_.write(as.csr);
        epoch_->setFetchPc(as.pc);
        itlb_->setSatp(as.csr.satp);
        dtlb_->setSatp(as.csr.satp);
        l2tlb_->setSatp(as.csr.satp);
        for (unsigned i = 1; i < 32; i++)
            regs_.write(i, as.regs[i]);
        instret_.write(as.instret);
    });
    if (!ok)
        panic("%s: restoreArch failed", name_.c_str());
}

void
InOrderCore::beginDrain()
{
    bool ok = k_.runAtomically([&] { fetchStall_.write(true); });
    if (!ok)
        panic("%s: beginDrain failed", name_.c_str());
}

bool
InOrderCore::drained() const
{
    if (memOp_.read().valid || instQ_->size() || f2q_->size() ||
        f3q_->size())
        return false;
    for (uint32_t i = 0; i < fetchResp_.size(); i++)
        if (fetchResp_.read(i).valid)
            return false;
    for (uint32_t i = 0; i < 32; i++)
        if (busy_.read(i))
            return false;
    return itlb_->quiescent() && dtlb_->quiescent() &&
           l2tlb_->quiescent() && itlbChan_->req.size() == 0 &&
           itlbChan_->resp.size() == 0 && dtlbChan_->req.size() == 0 &&
           dtlbChan_->resp.size() == 0;
}

/* See OooCore::resumeArch: warm resume, TLBs preserved when satp is
 * unchanged. The drained in-order pipeline has already retired (or
 * stale-dropped) everything it fetched, so only the architectural
 * registers need re-seeding. */
void
InOrderCore::resumeArch(const isa::ArchState &as)
{
    bool ok = k_.runAtomically([&] {
        const bool satpChanged = csr_.read().satp != as.csr.satp;
        csr_.write(as.csr);
        if (satpChanged) {
            itlb_->flush();
            dtlb_->flush();
            itlb_->setSatp(as.csr.satp);
            dtlb_->setSatp(as.csr.satp);
            l2tlb_->setSatp(as.csr.satp);
        }
        for (unsigned i = 1; i < 32; i++)
            regs_.write(i, as.regs[i]);
        instret_.write(as.instret);
        epoch_->redirect(as.pc);
        fetchStall_.write(false);
    });
    if (!ok)
        panic("%s: resumeArch failed", name_.c_str());
}

/* See OooCore::warmTlbs: one runAtomically per record. */
void
InOrderCore::warmTlbs(const std::vector<isa::GoldenModel::XlateRec> &recs)
{
    bool ok = true;
    for (const auto &r : recs) {
        ok &= k_.runAtomically([&] {
            TlbEntry te;
            te.valid = true;
            te.vpn = isa::fullVpn(r.va);
            te.ppn = r.ppn;
            te.level = r.level;
            te.flags = r.flags;
            bool fetch =
                r.type == static_cast<uint8_t>(isa::AccessType::Fetch);
            (fetch ? itlb_ : dtlb_)->warmInsert(te, r.va);
            l2tlb_->warmInsert(te, r.va);
        });
    }
    if (!ok)
        panic("%s: warmTlbs failed", name_.c_str());
}

/* BTB-only prediction on this core: train taken transfers the way the
 * execute stage does. */
void
InOrderCore::warmPredictors(
    const std::vector<isa::GoldenModel::BranchRec> &recs)
{
    bool ok = true;
    for (const auto &r : recs) {
        if (!r.taken)
            continue;
        ok &= k_.runAtomically(
            [&] { btb_->update(r.pc, r.target, true); });
    }
    if (!ok)
        panic("%s: warmPredictors failed", name_.c_str());
}

void
InOrderCore::doFetch1()
{
    require(!fetchStall_.read() && !epoch_->redirectedThisCycle());
    uint64_t pc = epoch_->fetchPc();
    uint64_t t = btb_->predict(pc);
    uint64_t next = t ? t : pc + 4;
    FetchReq fr;
    fr.pc = pc;
    fr.nextAssumed = next;
    fr.epoch = epoch_->current();
    fr.seq = fetchSeq_.read();
    fetchSeq_.write((fetchSeq_.read() + 1) & 7);
    itlb_->req(0, pc, AccessType::Fetch);
    f2q_->enq(fr);
    epoch_->setFetchPc(next);
}

void
InOrderCore::doFetch2()
{
    L1Tlb::Resp r = itlb_->resp();
    FetchReq fr = f2q_->deq();
    FetchXlated x;
    x.req = fr;
    x.pa = r.pa;
    x.fault = r.fault;
    if (!r.fault)
        icache_.reqLd(fr.seq, r.pa);
    f3q_->enq(x);
}

void
InOrderCore::doIcacheResp()
{
    L1Cache::LdResp r = icache_.respLd();
    fetchResp_.write(r.id, {true, r.line});
}

void
InOrderCore::doFetch3()
{
    FetchXlated x = f3q_->first();
    const FetchReq &fr = x.req;
    if (!x.fault)
        require(fetchResp_.read(fr.seq).valid);

    Uop u;
    u.pc = fr.pc;
    u.epoch = epoch_->renameEpoch();
    u.predNext = fr.nextAssumed;
    if (x.fault) {
        u.preException = true;
        u.preCause = static_cast<uint8_t>(Cause::FetchPageFault);
    } else {
        Line line = fetchResp_.read(fr.seq).line;
        uint32_t raw =
            static_cast<uint32_t>(line.read(lineOffset(fr.pc), 4));
        u.inst = decode(raw);
        u.inst.raw = raw;
        fetchResp_.write(fr.seq, RespSlot{});
    }
    if (!epoch_->isStale(fr.epoch))
        instQ_->enqGroup(&u, 1);
    f3q_->deq();
}

void
InOrderCore::trap(uint64_t pc, Cause cause, uint64_t tval)
{
    CsrState cs = csr_.read();
    cs.mepc = pc;
    cs.mcause = static_cast<uint64_t>(cause);
    cs.mtval = tval;
    if (cs.mtvec == 0)
        panic("%s: trap cause %llu at %#llx with no handler",
              name_.c_str(), (unsigned long long)cs.mcause,
              (unsigned long long)pc);
    csr_.write(cs);
    epoch_->redirect(cs.mtvec & ~3ull);
    instret_.write(instret_.read() + 1);
}

void
InOrderCore::writeback(uint8_t rd, uint64_t val)
{
    if (rd != 0)
        regs_.write(rd, val);
}

void
InOrderCore::emit(uint64_t pc, uint32_t raw, const Inst &ins, bool hasRd,
                  uint64_t rdVal, bool volatileRd, bool trapped,
                  uint64_t cause)
{
    if (!trapped)
        instret_.write(instret_.read() + 1);
    if (!onCommit)
        return;
    CommitRecord r;
    r.pc = pc;
    r.raw = raw;
    r.hasRd = hasRd;
    r.rd = ins.rd;
    r.rdVal = rdVal;
    r.volatileRd = volatileRd;
    r.trapped = trapped;
    r.cause = cause;
    onCommit(r);
}

void
InOrderCore::doExec()
{
    const Uop &u = instQ_->peek(0);
    if (epoch_->isStaleRename(u.epoch)) {
        instQ_->deqN(1);
        return;
    }
    const Inst &ins = u.inst;

    if (u.preException) {
        trap(u.pc, static_cast<Cause>(u.preCause), u.pc);
        emit(u.pc, 0, ins, false, 0, false, true, u.preCause);
        instQ_->deqN(1);
        return;
    }
    if (ins.op == Op::ILLEGAL) {
        trap(u.pc, Cause::IllegalInst, ins.raw);
        emit(u.pc, ins.raw, ins, false, 0, false, true,
             static_cast<uint64_t>(Cause::IllegalInst));
        instQ_->deqN(1);
        return;
    }

    // Stall-on-use / WAW against the in-flight memory op.
    require(!(ins.readsRs1() && busy_.read(ins.rs1)));
    require(!(ins.readsRs2() && busy_.read(ins.rs2)));
    require(!(ins.writesRd() && busy_.read(ins.rd)));

    uint64_t a = regs_.read(ins.rs1);
    uint64_t b = regs_.read(ins.rs2);
    uint64_t actualNext = u.pc + 4;

    if (ins.isMem()) {
        require(!memOp_.read().valid); // one outstanding access
        MemOp m;
        m.valid = true;
        m.phase = 0;
        m.inst = ins;
        m.pc = u.pc;
        m.va = ins.isAtomic() ? a : a + static_cast<uint64_t>(ins.imm);
        m.data = b;
        if (m.va & (ins.memBytes() - 1)) {
            Cause c = ins.isLq() ? Cause::LoadMisaligned
                                 : Cause::StoreMisaligned;
            trap(u.pc, c, m.va);
            emit(u.pc, ins.raw, ins, false, 0, false, true,
                 static_cast<uint64_t>(c));
            instQ_->deqN(1);
            return;
        }
        AccessType t = (ins.isStore() || ins.isSc() || ins.isAmoRmw())
                           ? AccessType::Store
                           : AccessType::Load;
        dtlb_->req(0, m.va, t);
        memOp_.write(m);
        if (ins.writesRd())
            busy_.write(ins.rd, 1);
        (ins.isLq() ? *loads_ : *stores_).inc();
        // Redirect check for the fall-through path happened at fetch.
        if (u.predNext != u.pc + 4) {
            epoch_->redirect(u.pc + 4); // bogus BTB hit on a mem op
            btb_->update(u.pc, 0, false);
            mispredicts_->inc();
        }
        instQ_->deqN(1);
        return;
    }

    if (ins.isCsr()) {
        // Serialized: wait for the memory unit to drain.
        require(!memOp_.read().valid);
        CsrState cs = csr_.read();
        uint64_t operand = (ins.op >= Op::CSRRWI) ? ins.rs1 : a;
        uint64_t old = 0;
        bool readOk = cs.read(ins.csr, k_.cycleCount(), instret_.read(),
                              hartId_, old);
        bool doWrite = (ins.op == Op::CSRRW || ins.op == Op::CSRRWI) ||
                       ((ins.op == Op::CSRRS || ins.op == Op::CSRRSI ||
                         ins.op == Op::CSRRC || ins.op == Op::CSRRCI) &&
                        ins.rs1 != 0);
        uint64_t nv = old;
        if (ins.op == Op::CSRRW || ins.op == Op::CSRRWI)
            nv = operand;
        else if (ins.op == Op::CSRRS || ins.op == Op::CSRRSI)
            nv = old | operand;
        else
            nv = old & ~operand;
        bool writeOk = doWrite ? cs.write(ins.csr, nv) : true;
        if (!readOk || !writeOk) {
            trap(u.pc, Cause::IllegalInst, ins.raw);
            emit(u.pc, ins.raw, ins, false, 0, false, true,
                 static_cast<uint64_t>(Cause::IllegalInst));
            instQ_->deqN(1);
            return;
        }
        csr_.write(cs);
        if (doWrite && ins.csr == kCsrSatp) {
            itlb_->flush();
            dtlb_->flush();
            itlb_->setSatp(nv);
            dtlb_->setSatp(nv);
            l2tlb_->setSatp(nv);
            epoch_->redirect(u.pc + 4);
        }
        writeback(ins.rd, old);
        emit(u.pc, ins.raw, ins, ins.writesRd(), old,
             CsrState::isVolatile(ins.csr), false, 0);
        instQ_->deqN(1);
        return;
    }
    if (ins.op == Op::ECALL) {
        trap(u.pc, Cause::EcallM, 0);
        emit(u.pc, ins.raw, ins, false, 0, false, true,
             static_cast<uint64_t>(Cause::EcallM));
        instQ_->deqN(1);
        return;
    }
    if (ins.op == Op::EBREAK) {
        trap(u.pc, Cause::Breakpoint, 0);
        emit(u.pc, ins.raw, ins, false, 0, false, true,
             static_cast<uint64_t>(Cause::Breakpoint));
        instQ_->deqN(1);
        return;
    }
    if (ins.op == Op::MRET) {
        epoch_->redirect(csr_.read().mepc);
        emit(u.pc, ins.raw, ins, false, 0, false, false, 0);
        instret_.write(instret_.read() + 1);
        instQ_->deqN(1);
        return;
    }
    if (ins.isFence() || ins.op == Op::WFI) {
        require(!memOp_.read().valid);
        emit(u.pc, ins.raw, ins, false, 0, false, false, 0);
        instQ_->deqN(1);
        return;
    }

    // ALU / control flow.
    uint64_t res = 0;
    bool taken = false;
    if (ins.isBranch()) {
        taken = branchTaken(ins, a, b);
        actualNext = taken ? u.pc + static_cast<uint64_t>(ins.imm)
                           : u.pc + 4;
        branches_->inc();
    } else if (ins.isJal() || ins.isJalr()) {
        actualNext = controlTarget(ins, u.pc, a);
        res = u.pc + 4;
        taken = true;
    } else {
        res = aluCompute(ins, a, b, u.pc);
    }
    if (ins.isControlFlow()) {
        btb_->update(u.pc, actualNext, taken);
        if (actualNext != u.predNext) {
            epoch_->redirect(actualNext);
            mispredicts_->inc();
        }
    } else if (u.predNext != u.pc + 4) {
        epoch_->redirect(u.pc + 4); // bogus BTB hit
        btb_->update(u.pc, 0, false);
        mispredicts_->inc();
    }
    if (ins.writesRd())
        writeback(ins.rd, res);
    emit(u.pc, ins.raw, ins, ins.writesRd(), res, false, false, 0);
    instQ_->deqN(1);
}

void
InOrderCore::doMemTlbResp()
{
    L1Tlb::Resp r = dtlb_->resp();
    MemOp m = memOp_.read();
    if (!m.valid)
        panic("%s: TLB response with no memory op", name_.c_str());
    const Inst &ins = m.inst;
    if (r.fault) {
        Cause c = ins.isLq() ? Cause::LoadPageFault
                             : Cause::StorePageFault;
        trap(m.pc, c, m.va);
        emit(m.pc, ins.raw, ins, false, 0, false, true,
             static_cast<uint64_t>(c));
        if (ins.writesRd())
            busy_.write(ins.rd, 0);
        memOp_.write(MemOp{});
        return;
    }
    m.pa = r.pa;
    if (isMmioAddr(r.pa)) {
        // MMIO performed directly (in order, at the access point).
        if (ins.isLoad()) {
            uint64_t v = loadExtend(ins.op, host_.load(hartId_, r.pa, k_.cycleCount()));
            writeback(ins.rd, v);
            busy_.write(ins.rd, 0);
            emit(m.pc, ins.raw, ins, ins.writesRd(), v, true, false, 0);
        } else if (ins.isStore()) {
            host_.store(hartId_, r.pa, m.data, k_.cycleCount());
            emit(m.pc, ins.raw, ins, false, 0, false, false, 0);
        } else {
            panic("%s: atomic to MMIO space", name_.c_str());
        }
        memOp_.write(MemOp{});
        return;
    }
    if (ins.isAtomic()) {
        dcache_.reqAtomic(0, r.pa, ins.op, m.data, ins.memBytes());
        m.phase = 3;
    } else if (ins.isLoad()) {
        dcache_.reqLd(0, r.pa);
        m.phase = 1;
    } else {
        dcache_.reqSt(0, r.pa);
        m.phase = 2;
    }
    memOp_.write(m);
}

void
InOrderCore::doMemCacheResp()
{
    MemOp m = memOp_.read();
    require(m.valid);
    const Inst &ins = m.inst;
    if (m.phase == 1) {
        require(dcache_.respLdReady());
        L1Cache::LdResp r = dcache_.respLd();
        uint64_t v =
            loadExtend(ins.op, r.line.read(lineOffset(m.pa), ins.memBytes()));
        writeback(ins.rd, v);
        busy_.write(ins.rd, 0);
        emit(m.pc, ins.raw, ins, ins.writesRd(), v, false, false, 0);
    } else if (m.phase == 2) {
        require(dcache_.respStReady());
        dcache_.respSt();
        dcache_.writeData(m.pa, m.data, ins.memBytes());
        emit(m.pc, ins.raw, ins, false, 0, false, false, 0);
    } else {
        require(m.phase == 3 && dcache_.respAtomicReady());
        L1Cache::AtomicResp r = dcache_.respAtomic();
        if (ins.writesRd()) {
            writeback(ins.rd, r.value);
            busy_.write(ins.rd, 0);
        }
        emit(m.pc, ins.raw, ins, ins.writesRd(), r.value, false, false, 0);
    }
    memOp_.write(MemOp{});
}

} // namespace riscy
