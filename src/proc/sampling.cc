#include "proc/sampling.hh"

namespace riscy {

const char *
toString(ExecMode m)
{
    switch (m) {
      case ExecMode::Detailed:
        return "detailed";
      case ExecMode::FastForward:
        return "fast-forward";
      case ExecMode::Sampled:
        return "sampled";
    }
    return "?";
}

} // namespace riscy
