#include "mem/memory.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/log.hh"

namespace riscy {

const uint8_t *
PhysMem::pageFor(Addr a) const
{
    Addr pageAddr = a >> kPageShift;
    auto it = pages_.find(pageAddr);
    if (it == pages_.end()) {
        it = pages_.emplace(pageAddr, std::vector<uint8_t>(kPageSize, 0))
                 .first;
    }
    return it->second.data();
}

uint8_t *
PhysMem::pageForWrite(Addr a)
{
    return const_cast<uint8_t *>(pageFor(a));
}

uint8_t
PhysMem::read8(Addr a) const
{
    return pageFor(a)[a & (kPageSize - 1)];
}

void
PhysMem::write8(Addr a, uint8_t v)
{
    pageForWrite(a)[a & (kPageSize - 1)] = v;
}

uint64_t
PhysMem::read(Addr a, unsigned bytes) const
{
    if (a & (bytes - 1))
        cmd::panic("PhysMem: misaligned read of %u bytes at %#llx", bytes,
                   (unsigned long long)a);
    uint64_t v = 0;
    std::memcpy(&v, pageFor(a) + (a & (kPageSize - 1)), bytes);
    return v;
}

void
PhysMem::write(Addr a, uint64_t v, unsigned bytes)
{
    if (a & (bytes - 1))
        cmd::panic("PhysMem: misaligned write of %u bytes at %#llx", bytes,
                   (unsigned long long)a);
    std::memcpy(pageForWrite(a) + (a & (kPageSize - 1)), &v, bytes);
}

void
PhysMem::writeBlock(Addr a, const void *src, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(src);
    while (len) {
        size_t off = a & (kPageSize - 1);
        size_t chunk = std::min<size_t>(len, kPageSize - off);
        std::memcpy(pageForWrite(a) + off, p, chunk);
        a += chunk;
        p += chunk;
        len -= chunk;
    }
}

void
PhysMem::readBlock(Addr a, void *dst, size_t len) const
{
    uint8_t *p = static_cast<uint8_t *>(dst);
    while (len) {
        size_t off = a & (kPageSize - 1);
        size_t chunk = std::min<size_t>(len, kPageSize - off);
        std::memcpy(p, pageFor(a) + off, chunk);
        a += chunk;
        p += chunk;
        len -= chunk;
    }
}

namespace {

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out.push_back(uint8_t(v >> (8 * i)));
}

uint64_t
get64(const uint8_t *&p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= uint64_t(p[i]) << (8 * i);
    p += 8;
    return v;
}

} // namespace

std::vector<uint8_t>
PhysMem::serialize() const
{
    std::vector<Addr> order;
    order.reserve(pages_.size());
    for (const auto &kv : pages_)
        order.push_back(kv.first);
    std::sort(order.begin(), order.end());

    std::vector<uint8_t> out;
    out.reserve(16 + order.size() * (8 + kPageSize));
    put64(out, order.size());
    for (Addr page : order) {
        put64(out, page);
        const std::vector<uint8_t> &bytes = pages_.at(page);
        out.insert(out.end(), bytes.begin(), bytes.end());
    }
    return out;
}

void
PhysMem::deserialize(const std::vector<uint8_t> &image)
{
    pages_.clear();
    const uint8_t *p = image.data();
    const uint8_t *end = p + image.size();
    if (end - p < 8)
        cmd::panic("PhysMem: truncated image");
    uint64_t n = get64(p);
    for (uint64_t i = 0; i < n; i++) {
        if (uint64_t(end - p) < 8 + kPageSize)
            cmd::panic("PhysMem: truncated image page %llu",
                       (unsigned long long)i);
        Addr page = get64(p);
        pages_.emplace(page, std::vector<uint8_t>(p, p + kPageSize));
        p += kPageSize;
    }
}

HostDevice::HostDevice(uint32_t harts)
    : exited_(harts), exitCode_(harts, 0), roiBegin_(harts, 0),
      roiEnd_(harts, 0)
{
}

void
HostDevice::store(uint32_t hart, Addr addr, uint64_t value, uint64_t now)
{
    switch (static_cast<HostReg>(addr - kMmioBase)) {
      case HostReg::Exit:
        // Code first: a reader that sees the flag must see the code.
        exitCode_[hart] = value >> 1;
        exited_[hart].store(true, std::memory_order_release);
        break;
      case HostReg::Putchar: {
        std::lock_guard<std::mutex> g(consoleMutex_);
        console_.push_back(static_cast<char>(value));
        break;
      }
      case HostReg::RoiBegin:
        roiBegin_[hart] = now;
        break;
      case HostReg::RoiEnd:
        roiEnd_[hart] = now;
        break;
      case HostReg::PutHex: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%#llx\n",
                      (unsigned long long)value);
        std::lock_guard<std::mutex> g(consoleMutex_);
        console_ += buf;
        break;
      }
      case HostReg::Fail:
        failCode_.store(value);
        failed_.store(true, std::memory_order_release);
        break;
      case HostReg::KvDone:
        if (kv_)
            kv_->done(hart, value, now);
        break;
      default:
        cmd::warn("HostDevice: store to unknown MMIO %#llx",
                  (unsigned long long)addr);
        break;
    }
}

void
HostDevice::reset()
{
    for (auto &e : exited_)
        e.store(false);
    std::fill(exitCode_.begin(), exitCode_.end(), 0);
    std::fill(roiBegin_.begin(), roiBegin_.end(), 0);
    std::fill(roiEnd_.begin(), roiEnd_.end(), 0);
    failed_.store(false);
    failCode_.store(0);
    std::lock_guard<std::mutex> g(consoleMutex_);
    console_.clear();
}

std::vector<uint8_t>
HostDevice::serialize() const
{
    std::vector<uint8_t> out;
    put64(out, exited_.size());
    for (const auto &e : exited_)
        out.push_back(e.load() ? 1 : 0);
    for (uint64_t v : exitCode_)
        put64(out, v);
    for (uint64_t v : roiBegin_)
        put64(out, v);
    for (uint64_t v : roiEnd_)
        put64(out, v);
    out.push_back(failed_.load() ? 1 : 0);
    put64(out, failCode_.load());
    put64(out, console_.size());
    out.insert(out.end(), console_.begin(), console_.end());
    return out;
}

void
HostDevice::deserialize(const std::vector<uint8_t> &image)
{
    const uint8_t *p = image.data();
    const uint8_t *end = p + image.size();
    auto need = [&](size_t n) {
        if (uint64_t(end - p) < n)
            cmd::panic("HostDevice: truncated image");
    };
    need(8);
    uint64_t harts = get64(p);
    if (harts != exited_.size())
        cmd::panic("HostDevice: image for %llu harts, have %zu",
                   (unsigned long long)harts, exited_.size());
    need(harts);
    for (auto &e : exited_)
        e.store(*p++ != 0);
    need(harts * 8 * 3);
    for (auto &v : exitCode_)
        v = get64(p);
    for (auto &v : roiBegin_)
        v = get64(p);
    for (auto &v : roiEnd_)
        v = get64(p);
    need(1 + 8 + 8);
    failed_.store(*p++ != 0);
    failCode_.store(get64(p));
    uint64_t conLen = get64(p);
    need(conLen);
    std::lock_guard<std::mutex> g(consoleMutex_);
    console_.assign(reinterpret_cast<const char *>(p), conLen);
}

uint64_t
HostDevice::load(uint32_t hart, Addr addr, uint64_t now)
{
    switch (static_cast<HostReg>(addr - kMmioBase)) {
      case HostReg::Exit:
        return exited_[hart] ? (exitCode_[hart] << 1) | 1 : 0;
      case HostReg::KvPop:
        // No generator attached: read a stop descriptor so a worker
        // loop exits instead of spinning forever.
        return kv_ ? kv_->pop(hart, now) : 0x5;
      default:
        return 0;
    }
}

bool
HostDevice::allExited() const
{
    for (bool e : exited_) {
        if (!e)
            return false;
    }
    return true;
}

} // namespace riscy
