#include "mem/memory.hh"

#include <cstdio>
#include <cstring>

#include "core/log.hh"

namespace riscy {

const uint8_t *
PhysMem::pageFor(Addr a) const
{
    Addr pageAddr = a >> kPageShift;
    auto it = pages_.find(pageAddr);
    if (it == pages_.end()) {
        it = pages_.emplace(pageAddr, std::vector<uint8_t>(kPageSize, 0))
                 .first;
    }
    return it->second.data();
}

uint8_t *
PhysMem::pageForWrite(Addr a)
{
    return const_cast<uint8_t *>(pageFor(a));
}

uint8_t
PhysMem::read8(Addr a) const
{
    return pageFor(a)[a & (kPageSize - 1)];
}

void
PhysMem::write8(Addr a, uint8_t v)
{
    pageForWrite(a)[a & (kPageSize - 1)] = v;
}

uint64_t
PhysMem::read(Addr a, unsigned bytes) const
{
    if (a & (bytes - 1))
        cmd::panic("PhysMem: misaligned read of %u bytes at %#llx", bytes,
                   (unsigned long long)a);
    uint64_t v = 0;
    std::memcpy(&v, pageFor(a) + (a & (kPageSize - 1)), bytes);
    return v;
}

void
PhysMem::write(Addr a, uint64_t v, unsigned bytes)
{
    if (a & (bytes - 1))
        cmd::panic("PhysMem: misaligned write of %u bytes at %#llx", bytes,
                   (unsigned long long)a);
    std::memcpy(pageForWrite(a) + (a & (kPageSize - 1)), &v, bytes);
}

void
PhysMem::writeBlock(Addr a, const void *src, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(src);
    while (len) {
        size_t off = a & (kPageSize - 1);
        size_t chunk = std::min<size_t>(len, kPageSize - off);
        std::memcpy(pageForWrite(a) + off, p, chunk);
        a += chunk;
        p += chunk;
        len -= chunk;
    }
}

void
PhysMem::readBlock(Addr a, void *dst, size_t len) const
{
    uint8_t *p = static_cast<uint8_t *>(dst);
    while (len) {
        size_t off = a & (kPageSize - 1);
        size_t chunk = std::min<size_t>(len, kPageSize - off);
        std::memcpy(p, pageFor(a) + off, chunk);
        a += chunk;
        p += chunk;
        len -= chunk;
    }
}

HostDevice::HostDevice(uint32_t harts)
    : exited_(harts), exitCode_(harts, 0), roiBegin_(harts, 0),
      roiEnd_(harts, 0)
{
}

void
HostDevice::store(uint32_t hart, Addr addr, uint64_t value, uint64_t now)
{
    switch (static_cast<HostReg>(addr - kMmioBase)) {
      case HostReg::Exit:
        // Code first: a reader that sees the flag must see the code.
        exitCode_[hart] = value >> 1;
        exited_[hart].store(true, std::memory_order_release);
        break;
      case HostReg::Putchar: {
        std::lock_guard<std::mutex> g(consoleMutex_);
        console_.push_back(static_cast<char>(value));
        break;
      }
      case HostReg::RoiBegin:
        roiBegin_[hart] = now;
        break;
      case HostReg::RoiEnd:
        roiEnd_[hart] = now;
        break;
      case HostReg::PutHex: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%#llx\n",
                      (unsigned long long)value);
        std::lock_guard<std::mutex> g(consoleMutex_);
        console_ += buf;
        break;
      }
      case HostReg::Fail:
        failCode_.store(value);
        failed_.store(true, std::memory_order_release);
        break;
      default:
        cmd::warn("HostDevice: store to unknown MMIO %#llx",
                  (unsigned long long)addr);
        break;
    }
}

void
HostDevice::reset()
{
    for (auto &e : exited_)
        e.store(false);
    std::fill(exitCode_.begin(), exitCode_.end(), 0);
    std::fill(roiBegin_.begin(), roiBegin_.end(), 0);
    std::fill(roiEnd_.begin(), roiEnd_.end(), 0);
    failed_.store(false);
    failCode_.store(0);
    std::lock_guard<std::mutex> g(consoleMutex_);
    console_.clear();
}

uint64_t
HostDevice::load(uint32_t hart, Addr addr) const
{
    switch (static_cast<HostReg>(addr - kMmioBase)) {
      case HostReg::Exit:
        return exited_[hart] ? (exitCode_[hart] << 1) | 1 : 0;
      default:
        return 0;
    }
}

bool
HostDevice::allExited() const
{
    for (bool e : exited_) {
        if (!e)
            return false;
    }
    return true;
}

} // namespace riscy
