#include "mem/dram.hh"

namespace riscy {

using namespace cmd;

Dram::Dram(Kernel &k, const std::string &name, PhysMem &mem,
           const Config &cfg)
    : Module(k, name, Conflict::CF),
      reqM(method("req")), respM(method("resp")),
      cfg_(cfg), mem_(mem),
      reqQ_(k, name + ".reqQ", 8),
      respQ_(k, name + ".respQ", cfg.maxInflight, cfg.latency),
      lastIssue_(k, name + ".lastIssue", 0),
      reads_(stats().counter("reads")), writes_(stats().counter("writes"))
{
    reqM.subcalls({&reqQ_.enqM});
    respM.subcalls({&respQ_.deqM});

    Rule &ri = k.rule(name + ".issue", [this] { ruleIssue(); });
    ri.when([this] {
        return reqQ_.canDeq() &&
               kernel().cycleCount() >=
                   lastIssue_.read() + cfg_.issueInterval;
    });
    ri.uses({&reqQ_.firstM, &reqQ_.deqM, &respQ_.enqM});
}

void
Dram::req(bool isWrite, Addr line, const Line &data)
{
    reqM();
    reqQ_.enq({isWrite, line, data});
}

Dram::Resp
Dram::resp()
{
    respM();
    return respQ_.deq();
}

void
Dram::ruleIssue()
{
    require(kernel().cycleCount() >=
            lastIssue_.read() + cfg_.issueInterval);
    ReqMsg m = reqQ_.first();
    if (m.isWrite) {
        writeLine(mem_, m.line, m.data);
        writes_.inc();
    } else {
        respQ_.enq({m.line, readLine(mem_, m.line)});
        reads_.inc();
    }
    reqQ_.deq();
    lastIssue_.write(kernel().cycleCount());
}

} // namespace riscy
