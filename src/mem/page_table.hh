/**
 * @file
 * Sv39 page-table builder: constructs in-memory page tables for the
 * workloads' address spaces (the role the OS kernel plays on the
 * paper's Linux setup). Also provides a trivial physical-frame bump
 * allocator for laying out workload images.
 */
#pragma once

#include "isa/sv39.hh"
#include "mem/memory.hh"

namespace riscy {

/** Bump allocator over physical DRAM frames. */
class FrameAllocator
{
  public:
    explicit FrameAllocator(Addr start) : next_(start) {}

    /** Allocate @p bytes rounded up to whole pages. */
    Addr
    alloc(size_t bytes)
    {
        Addr a = next_;
        size_t pages =
            (bytes + PhysMem::kPageSize - 1) / PhysMem::kPageSize;
        next_ += pages * PhysMem::kPageSize;
        return a;
    }

    Addr next() const { return next_; }

  private:
    Addr next_;
};

/**
 * An Sv39 address space under construction. Page-table pages are
 * drawn from the supplied frame allocator; the resulting satp value
 * activates the space on a hart.
 */
class AddressSpace
{
  public:
    AddressSpace(PhysMem &mem, FrameAllocator &frames);

    /** Map one 4 KiB page va -> pa with PTE @p flags (V implied). */
    void map(Addr va, Addr pa, uint64_t flags);

    /** Map a contiguous range (page-aligned). */
    void mapRange(Addr va, Addr pa, size_t len, uint64_t flags);

    /** Map pa -> pa for a range (used for bare-metal-style layouts). */
    void
    identityMapRange(Addr pa, size_t len, uint64_t flags)
    {
        mapRange(pa, pa, len, flags);
    }

    /** Remove the leaf mapping of @p va (for page-fault tests). */
    void unmap(Addr va);

    /** satp value (Sv39 mode + root PPN). */
    uint64_t satp() const;

    Addr root() const { return root_; }

  private:
    Addr allocTable();
    /** Physical address of the leaf PTE slot for va, building levels. */
    Addr walkToLeafSlot(Addr va);

    PhysMem &mem_;
    FrameAllocator &frames_;
    Addr root_;
};

} // namespace riscy
