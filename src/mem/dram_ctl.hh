/**
 * @file
 * Contended DRAM model: a multi-bank controller with per-bank queues,
 * open-row tracking (row-hit / row-miss / row-conflict latencies),
 * FR-FCFS-style scheduling, and bounded per-bank inflight reads —
 * replacing the fixed-latency Dram behind the same MemPort interface.
 *
 * Topology: each client (an L2 bank) owns a DramPortClient, a thin
 * MemPort adapter over a DramChannel (one TimedFifo pair). The
 * controller proper is a single module living in its own PDES domain;
 * the channels are the partition cuts, so their delay adds to the
 * fifo-min lookahead rather than constraining it.
 *
 * Scheduling (one issue per issueInterval cycles, modeling the shared
 * data bus): among accepted-but-unissued requests whose bank has a free
 * inflight slot, prefer the oldest row-hit, else the oldest overall —
 * but never bypass an older unissued request to the same line, which
 * preserves the per-line write-then-read ordering the L2's victim
 * writeback + refill traffic relies on. Writes update PhysMem and
 * retire at issue (no response); reads capture their data at issue and
 * respond after the row-state-dependent latency.
 */
#pragma once

#include <memory>
#include <vector>

#include "mem/dram.hh"

namespace riscy {

/** Request/response channel pair between one client and the ctl. */
struct DramChannel {
    struct Req {
        bool isWrite = false;
        Addr line = 0;
        Line data;
    };

    DramChannel(cmd::Kernel &k, const std::string &name, uint32_t delay)
        : req(k, name + ".req", 8, delay), resp(k, name + ".resp", 8, delay)
    {
    }

    cmd::TimedFifo<Req> req;
    cmd::TimedFifo<MemResp> resp;
};

/**
 * Client-side MemPort over a DramChannel. Construct it inside the
 * client's DomainHint group so the channel endpoints become the
 * domain boundary.
 */
class DramPortClient : public cmd::Module, public MemPort
{
  public:
    DramPortClient(cmd::Kernel &k, const std::string &name,
                   DramChannel &chan)
        : Module(k, name, cmd::Conflict::CF),
          reqM(method("req")), respM(method("resp")), chan_(chan)
    {
        reqM.subcalls({&chan_.req.enqM});
        respM.subcalls({&chan_.resp.deqM});
    }

    void
    req(bool isWrite, Addr line, const Line &data) override
    {
        reqM();
        chan_.req.enq({isWrite, line, data});
    }
    MemResp
    resp() override
    {
        respM();
        return chan_.resp.deq();
    }
    bool canReq() const override { return chan_.req.canEnq(); }
    bool respReady() const override { return chan_.resp.canDeq(); }
    /** Channel empty both ways (between cycles); the controller's own
     *  pool is covered by DramCtl::quiescent(). */
    bool
    quiescent() const override
    {
        return chan_.req.size() == 0 && chan_.resp.size() == 0;
    }
    cmd::Method &reqMethod() override { return reqM; }
    cmd::Method &respMethod() override { return respM; }

    cmd::Method &reqM, &respM;

  private:
    DramChannel &chan_;
};

class DramCtl : public cmd::Module
{
  public:
    struct Config {
        uint32_t banks = 8;           ///< DRAM banks (power of two)
        uint32_t linesPerRow = 128;   ///< row buffer: 8 KB of 64 B lines
        uint32_t rowHitLat = 40;      ///< CAS only
        uint32_t rowMissLat = 90;     ///< activate + CAS (bank idle)
        uint32_t rowConflictLat = 140;///< precharge + activate + CAS
        uint32_t issueInterval = 10;  ///< shared-bus pacing per line
        uint32_t perBankInflight = 4; ///< issued, unanswered reads/bank
        uint32_t queuedPerBank = 8;   ///< accepted, unissued reqs/bank
        uint32_t poolSlots = 32;      ///< total request-table entries
        uint32_t chanDelay = 4;       ///< client<->ctl channel latency
    };

    DramCtl(cmd::Kernel &k, const std::string &name, PhysMem &mem,
            const Config &cfg, uint32_t nPorts);

    DramChannel &channel(uint32_t p) { return *chans_[p]; }
    uint32_t ports() const { return static_cast<uint32_t>(chans_.size()); }
    const Config &config() const { return cfg_; }

    uint32_t
    bankOf(Addr line) const
    {
        return static_cast<uint32_t>((line >> kLineShift) &
                                     (cfg_.banks - 1));
    }
    Addr
    rowOf(Addr line) const
    {
        return (line >> kLineShift) >> (bankShift_ + rowShift_);
    }

    /** Warm handoff: no queued or inflight request anywhere (between
     *  cycles; channel occupancy is checked too). */
    bool quiescent() const;

  private:
    struct Entry {
        bool valid = false;
        bool issued = false;
        bool isWrite = false;
        uint8_t port = 0;
        uint8_t bank = 0;
        Addr line = 0;
        uint64_t seq = 0;
        uint64_t doneCycle = 0;
        Line data;
    };

    void ruleAccept();
    void ruleIssue();
    void ruleComplete();

    /** Entries in the pool for @p bank (valid; optionally only
     *  issued-and-waiting reads). */
    uint32_t countBank(uint32_t bank, bool issuedOnly) const;
    /** True when an older unissued request targets the same line. */
    bool olderSameLine(const Entry &e) const;

    Config cfg_;
    PhysMem &mem_;
    uint32_t bankShift_, rowShift_;
    std::vector<std::unique_ptr<DramChannel>> chans_;

    cmd::RegArray<Entry> pool_;
    cmd::RegArray<Addr> openRow_;
    cmd::RegArray<uint8_t> rowValid_;
    cmd::Reg<uint64_t> nextSeq_;
    cmd::Reg<uint64_t> lastIssue_;
    cmd::Reg<uint32_t> rrPort_;

    cmd::Stat &reads_, &writes_, &rowHits_, &rowMisses_, &rowConflicts_;
    std::vector<cmd::Stat *> bankReqs_;
    std::vector<cmd::Histogram *> bankOcc_;
};

} // namespace riscy
