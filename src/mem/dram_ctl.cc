#include "mem/dram_ctl.hh"

namespace riscy {

using namespace cmd;

static uint32_t
log2u(uint32_t v)
{
    uint32_t s = 0;
    while ((1u << s) < v)
        s++;
    return s;
}

DramCtl::DramCtl(Kernel &k, const std::string &name, PhysMem &mem,
                 const Config &cfg, uint32_t nPorts)
    : Module(k, name, Conflict::CF), cfg_(cfg), mem_(mem),
      bankShift_(log2u(cfg.banks)), rowShift_(log2u(cfg.linesPerRow)),
      pool_(k, name + ".pool", cfg.poolSlots),
      openRow_(k, name + ".openRow", cfg.banks, 0),
      rowValid_(k, name + ".rowValid", cfg.banks, 0),
      nextSeq_(k, name + ".nextSeq", 0),
      lastIssue_(k, name + ".lastIssue", 0),
      rrPort_(k, name + ".rrPort", 0),
      reads_(stats().counter("reads")), writes_(stats().counter("writes")),
      rowHits_(stats().counter("rowHits")),
      rowMisses_(stats().counter("rowMisses")),
      rowConflicts_(stats().counter("rowConflicts"))
{
    if ((cfg.banks & (cfg.banks - 1)) != 0)
        cmd::fatal("%s: bank count %u not a power of two", name.c_str(),
                   cfg.banks);
    if ((cfg.linesPerRow & (cfg.linesPerRow - 1)) != 0)
        cmd::fatal("%s: linesPerRow %u not a power of two", name.c_str(),
                   cfg.linesPerRow);
    stats().formula("rowHitRate", [this] {
        uint64_t n = rowHits_.value() + rowMisses_.value() +
                     rowConflicts_.value();
        return n ? double(rowHits_.value()) / double(n) : 0.0;
    });
    uint32_t occHi = cfg.queuedPerBank + cfg.perBankInflight + 1;
    for (uint32_t b = 0; b < cfg.banks; b++) {
        bankReqs_.push_back(
            &stats().counter(strfmt("bank%u.reqs", b)));
        bankOcc_.push_back(&stats().histogram(
            strfmt("bank%u.occupancy", b), 0, occHi, occHi));
    }

    for (uint32_t p = 0; p < nPorts; p++) {
        chans_.push_back(std::make_unique<DramChannel>(
            k, name + strfmt(".chan%u", p), cfg.chanDelay));
    }

    std::vector<const Method *> acceptUses, completeUses;
    for (auto &c : chans_) {
        acceptUses.push_back(&c->req.firstM);
        acceptUses.push_back(&c->req.deqM);
        completeUses.push_back(&c->resp.enqM);
    }

    k.rule(name + ".accept", [this] { ruleAccept(); })
        .when([this] {
            for (auto &c : chans_) {
                if (c->req.canDeq())
                    return true;
            }
            return false;
        })
        .uses(acceptUses);
    k.rule(name + ".issue", [this] { ruleIssue(); })
        .when([this] {
            if (kernel().cycleCount() <
                lastIssue_.read() + cfg_.issueInterval)
                return false;
            for (uint32_t i = 0; i < pool_.size(); i++) {
                const Entry &e = pool_.read(i);
                if (e.valid && !e.issued)
                    return true;
            }
            return false;
        })
        .uses({});
    k.rule(name + ".complete", [this] { ruleComplete(); })
        .when([this] {
            uint64_t now = kernel().cycleCount();
            for (uint32_t i = 0; i < pool_.size(); i++) {
                const Entry &e = pool_.read(i);
                if (e.valid && e.issued && e.doneCycle <= now)
                    return true;
            }
            return false;
        })
        .uses(completeUses);
}

uint32_t
DramCtl::countBank(uint32_t bank, bool issuedOnly) const
{
    uint32_t n = 0;
    for (uint32_t i = 0; i < pool_.size(); i++) {
        const Entry &e = pool_.read(i);
        if (e.valid && e.bank == bank && (!issuedOnly || e.issued))
            n++;
    }
    return n;
}

bool
DramCtl::olderSameLine(const Entry &e) const
{
    for (uint32_t i = 0; i < pool_.size(); i++) {
        const Entry &o = pool_.read(i);
        if (o.valid && !o.issued && o.line == e.line && o.seq < e.seq)
            return true;
    }
    return false;
}

void
DramCtl::ruleAccept()
{
    // Round-robin over ports; skip a port whose head targets a bank
    // with no queue room (head-of-line blocking backpressures that
    // client alone; the queue drains as the bank issues).
    uint32_t start = rrPort_.read();
    for (uint32_t i = 0; i < chans_.size(); i++) {
        uint32_t p = (start + i) % chans_.size();
        DramChannel *c = chans_[p].get();
        if (!c->req.canDeq())
            continue;
        DramChannel::Req r = c->req.first();
        uint32_t bank = bankOf(r.line);
        uint32_t queued = countBank(bank, false) -
                          countBank(bank, true);
        if (queued >= cfg_.queuedPerBank)
            continue;
        int slot = -1;
        for (uint32_t s = 0; s < pool_.size(); s++) {
            if (!pool_.read(s).valid) {
                slot = static_cast<int>(s);
                break;
            }
        }
        if (slot < 0)
            return; // pool full: heads wait, cheap no-op commit
        uint32_t occAfter = countBank(bank, false) + 1;
        c->req.deq();
        Entry e;
        e.valid = true;
        e.issued = false;
        e.isWrite = r.isWrite;
        e.port = static_cast<uint8_t>(p);
        e.bank = static_cast<uint8_t>(bank);
        e.line = r.line;
        e.seq = nextSeq_.read();
        e.data = r.data;
        pool_.write(static_cast<uint32_t>(slot), e);
        nextSeq_.write(e.seq + 1);
        rrPort_.write((p + 1) % chans_.size());
        bankReqs_[bank]->inc();
        bankOcc_[bank]->sample(occAfter);
        return;
    }
}

void
DramCtl::ruleIssue()
{
    require(kernel().cycleCount() >=
            lastIssue_.read() + cfg_.issueInterval);
    // FR-FCFS: oldest row-hit first, else oldest; per-line order is
    // never violated and a bank at its inflight cap admits no reads.
    int best = -1;
    bool bestHit = false;
    uint64_t bestSeq = 0;
    for (uint32_t i = 0; i < pool_.size(); i++) {
        const Entry &e = pool_.read(i);
        if (!e.valid || e.issued)
            continue;
        if (!e.isWrite &&
            countBank(e.bank, true) >= cfg_.perBankInflight)
            continue;
        if (olderSameLine(e))
            continue;
        bool hit = rowValid_.read(e.bank) != 0 &&
                   openRow_.read(e.bank) == rowOf(e.line);
        if (best < 0 || (hit && !bestHit) ||
            (hit == bestHit && e.seq < bestSeq)) {
            best = static_cast<int>(i);
            bestHit = hit;
            bestSeq = e.seq;
        }
    }
    if (best < 0)
        return; // requests exist but all blocked this cycle

    Entry e = pool_.read(best);
    uint32_t lat;
    if (!rowValid_.read(e.bank)) {
        lat = cfg_.rowMissLat;
        rowMisses_.inc();
    } else if (openRow_.read(e.bank) == rowOf(e.line)) {
        lat = cfg_.rowHitLat;
        rowHits_.inc();
    } else {
        lat = cfg_.rowConflictLat;
        rowConflicts_.inc();
    }
    openRow_.write(e.bank, rowOf(e.line));
    rowValid_.write(e.bank, 1);
    lastIssue_.write(kernel().cycleCount());

    if (e.isWrite) {
        // Writes retire at issue: PhysMem is the backing store and the
        // per-line issue order above keeps later reads consistent.
        writeLine(mem_, e.line, e.data);
        writes_.inc();
        e.valid = false;
    } else {
        e.data = readLine(mem_, e.line);
        e.doneCycle = kernel().cycleCount() + lat;
        e.issued = true;
        reads_.inc();
    }
    pool_.write(static_cast<uint32_t>(best), e);
}

void
DramCtl::ruleComplete()
{
    // Deliver the earliest-finished read whose response channel has
    // room; ties resolve by age so every scheduler picks identically.
    uint64_t now = kernel().cycleCount();
    int best = -1;
    uint64_t bestDone = 0, bestSeq = 0;
    for (uint32_t i = 0; i < pool_.size(); i++) {
        const Entry &e = pool_.read(i);
        if (!e.valid || !e.issued || e.doneCycle > now)
            continue;
        if (!chans_[e.port]->resp.canEnq())
            continue;
        if (best < 0 || e.doneCycle < bestDone ||
            (e.doneCycle == bestDone && e.seq < bestSeq)) {
            best = static_cast<int>(i);
            bestDone = e.doneCycle;
            bestSeq = e.seq;
        }
    }
    if (best < 0)
        return; // finished reads exist but their channels are full

    Entry e = pool_.read(best);
    chans_[e.port]->resp.enq({e.line, e.data});
    e.valid = false;
    e.issued = false;
    pool_.write(static_cast<uint32_t>(best), e);
}

bool
DramCtl::quiescent() const
{
    for (uint32_t i = 0; i < pool_.size(); i++)
        if (pool_.read(i).valid)
            return false;
    for (auto &c : chans_)
        if (c->req.size() != 0 || c->resp.size() != 0)
            return false;
    return true;
}

} // namespace riscy
