/**
 * @file
 * Physical memory and the MMIO host device.
 *
 * PhysMem is a sparse, page-granular byte store shared by every agent
 * in a simulation (golden model, caches, page walkers). It is plain
 * state, not a CMD module: timing is modeled by the cache hierarchy
 * and DRAM model that sit in front of it.
 *
 * HostDevice stands in for the paper's "Linux environment": a tiny
 * MMIO block providing console output, per-hart exit, a pass/fail
 * assertion channel, and region-of-interest (ROI) markers used by the
 * PARSEC-style benchmarks to delimit their parallel phase.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace riscy {

using Addr = uint64_t;

/** Base of simulated DRAM (standard RISC-V memory map). */
constexpr Addr kDramBase = 0x8000'0000ull;
/** Base of the MMIO host device. */
constexpr Addr kMmioBase = 0x4000'0000ull;
constexpr Addr kMmioSize = 0x1000;

inline bool
isMmioAddr(Addr a)
{
    return a >= kMmioBase && a < kMmioBase + kMmioSize;
}

/** MMIO register offsets within the host device. */
enum class HostReg : Addr {
    Exit = 0x00,     ///< write (code << 1) | 1 to halt the hart
    Putchar = 0x08,  ///< write a byte to the console
    RoiBegin = 0x10, ///< mark start of the region of interest
    RoiEnd = 0x18,   ///< mark end of the region of interest
    PutHex = 0x20,   ///< print a 64-bit value in hex
    Fail = 0x28,     ///< assertion failure with a code
    KvPop = 0x40,    ///< load: pop this hart's next KV request descriptor
    KvDone = 0x48,   ///< store a reqId to mark its request complete
};

/**
 * Host-side traffic source behind the KvPop/KvDone MMIO registers
 * (the open-loop key-value generator of the server workload). Not CMD
 * state: implementations must be deterministic functions of
 * (hart, now) and their own per-hart queues, and must touch only
 * per-hart data so concurrent access from per-core domains under the
 * parallel scheduler stays race-free.
 */
class KvTraffic
{
  public:
    virtual ~KvTraffic() = default;
    /** Pop the next arrived request for @p hart at cycle @p now.
     *  Descriptor: bit0 valid, bit1 put, bit2 stop (schedule drained),
     *  bits 39..8 key, bits 63..40 reqId; 0 = nothing arrived yet. */
    virtual uint64_t pop(uint32_t hart, uint64_t now) = 0;
    /** Request @p reqId finished on @p hart at cycle @p now. */
    virtual void done(uint32_t hart, uint64_t reqId, uint64_t now) = 0;
};

/** Sparse physical memory, 4 KiB pages, zero-initialized. */
class PhysMem
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr Addr kPageSize = 1ull << kPageShift;

    uint8_t read8(Addr a) const;
    void write8(Addr a, uint8_t v);

    /** Naturally aligned accesses of 1/2/4/8 bytes. */
    uint64_t read(Addr a, unsigned bytes) const;
    void write(Addr a, uint64_t v, unsigned bytes);

    /** Bulk helpers for loaders and testbenches. */
    void writeBlock(Addr a, const void *src, size_t len);
    void readBlock(Addr a, void *dst, size_t len) const;

    /**
     * Stable pointer to the 4 KiB page holding @p a (allocating it,
     * zero-filled, like any other access). Used by the fast functional
     * interpreter to batch accesses page-at-a-time; the pointer stays
     * valid until deserialize() or copy-assignment replaces the pages
     * (callers must drop cached pointers then — see
     * isa::GoldenModel::invalidateFastCaches).
     */
    uint8_t *pagePtr(Addr a) { return pageForWrite(a); }
    const uint8_t *pagePtr(Addr a) const { return pageFor(a); }

    /** Number of distinct pages ever touched. */
    size_t touchedPages() const { return pages_.size(); }

    /**
     * Byte-exact image for checkpoints: page count, then (addr, bytes)
     * records in ascending address order — the sort makes the image a
     * pure function of memory *contents*, independent of hash-map
     * iteration order, so identical memories hash identically.
     */
    std::vector<uint8_t> serialize() const;
    /** Replace all contents with a serialize() image. */
    void deserialize(const std::vector<uint8_t> &image);

  private:
    const uint8_t *pageFor(Addr a) const;
    uint8_t *pageForWrite(Addr a);

    mutable std::unordered_map<Addr, std::vector<uint8_t>> pages_;
};

/**
 * The MMIO host device. Shared by all harts; each hart reports its
 * own exit status. Writes are modeled as having no side effects on
 * memory, so speculative cores must only access it non-speculatively
 * (the paper's MMIO-at-commit rule).
 *
 * The device is not CMD state, so under the parallel scheduler it is
 * touched concurrently by the per-core domains. Fields a hart shares
 * with other harts (its exit flag, the fail channel) are atomics; the
 * console string is serialized by a mutex. Per-hart payload slots
 * (exit codes, ROI marks) are written only by their own hart and read
 * by the testbench between cycles, so distinct vector elements need
 * no further protection. None of this feeds back into architectural
 * state, so cross-hart interleaving cannot perturb determinism.
 */
class HostDevice
{
  public:
    explicit HostDevice(uint32_t harts);

    /** Perform an MMIO store from @p hart. */
    void store(uint32_t hart, Addr addr, uint64_t value, uint64_t now);
    /** Perform an MMIO load from @p hart (status readback, or a
     *  destructive KvPop — loads reach here non-speculatively only,
     *  the paper's MMIO-at-commit rule). */
    uint64_t load(uint32_t hart, Addr addr, uint64_t now);

    /** Attach/detach the KV traffic source (nullptr detaches; with no
     *  source, KvPop reads a stop descriptor so workers exit). */
    void attachKv(KvTraffic *kv) { kv_ = kv; }

    bool exited(uint32_t hart) const { return exited_[hart].load(); }
    bool allExited() const;
    uint64_t exitCode(uint32_t hart) const { return exitCode_[hart]; }
    bool failed() const { return failed_.load(); }
    uint64_t failCode() const { return failCode_.load(); }

    /** ROI timestamps (value of @p now passed at the marker). */
    uint64_t roiBegin(uint32_t hart) const { return roiBegin_[hart]; }
    uint64_t roiEnd(uint32_t hart) const { return roiEnd_[hart]; }

    /** Console contents (read between cycles only). */
    const std::string &console() const { return console_; }

    /** Forget all exits/ROI marks/console output (benchmark replay). */
    void reset();

    /** Checkpoint image of exits/codes/ROI/fail state + console. */
    std::vector<uint8_t> serialize() const;
    void deserialize(const std::vector<uint8_t> &image);

  private:
    std::vector<std::atomic<bool>> exited_;
    std::vector<uint64_t> exitCode_;
    std::vector<uint64_t> roiBegin_, roiEnd_;
    std::atomic<bool> failed_{false};
    std::atomic<uint64_t> failCode_{0};
    std::mutex consoleMutex_;
    std::string console_;
    KvTraffic *kv_ = nullptr;
};

} // namespace riscy
