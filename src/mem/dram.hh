/**
 * @file
 * DRAM timing model: fixed access latency, bounded outstanding
 * requests, and a line-per-N-cycles bandwidth cap (the paper models
 * 120-cycle latency and 12.8 GB/s for a 2 GHz clock, i.e. one 64 B
 * line per 10 cycles). Backed by PhysMem for data.
 */
#pragma once

#include "cache/msg.hh"
#include "core/cmd.hh"
#include "core/timed_fifo.hh"

namespace riscy {

/** A memory read response: the line address and its data. */
struct MemResp {
    Addr line;
    Line data;
};

/**
 * Abstract line-granular memory port. The L2 (each bank, when banked)
 * talks to its backing memory exclusively through this interface, so
 * the fixed-latency Dram and the contended DramCtl (per-channel
 * DramPortClient) are interchangeable behind it. Method handles are
 * exposed so rules can list the port's req/resp in their `uses` sets.
 */
class MemPort
{
  public:
    virtual ~MemPort() = default;
    /** Enqueue a line read or write. */
    virtual void req(bool isWrite, Addr line, const Line &data) = 0;
    /** Next read response (guarded). */
    virtual MemResp resp() = 0;
    virtual bool canReq() const = 0;
    virtual bool respReady() const = 0;
    /** Warm handoff: no request or in-flight response. */
    virtual bool quiescent() const = 0;
    virtual cmd::Method &reqMethod() = 0;
    virtual cmd::Method &respMethod() = 0;
};

class Dram : public cmd::Module, public MemPort
{
  public:
    struct Config {
        uint32_t latency = 120;       ///< cycles from issue to response
        uint32_t maxInflight = 24;    ///< outstanding read responses
        uint32_t issueInterval = 10;  ///< min cycles between line issues
    };

    using Resp = MemResp;

    Dram(cmd::Kernel &k, const std::string &name, PhysMem &mem,
         const Config &cfg);

    /** Enqueue a line read or write. */
    void req(bool isWrite, Addr line, const Line &data) override;
    /** Next read response (guarded). */
    Resp resp() override;

    bool canReq() const override { return reqQ_.canEnq(); }
    bool respReady() const override { return respQ_.canDeq(); }
    /** Warm handoff: no request or in-flight response (between cycles,
     *  so delayed TimedFifo elements count as occupancy). */
    bool
    quiescent() const override
    {
        return reqQ_.size() == 0 && respQ_.size() == 0;
    }
    cmd::Method &reqMethod() override { return reqM; }
    cmd::Method &respMethod() override { return respM; }

    cmd::Method &reqM, &respM;

  private:
    void ruleIssue();

    struct ReqMsg {
        bool isWrite;
        Addr line;
        Line data;
    };

    Config cfg_;
    PhysMem &mem_;
    cmd::CfFifo<ReqMsg> reqQ_;
    cmd::TimedFifo<Resp> respQ_;
    cmd::Reg<uint64_t> lastIssue_;
    cmd::Stat &reads_, &writes_;
};

/** Copy a line out of physical memory. */
inline Line
readLine(const PhysMem &mem, Addr line)
{
    Line l;
    mem.readBlock(line, l.w, kLineBytes);
    return l;
}

/** Copy a line into physical memory. */
inline void
writeLine(PhysMem &mem, Addr line, const Line &data)
{
    mem.writeBlock(line, data.w, kLineBytes);
}

} // namespace riscy
