/**
 * @file
 * DRAM timing model: fixed access latency, bounded outstanding
 * requests, and a line-per-N-cycles bandwidth cap (the paper models
 * 120-cycle latency and 12.8 GB/s for a 2 GHz clock, i.e. one 64 B
 * line per 10 cycles). Backed by PhysMem for data.
 */
#pragma once

#include "cache/msg.hh"
#include "core/cmd.hh"
#include "core/timed_fifo.hh"

namespace riscy {

class Dram : public cmd::Module
{
  public:
    struct Config {
        uint32_t latency = 120;       ///< cycles from issue to response
        uint32_t maxInflight = 24;    ///< outstanding read responses
        uint32_t issueInterval = 10;  ///< min cycles between line issues
    };

    struct Resp {
        Addr line;
        Line data;
    };

    Dram(cmd::Kernel &k, const std::string &name, PhysMem &mem,
         const Config &cfg);

    /** Enqueue a line read or write. */
    void req(bool isWrite, Addr line, const Line &data);
    /** Next read response (guarded). */
    Resp resp();

    bool canReq() const { return reqQ_.canEnq(); }
    bool respReady() const { return respQ_.canDeq(); }
    /** Warm handoff: no request or in-flight response (between cycles,
     *  so delayed TimedFifo elements count as occupancy). */
    bool quiescent() const { return reqQ_.size() == 0 && respQ_.size() == 0; }

    cmd::Method &reqM, &respM;

  private:
    void ruleIssue();

    struct ReqMsg {
        bool isWrite;
        Addr line;
        Line data;
    };

    Config cfg_;
    PhysMem &mem_;
    cmd::CfFifo<ReqMsg> reqQ_;
    cmd::TimedFifo<Resp> respQ_;
    cmd::Reg<uint64_t> lastIssue_;
    cmd::Stat &reads_, &writes_;
};

/** Copy a line out of physical memory. */
inline Line
readLine(const PhysMem &mem, Addr line)
{
    Line l;
    mem.readBlock(line, l.w, kLineBytes);
    return l;
}

/** Copy a line into physical memory. */
inline void
writeLine(PhysMem &mem, Addr line, const Line &data)
{
    mem.writeBlock(line, data.w, kLineBytes);
}

} // namespace riscy
