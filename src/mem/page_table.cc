#include "mem/page_table.hh"

#include "core/log.hh"

namespace riscy {

using namespace isa;

AddressSpace::AddressSpace(PhysMem &mem, FrameAllocator &frames)
    : mem_(mem), frames_(frames)
{
    root_ = allocTable();
}

Addr
AddressSpace::allocTable()
{
    Addr a = frames_.alloc(PhysMem::kPageSize);
    // Frames are zero on first touch in PhysMem, so the table starts
    // with every PTE invalid.
    return a;
}

Addr
AddressSpace::walkToLeafSlot(Addr va)
{
    Addr table = root_;
    for (int level = kSv39Levels - 1; level > 0; level--) {
        Addr slot = table + vpn(va, level) * 8;
        uint64_t pte = mem_.read(slot, 8);
        if (!(pte & PTE_V)) {
            Addr child = allocTable();
            mem_.write(slot, makePte(child, PTE_V), 8);
            table = child;
        } else {
            if (pteLeaf(pte))
                cmd::panic("AddressSpace: superpage collision at %#llx",
                           (unsigned long long)va);
            table = ptePpn(pte) << kPageShift;
        }
    }
    return table + vpn(va, 0) * 8;
}

void
AddressSpace::map(Addr va, Addr pa, uint64_t flags)
{
    if ((va | pa) & (PhysMem::kPageSize - 1))
        cmd::panic("AddressSpace: unaligned map %#llx -> %#llx",
                   (unsigned long long)va, (unsigned long long)pa);
    Addr slot = walkToLeafSlot(va);
    mem_.write(slot, makePte(pa, flags | PTE_V | PTE_A | PTE_D), 8);
}

void
AddressSpace::mapRange(Addr va, Addr pa, size_t len, uint64_t flags)
{
    for (size_t off = 0; off < len; off += PhysMem::kPageSize)
        map(va + off, pa + off, flags);
}

void
AddressSpace::unmap(Addr va)
{
    Addr slot = walkToLeafSlot(va);
    mem_.write(slot, 0, 8);
}

uint64_t
AddressSpace::satp() const
{
    return kSatpModeSv39 | (root_ >> kPageShift);
}

} // namespace riscy
