#include "asmkit/assembler.hh"

#include "core/log.hh"

namespace riscy::asmkit {

namespace {

uint32_t
rtype(unsigned f7, int rs2, int rs1, unsigned f3, int rd, unsigned opc)
{
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) |
           opc;
}

uint32_t
itype(int32_t imm, int rs1, unsigned f3, int rd, unsigned opc)
{
    return (static_cast<uint32_t>(imm & 0xfff) << 20) | (rs1 << 15) |
           (f3 << 12) | (rd << 7) | opc;
}

uint32_t
stype(int32_t imm, int rs2, int rs1, unsigned f3, unsigned opc)
{
    uint32_t u = static_cast<uint32_t>(imm) & 0xfff;
    return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
           ((u & 0x1f) << 7) | opc;
}

uint32_t
btype(int32_t imm, int rs2, int rs1, unsigned f3)
{
    uint32_t u = static_cast<uint32_t>(imm);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
           (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (((u >> 1) & 0xf) << 8) |
           (((u >> 11) & 1) << 7) | 0x63;
}

uint32_t
utype(int32_t hi20, int rd, unsigned opc)
{
    return (static_cast<uint32_t>(hi20 & 0xfffff) << 12) | (rd << 7) | opc;
}

uint32_t
jtype(int32_t imm, int rd)
{
    uint32_t u = static_cast<uint32_t>(imm);
    return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
           (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) | (rd << 7) |
           0x6f;
}

uint32_t
amo(unsigned f5, int rs2, int rs1, bool isD, int rd)
{
    return (f5 << 27) | (rs2 << 20) | (rs1 << 15) | ((isD ? 3u : 2u) << 12) |
           (rd << 7) | 0x2f;
}

} // namespace

Assembler::Label
Assembler::newLabel()
{
    labels_.push_back(~0ull);
    return Label{static_cast<int>(labels_.size()) - 1};
}

void
Assembler::bind(Label l)
{
    if (l.id < 0 || labels_[l.id] != ~0ull)
        cmd::panic("assembler: bad/duplicate label bind");
    labels_[l.id] = here();
}

Addr
Assembler::labelAddr(Label l) const
{
    if (l.id < 0 || labels_[l.id] == ~0ull)
        cmd::panic("assembler: unbound label queried");
    return labels_[l.id];
}

void
Assembler::emitBranch(unsigned f3, int rs1, int rs2, Label t)
{
    fixups_.push_back({code_.size(), t.id, Fixup::Kind::Branch});
    code_.push_back(btype(0, rs2, rs1, f3));
}

void Assembler::lui(int rd, int32_t hi20) { word(utype(hi20, rd, 0x37)); }
void Assembler::auipc(int rd, int32_t hi20) { word(utype(hi20, rd, 0x17)); }

void
Assembler::jal(int rd, Label target)
{
    fixups_.push_back({code_.size(), target.id, Fixup::Kind::Jal});
    code_.push_back(jtype(0, rd));
}

void Assembler::jalr(int rd, int rs1, int32_t off)
{
    word(itype(off, rs1, 0, rd, 0x67));
}

void Assembler::beq(int rs1, int rs2, Label t) { emitBranch(0, rs1, rs2, t); }
void Assembler::bne(int rs1, int rs2, Label t) { emitBranch(1, rs1, rs2, t); }
void Assembler::blt(int rs1, int rs2, Label t) { emitBranch(4, rs1, rs2, t); }
void Assembler::bge(int rs1, int rs2, Label t) { emitBranch(5, rs1, rs2, t); }
void Assembler::bltu(int rs1, int rs2, Label t) { emitBranch(6, rs1, rs2, t); }
void Assembler::bgeu(int rs1, int rs2, Label t) { emitBranch(7, rs1, rs2, t); }

void Assembler::lb(int rd, int32_t o, int rs1) { word(itype(o, rs1, 0, rd, 0x03)); }
void Assembler::lh(int rd, int32_t o, int rs1) { word(itype(o, rs1, 1, rd, 0x03)); }
void Assembler::lw(int rd, int32_t o, int rs1) { word(itype(o, rs1, 2, rd, 0x03)); }
void Assembler::ld(int rd, int32_t o, int rs1) { word(itype(o, rs1, 3, rd, 0x03)); }
void Assembler::lbu(int rd, int32_t o, int rs1) { word(itype(o, rs1, 4, rd, 0x03)); }
void Assembler::lhu(int rd, int32_t o, int rs1) { word(itype(o, rs1, 5, rd, 0x03)); }
void Assembler::lwu(int rd, int32_t o, int rs1) { word(itype(o, rs1, 6, rd, 0x03)); }
void Assembler::sb(int rs2, int32_t o, int rs1) { word(stype(o, rs2, rs1, 0, 0x23)); }
void Assembler::sh(int rs2, int32_t o, int rs1) { word(stype(o, rs2, rs1, 1, 0x23)); }
void Assembler::sw(int rs2, int32_t o, int rs1) { word(stype(o, rs2, rs1, 2, 0x23)); }
void Assembler::sd(int rs2, int32_t o, int rs1) { word(stype(o, rs2, rs1, 3, 0x23)); }

void Assembler::addi(int rd, int rs1, int32_t i) { word(itype(i, rs1, 0, rd, 0x13)); }
void Assembler::slti(int rd, int rs1, int32_t i) { word(itype(i, rs1, 2, rd, 0x13)); }
void Assembler::sltiu(int rd, int rs1, int32_t i) { word(itype(i, rs1, 3, rd, 0x13)); }
void Assembler::xori(int rd, int rs1, int32_t i) { word(itype(i, rs1, 4, rd, 0x13)); }
void Assembler::ori(int rd, int rs1, int32_t i) { word(itype(i, rs1, 6, rd, 0x13)); }
void Assembler::andi(int rd, int rs1, int32_t i) { word(itype(i, rs1, 7, rd, 0x13)); }
void Assembler::slli(int rd, int rs1, unsigned sh) { word(itype(sh, rs1, 1, rd, 0x13)); }
void Assembler::srli(int rd, int rs1, unsigned sh) { word(itype(sh, rs1, 5, rd, 0x13)); }
void Assembler::srai(int rd, int rs1, unsigned sh)
{
    word(itype(0x400 | sh, rs1, 5, rd, 0x13));
}

void Assembler::add(int rd, int a, int b) { word(rtype(0, b, a, 0, rd, 0x33)); }
void Assembler::sub(int rd, int a, int b) { word(rtype(0x20, b, a, 0, rd, 0x33)); }
void Assembler::sll(int rd, int a, int b) { word(rtype(0, b, a, 1, rd, 0x33)); }
void Assembler::slt(int rd, int a, int b) { word(rtype(0, b, a, 2, rd, 0x33)); }
void Assembler::sltu(int rd, int a, int b) { word(rtype(0, b, a, 3, rd, 0x33)); }
void Assembler::xor_(int rd, int a, int b) { word(rtype(0, b, a, 4, rd, 0x33)); }
void Assembler::srl(int rd, int a, int b) { word(rtype(0, b, a, 5, rd, 0x33)); }
void Assembler::sra(int rd, int a, int b) { word(rtype(0x20, b, a, 5, rd, 0x33)); }
void Assembler::or_(int rd, int a, int b) { word(rtype(0, b, a, 6, rd, 0x33)); }
void Assembler::and_(int rd, int a, int b) { word(rtype(0, b, a, 7, rd, 0x33)); }

void Assembler::addiw(int rd, int rs1, int32_t i) { word(itype(i, rs1, 0, rd, 0x1b)); }
void Assembler::slliw(int rd, int rs1, unsigned sh) { word(itype(sh, rs1, 1, rd, 0x1b)); }
void Assembler::srliw(int rd, int rs1, unsigned sh) { word(itype(sh, rs1, 5, rd, 0x1b)); }
void Assembler::sraiw(int rd, int rs1, unsigned sh)
{
    word(itype(0x400 | sh, rs1, 5, rd, 0x1b));
}
void Assembler::addw(int rd, int a, int b) { word(rtype(0, b, a, 0, rd, 0x3b)); }
void Assembler::subw(int rd, int a, int b) { word(rtype(0x20, b, a, 0, rd, 0x3b)); }
void Assembler::sllw(int rd, int a, int b) { word(rtype(0, b, a, 1, rd, 0x3b)); }
void Assembler::srlw(int rd, int a, int b) { word(rtype(0, b, a, 5, rd, 0x3b)); }
void Assembler::sraw(int rd, int a, int b) { word(rtype(0x20, b, a, 5, rd, 0x3b)); }

void Assembler::fence() { word(0x0ff0000f); }
void Assembler::fence_i() { word(0x0000100f); }
void Assembler::ecall() { word(0x00000073); }
void Assembler::ebreak() { word(0x00100073); }
void Assembler::mret() { word(0x30200073); }
void Assembler::wfi() { word(0x10500073); }

void Assembler::csrrw(int rd, uint16_t c, int rs1) { word(itype(c, rs1, 1, rd, 0x73)); }
void Assembler::csrrs(int rd, uint16_t c, int rs1) { word(itype(c, rs1, 2, rd, 0x73)); }
void Assembler::csrrc(int rd, uint16_t c, int rs1) { word(itype(c, rs1, 3, rd, 0x73)); }
void Assembler::csrrwi(int rd, uint16_t c, unsigned z) { word(itype(c, z, 5, rd, 0x73)); }

void Assembler::mul(int rd, int a, int b) { word(rtype(1, b, a, 0, rd, 0x33)); }
void Assembler::mulh(int rd, int a, int b) { word(rtype(1, b, a, 1, rd, 0x33)); }
void Assembler::mulhu(int rd, int a, int b) { word(rtype(1, b, a, 3, rd, 0x33)); }
void Assembler::div(int rd, int a, int b) { word(rtype(1, b, a, 4, rd, 0x33)); }
void Assembler::divu(int rd, int a, int b) { word(rtype(1, b, a, 5, rd, 0x33)); }
void Assembler::rem(int rd, int a, int b) { word(rtype(1, b, a, 6, rd, 0x33)); }
void Assembler::remu(int rd, int a, int b) { word(rtype(1, b, a, 7, rd, 0x33)); }
void Assembler::mulw(int rd, int a, int b) { word(rtype(1, b, a, 0, rd, 0x3b)); }
void Assembler::divw(int rd, int a, int b) { word(rtype(1, b, a, 4, rd, 0x3b)); }
void Assembler::remw(int rd, int a, int b) { word(rtype(1, b, a, 6, rd, 0x3b)); }

void Assembler::lr_w(int rd, int rs1) { word(amo(0x02, 0, rs1, false, rd)); }
void Assembler::sc_w(int rd, int rs2, int rs1) { word(amo(0x03, rs2, rs1, false, rd)); }
void Assembler::lr_d(int rd, int rs1) { word(amo(0x02, 0, rs1, true, rd)); }
void Assembler::sc_d(int rd, int rs2, int rs1) { word(amo(0x03, rs2, rs1, true, rd)); }
void Assembler::amoswap_w(int rd, int rs2, int rs1) { word(amo(0x01, rs2, rs1, false, rd)); }
void Assembler::amoadd_w(int rd, int rs2, int rs1) { word(amo(0x00, rs2, rs1, false, rd)); }
void Assembler::amoswap_d(int rd, int rs2, int rs1) { word(amo(0x01, rs2, rs1, true, rd)); }
void Assembler::amoadd_d(int rd, int rs2, int rs1) { word(amo(0x00, rs2, rs1, true, rd)); }
void Assembler::amoor_d(int rd, int rs2, int rs1) { word(amo(0x08, rs2, rs1, true, rd)); }
void Assembler::amoand_d(int rd, int rs2, int rs1) { word(amo(0x0c, rs2, rs1, true, rd)); }
void Assembler::amomax_d(int rd, int rs2, int rs1) { word(amo(0x14, rs2, rs1, true, rd)); }
void Assembler::amomin_d(int rd, int rs2, int rs1) { word(amo(0x10, rs2, rs1, true, rd)); }

void
Assembler::li(int rd, int64_t value)
{
    if (value >= INT32_MIN && value <= INT32_MAX) {
        int32_t v = static_cast<int32_t>(value);
        int32_t lo = (v << 20) >> 20; // low 12, sign-extended
        int32_t hi = (v - lo) >> 12;
        if (hi != 0) {
            lui(rd, hi);
            if (lo != 0)
                addiw(rd, rd, lo);
        } else {
            addi(rd, 0, lo);
        }
        return;
    }
    int64_t lo = (value << 52) >> 52;
    li(rd, (value - lo) >> 12);
    slli(rd, rd, 12);
    if (lo != 0)
        addi(rd, rd, static_cast<int32_t>(lo));
}

void
Assembler::resolveFixups()
{
    for (const Fixup &f : fixups_) {
        if (labels_[f.label] == ~0ull)
            cmd::panic("assembler: unbound label in fixup at word %zu",
                       f.index);
        Addr pc = base_ + f.index * 4;
        int64_t delta = static_cast<int64_t>(labels_[f.label]) -
                        static_cast<int64_t>(pc);
        uint32_t &w = code_[f.index];
        if (f.kind == Fixup::Kind::Branch) {
            if (delta < -4096 || delta > 4094)
                cmd::panic("assembler: branch offset %lld out of range",
                           (long long)delta);
            unsigned f3 = (w >> 12) & 7;
            int rs1 = (w >> 15) & 31;
            int rs2 = (w >> 20) & 31;
            w = btype(static_cast<int32_t>(delta), rs2, rs1, f3);
        } else {
            if (delta < -(1 << 20) || delta >= (1 << 20))
                cmd::panic("assembler: jal offset %lld out of range",
                           (long long)delta);
            int rd = (w >> 7) & 31;
            w = jtype(static_cast<int32_t>(delta), rd);
        }
    }
    fixups_.clear();
}

void
Assembler::load(PhysMem &mem, Addr pa)
{
    resolveFixups();
    mem.writeBlock(pa, code_.data(), code_.size() * 4);
}

} // namespace riscy::asmkit
