/**
 * @file
 * A small RV64IMA assembler used to author workload kernels and test
 * programs directly in C++ (there is no cross-compiler in this
 * environment; the paper's SPEC/PARSEC binaries are replaced by
 * kernels written against this API — see DESIGN.md).
 *
 * Supports labels with forward references (branch/jal fixups), the
 * usual pseudo-instructions (li, mv, j, ret, nop), and loading the
 * assembled text into a PhysMem image.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory.hh"

namespace riscy::asmkit {

using riscy::Addr;

/** ABI register names for readability at call sites. */
enum GprName : int {
    zero = 0, ra = 1, sp = 2, gp = 3, tp = 4,
    t0 = 5, t1 = 6, t2 = 7,
    s0 = 8, s1 = 9,
    a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15, a6 = 16,
    a7 = 17,
    s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23, s8 = 24,
    s9 = 25, s10 = 26, s11 = 27,
    t3 = 28, t4 = 29, t5 = 30, t6 = 31,
};

class Assembler
{
  public:
    explicit Assembler(Addr base) : base_(base) {}

    /** An assembly label; create with newLabel(), place with bind(). */
    struct Label {
        int id = -1;
    };

    Label newLabel();
    void bind(Label l);
    /** Current emission address. */
    Addr here() const { return base_ + code_.size() * 4; }
    Addr base() const { return base_; }
    /** Address a bound label resolves to. */
    Addr labelAddr(Label l) const;

    /** Emit a raw 32-bit word (escape hatch / data in text). */
    void word(uint32_t w) { code_.push_back(w); }

    // ---- RV64I ----
    void lui(int rd, int32_t hi20);
    void auipc(int rd, int32_t hi20);
    void jal(int rd, Label target);
    void jalr(int rd, int rs1, int32_t off);
    void beq(int rs1, int rs2, Label t);
    void bne(int rs1, int rs2, Label t);
    void blt(int rs1, int rs2, Label t);
    void bge(int rs1, int rs2, Label t);
    void bltu(int rs1, int rs2, Label t);
    void bgeu(int rs1, int rs2, Label t);
    void lb(int rd, int32_t off, int rs1);
    void lh(int rd, int32_t off, int rs1);
    void lw(int rd, int32_t off, int rs1);
    void ld(int rd, int32_t off, int rs1);
    void lbu(int rd, int32_t off, int rs1);
    void lhu(int rd, int32_t off, int rs1);
    void lwu(int rd, int32_t off, int rs1);
    void sb(int rs2, int32_t off, int rs1);
    void sh(int rs2, int32_t off, int rs1);
    void sw(int rs2, int32_t off, int rs1);
    void sd(int rs2, int32_t off, int rs1);
    void addi(int rd, int rs1, int32_t imm);
    void slti(int rd, int rs1, int32_t imm);
    void sltiu(int rd, int rs1, int32_t imm);
    void xori(int rd, int rs1, int32_t imm);
    void ori(int rd, int rs1, int32_t imm);
    void andi(int rd, int rs1, int32_t imm);
    void slli(int rd, int rs1, unsigned sh);
    void srli(int rd, int rs1, unsigned sh);
    void srai(int rd, int rs1, unsigned sh);
    void add(int rd, int rs1, int rs2);
    void sub(int rd, int rs1, int rs2);
    void sll(int rd, int rs1, int rs2);
    void slt(int rd, int rs1, int rs2);
    void sltu(int rd, int rs1, int rs2);
    void xor_(int rd, int rs1, int rs2);
    void srl(int rd, int rs1, int rs2);
    void sra(int rd, int rs1, int rs2);
    void or_(int rd, int rs1, int rs2);
    void and_(int rd, int rs1, int rs2);
    void addiw(int rd, int rs1, int32_t imm);
    void slliw(int rd, int rs1, unsigned sh);
    void srliw(int rd, int rs1, unsigned sh);
    void sraiw(int rd, int rs1, unsigned sh);
    void addw(int rd, int rs1, int rs2);
    void subw(int rd, int rs1, int rs2);
    void sllw(int rd, int rs1, int rs2);
    void srlw(int rd, int rs1, int rs2);
    void sraw(int rd, int rs1, int rs2);
    void fence();
    void fence_i();
    void ecall();
    void ebreak();
    void mret();
    void wfi();
    void csrrw(int rd, uint16_t csr, int rs1);
    void csrrs(int rd, uint16_t csr, int rs1);
    void csrrc(int rd, uint16_t csr, int rs1);
    void csrrwi(int rd, uint16_t csr, unsigned zimm);

    // ---- RV64M ----
    void mul(int rd, int rs1, int rs2);
    void mulh(int rd, int rs1, int rs2);
    void mulhu(int rd, int rs1, int rs2);
    void div(int rd, int rs1, int rs2);
    void divu(int rd, int rs1, int rs2);
    void rem(int rd, int rs1, int rs2);
    void remu(int rd, int rs1, int rs2);
    void mulw(int rd, int rs1, int rs2);
    void divw(int rd, int rs1, int rs2);
    void remw(int rd, int rs1, int rs2);

    // ---- RV64A ----
    void lr_w(int rd, int rs1);
    void sc_w(int rd, int rs2, int rs1);
    void lr_d(int rd, int rs1);
    void sc_d(int rd, int rs2, int rs1);
    void amoswap_w(int rd, int rs2, int rs1);
    void amoadd_w(int rd, int rs2, int rs1);
    void amoswap_d(int rd, int rs2, int rs1);
    void amoadd_d(int rd, int rs2, int rs1);
    void amoor_d(int rd, int rs2, int rs1);
    void amoand_d(int rd, int rs2, int rs1);
    void amomax_d(int rd, int rs2, int rs1);
    void amomin_d(int rd, int rs2, int rs1);

    // ---- pseudo-instructions ----
    void nop() { addi(0, 0, 0); }
    void mv(int rd, int rs1) { addi(rd, rs1, 0); }
    void j(Label t) { jal(0, t); }
    void ret() { jalr(0, 1, 0); }
    void call(Label t) { jal(1, t); }
    void csrr(int rd, uint16_t csr) { csrrs(rd, csr, 0); }
    void csrw(uint16_t csr, int rs1) { csrrw(0, csr, rs1); }
    void beqz(int rs1, Label t) { beq(rs1, 0, t); }
    void bnez(int rs1, Label t) { bne(rs1, 0, t); }
    /** Materialize an arbitrary 64-bit constant into rd. */
    void li(int rd, int64_t value);

    /** The assembled words. */
    const std::vector<uint32_t> &code() const { return code_; }
    /** Total size in bytes. */
    size_t sizeBytes() const { return code_.size() * 4; }

    /**
     * Resolve all fixups and copy the text into @p mem at the base
     * physical address @p pa (the base_ passed at construction is the
     * *virtual* address labels/branches are computed against).
     */
    void load(PhysMem &mem, Addr pa);
    /** load() at pa == base (identity-mapped text). */
    void load(PhysMem &mem) { load(mem, base_); }

  private:
    struct Fixup {
        size_t index;  ///< word index in code_
        int label;
        enum class Kind : uint8_t { Branch, Jal } kind;
    };

    void emitBranch(unsigned f3, int rs1, int rs2, Label t);
    void resolveFixups();

    Addr base_;
    std::vector<uint32_t> code_;
    std::vector<Addr> labels_;      // resolved addresses (~0 = unbound)
    std::vector<Fixup> fixups_;
};

} // namespace riscy::asmkit
