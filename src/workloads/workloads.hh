/**
 * @file
 * Benchmark workloads. There is no cross-compiler in this
 * environment, so the paper's SPEC CINT2006 and PARSEC suites are
 * replaced by RISC-V kernels written against the asmkit assembler,
 * each engineered to match the corresponding benchmark's published
 * locality/branch profile (paper Fig. 16):
 *
 *   mcf/astar/omnetpp  -> pointer chases over multi-thousand-page
 *                         footprints (DTLB + L2 TLB miss dominated)
 *   hmmer/h264ref      -> dense compute, tiny working sets
 *   libquantum         -> streaming over a large array (cache-miss
 *                         dominated, modest TLB pressure)
 *   sjeng/gobmk        -> data-dependent branching (predictor-bound)
 *   bzip2/gcc/xalancbmk-> mixed table/pointer/branch behavior
 *
 * The PARSEC stand-ins are multithreaded kernels with an explicit
 * region of interest (host ROI markers), spin locks and barriers via
 * the A extension, covering the communication patterns of the seven
 * benchmarks the paper runs (Fig. 20).
 *
 * Every workload runs under Sv39 paging so the TLB hierarchy is
 * genuinely exercised.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "proc/system.hh"

namespace riscy::workloads {

/** A loaded program image: where to start the harts. */
struct Image {
    Addr entry = 0;
    uint64_t satp = 0;
    std::vector<Addr> stacks;
};

struct Workload {
    std::string name;
    /**
     * Build the image into @p sys's physical memory for @p threads
     * worker harts (single-threaded workloads ignore the argument;
     * idle harts exit immediately).
     */
    std::function<Image(System &sys, uint32_t threads)> build;
};

/** The eleven SPEC CINT2006 stand-ins (paper Figs. 15-19). */
std::vector<Workload> specWorkloads();

/** The seven PARSEC stand-ins (paper Fig. 20). */
std::vector<Workload> parsecWorkloads();

/** Run a built image to completion. @return total cycles. */
uint64_t runToCompletion(System &sys, const Image &img,
                         uint64_t maxCycles = 400000000);

/** ROI duration in cycles (hart 0's markers), for PARSEC runs. */
uint64_t roiCycles(System &sys);

} // namespace riscy::workloads
