#include "workloads/workloads.hh"

#include <random>

#include "asmkit/assembler.hh"
#include "isa/csr.hh"
#include "mem/page_table.hh"

namespace riscy::workloads {

using namespace riscy::asmkit;
using namespace riscy::isa;

namespace {

constexpr Addr kTextVa = 0x400000;
constexpr Addr kDataVa = 0x10000000;
constexpr Addr kStackVa = 0x70000000;
constexpr Addr kTextPa = kDramBase;
constexpr Addr kPtPa = kDramBase + 0x100000;
constexpr Addr kStackPa = kDramBase + 0x2000000;
constexpr Addr kDataPa = kDramBase + 0x4000000;

/** Common build scaffolding: address space, stacks, loading. */
struct Env {
    System &sys;
    Assembler a{kTextVa};
    FrameAllocator frames{kPtPa};
    AddressSpace as;
    size_t dataBytes = 0;

    explicit Env(System &s) : sys(s), as(s.mem(), frames)
    {
        as.mapRange(kTextVa, kTextPa, 0x20000, PTE_R | PTE_X);
        as.map(kMmioBase, kMmioBase, PTE_R | PTE_W);
    }

    void
    mapData(size_t bytes)
    {
        dataBytes = (bytes + 0xfff) & ~size_t(0xfff);
        as.mapRange(kDataVa, kDataPa, dataBytes, PTE_R | PTE_W);
    }

    Image
    finish()
    {
        uint32_t harts = sys.cores();
        Image img;
        img.entry = kTextVa;
        for (uint32_t h = 0; h < harts; h++) {
            Addr base = kStackVa + h * 0x20000;
            as.mapRange(base, kStackPa + h * 0x20000, 0x10000,
                        PTE_R | PTE_W);
            img.stacks.push_back(base + 0x10000 - 16);
        }
        img.satp = as.satp();
        a.load(sys.mem(), kTextPa);
        return img;
    }
};

/** exit(a0). */
void
emitExit(Assembler &a)
{
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Exit));
    a.sd(a0, 0, t6);
    auto spin = a.newLabel();
    a.bind(spin);
    a.j(spin);
}

/** One LCG step on reg r using scratch t (r = r*A + C). */
void
emitLcg(Assembler &a, int r, int scratchA, int scratchC)
{
    a.mul(r, r, scratchA);
    a.add(r, r, scratchC);
}

/**
 * Host-side: build a random ring of pointers over @p pages pages.
 * @return start VAs spaced evenly around the ring (independent chase
 * chains start there — real mcf/astar expose this kind of
 * memory-level parallelism, which is what the paper's non-blocking
 * TLBs exploit).
 */
std::vector<uint64_t>
buildPointerRing(System &sys, uint32_t pages, uint32_t seed,
                 uint32_t chains)
{
    std::vector<uint32_t> perm(pages);
    for (uint32_t i = 0; i < pages; i++)
        perm[i] = i;
    std::mt19937 rng(seed);
    std::shuffle(perm.begin(), perm.end(), rng);
    auto nodeVa = [&](uint32_t page) {
        // A pseudo-random in-page offset adds cache-set pressure.
        uint64_t off = (uint64_t(page) * 712 + 64) & 0xfc0;
        return kDataVa + uint64_t(page) * 4096 + off;
    };
    auto nodePa = [&](uint32_t page) {
        return nodeVa(page) - kDataVa + kDataPa;
    };
    for (uint32_t i = 0; i < pages; i++) {
        uint32_t cur = perm[i];
        uint32_t nxt = perm[(i + 1) % pages];
        sys.mem().write(nodePa(cur), nodeVa(nxt), 8);
        sys.mem().write(nodePa(cur) + 8, (cur * 2654435761u) & 0xffff, 8);
    }
    std::vector<uint64_t> starts;
    for (uint32_t c = 0; c < chains; c++)
        starts.push_back(nodeVa(perm[size_t(c) * pages / chains]));
    return starts;
}

// ------------------------------------------------------------ SPEC kernels

/** mcf/astar/omnetpp: pointer chase across a huge page footprint. */
Workload
pointerChase(const std::string &name, uint32_t pages, uint32_t steps,
             uint32_t filler, bool branchy, uint32_t seed,
             uint32_t chains)
{
    return {name, [=](System &sys, uint32_t) {
                Env e(sys);
                e.mapData(size_t(pages) * 4096);
                auto starts = buildPointerRing(sys, pages, seed, chains);
                Assembler &a = e.a;
                // Independent chains in s8/s9/s10/s11 (x24..x27).
                const int chainReg[4] = {s8, s9, s10, s11};
                for (uint32_t c = 0; c < chains; c++)
                    a.li(chainReg[c], static_cast<int64_t>(starts[c]));
                a.li(s1, 0);
                a.li(s2, steps);
                a.li(s4, 1103515245);
                a.li(s5, 12345);
                a.li(s6, 1);
                a.li(a0, 0);
                auto loop = a.newLabel();
                a.bind(loop);
                for (uint32_t c = 0; c < chains; c++)
                    a.ld(chainReg[c], 0, chainReg[c]); // chase
                // Filler consumes the loaded pointers (node "work"),
                // so it serializes behind each chase like real node
                // processing does.
                for (uint32_t f = 0; f < filler; f++) {
                    a.add(a0, a0, chainReg[f % chains]);
                    a.srli(t2, a0, 3);
                    a.xor_(a0, a0, t2);
                }
                if (branchy) {
                    emitLcg(a, s6, s4, s5);
                    a.srli(t1, s6, 17);
                    a.andi(t1, t1, 1);
                    auto skip = a.newLabel();
                    a.beqz(t1, skip);
                    a.addi(a0, a0, 3);
                    a.bind(skip);
                    a.li(s6, 1);
                }
                a.addi(s1, s1, 1);
                a.bne(s1, s2, loop);
                a.add(a0, a0, s8); // keep the chains live
                a.andi(a0, a0, 0x7f);
                emitExit(a);
                return e.finish();
            }};
}

/** libquantum: line-granular streaming over a large array. */
Workload
streaming(const std::string &name, uint32_t megabytes, uint32_t iters,
          uint32_t filler)
{
    return {name, [=](System &sys, uint32_t) {
                Env e(sys);
                size_t bytes = size_t(megabytes) << 20;
                e.mapData(bytes);
                Assembler &a = e.a;
                a.li(s0, kDataVa);
                a.li(s1, 0);
                a.li(s2, iters);
                a.li(s3, static_cast<int64_t>(bytes));
                a.li(s4, 0);
                a.li(a0, 0);
                auto loop = a.newLabel();
                a.bind(loop);
                a.add(t0, s0, s4);
                a.ld(t1, 0, t0);
                a.xori(t1, t1, 0x55);
                a.sd(t1, 0, t0);
                for (uint32_t f = 0; f < filler; f++)
                    a.add(a0, a0, t1);
                a.addi(s4, s4, 128); // skip lines: every access misses
                auto nowrap = a.newLabel();
                a.blt(s4, s3, nowrap);
                a.li(s4, 0);
                a.bind(nowrap);
                a.addi(s1, s1, 1);
                a.bne(s1, s2, loop);
                a.andi(a0, a0, 0x7f);
                emitExit(a);
                return e.finish();
            }};
}

/** hmmer/h264ref: dense compute over a cache-resident working set. */
Workload
dense(const std::string &name, uint32_t bufKb, uint32_t iters,
      bool useMul)
{
    return {name, [=](System &sys, uint32_t) {
                Env e(sys);
                e.mapData(size_t(bufKb) * 1024);
                for (uint32_t i = 0; i < bufKb * 1024 / 8; i++)
                    sys.mem().write(kDataPa + i * 8, i * 2654435761u, 8);
                Assembler &a = e.a;
                a.li(s0, kDataVa);
                a.li(s1, 0);
                a.li(s2, iters);
                a.li(s3, bufKb * 1024 / 8);
                a.li(a0, 0);
                a.li(s4, 0);
                auto loop = a.newLabel();
                a.bind(loop);
                a.slli(t0, s4, 3);
                a.add(t0, s0, t0);
                a.ld(t1, 0, t0);
                if (useMul) {
                    a.mul(t2, t1, t1);
                    a.add(a0, a0, t2);
                    a.srli(t3, t2, 7);
                    a.xor_(a0, a0, t3);
                } else {
                    a.sub(t2, a0, t1);
                    a.srai(t3, t2, 63);
                    a.xor_(t2, t2, t3);
                    a.sub(t2, t2, t3); // |a0 - t1| (SAD-style)
                    a.add(a0, a0, t2);
                }
                a.addi(s4, s4, 1);
                auto nowrap = a.newLabel();
                a.blt(s4, s3, nowrap);
                a.li(s4, 0);
                a.bind(nowrap);
                a.addi(s1, s1, 1);
                a.bne(s1, s2, loop);
                a.andi(a0, a0, 0x7f);
                emitExit(a);
                return e.finish();
            }};
}

/** sjeng/gobmk: unpredictable data-dependent branching. */
Workload
branchy(const std::string &name, uint32_t iters, uint32_t tableKb,
        uint32_t seed, uint32_t filler)
{
    return {name, [=](System &sys, uint32_t) {
                Env e(sys);
                e.mapData(size_t(tableKb) * 1024);
                for (uint32_t i = 0; i < tableKb * 1024 / 8; i++)
                    sys.mem().write(kDataPa + i * 8, (i ^ seed) * 97, 8);
                Assembler &a = e.a;
                a.li(s0, kDataVa);
                a.li(s1, 0);
                a.li(s2, iters);
                a.li(s4, 1103515245);
                a.li(s5, 12345 + seed);
                a.li(s6, seed | 1);
                a.li(s7, tableKb * 1024 / 8 - 1);
                a.li(a0, 0);
                auto loop = a.newLabel();
                a.bind(loop);
                emitLcg(a, s6, s4, s5);
                // Three nested unpredictable branches per iteration.
                a.srli(t1, s6, 13);
                a.andi(t1, t1, 1);
                auto b1 = a.newLabel(), b2 = a.newLabel(),
                     b3 = a.newLabel(), join = a.newLabel();
                a.beqz(t1, b1);
                a.addi(a0, a0, 1);
                a.srli(t2, s6, 27);
                a.andi(t2, t2, 1);
                a.beqz(t2, b2);
                a.addi(a0, a0, 2);
                a.j(join);
                a.bind(b2);
                a.addi(a0, a0, 3);
                a.j(join);
                a.bind(b1);
                a.srli(t2, s6, 21);
                a.andi(t2, t2, 1);
                a.beqz(t2, b3);
                a.addi(a0, a0, 4);
                a.j(join);
                a.bind(b3);
                // table access keyed on the LCG (moderate cache load)
                a.srli(t3, s6, 8);
                a.and_(t3, t3, s7);
                a.slli(t3, t3, 3);
                a.add(t3, s0, t3);
                a.ld(t4, 0, t3);
                a.add(a0, a0, t4);
                a.bind(join);
                for (uint32_t f = 0; f < filler; f++) {
                    a.add(a0, a0, s6);
                    a.srli(a0, a0, 1);
                }
                a.addi(s1, s1, 1);
                a.bne(s1, s2, loop);
                a.andi(a0, a0, 0x7f);
                emitExit(a);
                return e.finish();
            }};
}

/** bzip2/xalancbmk: table transforms with data-dependent indexing. */
Workload
tableMix(const std::string &name, uint32_t bufMb, uint32_t iters,
         uint32_t seed)
{
    return {name, [=](System &sys, uint32_t) {
                Env e(sys);
                // bufMb == 0 selects a 256 KB working set.
                size_t bytes = bufMb ? size_t(bufMb) << 20
                                     : size_t(256) << 10;
                e.mapData(bytes);
                std::mt19937 rng(seed);
                for (uint32_t i = 0; i < bytes / 8; i += 7)
                    sys.mem().write(kDataPa + i * 8, rng(), 8);
                Assembler &a = e.a;
                a.li(s0, kDataVa);
                a.li(s1, 0);
                a.li(s2, iters);
                a.li(s6, seed | 1);
                a.li(s4, 1103515245);
                a.li(s5, 12345);
                a.li(s7, (bytes / 8) - 1);
                a.li(a0, 0);
                auto loop = a.newLabel();
                a.bind(loop);
                emitLcg(a, s6, s4, s5);
                a.srli(t0, s6, 11);
                a.and_(t0, t0, s7);
                a.slli(t0, t0, 3);
                a.add(t0, s0, t0);
                a.ld(t1, 0, t0);     // data-dependent gather
                a.andi(t2, t1, 63);
                a.slli(t2, t2, 3);
                a.add(t2, s0, t2);
                a.ld(t3, 0, t2);     // dependent second-level lookup
                a.add(a0, a0, t3);
                auto skip = a.newLabel();
                a.andi(t4, t1, 1);
                a.beqz(t4, skip);
                a.sd(a0, 0, t2);     // occasional store
                a.bind(skip);
                a.addi(s1, s1, 1);
                a.bne(s1, s2, loop);
                a.andi(a0, a0, 0x7f);
                emitExit(a);
                return e.finish();
            }};
}

// --------------------------------------------------------- PARSEC scaffold

constexpr Addr kBarrierVa = kDataVa;         // barrier counters
constexpr Addr kSharedVa = kDataVa + 0x1000; // kernel data after page 0

/** Entry: idle harts (id >= threads) exit; workers get tid in s11. */
void
emitParallelEntry(Assembler &a, uint32_t threads)
{
    a.csrr(s11, kCsrMhartid);
    a.li(t0, threads);
    auto work = a.newLabel();
    a.blt(s11, t0, work);
    a.li(a0, 0);
    emitExit(a);
    a.bind(work);
}

/** Sense-less barrier number @p n for @p threads workers. */
void
emitBarrier(Assembler &a, uint32_t n, uint32_t threads)
{
    a.li(t0, kBarrierVa + n * 64);
    a.li(t1, 1);
    a.amoadd_d(t2, t1, t0);
    a.li(t3, threads);
    auto spin = a.newLabel();
    a.bind(spin);
    a.ld(t2, 0, t0);
    a.blt(t2, t3, spin);
}

/** hart 0 stamps a ROI marker. */
void
emitRoi(Assembler &a, bool begin)
{
    auto skip = a.newLabel();
    a.bnez(s11, skip);
    a.li(t0, kMmioBase + static_cast<Addr>(begin ? HostReg::RoiBegin
                                                 : HostReg::RoiEnd));
    a.sd(zero, 0, t0);
    a.bind(skip);
}

/**
 * Parallel kernel wrapper: entry, barrier, ROI begin, body(tid in
 * s11), barrier, ROI end, exit.
 */
Workload
parallel(const std::string &name, size_t dataBytes,
         std::function<void(System &)> initData,
         std::function<void(Assembler &, uint32_t threads)> body)
{
    return {name, [=](System &sys, uint32_t threads) {
                Env e(sys);
                e.mapData(0x1000 + dataBytes);
                if (initData)
                    initData(sys);
                Assembler &a = e.a;
                emitParallelEntry(a, threads);
                emitBarrier(a, 0, threads);
                emitRoi(a, true);
                body(a, threads);
                emitBarrier(a, 1, threads);
                emitRoi(a, false);
                a.li(a0, 0);
                emitExit(a);
                return e.finish();
            }};
}

/** Shared-data physical address for host-side init. */
Addr
sharedPa(Addr va)
{
    return va - kDataVa + kDataPa;
}

} // namespace

// --------------------------------------------------------------- catalogs

std::vector<Workload>
specWorkloads()
{
    std::vector<Workload> w;
    w.push_back(tableMix("bzip2", 0, 12000, 11)); // 256 KB (see tableMix)
    w.push_back(pointerChase("gcc", 96, 9000, 5, true, 21, 2));
    w.push_back(pointerChase("mcf", 12288, 2200, 3, false, 31, 3));
    w.push_back(branchy("gobmk", 9000, 512, 41, 10));
    w.push_back(dense("hmmer", 16, 30000, true));
    w.push_back(branchy("sjeng", 12000, 64, 51, 4));
    w.push_back(streaming("libquantum", 4, 12000, 6));
    w.push_back(dense("h264ref", 24, 30000, false));
    w.push_back(pointerChase("astar", 16384, 2000, 2, true, 61, 4));
    w.push_back(pointerChase("omnetpp", 8192, 2500, 5, true, 71, 3));
    w.push_back(tableMix("xalancbmk", 2, 10000, 81));
    return w;
}

std::vector<Workload>
parsecWorkloads()
{
    std::vector<Workload> w;
    constexpr uint32_t kN = 12288; // elements in the shared arrays

    auto initArray = [](System &sys) {
        for (uint32_t i = 0; i < kN; i++)
            sys.mem().write(sharedPa(kSharedVa) + i * 8,
                            (i * 2654435761u) & 0xffffff, 8);
    };

    // Data-parallel polynomial over private chunks.
    w.push_back(parallel(
        "blackscholes", kN * 8 + 4096, initArray,
        [](Assembler &a, uint32_t threads) {
            uint32_t chunk = kN / threads;
            a.li(s0, kSharedVa);
            a.li(t0, chunk);
            a.mul(s1, s11, t0); // start index
            a.add(s2, s1, t0);  // end index
            auto loop = a.newLabel();
            a.bind(loop);
            a.slli(t1, s1, 3);
            a.add(t1, s0, t1);
            a.ld(t2, 0, t1);
            a.mul(t3, t2, t2);
            a.srli(t3, t3, 11);
            a.add(t3, t3, t2);
            a.mul(t4, t3, t2);
            a.srli(t4, t4, 13);
            a.add(t3, t3, t4);
            a.sd(t3, 0, t1);
            a.addi(s1, s1, 1);
            a.bne(s1, s2, loop);
        }));

    // Stencil over a shared-read grid into a private output region.
    w.push_back(parallel(
        "facesim", 2 * kN * 8 + 4096, initArray,
        [](Assembler &a, uint32_t threads) {
            uint32_t chunk = (kN - 2) / threads;
            a.li(s0, kSharedVa);
            a.li(s3, kSharedVa + kN * 8); // output
            a.li(t0, chunk);
            a.mul(s1, s11, t0);
            a.addi(s1, s1, 1);
            a.add(s2, s1, t0);
            auto loop = a.newLabel();
            a.bind(loop);
            a.slli(t1, s1, 3);
            a.add(t2, s0, t1);
            a.ld(t3, -8, t2);
            a.ld(t4, 0, t2);
            a.ld(t5, 8, t2);
            a.add(t3, t3, t5);
            a.slli(t4, t4, 1);
            a.add(t3, t3, t4);
            a.srai(t3, t3, 2);
            a.add(t2, s3, t1);
            a.sd(t3, 0, t2);
            a.addi(s1, s1, 1);
            a.bne(s1, s2, loop);
        }));

    // Software pipeline: stage t transforms items and passes them on.
    // Queue slots are a cache line apart so producer and consumer only
    // share a line during an actual handoff, and polls use AMOs
    // (commit-time, unkillable) rather than speculative loads.
    w.push_back(parallel(
        "ferret", 8 * 0x4000, nullptr,
        [](Assembler &a, uint32_t threads) {
            // Fixed total stage-work: T stages x (640/T) items.
            uint32_t kItems = 640 / threads;
            a.li(s0, kSharedVa);
            a.slli(s1, s11, 14);
            a.add(s1, s0, s1);     // input queue base (stage s11)
            a.li(t0, 0x4000);
            a.add(s2, s1, t0);     // output queue base (stage s11+1)
            a.li(s3, 0);
            a.li(s4, kItems);
            auto loop = a.newLabel();
            auto get = a.newLabel();
            auto putSpin = a.newLabel();
            a.bind(loop);
            a.andi(t0, s3, 31);
            a.slli(t0, t0, 6);     // one slot per cache line
            a.add(t1, s1, t0);     // &in[slot]
            a.add(t2, s2, t0);     // &out[slot]
            // stage 0: item := s3+1, no input wait
            a.addi(t3, s3, 1);
            auto isStage0 = a.newLabel();
            a.beqz(s11, isStage0);
            a.bind(get);
            a.amoswap_d(t3, zero, t1); // take the item (0 if empty)
            a.beqz(t3, get);
            a.bind(isStage0);
            a.slli(t4, t3, 1);
            a.xor_(t3, t3, t4); // "work"
            a.ori(t3, t3, 1);
            // last stage consumes; others pass downstream
            a.li(t5, threads - 1);
            auto consume = a.newLabel();
            a.beq(s11, t5, consume);
            a.bind(putSpin);
            a.amoadd_d(t6, zero, t2); // probe the slot atomically
            a.bnez(t6, putSpin); // wait for a free slot
            a.sd(t3, 0, t2);
            a.bind(consume);
            a.addi(s3, s3, 1);
            a.bne(s3, s4, loop);
        }));

    // Fine-grained locking on chunk boundaries.
    w.push_back(parallel(
        "fluidanimate", kN * 8 + 64 * 8 + 4096, initArray,
        [](Assembler &a, uint32_t threads) {
            uint32_t chunk = kN / threads;
            Addr locks = kSharedVa + kN * 8;
            a.li(s0, kSharedVa);
            a.li(s5, locks);
            a.li(t0, chunk);
            a.mul(s1, s11, t0);
            a.add(s2, s1, t0);
            auto loop = a.newLabel();
            a.bind(loop);
            // lock s11 (covers this chunk's boundary with neighbor)
            a.slli(t1, s11, 3);
            a.add(t1, s5, t1);
            a.li(t2, 1);
            auto acq = a.newLabel();
            a.bind(acq);
            a.amoswap_d(t3, t2, t1);
            a.bnez(t3, acq);
            a.fence(); // acquire (WMM)
            // update 4 cells
            a.slli(t4, s1, 3);
            a.add(t4, s0, t4);
            for (int c = 0; c < 4; c++) {
                a.ld(t5, c * 8, t4);
                a.addi(t5, t5, 1);
                a.sd(t5, c * 8, t4);
            }
            a.fence();
            a.sd(zero, 0, t1); // unlock
            a.addi(s1, s1, 4);
            a.blt(s1, s2, loop);
        }));

    // Shared hash-count building with AMO increments.
    w.push_back(parallel(
        "freqmine", 65536 * 8 + 4096, nullptr,
        [](Assembler &a, uint32_t threads) {
            constexpr uint32_t kOps = 4000;
            a.li(s0, kSharedVa);
            a.li(s3, 0);
            a.li(s4, kOps / threads);
            a.li(s5, 1103515245);
            a.li(s6, 12345);
            a.addi(s7, s11, 17);
            a.li(t2, 1);
            auto loop = a.newLabel();
            a.bind(loop);
            emitLcg(a, s7, s5, s6);
            a.srli(t0, s7, 9);
            a.li(t1, 65535);
            a.and_(t0, t0, t1);
            a.slli(t0, t0, 3);
            a.add(t0, s0, t0);
            a.amoadd_d(zero, t2, t0);
            a.addi(s3, s3, 1);
            a.bne(s3, s4, loop);
        }));

    // Independent Monte-Carlo accumulation (embarrassingly parallel).
    w.push_back(parallel(
        "swaptions", 4096, nullptr,
        [](Assembler &a, uint32_t threads) {
            constexpr uint32_t kTrials = 16000;
            a.li(s3, 0);
            a.li(s4, kTrials / threads);
            a.li(s5, 1103515245);
            a.li(s6, 12345);
            a.addi(s7, s11, 3);
            a.li(s8, 0);
            auto loop = a.newLabel();
            a.bind(loop);
            emitLcg(a, s7, s5, s6);
            a.srli(t0, s7, 16);
            a.mul(t1, t0, t0);
            a.srli(t1, t1, 24);
            a.add(s8, s8, t1);
            a.addi(s3, s3, 1);
            a.bne(s3, s4, loop);
        }));

    // Barrier-phased shared-read distance computations.
    w.push_back(parallel(
        "streamcluster", kN * 8 + 4096, initArray,
        [](Assembler &a, uint32_t threads) {
            uint32_t chunk = kN / threads;
            a.li(s9, 0);
            for (uint32_t phase = 0; phase < 3; phase++) {
                a.li(s0, kSharedVa);
                a.li(t0, chunk);
                a.mul(s1, s11, t0);
                a.add(s2, s1, t0);
                a.li(s8, 12345 + phase * 777); // the "center"
                auto loop = a.newLabel();
                a.bind(loop);
                a.slli(t1, s1, 3);
                a.add(t1, s0, t1);
                a.ld(t2, 0, t1);
                a.sub(t3, t2, s8);
                a.mul(t3, t3, t3);
                a.add(s9, s9, t3);
                a.addi(s1, s1, 1);
                a.bne(s1, s2, loop);
                // phase barrier (barriers 2, 3, 4)
                emitBarrier(a, 2 + phase, threads);
            }
        }));

    return w;
}

uint64_t
runToCompletion(System &sys, const Image &img, uint64_t maxCycles)
{
    sys.start(img.entry, img.satp, img.stacks);
    if (!sys.run(maxCycles))
        cmd::fatal("workload did not complete within %llu cycles",
                   (unsigned long long)maxCycles);
    return sys.kernel().cycleCount();
}

uint64_t
roiCycles(System &sys)
{
    uint64_t b = sys.host().roiBegin(0);
    uint64_t e = sys.host().roiEnd(0);
    if (e <= b)
        cmd::fatal("ROI markers missing or inverted");
    return e - b;
}

} // namespace riscy::workloads
