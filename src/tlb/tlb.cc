#include "tlb/tlb.hh"

namespace riscy {

using namespace cmd;
using namespace isa;

// ------------------------------------------------------------------ L1Tlb

L1Tlb::L1Tlb(Kernel &k, const std::string &name, const Config &cfg,
             TlbChannel &chan)
    : Module(k, name, Conflict::CF),
      reqM(method("req")), respM(method("resp")), flushM(method("flush")),
      setSatpM(method("setSatp")),
      cfg_(cfg), chan_(chan),
      entries_(k, name + ".entries", cfg.entries),
      replPtr_(k, name + ".repl", 0),
      miss_(k, name + ".miss", cfg.maxMisses),
      bare_(k, name + ".bare", true),
      reqQ_(k, name + ".reqQ", 4),
      respQ_(k, name + ".respQ", 4),
      hits_(stats().counter("hits")), misses_(stats().counter("misses")),
      faults_(stats().counter("faults"))
{
    reqM.subcalls({&reqQ_.enqM});
    respM.subcalls({&respQ_.deqM});

    k.rule(name + ".process", [this] { ruleProcess(); })
        .when([this] { return reqQ_.canDeq(); })
        .uses({&reqQ_.firstM, &reqQ_.deqM, &respQ_.enqM, &chan_.req.enqM});
    k.rule(name + ".fill", [this] { ruleFill(); })
        .when([this] { return chan_.resp.canDeq(); })
        .uses({&chan_.resp.firstM, &chan_.resp.deqM});
    k.rule(name + ".serve", [this] { ruleServe(); })
        .when([this] {
            for (uint32_t i = 0; i < miss_.size(); i++) {
                if (miss_.read(i).valid && miss_.read(i).ready)
                    return true;
            }
            return false;
        })
        .uses({&respQ_.enqM});
}

void
L1Tlb::req(uint8_t id, Addr va, AccessType type)
{
    reqM();
    reqQ_.enq({id, va, static_cast<uint8_t>(type)});
}

L1Tlb::Resp
L1Tlb::resp()
{
    respM();
    return respQ_.deq();
}

void
L1Tlb::setSatp(uint64_t satp)
{
    setSatpM();
    bare_.write(!satpSv39(satp));
}

void
L1Tlb::flush()
{
    flushM();
    for (uint32_t i = 0; i < entries_.size(); i++) {
        if (entries_.read(i).valid)
            entries_.write(i, TlbEntry{});
    }
    for (uint32_t i = 0; i < miss_.size(); i++)
        require(!miss_.read(i).valid); // drain before flushing
}

int
L1Tlb::lookup(Addr va) const
{
    for (uint32_t i = 0; i < entries_.size(); i++) {
        if (entries_.read(i).matches(va))
            return static_cast<int>(i);
    }
    return -1;
}

void
L1Tlb::warmInsert(const TlbEntry &e, Addr va)
{
    if (lookup(va) >= 0)
        return;
    entries_.write(replPtr_.read(), e);
    replPtr_.write((replPtr_.read() + 1) % cfg_.entries);
}

bool
L1Tlb::permOk(uint8_t flags, AccessType t) const
{
    switch (t) {
      case AccessType::Fetch:
        return flags & PTE_X;
      case AccessType::Load:
        return flags & PTE_R;
      default:
        return flags & PTE_W;
    }
}

void
L1Tlb::ruleProcess()
{
    ReqMsg r = reqQ_.first();

    if (bare_.read()) {
        respQ_.enq({r.id, false, r.va});
        reqQ_.deq();
        return;
    }

    bool anyMiss = false;
    int freeMiss = -1;
    bool samePagePending = false;
    for (uint32_t i = 0; i < miss_.size(); i++) {
        const MissReg &m = miss_.read(i);
        if (m.valid) {
            anyMiss = true;
            if ((m.va >> kPageShift) == (r.va >> kPageShift))
                samePagePending = true;
        } else if (freeMiss < 0) {
            freeMiss = static_cast<int>(i);
        }
    }
    // A blocking TLB (RiscyOO-B) stalls the whole pipe on any miss.
    require(cfg_.hitUnderMiss || !anyMiss);

    int e = lookup(r.va);
    if (e >= 0) {
        const TlbEntry &te = entries_.read(e);
        bool fault = !permOk(te.flags, static_cast<AccessType>(r.type));
        respQ_.enq({r.id, fault, fault ? 0 : te.translate(r.va)});
        reqQ_.deq();
        hits_.inc();
        if (fault)
            faults_.inc();
        return;
    }

    require(freeMiss >= 0);
    MissReg m;
    m.valid = true;
    m.ready = false;
    m.id = r.id;
    m.va = r.va;
    m.type = r.type;
    miss_.write(freeMiss, m);
    if (!samePagePending)
        chan_.req.enq(r.va);
    reqQ_.deq();
    misses_.inc();
}

void
L1Tlb::ruleFill()
{
    TlbFill f = chan_.resp.first();

    TlbEntry te;
    if (!f.fault) {
        te.valid = true;
        te.vpn = fullVpn(f.va);
        te.ppn = f.ppn;
        te.level = f.level;
        te.flags = f.flags;
        entries_.write(replPtr_.read(), te);
        replPtr_.write((replPtr_.read() + 1) % cfg_.entries);
    }

    for (uint32_t i = 0; i < miss_.size(); i++) {
        MissReg m = miss_.read(i);
        if (!m.valid || m.ready)
            continue;
        bool covered = f.fault
                           ? (m.va >> kPageShift) == (f.va >> kPageShift)
                           : te.matches(m.va);
        if (!covered)
            continue;
        m.ready = true;
        if (f.fault) {
            m.fault = true;
            m.pa = 0;
        } else {
            m.fault = !permOk(f.flags, static_cast<AccessType>(m.type));
            m.pa = m.fault ? 0 : te.translate(m.va);
        }
        if (m.fault)
            faults_.inc();
        miss_.write(i, m);
    }
    chan_.resp.deq();
}

void
L1Tlb::ruleServe()
{
    int idx = -1;
    for (uint32_t i = 0; i < miss_.size(); i++) {
        if (miss_.read(i).valid && miss_.read(i).ready) {
            idx = static_cast<int>(i);
            break;
        }
    }
    require(idx >= 0);
    MissReg m = miss_.read(idx);
    respQ_.enq({m.id, m.fault, m.pa});
    miss_.write(idx, MissReg{});
}

// ------------------------------------------------------------------ L2Tlb

L2Tlb::L2Tlb(Kernel &k, const std::string &name, const Config &cfg,
             std::vector<TlbChannel *> clients, UncachedPort &mem)
    : Module(k, name, Conflict::CF), setSatpM(method("setSatp")),
      cfg_(cfg), sets_(cfg.entries / cfg.ways), ways_(cfg.ways),
      clients_(std::move(clients)), mem_(mem),
      entries_(k, name + ".entries", cfg.entries),
      replPtr_(k, name + ".repl", sets_, 0),
      walks_(k, name + ".walks", cfg.maxWalks),
      wc1_(k, name + ".wc1", cfg.walkCacheEntries),
      wc0_(k, name + ".wc0", cfg.walkCacheEntries),
      wcRepl1_(k, name + ".wcRepl1", 0),
      wcRepl0_(k, name + ".wcRepl0", 0),
      satp_(k, name + ".satp", 0),
      rrClient_(k, name + ".rrClient", 0),
      hits_(stats().counter("hits")), misses_(stats().counter("misses")),
      walksDone_(stats().counter("walks")),
      wcHits_(stats().counter("walkCacheHits")),
      faults_(stats().counter("faults"))
{
    if ((sets_ & (sets_ - 1)) != 0)
        cmd::fatal("%s: set count %u not a power of two", name.c_str(),
                   sets_);

    std::vector<const Method *> startUses, stepUses;
    for (TlbChannel *c : clients_) {
        startUses.push_back(&c->req.firstM);
        startUses.push_back(&c->req.deqM);
        startUses.push_back(&c->resp.enqM);
        stepUses.push_back(&c->resp.enqM);
    }
    stepUses.push_back(&mem_.req.enqM);
    stepUses.push_back(&mem_.resp.firstM);
    stepUses.push_back(&mem_.resp.deqM);

    k.rule(name + ".start", [this] { ruleStart(); })
        .when([this] {
            for (TlbChannel *c : clients_) {
                if (c->req.canDeq())
                    return true;
            }
            return false;
        })
        .uses(startUses);
    k.rule(name + ".step", [this] { ruleStep(); })
        .when([this] {
            if (mem_.resp.canDeq())
                return true;
            for (uint32_t i = 0; i < walks_.size(); i++) {
                if (walks_.read(i).valid && !walks_.read(i).memPending)
                    return true;
            }
            return false;
        })
        .uses(stepUses);
}

void
L2Tlb::setSatp(uint64_t satp)
{
    setSatpM();
    for (uint32_t i = 0; i < walks_.size(); i++)
        require(!walks_.read(i).valid);
    satp_.write(satp);
    for (uint32_t i = 0; i < entries_.size(); i++) {
        if (entries_.read(i).valid)
            entries_.write(i, TlbEntry{});
    }
    for (uint32_t i = 0; i < wc1_.size(); i++) {
        if (wc1_.read(i).valid)
            wc1_.write(i, WalkCacheEntry{});
        if (wc0_.read(i).valid)
            wc0_.write(i, WalkCacheEntry{});
    }
}

int
L2Tlb::lookup(Addr va) const
{
    uint32_t set = setOf(va);
    for (uint32_t w = 0; w < ways_; w++) {
        uint32_t sl = set * ways_ + w;
        if (entries_.read(sl).matches(va))
            return static_cast<int>(sl);
    }
    return -1;
}

void
L2Tlb::warmInsert(const TlbEntry &e, Addr va)
{
    if (lookup(va) >= 0)
        return;
    insert(e, va);
}

void
L2Tlb::insert(const TlbEntry &e, Addr va)
{
    uint32_t set = setOf(va);
    for (uint32_t w = 0; w < ways_; w++) {
        uint32_t sl = set * ways_ + w;
        if (!entries_.read(sl).valid) {
            entries_.write(sl, e);
            return;
        }
    }
    uint32_t w = replPtr_.read(set);
    entries_.write(set * ways_ + w, e);
    replPtr_.write(set, (w + 1) % ways_);
}

int
L2Tlb::findFreeWalk() const
{
    for (uint32_t i = 0; i < walks_.size(); i++) {
        if (!walks_.read(i).valid)
            return static_cast<int>(i);
    }
    return -1;
}

void
L2Tlb::walkCacheLookup(Addr va, int8_t &level, Addr &base) const
{
    level = kSv39Levels - 1;
    base = satpRoot(satp_.read());
    if (!cfg_.walkCache)
        return;
    uint64_t key0 = va >> 21; // VPN2|VPN1
    for (uint32_t i = 0; i < wc0_.size(); i++) {
        if (wc0_.read(i).valid && wc0_.read(i).key == key0) {
            level = 0;
            base = wc0_.read(i).base;
            return;
        }
    }
    uint64_t key1 = va >> 30; // VPN2
    for (uint32_t i = 0; i < wc1_.size(); i++) {
        if (wc1_.read(i).valid && wc1_.read(i).key == key1) {
            level = 1;
            base = wc1_.read(i).base;
            return;
        }
    }
}

void
L2Tlb::walkCacheInsert(unsigned level, Addr va, Addr base)
{
    if (!cfg_.walkCache)
        return;
    if (level == 1) {
        wc1_.write(wcRepl1_.read(), {true, va >> 30, base});
        wcRepl1_.write((wcRepl1_.read() + 1) % wc1_.size());
    } else {
        wc0_.write(wcRepl0_.read(), {true, va >> 21, base});
        wcRepl0_.write((wcRepl0_.read() + 1) % wc0_.size());
    }
}

void
L2Tlb::ruleStart()
{
    // Blocking config: no new activity while any walk is in flight.
    if (cfg_.maxWalks == 1) {
        for (uint32_t i = 0; i < walks_.size(); i++)
            require(!walks_.read(i).valid);
    }

    uint32_t start = rrClient_.read();
    for (uint32_t i = 0; i < clients_.size(); i++) {
        uint32_t c = (start + i) % clients_.size();
        TlbChannel *ch = clients_[c];
        if (!ch->req.canDeq())
            continue;
        Addr va = ch->req.first();

        int e = lookup(va);
        if (e >= 0) {
            const TlbEntry &te = entries_.read(e);
            TlbFill f;
            f.va = va;
            f.fault = false;
            f.ppn = te.ppn;
            f.level = te.level;
            f.flags = te.flags;
            ch->resp.enq(f);
            ch->req.deq();
            rrClient_.write((c + 1) % clients_.size());
            hits_.inc();
            return;
        }

        // Walk needed: skip if one is already walking this page.
        bool dup = false;
        for (uint32_t wi = 0; wi < walks_.size(); wi++) {
            const Walk &w = walks_.read(wi);
            if (w.valid && (w.va >> kPageShift) == (va >> kPageShift))
                dup = true;
        }
        if (dup)
            continue;
        int free = findFreeWalk();
        if (free < 0)
            continue;

        Walk w;
        w.valid = true;
        w.memPending = false;
        w.va = va;
        w.client = static_cast<uint8_t>(c);
        walkCacheLookup(va, w.level, w.tableBase);
        if (cfg_.walkCache && w.level < static_cast<int8_t>(kSv39Levels) - 1)
            wcHits_.inc();
        walks_.write(free, w);
        ch->req.deq();
        rrClient_.write((c + 1) % clients_.size());
        misses_.inc();
        return;
    }
    require(false); // nothing to do
}

void
L2Tlb::ruleStep()
{
    // Prefer consuming a walker memory response.
    if (mem_.resp.canDeq()) {
        UncachedResp r = mem_.resp.first();
        for (uint32_t i = 0; i < walks_.size(); i++) {
            Walk w = walks_.read(i);
            if (!w.valid || !w.memPending)
                continue;
            Addr pteAddr = w.tableBase + vpn(w.va, w.level) * 8;
            if (lineAddr(pteAddr) != r.line)
                continue;
            uint64_t pte = r.data.read(lineOffset(pteAddr), 8);
            TlbFill f;
            f.va = w.va;
            if (!(pte & PTE_V)) {
                f.fault = true;
            } else if (pteLeaf(pte)) {
                uint64_t ppn = ptePpn(pte);
                uint64_t mask = (1ull << (9 * w.level)) - 1;
                if (ppn & mask) {
                    f.fault = true; // misaligned superpage
                } else {
                    f.fault = false;
                    f.ppn = ppn;
                    f.level = static_cast<uint8_t>(w.level);
                    f.flags = pte & (PTE_R | PTE_W | PTE_X);
                    TlbEntry te;
                    te.valid = true;
                    te.vpn = fullVpn(w.va);
                    te.ppn = ppn;
                    te.level = f.level;
                    te.flags = f.flags;
                    insert(te, w.va);
                }
            } else {
                // Descend one level.
                if (w.level == 0) {
                    f.fault = true; // pointer at leaf level
                } else {
                    w.level--;
                    w.tableBase = ptePpn(pte) << kPageShift;
                    w.memPending = false;
                    walkCacheInsert(w.level, w.va, w.tableBase);
                    walks_.write(i, w);
                    mem_.resp.deq();
                    return;
                }
            }
            clients_[w.client]->resp.enq(f);
            walks_.write(i, Walk{});
            walksDone_.inc();
            if (f.fault)
                faults_.inc();
            mem_.resp.deq();
            return;
        }
        panic("%s: walker response for line %#llx matches no walk",
              name().c_str(), (unsigned long long)r.line);
    }

    // Otherwise issue the next pending PTE read.
    for (uint32_t i = 0; i < walks_.size(); i++) {
        Walk w = walks_.read(i);
        if (!w.valid || w.memPending)
            continue;
        Addr pteAddr = w.tableBase + vpn(w.va, w.level) * 8;
        mem_.req.enq(lineAddr(pteAddr));
        w.memPending = true;
        walks_.write(i, w);
        return;
    }
    require(false);
}

} // namespace riscy
