/**
 * @file
 * The TLB subsystem: per-core L1 I/D TLBs and a shared-per-core L2 TLB
 * with an integrated hardware page-table walker.
 *
 * Two microarchitectures, selected by configuration, reproduce the
 * paper's RiscyOO-B and RiscyOO-T+ variants:
 *
 *  - RiscyOO-B: the L1 TLB blocks on a miss (no hit-under-miss, one
 *    outstanding miss) and the L2 TLB performs one page walk at a
 *    time.
 *  - RiscyOO-T+: the L1 D TLB supports hit-under-miss with up to 4
 *    outstanding misses, the L2 TLB walks up to 2 misses in parallel,
 *    and a *split translation cache* (24 fully associative entries
 *    per page-table level, after Barr et al. [45]) lets walks skip
 *    upper levels.
 *
 * Page-walk memory traffic goes through an uncached L2-cache port
 * (the paper's page-walk cross bar), so walks are coherent with data
 * stores.
 */
#pragma once

#include "cache/l2.hh"
#include "core/timed_fifo.hh"
#include "isa/sv39.hh"

namespace riscy {

/** A translation result shipped from L2 TLB to an L1 TLB. */
struct TlbFill {
    Addr va = 0;       ///< the VA whose walk produced this fill
    bool fault = false;
    uint64_t ppn = 0;
    uint8_t level = 0; ///< leaf level (0 = 4K, 1 = 2M, 2 = 1G)
    uint8_t flags = 0; ///< PTE R/W/X bits
};

/** Channel between an L1 TLB and its L2 TLB (a few cycles each way,
 *  like the paper's L2 TLB access latency). */
struct TlbChannel {
    TlbChannel(cmd::Kernel &k, const std::string &name, uint32_t delay = 2)
        : req(k, name + ".req", 4, delay), resp(k, name + ".resp", 4, delay)
    {
    }

    cmd::TimedFifo<Addr> req;
    cmd::TimedFifo<TlbFill> resp;
};

/** One cached translation. */
struct TlbEntry {
    bool valid = false;
    uint64_t vpn = 0;  ///< full 27-bit VPN of the *leaf-aligned* page
    uint64_t ppn = 0;
    uint8_t level = 0;
    uint8_t flags = 0;

    bool
    matches(Addr va) const
    {
        if (!valid)
            return false;
        uint64_t mask = ~((1ull << (9 * level)) - 1) & ((1ull << 27) - 1);
        return (isa::fullVpn(va) & mask) == (vpn & mask);
    }

    Addr
    translate(Addr va) const
    {
        uint64_t off = va & ((1ull << (isa::kPageShift + 9 * level)) - 1);
        return (ppn << isa::kPageShift) | off;
    }
};

/**
 * L1 TLB (instruction or data side), fully associative.
 */
class L1Tlb : public cmd::Module
{
  public:
    struct Config {
        uint32_t entries = 32;
        uint32_t maxMisses = 1;
        bool hitUnderMiss = false;
    };

    struct Resp {
        uint8_t id;
        bool fault;
        Addr pa;
    };

    L1Tlb(cmd::Kernel &k, const std::string &name, const Config &cfg,
          TlbChannel &chan);

    /** Request translation of @p va for access @p type. */
    void req(uint8_t id, Addr va, isa::AccessType type);
    /** Next translation response (guarded; possibly out of order). */
    Resp resp();
    /** Flush all entries (satp change). */
    void flush();
    /** Set translation mode from a satp value. */
    void setSatp(uint64_t satp);

    bool canReq() const { return reqQ_.canEnq(); }
    bool respReady() const { return respQ_.canDeq(); }
    /** Functional warming (sampled handoff, between cycles under
     *  runAtomically): install @p e at the replacement pointer unless
     *  an entry already covers @p va. */
    void warmInsert(const TlbEntry &e, Addr va);
    /** Warm handoff: no queued request/response or pending miss. */
    bool
    quiescent() const
    {
        for (uint32_t i = 0; i < miss_.size(); i++)
            if (miss_.read(i).valid)
                return false;
        return reqQ_.size() == 0 && respQ_.size() == 0;
    }

    cmd::Method &reqM, &respM, &flushM, &setSatpM;

  private:
    struct ReqMsg {
        uint8_t id;
        Addr va;
        uint8_t type;
    };

    struct MissReg {
        bool valid = false;
        bool ready = false; ///< fill arrived; waiting to respond
        uint8_t id = 0;
        Addr va = 0;
        uint8_t type = 0;
        bool fault = false;
        Addr pa = 0;
    };

    int lookup(Addr va) const;
    bool permOk(uint8_t flags, isa::AccessType t) const;
    void ruleProcess();
    void ruleFill();
    void ruleServe();

    Config cfg_;
    TlbChannel &chan_;
    cmd::RegArray<TlbEntry> entries_;
    cmd::Reg<uint32_t> replPtr_;
    cmd::RegArray<MissReg> miss_;
    cmd::Reg<bool> bare_;
    cmd::CfFifo<ReqMsg> reqQ_;
    cmd::CfFifo<Resp> respQ_;
    cmd::Stat &hits_, &misses_, &faults_;
};

/**
 * Per-core L2 TLB with integrated page walker and optional split
 * translation (walk) cache.
 */
class L2Tlb : public cmd::Module
{
  public:
    struct Config {
        uint32_t entries = 2048;
        uint32_t ways = 4;
        uint32_t maxWalks = 1;
        bool walkCache = false;
        uint32_t walkCacheEntries = 24;
    };

    L2Tlb(cmd::Kernel &k, const std::string &name, const Config &cfg,
          std::vector<TlbChannel *> clients, UncachedPort &mem);

    /** Set the root of translation (satp) and flush. */
    void setSatp(uint64_t satp);
    /** Functional warming: install @p e unless @p va is covered
     *  (between cycles under runAtomically). */
    void warmInsert(const TlbEntry &e, Addr va);
    /** Warm handoff: no page walk in flight. */
    bool
    quiescent() const
    {
        for (uint32_t i = 0; i < walks_.size(); i++)
            if (walks_.read(i).valid)
                return false;
        return true;
    }
    cmd::Method &setSatpM;

  private:
    struct Walk {
        bool valid = false;
        bool memPending = false;
        Addr va = 0;
        uint8_t client = 0;
        int8_t level = 0;
        Addr tableBase = 0;
    };

    struct WalkCacheEntry {
        bool valid = false;
        uint64_t key = 0; ///< VA prefix
        Addr base = 0;
    };

    uint32_t setOf(Addr va) const
    {
        return static_cast<uint32_t>(isa::fullVpn(va)) & (sets_ - 1);
    }
    int lookup(Addr va) const;
    void insert(const TlbEntry &e, Addr va);
    int findFreeWalk() const;
    /** Deepest walk-cache hit for @p va; fills level/base. */
    void walkCacheLookup(Addr va, int8_t &level, Addr &base) const;
    void walkCacheInsert(unsigned level, Addr va, Addr base);
    void ruleStart();
    void ruleStep();

    Config cfg_;
    uint32_t sets_, ways_;
    std::vector<TlbChannel *> clients_;
    UncachedPort &mem_;
    cmd::RegArray<TlbEntry> entries_;
    cmd::RegArray<uint8_t> replPtr_;
    cmd::RegArray<Walk> walks_;
    /// walk caches for levels 1 and 0 (index = level - ... see .cc)
    cmd::RegArray<WalkCacheEntry> wc1_, wc0_;
    cmd::Reg<uint32_t> wcRepl1_, wcRepl0_;
    cmd::Reg<uint64_t> satp_;
    cmd::Reg<uint32_t> rrClient_;
    cmd::Stat &hits_, &misses_, &walksDone_, &wcHits_, &faults_;
};

} // namespace riscy
