/**
 * @file
 * Logging and error-reporting helpers for the CMD framework.
 *
 * Follows the gem5 convention: panic() for "this is a bug in the
 * framework or design" (raised as a catchable KernelFault of kind
 * DesignError — see core/fault.hh), fatal() for "the user configured
 * something impossible, exit cleanly", warn()/inform() for status.
 */
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>

namespace cmd {

/** Verbosity levels for trace(). */
enum class LogLevel : int {
    Quiet = 0,
    Info = 1,
    Debug = 2,
    Trace = 3,
};

/** Global log verbosity; messages above this level are dropped. */
LogLevel logLevel();
void setLogLevel(LogLevel lvl);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
std::string vstrfmt(const char *fmt, va_list ap);

/**
 * Report an internal invariant violation and abort. Use for
 * conditions that indicate a bug in the framework or in a design
 * built on it, never for user-configuration errors.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal diagnostic for suspicious but tolerable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Status message for the user. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Leveled trace output, prefixed with the current level tag. */
void trace(LogLevel lvl, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace cmd
