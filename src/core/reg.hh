/**
 * @file
 * Journaled state elements: Reg<T> and RegArray<T>.
 *
 * Reads performed inside a rule return the committed value as of the
 * start of that rule (so "x.write(y.read()); y.write(x.read())" swaps,
 * matching BSV register semantics). Writes are staged and applied only
 * if the rule commits, which is what makes rules atomic. A rule firing
 * later in the same cycle observes the committed writes of earlier
 * rules — the "<" ordering of the conflict matrix.
 *
 * readStable() additionally exposes the value as of the *start of the
 * cycle*, regardless of what earlier rules committed. Module
 * implementations use it to realize conflict-free (CF) method pairs
 * whose guards must not depend on intra-cycle execution order (see
 * fifo.hh's CfFifo).
 *
 * Commit-fusion contract (SchedulerKind::Compiled). The kernel's
 * fused commit path skips its *scheduler* bookkeeping per committed
 * element — the commit-cycle stamp and the sleeping-rule waiter scan —
 * because a context whose rules never sleep has no reader for either.
 * What it must NOT skip is anything architectural, so commitStaged()
 * implementations have to stay self-contained: the stable_/history_
 * epoch maintenance below is readStable() semantics (CF method pairs
 * depend on it within a cycle) and runs identically under every
 * scheduler. Keep that split in mind when adding state element kinds:
 * scheduler state lives in StateBase and is the kernel's to elide,
 * value semantics live here and are not.
 */
#pragma once

#include <cstring>
#include <type_traits>
#include <vector>

#include "core/kernel.hh"

namespace cmd {

/** A single register holding a trivially copyable value. */
template <typename T>
class Reg final : public StateBase
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "Reg<T> requires trivially copyable T (snapshots)");

  public:
    Reg(Kernel &kernel, std::string name, T init = T{})
        : StateBase(kernel, std::move(name)), cur_(detail::cleared(init))
    {
    }

    /** Committed value (as of the start of the current rule). */
    const T &
    read() const
    {
        noteRead();
        return cur_;
    }

    /** Value as of the start of the current cycle. */
    const T &
    readStable() const
    {
        noteRead();
        return stableCycle_ == kernelCycle() ? stable_ : cur_;
    }

    /**
     * Value as latched at the last parallel cycle barrier (see
     * Kernel::registerMirror()). This is the only committed-value view
     * another domain may take of this register: it is written solely
     * by the barrier (main thread) and equals readStable() for the
     * whole cycle, since the owning domain's same-cycle commits are
     * not yet published. Bypasses noteRead() — cross-domain readers
     * must flag themselves with detail::noteCrossRead() instead.
     */
    const T &readPublished() const { return published_; }

    void publishMirror() override { published_ = cur_; }

    /** Stage a write; commits only if the enclosing rule fires. */
    void
    write(const T &v)
    {
        if (stagedValid_)
            kfault(FaultKind::DesignError, name(),
                   "double write within one rule");
        // Register with the transaction before staging: if the touch
        // is rejected (cross-domain write), nothing must be staged, or
        // the orphaned value would leak past the rollback.
        kernel_.noteStateTouched(this);
        staged_ = v;
        detail::clearPadding(staged_);
        stagedValid_ = true;
    }

    void
    commitStaged() override
    {
        uint64_t now = kernelCycle();
        if (stableCycle_ != now) {
            stableCycle_ = now;
            stable_ = cur_;
        }
        cur_ = staged_;
        stagedValid_ = false;
    }

    void abortStaged() override { stagedValid_ = false; }

    void
    save(std::vector<uint8_t> &out) const override
    {
        const uint8_t *p = reinterpret_cast<const uint8_t *>(&cur_);
        out.insert(out.end(), p, p + sizeof(T));
    }

    void
    restore(const uint8_t *&in) override
    {
        std::memcpy(&cur_, in, sizeof(T));
        in += sizeof(T);
        stagedValid_ = false;
        stableCycle_ = ~0ull;
    }

  private:
    T cur_;
    T staged_{};
    T stable_{};
    T published_{}; ///< barrier-latched copy for cross-domain readers
    bool stagedValid_ = false;
    uint64_t stableCycle_ = ~0ull;
};

/**
 * A register array (register file / RAM macro) with per-element
 * journaled writes. Element reads see committed state; writes commit
 * in program order within the rule. Writing the same index twice in
 * one rule is a design error.
 */
template <typename T>
class RegArray final : public StateBase
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "RegArray<T> requires trivially copyable T");

  public:
    RegArray(Kernel &kernel, std::string name, size_t size, T init = T{})
        : StateBase(kernel, std::move(name)), cur_(size, detail::cleared(init))
    {
    }

    size_t size() const { return cur_.size(); }

    const T &
    read(size_t idx) const
    {
        noteRead();
        return cur_[checkIdx(idx)];
    }

    /**
     * Raw committed value of element @p idx, bypassing both journal
     * bookkeeping and noteRead(). Only for cross-domain boundary reads
     * of slots the owning domain provably is not writing this cycle
     * (TimedFifo payload/ready slots, whose occupancy guard already
     * imposes a one-cycle visibility delay — see timed_fifo.hh); the
     * caller must flag itself with detail::noteCrossRead().
     */
    const T &readDirect(size_t idx) const { return cur_[checkIdx(idx)]; }

    /** Value of element @p idx as of the start of the current cycle. */
    const T &
    readStable(size_t idx) const
    {
        noteRead();
        checkIdx(idx);
        if (historyCycle_ == kernelCycle()) {
            for (const auto &h : history_) {
                if (h.first == idx)
                    return h.second;
            }
        }
        return cur_[idx];
    }

    void
    write(size_t idx, const T &v)
    {
        checkIdx(idx);
        for (const auto &w : staged_) {
            if (w.first == idx)
                kfault(FaultKind::DesignError, name(),
                       "[%zu]: double write within one rule", idx);
        }
        // Touch before staging (see Reg::write).
        if (staged_.empty())
            kernel_.noteStateTouched(this);
        staged_.emplace_back(idx, v);
        detail::clearPadding(staged_.back().second);
    }

    void
    commitStaged() override
    {
        uint64_t now = kernelCycle();
        if (historyCycle_ != now) {
            historyCycle_ = now;
            history_.clear();
        }
        for (const auto &w : staged_) {
            bool seen = false;
            for (const auto &h : history_) {
                if (h.first == w.first) {
                    seen = true;
                    break;
                }
            }
            if (!seen)
                history_.emplace_back(w.first, cur_[w.first]);
            cur_[w.first] = w.second;
        }
        staged_.clear();
    }

    void abortStaged() override { staged_.clear(); }

    void
    save(std::vector<uint8_t> &out) const override
    {
        const uint8_t *p = reinterpret_cast<const uint8_t *>(cur_.data());
        out.insert(out.end(), p, p + sizeof(T) * cur_.size());
    }

    void
    restore(const uint8_t *&in) override
    {
        std::memcpy(cur_.data(), in, sizeof(T) * cur_.size());
        in += sizeof(T) * cur_.size();
        staged_.clear();
        history_.clear();
        historyCycle_ = ~0ull;
    }

  private:
    size_t
    checkIdx(size_t idx) const
    {
        if (idx >= cur_.size())
            kfault(FaultKind::DesignError, name(),
                   "index %zu out of range %zu", idx, cur_.size());
        return idx;
    }

    std::vector<T> cur_;
    std::vector<std::pair<size_t, T>> staged_;
    /// old values of elements overwritten this cycle (for readStable)
    std::vector<std::pair<size_t, T>> history_;
    uint64_t historyCycle_ = ~0ull;
};

} // namespace cmd
