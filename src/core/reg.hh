/**
 * @file
 * Journaled state elements: Reg<T> and RegArray<T>.
 *
 * Reads performed inside a rule return the committed value as of the
 * start of that rule (so "x.write(y.read()); y.write(x.read())" swaps,
 * matching BSV register semantics). Writes are staged and applied only
 * if the rule commits, which is what makes rules atomic. A rule firing
 * later in the same cycle observes the committed writes of earlier
 * rules — the "<" ordering of the conflict matrix.
 *
 * readStable() additionally exposes the value as of the *start of the
 * cycle*, regardless of what earlier rules committed. Module
 * implementations use it to realize conflict-free (CF) method pairs
 * whose guards must not depend on intra-cycle execution order (see
 * fifo.hh's CfFifo).
 *
 * Commit-fusion contract (SchedulerKind::Compiled). The kernel's
 * fused commit path skips its *scheduler* bookkeeping per committed
 * element — the commit-cycle stamp and the sleeping-rule waiter scan —
 * because a context whose rules never sleep has no reader for either.
 * What it must NOT skip is anything architectural, so commitStaged()
 * implementations have to stay self-contained: the stable_/history_
 * epoch maintenance below is readStable() semantics (CF method pairs
 * depend on it within a cycle) and runs identically under every
 * scheduler. Keep that split in mind when adding state element kinds:
 * scheduler state lives in StateBase and is the kernel's to elide,
 * value semantics live here and are not.
 */
#pragma once

#include <cstring>
#include <type_traits>
#include <vector>

#include "core/kernel.hh"

namespace cmd {

/** A single register holding a trivially copyable value. */
template <typename T>
class Reg final : public StateBase
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "Reg<T> requires trivially copyable T (snapshots)");

  public:
    Reg(Kernel &kernel, std::string name, T init = T{})
        : StateBase(kernel, std::move(name)), cur_(detail::cleared(init))
    {
    }

    /** Committed value (as of the start of the current rule). */
    const T &
    read() const
    {
        noteRead();
        return cur_;
    }

    /** Value as of the start of the current cycle. */
    const T &
    readStable() const
    {
        noteRead();
        return stableCycle_ == kernelCycle() ? stable_ : cur_;
    }

    /**
     * Value as latched at the last parallel cycle barrier (see
     * Kernel::registerMirror()). This is the only committed-value view
     * another domain may take of this register: it is written solely
     * by the barrier (main thread) and equals readStable() for the
     * whole cycle, since the owning domain's same-cycle commits are
     * not yet published. Bypasses noteRead() — cross-domain readers
     * must flag themselves with detail::noteCrossRead() instead.
     */
    const T &readPublished() const { return published_; }

    void publishMirror() override { published_ = cur_; }

    /** Stage a write; commits only if the enclosing rule fires. */
    void
    write(const T &v)
    {
        if (stagedValid_)
            kfault(FaultKind::DesignError, name(),
                   "double write within one rule");
        // Register with the transaction before staging: if the touch
        // is rejected (cross-domain write), nothing must be staged, or
        // the orphaned value would leak past the rollback.
        kernel_.noteStateTouched(this);
        staged_ = v;
        detail::clearPadding(staged_);
        stagedValid_ = true;
    }

    void
    commitStaged() override
    {
        uint64_t now = kernelCycle();
        if (stableCycle_ != now) {
            stableCycle_ = now;
            stable_ = cur_;
        }
        cur_ = staged_;
        stagedValid_ = false;
    }

    void abortStaged() override { stagedValid_ = false; }

    void
    save(std::vector<uint8_t> &out) const override
    {
        const uint8_t *p = reinterpret_cast<const uint8_t *>(&cur_);
        out.insert(out.end(), p, p + sizeof(T));
    }

    void
    restore(const uint8_t *&in) override
    {
        std::memcpy(&cur_, in, sizeof(T));
        in += sizeof(T);
        stagedValid_ = false;
        stableCycle_ = ~0ull;
    }

  private:
    T cur_;
    T staged_{};
    T stable_{};
    T published_{}; ///< barrier-latched copy for cross-domain readers
    bool stagedValid_ = false;
    uint64_t stableCycle_ = ~0ull;
};

/**
 * A monotonic uint64 counter whose committed value is queryable at
 * *past cycle epochs*: readAt(c) returns the value as of the end of
 * cycle c, from a bounded ring of (cycle, value) commit records.
 *
 * This is the state element behind TimedFifo's enq/deq totals under
 * multi-cycle lookahead PDES. A consumer domain running ahead inside
 * a lookahead window is only allowed to see the producer's counter as
 * of `now - latency` — an epoch that is always covered by the batch
 * published at the last sync barrier (the window width never exceeds
 * the channel latency). The sequential schedulers use the *same*
 * lagged views on the live history, which is why parallel-with-
 * lookahead stays bit-identical to them.
 *
 * The ring records at most one entry per cycle (the counters are
 * written by one conflicting method, so they commit at most once per
 * cycle; a same-cycle atomic-action bump updates the entry in place).
 * Capacity 2*lag+8 therefore retains every epoch a reader may query:
 * queries reach back at most `lag` cycles behind a local clock that
 * itself runs at most `window <= lag` cycles ahead of the publish
 * epoch. Evicted entries fold into floor_, the value before the
 * oldest retained record. History is part of save()/restore() so a
 * restored run reproduces lagged guard reads bit-exactly.
 */
class EpochCounter final : public StateBase
{
  public:
    EpochCounter(Kernel &kernel, std::string name, uint32_t lagCycles,
                 uint64_t init = 0)
        : StateBase(kernel, std::move(name)), cur_(init), floor_(init),
          pubCur_(init), pubFloor_(init),
          hist_(2 * size_t(lagCycles ? lagCycles : 1) + 8),
          pubHist_(hist_.size())
    {
    }

    /** Committed value (as of the start of the current rule). */
    uint64_t
    read() const
    {
        noteRead();
        return cur_;
    }

    /** Value as of the start of the current cycle. */
    uint64_t
    readStable() const
    {
        noteRead();
        uint64_t c = kernelCycle();
        // Before the first cycle nothing is stable yet: the start-of-
        // cycle view is the initial value, not this cycle's commits
        // (c - 1 would wrap and admit them).
        if (c == 0)
            return floor_;
        return valueAt(hist_, floor_, pos_, count_, c - 1);
    }

    /**
     * Committed value as of the end of cycle @p c, from the live
     * history. Same-domain (or sequential-scheduler) readers only;
     * cross-domain readers must use readPublishedAt(). @p c at or
     * before the first commit returns the initial/floor value.
     */
    uint64_t
    readAt(uint64_t c) const
    {
        noteRead();
        return valueAt(hist_, floor_, pos_, count_, c);
    }

    /**
     * Value as of the end of cycle @p c, from the epoch batch latched
     * at the last sync barrier (Kernel::registerMirror). Complete for
     * every epoch up to the publish cycle; written solely by the
     * driving thread at the barrier, so cross-domain reads are
     * race-free. Bypasses noteRead() — callers flag themselves with
     * detail::noteCrossRead().
     */
    uint64_t
    readPublishedAt(uint64_t c) const
    {
        return valueAt(pubHist_, pubFloor_, pubPos_, pubCount_, c);
    }

    /** Scalar value as latched at the last sync barrier. */
    uint64_t readPublished() const { return pubCur_; }

    void
    publishMirror() override
    {
        pubCur_ = cur_;
        pubFloor_ = floor_;
        pubPos_ = pos_;
        pubCount_ = count_;
        pubHist_ = hist_;
    }

    /** Stage a write; commits only if the enclosing rule fires. */
    void
    write(uint64_t v)
    {
        if (stagedValid_)
            kfault(FaultKind::DesignError, name(),
                   "double write within one rule");
        kernel_.noteStateTouched(this);
        staged_ = v;
        stagedValid_ = true;
    }

    void
    commitStaged() override
    {
        uint64_t now = kernelCycle();
        if (count_ && hist_[newestIdx()].cycle == now) {
            hist_[newestIdx()].value = staged_;
        } else {
            if (count_ == hist_.size()) {
                // Evict the oldest record into the floor. Readers
                // never query epochs that old (see class comment).
                floor_ = hist_[pos_].value;
                pos_ = (pos_ + 1) % hist_.size();
                count_--;
            }
            hist_[(pos_ + count_) % hist_.size()] = {now, staged_};
            count_++;
        }
        cur_ = staged_;
        stagedValid_ = false;
    }

    void abortStaged() override { stagedValid_ = false; }

    void
    save(std::vector<uint8_t> &out) const override
    {
        auto put64 = [&out](uint64_t v) {
            const uint8_t *p = reinterpret_cast<const uint8_t *>(&v);
            out.insert(out.end(), p, p + 8);
        };
        put64(cur_);
        put64(floor_);
        put64(pos_);
        put64(count_);
        for (const Entry &e : hist_) {
            put64(e.cycle);
            put64(e.value);
        }
    }

    void
    restore(const uint8_t *&in) override
    {
        auto get64 = [&in] {
            uint64_t v;
            std::memcpy(&v, in, 8);
            in += 8;
            return v;
        };
        cur_ = get64();
        floor_ = get64();
        pos_ = get64();
        count_ = get64();
        for (Entry &e : hist_) {
            e.cycle = get64();
            e.value = get64();
        }
        stagedValid_ = false;
    }

  private:
    struct Entry
    {
        uint64_t cycle = 0;
        uint64_t value = 0;
    };

    size_t newestIdx() const { return (pos_ + count_ - 1) % hist_.size(); }

    /** Newest record with record.cycle <= c, else the floor. */
    static uint64_t
    valueAt(const std::vector<Entry> &hist, uint64_t floorValue,
            uint64_t pos, uint64_t count, uint64_t c)
    {
        for (uint64_t i = 0; i < count; i++) {
            const Entry &e = hist[(pos + count - 1 - i) % hist.size()];
            if (e.cycle <= c)
                return e.value;
        }
        return floorValue;
    }

    uint64_t cur_;
    uint64_t staged_ = 0;
    bool stagedValid_ = false;
    uint64_t floor_;    ///< value before the oldest retained record
    uint64_t pos_ = 0;  ///< ring index of the oldest record
    uint64_t count_ = 0;
    uint64_t pubCur_;
    uint64_t pubFloor_;
    uint64_t pubPos_ = 0;
    uint64_t pubCount_ = 0;
    std::vector<Entry> hist_;
    std::vector<Entry> pubHist_; ///< barrier-latched batch copy
};

/**
 * A register array (register file / RAM macro) with per-element
 * journaled writes. Element reads see committed state; writes commit
 * in program order within the rule. Writing the same index twice in
 * one rule is a design error.
 */
template <typename T>
class RegArray final : public StateBase
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "RegArray<T> requires trivially copyable T");

  public:
    RegArray(Kernel &kernel, std::string name, size_t size, T init = T{})
        : StateBase(kernel, std::move(name)), cur_(size, detail::cleared(init))
    {
    }

    size_t size() const { return cur_.size(); }

    const T &
    read(size_t idx) const
    {
        noteRead();
        return cur_[checkIdx(idx)];
    }

    /**
     * Raw committed value of element @p idx, bypassing both journal
     * bookkeeping and noteRead(). Only for cross-domain boundary reads
     * of slots the owning domain provably is not writing this cycle
     * (TimedFifo payload/ready slots, whose occupancy guard already
     * imposes a one-cycle visibility delay — see timed_fifo.hh); the
     * caller must flag itself with detail::noteCrossRead().
     */
    const T &readDirect(size_t idx) const { return cur_[checkIdx(idx)]; }

    /** Value of element @p idx as of the start of the current cycle. */
    const T &
    readStable(size_t idx) const
    {
        noteRead();
        checkIdx(idx);
        if (historyCycle_ == kernelCycle()) {
            for (const auto &h : history_) {
                if (h.first == idx)
                    return h.second;
            }
        }
        return cur_[idx];
    }

    void
    write(size_t idx, const T &v)
    {
        checkIdx(idx);
        for (const auto &w : staged_) {
            if (w.first == idx)
                kfault(FaultKind::DesignError, name(),
                       "[%zu]: double write within one rule", idx);
        }
        // Touch before staging (see Reg::write).
        if (staged_.empty())
            kernel_.noteStateTouched(this);
        staged_.emplace_back(idx, v);
        detail::clearPadding(staged_.back().second);
    }

    void
    commitStaged() override
    {
        uint64_t now = kernelCycle();
        if (historyCycle_ != now) {
            historyCycle_ = now;
            history_.clear();
        }
        for (const auto &w : staged_) {
            bool seen = false;
            for (const auto &h : history_) {
                if (h.first == w.first) {
                    seen = true;
                    break;
                }
            }
            if (!seen)
                history_.emplace_back(w.first, cur_[w.first]);
            cur_[w.first] = w.second;
        }
        staged_.clear();
    }

    void abortStaged() override { staged_.clear(); }

    void
    save(std::vector<uint8_t> &out) const override
    {
        const uint8_t *p = reinterpret_cast<const uint8_t *>(cur_.data());
        out.insert(out.end(), p, p + sizeof(T) * cur_.size());
    }

    void
    restore(const uint8_t *&in) override
    {
        std::memcpy(cur_.data(), in, sizeof(T) * cur_.size());
        in += sizeof(T) * cur_.size();
        staged_.clear();
        history_.clear();
        historyCycle_ = ~0ull;
    }

  private:
    size_t
    checkIdx(size_t idx) const
    {
        if (idx >= cur_.size())
            kfault(FaultKind::DesignError, name(),
                   "index %zu out of range %zu", idx, cur_.size());
        return idx;
    }

    std::vector<T> cur_;
    std::vector<std::pair<size_t, T>> staged_;
    /// old values of elements overwritten this cycle (for readStable)
    std::vector<std::pair<size_t, T>> history_;
    uint64_t historyCycle_ = ~0ull;
};

} // namespace cmd
