#include "core/stats.hh"

namespace cmd {

Stat &
StatGroup::counter(const std::string &name)
{
    auto it = stats_.find(name);
    if (it == stats_.end()) {
        it = stats_.emplace(name, Stat{}).first;
        order_.emplace_back(name, &it->second);
    }
    return it->second;
}

bool
StatGroup::has(const std::string &name) const
{
    return stats_.count(name) != 0;
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &kv : order_)
        kv.second->reset();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &kv : order_) {
        os << prefix << '.' << kv.first << ' ' << kv.second->value()
           << '\n';
    }
}

} // namespace cmd
