#include "core/stats.hh"

#include <algorithm>
#include <cstdio>

namespace cmd {

Histogram::Histogram(uint64_t lo, uint64_t hi, uint32_t nbuckets)
    : lo_(lo), hi_(hi)
{
    if (nbuckets == 0)
        nbuckets = 1;
    if (hi_ <= lo_)
        hi_ = lo_ + nbuckets;
    width_ = std::max<uint64_t>(1, (hi_ - lo_) / nbuckets);
    // +1: the >= hi overflow bucket.
    buckets_.assign(nbuckets + 1, 0);
}

void
Histogram::sample(uint64_t v, uint64_t n)
{
    uint64_t idx;
    if (v < lo_)
        idx = 0;
    else if (v >= hi_)
        idx = buckets_.size() - 1;
    else
        idx = std::min<uint64_t>((v - lo_) / width_, buckets_.size() - 2);
    buckets_[idx] += n;
    count_ += n;
    sum_ += v * n;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = sum_ = max_ = 0;
    min_ = ~0ull;
}

std::string
Histogram::summary() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "count=%llu mean=%.2f min=%llu max=%llu",
                  (unsigned long long)count_, mean(),
                  (unsigned long long)(count_ ? min_ : 0),
                  (unsigned long long)max_);
    return buf;
}

std::string
Histogram::json() const
{
    std::string out = "{\"count\": " + std::to_string(count_) +
                      ", \"sum\": " + std::to_string(sum_) +
                      ", \"min\": " + std::to_string(count_ ? min_ : 0) +
                      ", \"max\": " + std::to_string(max_) +
                      ", \"mean\": " + jsonDouble(mean()) +
                      ", \"lo\": " + std::to_string(lo_) +
                      ", \"hi\": " + std::to_string(hi_) +
                      ", \"buckets\": [";
    for (size_t i = 0; i < buckets_.size(); i++) {
        if (i)
            out += ", ";
        out += std::to_string(buckets_[i]);
    }
    out += "]}";
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    // JSON has no inf/nan literals; clamp to null.
    if (buf[0] != '-' && (buf[0] < '0' || buf[0] > '9'))
        return "null";
    if (buf[0] == '-' && (buf[1] < '0' || buf[1] > '9'))
        return "null";
    return buf;
}

Stat &
StatGroup::counter(const std::string &name)
{
    auto it = stats_.find(name);
    if (it == stats_.end()) {
        it = stats_.emplace(name, Stat{}).first;
        order_.emplace_back(name, &it->second);
    }
    return it->second;
}

Histogram &
StatGroup::histogram(const std::string &name, uint64_t lo, uint64_t hi,
                     uint32_t nbuckets)
{
    auto it = histos_.find(name);
    if (it == histos_.end()) {
        it = histos_.emplace(name, Histogram(lo, hi, nbuckets)).first;
        histoOrder_.emplace_back(name, &it->second);
    }
    return it->second;
}

void
StatGroup::formula(const std::string &name, std::function<double()> fn)
{
    for (auto &kv : formulas_) {
        if (kv.first == name) {
            kv.second = std::move(fn);
            return;
        }
    }
    formulas_.emplace_back(name, std::move(fn));
}

bool
StatGroup::has(const std::string &name) const
{
    return stats_.count(name) != 0;
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0 : it->second.value();
}

const Histogram *
StatGroup::getHistogram(const std::string &name) const
{
    auto it = histos_.find(name);
    return it == histos_.end() ? nullptr : &it->second;
}

double
StatGroup::getFormula(const std::string &name) const
{
    for (const auto &kv : formulas_) {
        if (kv.first == name)
            return kv.second();
    }
    return 0;
}

void
StatGroup::resetAll()
{
    for (auto &kv : order_)
        kv.second->reset();
    for (auto &kv : histoOrder_)
        kv.second->reset();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &kv : order_) {
        os << prefix << '.' << kv.first << ' ' << kv.second->value()
           << '\n';
    }
    for (const auto &kv : histoOrder_) {
        os << prefix << '.' << kv.first << ' ' << kv.second->summary()
           << '\n';
    }
    for (const auto &kv : formulas_)
        os << prefix << '.' << kv.first << ' ' << kv.second() << '\n';
}

std::string
StatGroup::json() const
{
    std::string out = "{";
    bool first = true;
    auto key = [&](const std::string &name) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + jsonEscape(name) + "\": ";
    };
    for (const auto &kv : order_) {
        key(kv.first);
        out += std::to_string(kv.second->value());
    }
    for (const auto &kv : histoOrder_) {
        key(kv.first);
        out += kv.second->json();
    }
    for (const auto &kv : formulas_) {
        key(kv.first);
        out += jsonDouble(kv.second());
    }
    out += "}";
    return out;
}

} // namespace cmd
