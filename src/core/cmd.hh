/**
 * @file
 * Umbrella header for the CMD framework.
 *
 * Note one documented composition limit: calling both enq() and deq()
 * of the same Fifo from a single rule is unsupported (it double-writes
 * the occupancy register and raises a KernelFault); route pass-through
 * traffic through two rules, as hardware would pipeline it.
 */
#pragma once

#include "core/ehr.hh"
#include "core/fault.hh"
#include "core/fifo.hh"
#include "core/harden.hh"
#include "core/kernel.hh"
#include "core/log.hh"
#include "core/reg.hh"
#include "core/stats.hh"
#include "core/timed_fifo.hh"
