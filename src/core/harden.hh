/**
 * @file
 * Kernel hardening: deterministic fault injection, forward-progress
 * watchdog, and checkpoint-based crash recovery.
 *
 * The three pieces exploit machinery the kernel already has:
 *
 *  - FaultInjector perturbs a design only at commit boundaries
 *    (between cycles), through the byte-exact save/restore interface
 *    of StateBase, the ChannelPort fault hooks of TimedFifo, and
 *    Rule::setEnabled — so every injected fault respects rule
 *    atomicity and a campaign run remains a legal rule execution of
 *    *some* design, just not the intended one. Campaign plans are
 *    drawn from a seeded mt19937_64 over the registered state/channel/
 *    rule tables, so a (seed, design) pair always yields the same
 *    faults at the same cycles: bit-reproducible campaigns.
 *
 *  - Watchdog turns "the simulation stopped printing" into a
 *    structured KernelFault. It tracks per-domain rule-fire counts
 *    (scheduler-independent: domains exist under all SchedulerKinds)
 *    plus an optional architectural heartbeat (e.g. committed
 *    instructions) that also catches livelock, where rules spin
 *    without retiring anything. The fault names the most-starved
 *    domain and embeds Kernel::diagnosticReport() — awake sets, fifo
 *    occupancies, the merged last-N-fired ring.
 *
 *  - CheckpointManager persists Kernel::snapshot() plus an arbitrary
 *    payload (memory image, commit-stream digest) to disk with a
 *    checksummed header and atomic tmp+rename, so a run killed
 *    mid-flight resumes bit-exactly.
 *
 *  - HardenedRunner composes them: drive cycles, poll the watchdog,
 *    checkpoint periodically; on any KernelFault restore the last
 *    checkpoint (when one exists), degrade the scheduler
 *    Parallel -> EventDriven -> Exhaustive, and retry up to a cap
 *    before rethrowing with full diagnostics.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/fault.hh"
#include "core/kernel.hh"

namespace cmd {

// ------------------------------------------------------------ FaultInjector

/** What a single injected fault does. */
enum class FaultType : uint8_t {
    BitFlip,    ///< flip one bit of one registered state element
    MsgDrop,    ///< discard the head message of a TimedFifo
    MsgDelay,   ///< age the head message of a TimedFifo extra cycles
    GuardStuck, ///< force a rule's guard stuck-at-false for a window
};

const char *toString(FaultType t);

/** One planned fault: what, where, and at which commit boundary. */
struct FaultPlan
{
    FaultType type = FaultType::BitFlip;
    uint64_t cycle = 0;   ///< inject after this many executed cycles
    uint32_t target = 0;  ///< state / channel / rule index (by type)
    uint64_t bit = 0;     ///< BitFlip: bit offset into the saved bytes
    uint32_t param = 0;   ///< MsgDelay: extra cycles; GuardStuck: window
    std::string targetName;

    std::string describe() const;
};

/**
 * Seeded, deterministic fault-injection engine. All mutations happen
 * between cycles (commit boundaries); planCampaign() is a pure
 * function of (seed, n, maxCycle, design tables).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(Kernel &kernel) : kernel_(kernel) {}

    /**
     * Draw @p n faults with injection cycles uniform in [1, maxCycle],
     * targeting the design's registered states, channels, and rules.
     * Deterministic for a fixed seed and elaborated design. The plans
     * come back sorted by injection cycle.
     *
     * A non-empty @p stateFilter restricts the campaign to bit flips
     * in states whose name contains the filter substring — a focused
     * vulnerability slice of one structure (e.g. "hart0.prf" for a
     * register-file AVF campaign, where silent data corruptions
     * concentrate). Faults if nothing matches.
     */
    std::vector<FaultPlan> planCampaign(uint64_t seed, uint32_t n,
                                        uint64_t maxCycle,
                                        const std::string &stateFilter = "");

    /**
     * Draw @p n *timing-only* perturbations: MsgDelay faults over the
     * design's channels, injection cycles uniform in [1, maxCycle],
     * extra delays uniform in [1, maxDelay]. Unlike planCampaign()
     * these never corrupt data — TimedFifo::faultDelayHead() re-ages
     * the head message but leaves its payload untouched — so the plan
     * is a legal timing of the *intended* design, suitable for
     * schedule-space exploration (the litmus shaker) rather than
     * fault-tolerance campaigns. Own seed stream: the same seed given
     * to planCampaign() and planTimingCampaign() yields unrelated
     * plans, so the two users stop sharing one knob. Plans come back
     * sorted by injection cycle.
     */
    std::vector<FaultPlan> planTimingCampaign(uint64_t seed, uint32_t n,
                                              uint64_t maxCycle,
                                              uint32_t maxDelay = 32);

    /**
     * Apply one fault now (between cycles only). @return true if it
     * landed — a drop/delay on an empty channel, for example, has no
     * target in flight and reports false (the run counts as masked).
     */
    bool apply(const FaultPlan &p);

    /** End a GuardStuck window: re-enable the target rule. */
    void release(const FaultPlan &p);

    uint64_t appliedCount() const { return applied_; }

  private:
    Kernel &kernel_;
    uint64_t applied_ = 0;

    /** Bit-weight ceiling per state for flip-target selection. */
    static constexpr uint64_t kFlipWeightCap = 4096;

    /// saved-byte size of every state element (filled lazily; the
    /// sizes are fixed once the design is elaborated)
    std::vector<size_t> stateSizes_;
    /** Inclusive prefix sums of capped per-state bit weights. */
    std::vector<uint64_t> cumBits_;
    uint64_t totalBits_ = 0;

    void fillStateSizes();
};

// ---------------------------------------------------------------- Watchdog

/**
 * Forward-progress watchdog. Call observe() periodically from the
 * driving loop (between cycles); it throws KernelFault(Watchdog) when
 * no progress happened for stallCycles, naming the most-starved
 * domain and attaching Kernel::diagnosticReport() as the trace.
 *
 * Progress means: the optional heartbeat advanced (when one is set —
 * this also catches livelock), otherwise any rule fired anywhere.
 * Per-domain fire counts are tracked in both modes so the dump can
 * say which domain starved first; they work under every SchedulerKind
 * because domains are computed at elaboration regardless of scheduler.
 */
class Watchdog
{
  public:
    Watchdog(Kernel &kernel, uint64_t stallCycles);

    /**
     * Architectural progress counter (e.g. committed instructions).
     * With a heartbeat the watchdog trips on *its* stall even while
     * rules keep firing — the livelock case.
     */
    void setHeartbeat(std::function<uint64_t()> fn);

    /** Record progress; throw KernelFault(Watchdog) on a stall. */
    void observe();

    /** Re-baseline (after a checkpoint restore or scheduler switch). */
    void reset();

    uint64_t stallCycles() const { return stallCycles_; }

  private:
    uint64_t domainFired(uint32_t d) const;

    Kernel &kernel_;
    uint64_t stallCycles_;
    std::function<uint64_t()> heartbeat_;
    bool primed_ = false;
    uint64_t hbValue_ = 0;
    uint64_t hbProgressCycle_ = 0;
    std::vector<uint64_t> lastFired_;         ///< per-domain fire sums
    std::vector<uint64_t> lastProgressCycle_; ///< per-domain
};

// -------------------------------------------------------- CheckpointManager

/**
 * Checkpoint/restore-to-disk. File layout (little-endian):
 *
 *   magic "CMDCKPT1" | version u32 | cycle u64
 *   | kernLen u64 | kernel snapshot bytes
 *   | payloadLen u64 | payload bytes
 *   | fnv1a-64 checksum of everything above
 *
 * save() writes to "<path>.tmp" then renames, so a crash mid-write
 * never corrupts the last good checkpoint. load() returns false when
 * no checkpoint exists and throws KernelFault(Checkpoint) on a
 * truncated or corrupt file.
 */
class CheckpointManager
{
  public:
    CheckpointManager(Kernel &kernel, std::string path);

    /**
     * Extra bytes to carry alongside the kernel snapshot (physical
     * memory image, commit-stream digest, device state). The load hook
     * runs after the kernel snapshot was restored.
     */
    void setPayloadHooks(std::function<std::vector<uint8_t>()> save,
                         std::function<void(const std::vector<uint8_t> &)> load);

    /** Snapshot the kernel (+payload) to disk. Between cycles only. */
    void save();

    /** @return false when no checkpoint file exists. */
    bool load();

    /** True once save() succeeded at least once (or a file exists). */
    bool hasCheckpoint() const;

    const std::string &path() const { return path_; }
    uint64_t savedCount() const { return saves_; }

    /** FNV-1a 64 over a byte range (also used by tests/bench). */
    static uint64_t fnv1a(const uint8_t *p, size_t n);

  private:
    Kernel &kernel_;
    std::string path_;
    uint64_t saves_ = 0;
    std::function<std::vector<uint8_t>()> savePayload_;
    std::function<void(const std::vector<uint8_t> &)> loadPayload_;
};

// ----------------------------------------------------------- HardenedRunner

/** Knobs of HardenedRunner. */
struct HardenedConfig
{
    uint64_t watchdogStallCycles = 100000;
    /// cycles between watchdog polls (progress scan is O(rules))
    uint64_t watchdogPollEvery = 1024;
    uint64_t checkpointEvery = 0; ///< cycles between checkpoints; 0 off
    std::string checkpointPath;   ///< required when checkpointEvery > 0
    uint32_t maxFaultRetries = 3;
    bool degradeScheduler = true; ///< Parallel -> Event -> Exhaustive
};

/**
 * Drives a kernel with watchdog, periodic checkpoints, and graceful
 * degradation. run() behaves like Kernel::runUntil() but catches
 * KernelFaults: each one is logged, the last checkpoint (if any) is
 * restored, the scheduler is degraded one step, and the run resumes —
 * up to maxFaultRetries, after which the fault is rethrown.
 */
class HardenedRunner
{
  public:
    HardenedRunner(Kernel &kernel, HardenedConfig cfg);

    Watchdog &watchdog() { return watchdog_; }
    CheckpointManager *checkpoints() { return ckpt_ ? &*ckpt_ : nullptr; }

    /**
     * Run until @p done or until the kernel's cycle counter reaches
     * its pre-run value + @p maxCycles (an absolute target, so cycles
     * replayed after a checkpoint restore are not double-counted).
     * @return true if @p done was satisfied.
     */
    bool run(const std::function<bool()> &done, uint64_t maxCycles);

    uint32_t faultRetries() const { return retries_; }
    /** describe() of every fault absorbed by the degradation ladder. */
    const std::vector<std::string> &faultLog() const { return faultLog_; }

  private:
    void degrade();

    Kernel &kernel_;
    HardenedConfig cfg_;
    Watchdog watchdog_;
    std::optional<CheckpointManager> ckpt_;
    uint32_t retries_ = 0;
    std::vector<std::string> faultLog_;
};

// ------------------------------------------------------ campaign taxonomy

/**
 * Outcome of one fault-campaign run, judged against a golden
 * (uninjected) reference execution.
 */
enum class FaultOutcome : uint8_t {
    Masked,   ///< finished; architectural result identical to golden
    Detected, ///< surfaced as a KernelFault or a design self-check
    SDC,      ///< finished "successfully" with a divergent result
    Hang,     ///< watchdog tripped (deadlock/livelock) or cycle budget
};

const char *toString(FaultOutcome o);

} // namespace cmd
