/**
 * @file
 * KernelFault: the structured fault type of the hardening layer.
 *
 * Design and API errors inside src/core used to die on a raw panic()
 * (fprintf + abort), which left a wedged campaign run or a long
 * multicore simulation with nothing but a one-line message. Every such
 * site now raises a KernelFault instead: an exception carrying the
 * fault kind, the module/state it concerns, the rule and cycle it
 * happened under, and a recent-execution trace — uniform diagnostics
 * that a driver (System::run, HardenedRunner, a fault campaign) can
 * catch, classify, log, and recover from via checkpoint restore.
 *
 * The throwing helper kfault() is defined in kernel.cc so it can pull
 * the rule/cycle/trace context from the execution context that is
 * active on the calling thread; call sites only supply the kind, the
 * module (or state) name, and a printf-style message.
 */
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cmd {

/** Broad classification of a KernelFault. */
enum class FaultKind : uint8_t {
    DesignError, ///< the design violated CMD discipline (double write,
                 ///< undeclared method, conflicting calls, bad index)
    CrossDomain, ///< a rule touched another parallel domain's state
    ApiMisuse,   ///< framework API called out of phase (post-elab
                 ///< construction, nested atomics, ...)
    Watchdog,    ///< forward-progress watchdog or barrier timeout trip
    Checkpoint,  ///< checkpoint serialization/restore failure
};

const char *toString(FaultKind k);

/** Execution context captured at the fault site (best effort). */
struct FaultContext {
    std::string module; ///< module/state the fault concerns ("" if n/a)
    std::string rule;   ///< rule in flight ("" outside any rule)
    uint64_t cycle = 0; ///< kernel cycle at the fault ( 0 pre-elab )
    uint32_t domain = ~0u; ///< executing domain (~0 = main context)
    std::string trace;  ///< structured diagnostics (recent fires, ...)
};

/**
 * The structured fault. what() is the one-line headline; describe()
 * appends the captured context and trace for crash dumps.
 */
class KernelFault : public std::runtime_error
{
  public:
    KernelFault(FaultKind kind, std::string message, FaultContext ctx);

    FaultKind kind() const { return kind_; }
    const std::string &message() const { return message_; }
    const FaultContext &context() const { return ctx_; }

    /** Multi-line crash-dump form: headline + context + trace. */
    std::string describe() const;

  private:
    static std::string headline(FaultKind kind, const std::string &msg,
                                const FaultContext &ctx);

    FaultKind kind_;
    std::string message_;
    FaultContext ctx_;
};

/**
 * Raise a KernelFault of @p kind about @p module, capturing the rule,
 * cycle, domain, and recent-fire trace of the execution context active
 * on this thread. Defined in kernel.cc.
 */
[[noreturn]] void kfault(FaultKind kind, const std::string &module,
                         const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace cmd
