/**
 * @file
 * The CMD FIFO library: the latency-insensitive glue of the paper.
 *
 * Three classic variants, distinguished only by their conflict
 * matrices (the implementation realizes whichever intra-cycle order
 * the CM permits, because rules that share a cycle execute
 * sequentially and later rules observe earlier commits):
 *
 *  - PipelineFifo: deq < enq. A full FIFO admits an enq in the same
 *    cycle as a deq; data spends at least one cycle in the FIFO.
 *  - BypassFifo:   enq < deq. An empty FIFO can be enqueued and
 *    dequeued in the same cycle (combinational bypass).
 *  - CfFifo:       enq CF deq. Both methods behave as if they saw the
 *    state at the start of the cycle; their effects commute. Used
 *    where two ends of a queue must not be coupled into any ordering
 *    (e.g. between independently scheduled subsystems).
 *
 * Guard probes (canEnq/canDeq/size) are plain combinational reads for
 * use in Rule::when() fast guards and testbenches; rule bodies rely on
 * the implicit guards of enq/deq/first via cmd::require().
 */
#pragma once

#include <optional>

#include "core/kernel.hh"
#include "core/reg.hh"

namespace cmd {

/** CM flavor of a Fifo. */
enum class FifoKind {
    Pipeline,
    Bypass,
    Cf,
};

/**
 * A bounded FIFO of trivially copyable elements, exposed as a CMD
 * module with methods enq, deq, first, and clear.
 */
template <typename T>
class Fifo : public Module
{
  public:
    Fifo(Kernel &kernel, const std::string &name, uint32_t capacity,
         FifoKind kind)
        : Module(kernel, name, Conflict::C),
          enqM(method("enq")), deqM(method("deq")), firstM(method("first")),
          clearM(method("clear")), kind_(kind), cap_(capacity),
          data_(kernel, name + ".data", capacity),
          head_(kernel, name + ".head", 0),
          tail_(kernel, name + ".tail", 0),
          count_(kernel, name + ".count", 0)
    {
        if (capacity == 0)
            kfault(FaultKind::DesignError, this->name(),
                   "zero-capacity FIFO");
        if (kind == FifoKind::Cf && capacity < 2)
            warn("%s: CF FIFO of capacity 1 can never enq and deq "
                 "in the same cycle", this->name().c_str());
        switch (kind_) {
          case FifoKind::Pipeline:
            lt(deqM, enqM);
            lt(firstM, enqM);
            lt(firstM, deqM);
            break;
          case FifoKind::Bypass:
            lt(enqM, deqM);
            lt(enqM, firstM);
            lt(firstM, deqM);
            break;
          case FifoKind::Cf:
            cf(enqM, deqM);
            cf(enqM, firstM);
            cf(firstM, deqM);
            break;
        }
        selfCf(firstM);
        // clear defaults to C against everything (flush semantics).
    }

    uint32_t capacity() const { return cap_; }

    // ---- combinational probes (for when() guards and testbenches)
    bool canEnq() const { return guardCount() < cap_; }
    bool canDeq() const { return guardCount() > 0; }
    bool notEmpty() const { return canDeq(); }
    bool notFull() const { return canEnq(); }
    uint32_t size() const { return count_.read(); }

    // ---- interface methods
    /** Append an element; guarded by not-full. */
    void
    enq(const T &v)
    {
        enqM();
        require(guardCount() < cap_);
        uint32_t t = kind_ == FifoKind::Cf ? tail_.readStable()
                                           : tail_.read();
        data_.write(t, v);
        tail_.write(next(t));
        count_.write(count_.read() + 1);
    }

    /** Remove and return the oldest element; guarded by not-empty. */
    T
    deq()
    {
        deqM();
        require(guardCount() > 0);
        uint32_t h = kind_ == FifoKind::Cf ? head_.readStable()
                                           : head_.read();
        T v = kind_ == FifoKind::Cf ? data_.readStable(h) : data_.read(h);
        head_.write(next(h));
        count_.write(count_.read() - 1);
        return v;
    }

    /** The oldest element without removing it; guarded by not-empty. */
    T
    first()
    {
        firstM();
        require(guardCount() > 0);
        uint32_t h = kind_ == FifoKind::Cf ? head_.readStable()
                                           : head_.read();
        return kind_ == FifoKind::Cf ? data_.readStable(h) : data_.read(h);
    }

    /** Discard all contents (wrong-path flush). */
    void
    clear()
    {
        clearM();
        head_.write(0);
        tail_.write(0);
        count_.write(0);
    }

    Method &enqM, &deqM, &firstM, &clearM;

  private:
    uint32_t next(uint32_t i) const { return i + 1 == cap_ ? 0 : i + 1; }

    uint32_t
    guardCount() const
    {
        return kind_ == FifoKind::Cf ? count_.readStable() : count_.read();
    }

    FifoKind kind_;
    uint32_t cap_;
    RegArray<T> data_;
    Reg<uint32_t> head_, tail_, count_;
};

template <typename T>
class PipelineFifo : public Fifo<T>
{
  public:
    PipelineFifo(Kernel &k, const std::string &name, uint32_t capacity)
        : Fifo<T>(k, name, capacity, FifoKind::Pipeline)
    {
    }
};

template <typename T>
class BypassFifo : public Fifo<T>
{
  public:
    BypassFifo(Kernel &k, const std::string &name, uint32_t capacity)
        : Fifo<T>(k, name, capacity, FifoKind::Bypass)
    {
    }
};

template <typename T>
class CfFifo : public Fifo<T>
{
  public:
    CfFifo(Kernel &k, const std::string &name, uint32_t capacity)
        : Fifo<T>(k, name, capacity, FifoKind::Cf)
    {
    }
};

} // namespace cmd
