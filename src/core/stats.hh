/**
 * @file
 * Lightweight statistics package for CMD designs.
 *
 * Modules create named counters, histograms and derived (formula)
 * statistics inside a StatGroup; the group can be dumped as text or
 * JSON, or walked programmatically by benchmark harnesses. Values are
 * plain host-side bookkeeping — they are NOT architectural state and
 * never enter kernel snapshots, so instrumenting a design cannot
 * perturb the lockstep digest comparisons.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cmd {

/** A single monotonically updated 64-bit statistic. */
class Stat
{
  public:
    Stat() = default;

    void inc(uint64_t n = 1) { value_ += n; }
    void set(uint64_t v) { value_ = v; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * A linear-bucketed histogram over [lo, hi): sample values below lo
 * land in the first bucket, values at or above hi in the overflow
 * bucket. Tracks count/sum/min/max alongside the bucket array, so a
 * reader can recover the mean without re-walking samples.
 */
class Histogram
{
  public:
    Histogram(uint64_t lo, uint64_t hi, uint32_t nbuckets);

    void sample(uint64_t v, uint64_t n = 1);
    void reset();

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return min_; }
    uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / double(count_) : 0; }
    uint64_t lo() const { return lo_; }
    uint64_t hi() const { return hi_; }
    /** Bucket counts; back() is the >= hi overflow bucket. */
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    /** Inclusive lower bound of bucket @p i. */
    uint64_t bucketLo(uint32_t i) const { return lo_ + i * width_; }

    /** "count=... mean=... [lo,hi) buckets" one-liner. */
    std::string summary() const;
    /** JSON object: {"count":..,"sum":..,...,"buckets":[..]}. */
    std::string json() const;

  private:
    uint64_t lo_, hi_, width_;
    uint64_t count_ = 0, sum_ = 0;
    uint64_t min_ = ~0ull, max_ = 0;
    std::vector<uint64_t> buckets_;
};

/** Minimal JSON string escaping (quotes and backslashes). */
std::string jsonEscape(const std::string &s);
/** Format a double the way the stats JSON dumps do. */
std::string jsonDouble(double v);

/**
 * A named collection of statistics. Hierarchy is by dotted names;
 * groups are cheap and live for the life of the simulation.
 */
class StatGroup
{
  public:
    /** Create or fetch a counter named @p name within this group. */
    Stat &counter(const std::string &name);

    /** Create or fetch a histogram (first call fixes the shape). */
    Histogram &histogram(const std::string &name, uint64_t lo, uint64_t hi,
                         uint32_t nbuckets);

    /**
     * Register a derived statistic: @p fn is evaluated at dump time
     * (e.g. IPC = instret/cycles, MPKI = 1000*misses/instret).
     * Re-registering a name replaces the formula.
     */
    void formula(const std::string &name, std::function<double()> fn);

    /** True if a counter with this name exists. */
    bool has(const std::string &name) const;

    /** Value of an existing counter; 0 if absent. */
    uint64_t get(const std::string &name) const;

    /** Existing histogram, or null. */
    const Histogram *getHistogram(const std::string &name) const;

    /** Value of a formula statistic; 0 if absent. */
    double getFormula(const std::string &name) const;

    /** All counters in insertion order. */
    const std::vector<std::pair<std::string, Stat *>> &all() const
    {
        return order_;
    }

    /**
     * Reset every counter and histogram in the group to zero (formulas
     * recompute from their inputs and need no reset). This is the
     * warmup-window hook: System::statsResetAtCycle calls it on every
     * module group so post-warmup dumps exclude the cold caches.
     */
    void resetAll();

    /** Dump "prefix.name value" lines (counters, then histograms and
     *  formula values). */
    void dump(std::ostream &os, const std::string &prefix) const;

    /**
     * One JSON object holding every counter, histogram and formula of
     * the group. This is the machine-readable path shared with
     * bench/bench_common.hh (JsonObject::putRaw), so benches embed
     * module stats without hand-assembling JSON.
     */
    std::string json() const;

  private:
    std::map<std::string, Stat> stats_;
    std::vector<std::pair<std::string, Stat *>> order_;
    std::map<std::string, Histogram> histos_;
    std::vector<std::pair<std::string, Histogram *>> histoOrder_;
    std::vector<std::pair<std::string, std::function<double()>>> formulas_;
};

} // namespace cmd
