/**
 * @file
 * Lightweight statistics package for CMD designs.
 *
 * Modules create named counters inside a StatGroup; the group can be
 * dumped as text or walked programmatically by benchmark harnesses.
 */
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cmd {

/** A single monotonically updated 64-bit statistic. */
class Stat
{
  public:
    Stat() = default;

    void inc(uint64_t n = 1) { value_ += n; }
    void set(uint64_t v) { value_ = v; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * A named collection of statistics. Hierarchy is by dotted names;
 * groups are cheap and live for the life of the simulation.
 */
class StatGroup
{
  public:
    /** Create or fetch a counter named @p name within this group. */
    Stat &counter(const std::string &name);

    /** True if a counter with this name exists. */
    bool has(const std::string &name) const;

    /** Value of an existing counter; 0 if absent. */
    uint64_t get(const std::string &name) const;

    /** All counters in insertion order. */
    const std::vector<std::pair<std::string, Stat *>> &all() const
    {
        return order_;
    }

    /** Reset every counter in the group to zero. */
    void resetAll();

    /** Dump "prefix.name value" lines. */
    void dump(std::ostream &os, const std::string &prefix) const;

  private:
    std::map<std::string, Stat> stats_;
    std::vector<std::pair<std::string, Stat *>> order_;
};

} // namespace cmd
