#include "core/harden.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

namespace cmd {

const char *
toString(FaultType t)
{
    switch (t) {
      case FaultType::BitFlip:
        return "bit-flip";
      case FaultType::MsgDrop:
        return "msg-drop";
      case FaultType::MsgDelay:
        return "msg-delay";
      case FaultType::GuardStuck:
        return "guard-stuck";
    }
    return "?";
}

const char *
toString(FaultOutcome o)
{
    switch (o) {
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::Detected:
        return "detected";
      case FaultOutcome::SDC:
        return "sdc";
      case FaultOutcome::Hang:
        return "hang";
    }
    return "?";
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << toString(type) << " @" << cycle << " " << targetName;
    if (type == FaultType::BitFlip)
        os << " bit " << bit;
    else if (type == FaultType::MsgDelay)
        os << " +" << param << " cycles";
    else if (type == FaultType::GuardStuck)
        os << " for " << param << " cycles";
    return os.str();
}

// ------------------------------------------------------------ FaultInjector

void
FaultInjector::fillStateSizes()
{
    if (stateSizes_.size() == kernel_.stateCount())
        return;
    stateSizes_.clear();
    cumBits_.clear();
    totalBits_ = 0;
    std::vector<uint8_t> buf;
    for (uint32_t i = 0; i < kernel_.stateCount(); i++) {
        buf.clear();
        kernel_.stateAt(i)->save(buf);
        stateSizes_.push_back(buf.size());
        // Weight target selection by bit count so a wide register file
        // draws proportionally more strikes than a one-bit flag, but
        // cap the weight so megabit SRAM arrays (L2 data) -- mostly
        // cold lines on any given workload -- don't swallow the whole
        // campaign.
        totalBits_ += std::min<uint64_t>(buf.size() * 8, kFlipWeightCap);
        cumBits_.push_back(totalBits_);
    }
}

std::vector<FaultPlan>
FaultInjector::planCampaign(uint64_t seed, uint32_t n, uint64_t maxCycle,
                            const std::string &stateFilter)
{
    if (!kernel_.elaborated())
        kfault(FaultKind::ApiMisuse, "injector",
               "planCampaign() before elaboration");
    if (kernel_.stateCount() == 0)
        kfault(FaultKind::ApiMisuse, "injector",
               "planCampaign() on a design with no registered state");
    fillStateSizes();

    // A focused slice: bit flips only, confined to the states whose
    // name matches the filter, weighted by the same capped bit counts.
    std::vector<uint32_t> pool;     // state indices in the slice
    std::vector<uint64_t> poolCum;  // capped cumulative weights
    uint64_t poolTotal = 0;
    if (!stateFilter.empty()) {
        for (uint32_t i = 0; i < kernel_.stateCount(); i++) {
            if (kernel_.stateAt(i)->name().find(stateFilter) ==
                std::string::npos)
                continue;
            pool.push_back(i);
            poolTotal +=
                std::min<uint64_t>(stateSizes_[i] * 8, kFlipWeightCap);
            poolCum.push_back(poolTotal);
        }
        if (pool.empty())
            kfault(FaultKind::ApiMisuse, "injector",
                   "planCampaign() filter \"%s\" matches no state",
                   stateFilter.c_str());
    }

    std::mt19937_64 rng(seed);
    auto pick = [&rng](uint64_t bound) {
        // Modulo bias is irrelevant here; what matters is that the
        // same seed always draws the same sequence.
        return bound ? rng() % bound : 0;
    };

    uint32_t nStates = kernel_.stateCount();
    uint32_t nChannels = uint32_t(kernel_.channelPorts().size());
    uint32_t nRules = uint32_t(kernel_.rules().size());

    std::vector<FaultPlan> plans;
    plans.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
        FaultPlan p;
        // Weighted mix: flips dominate (they model particle strikes on
        // registered state); channel and guard faults model lost/late
        // messages and stuck control. A filtered slice is flips only.
        uint64_t roll = pool.empty() ? pick(100) : 0;
        if (roll < 55 || (nChannels == 0 && roll < 85) ||
            (nChannels == 0 && nRules == 0)) {
            p.type = FaultType::BitFlip;
        } else if (roll < 70 && nChannels) {
            p.type = FaultType::MsgDrop;
        } else if (roll < 85 && nChannels) {
            p.type = FaultType::MsgDelay;
        } else {
            p.type = FaultType::GuardStuck;
        }
        p.cycle = 1 + pick(maxCycle);
        switch (p.type) {
          case FaultType::BitFlip: {
            // Pick the state by (capped) bit weight, then the bit
            // uniformly within it -- every bit of every state stays
            // reachable.
            const auto &cum = pool.empty() ? cumBits_ : poolCum;
            uint64_t tot = pool.empty() ? totalBits_ : poolTotal;
            uint64_t b = pick(std::max<uint64_t>(1, tot));
            uint32_t s = uint32_t(
                std::upper_bound(cum.begin(), cum.end(), b) -
                cum.begin());
            s = std::min(s, uint32_t(cum.size()) - 1);
            p.target = pool.empty() ? s : pool[s];
            p.bit = pick(std::max<uint64_t>(1, stateSizes_[p.target] * 8));
            p.targetName = kernel_.stateAt(p.target)->name();
            break;
          }
          case FaultType::MsgDrop:
          case FaultType::MsgDelay:
            p.target = uint32_t(pick(nChannels));
            p.param = 1 + uint32_t(pick(64));
            p.targetName =
                kernel_.channelPorts()[p.target]->channelName();
            break;
          case FaultType::GuardStuck:
            p.target = uint32_t(pick(nRules));
            p.param = 16 + uint32_t(pick(240));
            p.targetName = kernel_.rules()[p.target]->name();
            break;
        }
        plans.push_back(std::move(p));
    }
    std::stable_sort(plans.begin(), plans.end(),
                     [](const FaultPlan &a, const FaultPlan &b) {
                         return a.cycle < b.cycle;
                     });
    return plans;
}

std::vector<FaultPlan>
FaultInjector::planTimingCampaign(uint64_t seed, uint32_t n,
                                  uint64_t maxCycle, uint32_t maxDelay)
{
    if (!kernel_.elaborated())
        kfault(FaultKind::ApiMisuse, "injector",
               "planTimingCampaign() before elaboration");
    uint32_t nChannels = uint32_t(kernel_.channelPorts().size());
    if (nChannels == 0)
        kfault(FaultKind::ApiMisuse, "injector",
               "planTimingCampaign() on a design with no channels");
    // Decorrelate from planCampaign(): a caller handing both planners
    // the same seed gets two unrelated streams.
    std::mt19937_64 rng(seed ^ 0xD31A5EEDULL); // "delay seed"
    auto pick = [&rng](uint64_t bound) {
        return bound ? rng() % bound : 0;
    };
    std::vector<FaultPlan> plans;
    plans.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
        FaultPlan p;
        p.type = FaultType::MsgDelay;
        p.cycle = 1 + pick(maxCycle);
        p.target = uint32_t(pick(nChannels));
        p.param = 1 + uint32_t(pick(std::max<uint32_t>(1, maxDelay)));
        p.targetName = kernel_.channelPorts()[p.target]->channelName();
        plans.push_back(std::move(p));
    }
    std::stable_sort(plans.begin(), plans.end(),
                     [](const FaultPlan &a, const FaultPlan &b) {
                         return a.cycle < b.cycle;
                     });
    return plans;
}

bool
FaultInjector::apply(const FaultPlan &p)
{
    if (kernel_.inRule())
        kfault(FaultKind::ApiMisuse, "injector", "apply() inside a rule");
    switch (p.type) {
      case FaultType::BitFlip: {
        if (p.target >= kernel_.stateCount())
            return false;
        StateBase *s = kernel_.stateAt(p.target);
        std::vector<uint8_t> buf;
        s->save(buf);
        if (buf.empty())
            return false;
        uint64_t bit = p.bit % (buf.size() * 8);
        buf[bit / 8] ^= uint8_t(1u << (bit % 8));
        const uint8_t *ptr = buf.data();
        s->restore(ptr);
        kernel_.pokeState(s);
        applied_++;
        return true;
      }
      case FaultType::MsgDrop: {
        const auto &chans = kernel_.channelPorts();
        if (chans.empty())
            return false;
        bool hit = chans[p.target % chans.size()]->faultDropHead();
        applied_ += hit;
        return hit;
      }
      case FaultType::MsgDelay: {
        const auto &chans = kernel_.channelPorts();
        if (chans.empty())
            return false;
        bool hit =
            chans[p.target % chans.size()]->faultDelayHead(p.param);
        applied_ += hit;
        return hit;
      }
      case FaultType::GuardStuck: {
        const auto &rules = kernel_.rules();
        if (rules.empty())
            return false;
        Rule *r = rules[p.target % rules.size()];
        if (!r->enabled())
            return false;
        r->setEnabled(false);
        applied_++;
        return true;
      }
    }
    return false;
}

void
FaultInjector::release(const FaultPlan &p)
{
    if (p.type != FaultType::GuardStuck)
        return;
    const auto &rules = kernel_.rules();
    if (!rules.empty())
        rules[p.target % rules.size()]->setEnabled(true);
}

// ---------------------------------------------------------------- Watchdog

Watchdog::Watchdog(Kernel &kernel, uint64_t stallCycles)
    : kernel_(kernel), stallCycles_(stallCycles)
{
}

void
Watchdog::setHeartbeat(std::function<uint64_t()> fn)
{
    heartbeat_ = std::move(fn);
    primed_ = false;
}

uint64_t
Watchdog::domainFired(uint32_t d) const
{
    uint64_t total = 0;
    for (const Rule *r : kernel_.rules()) {
        if (kernel_.domainOf(*r) == d)
            total += r->firedCount();
    }
    return total;
}

void
Watchdog::reset()
{
    primed_ = false;
}

void
Watchdog::observe()
{
    if (!stallCycles_)
        return; // 0 = disabled
    uint64_t cyc = kernel_.cycleCount();
    uint32_t nDomains = kernel_.domainCount();
    if (!primed_ || lastFired_.size() != nDomains) {
        primed_ = true;
        lastFired_.assign(nDomains, 0);
        for (uint32_t d = 0; d < nDomains; d++)
            lastFired_[d] = domainFired(d);
        lastProgressCycle_.assign(nDomains, cyc);
        if (heartbeat_)
            hbValue_ = heartbeat_();
        hbProgressCycle_ = cyc;
        return;
    }

    bool anyFired = false;
    for (uint32_t d = 0; d < nDomains; d++) {
        uint64_t now = domainFired(d);
        if (now != lastFired_[d]) {
            lastFired_[d] = now;
            lastProgressCycle_[d] = cyc;
            anyFired = true;
        }
    }
    if (heartbeat_) {
        uint64_t hb = heartbeat_();
        if (hb != hbValue_) {
            hbValue_ = hb;
            hbProgressCycle_ = cyc;
        }
    }

    // Heartbeat mode trips on architectural stall (catches livelock:
    // rules fire but nothing retires); otherwise trip when no rule
    // fired anywhere for the whole window.
    bool stalled = heartbeat_
                       ? cyc - hbProgressCycle_ >= stallCycles_
                       : !anyFired && cyc - *std::max_element(
                                                lastProgressCycle_.begin(),
                                                lastProgressCycle_.end()) >=
                                          stallCycles_;
    if (!stalled)
        return;

    // Name the domain that has been starved the longest.
    uint32_t starved = 0;
    for (uint32_t d = 1; d < nDomains; d++) {
        if (lastProgressCycle_[d] < lastProgressCycle_[starved])
            starved = d;
    }
    FaultContext fc;
    fc.module = "watchdog";
    fc.cycle = cyc;
    fc.domain = starved;
    fc.trace = kernel_.diagnosticReport();
    std::ostringstream msg;
    msg << "no forward progress for "
        << (cyc - (heartbeat_ ? hbProgressCycle_
                              : lastProgressCycle_[starved]))
        << " cycles (threshold " << stallCycles_ << "); starved domain "
        << starved << " (" << kernel_.domainName(starved) << "), idle "
        << (cyc - lastProgressCycle_[starved]) << " cycles";
    throw KernelFault(FaultKind::Watchdog, msg.str(), std::move(fc));
}

// -------------------------------------------------------- CheckpointManager

namespace {
constexpr char kCkptMagic[8] = {'C', 'M', 'D', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kCkptVersion = 1;

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out.push_back(uint8_t(v >> (8 * i)));
}

uint64_t
get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= uint64_t(p[i]) << (8 * i);
    return v;
}
} // namespace

uint64_t
CheckpointManager::fnv1a(const uint8_t *p, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

CheckpointManager::CheckpointManager(Kernel &kernel, std::string path)
    : kernel_(kernel), path_(std::move(path))
{
}

void
CheckpointManager::setPayloadHooks(
    std::function<std::vector<uint8_t>()> save,
    std::function<void(const std::vector<uint8_t> &)> load)
{
    savePayload_ = std::move(save);
    loadPayload_ = std::move(load);
}

void
CheckpointManager::save()
{
    std::vector<uint8_t> kern = kernel_.snapshot();
    std::vector<uint8_t> payload;
    if (savePayload_)
        payload = savePayload_();

    std::vector<uint8_t> out;
    out.reserve(kern.size() + payload.size() + 64);
    out.insert(out.end(), kCkptMagic, kCkptMagic + 8);
    for (int i = 0; i < 4; i++)
        out.push_back(uint8_t(kCkptVersion >> (8 * i)));
    put64(out, kernel_.cycleCount());
    put64(out, kern.size());
    out.insert(out.end(), kern.begin(), kern.end());
    put64(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    put64(out, fnv1a(out.data(), out.size()));

    std::string tmp = path_ + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            kfault(FaultKind::Checkpoint, path_,
                   "cannot open '%s' for writing", tmp.c_str());
        f.write(reinterpret_cast<const char *>(out.data()),
                std::streamsize(out.size()));
        if (!f)
            kfault(FaultKind::Checkpoint, path_, "short write to '%s'",
                   tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        kfault(FaultKind::Checkpoint, path_, "rename '%s' failed",
               tmp.c_str());
    saves_++;
}

bool
CheckpointManager::hasCheckpoint() const
{
    if (saves_)
        return true;
    std::ifstream f(path_, std::ios::binary);
    return f.good();
}

bool
CheckpointManager::load()
{
    std::ifstream f(path_, std::ios::binary);
    if (!f)
        return false;
    std::vector<uint8_t> in((std::istreambuf_iterator<char>(f)),
                            std::istreambuf_iterator<char>());
    // magic + version + cycle + two lengths + checksum
    if (in.size() < 8 + 4 + 8 + 8 + 8 + 8)
        kfault(FaultKind::Checkpoint, path_, "checkpoint truncated (%zu B)",
               in.size());
    if (std::memcmp(in.data(), kCkptMagic, 8) != 0)
        kfault(FaultKind::Checkpoint, path_, "bad checkpoint magic");
    uint64_t sum = get64(in.data() + in.size() - 8);
    if (sum != fnv1a(in.data(), in.size() - 8))
        kfault(FaultKind::Checkpoint, path_,
               "checkpoint checksum mismatch (corrupt file)");

    const uint8_t *p = in.data() + 8;
    uint32_t version = 0;
    for (int i = 0; i < 4; i++)
        version |= uint32_t(p[i]) << (8 * i);
    p += 4;
    if (version != kCkptVersion)
        kfault(FaultKind::Checkpoint, path_,
               "unsupported checkpoint version %u", version);
    p += 8; // cycle (informational; the kernel snapshot carries it too)
    uint64_t kernLen = get64(p);
    p += 8;
    const uint8_t *end = in.data() + in.size() - 8;
    if (p + kernLen + 8 > end)
        kfault(FaultKind::Checkpoint, path_, "checkpoint lengths invalid");
    std::vector<uint8_t> kern(p, p + kernLen);
    p += kernLen;
    uint64_t payloadLen = get64(p);
    p += 8;
    if (p + payloadLen != end)
        kfault(FaultKind::Checkpoint, path_, "checkpoint lengths invalid");

    kernel_.restore(kern);
    if (loadPayload_)
        loadPayload_(std::vector<uint8_t>(p, p + payloadLen));
    return true;
}

// ----------------------------------------------------------- HardenedRunner

HardenedRunner::HardenedRunner(Kernel &kernel, HardenedConfig cfg)
    : kernel_(kernel), cfg_(std::move(cfg)),
      watchdog_(kernel, cfg_.watchdogStallCycles)
{
    if (cfg_.checkpointEvery && cfg_.checkpointPath.empty())
        kfault(FaultKind::ApiMisuse, "runner",
               "checkpointEvery set without a checkpointPath");
    if (!cfg_.checkpointPath.empty())
        ckpt_.emplace(kernel, cfg_.checkpointPath);
}

void
HardenedRunner::degrade()
{
    switch (kernel_.scheduler()) {
      case SchedulerKind::Parallel:
        // Give straggler workers a bounded window to finish their
        // slice of the aborted cycle so sequential execution does not
        // overlap their commit bookkeeping. A truly wedged rule never
        // quiesces; don't block recovery on it.
        for (int i = 0; i < 200 && !kernel_.parallelQuiesced(); i++)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        kernel_.setScheduler(SchedulerKind::EventDriven);
        break;
      case SchedulerKind::Compiled:
        // The compiled fast path trades enforcement for speed on the
        // strength of an elaboration-time proof; after a fault, fall
        // back to the fully checked dynamic scheduler.
        kernel_.setScheduler(SchedulerKind::EventDriven);
        break;
      case SchedulerKind::EventDriven:
        kernel_.setScheduler(SchedulerKind::Exhaustive);
        break;
      case SchedulerKind::Exhaustive:
        break; // nowhere left to go; retries still bound the loop
    }
}

bool
HardenedRunner::run(const std::function<bool()> &done, uint64_t maxCycles)
{
    // Absolute cycle target: cycles re-executed after a checkpoint
    // restore do not shrink the budget (the counter rewinds with the
    // snapshot), so an uninterrupted and a restored run cover the
    // same cycle range.
    const uint64_t target = kernel_.cycleCount() + maxCycles;
    uint64_t sincePoll = 0;
    while (true) {
        try {
            while (kernel_.cycleCount() < target) {
                if (done())
                    return true;
                // Lookahead-aware stepping: advance by the kernel's
                // current sync stride (1 under sequential schedulers
                // or per-cycle observers — exactly the old loop), but
                // never past the target or across a checkpoint
                // boundary, so checkpoints land exactly on multiples
                // of checkpointEvery — which are sync epochs, the only
                // points where every domain's state is coherent. done()
                // is polled between windows; it may overshoot its
                // condition by at most stride-1 cycles.
                uint64_t step = kernel_.syncStride();
                if (step > target - kernel_.cycleCount())
                    step = target - kernel_.cycleCount();
                if (cfg_.checkpointEvery && ckpt_) {
                    uint64_t toCkpt =
                        cfg_.checkpointEvery -
                        (kernel_.cycleCount() % cfg_.checkpointEvery);
                    if (step > toCkpt)
                        step = toCkpt;
                }
                kernel_.run(step);
                if (cfg_.checkpointEvery && ckpt_ &&
                    kernel_.cycleCount() % cfg_.checkpointEvery == 0) {
                    ckpt_->save();
                }
                sincePoll += step;
                if (sincePoll >= cfg_.watchdogPollEvery) {
                    sincePoll = 0;
                    watchdog_.observe();
                }
            }
            return done();
        } catch (const KernelFault &f) {
            faultLog_.push_back(f.describe());
            if (retries_ >= cfg_.maxFaultRetries)
                throw;
            retries_++;
            if (cfg_.degradeScheduler)
                degrade();
            // Rewind to the last good checkpoint when one exists;
            // otherwise resume from the current (rolled-back) state —
            // tryFire aborts the faulting rule's staged writes, so the
            // design still sits at its last committed boundary.
            if (ckpt_ && ckpt_->hasCheckpoint())
                ckpt_->load();
            watchdog_.reset();
            sincePoll = 0;
        }
    }
}

} // namespace cmd
