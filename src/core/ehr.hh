/**
 * @file
 * Ehr<T>: an Ephemeral History Register (Rosenband, MEMOCODE'04).
 *
 * The paper builds modules with desired conflict matrices using EHRs:
 * port i of an EHR reads the value as updated by writes to ports < i
 * in the same cycle. In this embedded framework, cross-rule intra-
 * cycle forwarding already falls out of sequential rule execution, so
 * the Ehr's remaining job is *intra-rule* forwarding: within a single
 * atomic action, read(i) observes write(j, v) for j < i. This is how a
 * module implements a method pair whose net effect must be
 * read-after-write inside one action (e.g. a one-rule enq+deq).
 *
 * Ehrs are never domain-boundary state: intra-cycle forwarding is by
 * definition same-cycle coupling, so an EHR shared by two rules always
 * pulls them into one parallel-scheduler domain, and a cross-domain
 * EHR access is rejected at runtime like any other state element
 * (every read funnels through noteRead()). Cross-domain communication
 * goes through TimedFifo boundaries instead.
 */
#pragma once

#include <cstring>
#include <type_traits>
#include <vector>

#include "core/kernel.hh"

namespace cmd {

template <typename T>
class Ehr : public StateBase
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "Ehr<T> requires trivially copyable T");

  public:
    Ehr(Kernel &kernel, std::string name, uint32_t ports, T init = T{})
        : StateBase(kernel, std::move(name)), cur_(detail::cleared(init)),
          staged_(ports), valid_(ports, false)
    {
        if (ports == 0 || ports > 16)
            kfault(FaultKind::DesignError, this->name(),
                   "unreasonable EHR port count %u", ports);
    }

    uint32_t ports() const { return static_cast<uint32_t>(staged_.size()); }

    /**
     * Read through port @p p: latest same-rule write to a port < p, or
     * the committed value.
     */
    const T &
    read(uint32_t p) const
    {
        noteRead();
        checkPort(p);
        for (uint32_t q = p; q-- > 0;) {
            if (valid_[q])
                return staged_[q];
        }
        return cur_;
    }

    /** Stage a write through port @p p (at most one per rule). */
    void
    write(uint32_t p, const T &v)
    {
        checkPort(p);
        if (valid_[p])
            kfault(FaultKind::DesignError, name(),
                   "double write on EHR port %u", p);
        // Touch before staging (see Reg::write).
        if (!touched())
            kernel_.noteStateTouched(this);
        staged_[p] = v;
        detail::clearPadding(staged_[p]);
        valid_[p] = true;
    }

    void
    commitStaged() override
    {
        // Highest-numbered written port determines the final value.
        for (uint32_t q = ports(); q-- > 0;) {
            if (valid_[q]) {
                cur_ = staged_[q];
                break;
            }
        }
        std::fill(valid_.begin(), valid_.end(), false);
    }

    void
    abortStaged() override
    {
        std::fill(valid_.begin(), valid_.end(), false);
    }

    void
    save(std::vector<uint8_t> &out) const override
    {
        const uint8_t *p = reinterpret_cast<const uint8_t *>(&cur_);
        out.insert(out.end(), p, p + sizeof(T));
    }

    void
    restore(const uint8_t *&in) override
    {
        std::memcpy(&cur_, in, sizeof(T));
        in += sizeof(T);
        std::fill(valid_.begin(), valid_.end(), false);
    }

  private:
    bool
    touched() const
    {
        for (bool v : valid_) {
            if (v)
                return true;
        }
        return false;
    }

    void
    checkPort(uint32_t p) const
    {
        if (p >= staged_.size())
            kfault(FaultKind::DesignError, name(),
                   "EHR port %u out of range", p);
    }

    T cur_;
    std::vector<T> staged_;
    std::vector<bool> valid_;
};

} // namespace cmd
