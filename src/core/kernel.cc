#include "core/kernel.hh"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

namespace cmd {

Conflict
invert(Conflict c)
{
    switch (c) {
      case Conflict::LT:
        return Conflict::GT;
      case Conflict::GT:
        return Conflict::LT;
      default:
        return c;
    }
}

const char *
toString(Conflict c)
{
    switch (c) {
      case Conflict::C:
        return "C";
      case Conflict::LT:
        return "<";
      case Conflict::GT:
        return ">";
      case Conflict::CF:
        return "CF";
    }
    return "?";
}

// ---------------------------------------------------------------- StateBase

StateBase::StateBase(Kernel &kernel, std::string name)
    : kernel_(kernel), name_(std::move(name))
{
    kernel_.registerState(this);
}

StateBase::~StateBase()
{
    kernel_.unregisterState(this);
}

// ------------------------------------------------------------------- Method

Method::Method(Module &owner, std::string name, uint32_t localIdx)
    : owner_(owner), name_(std::move(name)), localIdx_(localIdx)
{
}

std::string
Method::fullName() const
{
    return owner_.name() + "." + name_;
}

Method &
Method::subcalls(std::initializer_list<const Method *> ms)
{
    subcalls_.insert(subcalls_.end(), ms.begin(), ms.end());
    return *this;
}

void
Method::operator()() const
{
    owner_.kernel().onMethodCall(*this);
}

// ------------------------------------------------------------------- Module

Module::Module(Kernel &kernel, std::string name, Conflict defaultCm)
    : kernel_(kernel), name_(std::move(name)), defaultCm_(defaultCm)
{
    kernel_.registerModule(this);
}

Module::~Module() = default;

Method &
Module::method(const std::string &name)
{
    if (kernel_.elaborated())
        panic("%s: method '%s' declared after elaboration", name_.c_str(),
              name.c_str());
    if (methods_.size() >= 64)
        panic("%s: more than 64 methods in one module", name_.c_str());
    methods_.emplace_back(Method(*this, name,
                                 static_cast<uint32_t>(methods_.size())));
    return methods_.back();
}

void
Module::setCm(const Method &a, const Method &b, Conflict rel)
{
    if (kernel_.elaborated())
        panic("%s: CM changed after elaboration", name_.c_str());
    if (&a.owner() != this || &b.owner() != this)
        panic("%s: CM entry for foreign method", name_.c_str());
    cmOverride_[{a.localIndex(), b.localIndex()}] = rel;
    cmOverride_[{b.localIndex(), a.localIndex()}] = invert(rel);
}

Conflict
Module::cm(const Method &a, const Method &b) const
{
    auto it = cmOverride_.find({a.localIndex(), b.localIndex()});
    if (it != cmOverride_.end())
        return it->second;
    return a.localIndex() == b.localIndex() ? Conflict::C : defaultCm_;
}

void
Module::syncMasks()
{
    // Direct cycle_ access: this is framework bookkeeping, not a
    // time-dependent guard read, so it must not mark the rule
    // cycle-sensitive.
    uint64_t now = kernel_.cycle_;
    if (firedEpoch_ != now) {
        firedEpoch_ = now;
        firedMask_ = 0;
    }
}

void
Module::noteRuleCall(uint64_t bit)
{
    ruleMask_ |= bit;
}

// --------------------------------------------------------------------- Rule

Rule::Rule(Kernel &kernel, std::string name, std::function<void()> body,
           uint32_t prio)
    : kernel_(kernel), name_(std::move(name)), body_(std::move(body)),
      prio_(prio)
{
}

Rule &
Rule::uses(std::initializer_list<const Method *> ms)
{
    if (kernel_.elaborated())
        panic("rule %s: uses() after elaboration", name_.c_str());
    uses_.insert(uses_.end(), ms.begin(), ms.end());
    return *this;
}

Rule &
Rule::uses(const std::vector<const Method *> &ms)
{
    if (kernel_.elaborated())
        panic("rule %s: uses() after elaboration", name_.c_str());
    uses_.insert(uses_.end(), ms.begin(), ms.end());
    return *this;
}

Rule &
Rule::when(std::function<bool()> guard)
{
    guard_ = std::move(guard);
    return *this;
}

Rule &
Rule::setEnabled(bool e)
{
    enabled_ = e;
    // An enable/disable flip can change whether the rule may fire for
    // reasons no state commit will signal; drop any sleep.
    if (asleep_) {
        asleep_ = false;
        sleepGen_++;
        kernel_.setAwakeBit(schedPos_);
    }
    return *this;
}

// ------------------------------------------------------------------- Kernel

Kernel::Kernel() = default;
Kernel::~Kernel() = default;

void
Kernel::registerState(StateBase *s)
{
    if (elaborated_)
        panic("state %s created after elaboration", s->name().c_str());
    s->stateIdx_ = static_cast<uint32_t>(states_.size());
    states_.push_back(s);
}

void
Kernel::unregisterState(StateBase *s)
{
    // Swap-and-pop via the stored index: teardown of a large design
    // must not be quadratic in the number of state elements.
    uint32_t i = s->stateIdx_;
    if (i >= states_.size() || states_[i] != s)
        return;
    states_[i] = states_.back();
    states_[i]->stateIdx_ = i;
    states_.pop_back();
}

void
Kernel::registerModule(Module *m)
{
    if (elaborated_)
        panic("module %s created after elaboration", m->name().c_str());
    modules_.push_back(m);
}

Rule &
Kernel::rule(const std::string &name, std::function<void()> body)
{
    if (elaborated_)
        panic("rule %s created after elaboration", name.c_str());
    rules_.emplace_back(Rule(*this, name, std::move(body),
                             static_cast<uint32_t>(rules_.size())));
    rulePtrs_.push_back(&rules_.back());
    return rules_.back();
}

void
Kernel::onMethodCall(const Method &m)
{
    if (!inRule_)
        panic("method %s called outside any rule or atomic action",
              m.fullName().c_str());

    Module &mod = m.owner_;
    mod.syncMasks();
    uint64_t bit = 1ull << m.localIdx_;

    // Two conflicting methods inside one atomic action is a static
    // design error, not a scheduling outcome.
    if (mod.ruleMask_ & m.intraConflictMask_) {
        for (uint32_t i = 0; i < mod.methods_.size(); i++) {
            if ((mod.ruleMask_ & m.intraConflictMask_ & (1ull << i))) {
                panic("rule %s calls conflicting methods %s and %s",
                      currentRule_ ? currentRule_->name().c_str() : "<atomic>",
                      mod.methods_[i].fullName().c_str(),
                      m.fullName().c_str());
            }
        }
    }

    // CM legality versus rules that already fired this cycle: every
    // already-fired method n must satisfy CM(n, m) in {<, CF}.
    if (mod.firedMask_ & m.illegalBeforeMask_)
        throw CmBlock{&m};

    // Declaration check (the "compiler" check): a named rule may only
    // call methods in its declared closure.
    if (currentRule_ && !m.usedByRule_.empty() &&
        !m.usedByRule_[currentRule_->id_]) {
        panic("rule %s calls undeclared method %s (add it to uses())",
              currentRule_->name().c_str(), m.fullName().c_str());
    }

    if (!mod.inRuleList_) {
        mod.inRuleList_ = true;
        touchedModules_.push_back(&mod);
    }
    mod.noteRuleCall(bit);
}

void
Kernel::noteStateTouched(StateBase *s)
{
    touched_.push_back(s);
}

void
Kernel::commitRuleEffects()
{
    for (StateBase *s : touched_) {
        s->commitStaged();
        s->lastCommitCycle_ = cycle_;
        if (!s->waiters_.empty())
            wakeWaiters(s);
    }
    touched_.clear();
    for (Module *m : touchedModules_) {
        m->syncMasks();
        m->firedMask_ |= m->ruleMask_;
        m->ruleMask_ = 0;
        m->inRuleList_ = false;
    }
    touchedModules_.clear();
}

void
Kernel::abortRuleEffects()
{
    for (StateBase *s : touched_)
        s->abortStaged();
    touched_.clear();
    for (Module *m : touchedModules_) {
        m->ruleMask_ = 0;
        m->inRuleList_ = false;
    }
    touchedModules_.clear();
}

bool
Kernel::tryFire(Rule &r)
{
    if (!r.enabled_) {
        r.last_ = Rule::Outcome::Disabled;
        return false;
    }
    attempts_++;
    // The when() guard is the exception-free fast path for the common
    // not-ready exit: no body dispatch, no throw, no rollback work.
    if (r.guard_) {
        if (!r.guard_()) {
            r.last_ = Rule::Outcome::GuardFalse;
            r.guardAborts_.inc();
            return false;
        }
        // The guard passed: its reads are the captured sensitivity.
        // Body reads are not tracked — a body that now fails an
        // implicit guard has an incompletely captured read set and
        // stays awake (attemptCaptured_ false) — so firing bodies,
        // the common case for awake rules, pay no tracking cost.
        if (trackReads_) {
            trackReads_ = false;
            attemptCaptured_ = false;
        }
    }

    inRule_ = true;
    currentRule_ = &r;
    Kernel *prevActive = detail::activeKernel;
    detail::activeKernel = this;
    bool fired = false;
    try {
        r.body_();
        if (fastGuardFail_) {
            fastGuardFail_ = false;
            fastGuardFails_++;
            r.last_ = Rule::Outcome::GuardFalse;
            r.guardAborts_.inc();
        } else {
            fired = true;
        }
    } catch (const GuardFail &) {
        guardThrows_++;
        r.last_ = Rule::Outcome::GuardFalse;
        r.guardAborts_.inc();
    } catch (const CmBlock &) {
        r.last_ = Rule::Outcome::CmBlocked;
        r.cmAborts_.inc();
    }
    detail::activeKernel = prevActive;
    inRule_ = false;
    currentRule_ = nullptr;

    if (fired) {
        commitRuleEffects();
        r.last_ = Rule::Outcome::Fired;
        r.fired_.inc();
    } else {
        abortRuleEffects();
    }
    return fired;
}

bool
Kernel::runAtomically(const std::function<void()> &fn)
{
    if (inRule_)
        panic("runAtomically() nested inside a rule");
    if (!elaborated_)
        panic("runAtomically() before elaboration");
    inRule_ = true;
    Kernel *prevActive = detail::activeKernel;
    detail::activeKernel = this;
    bool fired = false;
    try {
        fn();
        fired = !fastGuardFail_;
        if (fastGuardFail_) {
            fastGuardFail_ = false;
            fastGuardFails_++;
        }
    } catch (const GuardFail &) {
        guardThrows_++;
    } catch (const CmBlock &) {
    }
    detail::activeKernel = prevActive;
    inRule_ = false;
    if (fired)
        commitRuleEffects();
    else
        abortRuleEffects();
    return fired;
}

uint32_t
Kernel::cycle()
{
    if (!elaborated_)
        panic("cycle() before elaboration");
    cycle_++;
    uint32_t fired = 0;
    if (sched_ == SchedulerKind::Exhaustive) {
        for (Rule *r : schedule_) {
            if (tryFire(*r))
                fired++;
        }
        return fired;
    }
    // Walk the awake bitmap in schedule order. A rule woken by a
    // commit at a position we already passed is picked up next cycle;
    // one woken ahead of the cursor is attempted this cycle — exactly
    // the outcomes the exhaustive scan would produce. Re-scanning from
    // pos+1 each step makes the walk robust to the bit-clear (sleep)
    // and bit-set (wake) churn the attempt itself causes.
    uint32_t visited = 0;
    int64_t pos = nextAwake(0);
    while (pos >= 0) {
        Rule *r = schedule_[pos];
        visited++;
        // Capture the read set of this attempt (guard and body).
        readMark_++;
        readSet_.clear();
        readOverflow_ = false;
        cycleRead_ = false;
        attemptCaptured_ = true;
        trackReads_ = true;
        bool f = tryFire(*r);
        trackReads_ = false;
        if (f)
            fired++;
        else if (r->last_ == Rule::Outcome::GuardFalse)
            maybeSleep(*r);
        pos = nextAwake(uint32_t(pos) + 1);
    }
    sleepSkips_ += schedule_.size() - visited;
    return fired;
}

void
Kernel::noteStateRead(StateBase *s)
{
    if (s->readMark_ == readMark_)
        return;
    s->readMark_ = readMark_;
    if (readSet_.size() >= kSensitivityCap) {
        readOverflow_ = true;
        return;
    }
    readSet_.push_back(s);
}

void
Kernel::maybeSleep(Rule &r)
{
    // Conservative fallbacks: a rule stays always-awake when its
    // not-ready condition cannot be pinned to a captured read set —
    // a when() guard that passed but whose body then failed an
    // implicit guard (body reads are untracked), overflowed capture,
    // a time-dependent guard (cycleCount read), or a guard that reads
    // no state at all (nothing would ever wake it, and the reads may
    // live outside the state discipline).
    if (!attemptCaptured_ || readOverflow_ || cycleRead_ ||
        readSet_.empty())
        return;
    for (StateBase *s : readSet_) {
        // An element committed earlier this cycle still presents its
        // start-of-cycle value through readStable(); the guard may
        // flip at the next cycle edge with no further commit, so
        // retry next cycle instead of sleeping.
        if (s->lastCommitCycle_ == cycle_)
            return;
    }
    r.asleep_ = true;
    r.sleepGen_++;
    r.last_ = Rule::Outcome::Sleeping;
    sleeps_++;
    clearAwakeBit(r.schedPos_);
    for (StateBase *s : readSet_)
        addWaiter(s, &r);
}

void
Kernel::addWaiter(StateBase *s, Rule *r)
{
    auto &w = s->waiters_;
    if (w.size() >= s->waiterCompactAt_) {
        auto stale = [](const std::pair<Rule *, uint64_t> &e) {
            return !e.first->asleep_ || e.first->sleepGen_ != e.second;
        };
        w.erase(std::remove_if(w.begin(), w.end(), stale), w.end());
        s->waiterCompactAt_ = std::max<size_t>(8, 2 * w.size() + 8);
    }
    w.emplace_back(r, r->sleepGen_);
}

void
Kernel::wakeWaiters(StateBase *s)
{
    for (auto &[r, gen] : s->waiters_) {
        if (r->asleep_ && r->sleepGen_ == gen) {
            r->asleep_ = false;
            r->sleepGen_++;
            setAwakeBit(r->schedPos_);
            wakes_++;
        }
    }
    s->waiters_.clear();
    s->waiterCompactAt_ = 8;
}

void
Kernel::wakeAll()
{
    for (Rule *r : rulePtrs_) {
        if (r->asleep_) {
            r->asleep_ = false;
            r->sleepGen_++;
        }
    }
    for (StateBase *s : states_) {
        s->waiters_.clear();
        s->waiterCompactAt_ = 8;
    }
    awakeBits_.assign((schedule_.size() + 63) / 64, 0);
    for (uint32_t p = 0; p < schedule_.size(); p++)
        setAwakeBit(p);
}

void
Kernel::setScheduler(SchedulerKind k)
{
    if (inRule_)
        panic("setScheduler() inside a rule");
    sched_ = k;
    wakeAll();
}

uint64_t
Kernel::run(uint64_t n)
{
    uint64_t fired = 0;
    for (uint64_t i = 0; i < n; i++)
        fired += cycle();
    return fired;
}

bool
Kernel::runUntil(const std::function<bool()> &done, uint64_t maxCycles)
{
    for (uint64_t i = 0; i < maxCycles; i++) {
        if (done())
            return true;
        cycle();
    }
    return done();
}

Conflict
Kernel::computeRuleRelation(const Rule &a, const Rule &b) const
{
    bool anyC = false, anyLt = false, anyGt = false;
    for (const auto &[ma, pa] : a.closure_) {
        for (const auto &[mb, pb] : b.closure_) {
            if (&ma->owner() != &mb->owner())
                continue;
            // A pair reached through two parent methods of one module
            // is governed by the parent's own CM entry (which the
            // outer loops also visit directly); skip the shadowed
            // submodule pair. See Method::subcalls().
            bool viaSubcall = pa != ma || pb != mb;
            if (viaSubcall && &pa->owner() == &pb->owner())
                continue;
            Conflict rel = ma->owner().cm(*ma, *mb);
            switch (rel) {
              case Conflict::C:
                anyC = true;
                break;
              case Conflict::LT:
                anyLt = true;
                break;
              case Conflict::GT:
                anyGt = true;
                break;
              case Conflict::CF:
                break;
            }
        }
    }
    if (anyC || (anyLt && anyGt))
        return Conflict::C;
    if (anyLt)
        return Conflict::LT;
    if (anyGt)
        return Conflict::GT;
    return Conflict::CF;
}

void
Kernel::elaborate()
{
    if (elaborated_)
        panic("elaborate() called twice");

    // Materialize per-module method masks.
    for (Module *mod : modules_) {
        uint32_t n = static_cast<uint32_t>(mod->methods_.size());
        mod->cmFlat_.assign(size_t(n) * n, Conflict::CF);
        for (uint32_t i = 0; i < n; i++) {
            for (uint32_t j = 0; j < n; j++) {
                mod->cmFlat_[size_t(i) * n + j] =
                    mod->cm(mod->methods_[i], mod->methods_[j]);
            }
        }
        for (uint32_t j = 0; j < n; j++) {
            Method &m = mod->methods_[j];
            m.illegalBeforeMask_ = 0;
            m.intraConflictMask_ = 0;
            for (uint32_t i = 0; i < n; i++) {
                Conflict rel = mod->cmFlat_[size_t(i) * n + j];
                if (rel == Conflict::C || rel == Conflict::GT)
                    m.illegalBeforeMask_ |= 1ull << i;
                if (rel == Conflict::C)
                    m.intraConflictMask_ |= 1ull << i;
            }
        }
    }

    // Assign rule ids and compute transitive method closures.
    uint32_t nRules = static_cast<uint32_t>(rules_.size());
    for (uint32_t i = 0; i < nRules; i++)
        rulePtrs_[i]->id_ = i;
    for (Rule *r : rulePtrs_) {
        std::vector<std::pair<const Method *, const Method *>> work;
        for (const Method *m : r->uses_)
            work.emplace_back(m, m);
        r->closure_.clear();
        // Set-based dedup: the linear re-scan of closure_ this
        // replaces made elaboration quadratic in closure size for
        // large multicore configs.
        std::set<std::pair<const Method *, const Method *>> seen;
        while (!work.empty()) {
            auto [m, anc] = work.back();
            work.pop_back();
            if (!seen.insert({m, anc}).second)
                continue;
            r->closure_.push_back({m, anc});
            for (const Method *s : m->subcalls_)
                work.emplace_back(s, anc);
        }
    }

    // Fill the per-method declaration bitmaps.
    for (Module *mod : modules_) {
        for (Method &m : mod->methods_)
            m.usedByRule_.assign(nRules, false);
    }
    for (Rule *r : rulePtrs_) {
        for (const auto &[m, anc] : r->closure_)
            const_cast<Method *>(m)->usedByRule_[r->id_] = true;
    }

    // Rule-level CM and the "<" precedence graph.
    ruleCm_.assign(size_t(nRules) * nRules, Conflict::CF);
    std::vector<std::vector<uint32_t>> succ(nRules);
    std::vector<uint32_t> indeg(nRules, 0);
    for (uint32_t i = 0; i < nRules; i++) {
        for (uint32_t j = i + 1; j < nRules; j++) {
            Conflict rel = computeRuleRelation(*rulePtrs_[i], *rulePtrs_[j]);
            ruleCm_[size_t(i) * nRules + j] = rel;
            ruleCm_[size_t(j) * nRules + i] = invert(rel);
            if (rel == Conflict::LT) {
                succ[i].push_back(j);
                indeg[j]++;
            } else if (rel == Conflict::GT) {
                succ[j].push_back(i);
                indeg[i]++;
            }
        }
    }

    // Stable topological sort (registration order breaks ties). A
    // cycle of "<" edges is a combinational cycle.
    schedule_.clear();
    std::vector<bool> placed(nRules, false);
    for (uint32_t placedCount = 0; placedCount < nRules;) {
        bool progress = false;
        for (uint32_t i = 0; i < nRules; i++) {
            if (placed[i] || indeg[i] != 0)
                continue;
            placed[i] = true;
            placedCount++;
            progress = true;
            schedule_.push_back(rulePtrs_[i]);
            for (uint32_t j : succ[i])
                indeg[j]--;
        }
        if (!progress) {
            std::string names;
            for (uint32_t i = 0; i < nRules; i++) {
                if (!placed[i])
                    names += " " + rulePtrs_[i]->name();
            }
            throw ElaborationError(
                "combinational cycle among rules:" + names);
        }
    }

    for (uint32_t p = 0; p < schedule_.size(); p++)
        schedule_[p]->schedPos_ = p;
    wakeAll(); // seed the event wheel with every rule awake

    elaborated_ = true;
}

Conflict
Kernel::ruleRelation(const Rule &a, const Rule &b) const
{
    if (!elaborated_)
        panic("ruleRelation() before elaboration");
    return ruleCm_[size_t(a.id_) * rules_.size() + b.id_];
}

std::vector<uint8_t>
Kernel::snapshot() const
{
    if (inRule_)
        panic("snapshot() inside a rule");
    std::vector<uint8_t> out;
    out.resize(sizeof(cycle_));
    std::copy_n(reinterpret_cast<const uint8_t *>(&cycle_), sizeof(cycle_),
                out.begin());
    for (const StateBase *s : states_)
        s->save(out);
    return out;
}

void
Kernel::restore(const std::vector<uint8_t> &snap)
{
    if (inRule_)
        panic("restore() inside a rule");
    const uint8_t *p = snap.data();
    std::copy_n(p, sizeof(cycle_), reinterpret_cast<uint8_t *>(&cycle_));
    p += sizeof(cycle_);
    for (StateBase *s : states_)
        s->restore(p);
    if (p != snap.data() + snap.size())
        panic("snapshot size mismatch on restore");
    // Sleep bookkeeping does not survive a restore: every sensitivity
    // assumption was made against the overwritten state.
    wakeAll();
    for (StateBase *s : states_)
        s->lastCommitCycle_ = ~0ull;
    // Restore rewinds cycle_, so epoch stamps left by the pre-restore
    // run could collide with a replayed cycle number and present a
    // stale fired-mask to the CM check. Invalidate them all.
    for (Module *m : modules_) {
        m->firedEpoch_ = ~0ull;
        m->firedMask_ = 0;
        m->ruleMask_ = 0;
        m->inRuleList_ = false;
    }
}

std::string
Kernel::progressReport() const
{
    std::ostringstream os;
    for (const Rule *r : schedule_) {
        const char *o = "?";
        switch (r->last_) {
          case Rule::Outcome::NotTried:
            o = "not-tried";
            break;
          case Rule::Outcome::Disabled:
            o = "disabled";
            break;
          case Rule::Outcome::GuardFalse:
            o = "guard-false";
            break;
          case Rule::Outcome::CmBlocked:
            o = "cm-blocked";
            break;
          case Rule::Outcome::Fired:
            o = "fired";
            break;
          case Rule::Outcome::Sleeping:
            o = "sleeping";
            break;
        }
        os << r->name() << ": last=" << o << " fired=" << r->firedCount()
           << " guardAborts=" << r->guardAbortCount()
           << " cmAborts=" << r->cmAbortCount() << '\n';
    }
    os << "scheduler: kind="
       << (sched_ == SchedulerKind::EventDriven ? "event-driven"
                                                : "exhaustive")
       << " attempts=" << attempts_ << " sleepSkips=" << sleepSkips_
       << " sleeps=" << sleeps_ << " wakes=" << wakes_
       << " guardThrows=" << guardThrows_
       << " fastGuardFails=" << fastGuardFails_ << '\n';
    return os.str();
}

void
Kernel::dumpStats(std::ostream &os) const
{
    for (const Module *m : modules_)
        const_cast<Module *>(m)->stats().dump(os, m->name());
}

} // namespace cmd
