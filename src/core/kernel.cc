#include "core/kernel.hh"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <numeric>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

namespace cmd {

namespace {

uint64_t
nsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

Conflict
invert(Conflict c)
{
    switch (c) {
      case Conflict::LT:
        return Conflict::GT;
      case Conflict::GT:
        return Conflict::LT;
      default:
        return c;
    }
}

const char *
toString(Conflict c)
{
    switch (c) {
      case Conflict::C:
        return "C";
      case Conflict::LT:
        return "<";
      case Conflict::GT:
        return ">";
      case Conflict::CF:
        return "CF";
    }
    return "?";
}

// -------------------------------------------------------------- KernelFault

const char *
toString(FaultKind k)
{
    switch (k) {
      case FaultKind::DesignError:
        return "design-error";
      case FaultKind::CrossDomain:
        return "cross-domain";
      case FaultKind::ApiMisuse:
        return "api-misuse";
      case FaultKind::Watchdog:
        return "watchdog";
      case FaultKind::Checkpoint:
        return "checkpoint";
    }
    return "?";
}

std::string
KernelFault::headline(FaultKind kind, const std::string &msg,
                      const FaultContext &ctx)
{
    std::ostringstream os;
    os << "KernelFault[" << toString(kind) << "]";
    if (!ctx.module.empty())
        os << " " << ctx.module;
    os << ": " << msg;
    if (!ctx.rule.empty() || ctx.cycle) {
        os << " (";
        if (!ctx.rule.empty())
            os << "rule " << ctx.rule << ", ";
        os << "cycle " << ctx.cycle;
        if (ctx.domain != ~0u)
            os << ", domain " << ctx.domain;
        os << ")";
    }
    return os.str();
}

KernelFault::KernelFault(FaultKind kind, std::string message,
                         FaultContext ctx)
    : std::runtime_error(headline(kind, message, ctx)), kind_(kind),
      message_(std::move(message)), ctx_(std::move(ctx))
{
}

std::string
KernelFault::describe() const
{
    std::string out = what();
    if (!ctx_.trace.empty()) {
        out += '\n';
        out += ctx_.trace;
        if (out.back() != '\n')
            out += '\n';
    }
    return out;
}

void
kfault(FaultKind kind, const std::string &module, const char *fmt, ...)
{
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);

    FaultContext ctx;
    ctx.module = module;
    if (detail::ExecContext *c = detail::activeCtx) {
        if (c->currentRule)
            ctx.rule = c->currentRule->name();
        ctx.domain = c->domainId;
        if (c->kernel)
            ctx.cycle = c->kernel->cycleCount();
        // Trace from the local fire ring only: it is owned by the
        // raising thread, so capture is safe even when other domains
        // are mid-cycle. Drivers that catch the fault between cycles
        // append Kernel::diagnosticReport() for the global picture.
        uint64_t n = std::min<uint64_t>(c->firePos, detail::kFireRingSize);
        if (n) {
            std::ostringstream os;
            os << "last " << n << " fires of this context (oldest first):\n";
            for (uint64_t i = c->firePos - n; i < c->firePos; i++) {
                const auto &e = c->fireRing[i % detail::kFireRingSize];
                os << "  @" << e.second << " " << e.first->name() << '\n';
            }
            ctx.trace = os.str();
        }
    }
    throw KernelFault(kind, buf, std::move(ctx));
}

// --------------------------------------------------------------- DomainHint

DomainHint::DomainHint(Kernel &kernel, const std::string &name)
    : kernel_(kernel)
{
    kernel_.pushHint(name);
}

DomainHint::~DomainHint()
{
    kernel_.popHint();
}

// ---------------------------------------------------------------- StateBase

StateBase::StateBase(Kernel &kernel, std::string name)
    : kernel_(kernel), name_(std::move(name))
{
    kernel_.registerState(this);
}

StateBase::~StateBase()
{
    kernel_.unregisterState(this);
}

// ------------------------------------------------------------------- Method

Method::Method(Module &owner, std::string name, uint32_t localIdx)
    : owner_(owner), name_(std::move(name)), localIdx_(localIdx)
{
}

std::string
Method::fullName() const
{
    return owner_.name() + "." + name_;
}

Method &
Method::subcalls(std::initializer_list<const Method *> ms)
{
    subcalls_.insert(subcalls_.end(), ms.begin(), ms.end());
    return *this;
}

// ------------------------------------------------------------------- Module

Module::Module(Kernel &kernel, std::string name, Conflict defaultCm)
    : kernel_(kernel), name_(std::move(name)), defaultCm_(defaultCm)
{
    kernel_.registerModule(this);
}

Module::~Module() = default;

Method &
Module::method(const std::string &name)
{
    if (kernel_.elaborated())
        kfault(FaultKind::ApiMisuse, name_,
               "method '%s' declared after elaboration", name.c_str());
    if (methods_.size() >= 64)
        kfault(FaultKind::DesignError, name_,
               "more than 64 methods in one module");
    methods_.emplace_back(Method(*this, name,
                                 static_cast<uint32_t>(methods_.size())));
    return methods_.back();
}

void
Module::setCm(const Method &a, const Method &b, Conflict rel)
{
    if (kernel_.elaborated())
        kfault(FaultKind::ApiMisuse, name_, "CM changed after elaboration");
    if (&a.owner() != this || &b.owner() != this)
        kfault(FaultKind::DesignError, name_, "CM entry for foreign method");
    cmOverride_[{a.localIndex(), b.localIndex()}] = rel;
    cmOverride_[{b.localIndex(), a.localIndex()}] = invert(rel);
}

Conflict
Module::cm(const Method &a, const Method &b) const
{
    auto it = cmOverride_.find({a.localIndex(), b.localIndex()});
    if (it != cmOverride_.end())
        return it->second;
    return a.localIndex() == b.localIndex() ? Conflict::C : defaultCm_;
}

void
Module::syncMasks()
{
    // currentCycle(), not cycleCount(): this is framework
    // bookkeeping, not a time-dependent guard read, so it must not
    // mark the rule cycle-sensitive — but it must see the domain's
    // local cycle inside a multi-cycle sync window, or the fired
    // masks would never reset between interior cycles.
    uint64_t now = kernel_.currentCycle();
    if (firedEpoch_ != now) {
        firedEpoch_ = now;
        firedMask_ = 0;
    }
}

void
Module::noteRuleCall(uint64_t bit)
{
    ruleMask_ |= bit;
}

// --------------------------------------------------------------------- Rule

Rule::Rule(Kernel &kernel, std::string name, std::function<void()> body,
           uint32_t prio)
    : kernel_(kernel), name_(std::move(name)), body_(std::move(body)),
      prio_(prio)
{
}

Rule &
Rule::uses(std::initializer_list<const Method *> ms)
{
    if (kernel_.elaborated())
        kfault(FaultKind::ApiMisuse, name_, "uses() after elaboration");
    uses_.insert(uses_.end(), ms.begin(), ms.end());
    return *this;
}

Rule &
Rule::uses(const std::vector<const Method *> &ms)
{
    if (kernel_.elaborated())
        kfault(FaultKind::ApiMisuse, name_, "uses() after elaboration");
    uses_.insert(uses_.end(), ms.begin(), ms.end());
    return *this;
}

Rule &
Rule::when(std::function<bool()> guard)
{
    guard_ = std::move(guard);
    return *this;
}

Rule &
Rule::setEnabled(bool e)
{
    enabled_ = e;
    // An enable/disable flip can change whether the rule may fire for
    // reasons no state commit will signal; drop any sleep.
    if (asleep_) {
        asleep_ = false;
        sleepGen_++;
        if (ctx_)
            ctx_->setAwakeBit(ctxPos_);
    }
    return *this;
}

// ------------------------------------------------------------------- Kernel

Kernel::Kernel()
{
    mainCtx_.kernel = this;
}

Kernel::~Kernel()
{
    stopWorkers();
}

void
Kernel::pushHint(const std::string &name)
{
    if (elaborated_)
        kfault(FaultKind::ApiMisuse, name,
               "DomainHint opened after elaboration");
    auto [it, fresh] =
        hintIds_.try_emplace(name, static_cast<uint32_t>(hintNames_.size()));
    if (fresh)
        hintNames_.push_back(name);
    hintStack_.push_back(it->second);
}

void
Kernel::popHint()
{
    // Raw panic, not KernelFault: called from ~DomainHint, and a throw
    // out of a destructor would terminate anyway.
    if (hintStack_.size() <= 1)
        panic("DomainHint scope underflow");
    hintStack_.pop_back();
}

void
Kernel::registerState(StateBase *s)
{
    if (elaborated_)
        kfault(FaultKind::ApiMisuse, s->name(),
               "state created after elaboration");
    s->stateIdx_ = static_cast<uint32_t>(states_.size());
    s->hintGroup_ = hintStack_.back();
    states_.push_back(s);
}

void
Kernel::unregisterState(StateBase *s)
{
    // Swap-and-pop via the stored index: teardown of a large design
    // must not be quadratic in the number of state elements.
    uint32_t i = s->stateIdx_;
    if (i >= states_.size() || states_[i] != s)
        return;
    states_[i] = states_.back();
    states_[i]->stateIdx_ = i;
    states_.pop_back();
}

void
Kernel::registerModule(Module *m)
{
    if (elaborated_)
        kfault(FaultKind::ApiMisuse, m->name(),
               "module created after elaboration");
    m->hintGroup_ = hintStack_.back();
    modules_.push_back(m);
}

void
Kernel::registerBoundary(Module &a, Module &b, bool *crossFlag,
                         ChannelPort *chan)
{
    if (elaborated_)
        kfault(FaultKind::ApiMisuse, a.name() + "/" + b.name(),
               "boundary registered after elaboration");
    a.boundarySide_ = true;
    b.boundarySide_ = true;
    boundaries_.push_back({&a, &b, crossFlag, chan});
}

void
Kernel::registerMirror(StateBase *s)
{
    mirrors_.push_back(s);
}

Rule &
Kernel::rule(const std::string &name, std::function<void()> body)
{
    if (elaborated_)
        kfault(FaultKind::ApiMisuse, name, "rule created after elaboration");
    rules_.emplace_back(Rule(*this, name, std::move(body),
                             static_cast<uint32_t>(rules_.size())));
    rulePtrs_.push_back(&rules_.back());
    rules_.back().hintGroup_ = hintStack_.back();
    return rules_.back();
}

void
Kernel::onMethodCall(const Method &m)
{
    detail::ExecContext *c = detail::activeCtx;
    // A CM-inert rule on the compiled fast path: elaboration proved
    // that no check below can fail for it and that nothing reads the
    // masks its calls would update, so the whole visit is elided.
    // (This also skips the declaration/intra-conflict enforcement —
    // the compiled scheduler trusts the proof like the BSV compiler
    // trusts its static analysis; the checked schedulers still run
    // the full visit. See DESIGN.md "Static scheduling".) The same
    // check is inlined into Method::operator() so lite calls skip
    // this function entirely; this copy keeps direct callers correct.
    if (c && c->liteCalls)
        return;
    if (!c || !c->inRule)
        kfault(FaultKind::ApiMisuse, m.fullName(),
               "method called outside any rule or atomic action");

    Module &mod = m.owner_;
    // Cross-domain method calls are checked before any module state is
    // touched: a rule of one domain calling into another domain's
    // module means the partitioner was lied to (coupling the hints hid
    // from it), and continuing would race.
    if (c->domainId != detail::kNoDomain && mod.domain_ != c->domainId) {
        kfault(FaultKind::CrossDomain, m.fullName(),
               "called from domain %u but owned by domain %u: cross-domain "
               "coupling not visible to the partitioner",
               c->domainId, mod.domain_);
    }
    mod.syncMasks();
    uint64_t bit = 1ull << m.localIdx_;

    // Two conflicting methods inside one atomic action is a static
    // design error, not a scheduling outcome.
    if (mod.ruleMask_ & m.intraConflictMask_) {
        for (uint32_t i = 0; i < mod.methods_.size(); i++) {
            if ((mod.ruleMask_ & m.intraConflictMask_ & (1ull << i))) {
                kfault(FaultKind::DesignError, mod.name(),
                       "one rule calls conflicting methods %s and %s",
                       mod.methods_[i].fullName().c_str(),
                       m.fullName().c_str());
            }
        }
    }

    // CM legality versus rules that already fired this cycle: every
    // already-fired method n must satisfy CM(n, m) in {<, CF}.
    if (mod.firedMask_ & m.illegalBeforeMask_)
        throw CmBlock{&m};

    // Declaration check (the "compiler" check): a named rule may only
    // call methods in its declared closure.
    if (c->currentRule && !m.usedByRule_.empty() &&
        !m.usedByRule_[c->currentRule->id_]) {
        kfault(FaultKind::DesignError, m.fullName(),
               "called by a rule that did not declare it (add it to uses())");
    }

    if (!mod.inRuleList_) {
        mod.inRuleList_ = true;
        c->touchedModules.push_back(&mod);
    }
    mod.noteRuleCall(bit);
}

void
Kernel::crossDomainTouchFault(detail::ExecContext *c, StateBase *s)
{
    kfault(FaultKind::CrossDomain, s->name(),
           "written from domain %u but owned by domain %u: cross-domain "
           "coupling not visible to the partitioner",
           c->domainId, s->domain_);
}

void
Kernel::noteStateRead(StateBase *s, detail::ExecContext &c)
{
    // The domain check comes first: on a violation nothing may be
    // written (not even the dedup stamp), since the state genuinely
    // belongs to a concurrently executing domain.
    if (c.domainId != detail::kNoDomain && s->domain_ != c.domainId) {
        kfault(FaultKind::CrossDomain, s->name(),
               "read from domain %u but owned by domain %u: cross-domain "
               "reads must go through a TimedFifo boundary",
               c.domainId, s->domain_);
    }
    if (c.readMode != detail::ReadMode::Capture)
        return;
    if (s->readMark_ == c.readMark)
        return;
    s->readMark_ = c.readMark;
    if (c.readSet.size() >= detail::kSensitivityCap) {
        c.readOverflow = true;
        return;
    }
    c.readSet.push_back(s);
}

void
Kernel::commitRuleEffects(detail::ExecContext &c)
{
    if (c.fusedCommit) {
        // Fused commit (compiled scheduler, every rule fast): the
        // commit-cycle stamp and the waiter scan only exist to keep
        // sleep decisions sound, and nothing in this context ever
        // sleeps. Apply the journal and be done.
        for (StateBase *s : c.touched)
            s->commitStaged();
    } else {
        uint64_t now = currentCycle();
        for (StateBase *s : c.touched) {
            s->commitStaged();
            s->lastCommitCycle_ = now;
            if (!s->waiters_.empty())
                wakeWaiters(s);
        }
    }
    c.touched.clear();
    for (Module *m : c.touchedModules) {
        m->syncMasks();
        m->firedMask_ |= m->ruleMask_;
        m->ruleMask_ = 0;
        m->inRuleList_ = false;
    }
    c.touchedModules.clear();
}

void
Kernel::abortRuleEffects(detail::ExecContext &c)
{
    for (StateBase *s : c.touched)
        s->abortStaged();
    c.touched.clear();
    for (Module *m : c.touchedModules) {
        m->ruleMask_ = 0;
        m->inRuleList_ = false;
    }
    c.touchedModules.clear();
}

bool
Kernel::tryFire(detail::ExecContext &c, Rule &r)
{
    if (!r.enabled_) {
        r.last_ = Rule::Outcome::Disabled;
        return false;
    }
    c.attempts++;
    // The when() guard is the exception-free fast path for the common
    // not-ready exit: no body dispatch, no throw, no rollback work.
    if (r.guard_) {
        if (!r.guard_()) {
            r.last_ = Rule::Outcome::GuardFalse;
            r.guardAborts_.inc();
#ifndef CMD_NO_OBS
            if (obs_)
                obs_->guardFailed(r, currentCycle(), r.domain_);
#endif
            return false;
        }
        // The guard passed: its reads are the captured sensitivity.
        // Body reads are not tracked — a body that now fails an
        // implicit guard has an incompletely captured read set and
        // stays awake (attemptCaptured false) — so firing bodies,
        // the common case for awake rules, pay no tracking cost.
        // Domain contexts keep enforcement on through the body.
        if (c.readMode == detail::ReadMode::Capture) {
            c.readMode = c.domainId != detail::kNoDomain
                             ? detail::ReadMode::Enforce
                             : detail::ReadMode::Off;
            c.attemptCaptured = false;
        }
    }

    c.inRule = true;
    c.currentRule = &r;
    Kernel *prevActive = detail::activeKernel;
    detail::activeKernel = this;
    bool fired = false;
    try {
        r.body_();
        if (c.fastGuardFail) {
            c.fastGuardFail = false;
            c.fastGuardFails++;
            r.last_ = Rule::Outcome::GuardFalse;
            r.guardAborts_.inc();
#ifndef CMD_NO_OBS
            if (obs_)
                obs_->guardFailed(r, currentCycle(), r.domain_);
#endif
        } else {
            fired = true;
        }
    } catch (const GuardFail &) {
        c.guardThrows++;
        r.last_ = Rule::Outcome::GuardFalse;
        r.guardAborts_.inc();
#ifndef CMD_NO_OBS
        if (obs_)
            obs_->guardFailed(r, currentCycle(), r.domain_);
#endif
    } catch (const CmBlock &) {
        r.last_ = Rule::Outcome::CmBlocked;
        r.cmAborts_.inc();
    } catch (...) {
        // A KernelFault (or foreign exception) escaping the body: roll
        // the transaction back so the design is left at its last
        // committed state, then let the driver classify the fault.
        detail::activeKernel = prevActive;
        c.inRule = false;
        c.currentRule = nullptr;
        abortRuleEffects(c);
        throw;
    }
    detail::activeKernel = prevActive;
    c.inRule = false;
    c.currentRule = nullptr;

    if (fired) {
        commitRuleEffects(c);
        r.last_ = Rule::Outcome::Fired;
        r.fired_.inc();
        c.noteFired(&r, currentCycle());
#ifndef CMD_NO_OBS
        if (obs_)
            obs_->ruleFired(r, currentCycle(), r.domain_);
#endif
    } else {
        abortRuleEffects(c);
    }
    return fired;
}

bool
Kernel::runAtomically(const std::function<void()> &fn)
{
    if (inRule())
        kfault(FaultKind::ApiMisuse, "kernel",
               "runAtomically() nested inside a rule");
    if (!elaborated_)
        kfault(FaultKind::ApiMisuse, "kernel",
               "runAtomically() before elaboration");
    detail::CtxScope scope(&mainCtx_);
    mainCtx_.inRule = true;
    Kernel *prevActive = detail::activeKernel;
    detail::activeKernel = this;
    bool fired = false;
    try {
        fn();
        fired = !mainCtx_.fastGuardFail;
        if (mainCtx_.fastGuardFail) {
            mainCtx_.fastGuardFail = false;
            mainCtx_.fastGuardFails++;
        }
    } catch (const GuardFail &) {
        mainCtx_.guardThrows++;
    } catch (const CmBlock &) {
    } catch (...) {
        detail::activeKernel = prevActive;
        mainCtx_.inRule = false;
        abortRuleEffects(mainCtx_);
        throw;
    }
    detail::activeKernel = prevActive;
    mainCtx_.inRule = false;
    if (fired)
        commitRuleEffects(mainCtx_);
    else
        abortRuleEffects(mainCtx_);
    return fired;
}

uint32_t
Kernel::runCtxCycle(detail::ExecContext &c)
{
    // Walk the awake bitmap in schedule order. A rule woken by a
    // commit at a position we already passed is picked up next cycle;
    // one woken ahead of the cursor is attempted this cycle — exactly
    // the outcomes the exhaustive scan would produce. Re-scanning from
    // pos+1 each step makes the walk robust to the bit-clear (sleep)
    // and bit-set (wake) churn the attempt itself causes.
    uint32_t fired = 0;
    uint32_t visited = 0;
    int64_t pos = c.nextAwake(0);
    while (pos >= 0) {
        Rule *r = c.sched[pos];
        visited++;
        // Capture the read set of this attempt (guard and body).
        c.readMark = newReadMark();
        c.readSet.clear();
        c.readOverflow = false;
        c.cycleRead = false;
        c.attemptCaptured = true;
        c.readMode = detail::ReadMode::Capture;
        bool f = tryFire(c, *r);
        c.readMode = detail::ReadMode::Off;
        if (f)
            fired++;
        else if (r->last_ == Rule::Outcome::GuardFalse)
            maybeSleep(c, *r);
        pos = c.nextAwake(uint32_t(pos) + 1);
    }
    c.sleepSkips += c.sched.size() - visited;
    c.fired += fired;
    return fired;
}

bool
Kernel::fastFire(detail::ExecContext &c, const detail::CompiledEntry &e)
{
    // The streamlined attempt of a compiled fast rule: no sensitivity
    // capture ever (fast rules do not sleep), the guard and body
    // targets come pre-resolved from the table, and activeKernel is
    // hoisted into runCompiledCycle(). Outcome bookkeeping and the
    // observer hooks match tryFire() exactly, so fired/guard-failed
    // event streams stay byte-identical across schedulers.
    Rule &r = *e.rule;
    if (!r.enabled_) {
        r.last_ = Rule::Outcome::Disabled;
        return false;
    }
    c.attempts++;
    if (e.guard && !(*e.guard)()) {
        r.last_ = Rule::Outcome::GuardFalse;
        r.guardAborts_.inc();
#ifndef CMD_NO_OBS
        if (obs_)
            obs_->guardFailed(r, currentCycle(), r.domain_);
#endif
        return false;
    }
    c.inRule = true;
    c.currentRule = &r;
    c.liteCalls = e.lite;
    bool fired = false;
    try {
        (*e.body)();
        if (c.fastGuardFail) {
            c.fastGuardFail = false;
            c.fastGuardFails++;
            r.last_ = Rule::Outcome::GuardFalse;
            r.guardAborts_.inc();
#ifndef CMD_NO_OBS
            if (obs_)
                obs_->guardFailed(r, currentCycle(), r.domain_);
#endif
        } else {
            fired = true;
        }
    } catch (const GuardFail &) {
        c.guardThrows++;
        r.last_ = Rule::Outcome::GuardFalse;
        r.guardAborts_.inc();
#ifndef CMD_NO_OBS
        if (obs_)
            obs_->guardFailed(r, currentCycle(), r.domain_);
#endif
    } catch (const CmBlock &) {
        r.last_ = Rule::Outcome::CmBlocked;
        r.cmAborts_.inc();
    } catch (...) {
        c.liteCalls = false;
        c.inRule = false;
        c.currentRule = nullptr;
        abortRuleEffects(c);
        throw;
    }
    c.liteCalls = false;
    c.inRule = false;
    c.currentRule = nullptr;

    if (fired) {
        commitRuleEffects(c);
        r.last_ = Rule::Outcome::Fired;
        r.fired_.inc();
        c.noteFired(&r, currentCycle());
#ifndef CMD_NO_OBS
        if (obs_)
            obs_->ruleFired(r, currentCycle(), r.domain_);
#endif
    } else {
        abortRuleEffects(c);
    }
    return fired;
}

uint32_t
Kernel::runCompiledCycle(detail::ExecContext &c)
{
    // One-shot re-specialization once the profiling prefix elapsed:
    // promote the empirically hot rules before walking this cycle.
    if (!compiledRespecialized_ &&
        cycle_ >= compiledProfileStart_ + compiledProfileCycles_)
        respecializeCompiled();

    uint32_t fired = 0;
    // Empty-cycle fast-out: with every rule (fast ones keep their
    // awake bit permanently) asleep there is nothing to attempt, so
    // skip the TLS/exception frame below — this keeps compiled idle
    // cycles as cheap as event-driven ones.
    if (!c.fusedCommit) {
        int64_t first = c.nextAwake(0);
        if (first < 0) {
            c.sleepSkips += c.sched.size();
            return 0;
        }
    }
    Kernel *prevActive = detail::activeKernel;
    detail::activeKernel = this;
    try {
        if (c.fusedCommit) {
            // Every rule is fast: the awake bitmap is permanently all
            // ones, so the walk degenerates to a flat scan of the
            // dispatch table — the fused loop with no per-rule
            // scheduling decisions left at all.
            for (const detail::CompiledEntry &e : c.ctable) {
                if (fastFire(c, e))
                    fired++;
            }
        } else {
            // Mixed table: fast rules never clear their awake bit, so
            // the event-wheel walk visits all of them plus whatever
            // residue rules are awake, in schedule order.
            uint32_t visited = 0;
            int64_t pos = c.nextAwake(0);
            while (pos >= 0) {
                const detail::CompiledEntry &e = c.ctable[pos];
                visited++;
                if (e.fast) {
                    if (fastFire(c, e))
                        fired++;
                } else {
                    c.readMark = newReadMark();
                    c.readSet.clear();
                    c.readOverflow = false;
                    c.cycleRead = false;
                    c.attemptCaptured = true;
                    c.readMode = detail::ReadMode::Capture;
                    bool f = tryFire(c, *e.rule);
                    c.readMode = detail::ReadMode::Off;
                    if (f)
                        fired++;
                    else if (e.rule->last_ == Rule::Outcome::GuardFalse)
                        maybeSleep(c, *e.rule);
                }
                pos = c.nextAwake(uint32_t(pos) + 1);
            }
            c.sleepSkips += c.sched.size() - visited;
        }
    } catch (...) {
        detail::activeKernel = prevActive;
        throw;
    }
    detail::activeKernel = prevActive;
    c.fired += fired;
    return fired;
}

uint32_t
Kernel::cycle()
{
    if (!elaborated_)
        kfault(FaultKind::ApiMisuse, "kernel", "cycle() before elaboration");
    cycle_++;
    uint32_t fired = 0;
    if (parallelActive_) {
        fired = runParallelWindow(1);
    } else {
        detail::CtxScope scope(&mainCtx_);
        if (sched_ == SchedulerKind::Exhaustive) {
            for (Rule *r : schedule_) {
                if (tryFire(mainCtx_, *r))
                    fired++;
            }
            mainCtx_.fired += fired;
        } else if (sched_ == SchedulerKind::Compiled) {
            fired = runCompiledCycle(mainCtx_);
        } else {
            fired = runCtxCycle(mainCtx_);
        }
    }
    // Between-cycles hook: every domain is quiesced here, so the
    // observer may read any module's state (the CPI probes do).
#ifndef CMD_NO_OBS
    if (obs_)
        obs_->cycleEnd(cycle_, fired);
#endif
    return fired;
}

// ------------------------------------------------- parallel cycle execution

uint32_t
Kernel::effectiveThreads() const
{
    uint32_t want = threadsWanted_
                        ? threadsWanted_
                        : std::max(1u, std::thread::hardware_concurrency());
    return std::min(want, domainCount_);
}

void
Kernel::setParallelThreads(uint32_t n)
{
    if (inRule())
        kfault(FaultKind::ApiMisuse, "kernel",
               "setParallelThreads() inside a rule");
    threadsWanted_ = n;
    stopWorkers(); // the pool re-spawns at the right size next cycle
}

void
Kernel::ensurePool()
{
    uint32_t workersWanted = effectiveThreads() - 1;
    if (workers_.size() == workersWanted)
        return;
    stopWorkers();
    workers_.reserve(workersWanted);
    for (uint32_t i = 0; i < workersWanted; i++) {
        // Capture the generation on THIS thread, before the caller can
        // bump it for the first cycle. A worker that loaded its own
        // starting generation could observe the post-bump value and
        // park waiting for a cycle that is already in flight --
        // wedging the barrier on a cycle no worker will run.
        uint64_t gen = startGen_.load(std::memory_order_acquire);
        workers_.emplace_back([this, gen] { workerMain(gen); });
    }
}

void
Kernel::stopWorkers()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> g(poolMutex_);
        stopPool_.store(true, std::memory_order_release);
    }
    poolCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
    stopPool_.store(false, std::memory_order_relaxed);
}

void
Kernel::runDomains()
{
    while (true) {
        // acq_rel: the acquire half pairs with the release store that
        // reset the cursor for this cycle, so even a thread that never
        // observed the startGen_ bump (a straggler from the previous
        // cycle) sees the new cycle_ and the published mirrors before
        // it runs a domain.
        uint32_t d = claimCursor_.fetch_add(1, std::memory_order_acq_rel);
        if (d >= domainCount_)
            return;
        try {
            runDomainCycle(ctxs_[d]);
        } catch (...) {
            // Park the fault (tryFire already rolled the rule back);
            // the main thread rethrows the lowest-domain one after the
            // barrier, so the surfaced fault is deterministic no
            // matter how threads interleaved.
            domainFaults_[d] = std::current_exception();
        }
        // Timestamp before the done-publication: the barrier release
        // reads it to account this domain's sync wait.
        ctxs_[d].windowDoneNs = uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
        if (domainDone_)
            domainDone_[d].store(true, std::memory_order_release);
        doneCount_.fetch_add(1, std::memory_order_release);
    }
}

void
Kernel::runDomainCycle(detail::ExecContext &c)
{
    // Runs this domain through the whole sync window: windowWidth_
    // consecutive simulated cycles with no barrier in between. The
    // domain's kernel-visible time is c.localCycle; cross-domain
    // reads see the mirrors published at the window start, which the
    // latency-lagged TimedFifo views make indistinguishable from the
    // sequential start-of-cycle views (see timed_fifo.hh).
    detail::CtxScope scope(&c);
    auto t0 = std::chrono::steady_clock::now();
    uint64_t base = cycle_ - windowWidth_;
    uint32_t winFired = 0;
    for (uint32_t k = 1; k <= windowWidth_; k++) {
        c.localCycle = base + k;
        c.lastFired = runCtxCycle(c);
        winFired += c.lastFired;
    }
    c.windowFired = winFired;
    c.execNs += nsSince(t0);
}

void
Kernel::workerMain(uint64_t seen)
{
    while (true) {
        uint64_t gen = seen;
        // Spin briefly — in steady state the next cycle begins within
        // microseconds — then park on the condition variable.
        for (uint32_t spins = 0; spins < 4096; spins++) {
            gen = startGen_.load(std::memory_order_acquire);
            if (gen != seen || stopPool_.load(std::memory_order_acquire))
                break;
            detail::cpuRelax();
        }
        if (gen == seen && !stopPool_.load(std::memory_order_acquire)) {
            std::unique_lock<std::mutex> l(poolMutex_);
            poolCv_.wait(l, [&] {
                return startGen_.load(std::memory_order_relaxed) != seen ||
                       stopPool_.load(std::memory_order_relaxed);
            });
            gen = startGen_.load(std::memory_order_acquire);
        }
        if (stopPool_.load(std::memory_order_acquire))
            return;
        seen = gen;
        runDomains();
    }
}

uint32_t
Kernel::runParallelWindow(uint32_t width)
{
    // One sync epoch: every domain runs @p width consecutive cycles,
    // then all domains meet at a single barrier where the boundary
    // mirrors are re-published. cycle_ was already advanced past the
    // window by the caller; domains derive their per-cycle local
    // clocks from cycle_ - width + k. width may not exceed the
    // effective lookahead (min cross-channel latency), which is what
    // makes the window-start mirror views sufficient for every
    // cross-domain read inside the window.
    ensurePool();
    // Batched exchange: latch the boundary counters (scalar + epoch
    // history) every cross-domain consumer may read this window.
    // Published values stay frozen until the next barrier.
    for (StateBase *s : mirrors_)
        s->publishMirror();
    parallelCycles_ += width;
    syncEpochs_++;
    windowWidth_ = width;
    for (uint32_t d = 0; d < domainCount_; d++)
        domainDone_[d].store(false, std::memory_order_relaxed);
    doneCount_.store(0, std::memory_order_relaxed);
    claimCursor_.store(0, std::memory_order_release);
    {
        std::lock_guard<std::mutex> g(poolMutex_);
        startGen_.fetch_add(1, std::memory_order_release);
    }
    poolCv_.notify_all();
    if (mainParticipates_)
        runDomains();
    auto t0 = std::chrono::steady_clock::now();
    // The stuck-worker budget covers the whole window: a domain has
    // width cycles of work to finish before this barrier.
    uint64_t timeoutNs = barrierTimeoutNs_ * width;
    uint32_t spins = 0;
    while (doneCount_.load(std::memory_order_acquire) < domainCount_) {
        if (++spins < 1024) {
            detail::cpuRelax();
            continue;
        }
        std::this_thread::yield();
        if (timeoutNs && nsSince(t0) > timeoutNs) {
            // Stuck-worker detection: a domain failed to finish its
            // slice of the window within the budget. Name the
            // unfinished domains and fault instead of spinning
            // forever. The pool is left wedged on the stuck rule —
            // recovery means falling back to a sequential scheduler
            // (which HardenedRunner's degradation ladder does).
            barrierWaitNs_ += nsSince(t0);
            std::string stuck;
            for (uint32_t d = 0; d < domainCount_; d++) {
                if (!domainDone_[d].load(std::memory_order_acquire)) {
                    if (!stuck.empty())
                        stuck += ", ";
                    stuck += domainName(d);
                }
            }
            FaultContext fc;
            fc.module = "kernel";
            fc.cycle = cycle_;
            throw KernelFault(
                FaultKind::Watchdog,
                "parallel sync barrier timeout after " +
                    std::to_string(timeoutNs) + " ns (window " +
                    std::to_string(width) +
                    " cycles); unfinished domains: " + stuck,
                std::move(fc));
        }
    }
    barrierWaitNs_ += nsSince(t0);
    // Per-domain sync wait: time between a domain finishing its
    // window and the barrier releasing (all domains done) — the
    // imbalance cost progressReport()/Perfetto surface per domain.
    uint64_t releaseNs = uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    for (detail::ExecContext &c : ctxs_) {
        if (releaseNs > c.windowDoneNs)
            c.syncWaitNs += releaseNs - c.windowDoneNs;
    }
    // Surface a worker-side fault, lowest domain first (deterministic
    // across interleavings). Barrier already reached: every other
    // domain completed its window normally. The faulting domain may
    // have stopped mid-window; cycle_ already counts the full window
    // (recovery restores a sync-epoch checkpoint, or accepts losing
    // up to width-1 cycles of that domain's work — the same
    // approximation class as the old mid-cycle resume).
    for (uint32_t d = 0; d < domainCount_; d++) {
        if (domainFaults_[d]) {
            std::exception_ptr e = domainFaults_[d];
            for (uint32_t i = 0; i < domainCount_; i++)
                domainFaults_[i] = nullptr;
            std::rethrow_exception(e);
        }
    }
    uint32_t fired = 0;
    for (detail::ExecContext &c : ctxs_)
        fired += c.windowFired;
    return fired;
}

// ------------------------------------------------ event-driven internals

void
Kernel::maybeSleep(detail::ExecContext &c, Rule &r)
{
    // Conservative fallbacks: a rule stays always-awake when its
    // not-ready condition cannot be pinned to a captured read set —
    // a when() guard that passed but whose body then failed an
    // implicit guard (body reads are untracked), overflowed capture,
    // a time-dependent guard (cycleCount read), a read of a published
    // cross-domain value (noteCrossRead), or a guard that reads no
    // state at all (nothing would ever wake it, and the reads may
    // live outside the state discipline).
    if (!c.attemptCaptured || c.readOverflow || c.cycleRead ||
        c.readSet.empty())
        return;
    for (StateBase *s : c.readSet) {
        // An element committed earlier this cycle still presents its
        // start-of-cycle value through readStable(); the guard may
        // flip at the next cycle edge with no further commit, so
        // retry next cycle instead of sleeping. (Context-local cycle:
        // inside a parallel sync window "this cycle" is the domain's
        // local clock.)
        if (s->lastCommitCycle_ == currentCycle())
            return;
    }
    r.asleep_ = true;
    r.sleepGen_++;
    r.last_ = Rule::Outcome::Sleeping;
    c.sleeps++;
    c.clearAwakeBit(r.ctxPos_);
    for (StateBase *s : c.readSet)
        addWaiter(s, &r);
}

void
Kernel::addWaiter(StateBase *s, Rule *r)
{
    auto &w = s->waiters_;
    if (w.size() >= s->waiterCompactAt_) {
        auto stale = [](const std::pair<Rule *, uint64_t> &e) {
            return !e.first->asleep_ || e.first->sleepGen_ != e.second;
        };
        w.erase(std::remove_if(w.begin(), w.end(), stale), w.end());
        s->waiterCompactAt_ = std::max<size_t>(8, 2 * w.size() + 8);
    }
    w.emplace_back(r, r->sleepGen_);
}

void
Kernel::wakeWaiters(StateBase *s)
{
    // Waiters subscribed from the context that owns the state's
    // domain, so a wake touches only that context's wheel (or any
    // wheel, from the between-cycle main context).
    for (auto &[r, gen] : s->waiters_) {
        if (r->asleep_ && r->sleepGen_ == gen) {
            r->asleep_ = false;
            r->sleepGen_++;
            r->ctx_->setAwakeBit(r->ctxPos_);
            r->ctx_->wakes++;
        }
    }
    s->waiters_.clear();
    s->waiterCompactAt_ = 8;
}

void
Kernel::wakeAll()
{
    for (Rule *r : rulePtrs_) {
        if (r->asleep_) {
            r->asleep_ = false;
            r->sleepGen_++;
        }
    }
    for (StateBase *s : states_) {
        s->waiters_.clear();
        s->waiterCompactAt_ = 8;
    }
    mainCtx_.resetWheel();
    for (detail::ExecContext &c : ctxs_)
        c.resetWheel();
}

// -------------------------------------------------- compiled scheduler

void
Kernel::computeCmInertia()
{
    if (cmInertComputed_)
        return;
    cmInertComputed_ = true;
    for (Rule *r : rulePtrs_)
        r->cmInert_ = true;

    // A rule is CM-inert iff, against every later-scheduled rule,
    // every same-module method pair of the two closures is LT or CF —
    // then its fires can never make a later call illegal (no bit of
    // its methods appears in any later method's illegalBeforeMask),
    // and nothing scheduled before it can block it either (a C pair
    // disqualifies both sides, and a GT pair against an earlier rule
    // is the same pair seen from the other end). Unlike
    // computeRuleRelation(), subcall-shadowed pairs are NOT skipped: a
    // parent-declared CF only promises that the *dynamic* CM check
    // will catch the cycles where the sub-units collide (see
    // Method::subcalls()), so a shadowed C pair must keep both rules
    // on the checked path.
    uint32_t n = uint32_t(schedule_.size());
    for (uint32_t i = 0; i < n; i++) {
        Rule *a = schedule_[i];
        for (uint32_t j = i + 1; j < n; j++) {
            Rule *b = schedule_[j];
            if (!a->cmInert_ && !b->cmInert_)
                continue;
            for (const auto &[ma, pa] : a->closure_) {
                for (const auto &[mb, pb] : b->closure_) {
                    if (&ma->owner() != &mb->owner())
                        continue;
                    Conflict rel = ma->owner().cm(*ma, *mb);
                    if (rel == Conflict::C || rel == Conflict::GT) {
                        a->cmInert_ = false;
                        b->cmInert_ = false;
                    }
                }
            }
        }
    }
}

void
Kernel::compileSchedule()
{
    computeCmInertia();
    // The table is indexed by schedule position; elaborate() verified
    // that Rule::schedPos() matches it, and the sequential contexts'
    // sched is the global schedule, so table[pos].rule->schedPos()
    // == pos holds by construction. Re-verify cheaply: a future
    // reordering pass that forgets to refresh schedPos_ would
    // otherwise mis-key the obs timeline and this table silently.
    mainCtx_.ctable.clear();
    mainCtx_.ctable.reserve(schedule_.size());
    bool allFast = !schedule_.empty();
    for (uint32_t p = 0; p < schedule_.size(); p++) {
        Rule *r = schedule_[p];
        if (r->schedPos_ != p)
            kfault(FaultKind::DesignError, r->name(),
                   "stale schedPos %u at compiled table position %u",
                   r->schedPos_, p);
        detail::CompiledEntry e;
        e.rule = r;
        e.guard = r->guard_ ? &r->guard_ : nullptr;
        e.body = &r->body_;
        e.fast = r->compiledFast_;
        e.lite = r->compiledFast_ && r->cmInert_;
        allFast = allFast && e.fast;
        mainCtx_.ctable.push_back(e);
    }
    mainCtx_.fusedCommit = allFast;
}

void
Kernel::startCompiled()
{
    // Profiling regime: every rule starts on the event-driven residue
    // path (so idle designs keep their sleep/wake wins from cycle
    // one) and the attempt counters are baselined for the hot-rule
    // promotion at the end of the prefix. profileCycles == 0 is the
    // fully static schedule: everything fast immediately.
    compiledRespecialized_ = compiledProfileCycles_ == 0;
    compiledProfileStart_ = cycle_;
    for (Rule *r : rulePtrs_) {
        r->compiledFast_ = compiledProfileCycles_ == 0;
        r->profBase_ = r->fired_.value() + r->guardAborts_.value() +
                       r->cmAborts_.value();
    }
    compileSchedule();
}

void
Kernel::respecializeCompiled()
{
    compiledRespecialized_ = true;
    uint64_t window = cycle_ - compiledProfileStart_;
    if (window == 0)
        return;
    for (Rule *r : rulePtrs_) {
        uint64_t attempts = r->fired_.value() + r->guardAborts_.value() +
                            r->cmAborts_.value() - r->profBase_;
        // Rules attempted (not slept through) on at least hotRate of
        // the profiled cycles gain nothing from the sleep machinery:
        // promote them to the fast path. The cold residue keeps
        // sleeping. Promotion never changes which rules *fire*, so
        // architectural state evolution is unaffected.
        r->compiledFast_ =
            double(attempts) >= compiledHotRate_ * double(window);
    }
    compileSchedule();
    wakeAll(); // a promoted rule may be asleep; fast rules stay awake
}

void
Kernel::setCompiledProfile(uint64_t profileCycles, double hotRate)
{
    if (inRule())
        kfault(FaultKind::ApiMisuse, "kernel",
               "setCompiledProfile() inside a rule");
    compiledProfileCycles_ = profileCycles;
    compiledHotRate_ = hotRate;
    if (elaborated_ && sched_ == SchedulerKind::Compiled) {
        startCompiled();
        wakeAll();
    }
}

uint32_t
Kernel::compiledFastRuleCount() const
{
    if (sched_ != SchedulerKind::Compiled)
        return 0;
    uint32_t n = 0;
    for (const detail::CompiledEntry &e : mainCtx_.ctable)
        n += e.fast;
    return n;
}

void
Kernel::bindContexts()
{
    parallelActive_ = sched_ == SchedulerKind::Parallel && domainCount_ > 1;
    if (parallelActive_) {
        for (detail::ExecContext &c : ctxs_) {
            for (uint32_t p = 0; p < c.sched.size(); p++) {
                c.sched[p]->ctx_ = &c;
                c.sched[p]->ctxPos_ = p;
            }
        }
    } else {
        for (uint32_t p = 0; p < schedule_.size(); p++) {
            schedule_[p]->ctx_ = &mainCtx_;
            schedule_[p]->ctxPos_ = p;
        }
    }
    if (sched_ == SchedulerKind::Compiled)
        startCompiled();
    else
        mainCtx_.fusedCommit = false;
}

void
Kernel::setScheduler(SchedulerKind k)
{
    if (inRule())
        kfault(FaultKind::ApiMisuse, "kernel",
               "setScheduler() inside a rule");
    sched_ = k;
    if (elaborated_)
        bindContexts();
    wakeAll();
}

uint64_t
Kernel::run(uint64_t n)
{
    // The multi-cycle lookahead driver: under the parallel scheduler
    // (and no per-cycle observer) advance in sync windows of up to
    // effectiveLookahead() cycles — one barrier per window instead of
    // one per cycle. Stops exactly at n. Sequential schedulers and
    // cycle()/runUntil() keep the per-cycle path.
    uint64_t fired = 0;
    uint64_t left = n;
    while (left > 0) {
        uint32_t stride = syncStride();
        if (stride <= 1) {
            fired += cycle();
            left--;
            continue;
        }
        if (!elaborated_)
            kfault(FaultKind::ApiMisuse, "kernel",
                   "run() before elaboration");
        uint64_t w = stride < left ? stride : left;
        cycle_ += w;
        uint32_t winFired = runParallelWindow(uint32_t(w));
        fired += winFired;
        // cycleEnd() is intentionally not invoked for window interior
        // cycles: syncStride() > 1 only when no installed observer
        // needs per-cycle hooks (KernelObserver::needsPerCycle()).
#ifndef CMD_NO_OBS
        if (obs_)
            obs_->cycleEnd(cycle_, winFired);
#endif
        left -= w;
    }
    return fired;
}

bool
Kernel::runUntil(const std::function<bool()> &done, uint64_t maxCycles)
{
    for (uint64_t i = 0; i < maxCycles; i++) {
        if (done())
            return true;
        cycle();
    }
    return done();
}

// ---------------------------------------------------------- counter getters

uint64_t
Kernel::ruleAttemptCount() const
{
    return sumCtx([](const detail::ExecContext &c) { return c.attempts; });
}

uint64_t
Kernel::sleepSkipCount() const
{
    return sumCtx([](const detail::ExecContext &c) { return c.sleepSkips; });
}

uint64_t
Kernel::sleepCount() const
{
    return sumCtx([](const detail::ExecContext &c) { return c.sleeps; });
}

uint64_t
Kernel::wakeCount() const
{
    return sumCtx([](const detail::ExecContext &c) { return c.wakes; });
}

uint64_t
Kernel::guardThrowCount() const
{
    return sumCtx([](const detail::ExecContext &c) { return c.guardThrows; });
}

uint64_t
Kernel::fastGuardFailCount() const
{
    return sumCtx(
        [](const detail::ExecContext &c) { return c.fastGuardFails; });
}

// -------------------------------------------------------------- elaboration

Conflict
Kernel::computeRuleRelation(const Rule &a, const Rule &b) const
{
    bool anyC = false, anyLt = false, anyGt = false;
    for (const auto &[ma, pa] : a.closure_) {
        for (const auto &[mb, pb] : b.closure_) {
            if (&ma->owner() != &mb->owner())
                continue;
            // A pair reached through two parent methods of one module
            // is governed by the parent's own CM entry (which the
            // outer loops also visit directly); skip the shadowed
            // submodule pair. See Method::subcalls().
            bool viaSubcall = pa != ma || pb != mb;
            if (viaSubcall && &pa->owner() == &pb->owner())
                continue;
            Conflict rel = ma->owner().cm(*ma, *mb);
            switch (rel) {
              case Conflict::C:
                anyC = true;
                break;
              case Conflict::LT:
                anyLt = true;
                break;
              case Conflict::GT:
                anyGt = true;
                break;
              case Conflict::CF:
                break;
            }
        }
    }
    if (anyC || (anyLt && anyGt))
        return Conflict::C;
    if (anyLt)
        return Conflict::LT;
    if (anyGt)
        return Conflict::GT;
    return Conflict::CF;
}

void
Kernel::computeDomains()
{
    // Union-find over one node per hint group plus one node per
    // boundary endpoint module. Boundary endpoints start detached from
    // their construction scope — that detachment IS the cut: the only
    // way two endpoints of one TimedFifo end up in one domain is some
    // *other* shared module (or hint) joining their components.
    uint32_t nNodes = static_cast<uint32_t>(hintNames_.size());
    for (Module *m : modules_)
        m->partNode_ = m->boundarySide_ ? nNodes++ : m->hintGroup_;

    std::vector<uint32_t> uf(nNodes);
    std::iota(uf.begin(), uf.end(), 0u);
    auto find = [&uf](uint32_t x) {
        while (uf[x] != x) {
            uf[x] = uf[uf[x]]; // path halving
            x = uf[x];
        }
        return x;
    };
    auto unite = [&](uint32_t a, uint32_t b) {
        a = find(a);
        b = find(b);
        if (a != b)
            uf[std::max(a, b)] = std::min(a, b);
    };

    // A rule couples its construction scope with every module it can
    // reach through its method closure. Same-cycle coupling that does
    // not go through a method call (a rule directly reading a state
    // element) is covered because rules and the state they touch
    // directly share a construction scope; violations of that
    // convention are caught at runtime by the domain access checks.
    for (Rule *r : rulePtrs_) {
        for (const auto &[m, anc] : r->closure_)
            unite(r->hintGroup_, m->owner().partNode_);
    }

    // Densify components that contain rules into domain ids, in
    // schedule order so domain 0 holds the earliest-scheduled rule.
    constexpr uint32_t kUnassigned = ~0u;
    std::vector<uint32_t> domainOfRoot(nNodes, kUnassigned);
    domainCount_ = 0;
    for (Rule *r : schedule_) {
        uint32_t root = find(r->hintGroup_);
        if (domainOfRoot[root] == kUnassigned)
            domainOfRoot[root] = domainCount_++;
        r->domain_ = domainOfRoot[root];
    }
    if (domainCount_ == 0)
        domainCount_ = 1;

    auto domainOfNode = [&](uint32_t node) {
        uint32_t d = domainOfRoot[find(node)];
        return d == kUnassigned ? 0u : d;
    };
    for (Module *m : modules_)
        m->domain_ = domainOfNode(m->partNode_);
    for (StateBase *s : states_) {
        s->domain_ = s->domainOwner_ ? s->domainOwner_->domain_
                                     : domainOfNode(s->hintGroup_);
    }
    for (const Boundary &b : boundaries_)
        *b.crossFlag = b.a->domain_ != b.b->domain_;

    // One execution context per domain, each holding its slice of the
    // global schedule (relative order within a domain is preserved).
    ctxs_.clear();
    for (uint32_t d = 0; d < domainCount_; d++) {
        ctxs_.emplace_back();
        ctxs_.back().domainId = d;
        ctxs_.back().kernel = this;
    }
    for (Rule *r : schedule_)
        ctxs_[r->domain_].sched.push_back(r);
    mainCtx_.sched = schedule_;

    // Name each domain after the hint group of its earliest-scheduled
    // rule (watchdog dumps and barrier-timeout faults name domains).
    domainNames_.assign(domainCount_, "");
    for (Rule *r : schedule_) {
        std::string &nm = domainNames_[r->domain_];
        if (nm.empty()) {
            const std::string &hint = hintNames_[r->hintGroup_];
            nm = hint.empty() ? "d" + std::to_string(r->domain_) : hint;
        }
    }
    for (uint32_t d = 0; d < domainCount_; d++) {
        if (domainNames_[d].empty())
            domainNames_[d] = "d" + std::to_string(d);
    }

    // PDES lookahead: the sync window the parallel scheduler may run
    // between barriers is bounded by the minimum latency over all
    // channels whose endpoints landed in different domains. A
    // latency-0 cross-domain channel would make same-cycle traffic
    // cross the cut — it has no lookahead to give and would silently
    // degenerate every window to per-cycle sync, so it is a named
    // elaboration-time design error instead.
    fifoMinLookahead_ = ~0u;
    for (const Boundary &b : boundaries_) {
        if (!*b.crossFlag || !b.chan)
            continue;
        uint32_t lat = b.chan->latency();
        if (lat == 0) {
            FaultContext fc;
            fc.module = b.chan->channelName();
            throw KernelFault(
                FaultKind::DesignError,
                "cross-domain channel '" + b.chan->channelName() +
                    "' has latency 0 (cut " + domainName(b.a->domain_) +
                    " -> " + domainName(b.b->domain_) +
                    "): a domain boundary needs latency >= 1 to "
                    "provide PDES lookahead",
                std::move(fc));
        }
        if (lat < fifoMinLookahead_)
            fifoMinLookahead_ = lat;
    }
    if (fifoMinLookahead_ == ~0u)
        fifoMinLookahead_ = 1; // no cross cut: windows are trivial

    domainFaults_.assign(domainCount_, nullptr);
    domainDone_ = std::make_unique<std::atomic<bool>[]>(domainCount_);
    for (uint32_t d = 0; d < domainCount_; d++)
        domainDone_[d].store(false, std::memory_order_relaxed);
}

const std::string &
Kernel::domainName(uint32_t d) const
{
    static const std::string unknown = "?";
    return d < domainNames_.size() ? domainNames_[d] : unknown;
}

void
Kernel::elaborate()
{
    if (elaborated_)
        kfault(FaultKind::ApiMisuse, "kernel", "elaborate() called twice");
    if (hintStack_.size() != 1)
        kfault(FaultKind::ApiMisuse, "kernel",
               "elaborate() inside an open DomainHint scope");

    // Materialize per-module method masks.
    for (Module *mod : modules_) {
        uint32_t n = static_cast<uint32_t>(mod->methods_.size());
        mod->cmFlat_.assign(size_t(n) * n, Conflict::CF);
        for (uint32_t i = 0; i < n; i++) {
            for (uint32_t j = 0; j < n; j++) {
                mod->cmFlat_[size_t(i) * n + j] =
                    mod->cm(mod->methods_[i], mod->methods_[j]);
            }
        }
        for (uint32_t j = 0; j < n; j++) {
            Method &m = mod->methods_[j];
            m.illegalBeforeMask_ = 0;
            m.intraConflictMask_ = 0;
            for (uint32_t i = 0; i < n; i++) {
                Conflict rel = mod->cmFlat_[size_t(i) * n + j];
                if (rel == Conflict::C || rel == Conflict::GT)
                    m.illegalBeforeMask_ |= 1ull << i;
                if (rel == Conflict::C)
                    m.intraConflictMask_ |= 1ull << i;
            }
        }
    }

    // Assign rule ids and compute transitive method closures.
    uint32_t nRules = static_cast<uint32_t>(rules_.size());
    for (uint32_t i = 0; i < nRules; i++)
        rulePtrs_[i]->id_ = i;
    for (Rule *r : rulePtrs_) {
        std::vector<std::pair<const Method *, const Method *>> work;
        for (const Method *m : r->uses_)
            work.emplace_back(m, m);
        r->closure_.clear();
        // Set-based dedup: the linear re-scan of closure_ this
        // replaces made elaboration quadratic in closure size for
        // large multicore configs.
        std::set<std::pair<const Method *, const Method *>> seen;
        while (!work.empty()) {
            auto [m, anc] = work.back();
            work.pop_back();
            if (!seen.insert({m, anc}).second)
                continue;
            r->closure_.push_back({m, anc});
            for (const Method *s : m->subcalls_)
                work.emplace_back(s, anc);
        }
    }

    // Fill the per-method declaration bitmaps.
    for (Module *mod : modules_) {
        for (Method &m : mod->methods_)
            m.usedByRule_.assign(nRules, false);
    }
    for (Rule *r : rulePtrs_) {
        for (const auto &[m, anc] : r->closure_)
            const_cast<Method *>(m)->usedByRule_[r->id_] = true;
    }

    // Rule-level CM and the "<" precedence graph.
    ruleCm_.assign(size_t(nRules) * nRules, Conflict::CF);
    std::vector<std::vector<uint32_t>> succ(nRules);
    std::vector<uint32_t> indeg(nRules, 0);
    for (uint32_t i = 0; i < nRules; i++) {
        for (uint32_t j = i + 1; j < nRules; j++) {
            Conflict rel = computeRuleRelation(*rulePtrs_[i], *rulePtrs_[j]);
            ruleCm_[size_t(i) * nRules + j] = rel;
            ruleCm_[size_t(j) * nRules + i] = invert(rel);
            if (rel == Conflict::LT) {
                succ[i].push_back(j);
                indeg[j]++;
            } else if (rel == Conflict::GT) {
                succ[j].push_back(i);
                indeg[i]++;
            }
        }
    }

    // Stable topological sort (registration order breaks ties). A
    // cycle of "<" edges is a combinational cycle.
    schedule_.clear();
    std::vector<bool> placed(nRules, false);
    for (uint32_t placedCount = 0; placedCount < nRules;) {
        bool progress = false;
        for (uint32_t i = 0; i < nRules; i++) {
            if (placed[i] || indeg[i] != 0)
                continue;
            placed[i] = true;
            placedCount++;
            progress = true;
            schedule_.push_back(rulePtrs_[i]);
            for (uint32_t j : succ[i])
                indeg[j]--;
        }
        if (!progress) {
            std::string names;
            for (uint32_t i = 0; i < nRules; i++) {
                if (!placed[i])
                    names += " " + rulePtrs_[i]->name();
            }
            throw ElaborationError(
                "combinational cycle among rules:" + names);
        }
    }

    for (uint32_t p = 0; p < schedule_.size(); p++)
        schedule_[p]->schedPos_ = p;

    computeDomains();
    bindContexts();
    wakeAll(); // seed the event wheels with every rule awake

    // schedPos_ is a stable per-run rule id consumed by the obs
    // timeline and the compiled dispatch tables. It is assigned once
    // above; verify at elaboration end that no later pass (domain
    // partitioning, context binding, or a future reordering) left it
    // stale relative to the final schedule_.
    for (uint32_t p = 0; p < schedule_.size(); p++) {
        if (schedule_[p]->schedPos_ != p) {
            throw ElaborationError(
                "stale schedPos for rule " + schedule_[p]->name() +
                ": cached " + std::to_string(schedule_[p]->schedPos_) +
                " but final schedule position is " + std::to_string(p));
        }
    }

    elaborated_ = true;
}

Conflict
Kernel::ruleRelation(const Rule &a, const Rule &b) const
{
    if (!elaborated_)
        kfault(FaultKind::ApiMisuse, "kernel",
               "ruleRelation() before elaboration");
    return ruleCm_[size_t(a.id_) * rules_.size() + b.id_];
}

// ----------------------------------------------------------- hardening hooks

void
Kernel::pokeState(StateBase *s)
{
    if (inRule())
        kfault(FaultKind::ApiMisuse, s->name(), "pokeState() inside a rule");
    // The element was mutated outside any rule (fault injection): the
    // sensitivity assumptions of rules sleeping on it no longer hold,
    // and any same-cycle stable-read epoch is stale.
    if (!s->waiters_.empty())
        wakeWaiters(s);
    s->lastCommitCycle_ = ~0ull;
}

void
Kernel::registerChannel(ChannelPort *p)
{
    channels_.push_back(p);
}

void
Kernel::unregisterChannel(ChannelPort *p)
{
    auto it = std::find(channels_.begin(), channels_.end(), p);
    if (it != channels_.end()) {
        *it = channels_.back();
        channels_.pop_back();
    }
}

std::string
Kernel::diagnosticReport() const
{
    std::ostringstream os;
    os << "kernel diagnostics @ cycle " << cycle_ << " (scheduler ";
    switch (sched_) {
      case SchedulerKind::Exhaustive:
        os << "exhaustive";
        break;
      case SchedulerKind::EventDriven:
        os << "event-driven";
        break;
      case SchedulerKind::Parallel:
        os << "parallel";
        break;
      case SchedulerKind::Compiled:
        os << "compiled";
        break;
    }
    os << ", " << domainCount_ << " domain(s))\n";

    auto dumpCtx = [&](const detail::ExecContext &c, const std::string &who) {
        uint32_t awake = 0;
        for (uint64_t w : c.awakeBits)
            awake += uint32_t(__builtin_popcountll(w));
        os << who << ": rules=" << c.sched.size() << " awake=" << awake
           << " attempts=" << c.attempts << " fired=" << c.fired << '\n';
        // The awake set is what the scheduler still considers runnable;
        // in a livelock it is exactly the spinning rules.
        uint32_t listed = 0;
        for (uint32_t p = 0; p < c.sched.size() && listed < 8; p++) {
            if (c.awakeBits[p >> 6] & (1ull << (p & 63))) {
                os << "  awake: " << c.sched[p]->name() << " (last="
                   << c.sched[p]->firedCount() << " fires)\n";
                listed++;
            }
        }
        if (awake > listed)
            os << "  ... " << (awake - listed) << " more awake\n";
    };
    if (parallelActive_) {
        for (const detail::ExecContext &c : ctxs_) {
            dumpCtx(c, "domain " + std::to_string(c.domainId) + " (" +
                           domainName(c.domainId) + ")");
        }
    } else {
        dumpCtx(mainCtx_, "main");
    }

    // Merged tail of the recently-fired rings, ordered by cycle.
    std::vector<std::pair<uint64_t, const Rule *>> fires;
    auto gather = [&](const detail::ExecContext &c) {
        uint64_t n = std::min<uint64_t>(c.firePos, detail::kFireRingSize);
        for (uint64_t i = c.firePos - n; i < c.firePos; i++) {
            const auto &e = c.fireRing[i % detail::kFireRingSize];
            fires.emplace_back(e.second, e.first);
        }
    };
    gather(mainCtx_);
    for (const detail::ExecContext &c : ctxs_)
        gather(c);
    std::stable_sort(fires.begin(), fires.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    if (fires.size() > detail::kFireRingSize)
        fires.erase(fires.begin(), fires.end() - detail::kFireRingSize);
    if (!fires.empty()) {
        os << "last " << fires.size() << " rule fires (oldest first):\n";
        for (const auto &[cyc, r] : fires)
            os << "  @" << cyc << " " << r->name() << '\n';
    }

    for (const ChannelPort *p : channels_) {
        os << "channel " << p->channelName() << ": occupancy "
           << p->occupancy() << "/" << p->channelCapacity() << '\n';
    }
    std::string out = os.str();
#ifndef CMD_NO_OBS
    // The observability flight recorder (obs::RuleTimeline) appends
    // its last-N-events tail here, so KernelFault crash dumps that
    // embed diagnosticReport() carry it automatically.
    if (obs_)
        obs_->appendDiagnostics(out);
#endif
    return out;
}

std::vector<uint8_t>
Kernel::snapshot() const
{
    if (inRule())
        kfault(FaultKind::ApiMisuse, "kernel", "snapshot() inside a rule");
    std::vector<uint8_t> out;
    out.resize(sizeof(cycle_));
    std::copy_n(reinterpret_cast<const uint8_t *>(&cycle_), sizeof(cycle_),
                out.begin());
    for (const StateBase *s : states_)
        s->save(out);
    return out;
}

void
Kernel::restore(const std::vector<uint8_t> &snap)
{
    if (inRule())
        kfault(FaultKind::ApiMisuse, "kernel", "restore() inside a rule");
    if (snap.size() < sizeof(cycle_))
        kfault(FaultKind::Checkpoint, "kernel",
               "snapshot truncated (%zu bytes)", snap.size());
    const uint8_t *p = snap.data();
    std::copy_n(p, sizeof(cycle_), reinterpret_cast<uint8_t *>(&cycle_));
    p += sizeof(cycle_);
    for (StateBase *s : states_)
        s->restore(p);
    if (p != snap.data() + snap.size())
        kfault(FaultKind::Checkpoint, "kernel",
               "snapshot size mismatch on restore (%zu bytes, consumed %zu)",
               snap.size(), size_t(p - snap.data()));
    // Sleep bookkeeping does not survive a restore: every sensitivity
    // assumption was made against the overwritten state.
    wakeAll();
    for (StateBase *s : states_)
        s->lastCommitCycle_ = ~0ull;
    // Restore rewinds cycle_, so epoch stamps left by the pre-restore
    // run could collide with a replayed cycle number and present a
    // stale fired-mask to the CM check. Invalidate them all.
    for (Module *m : modules_) {
        m->firedEpoch_ = ~0ull;
        m->firedMask_ = 0;
        m->ruleMask_ = 0;
        m->inRuleList_ = false;
    }
}

const char *
toString(Rule::Outcome o)
{
    switch (o) {
      case Rule::Outcome::NotTried:
        return "not-tried";
      case Rule::Outcome::Disabled:
        return "disabled";
      case Rule::Outcome::GuardFalse:
        return "guard-false";
      case Rule::Outcome::CmBlocked:
        return "cm-blocked";
      case Rule::Outcome::Fired:
        return "fired";
      case Rule::Outcome::Sleeping:
        return "sleeping";
    }
    return "?";
}

KernelReport
Kernel::report() const
{
    KernelReport rep;
    rep.scheduler = "exhaustive";
    if (sched_ == SchedulerKind::EventDriven)
        rep.scheduler = "event-driven";
    else if (sched_ == SchedulerKind::Parallel)
        rep.scheduler = "parallel";
    else if (sched_ == SchedulerKind::Compiled) {
        rep.scheduler = "compiled";
        rep.compiledFastRules = compiledFastRuleCount();
    }
    rep.cycle = cycle_;
    rep.domains = domainCount_;
    rep.attempts = ruleAttemptCount();
    rep.sleepSkips = sleepSkipCount();
    rep.sleeps = sleepCount();
    rep.wakes = wakeCount();
    rep.guardThrows = guardThrowCount();
    rep.fastGuardFails = fastGuardFailCount();
    rep.rules.reserve(schedule_.size());
    for (const Rule *r : schedule_) {
        KernelReport::RuleLine line;
        line.name = r->name();
        line.outcome = toString(r->last_);
        line.fired = r->firedCount();
        line.guardAborts = r->guardAbortCount();
        line.cmAborts = r->cmAbortCount();
        line.domain = r->domain_;
        rep.rules.push_back(std::move(line));
    }
    if (sched_ == SchedulerKind::Parallel) {
        rep.threads = effectiveThreads();
        rep.parallelCycles = parallelCycles_;
        rep.barrierWaitNs = barrierWaitNs_;
        rep.syncEpochs = syncEpochs_;
        rep.lookahead = effectiveLookahead();
        for (const detail::ExecContext &c : ctxs_) {
            KernelReport::DomainLine d;
            d.id = c.domainId;
            d.name = domainName(c.domainId);
            d.rules = c.sched.size();
            d.attempts = c.attempts;
            d.fired = c.fired;
            d.sleeps = c.sleeps;
            d.wakes = c.wakes;
            d.sleepSkips = c.sleepSkips;
            d.execNs = c.execNs;
            d.syncWaitNs = c.syncWaitNs;
            rep.domainLines.push_back(std::move(d));
        }
    }
    return rep;
}

std::string
KernelReport::text() const
{
    std::ostringstream os;
    for (const RuleLine &r : rules) {
        os << r.name << ": last=" << r.outcome << " fired=" << r.fired
           << " guardAborts=" << r.guardAborts << " cmAborts=" << r.cmAborts
           << '\n';
    }
    os << "scheduler: kind=" << scheduler << " domains=" << domains
       << " attempts=" << attempts << " sleepSkips=" << sleepSkips
       << " sleeps=" << sleeps << " wakes=" << wakes
       << " guardThrows=" << guardThrows
       << " fastGuardFails=" << fastGuardFails << '\n';
    if (std::string_view(scheduler) == "compiled")
        os << "compiled: fastRules=" << compiledFastRules << '\n';
    if (threads) {
        os << "parallel: threads=" << threads << " cycles=" << parallelCycles
           << " barrierWaitNs=" << barrierWaitNs
           << " syncEpochs=" << syncEpochs << " lookahead=" << lookahead;
        if (parallelCycles)
            os << " syncsPerCycle="
               << double(syncEpochs) / double(parallelCycles);
        os << '\n';
        for (const DomainLine &d : domainLines) {
            os << "domain " << d.id << ": rules=" << d.rules
               << " attempts=" << d.attempts << " fired=" << d.fired
               << " sleeps=" << d.sleeps << " wakes=" << d.wakes
               << " sleepSkips=" << d.sleepSkips << " execNs=" << d.execNs
               << " syncWaitNs=" << d.syncWaitNs << '\n';
        }
    }
    return os.str();
}

std::string
KernelReport::json() const
{
    std::ostringstream os;
    os << "{\"scheduler\": \"" << scheduler << "\", \"cycle\": " << cycle
       << ", \"domains\": " << domains << ", \"attempts\": " << attempts
       << ", \"sleep_skips\": " << sleepSkips << ", \"sleeps\": " << sleeps
       << ", \"wakes\": " << wakes << ", \"guard_throws\": " << guardThrows
       << ", \"fast_guard_fails\": " << fastGuardFails;
    if (std::string_view(scheduler) == "compiled")
        os << ", \"compiled_fast_rules\": " << compiledFastRules;
    if (threads) {
        os << ", \"threads\": " << threads
           << ", \"parallel_cycles\": " << parallelCycles
           << ", \"barrier_wait_ns\": " << barrierWaitNs
           << ", \"sync_epochs\": " << syncEpochs
           << ", \"lookahead\": " << lookahead;
    }
    os << ", \"rules\": [";
    for (size_t i = 0; i < rules.size(); i++) {
        const RuleLine &r = rules[i];
        os << (i ? ", " : "") << "{\"name\": \"" << jsonEscape(r.name)
           << "\", \"last\": \"" << r.outcome << "\", \"fired\": " << r.fired
           << ", \"guard_aborts\": " << r.guardAborts
           << ", \"cm_aborts\": " << r.cmAborts
           << ", \"domain\": " << r.domain << "}";
    }
    os << "]";
    if (!domainLines.empty()) {
        os << ", \"domain_detail\": [";
        for (size_t i = 0; i < domainLines.size(); i++) {
            const DomainLine &d = domainLines[i];
            os << (i ? ", " : "") << "{\"id\": " << d.id << ", \"name\": \""
               << jsonEscape(d.name) << "\", \"rules\": " << d.rules
               << ", \"attempts\": " << d.attempts
               << ", \"fired\": " << d.fired << ", \"sleeps\": " << d.sleeps
               << ", \"wakes\": " << d.wakes
               << ", \"sleep_skips\": " << d.sleepSkips
               << ", \"exec_ns\": " << d.execNs
               << ", \"sync_wait_ns\": " << d.syncWaitNs << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

std::string
Kernel::progressReport() const
{
    return report().text();
}

void
Kernel::dumpStats(std::ostream &os) const
{
    for (const Module *m : modules_)
        const_cast<Module *>(m)->stats().dump(os, m->name());
}

void
Kernel::resetAllStats()
{
    for (Module *m : modules_)
        m->stats().resetAll();
}

} // namespace cmd
