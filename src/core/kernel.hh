/**
 * @file
 * The CMD (Composable Modular Design) execution kernel.
 *
 * This implements, as an embedded C++ framework, the design discipline
 * of "Composable Building Blocks to Open up Processor Design"
 * (Zhang, Wright, Bourgeat, Arvind — MICRO 2018):
 *
 *  - Modules expose *interface methods* that combinationally access
 *    and atomically update module-internal state.
 *  - Every method is *guarded*: calling a method whose guard is false
 *    aborts the calling rule, which then "does nothing".
 *  - Modules are composed by *rules* (atomic transactions) that call
 *    methods of several modules. A rule either updates all the called
 *    modules or none of them.
 *  - Intra-cycle concurrency is governed by each module's *Conflict
 *    Matrix* (CM): for two methods f1, f2 the CM entry is one of
 *    C (conflict: may not fire in the same cycle), < (net effect is
 *    f1-then-f2), > (net effect is f2-then-f1), or CF (conflict-free:
 *    order does not matter).
 *
 * Execution model. One call to Kernel::cycle() is one clock. Within a
 * cycle the scheduler attempts rules one-by-one in a fixed *schedule
 * order* computed at elaboration (a topological order of the
 * rule-level CM's "<" edges; a cycle of "<" edges is reported as a
 * combinational cycle, like the BSV compiler does). Because rules that
 * fire in the same cycle really do execute sequentially, the promise
 * that "the resulting behavior can always be expressed as executing
 * rules one-by-one" holds by construction; the CM machinery determines
 * *which* rules may share a cycle and in what order, i.e. it makes the
 * simulation cycle-faithful to the hardware the BSV compiler would
 * generate.
 *
 * Enforcement (the role the BSV compiler plays in the paper):
 *  - a rule may only call methods it declared with Rule::uses()
 *    (plus methods reachable through Method::subcalls());
 *  - a method call is *CM-legal* only if, for every method of the same
 *    module already called by a rule that fired earlier this cycle,
 *    the CM entry permits earlier-before-this (i.e. is "<" or CF);
 *    otherwise the calling rule is blocked out of this cycle;
 *  - two methods with a C entry may never be called by the same rule;
 *  - state written twice by one rule (through Reg and friends) is a
 *    design error (double write), as in BSV.
 *
 * State visibility. All state lives in Reg / RegArray / Ehr elements
 * (see reg.hh, ehr.hh). Reads performed by a rule see the values as of
 * the start of that rule; writes are journaled and commit only if the
 * rule fires. Hence "x <= y; y <= x" swaps, and an aborted rule leaves
 * no trace. A rule firing later in the same cycle sees the committed
 * effects of earlier rules — exactly the "<" semantics.
 *
 * Parallel execution (SchedulerKind::Parallel). At elaboration the
 * design is partitioned into *domains*: connected components of the
 * rule/module/state coupling graph, where edges that pass exclusively
 * through a TimedFifo are cut (the FIFO's latency is the PDES
 * lookahead). Cross-domain rule pairs are provably conflict-free —
 * computeRuleRelation() only produces C/</> for method pairs of one
 * module, and a shared module would have merged the two domains — so
 * domains may execute concurrently within a cycle without changing the
 * one-rule-at-a-time semantics, provided every cross-domain *read*
 * observes only start-of-cycle values. TimedFifo endpoints guarantee
 * that by construction (see timed_fifo.hh); any other cross-domain
 * access is a design error caught at runtime. See DESIGN.md
 * "Parallel execution" for the full argument.
 */
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/fault.hh"
#include "core/log.hh"
#include "core/stats.hh"

namespace cmd {

class Kernel;
class Module;
class Method;
class Rule;
class StateBase;

/** Conflict-matrix entry for a pair of methods (or rules). */
enum class Conflict : uint8_t {
    C,  ///< conflict: may not execute in the same cycle
    LT, ///< first < second: net effect is first-then-second
    GT, ///< first > second: net effect is second-then-first
    CF, ///< conflict-free: order does not affect the final state
};

/** Invert a CM entry (the relation seen from the other operand). */
Conflict invert(Conflict c);

/** Printable name of a CM entry. */
const char *toString(Conflict c);

/**
 * Rule-scheduling strategy of a Kernel.
 *
 *  - Exhaustive: attempt every enabled rule every cycle (the reference
 *    scheduler; what the seed kernel always did).
 *  - EventDriven: rules whose attempt ended in a false guard are put
 *    to sleep on the set of state elements they read; they are skipped
 *    until one of those elements is committed (by a firing rule or by
 *    runAtomically). Attempts whose read set cannot be captured
 *    exactly — read-set overflow, a guard that reads cycleCount(), a
 *    CM-blocked rule, a when() guard that passed but whose body then
 *    failed an implicit guard — conservatively stay awake, so the
 *    architectural state evolution is bit-identical to Exhaustive.
 *  - Parallel: the event-driven scheduler, run concurrently across the
 *    domains computed at elaboration on a persistent thread pool with
 *    a per-cycle barrier. Falls back to the sequential event-driven
 *    walk when the design partitions into a single domain. State
 *    evolution stays bit-identical to the other schedulers.
 *  - Compiled: the schedule is compiled at elaboration into a flat
 *    dispatch table walked in schedule order (what the BSV compiler
 *    does statically). Rules classified as CM-inert have their
 *    per-method-call bookkeeping elided entirely, and a short
 *    profiling prefix re-specializes the table once: empirically hot
 *    rules move onto a streamlined fire path with no sensitivity
 *    capture, while the cold residue keeps the event-driven
 *    sleep/wake machinery. State evolution stays bit-identical to
 *    the other schedulers; see DESIGN.md "Static scheduling" for the
 *    argument and for the (enforcement-only) checks the fast path
 *    legitimately skips.
 */
enum class SchedulerKind : uint8_t {
    Exhaustive,
    EventDriven,
    Parallel,
    Compiled,
};

/**
 * Thrown when a guard is false: the enclosing rule aborts and "does
 * nothing". This is the implicit-guard mechanism of CMD; raise it via
 * cmd::require().
 */
struct GuardFail
{
};

/**
 * Thrown when a method call would violate the conflict matrix given
 * the rules already fired this cycle: the rule is blocked out of this
 * cycle (it may fire on a later one). This corresponds to the BSV
 * scheduler refusing to fire two rules together.
 */
struct CmBlock
{
    const Method *method = nullptr;
};

/** Raised on design errors detected at elaboration time. */
class ElaborationError : public std::runtime_error
{
  public:
    explicit ElaborationError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Guard helper: abort the current rule unless @p cond holds. */
inline void
require(bool cond)
{
    if (!cond)
        throw GuardFail{};
}

/**
 * Fault-injection and diagnostics hook of a latency-bearing channel
 * (TimedFifo registers one per fifo). The watchdog dumps occupancies
 * through it; the fault injector drops or delays in-flight messages.
 * The fault methods must be called between cycles only — they mutate
 * channel state through an atomic action on the owning kernel.
 */
class ChannelPort
{
  public:
    virtual ~ChannelPort() = default;

    virtual const std::string &channelName() const = 0;
    virtual uint32_t occupancy() const = 0;
    virtual uint32_t channelCapacity() const = 0;
    /** Silently discard the oldest in-flight message. @return dropped */
    virtual bool faultDropHead() = 0;
    /** Age the oldest message by @p extraCycles more. @return delayed */
    virtual bool faultDelayHead(uint32_t extraCycles) = 0;
    /**
     * Visibility delay in cycles. When the channel is a cross-domain
     * cut, this is its PDES lookahead contribution: the sync window
     * is the minimum latency over all cross-domain channels.
     */
    virtual uint32_t latency() const = 0;
};

/**
 * Observer of the kernel's fire/commit path — the hook layer the
 * observability subsystem (src/obs) plugs into. At most one observer
 * is installed per kernel; every hook site is a single null-pointer
 * check when no observer is installed, and compiles out entirely when
 * CMD_NO_OBS is defined (the REPRO_DISABLE_OBS CMake option), so the
 * hot path is provably unaffected by disabled tracing.
 *
 * Threading contract: ruleFired/guardFailed run on whichever thread
 * executes the rule — under SchedulerKind::Parallel that is the
 * domain's worker thread, so implementations must only touch state
 * owned by the rule's domain (@p domain is the rule's elaborated
 * domain, stable across schedulers). cycleEnd and appendDiagnostics
 * run on the driving thread between cycles.
 */
class KernelObserver
{
  public:
    virtual ~KernelObserver() = default;

    /** @p r committed its effects this cycle. */
    virtual void ruleFired(const Rule &r, uint64_t cycle, uint32_t domain)
    {
        (void)r;
        (void)cycle;
        (void)domain;
    }
    /** @p r was attempted and aborted on a false guard. */
    virtual void guardFailed(const Rule &r, uint64_t cycle, uint32_t domain)
    {
        (void)r;
        (void)cycle;
        (void)domain;
    }
    /** End of Kernel::cycle(); @p fired rules committed in it. */
    virtual void cycleEnd(uint64_t cycle, uint32_t fired)
    {
        (void)cycle;
        (void)fired;
    }
    /** Extra text for Kernel::diagnosticReport() (crash dumps). */
    virtual void appendDiagnostics(std::string &out) const { (void)out; }
    /**
     * Return false to let the parallel scheduler run multi-cycle sync
     * windows. When any installed observer needs cycleEnd() called at
     * every simulated cycle, the kernel clamps the sync stride to 1.
     * Inside a multi-cycle window cycleEnd() is NOT invoked for the
     * interior cycles; ruleFired/guardFailed still fire with exact
     * per-domain local cycle numbers.
     */
    virtual bool needsPerCycle() const { return true; }
};

/**
 * Machine-readable snapshot of the scheduler's progress state: what
 * progressReport() used to render straight to text. Built from the
 * per-rule outcome/counter state plus the per-context scheduler
 * counters; render with text() (the human format) or json().
 */
struct KernelReport
{
    struct RuleLine
    {
        std::string name;
        const char *outcome; ///< toString(Rule::Outcome)
        uint64_t fired = 0;
        uint64_t guardAborts = 0;
        uint64_t cmAborts = 0;
        uint32_t domain = 0;
    };
    struct DomainLine
    {
        uint32_t id = 0;
        std::string name;
        uint64_t rules = 0;
        uint64_t attempts = 0;
        uint64_t fired = 0;
        uint64_t sleeps = 0;
        uint64_t wakes = 0;
        uint64_t sleepSkips = 0;
        uint64_t execNs = 0;
        /// ns this domain spent waiting at sync barriers for the
        /// other domains (window completion to barrier release).
        uint64_t syncWaitNs = 0;
    };

    const char *scheduler = "exhaustive";
    uint64_t cycle = 0;
    uint32_t domains = 1;
    /// Compiled scheduler only: rules on the fast dispatch path.
    uint32_t compiledFastRules = 0;
    uint64_t attempts = 0;
    uint64_t sleepSkips = 0;
    uint64_t sleeps = 0;
    uint64_t wakes = 0;
    uint64_t guardThrows = 0;
    uint64_t fastGuardFails = 0;
    // Parallel-scheduler extras (threads == 0 otherwise):
    uint32_t threads = 0;
    uint64_t parallelCycles = 0;
    uint64_t barrierWaitNs = 0;
    /// Number of barrier synchronizations (== parallelCycles when the
    /// sync stride is 1; drops by the lookahead factor otherwise).
    uint64_t syncEpochs = 0;
    /// Effective sync window width in cycles (min cross-channel
    /// latency, possibly capped by setLookahead()).
    uint32_t lookahead = 1;
    std::vector<RuleLine> rules;
    std::vector<DomainLine> domainLines;

    /** The historical progressReport() text format. */
    std::string text() const;
    /** One JSON object (rules array + scheduler counters). */
    std::string json() const;
};

namespace detail {
/// Kernel currently executing a rule or atomic action on this thread;
/// lets requireFast() report a guard failure without a throw.
inline thread_local Kernel *activeKernel = nullptr;

/**
 * Zero the padding bytes of a trivially copyable value. State elements
 * canonicalize every value they store so that byte-wise snapshots (and
 * the digests the lockstep cosim tests compare) are deterministic:
 * without this, struct padding carries whatever happened to be on the
 * stack when the value temporary was built.
 */
template <typename T>
inline void
clearPadding(T &v)
{
#if defined(__GNUC__) && __GNUC__ >= 11
    if constexpr (!std::has_unique_object_representations_v<T>)
        __builtin_clear_padding(&v);
#else
    (void)v;
#endif
}

/** Copy of @p v with padding bytes zeroed. */
template <typename T>
inline T
cleared(T v)
{
    clearPadding(v);
    return v;
}

/// Domain id of the main context: sequential schedulers and
/// between-cycle testbench actions run under it and are exempt from
/// cross-domain access enforcement.
constexpr uint32_t kNoDomain = ~0u;

/// A rule reading more than this many state elements in one attempt
/// overflows read-set capture and stays always-awake.
constexpr size_t kSensitivityCap = 64;

/** What StateBase::noteRead() does for the attempt in flight. */
enum class ReadMode : uint8_t {
    Off,     ///< nothing (exhaustive scheduler; bodies after when())
    Enforce, ///< cross-domain access check only (parallel bodies)
    Capture, ///< record the read set + cross-domain check
};

/**
 * Per-execution-context scheduler state: the transaction bookkeeping
 * of the rule attempt in flight plus one domain's slice of the
 * schedule, its event wheel, and its counters. Sequential schedulers
 * use a single context (Kernel::mainCtx_, domainId == kNoDomain);
 * the parallel scheduler runs one context per domain, each owned by
 * exactly one thread for the duration of a cycle.
 */
/// Depth of the per-context recently-fired ring buffer (watchdog
/// crash dumps show the merged tail of these).
constexpr uint32_t kFireRingSize = 32;

/**
 * One slot of a compiled dispatch table (SchedulerKind::Compiled):
 * the rule plus everything the specialized walk needs resolved ahead
 * of time — guard and body targets, and the classification flags.
 * Tables are rebuilt whole on (re-)specialization, never patched.
 */
struct CompiledEntry
{
    Rule *rule = nullptr;
    /// when() guard to test ahead of the body; null = always attempt
    const std::function<bool()> *guard = nullptr;
    const std::function<void()> *body = nullptr;
    /// streamlined fire path: attempted every cycle, no sensitivity
    /// capture, never sleeps
    bool fast = false;
    /// CM-inert (proven at elaboration): method-call bookkeeping and
    /// the fired-mask merge are elided for this rule's attempts
    bool lite = false;
};

struct ExecContext
{
    uint32_t domainId = kNoDomain;
    Kernel *kernel = nullptr; ///< owning kernel (fault-context capture)

    // Per-rule transaction state:
    bool inRule = false;
    const Rule *currentRule = nullptr;
    std::vector<StateBase *> touched;
    std::vector<Module *> touchedModules;

    // Read-set capture / cross-domain enforcement for the attempt:
    ReadMode readMode = ReadMode::Off;
    bool cycleRead = false;       ///< attempt read cycleCount()
    bool readOverflow = false;
    bool attemptCaptured = true;  ///< read set covers the whole attempt
    bool fastGuardFail = false;   ///< requireFast() tripped
    uint64_t readMark = 0;        ///< current attempt's dedup stamp
    std::vector<StateBase *> readSet;

    /// this context's rules, in global schedule order
    std::vector<Rule *> sched;
    /// bitmap over sched positions of awake rules (the event wheel)
    std::vector<uint64_t> awakeBits;

    // Compiled scheduler (SchedulerKind::Compiled) state:
    /// dispatch table aligned with sched; empty unless compiled
    std::vector<CompiledEntry> ctable;
    /// attempt in flight is a CM-inert compiled rule: onMethodCall()
    /// returns immediately (the checks are proven unnecessary)
    bool liteCalls = false;
    /// every rule of this context is on the compiled fast path, so no
    /// rule ever sleeps here: commits skip the commit-cycle stamp and
    /// the waiter scan, and the walk degenerates to a flat array scan
    bool fusedCommit = false;

    // Counters (Kernel getters sum them across contexts):
    uint64_t attempts = 0;
    uint64_t sleepSkips = 0;
    uint64_t sleeps = 0;
    uint64_t wakes = 0;
    uint64_t guardThrows = 0;
    uint64_t fastGuardFails = 0;
    uint64_t fired = 0;
    uint64_t execNs = 0;    ///< parallel mode: time inside domain cycles
    uint32_t lastFired = 0; ///< rules fired in the most recent cycle
    /// rules fired in the current sync window (summed at the barrier)
    uint32_t windowFired = 0;

    // Multi-cycle sync windows (parallel scheduler):
    /// this domain's simulated cycle inside the current window; the
    /// kernel-visible time for every rule running on this context
    uint64_t localCycle = 0;
    /// ns this domain spent finished-and-waiting at sync barriers
    uint64_t syncWaitNs = 0;
    /// monotonic timestamp when this domain finished its window
    uint64_t windowDoneNs = 0;

    /// Ring of the last kFireRingSize (rule, cycle) fires of this
    /// context, for watchdog/fault crash dumps. firePos counts total
    /// pushes; entry i lives at fireRing[i % kFireRingSize].
    std::array<std::pair<const Rule *, uint64_t>, kFireRingSize> fireRing{};
    uint64_t firePos = 0;

    void
    noteFired(const Rule *r, uint64_t cycle)
    {
        fireRing[firePos % kFireRingSize] = {r, cycle};
        firePos++;
    }

    void
    setAwakeBit(uint32_t pos)
    {
        awakeBits[pos >> 6] |= 1ull << (pos & 63);
    }
    void
    clearAwakeBit(uint32_t pos)
    {
        awakeBits[pos >> 6] &= ~(1ull << (pos & 63));
    }
    /** First awake schedule position >= @p from, or -1. */
    int64_t
    nextAwake(uint32_t from) const
    {
        size_t w = from >> 6;
        if (w >= awakeBits.size())
            return -1;
        uint64_t cur = awakeBits[w] & (~0ull << (from & 63));
        while (true) {
            if (cur)
                return int64_t((w << 6) + __builtin_ctzll(cur));
            if (++w >= awakeBits.size())
                return -1;
            cur = awakeBits[w];
        }
    }
    /** Size the event wheel to sched and mark every rule awake. */
    void
    resetWheel()
    {
        awakeBits.assign((sched.size() + 63) / 64, 0);
        for (uint32_t p = 0; p < sched.size(); p++)
            setAwakeBit(p);
    }
};

/// Execution context of the rule attempt (or atomic action) in flight
/// on this thread; null outside of one.
inline thread_local ExecContext *activeCtx = nullptr;

/** RAII scope setting detail::activeCtx. */
struct CtxScope
{
    explicit CtxScope(ExecContext *c) : prev(activeCtx) { activeCtx = c; }
    ~CtxScope() { activeCtx = prev; }
    CtxScope(const CtxScope &) = delete;
    CtxScope &operator=(const CtxScope &) = delete;
    ExecContext *prev;
};

/**
 * Mark the attempt in flight as having read a value that can change
 * without a local commit (a published cross-domain boundary value).
 * The rule then conservatively stays awake instead of sleeping on an
 * incomplete sensitivity set.
 */
inline void
noteCrossRead()
{
    if (ExecContext *c = activeCtx)
        c->attemptCaptured = false;
}

/** Spin-wait hint for barrier loops. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
}
} // namespace detail

/**
 * RAII domain-partitioning hint: state elements, modules, and rules
 * constructed while a DomainHint is in scope are attributed to the
 * named group, and the partitioner starts from one node per group.
 * Groups are keyed by name within a kernel, so two scopes with the
 * same name (e.g. "hart0" opened once in the memory hierarchy and once
 * around the core) contribute to one group. Hints are only hints:
 * groups that turn out to share same-cycle state through a common
 * module are merged into one domain, and any coupling the partitioner
 * could not see (a direct cross-domain state access at runtime) is a
 * design error caught by the parallel scheduler's access checks.
 */
class DomainHint
{
  public:
    DomainHint(Kernel &kernel, const std::string &name);
    ~DomainHint();

    DomainHint(const DomainHint &) = delete;
    DomainHint &operator=(const DomainHint &) = delete;

  private:
    Kernel &kernel_;
};

/**
 * Base class for all state elements (registers, register arrays,
 * EHRs). Writes are staged during rule execution and either committed
 * or discarded when the rule ends; this is what makes rules atomic.
 */
class StateBase
{
  public:
    StateBase(Kernel &kernel, std::string name);
    virtual ~StateBase();

    StateBase(const StateBase &) = delete;
    StateBase &operator=(const StateBase &) = delete;

    const std::string &name() const { return name_; }

    /** Apply this rule's staged writes to the committed value. */
    virtual void commitStaged() = 0;
    /** Discard this rule's staged writes. */
    virtual void abortStaged() = 0;

    /** Append the committed value to a snapshot buffer. */
    virtual void save(std::vector<uint8_t> &out) const = 0;
    /** Restore the committed value from a snapshot buffer. */
    virtual void restore(const uint8_t *&in) = 0;

    /**
     * Latch the committed value for cross-domain readers. Called on
     * the main thread at every parallel cycle barrier for elements
     * registered with Kernel::registerMirror() (TimedFifo occupancy
     * counters); a no-op for everything else.
     */
    virtual void publishMirror() {}

    /**
     * Attribute this element to @p m's domain, overriding the
     * construction-scope hint. TimedFifo uses this to hand each of its
     * state elements to the producer- or consumer-side endpoint.
     */
    void setDomainOwner(Module *m) { domainOwner_ = m; }

  protected:
    /**
     * Record this element in the read set of the rule attempt in
     * flight. Every committed-value read path of a state element must
     * call this so the event-driven scheduler can compute sensitivity
     * sets; it is a load-and-branch when tracking is off. Under the
     * parallel scheduler it also rejects cross-domain accesses.
     */
    void noteRead() const;

    /**
     * Cycle count for journaling internals (readStable epochs). Not
     * recorded as a sensitivity: the cycle-skew it governs is handled
     * by the scheduler's commit-cycle check, whereas a *guard* that
     * genuinely depends on time must read Kernel::cycleCount() and
     * thereby stay awake.
     */
    uint64_t kernelCycle() const;

    Kernel &kernel_;

  private:
    friend class Kernel;

    std::string name_;
    uint32_t stateIdx_ = 0;       ///< position in Kernel::states_
    uint64_t readMark_ = 0;       ///< dedup stamp for read-set capture
    uint64_t lastCommitCycle_ = ~0ull;
    uint32_t waiterCompactAt_ = 8;
    /// sleeping rules sensitive to this element, with the sleep
    /// generation they subscribed under (stale entries are lazily
    /// dropped on wake or compaction)
    std::vector<std::pair<Rule *, uint64_t>> waiters_;

    // Domain partitioning (see Kernel::computeDomains()):
    uint32_t hintGroup_ = 0;        ///< hint group at construction
    Module *domainOwner_ = nullptr; ///< explicit owner (fifo endpoints)
    uint32_t domain_ = 0;           ///< resolved at elaboration
};

/**
 * An interface method of a module. Calling the method object records
 * the call with the kernel, which enforces declaration and CM
 * legality. The C++ member function implementing the method should
 * invoke this at its top, then check its guard with cmd::require().
 */
class Method
{
  public:
    /** Record a call to this method from the current rule. */
    void operator()() const;

    Module &owner() const { return owner_; }
    const std::string &name() const { return name_; }
    /** Fully qualified "module.method" name. */
    std::string fullName() const;
    uint32_t localIndex() const { return localIdx_; }

    /**
     * Declare that this method internally calls the given methods of
     * submodules. Used at elaboration to compute the transitive
     * method set of every rule, so that rule-level CM entries account
     * for methods hidden behind module boundaries.
     *
     * When two rules reach the same submodule through two *parent*
     * methods of one module, the parent's declared CM entry for that
     * method pair is authoritative and the submodule pair does not
     * contribute to the rule relation. This lets a module like the
     * paper's round-robin TwoGCD declare start CF getResult even
     * though each sub-GCD's start conflicts with its getResult: the
     * parent guarantees (dynamically) that concurrent calls touch
     * different sub-units, and the always-on runtime CM enforcement
     * still catches the cycles where they collide on one unit.
     */
    Method &subcalls(std::initializer_list<const Method *> ms);

  private:
    friend class Module;
    friend class Kernel;

    Method(Module &owner, std::string name, uint32_t localIdx);

    Module &owner_;
    std::string name_;
    uint32_t localIdx_;
    std::vector<const Method *> subcalls_;

    // Computed at elaboration from the module CM:
    /// bits of same-module methods that, once fired earlier this
    /// cycle, make calling this method illegal (CM entry C or >).
    uint64_t illegalBeforeMask_ = 0;
    /// bits of same-module methods that may not be called by the same
    /// rule as this one (CM entry C).
    uint64_t intraConflictMask_ = 0;
    /// per-rule declaration bitmap, indexed by rule id.
    std::vector<bool> usedByRule_;
};

/**
 * Base class for CMD modules. A module owns state elements, declares
 * interface methods and their conflict matrix, and may register
 * internal rules.
 *
 * The conflict matrix defaults to @p defaultCm for distinct method
 * pairs and to C for a method against itself (a method may be called
 * at most once per cycle unless declared selfCf()).
 */
class Module
{
  public:
    Module(Kernel &kernel, std::string name, Conflict defaultCm = Conflict::C);
    virtual ~Module();

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    Kernel &kernel() const { return kernel_; }
    const std::string &name() const { return name_; }

    /** Statistics group for this module. */
    StatGroup &stats() { return stats_; }

    /** Conflict-matrix entry for a pair of this module's methods. */
    Conflict cm(const Method &a, const Method &b) const;

    /** Domain this module was assigned to (valid after elaborate()). */
    uint32_t domain() const { return domain_; }

  protected:
    /** Declare a new interface method. */
    Method &method(const std::string &name);

    /** Set CM(a, b) = rel (and CM(b, a) = invert(rel)). */
    void setCm(const Method &a, const Method &b, Conflict rel);

    /** Sugar: a happens-before b when both fire in one cycle. */
    void lt(const Method &a, const Method &b) { setCm(a, b, Conflict::LT); }
    /** Sugar: a and b are conflict-free. */
    void cf(const Method &a, const Method &b) { setCm(a, b, Conflict::CF); }
    /** Sugar: a and b may not share a cycle. */
    void conflictPair(const Method &a, const Method &b)
    {
        setCm(a, b, Conflict::C);
    }
    /** Allow a to be called any number of times per cycle. */
    void selfCf(const Method &a) { setCm(a, a, Conflict::CF); }

  private:
    friend class Kernel;
    friend class Method;

    /** Epoch-synchronize per-cycle masks. */
    void syncMasks();
    /** Record a tentative (current-rule) call of local method bit. */
    void noteRuleCall(uint64_t bit);

    Kernel &kernel_;
    std::string name_;
    Conflict defaultCm_;
    StatGroup stats_;

    std::deque<Method> methods_;
    std::map<std::pair<uint32_t, uint32_t>, Conflict> cmOverride_;
    std::vector<Conflict> cmFlat_; // methods^2, filled at elaboration

    // Per-cycle scheduling state (epoch-stamped, no per-cycle reset):
    uint64_t firedMask_ = 0;  ///< methods called by rules fired this cycle
    uint64_t firedEpoch_ = ~0ull;
    uint64_t ruleMask_ = 0;   ///< methods called by the rule in flight
    bool inRuleList_ = false; ///< registered on the kernel's touch list

    // Domain partitioning:
    uint32_t hintGroup_ = 0;    ///< hint group at construction
    bool boundarySide_ = false; ///< a TimedFifo endpoint (cut point)
    uint32_t partNode_ = 0;     ///< union-find node (elaboration-local)
    uint32_t domain_ = 0;       ///< resolved at elaboration
};

/**
 * A rule: a guarded atomic action composing module methods. Rules are
 * created through Kernel::rule() and configured fluently.
 */
class Rule
{
  public:
    /**
     * Declare the methods this rule may call. Strict by default:
     * calling an undeclared method is a design error. Subcalls of
     * declared methods are implicitly included.
     */
    Rule &uses(std::initializer_list<const Method *> ms);
    /** Same, from a dynamically built list. */
    Rule &uses(const std::vector<const Method *> &ms);

    /**
     * Cheap explicit guard evaluated before attempting the body. Use
     * it for the common not-ready conditions so the (exception-based)
     * implicit-guard path stays off the fast path.
     */
    Rule &when(std::function<bool()> guard);

    /** Enable or disable the rule at runtime (e.g. config variants). */
    Rule &setEnabled(bool e);

    const std::string &name() const { return name_; }
    bool enabled() const { return enabled_; }

    /** Number of cycles in which this rule fired. */
    uint64_t firedCount() const { return fired_.value(); }
    /** Aborts due to a false guard (explicit or implicit). */
    uint64_t guardAbortCount() const { return guardAborts_.value(); }
    /** Aborts due to CM conflicts with already-fired rules. */
    uint64_t cmAbortCount() const { return cmAborts_.value(); }

    /** What happened to this rule in the most recent cycle. */
    enum class Outcome : uint8_t {
        NotTried,
        Disabled,
        GuardFalse,
        CmBlocked,
        Fired,
        Sleeping, ///< skipped: asleep on its sensitivity set
    };
    Outcome lastOutcome() const { return last_; }

    /** True while the event-driven scheduler has this rule asleep. */
    bool asleep() const { return asleep_; }

    /** Position in the elaborated schedule (valid after elaborate();
     *  stable per-run id, used by the observability timeline). */
    uint32_t schedPos() const { return schedPos_; }

  private:
    friend class Kernel;

    Rule(Kernel &kernel, std::string name, std::function<void()> body,
         uint32_t prio);

    Kernel &kernel_;
    std::string name_;
    std::function<void()> body_;
    std::function<bool()> guard_;
    std::vector<const Method *> uses_;
    /// transitive method set as (method, declared ancestor) pairs
    std::vector<std::pair<const Method *, const Method *>> closure_;
    bool enabled_ = true;
    uint32_t prio_;  // registration order; schedule tiebreak
    uint32_t id_ = 0;
    Stat fired_, guardAborts_, cmAborts_;
    Outcome last_ = Outcome::NotTried;

    // Event-driven scheduler bookkeeping:
    bool asleep_ = false;
    /// bumped on every sleep and wake; waiter entries carrying an old
    /// generation are stale and ignored
    uint64_t sleepGen_ = 0;
    uint32_t schedPos_ = 0; ///< position in Kernel::schedule_

    // Compiled scheduler classification (see Kernel::compileSchedule):
    /// proven at elaboration: no method pair of this rule against any
    /// later-scheduled rule has a C or > CM entry, so this rule can
    /// neither CM-block another rule nor be blocked itself
    bool cmInert_ = false;
    /// currently on the compiled fast dispatch path
    bool compiledFast_ = false;
    /// attempt-counter baseline captured when profiling started
    uint64_t profBase_ = 0;

    // Domain partitioning / context binding:
    uint32_t hintGroup_ = 0; ///< hint group at construction
    uint32_t domain_ = 0;    ///< resolved at elaboration
    /// context this rule currently executes under (set by binding)
    detail::ExecContext *ctx_ = nullptr;
    uint32_t ctxPos_ = 0; ///< position in ctx_->sched
};

/** Printable name of a rule outcome ("fired", "guard-false", ...). */
const char *toString(Rule::Outcome o);

/**
 * The simulation kernel: owns the rule schedule and drives cycles.
 * One Kernel is one clock domain; an entire multicore design lives in
 * a single kernel, as in the paper's FPGA prototype.
 */
class Kernel
{
  public:
    Kernel();
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Register a top-level rule. Rules execute in elaborated order. */
    Rule &rule(const std::string &name, std::function<void()> body);

    /**
     * Finish construction: materialize conflict matrices, compute
     * rule-level CM entries and the schedule order, verify there is no
     * combinational cycle, and partition the design into domains.
     * Must be called exactly once, before the first cycle(). Throws
     * ElaborationError on design errors.
     */
    void elaborate();
    bool elaborated() const { return elaborated_; }

    /** Execute one clock cycle. @return number of rules fired. */
    uint32_t cycle();

    /** Run @p n cycles. @return rules fired in total. */
    uint64_t run(uint64_t n);

    /**
     * Run until @p done returns true, at most @p maxCycles cycles.
     * @return true if @p done was satisfied.
     */
    bool runUntil(const std::function<bool()> &done, uint64_t maxCycles);

    /**
     * Current cycle number (count of completed/active cycles). Reads
     * from inside a tracked rule attempt mark the rule time-dependent,
     * which keeps it always-awake under the event-driven scheduler
     * (its guard can change with no state commit).
     */
    uint64_t
    cycleCount() const
    {
        detail::ExecContext *c = detail::activeCtx;
        if (c && c->readMode == detail::ReadMode::Capture)
            c->cycleRead = true;
        if (c && c->domainId != detail::kNoDomain)
            return c->localCycle;
        return cycle_;
    }

    /**
     * The simulated cycle as seen by the calling context: a domain
     * context inside a parallel sync window sees its own local cycle
     * (domains advance through the window independently); everywhere
     * else this is the global cycle counter. Unlike cycleCount() this
     * never marks the running attempt time-dependent — it is the
     * kernel-internal clock for commit stamps and observers.
     */
    uint64_t
    currentCycle() const
    {
        detail::ExecContext *c = detail::activeCtx;
        if (c && c->domainId != detail::kNoDomain)
            return c->localCycle;
        return cycle_;
    }

    /**
     * Select the rule-scheduling strategy. May be called at any point
     * between cycles (before or after elaboration); switching wakes
     * every rule so no stale sleep survives the previous strategy.
     */
    void setScheduler(SchedulerKind k);
    SchedulerKind scheduler() const { return sched_; }

    /**
     * Total execution threads (including the calling thread) the
     * parallel scheduler may use; 0 picks min(hardware concurrency,
     * domain count). With 1 the caller runs every domain itself —
     * same partitioned execution, no concurrency.
     */
    void setParallelThreads(uint32_t n);
    uint32_t parallelThreads() const { return threadsWanted_; }

    /**
     * Configure the compiled scheduler's profiling prefix. For the
     * first @p profileCycles cycles under SchedulerKind::Compiled,
     * every rule runs on the event-driven residue path while its
     * attempt rate is observed; the table is then re-specialized
     * once, promoting rules whose attempt rate is at least
     * @p hotRate (attempts per cycle, in [0, 1]) onto the fast
     * dispatch path — those rules were not benefiting from sleeping,
     * so the per-attempt sensitivity capture was pure overhead.
     * profileCycles == 0 skips profiling entirely: every rule
     * compiles fast immediately (the fully static schedule).
     * May be called between cycles; under an active compiled
     * scheduler it restarts profiling from the current cycle.
     */
    void setCompiledProfile(uint64_t profileCycles, double hotRate = 0.5);
    uint64_t compiledProfileCycles() const { return compiledProfileCycles_; }
    /** Rules currently on the compiled fast path (0 when not compiled). */
    uint32_t compiledFastRuleCount() const;

    /** Number of domains the design partitioned into (post-elab). */
    uint32_t domainCount() const { return domainCount_; }
    /** Domain a rule was assigned to (valid after elaborate()). */
    uint32_t domainOf(const Rule &r) const { return r.domain_; }
    /** Human-readable name of a domain (its hint group, or "d<i>"). */
    const std::string &domainName(uint32_t d) const;
    /** True when cycles are currently executed by the domain pool. */
    bool parallelActive() const { return parallelActive_; }
    /** Time the driving thread spent waiting at sync-epoch barriers. */
    uint64_t barrierWaitNs() const { return barrierWaitNs_; }
    /** Barrier synchronizations performed by the parallel scheduler. */
    uint64_t syncEpochs() const { return syncEpochs_; }

    /**
     * Cap the parallel scheduler's sync window (lookahead) at @p n
     * cycles; 0 (the default) means "fifo-min": the minimum latency
     * over all cross-domain channels, computed at elaboration. The
     * effective window is always min(cap, fifo-min) — running past
     * fifo-min would let a domain observe cycles it must not see.
     */
    void setLookahead(uint32_t n) { lookahead_ = n; }
    uint32_t lookahead() const { return lookahead_; }
    /** Min cross-domain channel latency (1 when there is no cut). */
    uint32_t fifoMinLookahead() const { return fifoMinLookahead_; }
    /** The sync window actually used: min(cap, fifo-min), >= 1. */
    uint32_t
    effectiveLookahead() const
    {
        uint32_t w = fifoMinLookahead_;
        if (lookahead_ && lookahead_ < w)
            w = lookahead_;
        return w ? w : 1;
    }
    /**
     * Cycles run(n) may advance between barriers right now: the
     * effective lookahead when the domain pool drives execution and
     * no installed observer demands per-cycle hooks; 1 otherwise.
     */
    uint32_t
    syncStride() const
    {
        if (!parallelActive_ || (obs_ && obs_->needsPerCycle()))
            return 1;
        return effectiveLookahead();
    }

    /**
     * True when every domain of the last started parallel cycle has
     * finished its slice, i.e. the pool is parked between cycles.
     * After a barrier-timeout KernelFault, recovery code that has
     * unwedged (or given up on) the stuck rule must poll this before
     * running a sequential scheduler: a straggler worker finishing its
     * commit bookkeeping must not overlap sequential execution.
     */
    bool parallelQuiesced() const
    {
        return parallelCycles_ == 0 ||
               doneCount_.load(std::memory_order_acquire) >= domainCount_;
    }

    /**
     * Wall-clock bound on one parallel cycle barrier; 0 disables. When
     * a worker fails to finish its domains within the budget the main
     * thread raises a KernelFault(Watchdog) naming the unfinished
     * domains instead of spinning forever — the stuck-worker detector.
     * After such a fault the pool is poisoned: recover by switching to
     * a sequential scheduler (HardenedRunner's fallback does).
     */
    void setBarrierTimeoutNs(uint64_t ns) { barrierTimeoutNs_ = ns; }
    uint64_t barrierTimeoutNs() const { return barrierTimeoutNs_; }

    /**
     * When false, the driving thread only publishes mirrors and waits
     * at the barrier during parallel cycles; workers run every domain.
     * Keeps the driver responsive for timeout detection (and makes
     * stuck-worker tests deterministic).
     */
    void setParallelMainParticipates(bool p) { mainParticipates_ = p; }

    // ---- scheduler observability (see progressReport())
    /** Rule attempts actually dispatched (guard + body). */
    uint64_t ruleAttemptCount() const;
    /** Attempts skipped because the rule was asleep. */
    uint64_t sleepSkipCount() const;
    /** Times a rule was put to sleep / woken by a commit. */
    uint64_t sleepCount() const;
    uint64_t wakeCount() const;
    /** GuardFail exceptions actually thrown (the slow abort path). */
    uint64_t guardThrowCount() const;
    /** Guard failures short-circuited without a throw. */
    uint64_t fastGuardFailCount() const;

    /**
     * Execute @p fn as an anonymous atomic action within the current
     * cycle — the testbench's way of poking a design. Obeys the same
     * CM and atomicity discipline as a rule (no uses-declaration
     * check). @return true if it committed, false if a guard failed.
     */
    bool runAtomically(const std::function<void()> &fn);

    /** Rule-level CM entry computed at elaboration (for tests). */
    Conflict ruleRelation(const Rule &a, const Rule &b) const;

    /** Rules in schedule order (valid after elaborate()). */
    const std::vector<Rule *> &scheduleOrder() const { return schedule_; }

    /** All rules in registration order. */
    const std::vector<Rule *> &rules() const { return rulePtrs_; }

    /** Snapshot all architectural state (between cycles only). */
    std::vector<uint8_t> snapshot() const;
    /** Restore a snapshot taken from the same elaborated design. */
    void restore(const std::vector<uint8_t> &snap);

    // ---- hardening hooks (see harden.hh)
    /** Registered state elements, in registration order. */
    uint32_t stateCount() const { return uint32_t(states_.size()); }
    StateBase *stateAt(uint32_t i) const { return states_[i]; }

    /**
     * Tell the kernel that @p s was mutated outside of any rule (a
     * fault injector flipping a bit between cycles): wakes the rules
     * sleeping on it and invalidates its stable-read epoch, so the
     * event-driven schedulers observe the new value exactly as they
     * would a committed write.
     */
    void pokeState(StateBase *s);

    /** Latency-bearing channels (TimedFifo registers one per fifo). */
    void registerChannel(ChannelPort *p);
    void unregisterChannel(ChannelPort *p);
    const std::vector<ChannelPort *> &channelPorts() const
    {
        return channels_;
    }

    /**
     * Structured crash-dump body: per-domain awake/fired counters, the
     * merged tail of the recently-fired rings, and every channel's
     * occupancy. Watchdog and KernelFault traces embed this.
     */
    std::string diagnosticReport() const;

    /**
     * Structured scheduler-progress report (per-rule outcomes and
     * counters, per-domain scheduler state). progressReport() is its
     * text rendering; report().json() the machine-readable one.
     */
    KernelReport report() const;

    /** Human-readable report of each rule's last outcome and stats. */
    std::string progressReport() const;

    /**
     * Install (or, with null, remove) the fire/commit-path observer.
     * At most one; the caller keeps ownership and must remove it
     * before destroying it. Install between cycles only.
     */
    void setObserver(KernelObserver *o) { obs_ = o; }
    KernelObserver *observer() const { return obs_; }

    /** Dump every module's statistics group. */
    void dumpStats(std::ostream &os) const;

    /**
     * Reset every module's statistics group (counters + histograms;
     * formulas are recomputed on read). Supports warmup windows: run
     * N cycles, resetAllStats(), measure. Architectural state is
     * untouched.
     */
    void resetAllStats();

    // ---- framework-internal interface (used by Method/State/Module)
    void registerState(StateBase *s);
    void unregisterState(StateBase *s);
    void registerModule(Module *m);
    /**
     * Declare @p a / @p b as the producer/consumer endpoints of a
     * latency-bearing channel: the partitioner treats them as separate
     * nodes (the cut), and after partitioning stores into @p crossFlag
     * whether the two ends landed in different domains.
     */
    void registerBoundary(Module &a, Module &b, bool *crossFlag,
                          ChannelPort *chan = nullptr);
    /** Publish @p s to cross-domain readers at every cycle barrier. */
    void registerMirror(StateBase *s);
    void onMethodCall(const Method &m);
    void noteStateTouched(StateBase *s); // inline, below StateBase
    bool
    inRule() const
    {
        detail::ExecContext *c = detail::activeCtx;
        return c && c->inRule;
    }
    /** True while a rule attempt's read set is being captured. */
    bool
    trackingReads() const
    {
        detail::ExecContext *c = detail::activeCtx;
        return c && c->readMode == detail::ReadMode::Capture;
    }
    /** Slow path of StateBase::noteRead(). */
    void noteStateRead(StateBase *s, detail::ExecContext &c);
    /** Out-of-line fault path of noteStateTouched(). */
    void crossDomainTouchFault(detail::ExecContext *c, StateBase *s);
    /** requireFast() backend: flag a no-throw guard failure. */
    void
    failGuardFast()
    {
        if (detail::ExecContext *c = detail::activeCtx)
            c->fastGuardFail = true;
    }

  private:
    friend class Module;
    friend class StateBase;
    friend class Rule;
    friend class DomainHint;

    /** Attempt one rule; commit or roll back. @return fired? */
    bool tryFire(detail::ExecContext &c, Rule &r);
    void commitRuleEffects(detail::ExecContext &c);
    void abortRuleEffects(detail::ExecContext &c);

    /** One event-driven walk of @p c's schedule. @return fired. */
    uint32_t runCtxCycle(detail::ExecContext &c);

    // ---- compiled scheduler internals
    /** Mark every rule provably free of CM interaction (one-shot). */
    void computeCmInertia();
    /** (Re)build the dispatch table from the current classification. */
    void compileSchedule();
    /** Reset classification + profiling baselines, build the table. */
    void startCompiled();
    /** One-shot promotion of empirically hot rules to the fast path. */
    void respecializeCompiled();
    /** Streamlined attempt of a fast table entry. @return fired? */
    bool fastFire(detail::ExecContext &c, const detail::CompiledEntry &e);
    /** One compiled walk of @p c's dispatch table. @return fired. */
    uint32_t runCompiledCycle(detail::ExecContext &c);

    // ---- event-driven scheduler internals
    /** Sleep @p r on the attempt's read set if it was captured exactly. */
    void maybeSleep(detail::ExecContext &c, Rule &r);
    /** Wake every live waiter of @p s (called when @p s commits). */
    void wakeWaiters(StateBase *s);
    /** Subscribe @p r to @p s, compacting stale waiter entries. */
    void addWaiter(StateBase *s, Rule *r);
    /** Wake every rule and drop all waiter lists. */
    void wakeAll();
    /** Fresh kernel-unique read-set dedup stamp for one attempt. */
    uint64_t
    newReadMark()
    {
        return readMarkSrc_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    // ---- domain partitioning + parallel driver internals
    void pushHint(const std::string &name);
    void popHint();
    /** Partition rules/modules/states into domains (at elaborate()). */
    void computeDomains();
    /** Point every rule at the context the current scheduler uses. */
    void bindContexts();
    /** Run a @p width cycle sync window on the domain pool. */
    uint32_t runParallelWindow(uint32_t width);
    /** Claim and run unprocessed domains until none remain. */
    void runDomains();
    void runDomainCycle(detail::ExecContext &c);
    /** @param seen starting generation, captured by the spawning
     *  thread before the first cycle's bump (see ensurePool()). */
    void workerMain(uint64_t seen);
    void ensurePool();
    void stopWorkers();
    uint32_t effectiveThreads() const;

    template <typename F>
    uint64_t
    sumCtx(F f) const
    {
        uint64_t total = f(mainCtx_);
        for (const detail::ExecContext &c : ctxs_)
            total += f(c);
        return total;
    }

    /** Compute the CM relation of rule a before rule b. */
    Conflict computeRuleRelation(const Rule &a, const Rule &b) const;

    std::vector<StateBase *> states_;
    std::vector<Module *> modules_;
    std::deque<Rule> rules_;
    std::vector<Rule *> rulePtrs_;
    std::vector<Rule *> schedule_;
    std::vector<Conflict> ruleCm_; // rules^2, flattened

    bool elaborated_ = false;
    uint64_t cycle_ = 0;
    KernelObserver *obs_ = nullptr;

    // Compiled scheduler:
    bool cmInertComputed_ = false;      ///< inertness pass ran (one-shot)
    bool compiledRespecialized_ = false;
    uint64_t compiledProfileCycles_ = 1024;
    double compiledHotRate_ = 0.5;
    uint64_t compiledProfileStart_ = 0; ///< cycle_ when profiling began

    // Scheduler state:
    SchedulerKind sched_ = SchedulerKind::Exhaustive;
    /// context of the sequential schedulers and of between-cycle
    /// testbench actions (domainId == kNoDomain)
    detail::ExecContext mainCtx_;
    /// one context per domain (parallel scheduler); stable addresses
    std::deque<detail::ExecContext> ctxs_;
    /// kernel-unique source of read-set dedup stamps: contexts share
    /// the per-state readMark_ stamp slots, so marks must never repeat
    /// across contexts
    std::atomic<uint64_t> readMarkSrc_{0};

    // Domain partitioning:
    std::vector<std::string> hintNames_{""}; ///< group names; [0] = root
    std::map<std::string, uint32_t> hintIds_;
    std::vector<uint32_t> hintStack_{0};
    struct Boundary
    {
        Module *a;
        Module *b;
        bool *crossFlag;
        ChannelPort *chan; ///< latency source (null for non-channels)
    };
    std::vector<Boundary> boundaries_;
    std::vector<StateBase *> mirrors_;
    uint32_t domainCount_ = 1;
    bool parallelActive_ = false;
    /// resolved domain -> display name (hint groups; filled at elab)
    std::vector<std::string> domainNames_;

    // Hardening:
    std::vector<ChannelPort *> channels_;
    /// faults raised inside worker threads, one slot per domain; the
    /// main thread rethrows the lowest-domain one after the barrier
    std::vector<std::exception_ptr> domainFaults_;
    /// per-domain completion flags for the current parallel cycle
    /// (barrier-timeout dumps name the unfinished domains)
    std::unique_ptr<std::atomic<bool>[]> domainDone_;
    uint64_t barrierTimeoutNs_ = 0; ///< 0 = no stuck-worker detection
    bool mainParticipates_ = true;

    // Worker pool (parallel scheduler):
    uint32_t threadsWanted_ = 0; ///< 0 = min(hw concurrency, domains)
    std::vector<std::thread> workers_;
    std::mutex poolMutex_;
    std::condition_variable poolCv_;
    std::atomic<uint64_t> startGen_{0};  ///< bumped to release a cycle
    std::atomic<bool> stopPool_{false};
    std::atomic<uint32_t> claimCursor_{0}; ///< next unclaimed domain
    std::atomic<uint32_t> doneCount_{0};   ///< domains finished
    uint64_t barrierWaitNs_ = 0;
    uint64_t parallelCycles_ = 0;

    // Multi-cycle lookahead PDES:
    uint32_t lookahead_ = 0;         ///< user cap; 0 = fifo-min (auto)
    uint32_t fifoMinLookahead_ = 1;  ///< min cross-channel latency
    uint32_t windowWidth_ = 1;       ///< cycles in the released window
    uint64_t syncEpochs_ = 0;        ///< barrier synchronizations run
};

inline void
StateBase::noteRead() const
{
    detail::ExecContext *c = detail::activeCtx;
    if (c && c->readMode != detail::ReadMode::Off)
        kernel_.noteStateRead(const_cast<StateBase *>(this), *c);
}

inline void
Method::operator()() const
{
    // A CM-inert rule on the compiled fast path skips the whole
    // kernel visit — elaboration proved no check in onMethodCall()
    // can fail for it and nothing reads the masks it would update
    // (see Kernel::computeCmInertia and DESIGN.md "Static
    // scheduling"). Checked inline so the elision costs one branch.
    detail::ExecContext *c = detail::activeCtx;
    if (c && c->liteCalls)
        return;
    owner_.kernel().onMethodCall(*this);
}

inline void
Kernel::noteStateTouched(StateBase *s)
{
    detail::ExecContext *c = detail::activeCtx;
    if (!c) {
        // Construction-time initialization outside any transaction;
        // swept up by the next main-context commit, as before.
        mainCtx_.touched.push_back(s);
        return;
    }
    if (c->domainId != detail::kNoDomain && s->domain_ != c->domainId)
        crossDomainTouchFault(c, s); // throws
    c->touched.push_back(s);
}

inline uint64_t
StateBase::kernelCycle() const
{
    return kernel_.currentCycle();
}

/**
 * Exception-free guard check for the top level of a rule body: on a
 * false condition the enclosing rule aborts as if require() had
 * thrown, but without the throw. The caller MUST return immediately
 * on false — `if (!requireFast(cond)) return;` — because unlike
 * require() it cannot unwind the stack; any code run after a failed
 * requireFast() is staged and then discarded. Outside a rule or
 * atomic action it degrades to the throwing require().
 */
inline bool
requireFast(bool cond)
{
    if (cond)
        return true;
    if (Kernel *k = detail::activeKernel)
        k->failGuardFast();
    else
        throw GuardFail{};
    return false;
}

/**
 * Run @p f and absorb a guard failure into a status return. Meant for
 * testbench probes and speculative calls of library methods, which
 * all check their guards before staging writes; do not wrap calls
 * that stage writes before require(), as the partial staging is not
 * rolled back until the whole rule resolves.
 */
template <typename F>
bool
tryGuard(F &&f)
{
    try {
        f();
        return true;
    } catch (const GuardFail &) {
        return false;
    }
}

} // namespace cmd
