#include "core/log.hh"

#include <cstdio>
#include <cstdlib>

#include "core/fault.hh"

namespace cmd {

namespace {
LogLevel gLevel = LogLevel::Quiet;
} // namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel lvl)
{
    gLevel = lvl;
}

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), n + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    // Design-invariant violations surface as structured, catchable
    // faults so drivers (System::run, HardenedRunner, fault campaigns)
    // can classify and recover instead of losing the whole process.
    kfault(FaultKind::DesignError, "", "%s", s.c_str());
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
trace(LogLevel lvl, const char *fmt, ...)
{
    if (static_cast<int>(lvl) > static_cast<int>(gLevel))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "trace: %s\n", s.c_str());
}

} // namespace cmd
