/**
 * @file
 * TimedFifo<T>: a conflict-free FIFO whose elements only become
 * visible a fixed number of cycles after they were enqueued. The
 * standard way to model pipeline/wire/array latency (L2 pipeline
 * depth, DRAM access time) without giving up latency-insensitive
 * interfaces: consumers simply see deq's guard stay false until the
 * element has "aged".
 *
 * A TimedFifo is also the parallel scheduler's domain *boundary*: its
 * latency is the PDES lookahead that lets the producer's and the
 * consumer's domains run a cycle concurrently. To make that sound the
 * fifo is built from two endpoint modules — the enq side owns the
 * payload/ready slots, the tail pointer, and a monotonic enqueue
 * counter; the deq side owns the head pointer and a monotonic dequeue
 * counter — so each side's rules commit only domain-local state (the
 * old shared read-modify-write `count` register would have needed a
 * cross-domain merge). Occupancy is the counter difference.
 *
 * Cross-side counter views under multi-cycle lookahead PDES (see
 * DESIGN.md "Multi-cycle lookahead PDES"): domains synchronize only
 * every W = min-cross-latency cycles, so a view of the other side's
 * counter can be at most W cycles stale. The fifo therefore defines
 * every cross-capable view with a *latency-sized* lag, uniformly
 * under every scheduler, which keeps them all bit-identical:
 *
 *  - Data direction (canDeq/first/deq): the enqueue count is read as
 *    the published (sync-latched) scalar under a domain context and
 *    readStable() otherwise. Any such count is exact for deq-ability:
 *    the head's per-slot ready stamp (enq cycle + latency) already
 *    rejects every element the lagged count could spuriously admit,
 *    so the outcome equals the exact-count outcome at any staleness
 *    up to `latency` cycles — which the window never exceeds.
 *  - Credit direction (canEnq/enq) and the consumer-side pending()
 *    probe: read the other side's counter as of cycle
 *    `now - max(latency, 1)` through the EpochCounter history (the
 *    live one sequentially, the sync-published batch across domains).
 *    For latency <= 1 this is exactly the historical start-of-cycle
 *    view; for latency >= 2 it models the credit-return wire taking
 *    as long as the data wire. Lagged guards are time-dependent, so
 *    they conservatively stay out of the sleep machinery.
 *
 * Payload/ready slots the consumer reads were written before the last
 * sync barrier (the published count only admits elements enqueued at
 * least `latency >= W` cycles ago), and the producer cannot reuse a
 * slot until its lagged credit view proves the consumer dequeued it,
 * so reading them raw from another domain is race-free.
 */
#pragma once

#include "core/fifo.hh"

namespace cmd {

template <typename T>
class TimedFifo : public ChannelPort
{
  private:
    struct EnqSide : Module
    {
        EnqSide(Kernel &k, const std::string &n)
            : Module(k, n, Conflict::C), enqM(this->method("enq"))
        {
        }
        Method &enqM;
    };
    struct DeqSide : Module
    {
        DeqSide(Kernel &k, const std::string &n)
            : Module(k, n, Conflict::C), deqM(this->method("deq")),
              firstM(this->method("first"))
        {
            this->cf(firstM, deqM);
            this->selfCf(firstM);
        }
        Method &deqM, &firstM;
    };

    EnqSide enqSide_;
    DeqSide deqSide_;

  public:
    Method &enqM, &deqM, &firstM;

    TimedFifo(Kernel &kernel, const std::string &name, uint32_t capacity,
              uint32_t delay)
        : enqSide_(kernel, name + ".enq"), deqSide_(kernel, name + ".deq"),
          enqM(enqSide_.enqM), deqM(deqSide_.deqM), firstM(deqSide_.firstM),
          kernel_(kernel), name_(name), delay_(delay), cap_(capacity),
          data_(kernel, name + ".data", capacity),
          ready_(kernel, name + ".ready", capacity),
          head_(kernel, name + ".head", 0),
          tail_(kernel, name + ".tail", 0),
          enqTotal_(kernel, name + ".enqTotal", delay < 1 ? 1 : delay, 0),
          deqTotal_(kernel, name + ".deqTotal", delay < 1 ? 1 : delay, 0)
    {
        kernel.registerBoundary(enqSide_, deqSide_, &cross_, this);
        kernel.registerChannel(this);
        // The cross-read counters are published at every parallel
        // cycle barrier; everything else is strictly side-local.
        kernel.registerMirror(&enqTotal_);
        kernel.registerMirror(&deqTotal_);
        data_.setDomainOwner(&enqSide_);
        ready_.setDomainOwner(&enqSide_);
        tail_.setDomainOwner(&enqSide_);
        enqTotal_.setDomainOwner(&enqSide_);
        head_.setDomainOwner(&deqSide_);
        deqTotal_.setDomainOwner(&deqSide_);
    }

    ~TimedFifo() override { kernel_.unregisterChannel(this); }

    // ---- ChannelPort (fault injection + watchdog diagnostics).
    // The fault actions run as between-cycle atomic actions on the
    // main context, so they obey rule atomicity and are exempt from
    // the cross-domain access checks.
    const std::string &channelName() const override { return name_; }
    uint32_t occupancy() const override { return size(); }
    uint32_t channelCapacity() const override { return cap_; }
    /** Visibility delay in cycles — the PDES lookahead this cut buys. */
    uint32_t latency() const override { return delay_; }

    /** Message-loss fault: silently discard the head element. */
    bool
    faultDropHead() override
    {
        return kernel_.runAtomically([&] {
            require(size() > 0);
            uint32_t h = head_.read();
            head_.write(next(h));
            deqTotal_.write(deqTotal_.read() + 1);
        });
    }

    /** Latency fault: age the head element @p extraCycles more. */
    bool
    faultDelayHead(uint32_t extraCycles) override
    {
        return kernel_.runAtomically([&] {
            require(size() > 0);
            uint32_t h = head_.read();
            // Re-age from now if the element already matured, so the
            // delay is always observable.
            uint64_t base = ready_.read(h);
            uint64_t now = kernel_.cycleCount();
            if (now > base)
                base = now;
            ready_.write(h, base + extraCycles);
        });
    }

    // ---- probes (when() guards, testbenches)
    bool
    canEnq() const
    {
        return enqTotal_.readStable() - creditView(deqTotal_) < cap_;
    }
    bool
    canDeq() const
    {
        return enqTotalView() - deqTotal_.readStable() > 0 &&
               kernel_.cycleCount() >= readyView(head_.readStable());
    }
    /** Committed occupancy (same-side or testbench probes only). */
    uint32_t
    size() const
    {
        return static_cast<uint32_t>(enqTotal_.read() - deqTotal_.read());
    }
    /**
     * Occupancy as the consumer side may observe it: enqueues as of
     * `max(latency, 1)` cycles ago minus committed dequeues. Unlike
     * size() this is safe to read from the consumer's domain, and it
     * cannot go negative: the consumer can only have dequeued
     * elements whose ready stamp matured, i.e. enqueued at least
     * `latency` cycles ago — all counted in the lagged view.
     */
    uint32_t
    pending() const
    {
        return static_cast<uint32_t>(creditView(enqTotal_) -
                                     deqTotal_.read());
    }

    /** Enqueue; becomes visible @p delay cycles from now. */
    void
    enq(const T &v)
    {
        enqM();
        require(enqTotal_.readStable() - creditView(deqTotal_) < cap_);
        uint32_t t = tail_.readStable();
        data_.write(t, v);
        ready_.write(t, kernel_.cycleCount() + delay_);
        tail_.write(next(t));
        enqTotal_.write(enqTotal_.read() + 1);
    }

    /** Dequeue the oldest aged element. */
    T
    deq()
    {
        deqM();
        require(canDeq());
        uint32_t h = head_.readStable();
        T v = dataView(h);
        head_.write(next(h));
        deqTotal_.write(deqTotal_.read() + 1);
        return v;
    }

    /** Peek the oldest aged element. */
    T
    first()
    {
        firstM();
        require(canDeq());
        return dataView(head_.readStable());
    }

  private:
    /**
     * True when the calling context must take the cross-domain view:
     * the two sides landed in different domains AND a domain-bound
     * context is executing (between cycles, and under the sequential
     * schedulers, the start-of-cycle view is readStable()).
     */
    bool
    crossNow() const
    {
        return cross_ && detail::activeCtx &&
               detail::activeCtx->domainId != detail::kNoDomain;
    }

    // Cross views of the other side's state. The published/raw reads
    // bypass noteRead(), so the caller flags the attempt with
    // noteCrossRead(): a value that can change without a local commit
    // must keep the rule out of the sleep machinery.
    uint64_t
    enqTotalView() const
    {
        if (crossNow()) {
            detail::noteCrossRead();
            return enqTotal_.readPublished();
        }
        return enqTotal_.readStable();
    }
    /**
     * Credit-direction view of the other side's counter, lagged by
     * `max(latency, 1)` cycles for cross-domain fifos. For latency
     * <= 1 this is exactly the PR-2 start-of-cycle view (a delay-1
     * cross fifo caps the sync window at 1, so the published scalar
     * *is* the start-of-cycle value) and stays sleep-friendly. For
     * latency >= 2 the view ages like the data wire; it can flip a
     * guard true with no commit, so reading cycleCount() flags the
     * rule time-dependent and keeps it out of the sleep machinery.
     */
    uint64_t
    creditView(const EpochCounter &c) const
    {
        if (!cross_ || delay_ <= 1) {
            if (crossNow()) {
                detail::noteCrossRead();
                return c.readPublished();
            }
            return c.readStable();
        }
        uint64_t now = kernel_.cycleCount();
        uint64_t at = now > delay_ ? now - delay_ : 0;
        if (crossNow()) {
            detail::noteCrossRead();
            return c.readPublishedAt(at);
        }
        return c.readAt(at);
    }
    uint64_t
    readyView(uint32_t i) const
    {
        if (crossNow()) {
            detail::noteCrossRead();
            return ready_.readDirect(i);
        }
        return ready_.readStable(i);
    }
    T
    dataView(uint32_t i) const
    {
        if (crossNow()) {
            detail::noteCrossRead();
            return data_.readDirect(i);
        }
        return data_.readStable(i);
    }

    uint32_t next(uint32_t i) const { return i + 1 == cap_ ? 0 : i + 1; }

    Kernel &kernel_;
    std::string name_;
    uint32_t delay_;
    uint32_t cap_;
    bool cross_ = false; ///< endpoints in different domains (post-elab)
    RegArray<T> data_;
    RegArray<uint64_t> ready_;
    Reg<uint32_t> head_, tail_;
    /// monotonic totals; occupancy = difference. Each is written by
    /// exactly one side, which is what lets the sides commit
    /// domain-locally with no cross-domain merge. Epoch-stamped so
    /// credit views can be read as of `now - latency` under
    /// multi-cycle sync windows.
    EpochCounter enqTotal_, deqTotal_;
};

} // namespace cmd
