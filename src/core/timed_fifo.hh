/**
 * @file
 * TimedFifo<T>: a conflict-free FIFO whose elements only become
 * visible a fixed number of cycles after they were enqueued. The
 * standard way to model pipeline/wire/array latency (L2 pipeline
 * depth, DRAM access time) without giving up latency-insensitive
 * interfaces: consumers simply see deq's guard stay false until the
 * element has "aged".
 */
#pragma once

#include "core/fifo.hh"

namespace cmd {

template <typename T>
class TimedFifo : public Module
{
  public:
    TimedFifo(Kernel &kernel, const std::string &name, uint32_t capacity,
              uint32_t delay)
        : Module(kernel, name, Conflict::C),
          enqM(method("enq")), deqM(method("deq")), firstM(method("first")),
          delay_(delay), cap_(capacity),
          data_(kernel, name + ".data", capacity),
          ready_(kernel, name + ".ready", capacity),
          head_(kernel, name + ".head", 0),
          tail_(kernel, name + ".tail", 0),
          count_(kernel, name + ".count", 0)
    {
        cf(enqM, deqM);
        cf(enqM, firstM);
        cf(firstM, deqM);
        selfCf(firstM);
    }

    // ---- probes (when() guards, testbenches)
    bool canEnq() const { return count_.readStable() < cap_; }
    bool
    canDeq() const
    {
        return count_.readStable() > 0 &&
               kernel().cycleCount() >= ready_.readStable(head_.readStable());
    }
    uint32_t size() const { return count_.read(); }

    /** Enqueue; becomes visible @p delay cycles from now. */
    void
    enq(const T &v)
    {
        enqM();
        require(count_.readStable() < cap_);
        uint32_t t = tail_.readStable();
        data_.write(t, v);
        ready_.write(t, kernel().cycleCount() + delay_);
        tail_.write(next(t));
        count_.write(count_.read() + 1);
    }

    /** Dequeue the oldest aged element. */
    T
    deq()
    {
        deqM();
        require(canDeq());
        uint32_t h = head_.readStable();
        T v = data_.readStable(h);
        head_.write(next(h));
        count_.write(count_.read() - 1);
        return v;
    }

    /** Peek the oldest aged element. */
    T
    first()
    {
        firstM();
        require(canDeq());
        return data_.readStable(head_.readStable());
    }

    Method &enqM, &deqM, &firstM;

  private:
    uint32_t next(uint32_t i) const { return i + 1 == cap_ ? 0 : i + 1; }

    uint32_t delay_;
    uint32_t cap_;
    RegArray<T> data_;
    RegArray<uint64_t> ready_;
    Reg<uint32_t> head_, tail_, count_;
};

} // namespace cmd
