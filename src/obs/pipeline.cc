#include "obs/pipeline.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace obs {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Fetch:
        return "F";
      case Stage::Decode:
        return "Dc";
      case Stage::Rename:
        return "Rn";
      case Stage::Issue:
        return "Is";
      case Stage::RegRead:
        return "RR";
      case Stage::Execute:
        return "Ex";
      case Stage::Mem:
        return "Mem";
      case Stage::Writeback:
        return "Wb";
      case Stage::Commit:
        return "Cm";
    }
    return "?";
}

uint64_t
PipelineTracer::create(uint64_t pc, const std::string &label,
                       uint64_t fetchCycle, uint64_t nowCycle)
{
    if (recs_.size() >= maxUops_) {
        dropped_++;
        return 0;
    }
    recs_.emplace_back();
    Rec &r = recs_.back();
    r.pc = pc;
    r.label = label;
    r.stages.emplace_back(Stage::Fetch, fetchCycle);
    if (nowCycle > fetchCycle)
        r.stages.emplace_back(Stage::Decode, nowCycle);
    return recs_.size(); // 1-based
}

void
PipelineTracer::stage(uint64_t seq, Stage st, uint64_t cycle)
{
    Rec *r = rec(seq);
    if (!r || r->state != 0)
        return;
    // Ignore duplicate reports of the stage the uop is already in
    // (e.g. a load re-issued after a kill re-enters Mem).
    if (!r->stages.empty() && r->stages.back().first == st)
        return;
    r->stages.emplace_back(st, cycle);
}

void
PipelineTracer::setSpecMask(uint64_t seq, uint16_t mask)
{
    Rec *r = rec(seq);
    if (!r)
        return;
    r->specMask = mask;
    r->renamed = true;
}

void
PipelineTracer::mapLq(uint8_t idx, uint64_t seq)
{
    if (idx >= lqMap_.size())
        lqMap_.resize(idx + 1, 0);
    lqMap_[idx] = seq;
}

void
PipelineTracer::mapSq(uint8_t idx, uint64_t seq)
{
    if (idx >= sqMap_.size())
        sqMap_.resize(idx + 1, 0);
    sqMap_[idx] = seq;
}

void
PipelineTracer::finishRec(Rec &r, uint8_t state, uint64_t cycle)
{
    r.state = state;
    // Stages are open-ended until the uop dies; clamp so the last
    // stage has nonzero extent in the viewer.
    r.endCycle = cycle;
    if (!r.stages.empty() && r.endCycle <= r.stages.back().second)
        r.endCycle = r.stages.back().second + 1;
    if (state == 1)
        retired_++;
    else
        squashed_++;
}

void
PipelineTracer::retire(uint64_t seq, uint64_t cycle)
{
    Rec *r = rec(seq);
    if (!r || r->state != 0)
        return;
    if (r->stages.empty() || r->stages.back().first != Stage::Commit)
        r->stages.emplace_back(Stage::Commit, cycle);
    finishRec(*r, 1, cycle + 1);
    // Advance the live floor past a fully-finished prefix.
    while (liveFloor_ < recs_.size() && recs_[liveFloor_].state != 0)
        liveFloor_++;
}

void
PipelineTracer::squash(uint64_t seq, uint64_t cycle)
{
    Rec *r = rec(seq);
    if (!r || r->state != 0)
        return;
    finishRec(*r, 2, cycle + 1);
    while (liveFloor_ < recs_.size() && recs_[liveFloor_].state != 0)
        liveFloor_++;
}

void
PipelineTracer::squashMask(uint16_t deadMask, uint64_t cycle)
{
    for (size_t i = liveFloor_; i < recs_.size(); i++) {
        Rec &r = recs_[i];
        if (r.state == 0 && r.renamed && (r.specMask & deadMask))
            finishRec(r, 2, cycle + 1);
    }
    while (liveFloor_ < recs_.size() && recs_[liveFloor_].state != 0)
        liveFloor_++;
}

void
PipelineTracer::squashAll(uint64_t cycle)
{
    for (size_t i = liveFloor_; i < recs_.size(); i++) {
        if (recs_[i].state == 0)
            finishRec(recs_[i], 2, cycle + 1);
    }
    liveFloor_ = recs_.size();
}

namespace {

struct Ev {
    uint64_t cycle;
    uint64_t fid;
    // Within one (cycle, fid): I before L (Konata requires the id
    // line first), then stage events in pipeline order — S of stage k
    // is 2+2k and E of stage k is 3+2k, so a zero-width stage keeps
    // S before its own E while E of stage k still precedes S of stage
    // k+1 on a cycle tie — and R (255) last.
    uint8_t ord;
    std::string text;
};

} // namespace

bool
KonataWriter::write(std::ostream &os,
                    const std::vector<const PipelineTracer *> &cores)
{
    // Assign file ids in a canonical order independent of which core's
    // buffer we walk first: (creation cycle, hart, per-core seq).
    struct Slot {
        uint64_t createCycle;
        uint32_t hart;
        uint64_t seq;
        const PipelineTracer::Rec *rec;
    };
    std::vector<Slot> slots;
    uint64_t maxCycle = 0;
    for (const PipelineTracer *t : cores) {
        if (!t)
            continue;
        for (size_t i = 0; i < t->recs_.size(); i++) {
            const PipelineTracer::Rec &r = t->recs_[i];
            if (r.stages.empty())
                continue;
            slots.push_back({r.stages.front().second, t->hartId_, i + 1, &r});
            uint64_t end =
                r.state ? r.endCycle : r.stages.back().second + 1;
            maxCycle = std::max(maxCycle, end);
        }
    }
    std::sort(slots.begin(), slots.end(), [](const Slot &a, const Slot &b) {
        if (a.createCycle != b.createCycle)
            return a.createCycle < b.createCycle;
        if (a.hart != b.hart)
            return a.hart < b.hart;
        return a.seq < b.seq;
    });

    // Per-hart instruction ids (Konata's iid) and retire ids, both in
    // canonical order so the output never depends on buffer layout.
    std::vector<Ev> evs;
    evs.reserve(slots.size() * 8);
    std::vector<uint64_t> iidNext(64, 0), ridNext(64, 1);
    // Retire ids must follow commit order: (endCycle, hart, seq).
    std::vector<size_t> byEnd;
    for (size_t i = 0; i < slots.size(); i++) {
        if (slots[i].rec->state == 1)
            byEnd.push_back(i);
    }
    std::sort(byEnd.begin(), byEnd.end(), [&](size_t a, size_t b) {
        const Slot &sa = slots[a], &sb = slots[b];
        if (sa.rec->endCycle != sb.rec->endCycle)
            return sa.rec->endCycle < sb.rec->endCycle;
        if (sa.hart != sb.hart)
            return sa.hart < sb.hart;
        return sa.seq < sb.seq;
    });
    std::vector<uint64_t> rid(slots.size(), 0);
    for (size_t i : byEnd)
        rid[i] = ridNext[slots[i].hart % 64]++;

    char buf[128];
    for (size_t fi = 0; fi < slots.size(); fi++) {
        const Slot &s = slots[fi];
        const PipelineTracer::Rec &r = *s.rec;
        uint64_t iid = iidNext[s.hart % 64]++;
        std::snprintf(buf, sizeof(buf), "I\t%llu\t%llu\t%u",
                      (unsigned long long)fi, (unsigned long long)iid,
                      s.hart);
        evs.push_back({s.createCycle, fi, 0, buf});
        std::snprintf(buf, sizeof(buf), "L\t%llu\t0\t%llx: ",
                      (unsigned long long)fi, (unsigned long long)r.pc);
        evs.push_back({s.createCycle, fi, 1, buf + r.label});
        uint64_t end = r.state ? r.endCycle : maxCycle;
        for (size_t k = 0; k < r.stages.size(); k++) {
            uint64_t start = r.stages[k].second;
            uint64_t stop =
                k + 1 < r.stages.size() ? r.stages[k + 1].second : end;
            if (stop < start)
                stop = start;
            const char *nm = stageName(r.stages[k].first);
            const uint8_t sOrd = static_cast<uint8_t>(2 + 2 * k);
            std::snprintf(buf, sizeof(buf), "S\t%llu\t0\t%s",
                          (unsigned long long)fi, nm);
            evs.push_back({start, fi, sOrd, buf});
            std::snprintf(buf, sizeof(buf), "E\t%llu\t0\t%s",
                          (unsigned long long)fi, nm);
            evs.push_back({stop, fi, static_cast<uint8_t>(sOrd + 1), buf});
        }
        // Still-live uops at end of run are flushed so every I has a
        // matching R (viewers and the validator require closure).
        int type = r.state == 1 ? 0 : 1;
        std::snprintf(buf, sizeof(buf), "R\t%llu\t%llu\t%d",
                      (unsigned long long)fi,
                      (unsigned long long)rid[fi], type);
        evs.push_back({end, fi, 255, buf});
    }

    std::sort(evs.begin(), evs.end(), [](const Ev &a, const Ev &b) {
        if (a.cycle != b.cycle)
            return a.cycle < b.cycle;
        if (a.fid != b.fid)
            return a.fid < b.fid;
        return a.ord < b.ord;
    });

    os << "Kanata\t0004\n";
    uint64_t cur = evs.empty() ? 0 : evs.front().cycle;
    os << "C=\t" << cur << "\n";
    for (const Ev &e : evs) {
        if (e.cycle != cur) {
            os << "C\t" << (e.cycle - cur) << "\n";
            cur = e.cycle;
        }
        os << e.text << "\n";
    }
    return bool(os);
}

bool
KonataWriter::writeFile(const std::string &path,
                        const std::vector<const PipelineTracer *> &cores)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    return write(os, cores);
}

} // namespace obs
