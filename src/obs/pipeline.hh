/**
 * @file
 * Per-uop pipeline lifecycle tracing with a Konata/Kanata export.
 *
 * Each traced core owns one PipelineTracer; the core's rule bodies
 * report lifecycle transitions (create at fetch, rename, issue, ...,
 * commit or squash) against the uop's stable sequence id (Uop::seq,
 * assigned by create()). Records are buffered in memory — a tracer is
 * owned by its core's partition domain, so no locking is needed even
 * under the parallel scheduler — and KonataWriter merges every core's
 * buffer into one viewer-ready file at the end of the run.
 *
 * Determinism: every event carries the kernel cycle it happened at,
 * and the writer orders output canonically by (cycle, hart, seq), so
 * the exported bytes are identical under all three SchedulerKinds
 * (rule firings — and hence uop transitions — are bit-identical
 * across schedulers; only attempt patterns differ).
 */
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace obs {

/** Pipeline stages reported to the tracer (Konata lane labels). */
enum class Stage : uint8_t {
    Fetch,     ///< F:  fetch request to decode
    Decode,    ///< Dc: in the instruction queue
    Rename,    ///< Rn: rename/dispatch
    Issue,     ///< Is: waiting in an issue queue
    RegRead,   ///< RR: register read
    Execute,   ///< Ex: ALU / MulDiv / address calculation
    Mem,       ///< Mem: in the LSQ / waiting on the data cache
    Writeback, ///< Wb: register write / completion
    Commit,    ///< Cm: at the commit point
};

const char *stageName(Stage s);

class PipelineTracer
{
  public:
    PipelineTracer(uint32_t hartId, uint64_t maxUops)
        : hartId_(hartId), maxUops_(maxUops)
    {
    }

    uint32_t hartId() const { return hartId_; }

    /**
     * Begin tracing a new uop: stage Fetch from @p fetchCycle, then
     * Decode from @p nowCycle (the fetch3/decode cycle). @return the
     * uop's nonzero sequence id, or 0 when the trace is full (the uop
     * stays untraced; every other call ignores seq 0).
     */
    uint64_t create(uint64_t pc, const std::string &label,
                    uint64_t fetchCycle, uint64_t nowCycle);

    /** Report that @p seq entered @p st at @p cycle. */
    void stage(uint64_t seq, Stage st, uint64_t cycle);

    /** Rename-time bookkeeping: the squash mask to kill by. */
    void setSpecMask(uint64_t seq, uint16_t mask);

    /** Map LQ/SQ slots to seq ids so LSQ-side events can be reported
     *  by slot index (the only name the memory rules have). */
    void mapLq(uint8_t idx, uint64_t seq);
    void mapSq(uint8_t idx, uint64_t seq);
    uint64_t lqSeq(uint8_t idx) const
    {
        return idx < lqMap_.size() ? lqMap_[idx] : 0;
    }
    uint64_t sqSeq(uint8_t idx) const
    {
        return idx < sqMap_.size() ? sqMap_[idx] : 0;
    }

    /** The uop retired (architecturally committed) at @p cycle. */
    void retire(uint64_t seq, uint64_t cycle);
    /** The uop was squashed (wrong path) at @p cycle. */
    void squash(uint64_t seq, uint64_t cycle);
    /** Kill every live renamed uop whose specMask hits @p deadMask. */
    void squashMask(uint16_t deadMask, uint64_t cycle);
    /** Kill every live uop (commit-point flush). */
    void squashAll(uint64_t cycle);

    uint64_t created() const { return recs_.size(); }
    uint64_t retired() const { return retired_; }
    uint64_t squashed() const { return squashed_; }
    /** Uops not traced because the buffer cap was reached. */
    uint64_t dropped() const { return dropped_; }

  private:
    friend class KonataWriter;

    struct Rec {
        uint64_t pc = 0;
        std::string label;
        uint16_t specMask = 0;
        bool renamed = false;
        uint8_t state = 0; ///< 0 live, 1 retired, 2 squashed
        uint64_t endCycle = 0;
        /// (stage, startCycle) in report order; a stage ends where the
        /// next begins (or at endCycle)
        std::vector<std::pair<Stage, uint64_t>> stages;
    };

    Rec *
    rec(uint64_t seq)
    {
        // seq is 1-based; 0 means untraced.
        return seq && seq <= recs_.size() ? &recs_[seq - 1] : nullptr;
    }

    void finishRec(Rec &r, uint8_t state, uint64_t cycle);

    uint32_t hartId_;
    uint64_t maxUops_;
    uint64_t retired_ = 0;
    uint64_t squashed_ = 0;
    uint64_t dropped_ = 0;
    /// first index that may still be live (squashMask scan floor)
    size_t liveFloor_ = 0;
    std::vector<Rec> recs_;
    std::vector<uint64_t> lqMap_, sqMap_;
};

/** Merge per-core tracers into one Kanata-format file. */
class KonataWriter
{
  public:
    /** @return false when @p os is not writable. */
    static bool write(std::ostream &os,
                      const std::vector<const PipelineTracer *> &cores);
    static bool writeFile(const std::string &path,
                          const std::vector<const PipelineTracer *> &cores);
};

} // namespace obs
