/**
 * @file
 * Rule/domain timeline tracing: which rule fired when, in which
 * domain, rendered as Chrome/Perfetto trace-event JSON (open the file
 * in ui.perfetto.dev or chrome://tracing). One timeline serves all
 * three SchedulerKinds; each partition domain becomes a named track.
 *
 * Thread-safety: events are appended into per-domain buffers indexed
 * by the rule's *elaborated* domain. Under the parallel scheduler each
 * domain is driven by exactly one worker per cycle, so every buffer
 * has a single writer; under the sequential schedulers everything runs
 * on the driving thread. No locks needed.
 *
 * Determinism: within one (domain, cycle) all three schedulers fire
 * rules in increasing schedule position, so per-domain buffers fill in
 * the canonical order (cycle, schedule position) without sorting, and
 * the exported JSON is byte-identical across schedulers (for fire
 * events; guard-fail recording is opt-in because attempt patterns are
 * scheduler-specific).
 *
 * The last-N fire events per domain also feed an always-on flight
 * recorder that Kernel::diagnosticReport() appends to KernelFault
 * crash dumps.
 */
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace cmd {
class Kernel;
class Rule;
} // namespace cmd

namespace obs {

class RuleTimeline
{
  public:
    /** Build after Kernel::elaborate() (needs domains + schedule). */
    RuleTimeline(const cmd::Kernel &k, uint64_t maxEventsPerDomain,
                 bool recordGuardFails);

    /** Hook target; called from KernelObserver::ruleFired/guardFailed
     *  with @p domain = the rule's elaborated domain. */
    void record(const cmd::Rule &r, uint64_t cycle, uint32_t domain,
                bool guardFail);

    /** Chrome trace-event JSON ({"traceEvents": [...]}). */
    bool write(std::ostream &os) const;
    bool writeFile(const std::string &path) const;

    /** Last ~64 fire events across all domains, newest last — the
     *  crash-dump flight recorder. */
    std::string flightRecorderText() const;

    uint64_t recorded() const;
    uint64_t dropped() const;

  private:
    struct Ev {
        uint64_t cycle;
        uint32_t schedPos; ///< position in the elaborated schedule
        bool guardFail;
    };

    struct DomainBuf {
        std::vector<Ev> events;
        uint64_t droppedEvents = 0;
        // Always-on ring of the most recent fires (cheap: fixed size).
        std::vector<Ev> flight;
        size_t flightNext = 0;
        uint64_t flightCount = 0;
    };

    static constexpr size_t kFlightRing = 64;

    const cmd::Kernel &k_;
    uint64_t maxEvents_;
    bool guardFails_;
    std::vector<DomainBuf> bufs_;
    /// rule names indexed by schedule position (stable post-elab)
    std::vector<std::string> ruleNames_;
};

} // namespace obs
