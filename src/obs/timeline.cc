#include "obs/timeline.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/kernel.hh"
#include "core/stats.hh"

namespace obs {

RuleTimeline::RuleTimeline(const cmd::Kernel &k, uint64_t maxEventsPerDomain,
                           bool recordGuardFails)
    : k_(k), maxEvents_(maxEventsPerDomain), guardFails_(recordGuardFails)
{
    bufs_.resize(k.domainCount() ? k.domainCount() : 1);
    const auto &sched = k.scheduleOrder();
    ruleNames_.reserve(sched.size());
    for (uint32_t i = 0; i < sched.size(); i++)
        ruleNames_.push_back(sched[i]->name());
    for (auto &b : bufs_)
        b.flight.resize(kFlightRing);
}

void
RuleTimeline::record(const cmd::Rule &r, uint64_t cycle, uint32_t domain,
                     bool guardFail)
{
    if (guardFail && !guardFails_)
        return;
    // schedPos is the rule's elaborated schedule index — no lookup on
    // the per-fire path (this hook runs for every fired rule).
    const uint32_t pos = r.schedPos();
    if (pos >= ruleNames_.size())
        return; // rule added after elaboration snapshot; shouldn't happen
    if (domain >= bufs_.size())
        domain = 0;
    DomainBuf &b = bufs_[domain];
    Ev e{cycle, pos, guardFail};
    if (!guardFail) {
        b.flight[b.flightNext] = e;
        b.flightNext = (b.flightNext + 1) % kFlightRing;
        b.flightCount++;
    }
    if (b.events.size() >= maxEvents_) {
        // maxEvents_ == 0 means flight-recorder-only mode (no file
        // sink), which is not a drop worth reporting.
        if (maxEvents_)
            b.droppedEvents++;
        return;
    }
    b.events.push_back(e);
}

uint64_t
RuleTimeline::recorded() const
{
    uint64_t n = 0;
    for (const auto &b : bufs_)
        n += b.events.size();
    return n;
}

uint64_t
RuleTimeline::dropped() const
{
    uint64_t n = 0;
    for (const auto &b : bufs_)
        n += b.droppedEvents;
    return n;
}

bool
RuleTimeline::write(std::ostream &os) const
{
    // Trace-event JSON. Timestamps are synthetic: one kernel cycle is
    // 1000 "us" and the slot within the cycle (fire order) offsets
    // events so same-cycle fires on one track don't overlap.
    os << "{\"traceEvents\": [\n";
    bool first = true;
    auto emit = [&](const std::string &s) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  " << s;
    };

    emit("{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"cmd-kernel\"}}");
    for (uint32_t d = 0; d < bufs_.size(); d++) {
        std::ostringstream m;
        m << "{\"ph\": \"M\", \"pid\": 0, \"tid\": " << (d + 1)
          << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
          << cmd::jsonEscape("domain " + std::to_string(d) + ": " +
                             k_.domainName(d))
          << "\"}}";
        emit(m.str());
    }

    for (uint32_t d = 0; d < bufs_.size(); d++) {
        const DomainBuf &b = bufs_[d];
        // Per-cycle fired counter for this domain (counter track),
        // plus one slice per event. Events are already in canonical
        // (cycle, slot) order — see file comment.
        size_t i = 0;
        while (i < b.events.size()) {
            size_t j = i;
            uint64_t cyc = b.events[i].cycle;
            uint32_t firedHere = 0;
            while (j < b.events.size() && b.events[j].cycle == cyc) {
                const Ev &e = b.events[j];
                uint64_t ts = cyc * 1000 + (j - i);
                std::ostringstream s;
                if (e.guardFail) {
                    s << "{\"ph\": \"i\", \"pid\": 0, \"tid\": " << (d + 1)
                      << ", \"ts\": " << ts << ", \"s\": \"t\", \"name\": \""
                      << cmd::jsonEscape(ruleNames_[e.schedPos] +
                                         " guard-fail")
                      << "\"}";
                } else {
                    firedHere++;
                    s << "{\"ph\": \"X\", \"pid\": 0, \"tid\": " << (d + 1)
                      << ", \"ts\": " << ts << ", \"dur\": 1, \"name\": \""
                      << cmd::jsonEscape(ruleNames_[e.schedPos])
                      << "\", \"args\": {\"cycle\": " << cyc
                      << ", \"sched_pos\": " << e.schedPos << "}}";
                }
                emit(s.str());
                j++;
            }
            if (firedHere) {
                std::ostringstream c;
                c << "{\"ph\": \"C\", \"pid\": 0, \"tid\": " << (d + 1)
                  << ", \"ts\": " << (cyc * 1000)
                  << ", \"name\": \"fired(domain " << d
                  << ")\", \"args\": {\"fired\": " << firedHere << "}}";
                emit(c.str());
                // Drop the counter back to zero before the next active
                // cycle so idle stretches render as idle.
                uint64_t nextCyc =
                    j < b.events.size() ? b.events[j].cycle : cyc + 1;
                if (nextCyc > cyc + 1) {
                    std::ostringstream z;
                    z << "{\"ph\": \"C\", \"pid\": 0, \"tid\": " << (d + 1)
                      << ", \"ts\": " << ((cyc + 1) * 1000)
                      << ", \"name\": \"fired(domain " << d
                      << ")\", \"args\": {\"fired\": 0}}";
                    emit(z.str());
                }
            }
            i = j;
        }
        if (b.droppedEvents) {
            std::ostringstream s;
            s << "{\"ph\": \"M\", \"pid\": 0, \"tid\": " << (d + 1)
              << ", \"name\": \"dropped_events\", \"args\": {\"count\": "
              << b.droppedEvents << "}}";
            emit(s.str());
        }
    }
    os << "\n]}\n";
    return bool(os);
}

bool
RuleTimeline::writeFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    return write(os);
}

std::string
RuleTimeline::flightRecorderText() const
{
    // Merge the per-domain rings into one chronological tail.
    struct Line {
        uint64_t cycle;
        uint32_t schedPos;
        uint32_t domain;
    };
    std::vector<Line> lines;
    for (uint32_t d = 0; d < bufs_.size(); d++) {
        const DomainBuf &b = bufs_[d];
        uint64_t n = std::min<uint64_t>(b.flightCount, kFlightRing);
        for (uint64_t i = 0; i < n; i++) {
            size_t idx = (b.flightNext + kFlightRing - n + i) % kFlightRing;
            lines.push_back({b.flight[idx].cycle, b.flight[idx].schedPos, d});
        }
    }
    std::sort(lines.begin(), lines.end(), [](const Line &a, const Line &b) {
        if (a.cycle != b.cycle)
            return a.cycle < b.cycle;
        if (a.domain != b.domain)
            return a.domain < b.domain;
        return a.schedPos < b.schedPos;
    });
    if (lines.size() > kFlightRing)
        lines.erase(lines.begin(), lines.end() - kFlightRing);

    std::ostringstream os;
    os << "flight recorder (last " << lines.size() << " rule firings):\n";
    for (const Line &l : lines) {
        os << "  @" << l.cycle << " [" << k_.domainName(l.domain) << "] "
           << ruleNames_[l.schedPos] << "\n";
    }
    return os.str();
}

} // namespace obs
