/**
 * @file
 * Top-down CPI stacks: commit-point attribution of every cycle to one
 * cause. The accounting is exhaustive and exclusive by construction —
 * each sampled cycle lands in exactly one bucket, so the components
 * always sum to the total sampled cycles (the conservation property
 * the tests assert).
 *
 * The classification itself lives with the core (OooCore::cpiSample):
 * it needs commit-point visibility (ROB head, LSQ head state, rename
 * backpressure) that only the core has. This file is the dumb,
 * core-agnostic accumulator plus naming and JSON rendering.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/stats.hh"

namespace obs {

/**
 * Why a cycle failed to commit (or committed). Commit-point ("blame
 * the oldest instruction") taxonomy:
 *  - Base: at least one instruction committed, or the head is merely
 *    flowing through execution latency / dependency chains with no
 *    structural or miss condition to blame.
 *  - Frontend: the ROB ran empty with no recovery in progress — fetch
 *    (I-cache, ITLB, fetch bandwidth) starved the backend.
 *  - BranchMispredict: ROB empty while refilling after a mispredict
 *    redirect.
 *  - RobFull / IqFull / LsqFull: the head is waiting on execution and
 *    the corresponding structure is exerting rename backpressure.
 *  - DMiss: the head is a memory op waiting on the data cache (or an
 *    MMIO/atomic access at commit).
 *  - DMissDram: DMiss refinement — the blocked load's line is in
 *    flight at the DRAM controller, so the stall is memory-bandwidth
 *    bound rather than an L2 hit / intra-hierarchy transfer (only
 *    split when the core has a dram-bound probe installed).
 *  - TlbMiss: the head is a memory op waiting on translation.
 *  - Serialization: flush recovery other than a branch mispredict
 *    (CSR/fence/satp/load-order-kill), a serialized instruction
 *    holding rename, or a done head blocked from committing.
 */
enum class StallCause : uint8_t {
    Base,
    Frontend,
    BranchMispredict,
    RobFull,
    IqFull,
    LsqFull,
    DMiss,
    TlbMiss,
    Serialization,
    DMissDram,
};

constexpr uint32_t kNumStallCauses = 10;

const char *toString(StallCause c);

/** Per-core CPI-stack accumulator. */
class CpiStack
{
  public:
    void
    attribute(StallCause c)
    {
        counts_[uint32_t(c)]++;
        cycles_++;
    }

    /** Warmup-window reset (System::statsResetAtCycle). */
    void
    reset()
    {
        counts_.fill(0);
        cycles_ = 0;
    }

    uint64_t cycles() const { return cycles_; }
    uint64_t count(StallCause c) const { return counts_[uint32_t(c)]; }

    /** Sum of all components (== cycles() by construction). */
    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t c : counts_)
            t += c;
        return t;
    }

    /** Register the stack as counters on a stats group ("cpi.<cause>")
     *  plus an ipc formula, so it rides every stats dump path. */
    void exportStats(cmd::StatGroup &g,
                     const std::function<uint64_t()> &instret) const;

    /**
     * JSON object: per-cause cycle counts, total, and (when @p instret
     * is nonzero) ipc/cpi — the fragment bench_common embeds into
     * BENCH_*.json result rows.
     */
    std::string json(uint64_t instret = 0) const;

    /** One-line human summary: "base=.. frontend=.. ... total=..". */
    std::string summary() const;

  private:
    std::array<uint64_t, kNumStallCauses> counts_{};
    uint64_t cycles_ = 0;
};

} // namespace obs
