/**
 * @file
 * ObsHub: the one KernelObserver a System installs. Routes kernel
 * hook callbacks to the configured sinks:
 *
 *  - ruleFired/guardFailed -> RuleTimeline (Perfetto export + the
 *    crash-dump flight recorder, which is live whenever a hub is
 *    installed even with the timeline file sink off);
 *  - cycleEnd -> a post-cycle hook the System uses for CPI-stack
 *    sampling and the warmup stats reset (runs on the driving thread
 *    between cycles, when every domain is quiesced);
 *  - appendDiagnostics -> flight-recorder tail into KernelFault dumps.
 *
 * It also owns the per-core PipelineTracer and CpiStack instances; the
 * cores hold raw pointers (null when their hart is not traced) and
 * call them directly from rule bodies.
 */
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/kernel.hh"
#include "obs/cpi.hh"
#include "obs/obs_config.hh"
#include "obs/pipeline.hh"
#include "obs/timeline.hh"

namespace obs {

class ObsHub final : public cmd::KernelObserver
{
  public:
    /** Build after Kernel::elaborate(); installs itself on @p k. */
    ObsHub(cmd::Kernel &k, const ObsConfig &cfg, uint32_t numCores);
    ~ObsHub() override;

    ObsHub(const ObsHub &) = delete;
    ObsHub &operator=(const ObsHub &) = delete;

    /** Per-hart sink pointers; null when the sink or hart is off. */
    PipelineTracer *pipeline(uint32_t hart)
    {
        return hart < pipes_.size() ? pipes_[hart].get() : nullptr;
    }
    CpiStack *cpi(uint32_t hart)
    {
        return hart < cpis_.size() ? cpis_[hart].get() : nullptr;
    }
    const CpiStack *cpi(uint32_t hart) const
    {
        return hart < cpis_.size() ? cpis_[hart].get() : nullptr;
    }
    RuleTimeline *timeline() { return timeline_.get(); }

    /** Called from cycleEnd (between cycles, driving thread). */
    void setCyclePostHook(std::function<void(uint64_t cycle)> f)
    {
        postHook_ = std::move(f);
    }

    /**
     * Write the configured trace files (Konata + Perfetto). Idempotent;
     * also run by the destructor so traces survive early exits.
     * @return false if any configured sink failed to write.
     */
    bool finish();

    const ObsConfig &config() const { return cfg_; }

    // -- KernelObserver
    void ruleFired(const cmd::Rule &r, uint64_t cycle,
                   uint32_t domain) override;
    void guardFailed(const cmd::Rule &r, uint64_t cycle,
                     uint32_t domain) override;
    void cycleEnd(uint64_t cycle, uint32_t fired) override;
    void appendDiagnostics(std::string &out) const override;
    /**
     * The hub itself never needs per-cycle callbacks — ruleFired /
     * guardFailed carry exact cycle numbers, so the timeline, flight
     * recorder, and pipeline tracers are window-safe. Only an
     * installed post-cycle hook (CPI sampling, warmup reset) forces
     * the parallel scheduler back to per-cycle sync.
     */
    bool needsPerCycle() const override { return postHook_ != nullptr; }

  private:
    cmd::Kernel &k_;
    ObsConfig cfg_;
    std::unique_ptr<RuleTimeline> timeline_;
    std::vector<std::unique_ptr<PipelineTracer>> pipes_;
    std::vector<std::unique_ptr<CpiStack>> cpis_;
    std::function<void(uint64_t)> postHook_;
    bool finished_ = false;
};

} // namespace obs
