#include "obs/cpi.hh"

#include <cstdio>

namespace obs {

const char *
toString(StallCause c)
{
    switch (c) {
      case StallCause::Base:
        return "base";
      case StallCause::Frontend:
        return "frontend";
      case StallCause::BranchMispredict:
        return "branch_mispredict";
      case StallCause::RobFull:
        return "rob_full";
      case StallCause::IqFull:
        return "iq_full";
      case StallCause::LsqFull:
        return "lsq_full";
      case StallCause::DMiss:
        return "d_miss";
      case StallCause::TlbMiss:
        return "tlb_miss";
      case StallCause::Serialization:
        return "serialization";
      case StallCause::DMissDram:
        return "d_miss_dram";
    }
    return "?";
}

void
CpiStack::exportStats(cmd::StatGroup &g,
                      const std::function<uint64_t()> &instret) const
{
    for (uint32_t i = 0; i < kNumStallCauses; i++) {
        g.counter(std::string("cpi.") + toString(StallCause(i)))
            .set(counts_[i]);
    }
    g.counter("cpi.total_cycles").set(cycles_);
    const CpiStack *self = this;
    g.formula("ipc", [self, instret] {
        return self->cycles_ ? double(instret()) / double(self->cycles_)
                             : 0.0;
    });
}

std::string
CpiStack::json(uint64_t instret) const
{
    std::string out = "{";
    for (uint32_t i = 0; i < kNumStallCauses; i++) {
        out += '"';
        out += toString(StallCause(i));
        out += "\": ";
        out += std::to_string(counts_[i]);
        out += ", ";
    }
    out += "\"total_cycles\": " + std::to_string(cycles_);
    if (instret) {
        out += ", \"instret\": " + std::to_string(instret);
        if (cycles_) {
            out += ", \"ipc\": " +
                   cmd::jsonDouble(double(instret) / double(cycles_));
            out += ", \"cpi\": " +
                   cmd::jsonDouble(double(cycles_) / double(instret));
        }
    }
    out += "}";
    return out;
}

std::string
CpiStack::summary() const
{
    std::string out;
    char buf[64];
    for (uint32_t i = 0; i < kNumStallCauses; i++) {
        std::snprintf(buf, sizeof(buf), "%s%s=%llu", i ? " " : "",
                      toString(StallCause(i)),
                      (unsigned long long)counts_[i]);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), " total=%llu",
                  (unsigned long long)cycles_);
    out += buf;
    return out;
}

} // namespace obs
