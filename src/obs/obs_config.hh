/**
 * @file
 * Configuration of the observability subsystem (src/obs). Kept free of
 * dependencies so proc/config.hh can embed it in SystemConfig without
 * pulling the sink implementations into every translation unit.
 */
#pragma once

#include <cstdint>
#include <string>

namespace obs {

/**
 * What to record and where to write it. All sinks default to off; a
 * System with every flag off installs no kernel observer at all, so
 * the disabled cost is exactly one untaken branch per hook site (and
 * zero when the tree is built with REPRO_DISABLE_OBS).
 */
struct ObsConfig {
    // ---- per-uop pipeline traces (Konata/Kanata sink)
    bool pipeline = false;
    /** Output file for the merged Konata trace of every traced core. */
    std::string pipelinePath = "trace.kanata";
    /** Stop tracing new uops past this many per core (memory bound);
     *  drops are counted and reported, never silent. */
    uint64_t maxPipelineUops = 1u << 20;

    // ---- rule/domain timeline (Chrome/Perfetto trace-event sink)
    bool timeline = false;
    /** Output file for the trace-event JSON. */
    std::string timelinePath = "trace_timeline.json";
    /**
     * Also record guard-failed attempts as instant events. Off by
     * default: attempt patterns differ by scheduler (the event-driven
     * walk skips sleeping rules), so the byte-identical-across-
    * schedulers guarantee of the timeline holds only for fire events.
     */
    bool timelineGuardFails = false;
    /** Per-domain cap on recorded timeline events (memory bound). */
    uint64_t maxTimelineEvents = 1u << 22;

    // ---- top-down CPI stacks (commit-point cycle attribution)
    bool cpi = false;

    /** Cores to trace (bit per hart); CPI and pipeline sinks only. */
    uint32_t coreMask = 0xffffffffu;

    bool traceCore(uint32_t hart) const
    {
        return hart < 32 && ((coreMask >> hart) & 1u);
    }
    /** Anything enabled that needs an installed kernel observer? */
    bool enabled() const { return pipeline || timeline || cpi; }
};

} // namespace obs
