#include "obs/hub.hh"

namespace obs {

ObsHub::ObsHub(cmd::Kernel &k, const ObsConfig &cfg, uint32_t numCores)
    : k_(k), cfg_(cfg)
{
    // The timeline doubles as the crash-dump flight recorder, so it
    // exists whenever a hub does; the file sink (event retention) is
    // sized to zero when timeline tracing is off.
    timeline_ = std::make_unique<RuleTimeline>(
        k, cfg_.timeline ? cfg_.maxTimelineEvents : 0,
        cfg_.timeline && cfg_.timelineGuardFails);

    pipes_.resize(numCores);
    cpis_.resize(numCores);
    for (uint32_t h = 0; h < numCores; h++) {
        if (cfg_.pipeline && cfg_.traceCore(h))
            pipes_[h] =
                std::make_unique<PipelineTracer>(h, cfg_.maxPipelineUops);
        if (cfg_.cpi && cfg_.traceCore(h))
            cpis_[h] = std::make_unique<CpiStack>();
    }
    k_.setObserver(this);
}

ObsHub::~ObsHub()
{
    finish();
    if (k_.observer() == this)
        k_.setObserver(nullptr);
}

bool
ObsHub::finish()
{
    if (finished_)
        return true;
    finished_ = true;
    bool ok = true;
    // An empty path means record-only (overhead measurement, tests
    // reading the in-memory buffers): nothing is written.
    if (cfg_.pipeline && !cfg_.pipelinePath.empty()) {
        std::vector<const PipelineTracer *> cores;
        for (const auto &p : pipes_) {
            if (p)
                cores.push_back(p.get());
        }
        ok &= KonataWriter::writeFile(cfg_.pipelinePath, cores);
    }
    if (cfg_.timeline && !cfg_.timelinePath.empty())
        ok &= timeline_->writeFile(cfg_.timelinePath);
    return ok;
}

void
ObsHub::ruleFired(const cmd::Rule &r, uint64_t cycle, uint32_t domain)
{
    timeline_->record(r, cycle, domain, false);
}

void
ObsHub::guardFailed(const cmd::Rule &r, uint64_t cycle, uint32_t domain)
{
    if (cfg_.timeline && cfg_.timelineGuardFails)
        timeline_->record(r, cycle, domain, true);
}

void
ObsHub::cycleEnd(uint64_t cycle, uint32_t fired)
{
    (void)fired;
    if (postHook_)
        postHook_(cycle);
}

void
ObsHub::appendDiagnostics(std::string &out) const
{
    out += "\n";
    out += timeline_->flightRecorderText();
}

} // namespace obs
